// lcsrouter: the scatter/gather frontend of the sharded query service.
//
// Connects to a fleet of lcsshard processes, verifies they all serve the
// same snapshot fingerprint and seed (the coherence token of the
// handshake), consistent-hashes a deterministic mixed batch across them,
// and prints one digest line per query.  With --local it runs the exact
// same batch on an in-process ShortcutService instead — the oracle a
// supervisor (scripts/stress_sharded.py) diffs the sharded digests
// against: the two outputs must be byte-identical.
//
//   lcsrouter --shard SPEC [--shard SPEC ...] --count N [--first-id K]
//             [--replicas R] [--deadline-ms D] [--retries T] [--shutdown]
//   lcsrouter --local --store DIR --fingerprint HEX --count N
//             [--first-id K] [--seed S] [--threads T]
//             [--tenant NAME [--burst B] [--refill M] [--wave-every K]]
//
//   --shard SPEC    a shard endpoint ("unix:/path" / "tcp:host:port");
//                   repeat for a fleet (placement = hash64(id) % fleet size)
//   --count N       queries in the batch (ids first-id .. first-id+N-1,
//                   kinds round-robin over quality/build/mst/mincut)
//   --pp-vertices N snapshot vertex count; when > 0 the round-robin gains a
//                   fifth kind, point_to_point, with s/t derived from the
//                   query id modulo N (default 0 — the four legacy kinds)
//   --first-id K    base query id (default 1000) — disjoint ranges let
//                   concurrent supervising batches stay duplicate-free
//   --replicas R    preference-list length per query (default 1 — the
//                   unreplicated legacy placement, byte for byte)
//   --deadline-ms D connect + per-frame budget for every shard connection
//                   (default 0 — block forever, the legacy behavior)
//   --retries T     max failovers per query (default: try every replica)
//   --shutdown      after the batch, ask every shard process to exit
//   --tenant NAME   (--local only) push the batch through a StreamingService
//                   as tenant NAME instead of run_batch: arrivals are
//                   admitted or shed against a per-class token bucket, a
//                   drain wave is pumped after every --wave-every arrivals
//                   (default 8), and only admitted queries print digest
//                   lines.  Shed queries print "# shed id=..." comment
//                   lines.  The schedule is fixed, so the whole output is
//                   byte-identical across reruns (determinism contract
//                   point 9) and every admitted digest must match the
//                   unthrottled --local oracle for the same id.
//   --burst B       bucket capacity in whole queries per cost class
//                   (default 4); --refill M milli-tokens credited per
//                   drained wave (default 500 = one query every 2nd wave)
//
// Output: "query id=<id> ok=<0|1> digest=<hex>" per query in batch order,
// then "batch fingerprint=<hex> seed=<S> count=<N> ok=<K> digest=<hex>".
// Fleet mode appends one "# health shard=<i> ..." comment line per shard;
// supervisors diffing against a --local oracle filter "#" lines (digest
// lines must match byte for byte, telemetry need not).
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "rpc/shard.hpp"
#include "service/service.hpp"
#include "service/sharded.hpp"
#include "service/snapshot_store.hpp"
#include "service/streaming.hpp"
#include "util/parallel.hpp"

namespace {

using namespace lcs;

[[noreturn]] void die(const std::string& message) {
  std::cerr << "lcsrouter: " << message << "\n";
  std::exit(2);
}

std::string hex_of(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t parse_fingerprint(const std::string& s) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s.c_str(), &end, 16);
  if (end == s.c_str() || *end != '\0') die("not a hex fingerprint: '" + s + "'");
  return v;
}

/// The deterministic mixed workload both modes run: a pure function of
/// (first_id, count, pp_vertices), so a sharded run and a --local oracle
/// over the same snapshot and seed must print identical digests.
std::vector<service::QueryRequest> mixed_batch(std::uint64_t first_id, std::size_t count,
                                               std::uint32_t pp_vertices) {
  const std::size_t kinds = pp_vertices > 0 ? 5 : 4;
  std::vector<service::QueryRequest> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    service::QueryRequest q;
    q.id = first_id + i;
    switch (i % kinds) {
      case 0: q.kind = service::QueryKind::kShortcutQuality; break;
      case 1: q.kind = service::QueryKind::kShortcutBuild; break;
      case 2: q.kind = service::QueryKind::kMst; break;
      case 3: q.kind = service::QueryKind::kMincut; break;
      default: q.kind = service::QueryKind::kPointToPoint; break;
    }
    q.beta = 0.5 + 0.25 * static_cast<double>(i % 3);
    if (q.kind == service::QueryKind::kMincut) {
      if (i % 8 == 3)
        q.karger_trials = 8;
      else
        q.eps = 0.4 + 0.1 * static_cast<double>(i % 2);
    } else if (q.kind == service::QueryKind::kPointToPoint) {
      q.s = static_cast<std::uint32_t>(hash64(q.id) % pp_vertices);
      q.t = static_cast<std::uint32_t>(hash64(q.id ^ 0x70ULL) % pp_vertices);
    }
    batch.push_back(q);
  }
  return batch;
}

struct Args {
  std::vector<std::string> shards;
  bool local = false;
  std::string store;
  std::string fingerprint;
  std::size_t count = 0;
  std::uint64_t first_id = 1000;
  std::uint32_t pp_vertices = 0;
  std::uint64_t seed = 1;
  unsigned threads = 0;
  std::size_t replicas = 1;
  std::size_t retries = service::kRetryAllReplicas;
  int deadline_ms = 0;
  bool shutdown = false;
  std::string tenant;
  unsigned burst = 4;
  std::uint64_t refill = 500;
  std::size_t wave_every = 8;
};

Args parse_args(int argc, char** argv) {
  Args a;
  const auto value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) die(std::string(flag) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shard")
      a.shards.push_back(value(i, "--shard"));
    else if (arg == "--local")
      a.local = true;
    else if (arg == "--store")
      a.store = value(i, "--store");
    else if (arg == "--fingerprint")
      a.fingerprint = value(i, "--fingerprint");
    else if (arg == "--count")
      a.count = std::stoull(value(i, "--count"));
    else if (arg == "--first-id")
      a.first_id = std::stoull(value(i, "--first-id"));
    else if (arg == "--pp-vertices")
      a.pp_vertices = static_cast<std::uint32_t>(std::stoul(value(i, "--pp-vertices")));
    else if (arg == "--seed")
      a.seed = std::stoull(value(i, "--seed"));
    else if (arg == "--threads")
      a.threads = static_cast<unsigned>(std::stoul(value(i, "--threads")));
    else if (arg == "--replicas")
      a.replicas = std::stoull(value(i, "--replicas"));
    else if (arg == "--retries")
      a.retries = std::stoull(value(i, "--retries"));
    else if (arg == "--deadline-ms")
      a.deadline_ms = static_cast<int>(std::stol(value(i, "--deadline-ms")));
    else if (arg == "--shutdown")
      a.shutdown = true;
    else if (arg == "--tenant")
      a.tenant = value(i, "--tenant");
    else if (arg == "--burst")
      a.burst = static_cast<unsigned>(std::stoul(value(i, "--burst")));
    else if (arg == "--refill")
      a.refill = std::stoull(value(i, "--refill"));
    else if (arg == "--wave-every")
      a.wave_every = std::stoull(value(i, "--wave-every"));
    else
      die("unknown option '" + arg + "' (see the header comment for usage)");
  }
  if (a.count == 0) die("--count is required");
  if (a.local == !a.shards.empty())
    die("exactly one of --local / --shard is required");
  if (a.local && (a.store.empty() || a.fingerprint.empty()))
    die("--local needs --store and --fingerprint");
  if (a.replicas == 0) die("--replicas must be >= 1");
  if (!a.tenant.empty() && !a.local) die("--tenant needs --local");
  if (!a.tenant.empty() && a.wave_every == 0) die("--wave-every must be >= 1");
  return a;
}

void print_results(const std::vector<service::QueryResult>& results, std::uint64_t fingerprint,
                   std::uint64_t seed) {
  std::uint64_t combined = 0;
  std::size_t ok = 0;
  for (const service::QueryResult& r : results) {
    const std::uint64_t d = r.digest();
    combined = hash64(combined ^ d);
    if (r.ok) ++ok;
    std::cout << "query id=" << r.id << " ok=" << (r.ok ? 1 : 0) << " digest=" << hex_of(d)
              << "\n";
    if (!r.ok) std::cout << "# error id=" << r.id << ": " << r.error << "\n";
  }
  std::cout << "batch fingerprint=" << hex_of(fingerprint) << " seed=" << seed
            << " count=" << results.size() << " ok=" << ok << " digest=" << hex_of(combined)
            << std::endl;
}

/// --tenant mode: the batch flows through a StreamingService under one
/// rate-limited tenant.  Manual drain with a fixed pump cadence makes the
/// whole schedule (and hence the shed set — contract point 9) a pure
/// function of the flags, so reruns must print byte-identical output.
void run_streaming(const service::ShortcutService& svc, std::uint64_t fingerprint, const Args& a,
                   const std::vector<service::QueryRequest>& batch) {
  service::StreamingOptions opt;
  opt.drain_thread = false;
  opt.max_queue = batch.size() + 1;  // shed on budgets, not the queue bound
  opt.tenants = {service::TenantConfig{a.tenant,
                                       service::TokenBucketConfig{a.burst, a.refill},
                                       service::TokenBucketConfig{a.burst, a.refill}}};
  service::StreamingService stream(svc, opt);
  std::vector<service::StreamingService::Ticket> admitted;
  std::vector<std::string> shed_lines;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    service::StreamingService::Ticket t = stream.submit(a.tenant, batch[i]);
    if (t.admitted())
      admitted.push_back(std::move(t));
    else
      shed_lines.push_back("# shed id=" + std::to_string(batch[i].id) +
                           " wave=" + std::to_string(t.verdict().admission_wave) + " " +
                           t.shed_text());
    if ((i + 1) % a.wave_every == 0) stream.drain_wave();
  }
  stream.drain_until_idle();
  std::vector<service::QueryResult> results;
  results.reserve(admitted.size());
  for (const auto& t : admitted) results.push_back(stream.wait(t));
  print_results(results, fingerprint, a.seed);
  // Telemetry, never content: "#" comment lines like fleet health.
  const std::vector<service::TenantStats> stats = stream.tenant_stats();
  for (const service::TenantStats& s : stats) {
    std::cout << "# admission tenant=" << s.name << " arrivals=" << s.counters.arrivals
              << " admitted=" << s.counters.admitted
              << " shed_rate_limited=" << s.counters.shed_rate_limited
              << " shed_queue_full=" << s.counters.shed_queue_full << " served=" << s.served
              << " waves=" << stream.waves_completed() << "\n";
  }
  for (const std::string& line : shed_lines) std::cout << line << "\n";
  std::cout << std::flush;
}

int run(const Args& a) {
  if (a.threads > 0) set_num_threads(a.threads);
  const std::vector<service::QueryRequest> batch =
      mixed_batch(a.first_id, a.count, a.pp_vertices);

  if (a.local) {
    service::SnapshotStore store(a.store);
    const std::uint64_t fingerprint = parse_fingerprint(a.fingerprint);
    if (!store.contains(fingerprint)) die("fingerprint not in store: " + a.fingerprint);
    const service::ShortcutService svc(store.open(fingerprint), a.seed);
    if (!a.tenant.empty()) {
      run_streaming(svc, fingerprint, a, batch);
      return 0;
    }
    print_results(svc.run_batch(batch), fingerprint, a.seed);
    return 0;
  }

  std::vector<std::unique_ptr<service::ShardBackend>> backends;
  std::vector<rpc::RpcShard*> raw;  // to send --shutdown after the router is done
  backends.reserve(a.shards.size());
  rpc::DeadlineOptions deadlines;
  deadlines.connect_ms = a.deadline_ms;
  deadlines.call_ms = a.deadline_ms;
  for (const std::string& spec : a.shards) {
    auto shard = std::make_unique<rpc::RpcShard>(rpc::Endpoint::parse(spec), deadlines);
    raw.push_back(shard.get());
    backends.push_back(std::move(shard));
  }
  service::RouterOptions options;
  options.replicas = a.replicas;
  options.retries = a.retries;
  const service::ShardRouter router(std::move(backends), options);
  print_results(router.run_batch(batch), router.fingerprint(), router.seed());
  // Telemetry, never content: "#" comment lines a supervisor's oracle diff
  // strips before comparing digests.
  const auto health = router.health();
  for (std::size_t s = 0; s < health.size(); ++s) {
    std::cout << "# health shard=" << s << " endpoint=" << a.shards[s]
              << " up=" << (health[s].up ? 1 : 0) << " failures=" << health[s].failures;
    if (!health[s].up) std::cout << " error=" << health[s].last_error;
    std::cout << "\n";
  }
  std::cout << std::flush;
  if (a.shutdown)
    for (rpc::RpcShard* shard : raw) shard->shutdown_server();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const std::exception& e) {
    std::cerr << "lcsrouter: " << e.what() << "\n";
    return 1;
  }
}
