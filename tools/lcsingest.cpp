// lcsingest: edge lists (or generated graphs) -> fingerprint-addressed
// snapshot files, plus store inspection.
//
// The ingest pipeline is the cold half of the snapshot story: freeze a
// graph once (weights, connectivity, diameter bracket, fingerprint), write
// the canonical snapshot file into a store, and let any number of later
// service processes mmap it by fingerprint in milliseconds instead of
// rebuilding.  The S5_snapshot_io bench scenario measures exactly this
// build-once / load-often asymmetry.
//
//   lcsingest --store DIR --edges FILE [--n N]        ingest an edge list
//   lcsingest --store DIR --generate gnm --n N [--m M] [--seed S]
//   lcsingest --store DIR --generate tree|hard --n N [--seed S]
//   lcsingest --store DIR --list                      list snapshots
//   lcsingest --store DIR --info FINGERPRINT          header summary
//   lcsingest --store DIR --evict FINGERPRINT         drop a snapshot
//
// Edge-list format: one "u v" pair per line, '#' starts a comment.  With
// no --n, the vertex count is max endpoint + 1.  Weight options
// (--weight-seed, --max-weight) are snapshot options: they are frozen into
// the file and land in the fingerprint.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "service/snapshot_format.hpp"
#include "service/snapshot_store.hpp"
#include "util/table.hpp"

namespace {

using namespace lcs;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

[[noreturn]] void die(const std::string& message) {
  std::cerr << "lcsingest: " << message << "\n";
  std::exit(2);
}

std::string hex_of(std::uint64_t fingerprint) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(fingerprint));
  return buf;
}

std::uint64_t parse_fingerprint(const std::string& s) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s.c_str(), &end, 16);
  if (end == s.c_str() || *end != '\0') die("not a hex fingerprint: '" + s + "'");
  return v;
}

graph::Graph read_edge_list(const std::string& file, std::uint32_t n_override) {
  std::ifstream in(file);
  if (!in) die("cannot open edge list '" + file + "'");
  std::vector<std::pair<graph::VertexId, graph::VertexId>> edges;
  std::uint64_t max_vertex = 0;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!(fields >> u)) continue;  // blank / comment-only line
    if (!(fields >> v)) die("line " + std::to_string(lineno) + ": expected 'u v'");
    if (u >= graph::kNoVertex || v >= graph::kNoVertex)
      die("line " + std::to_string(lineno) + ": endpoint out of 32-bit range");
    max_vertex = std::max({max_vertex, u, v});
    edges.emplace_back(static_cast<graph::VertexId>(u), static_cast<graph::VertexId>(v));
  }
  const std::uint32_t n =
      n_override > 0 ? n_override
                     : (edges.empty() ? 0 : static_cast<std::uint32_t>(max_vertex) + 1);
  return graph::Graph::from_edges(n, std::move(edges));
}

struct Args {
  std::string store;
  std::string edges;
  std::string generate;
  std::string info;
  std::string evict;
  bool list = false;
  std::uint32_t n = 0;
  std::uint32_t m = 0;
  std::uint64_t seed = 1;
  std::uint64_t weight_seed = 7;
  graph::Weight max_weight = 16;
};

Args parse_args(int argc, char** argv) {
  Args a;
  const auto value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) die(std::string(flag) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--store")
      a.store = value(i, "--store");
    else if (arg == "--edges")
      a.edges = value(i, "--edges");
    else if (arg == "--generate")
      a.generate = value(i, "--generate");
    else if (arg == "--info")
      a.info = value(i, "--info");
    else if (arg == "--evict")
      a.evict = value(i, "--evict");
    else if (arg == "--list")
      a.list = true;
    else if (arg == "--n")
      a.n = static_cast<std::uint32_t>(std::stoul(value(i, "--n")));
    else if (arg == "--m")
      a.m = static_cast<std::uint32_t>(std::stoul(value(i, "--m")));
    else if (arg == "--seed")
      a.seed = std::stoull(value(i, "--seed"));
    else if (arg == "--weight-seed")
      a.weight_seed = std::stoull(value(i, "--weight-seed"));
    else if (arg == "--max-weight")
      a.max_weight = std::stoll(value(i, "--max-weight"));
    else
      die("unknown option '" + arg + "' (see the header comment for usage)");
  }
  if (a.store.empty()) die("--store is required");
  return a;
}

graph::Graph generate_graph(const Args& a) {
  if (a.n == 0) die("--generate needs --n");
  Rng rng(a.seed);
  if (a.generate == "gnm") return graph::connected_gnm(a.n, a.m > 0 ? a.m : 2 * a.n, rng);
  if (a.generate == "tree") return graph::random_tree(a.n, rng);
  if (a.generate == "hard") return graph::hard_instance(a.n, 4).g;
  die("unknown generator '" + a.generate + "' (gnm, tree, hard)");
}

int run(const Args& a) {
  service::SnapshotStore store(a.store);

  if (a.list) {
    Table t({"fingerprint", "n", "m", "connected", "bytes", "artifacts"});
    for (const std::uint64_t fingerprint : store.list()) {
      const service::SnapshotFileInfo info =
          service::read_snapshot_info(store.path_of(fingerprint));
      t.row()
          .cell(hex_of(fingerprint))
          .cell(std::uint64_t{info.num_vertices})
          .cell(std::uint64_t{info.num_edges})
          .cell(info.connected ? "yes" : "no")
          .cell(info.file_bytes)
          .cell(info.saved_bfs_trees + info.saved_partitions + info.saved_samples);
    }
    t.print(std::cout, "store " + a.store);
    return 0;
  }
  if (!a.info.empty()) {
    const std::uint64_t fingerprint = parse_fingerprint(a.info);
    const service::SnapshotFileInfo info =
        service::read_snapshot_info(store.path_of(fingerprint));
    std::cout << "fingerprint:  " << hex_of(info.fingerprint) << "\n"
              << "format:       v" << info.version << "\n"
              << "vertices:     " << info.num_vertices << "\n"
              << "edges:        " << info.num_edges << "\n"
              << "connected:    " << (info.connected ? "yes" : "no") << "\n"
              << "max degree:   " << info.max_degree << "\n"
              << "file bytes:   " << info.file_bytes << "\n"
              << "artifacts:    " << info.saved_bfs_trees << " BFS trees, "
              << info.saved_partitions << " partitions, " << info.saved_samples
              << " samples\n";
    return 0;
  }
  if (!a.evict.empty()) {
    const std::uint64_t fingerprint = parse_fingerprint(a.evict);
    if (!store.evict(fingerprint)) die("fingerprint not in store: " + a.evict);
    std::cout << "evicted " << hex_of(fingerprint) << "\n";
    return 0;
  }

  if (a.edges.empty() == a.generate.empty())
    die("exactly one of --edges / --generate (or --list / --info / --evict) is required");
  const auto t_read = std::chrono::steady_clock::now();
  graph::Graph g = a.edges.empty() ? generate_graph(a) : read_edge_list(a.edges, a.n);
  const double read_ms = ms_since(t_read);

  service::GraphSnapshot::Options opt;
  opt.weight_seed = a.weight_seed;
  opt.max_weight = a.max_weight;
  const auto t_build = std::chrono::steady_clock::now();
  const auto snap = service::GraphSnapshot::build(std::move(g), opt);
  const double build_ms = ms_since(t_build);
  const auto t_save = std::chrono::steady_clock::now();
  const std::filesystem::path path = store.save(*snap);
  const double save_ms = ms_since(t_save);

  std::cout << "ingested      n=" << snap->num_vertices() << " m=" << snap->num_edges()
            << " connected=" << (snap->connected() ? "yes" : "no") << "\n"
            << "fingerprint:  " << hex_of(snap->fingerprint()) << "\n"
            << "file:         " << path.string() << " ("
            << std::filesystem::file_size(path) << " bytes)\n"
            << "timings:      read/generate " << read_ms << " ms, build " << build_ms
            << " ms, save " << save_ms << " ms\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const std::exception& e) {
    std::cerr << "lcsingest: " << e.what() << "\n";
    return 1;
  }
}
