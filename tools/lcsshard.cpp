// lcsshard: one shard process of the sharded query service.
//
// Opens a snapshot by fingerprint from a SnapshotStore, wraps it in a
// ShortcutService, and serves the framed RPC protocol (src/rpc/frame.hpp)
// on a listening endpoint until a client sends kShutdown.  A fleet of
// these behind an lcsrouter is the cross-process deployment of the same
// determinism contract the in-process service tests pin down: which
// process answers a query never changes its digest.
//
//   lcsshard --store DIR --fingerprint HEX --listen SPEC [--seed S] [--threads T]
//
//   --listen SPEC   "unix:/path/to.sock" or "tcp:host:port" (port 0 picks
//                   an ephemeral port; the READY line reports it)
//   --seed S        service seed (default 1) — every shard of a fleet and
//                   the oracle comparing against it must agree
//   --threads T     worker threads of this shard's pool (default: library
//                   default / LCS_THREADS)
//   --send-deadline-ms D   budget for every reply write (default 0 =
//                   block forever) so a stalled client cannot pin a
//                   connection thread
//
// Prints "READY <endpoint> fingerprint=<hex> seed=<S>" on stdout once
// accepting, so a supervisor (scripts/stress_sharded.py) can wait for it.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "rpc/shard.hpp"
#include "service/snapshot_store.hpp"
#include "util/parallel.hpp"

namespace {

using namespace lcs;

[[noreturn]] void die(const std::string& message) {
  std::cerr << "lcsshard: " << message << "\n";
  std::exit(2);
}

std::string hex_of(std::uint64_t fingerprint) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(fingerprint));
  return buf;
}

std::uint64_t parse_fingerprint(const std::string& s) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s.c_str(), &end, 16);
  if (end == s.c_str() || *end != '\0') die("not a hex fingerprint: '" + s + "'");
  return v;
}

struct Args {
  std::string store;
  std::string fingerprint;
  std::string listen;
  std::uint64_t seed = 1;
  unsigned threads = 0;
  int send_deadline_ms = 0;
};

Args parse_args(int argc, char** argv) {
  Args a;
  const auto value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) die(std::string(flag) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--store")
      a.store = value(i, "--store");
    else if (arg == "--fingerprint")
      a.fingerprint = value(i, "--fingerprint");
    else if (arg == "--listen")
      a.listen = value(i, "--listen");
    else if (arg == "--seed")
      a.seed = std::stoull(value(i, "--seed"));
    else if (arg == "--threads")
      a.threads = static_cast<unsigned>(std::stoul(value(i, "--threads")));
    else if (arg == "--send-deadline-ms")
      a.send_deadline_ms = static_cast<int>(std::stol(value(i, "--send-deadline-ms")));
    else
      die("unknown option '" + arg + "' (see the header comment for usage)");
  }
  if (a.store.empty()) die("--store is required");
  if (a.fingerprint.empty()) die("--fingerprint is required");
  if (a.listen.empty()) die("--listen is required");
  return a;
}

int run(const Args& a) {
  if (a.threads > 0) set_num_threads(a.threads);
  service::SnapshotStore store(a.store);
  const std::uint64_t fingerprint = parse_fingerprint(a.fingerprint);
  if (!store.contains(fingerprint)) die("fingerprint not in store: " + a.fingerprint);
  const auto svc =
      std::make_shared<const service::ShortcutService>(store.open(fingerprint), a.seed);

  rpc::ShardServer server(svc, rpc::Endpoint::parse(a.listen), a.send_deadline_ms);
  std::cout << "READY " << server.endpoint().describe() << " fingerprint=" << hex_of(fingerprint)
            << " seed=" << a.seed << std::endl;
  server.wait_for_shutdown();
  server.stop();
  std::cout << "shutdown" << std::endl;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const std::exception& e) {
    std::cerr << "lcsshard: " << e.what() << "\n";
    return 1;
  }
}
