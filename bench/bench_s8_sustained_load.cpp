// S8 — steady-state streaming admission under sustained open-loop load,
// with per-tenant QoS and proactive artifact prewarming (PR 9).
//
// Three tenants (gold/silver/bronze, descending token-bucket budgets) push
// an open-loop arrival stream through a StreamingService at offered loads
// of several multiples of the per-wave admission capacity: every wave, the
// schedule submits mult x capacity queries round-robin across the tenants,
// then pumps one drain wave; after the arrival phase the backlog drains to
// empty.  Recorded per load leg (suffix _x<mult>): wall time, served qps,
// waves, queue-depth p99 over the wave records, and per tenant p50/p99
// execution latency plus the shed rate.  The meaning of the curves is
// guarded by inline determinism gates: (a) every served query bit-identical
// to idle one-at-a-time execution, (b) the recorded arrival/wave schedule
// re-folds to the byte-identical shed set (determinism contract point 9),
// (c) the top leg reproduces verdicts and digests at 1/2/8 threads, and
// (d) the cheap class is never starved — every wave grants it
// min(cheap_slots, cheap backlog) slots.  A prewarm contrast leg measures
// cold vs pool-prewarmed first-query latency over fresh snapshots
// (bit-identical digests, zero warm-path partition misses).
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/registry.hpp"
#include "bench/timer.hpp"
#include "graph/generators.hpp"
#include "service/service.hpp"
#include "service/streaming.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using lcs::Stats;
using lcs::service::ArrivalVerdict;
using lcs::service::GraphSnapshot;
using lcs::service::QueryKind;
using lcs::service::QueryRequest;
using lcs::service::QueryResult;
using lcs::service::ShortcutService;
using lcs::service::StreamingOptions;
using lcs::service::StreamingService;
using lcs::service::TenantConfig;
using lcs::service::TokenBucketConfig;

constexpr const char* kTenantNames[3] = {"gold", "silver", "bronze"};

/// Descending QoS tiers.  Against capacity 6/wave and a round-robin stream
/// whose per-tenant share is half cheap / half heavy, gold sustains nearly
/// everything, silver sheds under deep overload, bronze sheds early — the
/// per-tenant shed-rate curves are the point of the scenario.
StreamingOptions tier_options() {
  StreamingOptions opt;
  opt.drain_thread = false;  // manual pump: the schedule is the benchmark
  opt.max_queue = 4096;      // the sweep saturates budgets, not the bound
  opt.cheap_slots = 4;
  opt.heavy_slots = 2;
  opt.tenants = {
      TenantConfig{kTenantNames[0], TokenBucketConfig{16, 3000}, TokenBucketConfig{8, 1000}},
      TenantConfig{kTenantNames[1], TokenBucketConfig{8, 2000}, TokenBucketConfig{4, 500}},
      TenantConfig{kTenantNames[2], TokenBucketConfig{4, 1000}, TokenBucketConfig{2, 250}},
  };
  return opt;
}

/// The i-th query of a leg: default-shaped (num_parts = 0, the prewarmed
/// partition pool) with alternating cheap/heavy kinds.
QueryRequest leg_query(std::uint64_t id) {
  QueryRequest q;
  q.id = id;
  switch (id % 4) {
    case 0: q.kind = QueryKind::kShortcutQuality; break;
    case 1: q.kind = QueryKind::kMincut; break;
    case 2: q.kind = QueryKind::kShortcutBuild; break;
    default: q.kind = QueryKind::kMst; break;
  }
  q.beta = (id % 3 == 0) ? 0.5 : 1.0;
  q.karger_trials = (id % 8 == 1) ? 8 : 0;
  q.eps = 0.5;
  return q;
}

double p(const Stats& s, double q) { return s.empty() ? 0.0 : s.percentile(q); }

/// One admitted submission of a leg, remembered for wait()/oracle replay.
struct Admitted {
  std::size_t tenant = 0;
  QueryRequest req;
  StreamingService::Ticket ticket;
};

/// Everything one leg run produces.
struct LegRun {
  std::vector<ArrivalVerdict> verdicts;
  std::vector<lcs::service::ScheduleEvent> schedule;
  std::vector<lcs::service::WaveRecord> waves;
  std::vector<lcs::service::TenantStats> tenants;
  std::vector<std::pair<QueryRequest, QueryResult>> served;  // submission order
  double wall_ms = 0.0;
};

/// Drive one open-loop leg: `waves` arrival rounds of mult x capacity
/// submissions round-robin across tenants, a drain wave after each round,
/// then drain the backlog.  Fixed schedule, so every run of the same leg
/// (any thread count) must reproduce the identical outcome.
LegRun run_leg(const ShortcutService& svc, const StreamingOptions& opt, std::uint32_t mult,
               std::uint32_t waves, std::uint64_t id_base) {
  const std::uint32_t capacity = opt.cheap_slots + opt.heavy_slots;
  StreamingService stream(svc, opt);
  std::vector<Admitted> admitted;
  lcs::bench::MonotonicTimer timer;
  std::uint64_t next_id = id_base;
  for (std::uint32_t w = 0; w < waves; ++w) {
    for (std::uint32_t i = 0; i < mult * capacity; ++i) {
      const std::size_t tenant = (next_id - id_base) % 3;
      const QueryRequest q = leg_query(next_id++);
      StreamingService::Ticket t = stream.submit(kTenantNames[tenant], q);
      if (t.admitted()) admitted.push_back(Admitted{tenant, q, std::move(t)});
    }
    stream.drain_wave();
  }
  stream.drain_until_idle();
  LegRun out;
  out.served.reserve(admitted.size());
  for (const Admitted& a : admitted) out.served.emplace_back(a.req, stream.wait(a.ticket));
  out.wall_ms = timer.elapsed_ms();
  out.verdicts = stream.verdicts();
  out.schedule = stream.schedule();
  out.waves = stream.wave_records();
  out.tenants = stream.tenant_stats();
  return out;
}

}  // namespace

LCS_BENCH_SCENARIO(S8_sustained_load,
                   "steady-state streaming admission with per-tenant QoS + prewarming",
                   "open-loop arrivals in {1,4,8}x wave capacity x 3 QoS tiers") {
  using namespace lcs;

  const std::uint32_t n = ctx.pick_n(300, 1200);
  const std::uint64_t seed = ctx.seed(88);

  Rng gen(seed);
  graph::Graph g = graph::connected_gnm(n, 3 * n, gen);
  service::GraphSnapshot::Options sopt;
  sopt.weight_seed = seed ^ 0x99ULL;
  sopt.max_weight = 12;
  sopt.max_cached_partitions = 256;
  sopt.max_cached_samples = 256;
  const auto snapshot = GraphSnapshot::build(std::move(g), sopt);
  const ShortcutService svc(snapshot, seed);

  const StreamingOptions opt = tier_options();
  const std::uint32_t waves_per_leg = ctx.smoke() ? 6 : 20;
  ctx.param("cheap_slots", std::uint64_t{opt.cheap_slots});
  ctx.param("heavy_slots", std::uint64_t{opt.heavy_slots});
  ctx.param("waves_per_leg", std::uint64_t{waves_per_leg});
  {
    Json names = Json::array();
    for (const char* name : kTenantNames) names.push_back(std::string(name));
    ctx.param("tenants", std::move(names));
  }
  const std::vector<std::uint32_t> multiples = ctx.smoke()
                                                   ? std::vector<std::uint32_t>{1, 2, 4}
                                                   : std::vector<std::uint32_t>{1, 4, 8};
  {
    Json arr = Json::array();
    for (const std::uint32_t m : multiples) arr.push_back(std::uint64_t{m});
    ctx.param("offered_multiples", std::move(arr));
  }

  ThreadOverrideGuard guard;
  set_num_threads(4);

  Table t({"load", "arrivals", "served", "waves", "wall_ms", "qps", "depth_p99", "shed_gold",
           "shed_silver", "shed_bronze"});
  bool all_served_ok = true;
  bool cheap_never_starved = true;
  bool shed_replay_identical = true;
  LegRun top;  // the largest offered load, reused by the cross-checks

  for (const std::uint32_t mult : multiples) {
    const LegRun leg = run_leg(svc, opt, mult, waves_per_leg, 100000ull * mult);

    // Contract point 9, live: the journal re-folds to the identical shed set.
    shed_replay_identical =
        shed_replay_identical && leg.verdicts == service::replay_shed_schedule(opt, leg.schedule);

    // Structural no-starvation: every wave granted the cheap class its full
    // entitlement min(cheap_slots, cheap backlog) — heavy load can only add
    // heavy waves, never displace a cheap grant.
    for (const service::WaveRecord& w : leg.waves) {
      const std::uint64_t entitled =
          std::min<std::uint64_t>(opt.cheap_slots, w.cheap_pending_before);
      cheap_never_starved = cheap_never_starved && w.cheap_granted == entitled;
    }

    Stats depth;
    for (const service::WaveRecord& w : leg.waves)
      depth.add(static_cast<double>(w.queue_depth_after));
    Stats lat[3], queue_wait[3];
    for (const auto& [req, res] : leg.served) {
      all_served_ok = all_served_ok && res.ok;
      const std::size_t tenant = req.id % 3;  // the round-robin assignment
      lat[tenant].add(res.latency_ms);
      queue_wait[tenant].add(res.queue_ms);
    }
    const double qps = leg.wall_ms > 1e-6
                           ? 1000.0 * static_cast<double>(leg.served.size()) / leg.wall_ms
                           : 0.0;

    // Lvalue on purpose: gcc 12's -Wrestrict false-fires on the
    // operator+(const char*, std::string&&) inlining path under -O2.
    const std::string mult_str = std::to_string(mult);
    const std::string suffix = "_x" + mult_str;
    ctx.metric("wall_ms" + suffix, leg.wall_ms);
    ctx.metric("qps" + suffix, qps);
    ctx.metric("waves" + suffix, std::uint64_t{leg.waves.size()});
    ctx.metric("queue_depth_p99" + suffix, p(depth, 99.0));
    double shed_rate[3] = {0.0, 0.0, 0.0};
    for (std::size_t i = 0; i < 3; ++i) {
      const service::TenantCounters& c = leg.tenants[i].counters;
      const std::uint64_t shed = c.shed_queue_full + c.shed_rate_limited;
      shed_rate[i] =
          c.arrivals == 0 ? 0.0 : static_cast<double>(shed) / static_cast<double>(c.arrivals);
      const std::string key = suffix + "_" + leg.tenants[i].name;
      ctx.metric("latency_p50_ms" + key, p(lat[i], 50.0));
      ctx.metric("latency_p99_ms" + key, p(lat[i], 99.0));
      ctx.metric("queue_p99_ms" + key, p(queue_wait[i], 99.0));
      ctx.metric("shed_rate" + key, shed_rate[i]);
    }

    t.row()
        .cell("x" + mult_str)
        .cell(std::uint64_t{leg.verdicts.size()})
        .cell(std::uint64_t{leg.served.size()})
        .cell(std::uint64_t{leg.waves.size()})
        .cell(leg.wall_ms, 1)
        .cell(qps, 1)
        .cell(p(depth, 99.0), 1)
        .cell(shed_rate[0], 2)
        .cell(shed_rate[1], 2)
        .cell(shed_rate[2], 2);

    if (mult == multiples.back()) top = leg;
  }

  // Cross-check (a): overload vs idle — every query the saturated stream
  // served must carry the bytes idle one-at-a-time execution produces.
  bool overload_vs_idle = true;
  for (const auto& [req, res] : top.served)
    overload_vs_idle = overload_vs_idle && svc.run(req).digest() == res.digest();

  // Cross-check (c): the top leg's fixed schedule reproduces the identical
  // verdicts and served digests at 1/2/8 threads.
  bool across_threads = true;
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_num_threads(threads);
    const LegRun rerun =
        run_leg(svc, opt, multiples.back(), waves_per_leg, 100000ull * multiples.back());
    across_threads = across_threads && rerun.verdicts == top.verdicts;
    across_threads = across_threads && rerun.served.size() == top.served.size();
    for (std::size_t i = 0; across_threads && i < rerun.served.size(); ++i)
      across_threads = rerun.served[i].second.digest() == top.served[i].second.digest();
  }
  set_num_threads(4);

  // Prewarm contrast: fresh snapshots over the identical graph, pool
  // prewarm on vs off.  The cost prewarming moves out of the serving path
  // is the first-touch materialization of each pool partition, so that is
  // what the headline metric times — partition(pool_seed(slot), k) per pool
  // slot, which is a memo hit on the warm snapshot and a compute on the
  // cold one.  Query-level digests over both snapshots guard that the
  // optimization is invisible to content.
  Rng regen(seed);
  graph::Graph g_warm = graph::connected_gnm(n, 3 * n, regen);
  Rng regen2(seed);
  graph::Graph g_cold = graph::connected_gnm(n, 3 * n, regen2);
  service::GraphSnapshot::Options cold_opt = sopt;
  cold_opt.prewarm_partition_pool = false;
  const auto warm_snap = GraphSnapshot::build(std::move(g_warm), sopt);
  const auto cold_snap = GraphSnapshot::build(std::move(g_cold), cold_opt);
  const std::uint32_t pool = sopt.partition_pool_size;
  const std::uint32_t pool_parts = warm_snap->default_part_count();
  Stats warm_fetch, cold_fetch;
  for (std::uint32_t slot = 0; slot < pool; ++slot) {
    const std::uint64_t pseed = GraphSnapshot::pool_seed(slot);
    bench::MonotonicTimer cold_t;
    (void)cold_snap->partition(pseed, pool_parts);
    cold_fetch.add(cold_t.elapsed_ms());
    bench::MonotonicTimer warm_t;
    (void)warm_snap->partition(pseed, pool_parts);
    warm_fetch.add(warm_t.elapsed_ms());
  }
  const ShortcutService warm_svc(warm_snap, seed);
  const ShortcutService cold_svc(cold_snap, seed);
  bool prewarm_on_vs_off = true;
  const service::ArtifactStats warm_before = warm_snap->artifact_stats();
  for (std::uint32_t i = 0; i < 12; ++i) {
    QueryRequest q;
    q.id = 900000 + i;
    q.kind = (i % 2 == 0) ? QueryKind::kShortcutQuality : QueryKind::kShortcutBuild;
    const QueryResult cold_res = cold_svc.run(q);
    const QueryResult warm_res = warm_svc.run(q);
    prewarm_on_vs_off = prewarm_on_vs_off && cold_res.digest() == warm_res.digest();
  }
  const service::ArtifactStats warm_after = warm_snap->artifact_stats();
  const bool prewarm_zero_warm_misses =
      warm_after.partition.misses == warm_before.partition.misses;
  const double cold_p99 = p(cold_fetch, 99.0);
  const double warm_p99 = p(warm_fetch, 99.0);
  ctx.metric("prewarm_cold_p99_ms", cold_p99);
  ctx.metric("prewarm_warm_p99_ms", warm_p99);
  ctx.metric("prewarm_speedup", warm_p99 > 1e-9 ? cold_p99 / warm_p99 : 0.0);

  t.print(ctx.out(), "S8: sustained streaming admission (3 QoS tiers, 4 threads)");
  ctx.out() << "\nnote: shed_* are per-tenant shed rates (arrivals never served);\n"
            << "depth_p99 is the post-wave queue depth; prewarm_{cold,warm}_p99_ms\n"
            << "time the first-touch pool-partition fetch on fresh snapshots.\n";

  ctx.metric("all_served_ok", all_served_ok);
  ctx.metric("cheap_never_starved", cheap_never_starved);
  ctx.metric("shed_replay_identical", shed_replay_identical);
  ctx.metric("deterministic_overload_vs_idle", overload_vs_idle);
  ctx.metric("deterministic_across_threads", across_threads);
  ctx.metric("deterministic_prewarm_on_vs_off", prewarm_on_vs_off);
  ctx.metric("prewarm_zero_warm_misses", prewarm_zero_warm_misses);
}
