// Micro-benchmarks of the core primitives (google-benchmark): coin flips,
// per-part sampling, BFS, simulator round overhead, shortcut-tree build.
#include <benchmark/benchmark.h>

#include "congest/programs.hpp"
#include "congest/simulator.hpp"
#include "core/coin.hpp"
#include "core/kp.hpp"
#include "core/shortcut_tree.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace lcs;

void BM_CoinFlip(benchmark::State& state) {
  const core::CoinFlipper coins(42, 0.3);
  std::uint32_t e = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coins.flip(e++, 0, 7, 3));
  }
}
BENCHMARK(BM_CoinFlip);

void BM_RngUniform(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform(1000));
}
BENCHMARK(BM_RngUniform);

void BM_BfsHardInstance(benchmark::State& state) {
  const graph::HardInstance hi =
      graph::hard_instance(static_cast<std::uint32_t>(state.range(0)), 4);
  for (auto _ : state) benchmark::DoNotOptimize(graph::bfs(hi.g, 0).reached);
  state.SetItemsProcessed(state.iterations() * hi.g.num_edges());
}
BENCHMARK(BM_BfsHardInstance)->Arg(1024)->Arg(4096);

void BM_KpSampleOnePart(benchmark::State& state) {
  const graph::HardInstance hi =
      graph::hard_instance(static_cast<std::uint32_t>(state.range(0)), 4);
  const ShortcutParams params = ShortcutParams::make(hi.g.num_vertices(), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::kp_edges_for_part(hi.g, hi.paths, 0, params, 0, 1, params.repetitions)
            .size());
  }
  state.SetItemsProcessed(state.iterations() * hi.g.num_edges() * params.repetitions);
}
BENCHMARK(BM_KpSampleOnePart)->Arg(1024)->Arg(4096);

void BM_SimulatorBfsRound(benchmark::State& state) {
  Rng rng(3);
  const graph::Graph g =
      graph::connected_gnm(static_cast<std::uint32_t>(state.range(0)),
                           3 * static_cast<std::uint32_t>(state.range(0)), rng);
  for (auto _ : state) {
    congest::BfsProgram prog(g.num_vertices(), 0);
    congest::Simulator sim(g, 1);
    benchmark::DoNotOptimize(sim.run(prog, 1 << 20).rounds);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_SimulatorBfsRound)->Arg(512)->Arg(2048);

void BM_ShortcutTreeBuild(benchmark::State& state) {
  const graph::HardInstance hi =
      graph::hard_instance(static_cast<std::uint32_t>(state.range(0)), 4);
  const ShortcutParams params = ShortcutParams::make(hi.g.num_vertices(), 4);
  std::vector<graph::VertexId> path(hi.paths.parts[0].begin(),
                                    hi.paths.parts[0].begin() + 15);
  const std::vector<graph::VertexId> q{hi.paths.leader(1)};
  for (auto _ : state) {
    const core::ShortcutTree st(hi.g, path, q, 4, 9, params.sample_prob, 0);
    benchmark::DoNotOptimize(st.tree_complete());
  }
}
BENCHMARK(BM_ShortcutTreeBuild)->Arg(512)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
