// Micro-benchmarks of the core primitives: coin flips, per-part sampling,
// BFS, simulator round overhead, shortcut-tree build.  Each is its own
// scenario so `lcsbench micro_bfs --json ...` tracks one primitive; the
// ns/op numbers land in the JSON metrics.
#include <cstdint>
#include <string>
#include <vector>

#include "bench/registry.hpp"
#include "bench/timer.hpp"
#include "congest/programs.hpp"
#include "congest/simulator.hpp"
#include "core/coin.hpp"
#include "core/kp.hpp"
#include "core/shortcut_tree.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace lcs;
using lcs::bench::do_not_optimize;
using lcs::bench::time_ns_per_op;

}  // namespace

LCS_BENCH_SCENARIO(micro_coin_flip, "micro: pseudorandom directed coin flip",
                   "fixed p=0.3, hash-indexed flips") {
  const core::CoinFlipper coins(ctx.seed(42), 0.3);
  const std::uint64_t iters = ctx.smoke() ? 1u << 16 : 1u << 22;
  std::uint32_t e = 0;
  const double ns = time_ns_per_op(iters, [&] { do_not_optimize(coins.flip(e++, 0, 7, 3)); });
  ctx.out() << "coin flip: " << ns << " ns/op over " << iters << " iterations\n";
  ctx.metric("ns_per_op", ns);
}

LCS_BENCH_SCENARIO(micro_rng_uniform, "micro: Rng::uniform draw", "uniform(1000)") {
  Rng rng(ctx.seed(1));
  const std::uint64_t iters = ctx.smoke() ? 1u << 16 : 1u << 22;
  const double ns = time_ns_per_op(iters, [&] { do_not_optimize(rng.uniform(1000)); });
  ctx.out() << "rng uniform: " << ns << " ns/op over " << iters << " iterations\n";
  ctx.metric("ns_per_op", ns);
}

LCS_BENCH_SCENARIO(micro_bfs, "micro: full BFS on the hard instance",
                   "n in {1024,4096} (smoke: {1024}), D=4") {
  Table t({"n", "m", "us/bfs", "ns/edge"});
  for (const std::uint32_t n : ctx.n_sweep({1024}, {1024, 4096})) {
    const graph::HardInstance hi = graph::hard_instance(n, 4);
    const std::uint64_t iters = ctx.smoke() ? 20 : 200;
    const double ns =
        time_ns_per_op(iters, [&] { do_not_optimize(graph::bfs(hi.g, 0).reached); });
    t.row()
        .cell(hi.g.num_vertices())
        .cell(hi.g.num_edges())
        .cell(ns / 1e3, 2)
        .cell(ns / static_cast<double>(hi.g.num_edges()), 2);
    ctx.metric("ns_per_edge_n" + std::to_string(n),
               ns / static_cast<double>(hi.g.num_edges()));
  }
  t.print(ctx.out(), "micro: BFS throughput");
}

LCS_BENCH_SCENARIO(micro_kp_sample_part, "micro: KP edge sampling for one part",
                   "n in {1024,4096} (smoke: {1024}), D=4") {
  Table t({"n", "us/part", "ns/(edge*rep)"});
  for (const std::uint32_t n : ctx.n_sweep({1024}, {1024, 4096})) {
    const graph::HardInstance hi = graph::hard_instance(n, 4);
    const ShortcutParams params = ShortcutParams::make(hi.g.num_vertices(), 4);
    const std::uint64_t iters = ctx.smoke() ? 20 : 100;
    const double ns = time_ns_per_op(iters, [&] {
      do_not_optimize(
          core::kp_edges_for_part(hi.g, hi.paths, 0, params, 0, 1, params.repetitions)
              .size());
    });
    const double per_unit =
        ns / (static_cast<double>(hi.g.num_edges()) * params.repetitions);
    t.row().cell(hi.g.num_vertices()).cell(ns / 1e3, 2).cell(per_unit, 3);
    ctx.metric("ns_per_edge_rep_n" + std::to_string(n), per_unit);
  }
  t.print(ctx.out(), "micro: per-part sampling throughput");
}

LCS_BENCH_SCENARIO(micro_simulator_round, "micro: CONGEST simulator BFS run",
                   "connected G(n,3n), n in {512,2048} (smoke: {512})") {
  Table t({"n", "m", "us/run", "ns/edge"});
  for (const std::uint32_t n : ctx.n_sweep({512}, {512, 2048})) {
    Rng rng(3);
    const graph::Graph g = graph::connected_gnm(n, 3 * n, rng);
    const std::uint64_t iters = ctx.smoke() ? 10 : 50;
    const double ns = time_ns_per_op(iters, [&] {
      congest::BfsProgram prog(g.num_vertices(), 0);
      congest::Simulator sim(g, 1);
      do_not_optimize(sim.run(prog, 1 << 20).rounds);
    });
    t.row()
        .cell(g.num_vertices())
        .cell(g.num_edges())
        .cell(ns / 1e3, 2)
        .cell(ns / static_cast<double>(g.num_edges()), 2);
    ctx.metric("ns_per_edge_n" + std::to_string(n), ns / static_cast<double>(g.num_edges()));
  }
  t.print(ctx.out(), "micro: simulator round overhead");
}

LCS_BENCH_SCENARIO(micro_shortcut_tree_build, "micro: shortcut-tree construction",
                   "15-node path prefix, n in {512,2048} (smoke: {512}), D=4") {
  Table t({"n", "us/build"});
  const std::uint64_t seed = ctx.seed(9);
  for (const std::uint32_t n : ctx.n_sweep({512}, {512, 2048})) {
    const graph::HardInstance hi = graph::hard_instance(n, 4);
    const ShortcutParams params = ShortcutParams::make(hi.g.num_vertices(), 4);
    std::vector<graph::VertexId> path(hi.paths.parts[0].begin(),
                                      hi.paths.parts[0].begin() + 15);
    const std::vector<graph::VertexId> q{hi.paths.leader(1)};
    const std::uint64_t iters = ctx.smoke() ? 20 : 100;
    const double ns = time_ns_per_op(iters, [&] {
      const core::ShortcutTree st(hi.g, path, q, 4, seed, params.sample_prob, 0);
      do_not_optimize(st.tree_complete());
    });
    t.row().cell(hi.g.num_vertices()).cell(ns / 1e3, 2);
    ctx.metric("us_per_build_n" + std::to_string(n), ns / 1e3);
  }
  t.print(ctx.out(), "micro: shortcut-tree build");
}
