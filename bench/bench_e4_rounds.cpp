// E4 — Theorem 1.1 (round complexity): the distributed construction runs in
// Õ(k_D) rounds.  Every stage is simulated on the CONGEST simulator except
// the two charged stages (SR broadcast and spanning verification), which
// follow the paper's own accounting.
#include <algorithm>

#include "bench/registry.hpp"
#include "core/distributed.hpp"
#include "graph/generators.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

LCS_BENCH_SCENARIO(e4_rounds, "distributed construction in O~(k_D) rounds (Thm 1.1)",
                   "D in {4,6} x n-sweep") {
  using namespace lcs;

  Table t({"D", "n", "k_D", "bfs", "detect", "number", "sr", "multibfs",
           "verify", "total", "total/(k_D ln^2 n)", "ok"});
  const std::uint64_t seed = ctx.seed(11);
  double worst_norm = 0;
  bool all_ok = true;
  for (const unsigned d : {4u, 6u}) {
    for (const std::uint32_t n : ctx.n_sweep()) {
      const graph::HardInstance hi = graph::hard_instance(n, d);
      core::DistributedOptions opt;
      opt.diameter = d;
      opt.seed = seed;
      const auto out = core::build_distributed(hi.g, hi.paths, opt);
      const double ln_n = ln_clamped(hi.g.num_vertices());
      const double denom = out.params.k_d * ln_n * ln_n;
      worst_norm = std::max(worst_norm, out.rounds.total() / denom);
      all_ok = all_ok && out.success;
      t.row()
          .cell(d)
          .cell(hi.g.num_vertices())
          .cell(out.params.k_d, 2)
          .cell(out.rounds.global_bfs)
          .cell(out.rounds.part_detection)
          .cell(out.rounds.numbering)
          .cell(out.rounds.sr_broadcast)
          .cell(out.rounds.multi_bfs)
          .cell(out.rounds.verification)
          .cell(out.rounds.total())
          .cell(out.rounds.total() / denom, 3)
          .cell(out.success ? "yes" : "NO");
    }
  }
  t.print(ctx.out(), "E4: simulated rounds of the distributed construction");
  ctx.out() << "\nclaim holds when total/(k_D ln^2 n) stays O(1) as n grows.\n";
  ctx.metric("worst_total_over_kd_ln2_n", worst_norm);
  ctx.metric("all_ok", all_ok);
}
