// E4 — Theorem 1.1 (round complexity): the distributed construction runs in
// Õ(k_D) rounds.  Every stage is simulated on the CONGEST simulator except
// the two charged stages (SR broadcast and spanning verification), which
// follow the paper's own accounting.
#include <iostream>

#include "bench_util.hpp"
#include "core/distributed.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lcs;
  bench::banner("E4", "distributed construction in O~(k_D) rounds (Thm 1.1)");

  Table t({"D", "n", "k_D", "bfs", "detect", "number", "sr", "multibfs",
           "verify", "total", "total/(k_D ln^2 n)", "ok"});
  for (const unsigned d : {4u, 6u}) {
    for (const std::uint32_t n : bench::n_sweep()) {
      const graph::HardInstance hi = graph::hard_instance(n, d);
      core::DistributedOptions opt;
      opt.diameter = d;
      opt.seed = 11;
      const auto out = core::build_distributed(hi.g, hi.paths, opt);
      const double ln_n = ln_clamped(hi.g.num_vertices());
      const double denom = out.params.k_d * ln_n * ln_n;
      t.row()
          .cell(d)
          .cell(hi.g.num_vertices())
          .cell(out.params.k_d, 2)
          .cell(out.rounds.global_bfs)
          .cell(out.rounds.part_detection)
          .cell(out.rounds.numbering)
          .cell(out.rounds.sr_broadcast)
          .cell(out.rounds.multi_bfs)
          .cell(out.rounds.verification)
          .cell(out.rounds.total())
          .cell(out.rounds.total() / denom, 3)
          .cell(out.success ? "yes" : "NO");
    }
  }
  t.print(std::cout, "E4: simulated rounds of the distributed construction");
  std::cout << "\nclaim holds when total/(k_D ln^2 n) stays O(1) as n grows.\n";
  return 0;
}
