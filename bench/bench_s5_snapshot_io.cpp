// S5 — snapshot ingest/serve: build vs mmap-load, cold vs warm first query
// (PR 6).
//
// Leg 1 (scale): a generated million-node connected G(n,m) is frozen into a
// snapshot (build), saved through the fingerprint-addressed store, and
// mmap-loaded back.  Recorded: build/save/load wall time, file size, and
// the first-query latency cold (freshly built snapshot, empty artifact
// cache) vs warm (mmap-loaded snapshot whose saved artifacts arrive
// pre-seeded).  The headline gate `mmap_load_faster` asserts the point of
// the format: opening a frozen graph by fingerprint is orders of magnitude
// cheaper than rebuilding it.
//
// Leg 2 (digest gate): on a smaller instance, every query kind runs against
// built and loaded snapshots at 1/2/8 threads — the digests must be
// bit-identical (`deterministic_loaded_vs_built`), the inline twin of
// tests/test_snapshot_store.cpp's round-trip suite.
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/registry.hpp"
#include "bench/timer.hpp"
#include "graph/generators.hpp"
#include "service/service.hpp"
#include "service/snapshot_store.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using lcs::service::QueryKind;
using lcs::service::QueryRequest;
using lcs::service::QueryResult;

std::vector<QueryRequest> gate_batch(std::uint32_t n) {
  std::vector<QueryRequest> batch;
  const auto add = [&](QueryKind kind, std::uint32_t num_parts, std::uint32_t karger,
                       double eps) {
    QueryRequest q;
    q.id = 55'000 + batch.size();
    q.kind = kind;
    q.num_parts = num_parts;
    q.karger_trials = karger;
    q.eps = eps;
    batch.push_back(q);
  };
  add(QueryKind::kShortcutQuality, 0, 0, 0.5);
  add(QueryKind::kShortcutBuild, n / 6, 0, 0.5);
  add(QueryKind::kMst, 0, 0, 0.5);
  add(QueryKind::kMincut, 0, 2, 0.5);
  add(QueryKind::kMincut, 0, 0, 0.6);
  return batch;
}

std::vector<std::uint64_t> digests(const std::vector<QueryResult>& rs) {
  std::vector<std::uint64_t> d;
  d.reserve(rs.size());
  for (const auto& r : rs) d.push_back(r.digest());
  return d;
}

}  // namespace

LCS_BENCH_SCENARIO(S5_snapshot_io,
                   "snapshot store ingest/serve: build vs mmap-load, cold vs warm first query",
                   "~1M-node gnm ingest -> serve + all-kind digest gate at n=5000") {
  using namespace lcs;

  const std::uint32_t n = ctx.pick_n(1'000'000, 2'000'000);
  const std::uint32_t m = 2 * n;
  const std::uint64_t seed = ctx.seed(65);
  ctx.param("m", std::uint64_t{m});

  const std::filesystem::path store_dir =
      std::filesystem::temp_directory_path() / "lcs-bench-s5-store";
  std::filesystem::remove_all(store_dir);
  service::SnapshotStore store(store_dir);

  ThreadOverrideGuard guard;
  set_num_threads(4);

  // --- leg 1: ingest -> serve at scale -----------------------------------
  Rng gen(seed);
  bench::MonotonicTimer t_gen;
  graph::Graph g = graph::connected_gnm(n, m, gen);
  const double generate_ms = t_gen.elapsed_ms();

  service::GraphSnapshot::Options sopt;
  sopt.weight_seed = seed ^ 0x5105ULL;
  bench::MonotonicTimer t_build;
  const auto built = service::GraphSnapshot::build(std::move(g), sopt);
  const double build_ms = t_build.elapsed_ms();

  // Cold first query: freshly built snapshot, empty artifact cache.  A
  // shortcut build over few parts: the dominant cost is the BFS-Voronoi
  // partition of the full graph, which is exactly the artifact the snapshot
  // file pre-warms.  (Default ~sqrt(n) parts would time the KP referee's
  // per-part edge scan — the referee, not the snapshot path.)
  const service::ShortcutService built_svc(built, seed);
  QueryRequest first;
  first.id = 54'001;
  first.kind = QueryKind::kShortcutBuild;
  first.num_parts = 8;
  bench::MonotonicTimer t_cold;
  const QueryResult cold = built_svc.run(first);
  const double cold_first_query_ms = t_cold.elapsed_ms();

  bench::MonotonicTimer t_save;
  const std::filesystem::path path = store.save(*built);
  const double save_ms = t_save.elapsed_ms();
  const double snapshot_bytes = static_cast<double>(std::filesystem::file_size(path));

  bench::MonotonicTimer t_load;
  const auto loaded = store.open(built->fingerprint());
  const double load_ms = t_load.elapsed_ms();

  // Warm first query: same request against the loaded snapshot — its
  // partition artifact came out of the file, so the query is a cache hit.
  const service::ShortcutService loaded_svc(loaded, seed);
  bench::MonotonicTimer t_warm;
  const QueryResult warm = loaded_svc.run(first);
  const double warm_first_query_ms = t_warm.elapsed_ms();

  bool all_ok = cold.ok && warm.ok;
  bool loaded_vs_built = cold.digest() == warm.digest() &&
                         loaded->fingerprint() == built->fingerprint();
  const double load_speedup =
      load_ms > 1e-6 ? build_ms / load_ms : 0.0;

  Table t({"leg", "ms", "note"});
  t.row().cell("generate").cell(generate_ms, 1).cell("connected gnm, untimed input");
  t.row().cell("build").cell(build_ms, 1).cell("freeze + weights + connectivity + bracket");
  t.row().cell("cold first query").cell(cold_first_query_ms, 1).cell("built, empty cache");
  t.row().cell("save").cell(save_ms, 1).cell(std::to_string(static_cast<std::uint64_t>(
                                                 snapshot_bytes / (1024 * 1024))) +
                                             " MiB canonical file");
  t.row().cell("mmap load").cell(load_ms, 1).cell("checksum + zero-copy views");
  t.row().cell("warm first query").cell(warm_first_query_ms, 1).cell("loaded, artifact hit");
  t.print(ctx.out(), "S5 leg 1: ingest -> serve at n=" + std::to_string(n));
  ctx.out() << "\nmmap load is " << load_speedup << "x faster than in-process build\n";

  ctx.metric("generate_ms", generate_ms);
  ctx.metric("build_ms", build_ms);
  ctx.metric("save_ms", save_ms);
  ctx.metric("load_ms", load_ms);
  ctx.metric("snapshot_bytes", snapshot_bytes);
  ctx.metric("cold_first_query_ms", cold_first_query_ms);
  ctx.metric("warm_first_query_ms", warm_first_query_ms);
  ctx.metric("load_speedup_vs_build", load_speedup);

  // --- leg 2: all-kind digest gate on a service-sized instance ------------
  const std::uint32_t gate_n = 2000;
  Rng gate_gen(seed ^ 0x6eULL);
  const auto gate_built =
      service::GraphSnapshot::build(graph::connected_gnm(gate_n, 3 * gate_n, gate_gen));
  const auto batch = gate_batch(gate_n);
  const service::ShortcutService gate_built_svc(gate_built, seed);
  const std::vector<QueryResult> gate_reference = gate_built_svc.run_batch(batch);
  for (const QueryResult& r : gate_reference) all_ok = all_ok && r.ok;
  const std::vector<std::uint64_t> reference = digests(gate_reference);

  store.save(*gate_built);
  const auto gate_loaded = store.open(gate_built->fingerprint());
  const service::ShortcutService gate_loaded_svc(gate_loaded, seed);
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_num_threads(threads);
    loaded_vs_built =
        loaded_vs_built && digests(gate_loaded_svc.run_batch(batch)) == reference;
  }
  ctx.out() << "digest gate: every kind at 1/2/8 threads, loaded vs built: "
            << (loaded_vs_built ? "identical" : "MISMATCH") << "\n";

  ctx.metric("deterministic_loaded_vs_built", loaded_vs_built);
  ctx.metric("all_queries_ok", all_ok);
  ctx.metric("mmap_load_faster", load_ms < build_ms);

  std::filesystem::remove_all(store_dir);
}
