// E10 — Section 2, "omitting the assumption of knowing D": the guessing
// variant sweeps D'' from the BFS eccentricity up to its double, stopping at
// the first guess whose shortcuts verify.  Total rounds stay within a
// constant factor of the known-D run (k_D'' is increasing in D'').
#include <algorithm>
#include <vector>

#include "bench/registry.hpp"
#include "core/distributed.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

LCS_BENCH_SCENARIO(e10_guessing, "diameter guessing terminates at quality of the true D",
                   "D in {4,5,6} x n in {512,2048} (smoke: 512)") {
  using namespace lcs;

  Table t({"D", "n", "attempts", "rounds(guessing)", "rounds(known D)",
           "overhead", "ok"});
  const std::uint64_t seed = ctx.seed(13);
  double worst_overhead = 0;
  bool all_ok = true;
  for (const unsigned d : {4u, 5u, 6u}) {
    for (const std::uint32_t n : ctx.n_sweep({512}, {512, 2048})) {
      const graph::HardInstance hi = graph::hard_instance(n, d);
      core::DistributedOptions opt;
      opt.seed = seed;
      const auto guess = core::build_distributed_guessing(hi.g, hi.paths, opt);
      core::DistributedOptions known;
      known.seed = seed;
      known.diameter = d;
      const auto exact = core::build_distributed(hi.g, hi.paths, known);
      const double overhead =
          double(guess.rounds.total()) / double(exact.rounds.total());
      worst_overhead = std::max(worst_overhead, overhead);
      all_ok = all_ok && guess.success && exact.success;
      t.row()
          .cell(d)
          .cell(hi.g.num_vertices())
          .cell(guess.attempts)
          .cell(guess.rounds.total())
          .cell(exact.rounds.total())
          .cell(overhead, 2)
          .cell(guess.success && exact.success ? "yes" : "NO");
    }
  }
  t.print(ctx.out(), "E10: guessing vs known-D construction");
  ctx.out() << "\nclaim: overhead stays O(1) (geometric growth of k_D'' in the\n"
               "guess sweep; the paper bounds the sum by O(k_D log^2 n)).\n";
  ctx.metric("worst_overhead", worst_overhead);
  ctx.metric("all_ok", all_ok);
}
