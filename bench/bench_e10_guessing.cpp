// E10 — Section 2, "omitting the assumption of knowing D": the guessing
// variant sweeps D'' from the BFS eccentricity up to its double, stopping at
// the first guess whose shortcuts verify.  Total rounds stay within a
// constant factor of the known-D run (k_D'' is increasing in D'').
#include <iostream>

#include "bench_util.hpp"
#include "core/distributed.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lcs;
  bench::banner("E10", "diameter guessing terminates at quality of the true D");

  Table t({"D", "n", "attempts", "rounds(guessing)", "rounds(known D)",
           "overhead", "ok"});
  for (const unsigned d : {4u, 5u, 6u}) {
    for (const std::uint32_t n : bench::quick_mode()
                                     ? std::vector<std::uint32_t>{512}
                                     : std::vector<std::uint32_t>{512, 2048}) {
      const graph::HardInstance hi = graph::hard_instance(n, d);
      core::DistributedOptions opt;
      opt.seed = 13;
      const auto guess = core::build_distributed_guessing(hi.g, hi.paths, opt);
      core::DistributedOptions known;
      known.seed = 13;
      known.diameter = d;
      const auto exact = core::build_distributed(hi.g, hi.paths, known);
      t.row()
          .cell(d)
          .cell(hi.g.num_vertices())
          .cell(guess.attempts)
          .cell(guess.rounds.total())
          .cell(exact.rounds.total())
          .cell(double(guess.rounds.total()) / double(exact.rounds.total()), 2)
          .cell(guess.success && exact.success ? "yes" : "NO");
    }
  }
  t.print(std::cout, "E10: guessing vs known-D construction");
  std::cout << "\nclaim: overhead stays O(1) (geometric growth of k_D'' in the\n"
               "guess sweep; the paper bounds the sum by O(k_D log^2 n)).\n";
  return 0;
}
