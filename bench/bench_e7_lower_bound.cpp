// E7 — the Elkin/Lotker lower-bound family: on D-diameter instances made of
// long paths tied together by a shallow hub tree, every known general
// construction pays ~sqrt(n) (trivial: bare path; GH: sqrt(n) congestion),
// while KP21 pays Õ(k_D) — matching the Ω̃(n^((D-2)/(2D-2))) bound this
// family certifies (Elkin STOC'04 / Das Sarma et al.).
#include <algorithm>
#include <cmath>

#include "bench/registry.hpp"
#include "core/kp.hpp"
#include "graph/generators.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

LCS_BENCH_SCENARIO(e7_lower_bound,
                   "hard family: KP matches k_D while baselines pay sqrt(n)",
                   "D in {4..7}, n = 4096 (smoke: 1024), 4 constructions per row") {
  using namespace lcs;

  Table t({"D", "n", "k_D", "sqrt(n)", "KP quality", "GH quality",
           "det-tree quality", "trivial quality", "KP/k_D ln n"});
  const std::uint64_t seed = ctx.seed(23);
  double worst_norm = 0;
  for (const unsigned d : {4u, 5u, 6u, 7u}) {
    const std::uint32_t n = ctx.pick_n(1024, 4096);
    const graph::HardInstance hi = graph::hard_instance(n, d);

    core::KpOptions opt;
    opt.diameter = d;
    opt.seed = seed;
    const auto kp = core::measure_kp_quality(hi.g, hi.paths, opt);
    const auto gh =
        core::measure_quality(hi.g, hi.paths, core::build_gh_shortcuts(hi.g, hi.paths));
    const auto det = core::measure_quality(
        hi.g, hi.paths, core::build_deterministic_tree_shortcuts(hi.g, hi.paths, d));
    const auto trivial = core::measure_quality(hi.g, hi.paths,
                                               core::build_trivial_shortcuts(hi.paths));
    const double kd_ln = kp.params.k_d * ln_clamped(hi.g.num_vertices());
    const double kp_quality = static_cast<double>(kp.quality.quality());
    worst_norm = std::max(worst_norm, kp_quality / kd_ln);
    t.row()
        .cell(d)
        .cell(hi.g.num_vertices())
        .cell(kp.params.k_d, 1)
        .cell(std::sqrt(double(hi.g.num_vertices())), 1)
        .cell(static_cast<std::uint64_t>(kp.quality.quality()))
        .cell(static_cast<std::uint64_t>(gh.quality()))
        .cell(static_cast<std::uint64_t>(det.quality()))
        .cell(static_cast<std::uint64_t>(trivial.quality()))
        .cell(kp_quality / kd_ln, 3);
  }
  t.print(ctx.out(), "E7: construction comparison on the lower-bound family");
  ctx.out() << "\nshape: trivial quality ~ path length ~ sqrt(n); GH ~ sqrt(n)\n"
               "congestion + D; the deterministic leader-tree baseline pays\n"
               "#parts congestion on hub edges (the derandomization gap);\n"
               "KP tracks k_D ln n, separating for D >= 4 as n grows\n"
               "(k_D/sqrt(n) = n^{-1/(2D-2)}).\n";
  ctx.metric("worst_kp_quality_over_kd_ln_n", worst_norm);
}
