// E2 — Section 2 congestion argument: each edge lands in
// O(D · k_D · log n) augmented subgraphs w.h.p. (Chernoff).
//
// Measures the max edge congestion across seeds and families and compares
// it with the per-edge *expectation* 2 + 2·D·N·p (the quantity the Chernoff
// bound concentrates around); the ratio max/mean must stay ~1+o(1).
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/kp.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

int main() {
  using namespace lcs;
  bench::banner("E2", "congestion = O(D k_D log n) w.h.p. (Chernoff, Section 2)");

  Table t({"family", "D", "n", "N", "p", "expected_load", "max_cong(seeds)",
           "max/expected"});
  for (const unsigned d : {3u, 4u, 5u, 6u}) {
    for (const std::uint32_t n : bench::n_sweep()) {
      const graph::HardInstance hi = graph::hard_instance(n, d);
      Stats max_cong;
      double expected = 0;
      for (unsigned trial = 0; trial < bench::trials(); ++trial) {
        core::KpOptions opt;
        opt.diameter = d;
        opt.seed = 100 + trial;
        const auto rep = core::measure_kp_quality(hi.g, hi.paths, opt);
        max_cong.add(rep.quality.congestion);
        // Per-edge expected congestion: 2 (step 1) + per-part membership
        // probability (an edge enters H_i if any of the 2*reps directed
        // coins land) summed over the large parts.  The paper's
        // 2*D*N*p counts sampling *events* and upper-bounds this union.
        const double membership =
            1.0 - std::pow(1.0 - rep.params.sample_prob, 2.0 * rep.params.repetitions);
        expected = 2.0 + membership * static_cast<double>(rep.num_large);
      }
      t.row()
          .cell("hard")
          .cell(d)
          .cell(hi.g.num_vertices())
          .cell(std::uint64_t{ceil_div(hi.g.num_vertices(),
                                       ShortcutParams::make(hi.g.num_vertices(), d)
                                           .large_threshold)})
          .cell(ShortcutParams::make(hi.g.num_vertices(), d).sample_prob, 3)
          .cell(expected, 1)
          .cell(max_cong.max(), 0)
          .cell(max_cong.max() / std::max(1.0, expected), 3);
    }
  }

  // A second family: layered random graphs with ball partitions.
  Rng rng(7);
  for (const std::uint32_t n : bench::n_sweep()) {
    const graph::Graph g = graph::layered_random_graph(n, 5, 1.0, rng);
    const graph::Partition parts = graph::ball_partition(g, std::max(4u, n / 64), rng);
    core::KpOptions opt;
    opt.diameter = 5;
    opt.seed = 3;
    const auto rep = core::measure_kp_quality(g, parts, opt);
    const double membership =
        1.0 - std::pow(1.0 - rep.params.sample_prob, 2.0 * rep.params.repetitions);
    const double expected = 2.0 + membership * static_cast<double>(rep.num_large);
    t.row()
        .cell("layered")
        .cell(5u)
        .cell(g.num_vertices())
        .cell(std::uint64_t{rep.num_large})
        .cell(rep.params.sample_prob, 3)
        .cell(expected, 1)
        .cell(std::uint64_t{rep.quality.congestion})
        .cell(rep.quality.congestion / std::max(1.0, expected), 3);
  }
  t.print(std::cout, "E2: max edge congestion vs Chernoff expectation");
  std::cout << "\nclaim holds when max/expected stays O(1) as n grows "
               "(concentration).\n";
  return 0;
}
