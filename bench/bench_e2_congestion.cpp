// E2 — Section 2 congestion argument: each edge lands in
// O(D · k_D · log n) augmented subgraphs w.h.p. (Chernoff).
//
// Measures the max edge congestion across seeds and families and compares
// it with the per-edge *expectation* 2 + 2·D·N·p (the quantity the Chernoff
// bound concentrates around); the ratio max/mean must stay ~1+o(1).
#include <algorithm>
#include <cmath>

#include "bench/registry.hpp"
#include "core/kp.hpp"
#include "graph/generators.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

LCS_BENCH_SCENARIO(e2_congestion,
                   "congestion = O(D k_D log n) w.h.p. (Chernoff, Section 2)",
                   "hard: D in {3..6} x n-sweep; layered: D=5 x n-sweep") {
  using namespace lcs;

  Table t({"family", "D", "n", "N", "p", "expected_load", "max_cong(seeds)",
           "max/expected"});
  const std::uint64_t seed = ctx.seed(100);
  double worst_ratio = 0;
  for (const unsigned d : {3u, 4u, 5u, 6u}) {
    for (const std::uint32_t n : ctx.n_sweep()) {
      const graph::HardInstance hi = graph::hard_instance(n, d);
      Stats max_cong;
      double expected = 0;
      for (unsigned trial = 0; trial < ctx.trials(); ++trial) {
        core::KpOptions opt;
        opt.diameter = d;
        opt.seed = seed + trial;
        const auto rep = core::measure_kp_quality(hi.g, hi.paths, opt);
        max_cong.add(rep.quality.congestion);
        // Per-edge expected congestion: 2 (step 1) + per-part membership
        // probability (an edge enters H_i if any of the 2*reps directed
        // coins land) summed over the large parts.  The paper's
        // 2*D*N*p counts sampling *events* and upper-bounds this union.
        const double membership =
            1.0 - std::pow(1.0 - rep.params.sample_prob, 2.0 * rep.params.repetitions);
        expected = 2.0 + membership * static_cast<double>(rep.num_large);
      }
      worst_ratio = std::max(worst_ratio, max_cong.max() / std::max(1.0, expected));
      t.row()
          .cell("hard")
          .cell(d)
          .cell(hi.g.num_vertices())
          .cell(std::uint64_t{ceil_div(hi.g.num_vertices(),
                                       ShortcutParams::make(hi.g.num_vertices(), d)
                                           .large_threshold)})
          .cell(ShortcutParams::make(hi.g.num_vertices(), d).sample_prob, 3)
          .cell(expected, 1)
          .cell(max_cong.max(), 0)
          .cell(max_cong.max() / std::max(1.0, expected), 3);
    }
  }

  // A second family: layered random graphs with ball partitions.
  Rng rng(7);
  for (const std::uint32_t n : ctx.n_sweep()) {
    const graph::Graph g = graph::layered_random_graph(n, 5, 1.0, rng);
    const graph::Partition parts = graph::ball_partition(g, std::max(4u, n / 64), rng);
    core::KpOptions opt;
    opt.diameter = 5;
    opt.seed = seed;
    const auto rep = core::measure_kp_quality(g, parts, opt);
    const double membership =
        1.0 - std::pow(1.0 - rep.params.sample_prob, 2.0 * rep.params.repetitions);
    const double expected = 2.0 + membership * static_cast<double>(rep.num_large);
    worst_ratio = std::max(worst_ratio, rep.quality.congestion / std::max(1.0, expected));
    t.row()
        .cell("layered")
        .cell(5u)
        .cell(g.num_vertices())
        .cell(std::uint64_t{rep.num_large})
        .cell(rep.params.sample_prob, 3)
        .cell(expected, 1)
        .cell(std::uint64_t{rep.quality.congestion})
        .cell(rep.quality.congestion / std::max(1.0, expected), 3);
  }
  t.print(ctx.out(), "E2: max edge congestion vs Chernoff expectation");
  ctx.out() << "\nclaim holds when max/expected stays O(1) as n grows "
               "(concentration).\n";
  ctx.metric("worst_ratio_max_over_expected", worst_ratio);
  ctx.metric("rows", std::uint64_t{t.rows()});
}
