// S6 — sharded throughput: one batch scattered across 1/2/4 shard servers
// vs a single in-process service (PR 7).
//
// Leg 1 (throughput): a deterministic mixed batch runs on a plain
// ShortcutService (the local baseline), then through a ShardRouter over
// fleets of 1, 2 and 4 real ShardServers — full RPC stack, unix sockets,
// wire codec — recording qps, p50/p99 per-query latency, and the speedup
// over the local run.  The servers live in this process (each on its own
// accept/serve threads), so the numbers measure protocol + scatter/gather
// overhead and cross-shard overlap, not machine count.
//
// Leg 2 (digest gate): the same batch at 1/2/8 threads across every fleet
// size must produce digests bit-identical to the local baseline —
// `deterministic_sharded_vs_local`, the inline twin of
// tests/test_sharded_service.cpp's placement gate and determinism contract
// point 7 (docs/architecture.md): shard placement never changes digests.
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/registry.hpp"
#include "bench/timer.hpp"
#include "graph/generators.hpp"
#include "rpc/shard.hpp"
#include "service/service.hpp"
#include "service/sharded.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using lcs::service::QueryKind;
using lcs::service::QueryRequest;
using lcs::service::QueryResult;

std::vector<QueryRequest> mixed_batch(std::size_t count) {
  std::vector<QueryRequest> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    QueryRequest q;
    q.id = 66'000 + i;
    switch (i % 4) {
      case 0: q.kind = QueryKind::kShortcutQuality; break;
      case 1: q.kind = QueryKind::kShortcutBuild; break;
      case 2: q.kind = QueryKind::kMst; break;
      default: q.kind = QueryKind::kMincut; break;
    }
    q.beta = 0.5 + 0.25 * static_cast<double>(i % 3);
    if (q.kind == QueryKind::kMincut) {
      if (i % 8 == 3)
        q.karger_trials = 4;
      else
        q.eps = 0.5;
    }
    batch.push_back(q);
  }
  return batch;
}

std::vector<std::uint64_t> digests(const std::vector<QueryResult>& rs) {
  std::vector<std::uint64_t> d;
  d.reserve(rs.size());
  for (const auto& r : rs) d.push_back(r.digest());
  return d;
}

}  // namespace

LCS_BENCH_SCENARIO(S6_sharded_throughput,
                   "sharded query service: router + 1/2/4 RPC shard servers vs one process",
                   "mixed batch over gnm; fleets of 1/2/4 unix-socket shards") {
  using namespace lcs;

  const std::uint32_t n = ctx.pick_n(300, 4000);
  const std::uint32_t m = 3 * n;
  const std::uint64_t seed = ctx.seed(71);
  const std::size_t batch_size = ctx.smoke() ? 24 : 160;
  ctx.param("m", std::uint64_t{m});
  ctx.param("batch_size", std::uint64_t{batch_size});
  {
    Json shard_counts;
    for (const std::uint64_t k : {1, 2, 4}) shard_counts.push_back(Json(k));
    ctx.param("shard_counts", std::move(shard_counts));
  }

  Rng gen(seed);
  const auto snap = service::GraphSnapshot::build(graph::connected_gnm(n, m, gen), {});
  const auto batch = mixed_batch(batch_size);

  ThreadOverrideGuard guard;
  set_num_threads(4);

  const std::filesystem::path sock_dir =
      std::filesystem::temp_directory_path() / "lcs-bench-s6";
  std::filesystem::remove_all(sock_dir);
  std::filesystem::create_directories(sock_dir);

  // --- leg 1: local baseline, then real RPC fleets ------------------------
  Table t({"fleet", "batch_ms", "qps", "p50_ms", "p99_ms", "ok", "identical"});
  bool all_ok = true;
  bool deterministic = true;

  const service::ShortcutService local(snap, seed);
  bench::MonotonicTimer t_local;
  const std::vector<QueryResult> reference_results = local.run_batch(batch);
  const double local_ms = t_local.elapsed_ms();
  const std::vector<std::uint64_t> reference = digests(reference_results);
  Stats local_lat;
  for (const QueryResult& r : reference_results) {
    all_ok = all_ok && r.ok;
    local_lat.add(r.latency_ms);
  }
  const double local_qps =
      local_ms > 1e-6 ? 1000.0 * static_cast<double>(batch.size()) / local_ms : 0.0;
  t.row()
      .cell("local")
      .cell(local_ms, 1)
      .cell(local_qps, 1)
      .cell(local_lat.percentile(50.0), 2)
      .cell(local_lat.percentile(99.0), 2)
      .cell(all_ok ? "yes" : "NO")
      .cell("--");
  ctx.metric("qps_local", local_qps);
  ctx.metric("latency_p50_ms_local", local_lat.percentile(50.0));
  ctx.metric("latency_p99_ms_local", local_lat.percentile(99.0));

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    std::vector<std::unique_ptr<rpc::ShardServer>> servers;
    std::vector<std::unique_ptr<service::ShardBackend>> backends;
    for (std::size_t s = 0; s < shards; ++s) {
      std::string sock_name = "s";
      sock_name += std::to_string(shards);
      sock_name += "_";
      sock_name += std::to_string(s);
      sock_name += ".sock";
      std::string spec = "unix:";
      spec += (sock_dir / sock_name).string();
      const auto ep = rpc::Endpoint::parse(spec);
      servers.push_back(std::make_unique<rpc::ShardServer>(
          std::make_shared<const service::ShortcutService>(snap, seed), ep));
      backends.push_back(std::make_unique<rpc::RpcShard>(servers.back()->endpoint()));
    }
    const service::ShardRouter router(std::move(backends));

    bench::MonotonicTimer t_fleet;
    const std::vector<QueryResult> results = router.run_batch(batch);
    const double fleet_ms = t_fleet.elapsed_ms();

    Stats lat;
    bool fleet_ok = true;
    for (const QueryResult& r : results) {
      fleet_ok = fleet_ok && r.ok;
      lat.add(r.latency_ms);
    }
    const bool identical = digests(results) == reference;
    all_ok = all_ok && fleet_ok;
    deterministic = deterministic && identical;
    const double qps =
        fleet_ms > 1e-6 ? 1000.0 * static_cast<double>(batch.size()) / fleet_ms : 0.0;
    const std::string suffix = "_shards" + std::to_string(shards);
    ctx.metric("qps" + suffix, qps);
    ctx.metric("latency_p50_ms" + suffix, lat.percentile(50.0));
    ctx.metric("latency_p99_ms" + suffix, lat.percentile(99.0));
    ctx.metric("speedup_vs_local" + suffix, local_ms > 1e-6 ? local_ms / fleet_ms : 0.0);
    t.row()
        .cell(std::to_string(shards) + " shard" + (shards == 1 ? "" : "s"))
        .cell(fleet_ms, 1)
        .cell(qps, 1)
        .cell(lat.percentile(50.0), 2)
        .cell(lat.percentile(99.0), 2)
        .cell(fleet_ok ? "yes" : "NO")
        .cell(identical ? "yes" : "NO");

    for (auto& server : servers) server->stop();
  }
  t.print(ctx.out(), "S6: sharded vs local at n=" + std::to_string(n) +
                         ", batch=" + std::to_string(batch.size()));

  // --- leg 2: placement digest gate across thread counts ------------------
  // Results are pure per query, so under --smoke a prefix of the batch
  // (checked against the matching prefix of the local reference) keeps the
  // gate's coverage shape at a fraction of the cost.
  const std::size_t gate_size = ctx.smoke() ? batch.size() / 2 : batch.size();
  const std::vector<QueryRequest> gate_queries(batch.begin(), batch.begin() + gate_size);
  const std::vector<std::uint64_t> gate_reference(reference.begin(),
                                                  reference.begin() + gate_size);
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_num_threads(threads);
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      std::vector<std::unique_ptr<service::ShardBackend>> backends;
      for (std::size_t s = 0; s < shards; ++s)
        backends.push_back(std::make_unique<service::LocalShard>(
            std::make_shared<const service::ShortcutService>(snap, seed)));
      const service::ShardRouter router(std::move(backends));
      deterministic =
          deterministic && digests(router.run_batch(gate_queries)) == gate_reference;
    }
  }
  ctx.out() << "\ndigest gate: 1/2/4 shards at 1/2/8 threads vs local: "
            << (deterministic ? "identical" : "MISMATCH") << "\n";

  ctx.metric("all_queries_ok", all_ok);
  ctx.metric("deterministic_sharded_vs_local", deterministic);

  std::filesystem::remove_all(sock_dir);
}
