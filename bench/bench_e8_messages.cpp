// E8 — message complexity (Section 1, open problem): the construction sends
// Õ(m · k_D) messages.  Measured from the simulator's accounting; the open
// question in the paper is whether Õ(m) is possible.
#include <algorithm>

#include "bench/registry.hpp"
#include "core/distributed.hpp"
#include "graph/generators.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

LCS_BENCH_SCENARIO(e8_messages, "message complexity O~(m k_D) (Section 1 discussion)",
                   "D in {4,6} x n-sweep") {
  using namespace lcs;

  Table t({"D", "n", "m", "k_D", "messages", "messages/(m k_D ln n)"});
  const std::uint64_t seed = ctx.seed(29);
  double worst_norm = 0;
  for (const unsigned d : {4u, 6u}) {
    for (const std::uint32_t n : ctx.n_sweep()) {
      const graph::HardInstance hi = graph::hard_instance(n, d);
      core::DistributedOptions opt;
      opt.diameter = d;
      opt.seed = seed;
      const auto out = core::build_distributed(hi.g, hi.paths, opt);
      const double denom = double(hi.g.num_edges()) * out.params.k_d *
                           ln_clamped(hi.g.num_vertices());
      const double messages = static_cast<double>(out.messages);
      worst_norm = std::max(worst_norm, messages / denom);
      t.row()
          .cell(d)
          .cell(hi.g.num_vertices())
          .cell(hi.g.num_edges())
          .cell(out.params.k_d, 2)
          .cell(out.messages)
          .cell(messages / denom, 4);
    }
  }
  t.print(ctx.out(), "E8: total messages of the distributed construction");
  ctx.out() << "\nclaim holds when the last column stays O(1); improving the\n"
               "total to O~(m) is the paper's stated open problem.\n";
  ctx.metric("worst_messages_over_m_kd_ln_n", worst_norm);
}
