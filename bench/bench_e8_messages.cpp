// E8 — message complexity (Section 1, open problem): the construction sends
// Õ(m · k_D) messages.  Measured from the simulator's accounting; the open
// question in the paper is whether Õ(m) is possible.
#include <iostream>

#include "bench_util.hpp"
#include "core/distributed.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lcs;
  bench::banner("E8", "message complexity O~(m k_D) (Section 1 discussion)");

  Table t({"D", "n", "m", "k_D", "messages", "messages/(m k_D ln n)"});
  for (const unsigned d : {4u, 6u}) {
    for (const std::uint32_t n : bench::n_sweep()) {
      const graph::HardInstance hi = graph::hard_instance(n, d);
      core::DistributedOptions opt;
      opt.diameter = d;
      opt.seed = 29;
      const auto out = core::build_distributed(hi.g, hi.paths, opt);
      const double denom = double(hi.g.num_edges()) * out.params.k_d *
                           ln_clamped(hi.g.num_vertices());
      t.row()
          .cell(d)
          .cell(hi.g.num_vertices())
          .cell(hi.g.num_edges())
          .cell(out.params.k_d, 2)
          .cell(out.messages)
          .cell(out.messages / denom, 4);
    }
  }
  t.print(std::cout, "E8: total messages of the distributed construction");
  std::cout << "\nclaim holds when the last column stays O(1); improving the\n"
               "total to O~(m) is the paper's stated open problem.\n";
  return 0;
}
