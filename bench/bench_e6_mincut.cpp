// E6 — Corollary 1.2 (min cut): the tree-packing approximation against the
// exact Stoer–Wagner referee.  The paper's (1+eps) machinery (2-respecting
// cuts) is substituted by 1-respecting cuts (DESIGN.md §4): the *measured*
// ratio is reported; rounds are #trees × one shortcut-MST invocation.
#include <iostream>

#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "mincut/mincut.hpp"
#include "util/rng.hpp"

int main() {
  using namespace lcs;
  bench::banner("E6", "(1+eps)-approx min cut via tree packing (Cor 1.2)");

  Table t({"family", "n", "m", "exact", "packing", "ratio", "trees",
           "sparsified(eps=.5)", "p_sample", "karger"});
  Rng rng(3);
  for (const std::uint32_t n : {64u, 128u, 256u}) {
    const graph::Graph g = graph::layered_random_graph(n, 4, 2.0, rng);
    const graph::EdgeWeights w = graph::random_weights(g, 10, rng);
    const auto exact = mincut::stoer_wagner(g, w);
    const auto tp = mincut::tree_packing_mincut(g, w);
    Rng krng(n);
    const auto karger = mincut::karger_mincut(g, w, 200, krng);
    Rng sprng(n + 1);
    const auto sp = mincut::sparsified_mincut(g, w, 0.5, sprng);
    t.row()
        .cell("layered-D4")
        .cell(g.num_vertices())
        .cell(g.num_edges())
        .cell(static_cast<std::int64_t>(exact.value))
        .cell(static_cast<std::int64_t>(tp.cut.value))
        .cell(double(tp.cut.value) / double(exact.value), 3)
        .cell(tp.num_trees)
        .cell(static_cast<std::int64_t>(sp.cut.value))
        .cell(sp.sample_prob, 3)
        .cell(static_cast<std::int64_t>(karger.value));
  }
  // Heavy capacities push lambda high enough that the sampler actually
  // sparsifies (p < 1) — the regime Karger's theorem is about.
  for (const std::uint32_t n : {96u, 192u}) {
    const graph::Graph g = graph::layered_random_graph(n, 4, 3.0, rng);
    const graph::EdgeWeights w = graph::random_weights(g, 80, rng);
    const auto exact = mincut::stoer_wagner(g, w);
    const auto tp = mincut::tree_packing_mincut(g, w);
    Rng sprng(n + 3);
    const auto sp = mincut::sparsified_mincut(g, w, 0.5, sprng);
    t.row()
        .cell("layered-heavy")
        .cell(g.num_vertices())
        .cell(g.num_edges())
        .cell(static_cast<std::int64_t>(exact.value))
        .cell(static_cast<std::int64_t>(tp.cut.value))
        .cell(double(tp.cut.value) / double(exact.value), 3)
        .cell(tp.num_trees)
        .cell(static_cast<std::int64_t>(sp.cut.value))
        .cell(sp.sample_prob, 3)
        .cell("-");
  }
  for (const std::uint32_t n : {300u, 400u}) {
    const graph::HardInstance hi = graph::hard_instance(n, 4);
    const graph::EdgeWeights w(hi.g.num_edges(), 1);
    const auto exact = mincut::stoer_wagner(hi.g, w);
    const auto tp = mincut::tree_packing_mincut(hi.g, w);
    Rng sprng(n + 2);
    const auto sp = mincut::sparsified_mincut(hi.g, w, 0.5, sprng);
    t.row()
        .cell("hard-D4")
        .cell(hi.g.num_vertices())
        .cell(hi.g.num_edges())
        .cell(static_cast<std::int64_t>(exact.value))
        .cell(static_cast<std::int64_t>(tp.cut.value))
        .cell(double(tp.cut.value) / double(exact.value), 3)
        .cell(tp.num_trees)
        .cell(static_cast<std::int64_t>(sp.cut.value))
        .cell(sp.sample_prob, 3)
        .cell("-");
  }
  t.print(std::cout, "E6: min-cut approximation quality");
  std::cout << "\nround complexity: trees x MST rounds (see E5).  The packing\n"
               "ratio is ~1.0 (guarantee <= 2 with 1-respecting cuts); the\n"
               "sparsified column is Karger's (1+eps) sampling mechanism —\n"
               "together they bracket the paper's cited (1+eps) machinery.\n";
  return 0;
}
