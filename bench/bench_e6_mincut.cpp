// E6 — Corollary 1.2 (min cut): the tree-packing approximation against the
// exact Stoer–Wagner referee.  The paper's (1+eps) machinery (2-respecting
// cuts) is substituted by 1-respecting cuts (DESIGN.md §4): the *measured*
// ratio is reported; rounds are #trees × one shortcut-MST invocation.
#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "bench/registry.hpp"
#include "util/json.hpp"
#include "graph/generators.hpp"
#include "mincut/mincut.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

LCS_BENCH_SCENARIO(e6_mincut, "(1+eps)-approx min cut via tree packing (Cor 1.2)",
                   "layered n in {64,128,256} + heavy n in {96,192} + hard n in {300,400}") {
  using namespace lcs;

  Table t({"family", "n", "m", "exact", "packing", "ratio", "trees",
           "sparsified(eps=.5)", "p_sample", "karger"});
  Rng rng(3);
  double worst_ratio = 1.0;
  // The exact Stoer-Wagner referee is O(n^3): clamp --n so a global sweep
  // (e.g. `--all --n 4096`) cannot silently turn this scenario into an
  // hours-long run.  Each family records its own (post-clamp) sweep, so the
  // JSON params report the sizes actually run.
  constexpr std::uint32_t kMaxExactN = 512;
  const auto family_sweep = [&ctx](const char* name, std::vector<std::uint32_t> smoke,
                                   std::vector<std::uint32_t> full) {
    std::vector<std::uint32_t> ns = ctx.n_sweep(std::move(smoke), std::move(full), name);
    Json effective = Json::array();
    for (auto& n : ns) {
      if (n > kMaxExactN) {
        ctx.out() << "(n=" << n << " clamped to " << kMaxExactN
                  << ": exact referee is O(n^3))\n";
        n = kMaxExactN;
      }
      effective.push_back(std::uint64_t{n});
    }
    ctx.param(name, std::move(effective));
    return ns;
  };
  for (const std::uint32_t n : family_sweep("n_layered", {64}, {64, 128, 256})) {
    const graph::Graph g = graph::layered_random_graph(n, 4, 2.0, rng);
    const graph::EdgeWeights w = graph::random_weights(g, 10, rng);
    const auto exact = mincut::stoer_wagner(g, w);
    const auto tp = mincut::tree_packing_mincut(g, w);
    Rng krng(n);
    const auto karger = mincut::karger_mincut(g, w, 200, krng);
    Rng sprng(n + 1);
    const auto sp = mincut::sparsified_mincut(g, w, 0.5, sprng);
    worst_ratio = std::max(worst_ratio, double(tp.cut.value) / double(exact.value));
    t.row()
        .cell("layered-D4")
        .cell(g.num_vertices())
        .cell(g.num_edges())
        .cell(static_cast<std::int64_t>(exact.value))
        .cell(static_cast<std::int64_t>(tp.cut.value))
        .cell(double(tp.cut.value) / double(exact.value), 3)
        .cell(tp.num_trees)
        .cell(static_cast<std::int64_t>(sp.cut.value))
        .cell(sp.sample_prob, 3)
        .cell(static_cast<std::int64_t>(karger.value));
  }
  // Heavy capacities push lambda high enough that the sampler actually
  // sparsifies (p < 1) — the regime Karger's theorem is about.
  for (const std::uint32_t n : family_sweep("n_heavy", {96}, {96, 192})) {
    const graph::Graph g = graph::layered_random_graph(n, 4, 3.0, rng);
    const graph::EdgeWeights w = graph::random_weights(g, 80, rng);
    const auto exact = mincut::stoer_wagner(g, w);
    const auto tp = mincut::tree_packing_mincut(g, w);
    Rng sprng(n + 3);
    const auto sp = mincut::sparsified_mincut(g, w, 0.5, sprng);
    worst_ratio = std::max(worst_ratio, double(tp.cut.value) / double(exact.value));
    t.row()
        .cell("layered-heavy")
        .cell(g.num_vertices())
        .cell(g.num_edges())
        .cell(static_cast<std::int64_t>(exact.value))
        .cell(static_cast<std::int64_t>(tp.cut.value))
        .cell(double(tp.cut.value) / double(exact.value), 3)
        .cell(tp.num_trees)
        .cell(static_cast<std::int64_t>(sp.cut.value))
        .cell(sp.sample_prob, 3)
        .cell("-");
  }
  for (const std::uint32_t n : family_sweep("n_hard", {300}, {300, 400})) {
    const graph::HardInstance hi = graph::hard_instance(n, 4);
    const graph::EdgeWeights w(hi.g.num_edges(), 1);
    const auto exact = mincut::stoer_wagner(hi.g, w);
    const auto tp = mincut::tree_packing_mincut(hi.g, w);
    Rng sprng(n + 2);
    const auto sp = mincut::sparsified_mincut(hi.g, w, 0.5, sprng);
    worst_ratio = std::max(worst_ratio, double(tp.cut.value) / double(exact.value));
    t.row()
        .cell("hard-D4")
        .cell(hi.g.num_vertices())
        .cell(hi.g.num_edges())
        .cell(static_cast<std::int64_t>(exact.value))
        .cell(static_cast<std::int64_t>(tp.cut.value))
        .cell(double(tp.cut.value) / double(exact.value), 3)
        .cell(tp.num_trees)
        .cell(static_cast<std::int64_t>(sp.cut.value))
        .cell(sp.sample_prob, 3)
        .cell("-");
  }
  t.print(ctx.out(), "E6: min-cut approximation quality");
  ctx.out() << "\nround complexity: trees x MST rounds (see E5).  The packing\n"
               "ratio is ~1.0 (guarantee <= 2 with 1-respecting cuts); the\n"
               "sparsified column is Karger's (1+eps) sampling mechanism —\n"
               "together they bracket the paper's cited (1+eps) machinery.\n";
  ctx.metric("worst_packing_ratio", worst_ratio);
  ctx.metric("rows", std::uint64_t{t.rows()});
}
