// E11 — Section 3.2 (odd diameters): the edge-subdivision construction
// (sample both halves with sqrt(p)) versus the direct odd-D sampler, on
// odd-diameter hard instances.  Both must cover all parts with comparable
// quality; the subdivision variant is the one the paper analyses.
#include <iostream>

#include "bench_util.hpp"
#include "core/kp.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lcs;
  bench::banner("E11", "odd-D construction via subdivision (Section 3.2)");

  Table t({"D", "n", "variant", "congestion", "dilation", "quality", "covered",
           "quality/(k_D ln n)"});
  for (const unsigned d : {3u, 5u, 7u}) {
    const std::uint32_t n = bench::quick_mode() ? 512 : 2048;
    const graph::HardInstance hi = graph::hard_instance(n, d);
    core::KpOptions opt;
    opt.diameter = d;
    opt.seed = 19;

    const auto direct = core::build_kp_shortcuts(hi.g, hi.paths, opt);
    const auto qd = core::measure_quality(hi.g, hi.paths, direct.shortcuts);
    const auto sub = core::build_kp_shortcuts_odd(hi.g, hi.paths, opt);
    const auto qs = core::measure_quality(hi.g, hi.paths, sub.shortcuts);
    const double kd_ln = direct.params.k_d * ln_clamped(hi.g.num_vertices());

    for (const auto& [name, q] : {std::pair<const char*, const core::QualityReport&>{
                                      "direct", qd},
                                  {"subdivide", qs}}) {
      t.row()
          .cell(d)
          .cell(hi.g.num_vertices())
          .cell(name)
          .cell(std::uint64_t{q.congestion})
          .cell(std::uint64_t{q.dilation_ub})
          .cell(static_cast<std::uint64_t>(q.quality()))
          .cell(q.all_covered ? "yes" : "NO")
          .cell(q.quality() / kd_ln, 3);
    }
  }
  t.print(std::cout, "E11: odd-diameter variants");
  std::cout << "\nthe subdivision variant thins each repetition to p (both\n"
               "sqrt(p)-halves must land), so it samples less than the direct\n"
               "sampler at equal parameters while keeping coverage.\n";
  return 0;
}
