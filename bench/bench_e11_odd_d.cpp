// E11 — Section 3.2 (odd diameters): the edge-subdivision construction
// (sample both halves with sqrt(p)) versus the direct odd-D sampler, on
// odd-diameter hard instances.  Both must cover all parts with comparable
// quality; the subdivision variant is the one the paper analyses.
#include <utility>

#include "bench/registry.hpp"
#include "core/kp.hpp"
#include "graph/generators.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

LCS_BENCH_SCENARIO(e11_odd_d, "odd-D construction via subdivision (Section 3.2)",
                   "D in {3,5,7}, n = 2048 (smoke: 512), variants {direct, subdivide}") {
  using namespace lcs;

  Table t({"D", "n", "variant", "congestion", "dilation", "quality", "covered",
           "quality/(k_D ln n)"});
  const std::uint64_t seed = ctx.seed(19);
  bool all_covered = true;
  for (const unsigned d : {3u, 5u, 7u}) {
    const std::uint32_t n = ctx.pick_n(512, 2048);
    const graph::HardInstance hi = graph::hard_instance(n, d);
    core::KpOptions opt;
    opt.diameter = d;
    opt.seed = seed;

    const auto direct = core::build_kp_shortcuts(hi.g, hi.paths, opt);
    const auto qd = core::measure_quality(hi.g, hi.paths, direct.shortcuts);
    const auto sub = core::build_kp_shortcuts_odd(hi.g, hi.paths, opt);
    const auto qs = core::measure_quality(hi.g, hi.paths, sub.shortcuts);
    const double kd_ln = direct.params.k_d * ln_clamped(hi.g.num_vertices());

    for (const auto& [name, q] : {std::pair<const char*, const core::QualityReport&>{
                                      "direct", qd},
                                  {"subdivide", qs}}) {
      all_covered = all_covered && q.all_covered;
      t.row()
          .cell(d)
          .cell(hi.g.num_vertices())
          .cell(name)
          .cell(std::uint64_t{q.congestion})
          .cell(std::uint64_t{q.dilation_ub})
          .cell(static_cast<std::uint64_t>(q.quality()))
          .cell(q.all_covered ? "yes" : "NO")
          .cell(static_cast<double>(q.quality()) / kd_ln, 3);
    }
  }
  t.print(ctx.out(), "E11: odd-diameter variants");
  ctx.out() << "\nthe subdivision variant thins each repetition to p (both\n"
               "sqrt(p)-halves must land), so it samples less than the direct\n"
               "sampler at equal parameters while keeping coverage.\n";
  ctx.metric("all_covered", all_covered);
  ctx.metric("rows", std::uint64_t{t.rows()});
}
