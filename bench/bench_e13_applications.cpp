// E13 — Corollaries 4.2/4.3: approximate SSSP trees (measured stretch and
// charged rounds) and the O(log n)-approx 2-ECSS (measured ratio against a
// certified lower bound), both on low-diameter instances.
#include <algorithm>
#include <string>

#include "bench/registry.hpp"
#include "graph/generators.hpp"
#include "sssp/sssp.hpp"
#include "tecss/tecss.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

LCS_BENCH_SCENARIO(e13_applications,
                   "applications: approx SSSP (Cor 4.2) and 2-ECSS (Cor 4.3)",
                   "n-sweep x landmarks in {n/256, n/64, n/16}; 2-ECSS on cycle+chords") {
  using namespace lcs;

  double worst_stretch = 0;
  {
    Table t({"n", "landmarks", "max_stretch", "avg_stretch", "rounds(charged)",
             "rounds(simulated)", "exact BF rounds"});
    Rng rng(2);
    for (const std::uint32_t n : ctx.n_sweep()) {
      const graph::Graph g = graph::layered_random_graph(n, 5, 1.5, rng);
      const graph::EdgeWeights w = graph::random_weights(g, 16, rng);
      for (const std::uint32_t lm :
           {std::max(2u, n / 256), std::max(4u, n / 64), std::max(8u, n / 16)}) {
        sssp::ApproxTreeOptions opt;
        opt.num_landmarks = lm;
        opt.seed = n + lm;
        opt.simulate = n <= 2048;  // concurrent landmark growth on the simulator
        const auto r = sssp::approx_sssp_tree(g, w, 0, opt);
        const auto bf = sssp::distributed_bellman_ford(g, w, 0);
        worst_stretch = std::max(worst_stretch, r.max_stretch);
        t.row()
            .cell(g.num_vertices())
            .cell(r.num_landmarks)
            .cell(r.max_stretch, 3)
            .cell(r.avg_stretch, 3)
            .cell(r.rounds_charged)
            .cell(opt.simulate ? std::to_string(r.rounds_simulated) : std::string("-"))
            .cell(std::uint64_t{bf.rounds});
      }
    }
    t.print(ctx.out(), "E13a: approximate SSSP tree (landmark overlay)");
  }

  bool all_valid = true;
  {
    Table t({"n", "m", "weight", "lower_bound", "ratio", "valid"});
    Rng rng(5);
    for (const std::uint32_t n : ctx.n_sweep()) {
      // 2-edge-connected low-diameter instance: cycle + random chords.
      graph::GraphBuilder b(n);
      for (graph::VertexId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
      for (graph::VertexId v = 0; v < n; ++v)
        b.add_edge(v, static_cast<graph::VertexId>((v + n / 3) % n));
      const graph::Graph g = std::move(b).build();
      const graph::EdgeWeights w = graph::random_weights(g, 20, rng);
      const auto r = tecss::two_ecss_approx(g, w);
      all_valid = all_valid && r.valid;
      t.row()
          .cell(g.num_vertices())
          .cell(g.num_edges())
          .cell(static_cast<std::int64_t>(r.weight))
          .cell(static_cast<std::int64_t>(r.lower_bound))
          .cell(r.ratio, 3)
          .cell(r.valid ? "yes" : "NO");
    }
    t.print(ctx.out(), "E13b: 2-ECSS approximation (MST + greedy cover)");
  }
  ctx.out() << "\nboth corollaries are plug-ins of the shortcut quality into\n"
               "[HL18]/[DG19]; the rounds columns inherit E4/E5's dependence.\n";
  ctx.metric("worst_sssp_stretch", worst_stretch);
  ctx.metric("tecss_all_valid", all_valid);
}
