// S9 — point-to-point routing: CH baseline vs shortcut-assisted s–t search
// (PR 10).
//
// Leg 1 (engines): road networks of increasing size.  Per n, three exact
// s–t engines answer the same query set over the same weights — plain
// bidirectional Dijkstra (the oracle), a contraction-hierarchy query over
// the preprocessed up-arc DAG, and bidirectional Dijkstra assisted by the
// KP shortcut overlay.  Recorded per n: CH preprocessing and overlay build
// time, and per-engine p50/p99 query latency.  Gates: every engine returns
// the identical distance on every query (`all_engines_agree`) and CH p99
// beats plain Dijkstra p99 at the largest n (`ch_p99_beats_dijkstra`) —
// the hierarchy must pay for its preprocessing.
//
// Leg 2 (service gates): an all-kPointToPoint batch against a snapshot runs
// through every serving surface — threads 1/2/8, mmap-loaded vs built
// snapshot (the CH artifact rides the file), a 2-shard router vs the local
// service, and streaming admission vs a direct batch.  All digests must be
// bit-identical: determinism-contract points 7–9 for the new kind.
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/registry.hpp"
#include "bench/timer.hpp"
#include "core/kp.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "graph/weighted.hpp"
#include "service/service.hpp"
#include "service/sharded.hpp"
#include "service/snapshot_format.hpp"
#include "service/snapshot_store.hpp"
#include "service/streaming.hpp"
#include "sssp/ch.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using lcs::service::QueryKind;
using lcs::service::QueryRequest;
using lcs::service::QueryResult;

std::vector<QueryRequest> pp_batch(std::uint32_t n, std::uint32_t count,
                                   std::uint64_t first_id) {
  lcs::Rng pick(first_id ^ 0x5097ULL);
  std::vector<QueryRequest> batch;
  batch.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    QueryRequest q;
    q.id = first_id + i;
    q.kind = QueryKind::kPointToPoint;
    q.s = static_cast<std::uint32_t>(pick.uniform(n));
    q.t = static_cast<std::uint32_t>(pick.uniform(n));
    batch.push_back(q);
  }
  return batch;
}

std::vector<std::uint64_t> digests(const std::vector<QueryResult>& rs) {
  std::vector<std::uint64_t> d;
  d.reserve(rs.size());
  for (const auto& r : rs) d.push_back(r.digest());
  return d;
}

}  // namespace

LCS_BENCH_SCENARIO(S9_point_to_point,
                   "point-to-point routing: CH baseline vs KP-shortcut-assisted s-t search",
                   "road networks, three exact engines + serving-surface digest gates") {
  using namespace lcs;

  const std::uint64_t seed = ctx.seed(91);
  const std::vector<std::uint32_t> sizes =
      ctx.n_sweep({4'000}, {20'000, 100'000});
  const std::uint32_t queries = ctx.smoke() ? 50 : 200;
  ctx.param("queries_per_n", std::uint64_t{queries});

  ThreadOverrideGuard guard;
  set_num_threads(4);

  // --- leg 1: three exact engines over road networks ----------------------
  bool all_engines_agree = true;
  bool ch_p99_beats_dijkstra = false;  // judged at the largest n
  Table t({"n", "ch_build_ms", "overlay_ms", "dijkstra_p99", "ch_p99", "assisted_p99",
           "agree"});
  for (const std::uint32_t n : sizes) {
    Rng gen(seed ^ n);
    const graph::Graph g = graph::road_network(n, gen);
    Rng wrng(seed ^ n ^ 0x77ULL);
    const graph::EdgeWeights w = graph::random_weights(g, 16, wrng);

    bench::MonotonicTimer t_ch;
    const sssp::ChIndex ch = sssp::build_ch(g, w);
    const double ch_build_ms = t_ch.elapsed_ms();

    Rng prng(seed ^ n ^ 0x99ULL);
    const graph::Partition parts =
        graph::ball_partition(g, std::max(2u, n / 64), prng);
    core::KpOptions kp;
    kp.seed = seed ^ n;
    bench::MonotonicTimer t_ov;
    const core::KpBuildResult built_sc = core::build_kp_shortcuts(g, parts, kp);
    const sssp::ShortcutOverlay overlay =
        sssp::build_shortcut_overlay(g, w, parts, built_sc.shortcuts);
    const double overlay_ms = t_ov.elapsed_ms();

    Rng qrng(seed ^ n ^ 0x22ULL);
    Stats lat_dij, lat_ch, lat_asst;
    bool agree = true;
    for (std::uint32_t q = 0; q < queries; ++q) {
      const auto s = static_cast<graph::VertexId>(qrng.uniform(n));
      const auto dst = static_cast<graph::VertexId>(qrng.uniform(n));

      bench::MonotonicTimer t0;
      const sssp::PointToPointResult a = sssp::bidirectional_dijkstra(g, w, s, dst);
      lat_dij.add(t0.elapsed_ms());

      bench::MonotonicTimer t1;
      const sssp::PointToPointResult b = sssp::ch_query(ch, s, dst);
      lat_ch.add(t1.elapsed_ms());

      bench::MonotonicTimer t2;
      const sssp::PointToPointResult c = sssp::assisted_query(g, w, overlay, s, dst);
      lat_asst.add(t2.elapsed_ms());

      agree = agree && a.distance == b.distance && b.distance == c.distance;
    }
    all_engines_agree = all_engines_agree && agree;
    if (n == sizes.back())
      ch_p99_beats_dijkstra = lat_ch.percentile(99.0) < lat_dij.percentile(99.0);

    t.row()
        .cell(std::uint64_t{n})
        .cell(ch_build_ms, 1)
        .cell(overlay_ms, 1)
        .cell(lat_dij.percentile(99.0), 4)
        .cell(lat_ch.percentile(99.0), 4)
        .cell(lat_asst.percentile(99.0), 4)
        .cell(agree ? std::uint64_t{1} : std::uint64_t{0});

    const std::string suffix = "_n" + std::to_string(n);
    ctx.metric("ch_build_ms" + suffix, ch_build_ms);
    ctx.metric("overlay_build_ms" + suffix, overlay_ms);
    ctx.metric("dijkstra_p50_ms" + suffix, lat_dij.percentile(50.0));
    ctx.metric("dijkstra_p99_ms" + suffix, lat_dij.percentile(99.0));
    ctx.metric("ch_p50_ms" + suffix, lat_ch.percentile(50.0));
    ctx.metric("ch_p99_ms" + suffix, lat_ch.percentile(99.0));
    ctx.metric("assisted_p50_ms" + suffix, lat_asst.percentile(50.0));
    ctx.metric("assisted_p99_ms" + suffix, lat_asst.percentile(99.0));
  }
  t.print(ctx.out(), "S9 leg 1: three exact s-t engines per road-network size");

  // --- leg 2: serving-surface digest gates --------------------------------
  const std::uint32_t gate_n = ctx.smoke() ? 1'500 : 4'000;
  Rng gate_gen(seed ^ 0x6e9ULL);
  service::GraphSnapshot::Options sopt;
  sopt.weight_seed = seed ^ 0x5109ULL;
  const auto built =
      service::GraphSnapshot::build(graph::road_network(gate_n, gate_gen), sopt);
  const auto batch = pp_batch(gate_n, 24, 91'000);
  const service::ShortcutService local(built, seed);

  set_num_threads(1);
  const std::vector<QueryResult> reference_results = local.run_batch(batch);
  bool all_ok = true;
  for (const QueryResult& r : reference_results) all_ok = all_ok && r.ok;
  const std::vector<std::uint64_t> reference = digests(reference_results);

  // Threads 1/2/8 (contract point: thread-count independence).
  bool across_threads = true;
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_num_threads(threads);
    across_threads = across_threads && digests(local.run_batch(batch)) == reference;
  }

  // Loaded vs built: the CH artifact rides the snapshot file.
  const std::filesystem::path store_dir =
      std::filesystem::temp_directory_path() / "lcs-bench-s9-store";
  std::filesystem::remove_all(store_dir);
  bool loaded_vs_built = true;
  {
    service::SnapshotStore store(store_dir);
    (void)built->ch_index();  // materialize so save() carries the artifact
    const std::filesystem::path path = store.save(*built);
    loaded_vs_built = service::read_snapshot_info(path).saved_ch_indexes == 1;
    const auto loaded = store.open(built->fingerprint());
    const service::ShortcutService loaded_svc(loaded, seed);
    for (const unsigned threads : {1u, 2u, 8u}) {
      set_num_threads(threads);
      loaded_vs_built =
          loaded_vs_built && digests(loaded_svc.run_batch(batch)) == reference;
    }
    loaded_vs_built = loaded_vs_built && loaded->artifact_stats().ch.misses == 0;
  }
  std::filesystem::remove_all(store_dir);

  // Sharded vs local (contract point 7: placement independence).
  bool sharded_vs_local = true;
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_num_threads(threads);
    std::vector<std::unique_ptr<service::ShardBackend>> backends;
    for (int s = 0; s < 2; ++s)
      backends.push_back(std::make_unique<service::LocalShard>(
          std::make_shared<const service::ShortcutService>(built, seed)));
    const service::ShardRouter router(std::move(backends));
    sharded_vs_local =
        sharded_vs_local && digests(router.run_batch(batch)) == reference;
  }

  // Streaming admission vs direct batch (contract point 9).
  bool streaming_vs_direct = true;
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_num_threads(threads);
    service::StreamingOptions opt;
    opt.drain_thread = false;
    opt.cheap_slots = 4;
    opt.heavy_slots = 1;
    opt.tenants = {service::TenantConfig{
        "bench", service::TokenBucketConfig{64, 100'000},
        service::TokenBucketConfig{8, 100'000}}};
    service::StreamingService stream(service::ShortcutService(built, seed), opt);
    std::vector<service::StreamingService::Ticket> tickets;
    for (const QueryRequest& q : batch) {
      service::StreamingService::Ticket ticket = stream.submit("bench", q);
      streaming_vs_direct = streaming_vs_direct && ticket.admitted();
      tickets.push_back(std::move(ticket));
    }
    stream.drain_until_idle();
    for (std::size_t i = 0; i < batch.size() && streaming_vs_direct; ++i)
      streaming_vs_direct = stream.wait(tickets[i]).digest() == reference[i];
  }

  ctx.out() << "\nS9 leg 2 gates at n=" << gate_n << ": threads "
            << (across_threads ? "ok" : "MISMATCH") << ", loaded "
            << (loaded_vs_built ? "ok" : "MISMATCH") << ", sharded "
            << (sharded_vs_local ? "ok" : "MISMATCH") << ", streaming "
            << (streaming_vs_direct ? "ok" : "MISMATCH") << "\n";

  ctx.metric("all_engines_agree", all_engines_agree);
  ctx.metric("all_queries_ok", all_ok);
  ctx.metric("ch_p99_beats_dijkstra", ch_p99_beats_dijkstra);
  ctx.metric("deterministic_across_threads", across_threads);
  ctx.metric("deterministic_loaded_vs_built", loaded_vs_built);
  ctx.metric("deterministic_sharded_vs_local", sharded_vs_local);
  ctx.metric("deterministic_streaming_vs_direct", streaming_vs_direct);
}
