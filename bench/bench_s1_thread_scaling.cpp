// S1 — thread scaling of the deterministic parallel runtime.
//
// One hard instance; the three parallelized hot paths (KP sampling,
// measure_quality, CONGEST rounds) are timed at 1/2/4/8 threads.  Every
// leg also cross-checks its result against the 1-thread reference — the
// recorded speedup curve is only meaningful because the outputs are
// bit-identical, which this scenario asserts inline (the full property
// fleet lives in tests/test_parallel_determinism.cpp).
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench/registry.hpp"
#include "bench/timer.hpp"
#include "congest/programs.hpp"
#include "congest/simulator.hpp"
#include "core/kp.hpp"
#include "graph/generators.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

LCS_BENCH_SCENARIO(S1_thread_scaling,
                   "parallel runtime speedup with bit-identical outputs",
                   "threads in {1,2,4,8} x {kp_build, measure_quality, congest} on D=4") {
  using namespace lcs;

  const std::uint32_t n = ctx.pick_n(5000, 100000);
  const std::uint64_t seed = ctx.seed(29);
  const graph::HardInstance hi = graph::hard_instance(n, 4);
  core::KpOptions opt;
  opt.diameter = 4;
  opt.seed = seed;

  const std::vector<unsigned> thread_counts = {1, 2, 4, 8};
  {
    Json arr = Json::array();
    for (const unsigned t : thread_counts) arr.push_back(std::uint64_t{t});
    ctx.param("threads", std::move(arr));
  }
  ctx.param("hardware_threads", std::uint64_t{std::max(1u, std::thread::hardware_concurrency())});

  ThreadOverrideGuard guard;
  Table t({"threads", "kp_build_ms", "quality_ms", "congest_ms", "identical"});

  core::KpBuildResult reference;      // 1-thread outputs, the determinism baseline
  core::QualityReport reference_q;
  congest::RunStats reference_stats;
  std::vector<double> kp_ms, quality_ms, congest_ms;
  bool all_identical = true;

  for (const unsigned threads : thread_counts) {
    set_num_threads(threads);

    bench::MonotonicTimer timer;
    core::KpBuildResult built = core::build_kp_shortcuts(hi.g, hi.paths, opt);
    kp_ms.push_back(timer.elapsed_ms());

    timer.reset();
    const core::QualityReport q = core::measure_quality(hi.g, hi.paths, built.shortcuts, {});
    quality_ms.push_back(timer.elapsed_ms());

    timer.reset();
    congest::Simulator sim(hi.g);
    sim.set_parallel(true);
    congest::BfsProgram bfs(hi.g.num_vertices(), 0, hi.diameter + 2);
    const congest::RunStats stats = sim.run(bfs, hi.diameter + 4);
    congest_ms.push_back(timer.elapsed_ms());

    bool identical = true;
    if (threads == thread_counts.front()) {
      reference = std::move(built);
      reference_q = q;
      reference_stats = stats;
    } else {
      identical = built.shortcuts.h == reference.shortcuts.h &&
                  q.congestion == reference_q.congestion &&
                  q.dilation_lb == reference_q.dilation_lb &&
                  q.dilation_ub == reference_q.dilation_ub &&
                  q.all_covered == reference_q.all_covered &&
                  stats.rounds == reference_stats.rounds &&
                  stats.messages == reference_stats.messages &&
                  stats.max_edge_load == reference_stats.max_edge_load;
      all_identical = all_identical && identical;
    }

    t.row()
        .cell(std::uint64_t{threads})
        .cell(kp_ms.back(), 1)
        .cell(quality_ms.back(), 1)
        .cell(congest_ms.back(), 1)
        .cell(identical ? std::uint64_t{1} : std::uint64_t{0});

    ctx.metric("wall_ms_kp_build_t" + std::to_string(threads), kp_ms.back());
    ctx.metric("wall_ms_quality_t" + std::to_string(threads), quality_ms.back());
    ctx.metric("wall_ms_congest_t" + std::to_string(threads), congest_ms.back());
  }

  t.print(ctx.out(), "S1: thread scaling (hard instance, D=4)");
  ctx.out() << "\nnote: speedups are meaningful only up to the machine's core count;\n"
            << "the identical column is the determinism cross-check vs 1 thread.\n";

  // Guard against division by a sub-resolution timing on tiny smoke runs.
  const auto speedup = [](double base, double now) { return now > 1e-6 ? base / now : 0.0; };
  for (std::size_t i = 1; i < thread_counts.size(); ++i) {
    const std::string suffix = "_t" + std::to_string(thread_counts[i]);
    ctx.metric("speedup_kp_build" + suffix, speedup(kp_ms.front(), kp_ms[i]));
    ctx.metric("speedup_quality" + suffix, speedup(quality_ms.front(), quality_ms[i]));
    ctx.metric("speedup_congest" + suffix, speedup(congest_ms.front(), congest_ms[i]));
  }
  ctx.metric("deterministic_across_threads", all_identical);
}
