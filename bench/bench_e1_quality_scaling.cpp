// E1 — Theorem 1.1: shortcut quality c + d = Õ(k_D), k_D = n^((D-2)/(2D-2)).
//
// Sweeps n on the hard-instance family, measures the Kogan–Parter
// construction's congestion and dilation, normalizes by k_D·ln n, and fits
// the empirical exponent of the dilation for D = 4 (the regime where the
// sampling probability stays below 1 at laptop scale; rows where p clamps
// to 1 are marked and excluded from the fit).
#include <vector>

#include "bench/registry.hpp"
#include "core/kp.hpp"
#include "graph/generators.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

LCS_BENCH_SCENARIO(e1_quality_scaling,
                   "quality c+d = O~(k_D) and its n-exponent (Thm 1.1)",
                   "D in {4,6,8} x beta in {1,0.25} x n-sweep") {
  using namespace lcs;

  Table t({"D", "beta", "n", "m", "k_D", "p", "congestion", "dilation", "radius",
           "quality", "quality/(k_D ln n)"});
  std::vector<double> fit_n, fit_q;

  const std::uint64_t seed = ctx.seed(17);
  for (const unsigned d : {4u, 6u, 8u}) {
    for (const double beta : {1.0, 0.25}) {
      for (const std::uint32_t n : ctx.n_sweep()) {
        const graph::HardInstance hi = graph::hard_instance(n, d);
        core::KpOptions opt;
        opt.diameter = d;
        opt.seed = seed;
        opt.beta = beta;
        const auto rep = core::measure_kp_quality(hi.g, hi.paths, opt);
        const double kd_ln = rep.params.k_d * ln_clamped(hi.g.num_vertices());
        const double quality = static_cast<double>(rep.quality.quality());
        t.row()
            .cell(d)
            .cell(beta, 2)
            .cell(hi.g.num_vertices())
            .cell(hi.g.num_edges())
            .cell(rep.params.k_d, 2)
            .cell(rep.params.sample_prob, 3)
            .cell(std::uint64_t{rep.quality.congestion})
            .cell(std::uint64_t{rep.quality.dilation_ub})
            .cell(std::uint64_t{rep.quality.max_cover_radius})
            .cell(quality, 0)
            .cell(quality / kd_ln, 3);
        if (d == 4 && beta == 1.0) {
          fit_n.push_back(static_cast<double>(hi.g.num_vertices()));
          fit_q.push_back(quality);
        }
      }
    }
  }
  t.print(ctx.out(), "E1: KP quality vs n (hard instances)");

  if (fit_n.size() >= 2) {
    const double slope = log_log_slope(fit_n.data(), fit_q.data(),
                                       static_cast<int>(fit_n.size()));
    ctx.metric("quality_exponent_d4", slope);
    ctx.out()
        << "\nempirical exponent of quality vs n at D=4, beta=1: " << slope
        << "  (target (D-2)/(2D-2) = " << 1.0 / 3.0 << ")\n"
        << "regime note: at laptop scale 2*D*p >~ 1, so per-part membership\n"
        << "saturates and congestion is capped by the number of parts (~sqrt n),\n"
        << "inflating the fitted exponent toward 1/2.  The normalized column\n"
        << "quality/(k_D ln n) staying O(1) — while the trivial construction\n"
        << "grows like sqrt(n)/k_D (see E3/E7) — is the scale-robust signal.\n";
  }
  ctx.metric("rows", std::uint64_t{t.rows()});
}
