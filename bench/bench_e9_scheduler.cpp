// E9 — Theorem 2.1 ([Gha15] random-delay scheduling): N sub-algorithms with
// per-edge congestion c and dilation d complete together in O(c + d log n)
// rounds.  The sub-algorithms here are the N per-part BFS instances on
// their augmented subgraphs — exactly the paper's final stage.
#include <algorithm>
#include <vector>

#include "bench/registry.hpp"
#include "congest/multibfs.hpp"
#include "congest/simulator.hpp"
#include "core/kp.hpp"
#include "graph/generators.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

LCS_BENCH_SCENARIO(e9_scheduler,
                   "random-delay scheduling in O(c + d log n) rounds (Thm 2.1)",
                   "n-sweep, D=4, one BFS instance per part") {
  using namespace lcs;

  Table t({"n", "instances", "c(max load)", "d(max depth)", "bound c+d ln n",
           "rounds", "rounds/bound"});
  const std::uint64_t seed = ctx.seed(41);
  double worst_ratio = 0;
  for (const std::uint32_t n : ctx.n_sweep()) {
    const graph::HardInstance hi = graph::hard_instance(n, 4);
    core::KpOptions opt;
    opt.diameter = 4;
    opt.seed = seed;
    const auto built = core::build_kp_shortcuts(hi.g, hi.paths, opt);

    std::vector<congest::BfsInstanceSpec> specs;
    std::vector<std::uint32_t> load(hi.g.num_edges(), 0);
    for (std::size_t i = 0; i < hi.paths.num_parts(); ++i) {
      congest::BfsInstanceSpec s;
      s.root = hi.paths.leader(i);
      s.edges = core::augmented_edges(hi.g, hi.paths.parts[i], built.shortcuts.h[i]);
      for (const graph::EdgeId e : s.edges) ++load[e];
      specs.push_back(std::move(s));
    }
    std::uint32_t c = 1;
    for (const auto l : load) c = std::max(c, l);
    Rng rng(n);
    for (auto& s : specs) s.start_round = static_cast<std::uint32_t>(rng.uniform(c));

    const std::size_t instances = specs.size();
    congest::MultiBfsProgram prog(hi.g, std::move(specs));
    congest::Simulator sim(hi.g, 1);
    const congest::RunStats st = sim.run(prog, 64 * n);
    std::uint32_t depth = 0;
    for (std::size_t i = 0; i < instances; ++i) depth = std::max(depth, prog.max_depth(i));
    const double bound = double(c) + double(depth) * ln_clamped(hi.g.num_vertices());
    worst_ratio = std::max(worst_ratio, st.rounds / bound);
    t.row()
        .cell(hi.g.num_vertices())
        .cell(static_cast<std::uint64_t>(instances))
        .cell(std::uint64_t{c})
        .cell(std::uint64_t{depth})
        .cell(bound, 1)
        .cell(std::uint64_t{st.rounds})
        .cell(st.rounds / bound, 3);
  }
  t.print(ctx.out(), "E9: scheduled parallel BFS vs the c + d log n bound");
  ctx.out() << "\nclaim holds when rounds/bound stays O(1).\n";
  ctx.metric("worst_rounds_over_bound", worst_ratio);
}
