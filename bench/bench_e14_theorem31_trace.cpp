// E14 — Theorem 3.1's proof, executed: run the (O1/O2/O3)-event recursion
// against concrete sampled shortcuts, across parts and seeds, and report
// the certified bound versus k_D·log2(n), the recursion depth versus
// log2|P|, and the event mix.  Every level finding an event is the
// empirical form of "w.h.p. one of the three scenarios holds".
#include <algorithm>
#include <cmath>

#include "bench/registry.hpp"
#include "core/dilation_argument.hpp"
#include "core/kp.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

LCS_BENCH_SCENARIO(e14_theorem31_trace, "Theorem 3.1 recursion trace (O1/O2/O3 events)",
                   "D in {4,6} x beta in {1,0.05} x n-sweep, 4 seeds (smoke: 2)") {
  using namespace lcs;

  Table t({"n", "D", "beta", "parts x seeds", "events found", "failed", "depth max",
           "certified max", "actual max", "cert/(k_D lg n)"});
  const std::uint64_t base_seed = ctx.seed(60);
  std::uint64_t total_failed = 0;
  double worst_norm = 0;
  for (const unsigned d : {4u, 6u}) {
    // beta = 1: the paper's regime (direct shortcuts, depth ~0).
    // beta << 1: sparse H forces the bisection to actually recurse.
    for (const double beta : {1.0, 0.05}) {
      for (const std::uint32_t n : ctx.n_sweep()) {
        const graph::HardInstance hi = graph::hard_instance(n, d);
        const unsigned seeds = ctx.smoke() ? 2 : 4;
        std::uint32_t traced = 0, failed = 0, depth_max = 0;
        std::uint32_t cert_max = 0, actual_max = 0;
        double k_d = 0;
        for (unsigned s = 0; s < seeds; ++s) {
          core::KpOptions opt;
          opt.diameter = d;
          opt.seed = base_seed + s;
          opt.beta = beta;
          const auto kp = core::build_kp_shortcuts(hi.g, hi.paths, opt);
          k_d = kp.params.k_d;
          const std::size_t probe = std::min<std::size_t>(hi.paths.num_parts(), 6);
          // Tight budget in the sparse series so the bisection has to work
          // through several levels instead of finding O3 immediately.
          core::CertifyOptions copt;
          copt.budget_factor = beta >= 1.0 ? 4.0 : 1.0;
          for (std::size_t p = 0; p < probe; ++p) {
            const auto& part = hi.paths.parts[p];
            const auto cert = core::certify_dilation(
                hi.g, part, kp.shortcuts.h[p], part.front(), part.back(), k_d, copt);
            ++traced;
            if (!cert.success) ++failed;
            depth_max = std::max(depth_max, cert.depth);
            cert_max = std::max(cert_max, cert.certified);
            actual_max = std::max(actual_max, cert.actual);
          }
        }
        const double lg_n = std::log2(static_cast<double>(hi.g.num_vertices()));
        total_failed += failed;
        worst_norm = std::max(worst_norm, cert_max / (k_d * lg_n));
        t.row()
            .cell(hi.g.num_vertices())
            .cell(d)
            .cell(beta, 2)
            .cell(std::uint64_t{traced})
            .cell(std::uint64_t{traced - failed})
            .cell(std::uint64_t{failed})
            .cell(std::uint64_t{depth_max})
            .cell(std::uint64_t{cert_max})
            .cell(std::uint64_t{actual_max})
            .cell(cert_max / (k_d * lg_n), 3);
      }
    }
  }
  t.print(ctx.out(), "E14: certified dilation via the paper's recursion");
  ctx.out() << "\nclaim: zero failures (each level finds an event) and the\n"
               "certified bound stays O(k_D log n); 'actual' is the BFS referee.\n";
  ctx.metric("total_failed", total_failed);
  ctx.metric("worst_cert_over_kd_lg_n", worst_norm);
}
