// S7 — fault tolerance: availability and failover latency of a replicated
// shard fleet under injected faults (PR 8).
//
// Every leg routes one deterministic mixed batch through a ShardRouter
// over 3 LocalShards with replicas=2, injecting one scripted fault kind
// (kill, dropped reply, garbled reply, deadline-length stall) into shard 1
// via service/fault.hpp's FaultyShard.  Because a QueryResult is a pure
// function of (snapshot fingerprint, seed, id), failover to a replica
// cannot change digests — so each leg records availability (ok fraction,
// 1.0 with replication) and the gate `deterministic_failover_vs_healthy`:
// surviving results bit-identical to the all-healthy fleet, re-checked at
// 1, 2 and 8 threads.  An unreplicated (replicas=1) kill leg shows the
// availability a lone fleet loses — deterministically, as the capture
// contract demands.  `deterministic_fault_replay` runs one seeded
// drop-chaos plan twice and requires byte-identical result vectors
// including the failover telemetry: chaos itself replays.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/registry.hpp"
#include "bench/timer.hpp"
#include "graph/generators.hpp"
#include "service/fault.hpp"
#include "service/service.hpp"
#include "service/sharded.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using lcs::service::FaultPlan;
using lcs::service::FaultyShard;
using lcs::service::LocalShard;
using lcs::service::QueryKind;
using lcs::service::QueryRequest;
using lcs::service::QueryResult;
using lcs::service::ShardBackend;
using lcs::service::ShardRouter;

std::vector<QueryRequest> mixed_batch(std::size_t count, std::uint64_t first_id) {
  std::vector<QueryRequest> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    QueryRequest q;
    q.id = first_id + i;
    switch (i % 4) {
      case 0: q.kind = QueryKind::kShortcutQuality; break;
      case 1: q.kind = QueryKind::kShortcutBuild; break;
      case 2: q.kind = QueryKind::kMst; break;
      default: q.kind = QueryKind::kMincut; break;
    }
    q.beta = 0.5 + 0.25 * static_cast<double>(i % 3);
    if (q.kind == QueryKind::kMincut) {
      if (i % 8 == 3)
        q.karger_trials = 4;
      else
        q.eps = 0.5;
    }
    batch.push_back(q);
  }
  return batch;
}

std::vector<std::uint64_t> digests(const std::vector<QueryResult>& rs) {
  std::vector<std::uint64_t> d;
  d.reserve(rs.size());
  for (const auto& r : rs) d.push_back(r.digest());
  return d;
}

}  // namespace

LCS_BENCH_SCENARIO(S7_fault_tolerance,
                   "replicated fleet under injected faults: availability + failover digests",
                   "mixed batch over gnm; 3 shards, R=2; kill/drop/garble/deadline faults") {
  using namespace lcs;

  const std::uint32_t n = ctx.pick_n(300, 4000);
  const std::uint32_t m = 3 * n;
  const std::uint64_t seed = ctx.seed(73);
  const std::size_t batch_size = ctx.smoke() ? 24 : 160;
  const std::size_t kShards = 3;
  const std::size_t kVictim = 1;
  ctx.param("m", std::uint64_t{m});
  ctx.param("batch_size", std::uint64_t{batch_size});
  ctx.param("shards", std::uint64_t{kShards});
  ctx.param("replicas", std::uint64_t{2});

  Rng gen(seed);
  const auto snap = service::GraphSnapshot::build(graph::connected_gnm(n, m, gen), {});
  const auto batch = mixed_batch(batch_size, 77'000);

  ThreadOverrideGuard guard;
  set_num_threads(4);

  // A fleet of kShards LocalShards, shard kVictim wrapped in `plan`.
  const auto make_router = [&](service::RouterOptions options, const FaultPlan& plan,
                               std::uint32_t call_deadline_ms) {
    std::vector<std::unique_ptr<ShardBackend>> backends;
    for (std::size_t s = 0; s < kShards; ++s) {
      auto inner = std::make_unique<LocalShard>(
          std::make_shared<const service::ShortcutService>(snap, seed));
      if (s == kVictim)
        backends.push_back(
            std::make_unique<FaultyShard>(std::move(inner), plan, call_deadline_ms));
      else
        backends.push_back(std::move(inner));
    }
    return ShardRouter(std::move(backends), options);
  };

  service::RouterOptions replicated;
  replicated.replicas = 2;

  // --- healthy reference --------------------------------------------------
  const ShardRouter healthy = make_router(replicated, {}, 0);
  bench::MonotonicTimer t_healthy;
  const std::vector<QueryResult> healthy_results = healthy.run_batch(batch);
  const double healthy_ms = t_healthy.elapsed_ms();
  const std::vector<std::uint64_t> reference = digests(healthy_results);
  Stats healthy_lat;
  bool all_ok = true;
  for (const QueryResult& r : healthy_results) {
    all_ok = all_ok && r.ok;
    healthy_lat.add(r.latency_ms);
  }
  ctx.metric("healthy_p99_ms", healthy_lat.percentile(99.0));

  // --- fault legs: one scripted fault kind against shard kVictim ----------
  struct Leg {
    const char* name;    ///< metric suffix: availability_<name>
    FaultPlan plan;
    std::uint32_t call_deadline_ms = 0;
    service::RouterOptions options;
  };
  std::vector<Leg> legs(4);
  legs[0].name = "kill";
  legs[0].plan.kill_at_batch = 0;
  legs[1].name = "drop";
  legs[1].plan.drop_frame_at = 0;
  legs[2].name = "garble";
  legs[2].plan.garble_frame_at = 0;
  legs[3].name = "deadline";
  legs[3].plan.delay_at = 0;
  legs[3].plan.delay_ms = 100;
  legs[3].call_deadline_ms = 50;
  for (Leg& leg : legs) leg.options = replicated;
  // The contrast leg: the same kill with no replication loses the victim's
  // whole key range — deterministically.
  Leg r1;
  r1.name = "r1_kill";
  r1.plan.kill_at_batch = 0;
  r1.options.replicas = 1;
  legs.push_back(r1);

  Table t({"fault", "replicas", "batch_ms", "ok_ratio", "p99_ms", "identical"});
  t.row()
      .cell("none")
      .cell(std::uint64_t{2})
      .cell(healthy_ms, 1)
      .cell(1.0, 3)
      .cell(healthy_lat.percentile(99.0), 2)
      .cell("--");

  bool deterministic_failover = true;
  bool zero_failures_replicated = true;
  Stats failover_lat;
  for (const Leg& leg : legs) {
    const ShardRouter router = make_router(leg.options, leg.plan, leg.call_deadline_ms);
    bench::MonotonicTimer t_leg;
    const std::vector<QueryResult> results = router.run_batch(batch);
    const double leg_ms = t_leg.elapsed_ms();
    std::size_t ok = 0;
    Stats lat;
    for (const QueryResult& r : results) {
      if (r.ok) {
        ++ok;
        lat.add(r.latency_ms);
        if (leg.options.replicas > 1) failover_lat.add(r.latency_ms);
      }
    }
    const double availability =
        static_cast<double>(ok) / static_cast<double>(results.size());
    // Replicated legs must survive completely AND byte-identically; the
    // unreplicated leg is the contrast, gated only on determinism of the
    // surviving prefix (ok results match the reference positionally).
    bool identical = true;
    for (std::size_t i = 0; i < results.size(); ++i)
      if (results[i].ok && results[i].digest() != reference[i]) identical = false;
    if (leg.options.replicas > 1) {
      zero_failures_replicated = zero_failures_replicated && ok == results.size();
      identical = identical && ok == results.size();
    }
    deterministic_failover = deterministic_failover && identical;
    ctx.metric(std::string("availability_") + leg.name, availability);
    t.row()
        .cell(leg.name)
        .cell(std::uint64_t{leg.options.replicas})
        .cell(leg_ms, 1)
        .cell(availability, 3)
        .cell(lat.percentile(99.0), 2)
        .cell(identical ? "yes" : "NO");
  }
  ctx.metric("failover_p99_ms", failover_lat.percentile(99.0));
  t.print(ctx.out(), "S7: injected faults at n=" + std::to_string(n) +
                         ", batch=" + std::to_string(batch.size()));

  // --- digest gate across thread counts -----------------------------------
  // Killing the victim must be invisible at 1, 2 and 8 threads.
  const std::size_t gate_size = ctx.smoke() ? batch.size() / 2 : batch.size();
  const std::vector<QueryRequest> gate_queries(batch.begin(), batch.begin() + gate_size);
  const std::vector<std::uint64_t> gate_reference(reference.begin(),
                                                  reference.begin() + gate_size);
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_num_threads(threads);
    FaultPlan kill;
    kill.kill_at_batch = 0;
    const ShardRouter router = make_router(replicated, kill, 0);
    const std::vector<QueryResult> results = router.run_batch(gate_queries);
    bool identical = digests(results) == gate_reference;
    for (const QueryResult& r : results) identical = identical && r.ok;
    deterministic_failover = deterministic_failover && identical;
  }
  set_num_threads(4);
  ctx.out() << "\ndigest gate: kill + failover at 1/2/8 threads vs healthy: "
            << (deterministic_failover ? "identical" : "MISMATCH") << "\n";

  // --- chaos replay: the same seeded plan twice ---------------------------
  const auto chaos_record = [&] {
    service::RouterOptions options;
    options.replicas = 2;
    std::vector<std::unique_ptr<ShardBackend>> backends;
    for (std::size_t s = 0; s < kShards; ++s) {
      FaultPlan plan;
      plan.seed = seed + s;
      plan.drop_percent = 40;
      backends.push_back(std::make_unique<FaultyShard>(
          std::make_unique<LocalShard>(
              std::make_shared<const service::ShortcutService>(snap, seed)),
          plan));
    }
    const ShardRouter router(std::move(backends), options);
    std::vector<std::uint64_t> record;
    const int rounds = ctx.smoke() ? 3 : 6;
    for (int b = 0; b < rounds; ++b) {
      for (const QueryResult& r :
           router.run_batch(mixed_batch(gate_size, 80'000 + 1000 * b))) {
        record.push_back(r.digest());
        record.push_back((std::uint64_t{r.attempts} << 32) | r.served_by_replica);
      }
    }
    return record;
  };
  const bool replay_identical = chaos_record() == chaos_record();
  ctx.out() << "chaos replay (seeded drop plan, two runs): "
            << (replay_identical ? "identical" : "MISMATCH") << "\n";

  ctx.metric("all_queries_ok", all_ok);
  ctx.metric("zero_failures_with_replication", zero_failures_replicated);
  ctx.metric("deterministic_failover_vs_healthy", deterministic_failover);
  ctx.metric("deterministic_fault_replay", replay_identical);
}
