// S4 — admission-controlled service under overload, with artifact-cache
// reuse (PR 5).
//
// A heavy-skewed mixed batch is pushed through ShortcutService::run_admitted
// at offered loads of 1x/4x/16x the per-wave admission capacity.  Recorded
// per load leg (suffix _x<mult>): wall time, qps, queue-wait p99, p50/p99
// execution latency per cost class, and the snapshot artifact cache's
// hit rate over a hot re-run of the same load.  Four inline determinism
// cross-checks guard the curves' meaning — per-query digests must be
// bit-identical (a) from a saturated admission queue vs idle one-at-a-time
// execution, (b) from a cache-enabled vs cache-disabled service, (c) across
// thread counts, and (d) structurally, cheap queries must never wait on the
// heavy backlog (strict per-class slots).
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench/registry.hpp"
#include "bench/timer.hpp"
#include "graph/generators.hpp"
#include "service/service.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using lcs::service::CostClass;
using lcs::service::QueryKind;
using lcs::service::QueryRequest;
using lcs::service::QueryResult;

/// Heavy-skewed workload: half the queries are mincut/MST (heavy class), so
/// an unscheduled pool would convoy the cheap half behind them.
std::vector<QueryRequest> overload_batch(std::uint32_t count, std::uint64_t id_base) {
  std::vector<QueryRequest> batch;
  batch.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    QueryRequest q;
    q.id = id_base + i;
    switch (i % 4) {
      case 0: q.kind = QueryKind::kShortcutQuality; break;
      case 1: q.kind = QueryKind::kMincut; break;
      case 2: q.kind = QueryKind::kShortcutBuild; break;
      default: q.kind = QueryKind::kMst; break;
    }
    q.beta = (i % 3 == 0) ? 0.5 : 1.0;
    q.karger_trials = (i % 8 == 1) ? 10 : 0;  // alternate Karger / sparsified
    q.eps = 0.5;
    batch.push_back(q);
  }
  return batch;
}

std::vector<std::uint64_t> digests(const std::vector<QueryResult>& rs) {
  std::vector<std::uint64_t> d;
  d.reserve(rs.size());
  for (const auto& r : rs) d.push_back(r.digest());
  return d;
}

}  // namespace

LCS_BENCH_SCENARIO(S4_overload,
                   "admission-controlled overload sweep with artifact-cache reuse",
                   "offered load in {1,4,16}x wave capacity x heavy-skewed batch") {
  using namespace lcs;

  const std::uint32_t n = ctx.pick_n(300, 1200);
  const std::uint64_t seed = ctx.seed(58);

  Rng gen(seed);
  graph::Graph g = graph::connected_gnm(n, 3 * n, gen);
  service::GraphSnapshot::Options sopt;
  sopt.weight_seed = seed ^ 0x99ULL;
  sopt.max_weight = 12;
  // Headroom above the full sweep's distinct artifact keys (default-shaped
  // queries now share the PR 9 partition pool; explicit-num_parts ones still
  // key uniquely): a capacity flush mid-scenario would quietly zero the
  // hot-pass hit-rate legs.
  sopt.max_cached_partitions = 256;
  sopt.max_cached_samples = 256;
  const auto snapshot = service::GraphSnapshot::build(std::move(g), sopt);
  const service::ShortcutService svc(snapshot, seed);
  const service::ShortcutService uncached(
      snapshot, seed, service::ShortcutService::Options{/*use_artifact_cache=*/false});

  service::AdmissionOptions adm;
  adm.cheap_slots = 4;
  adm.heavy_slots = 2;
  adm.max_queue = 4096;  // the sweep saturates waves, not the bound
  const std::uint32_t wave_capacity = adm.cheap_slots + adm.heavy_slots;
  ctx.param("cheap_slots", std::uint64_t{adm.cheap_slots});
  ctx.param("heavy_slots", std::uint64_t{adm.heavy_slots});

  const std::vector<std::uint32_t> multiples = ctx.smoke()
                                                   ? std::vector<std::uint32_t>{1, 2, 4}
                                                   : std::vector<std::uint32_t>{1, 4, 16};
  {
    Json arr = Json::array();
    for (const std::uint32_t m : multiples) arr.push_back(std::uint64_t{m});
    ctx.param("offered_multiples", std::move(arr));
  }

  ThreadOverrideGuard guard;
  set_num_threads(4);

  Table t({"load", "queries", "waves", "wall_ms", "qps", "queue_p99", "p99_cheap", "p99_heavy",
           "hit_rate"});
  bool all_ok = true;
  bool hot_vs_cold = true;
  bool cheap_never_starved = true;
  std::vector<QueryRequest> top_batch;       // the largest offered load
  std::vector<std::uint64_t> top_reference;  // its admitted digests

  for (const std::uint32_t mult : multiples) {
    const std::uint32_t count = mult * wave_capacity;
    const std::vector<QueryRequest> batch = overload_batch(count, 10'000 * mult);

    // Cold pass: the timed leg (artifacts materialize on first touch).
    bench::MonotonicTimer timer;
    const std::vector<QueryResult> results = svc.run_admitted(batch, adm);
    const double wall_ms = timer.elapsed_ms();

    // Hot pass: same load again, now against materialized artifacts.
    const service::ArtifactStats before = snapshot->artifact_stats();
    const std::vector<QueryResult> hot = svc.run_admitted(batch, adm);
    const service::ArtifactStats after = snapshot->artifact_stats();
    const std::uint64_t lookups = after.total().lookups() - before.total().lookups();
    const std::uint64_t hits = after.total().hits - before.total().hits;
    const double hit_rate =
        lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);

    Stats cheap_lat, heavy_lat, queue_wait;
    std::uint32_t waves = 0;
    std::uint32_t cheap_total = 0, cheap_max_wave = 0;
    bool ok = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const QueryResult& r = results[i];
      ok = ok && r.ok;
      queue_wait.add(r.queue_ms);
      waves = std::max(waves, r.wave + 1);
      if (service::query_cost_class(batch[i]) == CostClass::kCheap) {
        cheap_lat.add(r.latency_ms);
        ++cheap_total;
        cheap_max_wave = std::max(cheap_max_wave, r.wave);
      } else {
        heavy_lat.add(r.latency_ms);
      }
      hot_vs_cold = hot_vs_cold && r.digest() == hot[i].digest();
    }
    all_ok = all_ok && ok;
    // Strict per-class slots: cheap query k runs in wave k / cheap_slots no
    // matter how much heavy work is queued — starvation would show as a
    // later wave.
    const std::uint32_t cheap_wave_bound =
        cheap_total == 0 ? 0 : (cheap_total + adm.cheap_slots - 1) / adm.cheap_slots;
    cheap_never_starved = cheap_never_starved &&
                          (cheap_total == 0 || cheap_max_wave + 1 <= cheap_wave_bound);

    const double qps =
        wall_ms > 1e-6 ? 1000.0 * static_cast<double>(count) / wall_ms : 0.0;
    // Lvalue on purpose: gcc 12's -Wrestrict false-fires on the
    // operator+(const char*, std::string&&) inlining path under -O2.
    const std::string mult_str = std::to_string(mult);
    t.row()
        .cell("x" + mult_str)
        .cell(std::uint64_t{count})
        .cell(std::uint64_t{waves})
        .cell(wall_ms, 1)
        .cell(qps, 1)
        .cell(queue_wait.percentile(99.0), 2)
        .cell(cheap_lat.percentile(99.0), 2)
        .cell(heavy_lat.percentile(99.0), 2)
        .cell(hit_rate, 2);

    const std::string suffix = "_x" + mult_str;
    ctx.metric("wall_ms" + suffix, wall_ms);
    ctx.metric("qps" + suffix, qps);
    ctx.metric("queue_p99_ms" + suffix, queue_wait.percentile(99.0));
    ctx.metric("latency_p50_ms_cheap" + suffix, cheap_lat.percentile(50.0));
    ctx.metric("latency_p99_ms_cheap" + suffix, cheap_lat.percentile(99.0));
    ctx.metric("latency_p50_ms_heavy" + suffix, heavy_lat.percentile(50.0));
    ctx.metric("latency_p99_ms_heavy" + suffix, heavy_lat.percentile(99.0));
    ctx.metric("cache_hit_rate" + suffix, hit_rate);

    if (mult == multiples.back()) {
      top_batch = batch;
      top_reference = digests(results);
    }
  }

  // Cross-check (a): overload vs idle — the saturated admission queue must
  // answer every query with the bytes idle one-at-a-time execution produces.
  bool overload_vs_idle = true;
  for (std::size_t i = 0; i < top_batch.size(); ++i)
    overload_vs_idle = overload_vs_idle && svc.run(top_batch[i]).digest() == top_reference[i];

  // Cross-check (b): cached vs uncached — a service computing every artifact
  // privately must agree bit for bit with the artifact-cache path.
  const std::vector<QueryResult> uncached_results = uncached.run_admitted(top_batch, adm);
  bool cached_vs_uncached = digests(uncached_results) == top_reference;

  // Cross-check (c): thread counts — the admitted batch at 1/2/8 threads.
  bool across_threads = true;
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_num_threads(threads);
    across_threads = across_threads && digests(svc.run_admitted(top_batch, adm)) == top_reference;
  }

  t.print(ctx.out(), "S4: admission-controlled overload (shared snapshot, 4 threads)");
  ctx.out() << "\nnote: queue_p99 is admission wait, p99_* are per-class execution\n"
            << "latencies; hit_rate is the artifact-cache rate over a hot re-run.\n";

  ctx.metric("all_queries_ok", all_ok);
  ctx.metric("cheap_never_starved", cheap_never_starved);
  ctx.metric("deterministic_hot_vs_cold", hot_vs_cold);
  ctx.metric("deterministic_overload_vs_idle", overload_vs_idle);
  ctx.metric("deterministic_cached_vs_uncached", cached_vs_uncached);
  ctx.metric("deterministic_across_threads", across_threads);
}
