// EA1 — ablation of the D independent sampling repetitions (Step 2).
// The dilation analysis consumes one repetition per shortcut-tree layer
// (Lemma 3.3 "uses at most k out of D repetitions"); collapsing to a single
// repetition with the same per-repetition p must cost dilation/coverage.
#include <iostream>

#include "bench_util.hpp"
#include "core/kp.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lcs;
  bench::banner("EA1", "ablation: D independent repetitions vs fewer");

  Table t({"n", "D", "reps", "beta", "congestion", "dilation", "radius",
           "covered", "|H| total"});
  const double beta = 0.25;  // keep p < 1 so the repetitions matter
  for (const std::uint32_t n : bench::n_sweep()) {
    const unsigned d = 4;
    const graph::HardInstance hi = graph::hard_instance(n, d);
    for (const unsigned reps : {1u, 2u, 4u, 8u}) {
      core::KpOptions opt;
      opt.diameter = d;
      opt.seed = 47;
      opt.beta = beta;
      opt.repetitions = reps;
      const auto rep = core::measure_kp_quality(hi.g, hi.paths, opt);
      t.row()
          .cell(hi.g.num_vertices())
          .cell(d)
          .cell(reps)
          .cell(beta, 2)
          .cell(std::uint64_t{rep.quality.congestion})
          .cell(std::uint64_t{rep.quality.dilation_ub})
          .cell(std::uint64_t{rep.quality.max_cover_radius})
          .cell(rep.quality.all_covered ? "yes" : "NO")
          .cell(rep.total_shortcut_edges);
    }
  }
  t.print(std::cout, "EA1: repetition count ablation (fixed per-repetition p)");
  std::cout << "\nexpected: congestion grows ~linearly in reps, dilation falls;\n"
               "reps = D is the paper's choice (one fresh repetition per\n"
               "shortcut-tree layer).\n";
  return 0;
}
