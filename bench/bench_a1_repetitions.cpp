// EA1 — ablation of the D independent sampling repetitions (Step 2).
// The dilation analysis consumes one repetition per shortcut-tree layer
// (Lemma 3.3 "uses at most k out of D repetitions"); collapsing to a single
// repetition with the same per-repetition p must cost dilation/coverage.
#include "bench/registry.hpp"
#include "core/kp.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

LCS_BENCH_SCENARIO(a1_repetitions, "ablation: D independent repetitions vs fewer",
                   "n-sweep x reps in {1,2,4,8}, D=4, beta=0.25") {
  using namespace lcs;

  Table t({"n", "D", "reps", "beta", "congestion", "dilation", "radius",
           "covered", "|H| total"});
  const double beta = ctx.beta(0.25);  // keep p < 1 so the repetitions matter
  const std::uint64_t seed = ctx.seed(47);
  for (const std::uint32_t n : ctx.n_sweep()) {
    const unsigned d = 4;
    const graph::HardInstance hi = graph::hard_instance(n, d);
    for (const unsigned reps : {1u, 2u, 4u, 8u}) {
      core::KpOptions opt;
      opt.diameter = d;
      opt.seed = seed;
      opt.beta = beta;
      opt.repetitions = reps;
      const auto rep = core::measure_kp_quality(hi.g, hi.paths, opt);
      t.row()
          .cell(hi.g.num_vertices())
          .cell(d)
          .cell(reps)
          .cell(beta, 2)
          .cell(std::uint64_t{rep.quality.congestion})
          .cell(std::uint64_t{rep.quality.dilation_ub})
          .cell(std::uint64_t{rep.quality.max_cover_radius})
          .cell(rep.quality.all_covered ? "yes" : "NO")
          .cell(rep.total_shortcut_edges);
    }
  }
  t.print(ctx.out(), "EA1: repetition count ablation (fixed per-repetition p)");
  ctx.out() << "\nexpected: congestion grows ~linearly in reps, dilation falls;\n"
               "reps = D is the paper's choice (one fresh repetition per\n"
               "shortcut-tree layer).\n";
  ctx.metric("rows", std::uint64_t{t.rows()});
}
