// E5 — Corollary 1.2 (MST): Boruvka over KP shortcuts versus the
// Ghaffari–Haeupler baseline and the no-shortcut baseline.  Correctness is
// checked against Kruskal on every row; the reported rounds split into
// measured aggregation (scheduled BFS, simulated) and charged construction.
#include "bench/registry.hpp"
#include "graph/generators.hpp"
#include "mst/mst.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

LCS_BENCH_SCENARIO(e5_mst, "MST in O~(k_D) rounds via shortcuts (Cor 1.2)",
                   "n-sweep x scheme in {KP, GH, none}, D=4") {
  using namespace lcs;

  Table t({"n", "D", "scheme", "phases", "agg_rounds", "constr_rounds", "total",
           "weight_ok"});
  const std::uint64_t seed = ctx.seed(7);
  bool all_weights_ok = true;
  for (const std::uint32_t n : ctx.n_sweep()) {
    const unsigned d = 4;
    const graph::HardInstance hi = graph::hard_instance(n, d);
    Rng rng(5);
    const graph::EdgeWeights w = graph::distinct_random_weights(hi.g, rng);
    const mst::MstResult want = mst::kruskal(hi.g, w);

    struct Row {
      mst::ShortcutScheme scheme;
      const char* name;
      double beta;
    };
    for (const Row r : {Row{mst::ShortcutScheme::kKoganParter, "KP", 1.0},
                        Row{mst::ShortcutScheme::kGhaffariHaeupler, "GH", 1.0},
                        Row{mst::ShortcutScheme::kNone, "none", 1.0}}) {
      mst::BoruvkaOptions opt;
      opt.scheme = r.scheme;
      opt.diameter = d;
      opt.beta = r.beta;
      opt.seed = seed;
      const auto res = mst::boruvka_mst(hi.g, w, opt);
      all_weights_ok = all_weights_ok && res.mst.weight == want.weight;
      t.row()
          .cell(hi.g.num_vertices())
          .cell(d)
          .cell(r.name)
          .cell(res.phases)
          .cell(res.aggregation_rounds)
          .cell(res.construction_rounds)
          .cell(res.total_rounds())
          .cell(res.mst.weight == want.weight ? "yes" : "NO");
    }
  }
  t.print(ctx.out(), "E5: Boruvka-over-shortcuts round comparison (hard family)");
  ctx.out() << "\nshape: 'none' aggregation grows ~sqrt(n) per phase (bare paths);\n"
               "KP keeps per-phase aggregation at the shortcut quality.  At\n"
               "these sizes the KP sampling probability is near 1, so its\n"
               "congestion-driven delays dominate — the crossover to clear KP\n"
               "wins needs n >> 10^5 (beyond test scale).\n";
  ctx.metric("all_weights_ok", all_weights_ok);
  ctx.metric("rows", std::uint64_t{t.rows()});
}
