// E3 — Theorem 3.1: diam(G[S_i] ∪ H_i) = O(k_D log n) w.h.p.
//
// Measures the worst augmented-part dilation (upper bound: exact diameter on
// small parts, 2×cover-radius bracket on large ones) across seeds, and
// normalizes by k_D·ln n.  The trivial baseline column shows what the parts
// look like *without* shortcuts (bare path diameter ~sqrt(n)).
#include <algorithm>

#include "bench/registry.hpp"
#include "core/kp.hpp"
#include "graph/generators.hpp"
#include "util/math.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

LCS_BENCH_SCENARIO(e3_dilation, "dilation = O(k_D log n) w.h.p. (Thm 3.1)",
                   "D in {4,5,6} x n-sweep, trivial baseline per row") {
  using namespace lcs;

  Table t({"D", "n", "k_D ln n", "dilation(max)", "radius(max)", "trivial",
           "dilation/(k_D ln n)", "covered"});
  const std::uint64_t seed = ctx.seed(31);
  double worst_norm = 0;
  bool all_covered = true;
  for (const unsigned d : {4u, 5u, 6u}) {
    for (const std::uint32_t n : ctx.n_sweep()) {
      const graph::HardInstance hi = graph::hard_instance(n, d);
      Stats dil, rad;
      bool covered = true;
      double kd_ln = 0;
      for (unsigned trial = 0; trial < ctx.trials(); ++trial) {
        core::KpOptions opt;
        opt.diameter = d;
        opt.seed = seed + trial;
        const auto rep = core::measure_kp_quality(hi.g, hi.paths, opt);
        dil.add(rep.quality.dilation_ub);
        rad.add(rep.quality.max_cover_radius);
        covered = covered && rep.quality.all_covered;
        kd_ln = rep.params.k_d * ln_clamped(hi.g.num_vertices());
      }
      const auto trivial =
          core::measure_quality(hi.g, hi.paths, core::build_trivial_shortcuts(hi.paths));
      worst_norm = std::max(worst_norm, dil.max() / kd_ln);
      all_covered = all_covered && covered;
      t.row()
          .cell(d)
          .cell(hi.g.num_vertices())
          .cell(kd_ln, 1)
          .cell(dil.max(), 0)
          .cell(rad.max(), 0)
          .cell(std::uint64_t{trivial.dilation_ub})
          .cell(dil.max() / kd_ln, 3)
          .cell(covered ? "yes" : "NO");
    }
  }
  t.print(ctx.out(), "E3: dilation of augmented parts vs k_D ln n");
  ctx.out() << "\nclaim holds when dilation/(k_D ln n) stays O(1) while the "
               "trivial column grows like sqrt(n).\n";
  ctx.metric("worst_dilation_over_kd_ln_n", worst_norm);
  ctx.metric("all_covered", all_covered);
}
