// E12 — Figures 1/2 and Lemma 3.3, regenerated numerically: for a shortest
// path P inside a part and a target set Q, build the shortcut tree
// T* = T_{P,Q,l}[p] ∪ E(P) with the construction's own coins and measure
// dist_{T*}(p_1, {t} ∪ L_k) per level k against the lemma's bound
// l_k = (c · k_D / N)^{-(k-2)} = (N / (c k_D))^{k-2}, plus the walk
// statistics the figures illustrate (units, level-k node distinctness).
#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "bench/registry.hpp"
#include "core/kp.hpp"
#include "core/shortcut_tree.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

LCS_BENCH_SCENARIO(e12_shortcut_trees,
                   "shortcut trees: (i,k)-walk lengths vs Lemma 3.3's bound",
                   "n = 2048 (smoke: 512), D=4, k in {2..D+1}, 8 seeds (smoke: 3)") {
  using namespace lcs;

  const std::uint32_t n = ctx.pick_n(512, 2048);
  const unsigned d = 4;
  const graph::HardInstance hi = graph::hard_instance(n, d);
  const ShortcutParams params = ShortcutParams::make(hi.g.num_vertices(), d);

  // P = a prefix of part 0's path (odd length), Q = the leader of part 1.
  std::vector<graph::VertexId> path;
  std::size_t plen = std::min<std::size_t>(hi.paths.parts[0].size(), 31);
  if (plen % 2 == 0) --plen;  // the paper writes |P| = 2d-1 (odd)
  for (std::size_t j = 0; j < plen; ++j) path.push_back(hi.paths.parts[0][j]);
  const std::vector<graph::VertexId> q{hi.paths.leader(1)};

  // Lemma 3.3's bound is l_k = (c k_D / N)^{-(k-2)}; the paper's c >= 8
  // serves the w.h.p. union bound at asymptotic n — at reproduction scale
  // N < 8 k_D and the c=8 bound is vacuous, so the table uses c = 1.
  Table t({"k", "bound (N/k_D)^{k-2}", "dist max(seeds)", "dist p95", "reached",
           "walk units(max)", "w_j distinct"});
  const double base = static_cast<double>(params.max_large_parts) / params.k_d;

  const std::uint64_t seed = ctx.seed(1000);
  const unsigned seeds = ctx.smoke() ? 3 : 8;
  bool all_distinct = true;
  for (std::uint32_t k = 2; k <= d + 1; ++k) {
    Stats dist_stats, unit_stats;
    unsigned reached = 0;
    bool distinct_ok = true;
    for (unsigned s = 0; s < seeds; ++s) {
      const core::ShortcutTree st(hi.g, path, q, d, seed + s, params.sample_prob, 0);
      if (!st.tree_complete()) continue;
      const auto dist = st.dist_to_level(0, k);
      if (dist != graph::kUnreached) {
        dist_stats.add(dist);
        ++reached;
      }
      const auto walk = st.maximal_walk(0, k);
      unit_stats.add(static_cast<double>(walk.level_k_nodes.size()));
      std::set<graph::VertexId> uniq(walk.level_k_nodes.begin(),
                                     walk.level_k_nodes.end());
      distinct_ok = distinct_ok && uniq.size() == walk.level_k_nodes.size();
    }
    const double bound = std::max(1.0, std::pow(std::max(1.0, base), double(k) - 2.0));
    all_distinct = all_distinct && distinct_ok;
    t.row()
        .cell(k)
        .cell(bound, 1)
        .cell(dist_stats.empty() ? -1.0 : dist_stats.max(), 0)
        .cell(dist_stats.empty() ? -1.0 : dist_stats.percentile(95), 1)
        .cell(std::uint64_t{reached})
        .cell(unit_stats.empty() ? 0.0 : unit_stats.max(), 0)
        .cell(distinct_ok ? "yes" : "NO");
  }
  t.print(ctx.out(), "E12: T* distances per level (P from part 0, Q = leader(1))");
  ctx.out() << "\nLemma 3.3 claims dist(p_1, {t} ∪ L_k) <= l_k w.h.p.; the\n"
               "'w_j distinct' column checks Observation 3.1 on every walk.\n"
               "Figure 1/2's content is exactly these layer-indexed walks.\n";
  ctx.metric("all_walks_distinct", all_distinct);
}
