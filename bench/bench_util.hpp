// Shared helpers for the experiment harnesses.
//
// Every bench binary regenerates one experiment of EXPERIMENTS.md.  Running
// with LCS_BENCH_QUICK=1 in the environment shrinks instance sizes and trial
// counts (useful for smoke runs); the default sizes are what EXPERIMENTS.md
// reports.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "util/math.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace lcs::bench {

inline bool quick_mode() {
  const char* v = std::getenv("LCS_BENCH_QUICK");
  return v != nullptr && std::string(v) != "0";
}

/// Instance sizes for n-sweeps (smaller set under quick mode).
inline std::vector<std::uint32_t> n_sweep() {
  if (quick_mode()) return {512, 1024};
  return {512, 1024, 2048, 4096};
}

inline unsigned trials() { return quick_mode() ? 1 : 3; }

/// Header line every harness prints first.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "\n### " << id << " — " << claim << "\n"
            << "    (paper: Kogan & Parter, PODC 2021; sizes are test-scale,\n"
            << "     shapes — ratios and exponents — are the reproduced claim)\n\n";
}

}  // namespace lcs::bench
