// EA3 — ablation of the random-delay range (DESIGN.md §6.4): delays drawn
// from [0, f·C) for f ∈ {0, 1/4, 1, 2, 4}, where C is the actual max
// per-edge instance load.  Too small a range serializes on hot edges; too
// large just adds idle waiting — the theory's choice f ≈ 1 is the knee.
#include <algorithm>
#include <string>
#include <vector>

#include "bench/registry.hpp"
#include "congest/multibfs.hpp"
#include "congest/simulator.hpp"
#include "core/kp.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

LCS_BENCH_SCENARIO(a3_scheduler_delays, "ablation: random delay range in the scheduler",
                   "f in {0, 1/4, 1, 2, 4} x trials, n = 4096 (smoke: 1024), D=4") {
  using namespace lcs;

  const std::uint32_t n = ctx.pick_n(1024, 4096);
  const graph::HardInstance hi = graph::hard_instance(n, 4);
  core::KpOptions opt;
  opt.diameter = 4;
  opt.seed = ctx.seed(71);
  const auto built = core::build_kp_shortcuts(hi.g, hi.paths, opt);

  // Shared instance setup.
  std::vector<congest::BfsInstanceSpec> base;
  std::vector<std::uint32_t> load(hi.g.num_edges(), 0);
  for (std::size_t i = 0; i < hi.paths.num_parts(); ++i) {
    congest::BfsInstanceSpec s;
    s.root = hi.paths.leader(i);
    s.edges = core::augmented_edges(hi.g, hi.paths.parts[i], built.shortcuts.h[i]);
    for (const graph::EdgeId e : s.edges) ++load[e];
    base.push_back(std::move(s));
  }
  std::uint32_t c = 1;
  for (const auto l : load) c = std::max(c, l);

  Table t({"delay range", "rounds(mean)", "rounds(max)", "max edge load"});
  double best_mean = -1;
  for (const double f : {0.0, 0.25, 1.0, 2.0, 4.0}) {
    const std::uint32_t range = std::max<std::uint32_t>(1, static_cast<std::uint32_t>(f * c));
    Stats rounds;
    std::uint64_t worst_load = 0;
    for (unsigned trial = 0; trial < ctx.trials(); ++trial) {
      Rng rng(100 * trial + static_cast<std::uint64_t>(f * 16) + 1);
      std::vector<congest::BfsInstanceSpec> specs = base;
      for (auto& s : specs)
        s.start_round = f == 0.0 ? 0 : static_cast<std::uint32_t>(rng.uniform(range));
      congest::MultiBfsProgram prog(hi.g, std::move(specs));
      congest::Simulator sim(hi.g, 1);
      const congest::RunStats st = sim.run(prog, 64 * n);
      rounds.add(st.rounds);
      worst_load = std::max(worst_load, st.max_edge_load);
    }
    if (best_mean < 0 || rounds.mean() < best_mean) best_mean = rounds.mean();
    t.row()
        .cell("[0, " + std::to_string(range) + ")")
        .cell(rounds.mean(), 1)
        .cell(rounds.max(), 0)
        .cell(worst_load);
  }
  t.print(ctx.out(), "EA3: delay range sweep (C = " + std::to_string(c) + ")");
  ctx.out() << "\nthe store-and-forward queues make even zero delay correct,\n"
               "but rounds track C + depth once the range reaches ~C; larger\n"
               "ranges only push the start of the last instance out.\n";
  ctx.metric("max_edge_instance_load", std::uint64_t{c});
  ctx.metric("best_mean_rounds", best_mean);
}
