// EA3 — ablation of the random-delay range (DESIGN.md §6.4): delays drawn
// from [0, f·C) for f ∈ {0, 1/4, 1, 2, 4}, where C is the actual max
// per-edge instance load.  Too small a range serializes on hot edges; too
// large just adds idle waiting — the theory's choice f ≈ 1 is the knee.
#include <iostream>

#include "bench_util.hpp"
#include "congest/multibfs.hpp"
#include "congest/simulator.hpp"
#include "core/kp.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

int main() {
  using namespace lcs;
  bench::banner("EA3", "ablation: random delay range in the scheduler");

  const std::uint32_t n = bench::quick_mode() ? 1024 : 4096;
  const graph::HardInstance hi = graph::hard_instance(n, 4);
  core::KpOptions opt;
  opt.diameter = 4;
  opt.seed = 71;
  const auto built = core::build_kp_shortcuts(hi.g, hi.paths, opt);

  // Shared instance setup.
  std::vector<congest::BfsInstanceSpec> base;
  std::vector<std::uint32_t> load(hi.g.num_edges(), 0);
  for (std::size_t i = 0; i < hi.paths.num_parts(); ++i) {
    congest::BfsInstanceSpec s;
    s.root = hi.paths.leader(i);
    s.edges = core::augmented_edges(hi.g, hi.paths.parts[i], built.shortcuts.h[i]);
    for (const graph::EdgeId e : s.edges) ++load[e];
    base.push_back(std::move(s));
  }
  std::uint32_t c = 1;
  for (const auto l : load) c = std::max(c, l);

  Table t({"delay range", "rounds(mean)", "rounds(max)", "max edge load"});
  for (const double f : {0.0, 0.25, 1.0, 2.0, 4.0}) {
    const std::uint32_t range = std::max<std::uint32_t>(1, static_cast<std::uint32_t>(f * c));
    Stats rounds;
    std::uint64_t worst_load = 0;
    for (unsigned trial = 0; trial < bench::trials(); ++trial) {
      Rng rng(100 * trial + static_cast<std::uint64_t>(f * 16) + 1);
      std::vector<congest::BfsInstanceSpec> specs = base;
      for (auto& s : specs)
        s.start_round = f == 0.0 ? 0 : static_cast<std::uint32_t>(rng.uniform(range));
      congest::MultiBfsProgram prog(hi.g, std::move(specs));
      congest::Simulator sim(hi.g, 1);
      const congest::RunStats st = sim.run(prog, 64 * n);
      rounds.add(st.rounds);
      worst_load = std::max(worst_load, st.max_edge_load);
    }
    t.row()
        .cell("[0, " + std::to_string(range) + ")")
        .cell(rounds.mean(), 1)
        .cell(rounds.max(), 0)
        .cell(worst_load);
  }
  t.print(std::cout, "EA3: delay range sweep (C = " + std::to_string(c) + ")");
  std::cout << "\nthe store-and-forward queues make even zero delay correct,\n"
               "but rounds track C + depth once the range reaches ~C; larger\n"
               "ranges only push the start of the last instance out.\n";
  return 0;
}
