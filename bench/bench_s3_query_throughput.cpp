// S3 — query-service throughput over one shared immutable snapshot (PR 4).
//
// The first scenario where throughput, not single-run latency, is the
// measured quantity: a mixed batch of independent queries (shortcut
// quality, shortcut build, MST, mincut) runs against one GraphSnapshot at
// 1/2/4/8 threads.  Recorded per leg: batch wall time, queries/sec, and
// p50/p99 per-query latency.  Three inline determinism cross-checks guard
// the curve's meaning — per-query digests must be bit-identical (a) across
// thread counts, (b) across batch submission orders, and (c) against
// running every query alone through ShortcutService::run().
#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench/registry.hpp"
#include "bench/timer.hpp"
#include "graph/generators.hpp"
#include "service/service.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

/// The mixed workload: round-robin over the four kinds, with per-query
/// parameter jitter derived from the id so queries are not clones.
std::vector<lcs::service::QueryRequest> mixed_batch(std::uint32_t count) {
  using lcs::service::QueryKind;
  using lcs::service::QueryRequest;
  std::vector<QueryRequest> batch;
  batch.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    QueryRequest q;
    q.id = 1000 + i;
    switch (i % 4) {
      case 0: q.kind = QueryKind::kShortcutQuality; break;
      case 1: q.kind = QueryKind::kShortcutBuild; break;
      case 2: q.kind = QueryKind::kMst; break;
      default: q.kind = QueryKind::kMincut; break;
    }
    q.beta = (i % 3 == 0) ? 0.5 : 1.0;
    q.karger_trials = (i % 8 == 3) ? 12 : 0;  // alternate Karger / sparsified
    q.eps = 0.5;
    batch.push_back(q);
  }
  return batch;
}

std::vector<std::uint64_t> digests(const std::vector<lcs::service::QueryResult>& rs) {
  std::vector<std::uint64_t> d;
  d.reserve(rs.size());
  for (const auto& r : rs) d.push_back(r.digest());
  return d;
}

}  // namespace

LCS_BENCH_SCENARIO(S3_query_throughput,
                   "concurrent query-service throughput with bit-identical batches",
                   "threads in {1,2,4,8} x mixed {quality, build, mst, mincut} batch") {
  using namespace lcs;

  const std::uint32_t n = ctx.pick_n(300, 2000);
  const std::uint64_t seed = ctx.seed(57);
  const std::uint32_t batch_size = ctx.smoke() ? 16 : 64;
  ctx.param("batch_size", std::uint64_t{batch_size});

  Rng gen(seed);
  graph::Graph g = graph::connected_gnm(n, 3 * n, gen);
  service::GraphSnapshot::Options sopt;
  sopt.weight_seed = seed ^ 0x77ULL;
  sopt.max_weight = 12;
  const auto snapshot = service::GraphSnapshot::build(std::move(g), sopt);
  const service::ShortcutService svc(snapshot, seed);
  const std::vector<service::QueryRequest> batch = mixed_batch(batch_size);

  const std::vector<unsigned> thread_counts = {1, 2, 4, 8};
  {
    Json arr = Json::array();
    for (const unsigned t : thread_counts) arr.push_back(std::uint64_t{t});
    ctx.param("threads", std::move(arr));
  }
  ctx.param("hardware_threads",
            std::uint64_t{std::max(1u, std::thread::hardware_concurrency())});

  ThreadOverrideGuard guard;
  Table t({"threads", "batch_ms", "qps", "p50_ms", "p99_ms", "ok", "identical"});

  std::vector<std::uint64_t> reference;  // 1-thread digests, determinism baseline
  std::vector<double> batch_ms;
  bool all_identical = true;
  bool all_ok = true;

  for (const unsigned threads : thread_counts) {
    set_num_threads(threads);

    bench::MonotonicTimer timer;
    const std::vector<service::QueryResult> results = svc.run_batch(batch);
    batch_ms.push_back(timer.elapsed_ms());

    Stats lat;
    bool ok = true;
    for (const auto& r : results) {
      lat.add(r.latency_ms);
      ok = ok && r.ok;
    }
    all_ok = all_ok && ok;
    const double qps = batch_ms.back() > 1e-6
                           ? 1000.0 * static_cast<double>(batch_size) / batch_ms.back()
                           : 0.0;

    bool identical = true;
    if (threads == thread_counts.front()) {
      reference = digests(results);
    } else {
      identical = digests(results) == reference;
      all_identical = all_identical && identical;
    }

    t.row()
        .cell(std::uint64_t{threads})
        .cell(batch_ms.back(), 1)
        .cell(qps, 1)
        .cell(lat.percentile(50.0), 2)
        .cell(lat.percentile(99.0), 2)
        .cell(ok ? std::uint64_t{1} : std::uint64_t{0})
        .cell(identical ? std::uint64_t{1} : std::uint64_t{0});

    const std::string suffix = "_t" + std::to_string(threads);
    ctx.metric("wall_ms_batch" + suffix, batch_ms.back());
    ctx.metric("qps" + suffix, qps);
    ctx.metric("latency_p50_ms" + suffix, lat.percentile(50.0));
    ctx.metric("latency_p99_ms" + suffix, lat.percentile(99.0));
  }

  // Cross-check (b): a permuted submission order must produce the same
  // per-id results — the service keys every query's randomness by id alone.
  std::vector<std::size_t> perm(batch.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  Rng shuffle_rng(seed ^ 0x0badULL);
  shuffle_rng.shuffle(perm);
  std::vector<service::QueryRequest> shuffled;
  shuffled.reserve(batch.size());
  for (const std::size_t i : perm) shuffled.push_back(batch[i]);
  const std::vector<service::QueryResult> shuffled_results = svc.run_batch(shuffled);
  bool order_identical = true;
  for (std::size_t i = 0; i < perm.size(); ++i)
    order_identical = order_identical && shuffled_results[i].digest() == reference[perm[i]];

  // Cross-check (c): one query at a time through run() — the sequential
  // single-query execution the batch must match byte for byte.
  set_num_threads(thread_counts.front());
  bool sequential_identical = true;
  for (std::size_t i = 0; i < batch.size(); ++i)
    sequential_identical = sequential_identical && svc.run(batch[i]).digest() == reference[i];

  t.print(ctx.out(), "S3: query-service thread scaling (shared snapshot)");
  ctx.out() << "\nnote: qps is meaningful only up to the machine's core count; the\n"
            << "identical column is the per-query digest cross-check vs 1 thread.\n";

  const auto speedup = [](double base, double now) { return now > 1e-6 ? base / now : 0.0; };
  for (std::size_t i = 1; i < thread_counts.size(); ++i) {
    const std::string suffix = "_t" + std::to_string(thread_counts[i]);
    ctx.metric("speedup_batch" + suffix, speedup(batch_ms.front(), batch_ms[i]));
  }
  ctx.metric("all_queries_ok", all_ok);
  ctx.metric("deterministic_across_threads", all_identical);
  ctx.metric("deterministic_across_orders", order_identical);
  ctx.metric("deterministic_vs_sequential", sequential_identical);
}
