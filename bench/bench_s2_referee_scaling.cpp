// S2 — thread scaling of the referee & application layer (PR 3).
//
// Four referee paths are timed at 1/2/4/8 threads: Stoer–Wagner (parallel
// adjacency build; the sweep itself is sequential by measurement — a
// reference curve expected to stay ~1x), Karger contraction trials on
// counter-split RNG streams, shortcut-driven Boruvka (parallel MWOE scan +
// multi-BFS/multi-tree setup + simulator parallel delivery) and the
// all-pairs-BFS exact diameter.  As in S1, every leg cross-checks its
// result against the 1-thread reference inline: the speedup curve is only
// meaningful because the outputs are bit-identical at every thread count.
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench/registry.hpp"
#include "bench/timer.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "mincut/mincut.hpp"
#include "mst/mst.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

LCS_BENCH_SCENARIO(S2_referee_scaling,
                   "mincut/MST/exact-diameter referee speedup with bit-identical outputs",
                   "threads in {1,2,4,8} x {stoer_wagner, karger, boruvka, diameter}") {
  using namespace lcs;

  const std::uint32_t n = ctx.pick_n(240, 800);
  const std::uint64_t seed = ctx.seed(43);
  const std::uint32_t karger_trials = 48;
  ctx.param("karger_trials", std::uint64_t{karger_trials});

  Rng gen(seed);
  // Stoer–Wagner is O(n^3): its instance stays at n/2.  The diameter leg
  // runs all-pairs BFS, so it gets the largest graph (4n vertices).
  const std::uint32_t sw_n = n / 2;
  ctx.param("stoer_wagner_n", std::uint64_t{sw_n});
  const graph::Graph sw_g = graph::connected_gnm(sw_n, 3 * sw_n, gen);
  const graph::EdgeWeights sw_w = graph::random_weights(sw_g, 10, gen);
  const graph::Graph app_g = graph::connected_gnm(n, 3 * n, gen);
  const graph::EdgeWeights app_w = graph::random_weights(app_g, 12, gen);
  const std::uint32_t diam_n = 4 * n;
  ctx.param("diameter_n", std::uint64_t{diam_n});
  const graph::Graph diam_g = graph::connected_gnm(diam_n, 3 * diam_n, gen);

  const std::vector<unsigned> thread_counts = {1, 2, 4, 8};
  {
    Json arr = Json::array();
    for (const unsigned t : thread_counts) arr.push_back(std::uint64_t{t});
    ctx.param("threads", std::move(arr));
  }
  ctx.param("hardware_threads",
            std::uint64_t{std::max(1u, std::thread::hardware_concurrency())});

  ThreadOverrideGuard guard;
  Table t({"threads", "sw_ms", "karger_ms", "boruvka_ms", "diameter_ms", "identical"});

  mincut::CutResult ref_sw, ref_karger;  // 1-thread outputs, determinism baseline
  mst::BoruvkaResult ref_boruvka;
  std::uint32_t ref_diameter = 0;
  std::vector<double> sw_ms, karger_ms, boruvka_ms, diameter_ms;
  bool all_identical = true;

  for (const unsigned threads : thread_counts) {
    set_num_threads(threads);

    bench::MonotonicTimer timer;
    const mincut::CutResult sw = mincut::stoer_wagner(sw_g, sw_w);
    sw_ms.push_back(timer.elapsed_ms());

    timer.reset();
    Rng krng(seed ^ 0x5eedULL);
    const mincut::CutResult karger = mincut::karger_mincut(app_g, app_w, karger_trials, krng);
    karger_ms.push_back(timer.elapsed_ms());

    timer.reset();
    mst::BoruvkaOptions bopt;
    bopt.seed = seed;
    const mst::BoruvkaResult boruvka = mst::boruvka_mst(app_g, app_w, bopt);
    boruvka_ms.push_back(timer.elapsed_ms());

    timer.reset();
    const std::uint32_t diameter = graph::diameter_exact(diam_g);
    diameter_ms.push_back(timer.elapsed_ms());

    bool identical = true;
    if (threads == thread_counts.front()) {
      ref_sw = sw;
      ref_karger = karger;
      ref_boruvka = boruvka;
      ref_diameter = diameter;
    } else {
      identical = sw.value == ref_sw.value && sw.side == ref_sw.side &&
                  karger.value == ref_karger.value && karger.side == ref_karger.side &&
                  boruvka.mst.edges == ref_boruvka.mst.edges &&
                  boruvka.mst.weight == ref_boruvka.mst.weight &&
                  boruvka.aggregation_rounds == ref_boruvka.aggregation_rounds &&
                  boruvka.messages == ref_boruvka.messages && diameter == ref_diameter;
      all_identical = all_identical && identical;
    }

    t.row()
        .cell(std::uint64_t{threads})
        .cell(sw_ms.back(), 1)
        .cell(karger_ms.back(), 1)
        .cell(boruvka_ms.back(), 1)
        .cell(diameter_ms.back(), 1)
        .cell(identical ? std::uint64_t{1} : std::uint64_t{0});

    ctx.metric("wall_ms_stoer_wagner_t" + std::to_string(threads), sw_ms.back());
    ctx.metric("wall_ms_karger_t" + std::to_string(threads), karger_ms.back());
    ctx.metric("wall_ms_boruvka_t" + std::to_string(threads), boruvka_ms.back());
    ctx.metric("wall_ms_diameter_t" + std::to_string(threads), diameter_ms.back());
  }

  t.print(ctx.out(), "S2: referee & application thread scaling");
  ctx.out() << "\nnote: speedups are meaningful only up to the machine's core count;\n"
            << "the identical column is the determinism cross-check vs 1 thread.\n";

  const auto speedup = [](double base, double now) { return now > 1e-6 ? base / now : 0.0; };
  for (std::size_t i = 1; i < thread_counts.size(); ++i) {
    const std::string suffix = "_t" + std::to_string(thread_counts[i]);
    ctx.metric("speedup_stoer_wagner" + suffix, speedup(sw_ms.front(), sw_ms[i]));
    ctx.metric("speedup_karger" + suffix, speedup(karger_ms.front(), karger_ms[i]));
    ctx.metric("speedup_boruvka" + suffix, speedup(boruvka_ms.front(), boruvka_ms[i]));
    ctx.metric("speedup_diameter" + suffix, speedup(diameter_ms.front(), diameter_ms[i]));
  }
  ctx.metric("deterministic_across_threads", all_identical);
}
