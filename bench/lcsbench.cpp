// lcsbench — the unified scenario harness.
//
// Every experiment of the evaluation suite (E1..E14, ablations A1..A3, and the
// micro primitives) is a registered scenario; this binary lists them, runs
// any subset, sweeps parameters from the CLI, and emits machine-stamped
// JSON perf records.
//
//   lcsbench --list
//   lcsbench e2_congestion e3_dilation
//   lcsbench e2_congestion --json out.json
//   lcsbench --all --smoke --out-dir records/
//   lcsbench a1_repetitions --n 512,1024 --beta 0.5 --seed 99 --reps 3 --warmup 1
#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "bench/registry.hpp"
#include "bench/runner.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"

namespace {

using lcs::Json;
using lcs::bench::Registry;
using lcs::bench::RunConfig;
using lcs::bench::Scenario;
using lcs::bench::ScenarioResult;

void print_usage(std::ostream& os) {
  os << "usage: lcsbench [scenario...] [options]\n"
        "\n"
        "options:\n"
        "  --list           list registered scenarios and exit\n"
        "  --all            run every registered scenario\n"
        "  --smoke          small instances, 1 trial (CI smoke profile)\n"
        "  --reps N         timed repetitions of each scenario (default 1)\n"
        "  --warmup N       untimed leading repetitions (default 0)\n"
        "  --n A,B,...      override the instance-size sweep\n"
        "  --beta X         override the sampling-probability scale beta\n"
        "  --seed S         override the base RNG seed\n"
        "  --threads N      thread-pool size for parallel scenarios (default:\n"
        "                   LCS_THREADS env var, else hardware threads)\n"
        "  --json PATH      write JSON record(s) to PATH (object for one\n"
        "                   scenario, array for several)\n"
        "  --out-dir DIR    write one BENCH_<scenario>.json per scenario\n"
        "  --quiet          suppress scenario table output\n"
        "  --help           this text\n";
}

void print_list(std::ostream& os) {
  const auto scenarios = Registry::instance().scenarios();
  std::size_t width = 0;
  for (const Scenario& s : scenarios) width = std::max(width, s.name.size());
  os << scenarios.size() << " registered scenarios:\n\n";
  for (const Scenario& s : scenarios) {
    os << "  " << s.name << std::string(width - s.name.size() + 2, ' ') << s.description
       << "\n"
       << std::string(width + 4, ' ') << "grid: " << s.grid << "\n";
  }
}

// Strict numeric parsing: the whole token must be consumed, so a typo'd
// sweep spec is a usage error rather than a silent run over the wrong grid.
std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size() || s[0] == '-') return std::nullopt;
  return std::uint64_t{v};
}

std::optional<double> parse_double(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return std::nullopt;
  return v;
}

std::optional<std::vector<std::uint32_t>> parse_n_list(const std::string& arg) {
  std::vector<std::uint32_t> out;
  std::string cur;
  for (const char c : arg + ",") {
    if (c == ',') {
      if (cur.empty()) continue;
      const auto v = parse_u64(cur);
      if (!v || *v == 0 || *v > std::numeric_limits<std::uint32_t>::max()) {
        return std::nullopt;
      }
      out.push_back(static_cast<std::uint32_t>(*v));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (out.empty()) return std::nullopt;
  return out;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "lcsbench: cannot write " << path << "\n";
    return false;
  }
  out << contents;
  out.close();  // flush before checking, so a full disk is not reported as success
  if (!out.good()) {
    std::cerr << "lcsbench: failed writing " << path << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  RunConfig config;
  std::vector<std::string> names;
  bool all = false;
  std::string json_path;
  std::string out_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "lcsbench: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--list") {
      print_list(std::cout);
      return 0;
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--smoke") {
      config.smoke = true;
    } else if (arg == "--quiet") {
      config.quiet = true;
    } else if (arg == "--reps" || arg == "--warmup") {
      const auto v = parse_u64(next());
      if (!v || *v > 1'000'000) {
        std::cerr << "lcsbench: " << arg << " expects a non-negative count\n";
        return 2;
      }
      (arg == "--reps" ? config.repetitions : config.warmup) = static_cast<unsigned>(*v);
    } else if (arg == "--n") {
      const auto ns = parse_n_list(next());
      if (!ns) {
        std::cerr << "lcsbench: --n expects a comma-separated list of positive sizes\n";
        return 2;
      }
      config.n_override = *ns;
    } else if (arg == "--beta") {
      const auto v = parse_double(next());
      if (!v || !std::isfinite(*v) || *v <= 0) {
        std::cerr << "lcsbench: --beta expects a positive finite number\n";
        return 2;
      }
      config.beta_override = *v;
    } else if (arg == "--seed") {
      const auto v = parse_u64(next());
      if (!v) {
        std::cerr << "lcsbench: --seed expects a non-negative integer\n";
        return 2;
      }
      config.seed_override = *v;
    } else if (arg == "--threads") {
      const auto v = parse_u64(next());
      if (!v || *v == 0 || *v > 1024) {
        std::cerr << "lcsbench: --threads expects a count in [1, 1024]\n";
        return 2;
      }
      config.threads = static_cast<unsigned>(*v);
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--out-dir") {
      out_dir = next();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "lcsbench: unknown option " << arg << "\n";
      print_usage(std::cerr);
      return 2;
    } else {
      names.push_back(arg);
    }
  }

  if (config.threads) lcs::set_num_threads(*config.threads);

  std::vector<Scenario> selected;
  if (all && !names.empty()) {
    std::cerr << "lcsbench: pass either --all or scenario names, not both\n";
    return 2;
  }
  if (all) {
    selected = Registry::instance().scenarios();
  } else {
    for (const std::string& name : names) {
      const Scenario* s = Registry::instance().find(name);
      if (s == nullptr) {
        std::cerr << "lcsbench: unknown scenario '" << name << "' (see --list)\n";
        return 2;
      }
      selected.push_back(*s);
    }
  }
  if (selected.empty()) {
    std::cerr << "lcsbench: nothing to run (name scenarios or pass --all)\n";
    print_usage(std::cerr);
    return 2;
  }

  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
      std::cerr << "lcsbench: cannot create --out-dir " << out_dir << ": " << ec.message()
                << "\n";
      return 1;
    }
  }

  std::vector<Json> records;
  bool any_failed = false;
  for (const Scenario& s : selected) {
    if (!config.quiet) {
      std::cout << "\n### " << s.name << " — " << s.description << "\n"
                << "    (paper: Kogan & Parter, PODC 2021; sizes are test-scale,\n"
                << "     shapes — ratios and exponents — are the reproduced claim)\n\n";
    }
    const ScenarioResult result = lcs::bench::run_scenario(s, config, std::cout);
    const Json record = lcs::bench::result_to_json(s, result, config);
    // Scenarios own their parameter grids; flag any CLI override the body
    // never resolved so a sweep is not silently a no-op for this scenario.
    if (result.ok) {
      if (config.beta_override && !result.resolved_beta) {
        std::cerr << "lcsbench: note: " << s.name << " ignores --beta (fixed grid)\n";
      }
      if (config.seed_override && !result.resolved_seed) {
        std::cerr << "lcsbench: note: " << s.name << " ignores --seed\n";
      }
      if (config.n_override && !result.resolved_n) {
        std::cerr << "lcsbench: note: " << s.name << " ignores --n\n";
      }
    }
    if (!result.ok) {
      any_failed = true;
      std::cerr << "lcsbench: scenario " << s.name << " FAILED: " << result.error << "\n";
    } else if (!config.quiet) {
      double wall = 0;
      for (const auto& t : result.timings) wall += t.wall_ms;
      std::cout << "[" << s.name << ": " << result.timings.size() << " rep(s), "
                << static_cast<std::int64_t>(wall) << " ms wall]\n";
    }
    if (!out_dir.empty()) {
      const std::string path = out_dir + "/BENCH_" + s.name + ".json";
      if (!write_file(path, record.dump(2))) return 1;
    }
    records.push_back(record);
  }

  if (!json_path.empty()) {
    // One scenario -> its record object directly; several -> an array.
    std::string payload;
    if (records.size() == 1) {
      payload = records.front().dump(2);
    } else {
      Json arr = Json::array();
      for (Json& r : records) arr.push_back(std::move(r));
      payload = arr.dump(2);
    }
    if (!write_file(json_path, payload)) return 1;
  }

  return any_failed ? 1 : 0;
}
