// EA2 — ablation of the sampling probability p = beta·k_D·ln n / N.
// Sweeps beta and reports the congestion/dilation tradeoff curve; beta >= 1
// is the paper's w.h.p. regime, lower beta trades coverage for congestion.
#include <iostream>

#include "bench_util.hpp"
#include "core/kp.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lcs;
  bench::banner("EA2", "ablation: sampling probability sweep (beta)");

  Table t({"n", "beta", "p", "congestion", "dilation", "radius", "covered",
           "quality"});
  const std::uint32_t n = bench::quick_mode() ? 1024 : 4096;
  const unsigned d = 4;
  const graph::HardInstance hi = graph::hard_instance(n, d);
  for (const double beta : {0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0}) {
    core::KpOptions opt;
    opt.diameter = d;
    opt.seed = 53;
    opt.beta = beta;
    const auto rep = core::measure_kp_quality(hi.g, hi.paths, opt);
    t.row()
        .cell(hi.g.num_vertices())
        .cell(beta, 2)
        .cell(rep.params.sample_prob, 4)
        .cell(std::uint64_t{rep.quality.congestion})
        .cell(std::uint64_t{rep.quality.dilation_ub})
        .cell(std::uint64_t{rep.quality.max_cover_radius})
        .cell(rep.quality.all_covered ? "yes" : "NO")
        .cell(static_cast<std::uint64_t>(rep.quality.quality()));
  }
  t.print(std::cout, "EA2: beta sweep on the hard instance (D=4)");
  std::cout << "\nexpected: congestion ~ beta, dilation falls as beta grows and\n"
               "saturates at the graph diameter once every edge is sampled;\n"
               "the knee is the quality optimum the theory predicts at beta~1.\n";
  return 0;
}
