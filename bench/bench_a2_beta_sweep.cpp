// EA2 — ablation of the sampling probability p = beta·k_D·ln n / N.
// Sweeps beta and reports the congestion/dilation tradeoff curve; beta >= 1
// is the paper's w.h.p. regime, lower beta trades coverage for congestion.
#include "bench/registry.hpp"
#include "core/kp.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

LCS_BENCH_SCENARIO(a2_beta_sweep, "ablation: sampling probability sweep (beta)",
                   "beta in {0.02..2}, n = 4096 (smoke: 1024), D=4") {
  using namespace lcs;

  Table t({"n", "beta", "p", "congestion", "dilation", "radius", "covered",
           "quality"});
  const std::uint32_t n = ctx.pick_n(1024, 4096);
  const std::uint64_t seed = ctx.seed(53);
  const unsigned d = 4;
  const graph::HardInstance hi = graph::hard_instance(n, d);
  double best_quality = -1;
  double best_beta = 0;
  for (const double beta : {0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0}) {
    core::KpOptions opt;
    opt.diameter = d;
    opt.seed = seed;
    opt.beta = beta;
    const auto rep = core::measure_kp_quality(hi.g, hi.paths, opt);
    const double quality = static_cast<double>(rep.quality.quality());
    if (best_quality < 0 || quality < best_quality) {
      best_quality = quality;
      best_beta = beta;
    }
    t.row()
        .cell(hi.g.num_vertices())
        .cell(beta, 2)
        .cell(rep.params.sample_prob, 4)
        .cell(std::uint64_t{rep.quality.congestion})
        .cell(std::uint64_t{rep.quality.dilation_ub})
        .cell(std::uint64_t{rep.quality.max_cover_radius})
        .cell(rep.quality.all_covered ? "yes" : "NO")
        .cell(static_cast<std::uint64_t>(quality));
  }
  t.print(ctx.out(), "EA2: beta sweep on the hard instance (D=4)");
  ctx.out() << "\nexpected: congestion ~ beta, dilation falls as beta grows and\n"
               "saturates at the graph diameter once every edge is sampled;\n"
               "the knee is the quality optimum the theory predicts at beta~1.\n";
  ctx.metric("best_quality", best_quality);
  ctx.metric("best_beta", best_beta);
}
