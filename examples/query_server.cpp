// Query server: many independent shortcut/MST/mincut queries against one
// shared immutable graph — the multi-tenant workload of the ROADMAP's
// north star, in one process.
//
// Three ShortcutService frontends share a single GraphSnapshot (zero
// copies; the snapshot is a shared_ptr<const ...>).  A mixed batch runs
// through two tenants concurrently on the deterministic pool, and because
// every query's randomness is a counter-based stream keyed by its id, the
// services return byte-identical answers — which this program checks,
// alongside throughput and per-kind latency percentiles.  A third
// "hot-cache" tenant then replays the workload against the snapshot's
// now-materialized artifact cache (PR 5): byte-identical answers again,
// with a ~100% artifact hit rate (partitions and sparsified samples are
// shared bytes instead of per-query re-derivations).
//
//   $ ./query_server
#include <iostream>
#include <map>
#include <vector>

#include "bench/timer.hpp"
#include "graph/generators.hpp"
#include "service/service.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace lcs;
  using service::QueryKind;
  using service::QueryRequest;
  using service::QueryResult;

  // 1. Freeze one graph into a snapshot: CSR views, weights, connectivity
  //    and diameter bounds are computed once, then shared by every query.
  Rng gen(2021);
  graph::Graph g = graph::connected_gnm(600, 1800, gen);
  service::GraphSnapshot::Options sopt;
  sopt.weight_seed = 99;
  sopt.max_weight = 10;
  const auto snapshot = service::GraphSnapshot::make(std::move(g), sopt);
  std::cout << "snapshot: n=" << snapshot->num_vertices() << " m=" << snapshot->num_edges()
            << " diameter=" << snapshot->diameter_ub()
            << (snapshot->diameter_is_exact() ? " (exact)" : " (bracket)")
            << " fingerprint=" << std::hex << snapshot->fingerprint() << std::dec << "\n\n";

  // 2. Two tenants, one graph.  Same seed => interchangeable answers.
  const service::ShortcutService tenant_a(snapshot, 7);
  const service::ShortcutService tenant_b(snapshot, 7);

  // 3. A mixed workload: 32 queries round-robin over the four kinds.
  std::vector<QueryRequest> batch;
  for (std::uint32_t i = 0; i < 32; ++i) {
    QueryRequest q;
    q.id = i;
    q.kind = static_cast<QueryKind>(i % 4);
    q.beta = (i % 5 == 0) ? 0.5 : 1.0;
    q.karger_trials = (i % 8 == 3) ? 12 : 0;
    batch.push_back(q);
  }

  bench::MonotonicTimer timer;
  const std::vector<QueryResult> answers_a = tenant_a.run_batch(batch);
  const double wall_a = timer.elapsed_ms();
  timer.reset();
  const std::vector<QueryResult> answers_b = tenant_b.run_batch(batch);
  const double wall_b = timer.elapsed_ms();

  // 4. Per-kind summary of tenant A's batch.
  std::map<QueryKind, Stats> latency;
  std::map<QueryKind, std::uint64_t> ok_count;
  for (const QueryResult& r : answers_a) {
    latency[r.kind].add(r.latency_ms);
    ok_count[r.kind] += r.ok ? 1 : 0;
  }
  Table t({"kind", "queries", "ok", "p50 ms", "p99 ms"});
  for (const auto& [kind, stats] : latency) {
    t.row()
        .cell(service::query_kind_name(kind))
        .cell(static_cast<std::uint64_t>(stats.count()))
        .cell(ok_count[kind])
        .cell(stats.percentile(50.0), 2)
        .cell(stats.percentile(99.0), 2);
  }
  t.print(std::cout, "mixed workload (tenant A)");

  const double qps = 1000.0 * static_cast<double>(batch.size()) / (wall_a > 1e-6 ? wall_a : 1);
  std::cout << "\nbatch: " << batch.size() << " queries in " << wall_a << " ms  (~" << qps
            << " queries/sec); tenant B took " << wall_b << " ms\n";

  // 5. The multi-tenant guarantee: byte-identical answers from both
  //    services, because results are pure functions of (snapshot, seed, id).
  bool identical = true;
  for (std::size_t i = 0; i < answers_a.size(); ++i)
    identical = identical && answers_a[i].digest() == answers_b[i].digest();
  std::cout << "tenants agree on every query: " << (identical ? "yes" : "NO") << "\n";

  // 6. The hot-cache tenant: same seed, same snapshot, joining after A and
  //    B already materialized the shared artifacts (partitions, sparsified
  //    samples).  Its queries hit the cache instead of re-deriving — same
  //    digests, mostly-hit telemetry.
  const service::ShortcutService tenant_hot(snapshot, 7);
  const service::ArtifactStats before = snapshot->artifact_stats();
  timer.reset();
  const std::vector<QueryResult> answers_hot = tenant_hot.run_batch(batch);
  const double wall_hot = timer.elapsed_ms();
  const service::ArtifactStats after = snapshot->artifact_stats();
  const std::uint64_t lookups = after.total().lookups() - before.total().lookups();
  const std::uint64_t hits = after.total().hits - before.total().hits;
  bool hot_identical = true;
  for (std::size_t i = 0; i < answers_a.size(); ++i)
    hot_identical = hot_identical && answers_hot[i].digest() == answers_a[i].digest();
  std::cout << "\nhot-cache tenant: " << batch.size() << " queries in " << wall_hot
            << " ms (cold tenant A took " << wall_a << " ms); artifact cache " << hits << "/"
            << lookups << " hits\n";
  std::cout << "hot-cache tenant agrees on every query: " << (hot_identical ? "yes" : "NO")
            << "\n";
  return identical && hot_identical ? 0 : 1;
}
