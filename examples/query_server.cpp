// Query server: many independent shortcut/MST/mincut queries against one
// shared immutable graph — the multi-tenant workload of the ROADMAP's
// north star, in one process.
//
// PR 6 shape: an ingest step freezes the graph into a snapshot, replays
// the workload once to materialize the shared artifacts (partitions,
// sparsified samples), and saves the result into a fingerprint-addressed
// SnapshotStore.  Every tenant then opens the store *by fingerprint* —
// the store hands all of them the same mmap-backed handle, so the CSR
// arrays are shared bytes and the saved artifacts arrive pre-warmed from
// the file.  Because every query's randomness is a counter-based stream
// keyed by its id, tenants return byte-identical answers — identical,
// too, to the ingest process's answers from before the save/load round
// trip.  The program checks both, alongside throughput, per-kind latency
// percentiles, and the artifact hit rate of a replaying tenant.
//
//   $ ./query_server
#include <filesystem>
#include <iostream>
#include <map>
#include <vector>

#include "bench/timer.hpp"
#include "graph/generators.hpp"
#include "service/service.hpp"
#include "service/snapshot_store.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace lcs;
  using service::QueryKind;
  using service::QueryRequest;
  using service::QueryResult;

  // The mixed workload: 32 queries round-robin over the four kinds.
  std::vector<QueryRequest> batch;
  for (std::uint32_t i = 0; i < 32; ++i) {
    QueryRequest q;
    q.id = i;
    q.kind = static_cast<QueryKind>(i % 4);
    q.beta = (i % 5 == 0) ? 0.5 : 1.0;
    q.karger_trials = (i % 8 == 3) ? 12 : 0;
    batch.push_back(q);
  }

  // 1. Ingest: freeze one graph into a snapshot — CSR views, weights,
  //    connectivity and diameter bounds are computed once — replay the
  //    workload to materialize the shared artifacts, and save the lot
  //    into a fingerprint-addressed store.
  const std::filesystem::path store_dir =
      std::filesystem::temp_directory_path() / "lcs-query-server-store";
  service::SnapshotStore store(store_dir);
  std::uint64_t fingerprint = 0;
  std::vector<QueryResult> answers_ingest;
  {
    Rng gen(2021);
    graph::Graph g = graph::connected_gnm(600, 1800, gen);
    service::GraphSnapshot::Options sopt;
    sopt.weight_seed = 99;
    sopt.max_weight = 10;
    const auto built = service::GraphSnapshot::build(std::move(g), sopt);
    fingerprint = built->fingerprint();
    answers_ingest = service::ShortcutService(built, 7).run_batch(batch);
    const std::filesystem::path file = store.save(*built);
    std::cout << "ingested: n=" << built->num_vertices() << " m=" << built->num_edges()
              << " diameter=" << built->diameter_ub()
              << (built->diameter_is_exact() ? " (exact)" : " (bracket)") << "\n"
              << "saved:    " << file.string() << " ("
              << std::filesystem::file_size(file) << " bytes)\n\n";
  }  // the built snapshot is gone; only the file remains.

  // 2. Tenants open the store by fingerprint.  The store caches handles,
  //    so every tenant serves from the same mmap-backed snapshot: shared
  //    CSR bytes, shared artifact cache, zero per-tenant copies.
  const auto snapshot = store.open(fingerprint);
  const service::ShortcutService tenant_a(snapshot, 7);
  const service::ShortcutService tenant_b(store.open(fingerprint), 7);
  std::cout << "tenants share one mmap handle: "
            << (store.open(fingerprint).get() == snapshot.get() ? "yes" : "NO") << "\n\n";

  bench::MonotonicTimer timer;
  const std::vector<QueryResult> answers_a = tenant_a.run_batch(batch);
  const double wall_a = timer.elapsed_ms();
  timer.reset();
  const std::vector<QueryResult> answers_b = tenant_b.run_batch(batch);
  const double wall_b = timer.elapsed_ms();

  // 3. Per-kind summary of tenant A's batch.
  std::map<QueryKind, Stats> latency;
  std::map<QueryKind, std::uint64_t> ok_count;
  for (const QueryResult& r : answers_a) {
    latency[r.kind].add(r.latency_ms);
    ok_count[r.kind] += r.ok ? 1 : 0;
  }
  Table t({"kind", "queries", "ok", "p50 ms", "p99 ms"});
  for (const auto& [kind, stats] : latency) {
    t.row()
        .cell(service::query_kind_name(kind))
        .cell(static_cast<std::uint64_t>(stats.count()))
        .cell(ok_count[kind])
        .cell(stats.percentile(50.0), 2)
        .cell(stats.percentile(99.0), 2);
  }
  t.print(std::cout, "mixed workload (tenant A, mmap-loaded snapshot)");

  const double qps = 1000.0 * static_cast<double>(batch.size()) / (wall_a > 1e-6 ? wall_a : 1);
  std::cout << "\nbatch: " << batch.size() << " queries in " << wall_a << " ms  (~" << qps
            << " queries/sec); tenant B took " << wall_b << " ms\n";

  // 4. The multi-tenant guarantee, now across the file boundary: both
  //    tenants agree with each other AND with the ingest process's
  //    answers from before the save/load round trip — results are pure
  //    functions of (snapshot, seed, id), and the snapshot survives
  //    serialization bit-for-bit.
  bool identical = true;
  for (std::size_t i = 0; i < answers_a.size(); ++i)
    identical = identical && answers_a[i].digest() == answers_b[i].digest() &&
                answers_a[i].digest() == answers_ingest[i].digest();
  std::cout << "tenants agree with each other and with ingest: "
            << (identical ? "yes" : "NO") << "\n";

  // 5. A replaying tenant: its partitions and sparsified samples were
  //    saved at ingest time, so they arrive pre-warmed from the file —
  //    same digests, near-total artifact hit rate, no re-derivation.
  const service::ShortcutService tenant_hot(snapshot, 7);
  const service::ArtifactStats before = snapshot->artifact_stats();
  timer.reset();
  const std::vector<QueryResult> answers_hot = tenant_hot.run_batch(batch);
  const double wall_hot = timer.elapsed_ms();
  const service::ArtifactStats after = snapshot->artifact_stats();
  const std::uint64_t lookups = after.total().lookups() - before.total().lookups();
  const std::uint64_t hits = after.total().hits - before.total().hits;
  bool hot_identical = true;
  for (std::size_t i = 0; i < answers_a.size(); ++i)
    hot_identical = hot_identical && answers_hot[i].digest() == answers_a[i].digest();
  std::cout << "\nreplaying tenant: " << batch.size() << " queries in " << wall_hot
            << " ms (tenant A took " << wall_a << " ms); artifact cache " << hits << "/"
            << lookups << " hits (artifacts pre-warmed from the snapshot file)\n";
  std::cout << "replaying tenant agrees on every query: " << (hot_identical ? "yes" : "NO")
            << "\n";
  std::filesystem::remove_all(store_dir);
  return identical && hot_identical ? 0 : 1;
}
