// Shortcut-tree explorer: an ASCII rendering of the paper's Figure 1/2 on a
// small instance — the layered auxiliary graph G_{P,Q,l}, the surviving
// sampled tree T[p], and a maximal (i,k) walk with its level-k nodes.
//
//   $ ./shortcut_explorer
#include <iomanip>
#include <iostream>

#include "core/shortcut_tree.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/math.hpp"

int main() {
  using namespace lcs;

  const graph::HardInstance hi = graph::hard_instance(220, 4);
  const ShortcutParams params = ShortcutParams::make(hi.g.num_vertices(), 4);

  // P = first 9 vertices of path 0; Q = leader of path 1; l = D.
  std::vector<graph::VertexId> path(hi.paths.parts[0].begin(),
                                    hi.paths.parts[0].begin() + 9);
  const std::vector<graph::VertexId> q{hi.paths.leader(1)};
  const std::uint32_t ell = hi.diameter;

  const core::ShortcutTree st(hi.g, path, q, ell, 7, params.sample_prob, 0);
  std::cout << "auxiliary graph G_{P,Q,l}:  |P|=" << path.size() << "  |Q|=" << q.size()
            << "  l=" << ell << "  layers=" << ell + 2 << "  aux nodes="
            << st.num_aux_nodes() << "\n"
            << "sampling p=" << params.sample_prob << " (the construction's own coins)\n"
            << "tree complete (dist(P,Q) <= l): "
            << (st.tree_complete() ? "yes" : "no") << "\n\n";

  // Layer-by-layer view of the ancestor chains of the path positions —
  // the content of Fig. 1: each position hangs at depth l+1 under r.
  std::cout << "ancestor chains (columns = path positions; '·' = sampled away):\n";
  for (std::uint32_t layer = ell + 2; layer >= 1; --layer) {
    std::cout << "  L" << std::setw(2) << layer << (layer == ell + 2 ? " (r)" : "")
              << (layer == ell + 1 ? " (Q)" : "") << (layer == 1 ? " (P)" : "    ")
              << " | ";
    for (std::uint32_t pos = 0; pos < path.size(); ++pos) {
      // Climb from the position while edges survive.
      graph::VertexId cur = st.path_node(pos);
      bool alive = true;
      while (alive && st.layer_of(cur) < layer) {
        const graph::VertexId par = st.tree_parent(cur);
        if (par == graph::kNoVertex || !st.tree_edge_survives(cur)) {
          alive = false;
        } else {
          cur = par;
        }
      }
      if (st.layer_of(cur) == layer && alive)
        std::cout << std::setw(5) << st.g_vertex_of(cur) + 0;
      else
        std::cout << std::setw(5) << "·";
    }
    std::cout << '\n';
    if (layer == 1) break;
  }

  // A maximal (1, k) walk per level — the content of Fig. 2.
  std::cout << "\nmaximal (1,k) walks (Definition 3.1):\n";
  for (std::uint32_t k = 2; k <= ell + 1; ++k) {
    const auto w = st.maximal_walk(0, k);
    std::cout << "  k=" << k << ": length " << (w.nodes.empty() ? 0 : w.nodes.size() - 1)
              << ", level-k nodes " << w.level_k_nodes.size() << ", end position "
              << w.end_pos << (w.reached_t ? " (= t)" : "") << "\n    walk:";
    for (const graph::VertexId x : w.nodes) {
      std::cout << " L" << st.layer_of(x) << ":"
                << (st.g_vertex_of(x) == graph::kNoVertex
                        ? std::string("r")
                        : std::to_string(st.g_vertex_of(x)));
    }
    std::cout << '\n';
  }

  std::cout << "\ndistances in T* from p_1 to {t} ∪ L_k (Lemma 3.3's quantity):\n";
  for (std::uint32_t k = 2; k <= ell + 1; ++k) {
    const auto d = st.dist_to_level(0, k);
    std::cout << "  k=" << k << ": "
              << (d == graph::kUnreached ? std::string("unreachable")
                                         : std::to_string(d))
              << '\n';
  }
  return 0;
}
