// Scenario: computing an MST over a low-diameter "social" overlay network.
//
// The paper's motivation: real-world networks (social graphs, the web) have
// tiny diameter independent of size.  This example builds a diameter-5
// network, freezes it into a GraphSnapshot (which assigns the link
// weights, e.g. latency), and runs the distributed Boruvka MST where
// every fragment aggregation is accelerated by low-congestion shortcuts —
// comparing the three schemes' round costs.
//
//   $ ./social_network_mst
#include <iostream>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "mst/mst.hpp"
#include "service/snapshot.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace lcs;

  Rng rng(6);
  const std::uint32_t n = 1500;
  // Freeze the overlay once: CSR layout, latency weights, connectivity —
  // the same construction surface the query service and snapshot store
  // use (PR 6), so this graph could be saved and re-served by fingerprint.
  service::GraphSnapshot::Options sopt;
  sopt.weight_seed = 6;
  sopt.max_weight = 100;
  const auto snap = service::GraphSnapshot::build(
      graph::layered_random_graph(n, 5, 1.5, rng), sopt);
  const graph::Graph& g = snap->graph();
  const graph::WeightSpan latency = snap->weights();
  std::cout << "overlay: n=" << g.num_vertices() << " m=" << g.num_edges()
            << " diameter=" << graph::diameter_double_sweep(g) << " fingerprint=" << std::hex
            << snap->fingerprint() << std::dec << "\n\n";

  const mst::MstResult reference = mst::kruskal(g, latency);

  Table t({"scheme", "phases", "aggregation rounds", "construction rounds",
           "total", "weight ok"});
  struct Scheme {
    mst::ShortcutScheme s;
    const char* name;
  };
  for (const Scheme sc : {Scheme{mst::ShortcutScheme::kKoganParter, "Kogan-Parter"},
                          Scheme{mst::ShortcutScheme::kGhaffariHaeupler,
                                 "Ghaffari-Haeupler"},
                          Scheme{mst::ShortcutScheme::kNone, "no shortcuts"}}) {
    mst::BoruvkaOptions opt;
    opt.scheme = sc.s;
    opt.diameter = 5;
    opt.seed = 99;
    const mst::BoruvkaResult res = mst::boruvka_mst(g, latency, opt);
    t.row()
        .cell(sc.name)
        .cell(res.phases)
        .cell(res.aggregation_rounds)
        .cell(res.construction_rounds)
        .cell(res.total_rounds())
        .cell(res.mst.weight == reference.weight ? "yes" : "NO");
  }
  t.print(std::cout, "distributed MST round costs (simulated CONGEST)");

  std::cout << "\nMST weight: " << reference.weight << " over "
            << reference.edges.size() << " edges.\n"
            << "Corollary 1.2: with KP shortcuts the round complexity is\n"
            << "O~(n^((D-2)/(2D-2))) instead of O~(sqrt(n) + D).\n";
  return 0;
}
