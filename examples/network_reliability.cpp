// Scenario: reliability analysis of a low-diameter backbone.
//
// Uses the application layer end-to-end: (1) approximate the minimum cut
// (where would the backbone split first?), cross-checked against the exact
// Stoer–Wagner referee; (2) cheapest 2-edge-connected reinforcement
// (2-ECSS); (3) an approximate shortest-path tree from the control node
// with measured stretch.
//
//   $ ./network_reliability
#include <iostream>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "mincut/mincut.hpp"
#include "service/snapshot.hpp"
#include "sssp/sssp.hpp"
#include "tecss/tecss.hpp"
#include "util/table.hpp"

int main() {
  using namespace lcs;

  // Backbone: ring + cross-links (2-edge-connected, diameter ~6), frozen
  // into a snapshot whose options assign the link capacities — the PR 6
  // construction surface shared with the query service and the store.
  const std::uint32_t n = 240;
  graph::GraphBuilder b(n);
  for (graph::VertexId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  for (graph::VertexId v = 0; v < n; v += 2)
    b.add_edge(v, static_cast<graph::VertexId>((v + n / 5) % n));
  service::GraphSnapshot::Options sopt;
  sopt.weight_seed = 11;
  sopt.max_weight = 40;
  const auto snap = service::GraphSnapshot::build(std::move(b).build(), sopt);
  const graph::Graph& g = snap->graph();
  const graph::WeightSpan capacity = snap->weights();

  std::cout << "backbone: n=" << g.num_vertices() << " m=" << g.num_edges()
            << " 2-edge-connected=" << (tecss::is_two_edge_connected(g) ? "yes" : "no")
            << "\n\n";

  // 1. Minimum cut: tree packing (the distributed-friendly approximation)
  //    vs the exact referee.
  const mincut::CutResult exact = mincut::stoer_wagner(g, capacity);
  const mincut::TreePackingResult packed = mincut::tree_packing_mincut(g, capacity);
  Table cut({"method", "cut value", "side size", "ratio to exact"});
  cut.row()
      .cell("Stoer-Wagner (exact)")
      .cell(static_cast<std::int64_t>(exact.value))
      .cell(static_cast<std::uint64_t>(exact.side.size()))
      .cell(1.0, 3);
  cut.row()
      .cell("tree packing (Cor 1.2 substitute)")
      .cell(static_cast<std::int64_t>(packed.cut.value))
      .cell(static_cast<std::uint64_t>(packed.cut.side.size()))
      .cell(double(packed.cut.value) / double(exact.value), 3);
  cut.print(std::cout, "minimum cut");

  // 2. Cheapest 2-edge-connected reinforcement.
  const tecss::TwoEcssResult reinforced = tecss::two_ecss_approx(g, capacity);
  std::cout << "\n2-ECSS: kept " << reinforced.edges.size() << "/" << g.num_edges()
            << " links, weight " << reinforced.weight << " (>= certified LB "
            << reinforced.lower_bound << ", ratio " << reinforced.ratio
            << ", valid=" << (reinforced.valid ? "yes" : "no") << ")\n";

  // 3. Approximate shortest-path tree from the control node.
  sssp::ApproxTreeOptions opt;
  opt.num_landmarks = 16;
  const sssp::ApproxTreeResult tree = sssp::approx_sssp_tree(g, capacity, 0, opt);
  std::cout << "\napprox SSSP tree from node 0: max stretch " << tree.max_stretch
            << ", avg stretch " << tree.avg_stretch << ", charged rounds "
            << tree.rounds_charged << " (Cor 4.2 plug-in)\n";
  return 0;
}
