// Quickstart: build a constant-diameter graph, pick a collection of
// vertex-disjoint connected parts, compute Kogan–Parter low-congestion
// shortcuts, and inspect their quality against the baselines.
//
// Closes with the service front door: freezing the graph into a
// GraphSnapshot and running the same construction as a query.
//
//   $ ./quickstart
#include <iostream>

#include "core/kp.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "service/service.hpp"
#include "util/table.hpp"

int main() {
  using namespace lcs;

  // 1. A diameter-4 instance: ~2000 vertices arranged as long disjoint
  //    paths glued by a shallow hub tree (the family from the MST lower
  //    bounds the paper matches).
  const graph::HardInstance hi = graph::hard_instance(2000, 4);
  std::cout << "graph: n=" << hi.g.num_vertices() << " m=" << hi.g.num_edges()
            << " diameter=" << graph::diameter_double_sweep(hi.g) << "\n"
            << "parts: " << hi.paths.num_parts() << " paths of length "
            << hi.path_length << "\n\n";

  // 2. The parts are the paths; compute (c, d) shortcuts for them.
  core::KpOptions opt;
  opt.diameter = 4;  // known here; omit to let the library estimate it
  opt.seed = 2021;
  const core::KpBuildResult kp = core::build_kp_shortcuts(hi.g, hi.paths, opt);
  std::cout << "KP params: k_D=" << kp.params.k_d
            << "  sampling p=" << kp.params.sample_prob
            << "  repetitions=" << kp.params.repetitions
            << "  large parts=" << kp.num_large << "\n\n";

  // 3. Verify the Definition 1.1 quality (congestion + dilation) and
  //    compare with the O(D + sqrt n) baseline and with no shortcuts.
  const core::QualityReport q_kp = core::measure_quality(hi.g, hi.paths, kp.shortcuts);
  const core::QualityReport q_gh =
      core::measure_quality(hi.g, hi.paths, core::build_gh_shortcuts(hi.g, hi.paths));
  const core::QualityReport q_none =
      core::measure_quality(hi.g, hi.paths, core::build_trivial_shortcuts(hi.paths));

  Table t({"construction", "congestion c", "dilation d", "quality c+d", "covered"});
  auto add = [&](const char* name, const core::QualityReport& q) {
    t.row()
        .cell(name)
        .cell(std::uint64_t{q.congestion})
        .cell(std::uint64_t{q.dilation_ub})
        .cell(static_cast<std::uint64_t>(q.quality()))
        .cell(q.all_covered ? "yes" : "no");
  };
  add("Kogan-Parter (this paper)", q_kp);
  add("Ghaffari-Haeupler baseline", q_gh);
  add("no shortcuts", q_none);
  t.print(std::cout, "shortcut quality");

  std::cout << "\nThe KP dilation tracks k_D log n = "
            << kp.params.k_d * ln_clamped(hi.g.num_vertices())
            << " while the bare parts have diameter ~sqrt(n) = "
            << hi.path_length - 1 << ".\n";

  // 4. The service front door (PR 6): freeze the graph into an immutable
  //    snapshot and run the same shortcut construction as a query.  The
  //    snapshot is what the store saves and mmap-loads by fingerprint —
  //    see query_server.cpp for the full multi-tenant flow.
  const auto snap = service::GraphSnapshot::build(graph::hard_instance(2000, 4).g);
  service::QueryRequest req;
  req.id = 1;
  req.kind = service::QueryKind::kShortcutBuild;
  const service::QueryResult r = service::ShortcutService(snap, 2021).run(req);
  std::cout << "\nAs a service query: snapshot fingerprint " << std::hex
            << snap->fingerprint() << std::dec << ", shortcut_build ok="
            << (r.ok ? "yes" : "no") << " (" << r.value << " shortcut edges, digest "
            << std::hex << r.digest() << std::dec << ").\n";
  return 0;
}
