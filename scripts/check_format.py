#!/usr/bin/env python3
"""Machine-checkable style invariants for the tree (CI format-check step).

Enforces the hard rules .clang-format encodes — 100-column limit, 2-space
indentation (no tabs), no trailing whitespace, newline at EOF — without
depending on a specific clang-format binary version.  Full clang-format
runs (with the repo's .clang-format) remain the source of truth for layout;
this script is the deterministic gate.
"""

import sys
from pathlib import Path

ROOTS = ["src", "tests", "bench", "examples", "tools"]
EXTENSIONS = {".cpp", ".hpp", ".h", ".cc"}
COLUMN_LIMIT = 100


def check_file(path: Path) -> list[str]:
    problems = []
    text = path.read_text(encoding="utf-8")
    if text and not text.endswith("\n"):
        problems.append(f"{path}: missing newline at end of file")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "\t" in line:
            problems.append(f"{path}:{lineno}: tab character (use 2-space indent)")
        if line != line.rstrip():
            problems.append(f"{path}:{lineno}: trailing whitespace")
        if len(line) > COLUMN_LIMIT:
            problems.append(
                f"{path}:{lineno}: line is {len(line)} columns (limit {COLUMN_LIMIT})"
            )
    return problems


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    problems = []
    checked = 0
    for root in ROOTS:
        for path in sorted((repo / root).rglob("*")):
            if path.suffix in EXTENSIONS and path.is_file():
                checked += 1
                problems.extend(check_file(path))
    for p in problems:
        print(p)
    print(f"checked {checked} files: " + ("FAIL" if problems else "OK"))
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
