#!/usr/bin/env python3
"""Cross-process stress gate for the sharded query service.

Builds a snapshot store with lcsingest, launches a fleet of lcsshard
server processes on unix sockets, then drives several concurrent
lcsrouter batches (disjoint query-id ranges, so the router's duplicate
gate never trips) through the fleet.  Every batch's output — one digest
line per query plus the batch summary — must be byte-identical to the
single-process oracle (`lcsrouter --local`) over the same store, after
stripping "#" telemetry comment lines (per-shard health, error detail)
that only fleet mode prints.  This is the cross-process form of
determinism contract point 7 (docs/architecture.md): shard placement
never changes digests.

With --streaming it additionally gates determinism contract point 9
(deterministic load shedding) across process boundaries: a rate-limited
`lcsrouter --local --tenant` run over the same store must shed
deterministically — rerunning the identical command must produce
byte-identical stdout (including the "# shed" telemetry), both admitted
and shed queries must occur, and every admitted query's digest must
match the unthrottled --local oracle line for the same id (admission
never changes content).

With --chaos it additionally gates contract point 8 (failover): a
replicated fleet (--replicas 2) is attacked by killing one shard process
before and during in-flight batches, and every surviving batch must
still be byte-identical to the oracle with every query ok — failover
must be invisible in content.  The killed shard is then restarted on the
same socket and the fleet must heal (next batch reports it up again).

Exit status 0 means every batch matched its oracle and the fleet shut
down cleanly on request; any mismatch, unexpected shard crash, or hang
is nonzero.

Usage:
  python3 scripts/stress_sharded.py [--build-dir build] [--shards 3]
      [--batches 4] [--count 48] [--n 200] [--m 600] [--chaos]
      [--streaming]
"""

from __future__ import annotations

import argparse
import difflib
import pathlib
import re
import shutil
import subprocess
import sys
import tempfile
import threading


def fail(message: str) -> None:
    print(f"stress_sharded: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def read_line_with_timeout(proc: subprocess.Popen, timeout: float) -> str:
    """One stdout line from a child, or '' if it produced none in time."""
    box: list[str] = []

    def reader() -> None:
        box.append(proc.stdout.readline())

    t = threading.Thread(target=reader, daemon=True)
    t.start()
    t.join(timeout)
    return box[0] if box else ""


def strip_comments(text: str) -> str:
    """Drop "#" telemetry lines (health, error detail) before an oracle diff:
    content lines must match byte for byte, telemetry need not."""
    return "".join(line for line in text.splitlines(keepends=True)
                   if not line.startswith("#"))


def ingest(lcsingest: pathlib.Path, store: pathlib.Path, args) -> str:
    """Freeze a generated gnm graph into the store; return its fingerprint."""
    out = subprocess.run(
        [str(lcsingest), "--store", str(store), "--generate", "gnm",
         "--n", str(args.n), "--m", str(args.m), "--seed", str(args.graph_seed)],
        capture_output=True, text=True, timeout=args.timeout)
    if out.returncode != 0:
        fail(f"lcsingest exited {out.returncode}:\n{out.stderr}")
    match = re.search(r"^fingerprint:\s+([0-9a-f]{16})$", out.stdout, re.M)
    if not match:
        fail(f"no fingerprint in lcsingest output:\n{out.stdout}")
    return match.group(1)


class Fleet:
    """The lcsshard processes, restartable per index for chaos testing."""

    def __init__(self, lcsshard: pathlib.Path, store: pathlib.Path,
                 fingerprint: str, workdir: pathlib.Path, args) -> None:
        self.lcsshard = lcsshard
        self.store = store
        self.fingerprint = fingerprint
        self.workdir = workdir
        self.args = args
        self.procs: list[subprocess.Popen | None] = [None] * args.shards
        self.endpoints = [f"unix:{workdir / f'shard{i}.sock'}"
                          for i in range(args.shards)]

    def launch(self, i: int) -> None:
        """Start (or restart) shard i and wait for its READY line.  A shard
        that never says READY is a failed launch; its stderr says why."""
        socket_path = pathlib.Path(self.endpoints[i].removeprefix("unix:"))
        socket_path.unlink(missing_ok=True)  # stale socket from a kill
        proc = subprocess.Popen(
            [str(self.lcsshard), "--store", str(self.store),
             "--fingerprint", self.fingerprint, "--listen", self.endpoints[i],
             "--seed", str(self.args.seed), "--threads", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        line = read_line_with_timeout(proc, self.args.timeout)
        if not line.startswith("READY "):
            proc.kill()
            _, stderr = proc.communicate(timeout=self.args.timeout)
            fail(f"shard {i} never became ready (got: {line!r}, "
                 f"exit code {proc.returncode}):\n{stderr}")
        self.procs[i] = proc

    def kill(self, i: int) -> None:
        proc = self.procs[i]
        if proc is not None:
            proc.kill()
            proc.wait(timeout=self.args.timeout)
        self.procs[i] = None

    def kill_all(self) -> None:
        for i in range(len(self.procs)):
            self.kill(i)

    def shard_flags(self) -> list[str]:
        flags: list[str] = []
        for endpoint in self.endpoints:
            flags += ["--shard", endpoint]
        return flags


def run_oracle(lcsrouter: pathlib.Path, store: pathlib.Path, fingerprint: str,
               first_id: int, args) -> str:
    """The same batch on one in-process service — the content reference."""
    oracle = subprocess.run(
        [str(lcsrouter), "--local", "--store", str(store),
         "--fingerprint", fingerprint, "--count", str(args.count),
         "--first-id", str(first_id), "--seed", str(args.seed),
         "--pp-vertices", str(args.n)],
        capture_output=True, text=True, timeout=args.timeout)
    if oracle.returncode != 0:
        fail(f"oracle (first id {first_id}) exited {oracle.returncode}:\n"
             f"{oracle.stderr}")
    return oracle.stdout


def diff_against_oracle(label: str, sharded: str, oracle: str) -> bool:
    """Print a unified diff of the content lines on mismatch."""
    if strip_comments(sharded) == strip_comments(oracle):
        return True
    print(f"{label}: DIGEST MISMATCH", file=sys.stderr)
    sys.stderr.writelines(difflib.unified_diff(
        strip_comments(oracle).splitlines(keepends=True),
        strip_comments(sharded).splitlines(keepends=True),
        fromfile=f"oracle ({label})", tofile=f"sharded ({label})"))
    return False


def require_all_ok(label: str, output: str, count: int) -> None:
    match = re.search(r"^batch .* count=(\d+) ok=(\d+) ", output, re.M)
    if not match:
        fail(f"{label}: no batch summary in router output:\n{output}")
    if match.group(1) != str(count) or match.group(2) != str(count):
        fail(f"{label}: expected {count}/{count} ok, got "
             f"{match.group(2)}/{match.group(1)} — failover did not mask "
             f"the fault:\n{output}")


def run_baseline(tools, fleet: Fleet, store, fingerprint, args) -> None:
    """The original gate: concurrent healthy batches, byte-identical to the
    oracle."""
    first_ids = [1000 + b * 100_000 for b in range(args.batches)]
    routers = [
        subprocess.Popen(
            [str(tools["lcsrouter"]), *fleet.shard_flags(),
             "--count", str(args.count), "--first-id", str(first_id),
             "--pp-vertices", str(args.n)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        for first_id in first_ids
    ]
    sharded_out = []
    for b, proc in enumerate(routers):
        stdout, stderr = proc.communicate(timeout=args.timeout)
        if proc.returncode != 0:
            fail(f"batch {b} router exited {proc.returncode}:\n{stderr}")
        sharded_out.append(stdout)

    mismatches = 0
    for b, first_id in enumerate(first_ids):
        oracle = run_oracle(tools["lcsrouter"], store, fingerprint, first_id, args)
        if diff_against_oracle(f"batch {b} (first id {first_id})",
                               sharded_out[b], oracle):
            summary = strip_comments(sharded_out[b]).strip().splitlines()[-1]
            print(f"batch {b} identical to oracle: {summary}")
        else:
            mismatches += 1
    if mismatches:
        fail(f"{mismatches}/{args.batches} batches diverged from the oracle")


def run_streaming_gate(tools, store, fingerprint, args) -> None:
    """Contract point 9, cross-process: a rate-limited streaming admission
    run (`lcsrouter --local --tenant`) must shed deterministically.  The
    identical command twice must print byte-identical stdout, the run must
    contain both admitted and shed queries (else the gate proved nothing),
    and every admitted digest must equal the unthrottled oracle's digest
    for the same query id — admission policy never changes content."""
    first_id = 800_000
    cmd = [str(tools["lcsrouter"]), "--local", "--store", str(store),
           "--fingerprint", fingerprint, "--count", str(args.count),
           "--first-id", str(first_id), "--seed", str(args.seed),
           "--pp-vertices", str(args.n),
           "--tenant", "stress", "--burst", "4", "--refill", "500"]
    runs = []
    for attempt in range(2):
        out = subprocess.run(cmd, capture_output=True, text=True,
                             timeout=args.timeout)
        if out.returncode != 0:
            fail(f"streaming run {attempt} exited {out.returncode}:\n"
                 f"{out.stderr}")
        runs.append(out.stdout)
    if runs[0] != runs[1]:
        sys.stderr.writelines(difflib.unified_diff(
            runs[0].splitlines(keepends=True), runs[1].splitlines(keepends=True),
            fromfile="streaming run 0", tofile="streaming run 1"))
        fail("streaming admission diverged across identical reruns")

    digest_re = r"^query id=(\d+) ok=1 digest=([0-9a-f]{16})$"
    admitted = dict(re.findall(digest_re, runs[0], re.M))
    shed = re.findall(r"^# shed id=(\d+) ", runs[0], re.M)
    if not admitted or not shed:
        fail(f"streaming gate needs both admitted and shed queries, got "
             f"{len(admitted)} admitted / {len(shed)} shed:\n{runs[0]}")
    if set(admitted) & set(shed):
        fail(f"queries both admitted and shed: {sorted(set(admitted) & set(shed))}")
    oracle = run_oracle(tools["lcsrouter"], store, fingerprint, first_id, args)
    oracle_digests = dict(re.findall(digest_re, oracle, re.M))
    for qid, digest in admitted.items():
        if oracle_digests.get(qid) != digest:
            fail(f"admitted query {qid}: streaming digest {digest} != "
                 f"oracle {oracle_digests.get(qid)} — admission changed content")
    print(f"streaming: {len(admitted)} admitted / {len(shed)} shed of "
          f"{args.count}; rerun byte-identical, admitted digests match the "
          f"oracle")


def run_chaos(tools, fleet: Fleet, store, fingerprint, args) -> None:
    """Contract point 8, cross-process: kill one shard of a --replicas 2
    fleet before and during batches; surviving output must be byte-identical
    to the oracle with zero failed queries, and a restarted shard must be
    probed back up."""
    victim = args.shards // 2
    replicated = [*fleet.shard_flags(), "--replicas", "2"]

    def router_cmd(first_id: int) -> list[str]:
        return [str(tools["lcsrouter"]), *replicated,
                "--count", str(args.count), "--first-id", str(first_id),
                "--pp-vertices", str(args.n)]

    # Phase 1 — healthy replicated fleet: replication alone must not change
    # a single digest.
    out = subprocess.run(router_cmd(500_000), capture_output=True, text=True,
                         timeout=args.timeout)
    if out.returncode != 0:
        fail(f"chaos healthy batch exited {out.returncode}:\n{out.stderr}")
    oracle = run_oracle(tools["lcsrouter"], store, fingerprint, 500_000, args)
    if not diff_against_oracle("chaos healthy batch", out.stdout, oracle):
        fail("replicated placement changed digests on a healthy fleet")
    require_all_ok("chaos healthy batch", out.stdout, args.count)
    print(f"chaos: healthy replicated fleet identical to oracle")

    # Phase 2 — kill the victim, then drive concurrent batches.  Every
    # query must fail over to the surviving replica: same bytes, zero
    # failures, no matter when each router observes the corpse.
    fleet.kill(victim)
    print(f"chaos: killed shard {victim}")
    first_ids = [600_000 + b * 100_000 for b in range(args.batches)]
    routers = [subprocess.Popen(router_cmd(first_id), stdout=subprocess.PIPE,
                                stderr=subprocess.PIPE, text=True)
               for first_id in first_ids]
    saw_down = False
    for b, proc in enumerate(routers):
        stdout, stderr = proc.communicate(timeout=args.timeout)
        if proc.returncode != 0:
            fail(f"chaos batch {b} router exited {proc.returncode}:\n{stderr}")
        oracle = run_oracle(tools["lcsrouter"], store, fingerprint,
                            first_ids[b], args)
        if not diff_against_oracle(f"chaos batch {b}", stdout, oracle):
            fail(f"chaos batch {b} diverged from the oracle after the kill")
        require_all_ok(f"chaos batch {b}", stdout, args.count)
        if re.search(rf"^# health shard={victim} .* up=0", stdout, re.M):
            saw_down = True
    if not saw_down:
        fail(f"no batch reported shard {victim} down — the kill was never "
             f"observed, the chaos gate proved nothing")
    print(f"chaos: {args.batches} batches survived the kill, "
          f"all identical to oracle, zero failed queries")

    # Phase 3 — restart the victim: the next batch's probe must reattach it.
    fleet.launch(victim)
    out = subprocess.run(router_cmd(900_000), capture_output=True, text=True,
                         timeout=args.timeout)
    if out.returncode != 0:
        fail(f"post-restart batch exited {out.returncode}:\n{out.stderr}")
    oracle = run_oracle(tools["lcsrouter"], store, fingerprint, 900_000, args)
    if not diff_against_oracle("post-restart batch", out.stdout, oracle):
        fail("post-restart batch diverged from the oracle")
    require_all_ok("post-restart batch", out.stdout, args.count)
    if not re.search(rf"^# health shard={victim} .* up=1", out.stdout, re.M):
        fail(f"restarted shard {victim} not reported up:\n{out.stdout}")
    print(f"chaos: restarted shard {victim} rejoined the fleet")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory holding tools/ binaries")
    parser.add_argument("--shards", type=int, default=3,
                        help="lcsshard processes in the fleet")
    parser.add_argument("--batches", type=int, default=4,
                        help="concurrent lcsrouter batches")
    parser.add_argument("--count", type=int, default=48,
                        help="queries per batch")
    parser.add_argument("--n", type=int, default=200, help="graph vertices")
    parser.add_argument("--m", type=int, default=600, help="graph edges")
    parser.add_argument("--graph-seed", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7, help="service seed")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-step timeout in seconds")
    parser.add_argument("--chaos", action="store_true",
                        help="also kill + restart a shard under a replicated "
                             "fleet and require byte-identical failover")
    parser.add_argument("--streaming", action="store_true",
                        help="also gate rate-limited streaming admission: "
                             "deterministic sheds on rerun, admitted digests "
                             "identical to the unthrottled oracle")
    args = parser.parse_args()

    build = pathlib.Path(args.build_dir)
    tools = {name: build / "tools" / name
             for name in ("lcsingest", "lcsshard", "lcsrouter")}
    for name, path in tools.items():
        if not path.is_file():
            fail(f"{path} not built — build the '{name}' target first")
    if args.chaos and args.shards < 2:
        fail("--chaos needs at least 2 shards to have a surviving replica")

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="lcs-stress-sharded-"))
    store = workdir / "store"
    fleet: Fleet | None = None
    try:
        fingerprint = ingest(tools["lcsingest"], store, args)
        print(f"store ready: fingerprint={fingerprint} "
              f"(n={args.n}, m={args.m}, graph seed {args.graph_seed})")

        # Fleet: one lcsshard per socket.  READY on stdout marks a shard
        # accepting; a shard that never says it is a failed launch.
        fleet = Fleet(tools["lcsshard"], store, fingerprint, workdir, args)
        for i in range(args.shards):
            fleet.launch(i)
        print(f"fleet ready: {args.shards} shard(s)")

        run_baseline(tools, fleet, store, fingerprint, args)
        if args.streaming:
            run_streaming_gate(tools, store, fingerprint, args)
        if args.chaos:
            run_chaos(tools, fleet, store, fingerprint, args)

        # Clean shutdown: one more (tiny) batch with --shutdown, then the
        # whole fleet must exit on its own.
        out = subprocess.run(
            [str(tools["lcsrouter"]), *fleet.shard_flags(), "--count", "1",
             "--first-id", "999000", "--shutdown"],
            capture_output=True, text=True, timeout=args.timeout)
        if out.returncode != 0:
            fail(f"shutdown router exited {out.returncode}:\n{out.stderr}")
        for i, proc in enumerate(fleet.procs):
            if proc is None:
                continue
            try:
                code = proc.wait(timeout=args.timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                fail(f"shard {i} ignored shutdown")
            if code != 0:
                fail(f"shard {i} exited {code}:\n{proc.stderr.read()}")
            fleet.procs[i] = None
        mode = "baseline"
        if args.streaming:
            mode += " + streaming"
        if args.chaos:
            mode += " + chaos"
        print(f"OK ({mode}): {args.batches} concurrent batches x {args.count} "
              f"queries over {args.shards} shards, all digests identical to "
              f"the single-process oracle; clean fleet shutdown")
    finally:
        if fleet is not None:
            fleet.kill_all()
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
