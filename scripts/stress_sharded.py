#!/usr/bin/env python3
"""Cross-process stress gate for the sharded query service.

Builds a snapshot store with lcsingest, launches a fleet of lcsshard
server processes on unix sockets, then drives several concurrent
lcsrouter batches (disjoint query-id ranges, so the router's duplicate
gate never trips) through the fleet.  Every batch's output — one digest
line per query plus the batch summary — must be byte-identical to the
single-process oracle (`lcsrouter --local`) over the same store.  This
is the cross-process form of determinism contract point 7
(docs/architecture.md): shard placement never changes digests.

Exit status 0 means every batch matched its oracle and the fleet shut
down cleanly on request; any mismatch, shard crash, or hang is nonzero.

Usage:
  python3 scripts/stress_sharded.py [--build-dir build] [--shards 3]
      [--batches 4] [--count 48] [--n 200] [--m 600]
"""

from __future__ import annotations

import argparse
import difflib
import pathlib
import re
import shutil
import subprocess
import sys
import tempfile
import threading


def fail(message: str) -> None:
    print(f"stress_sharded: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def read_line_with_timeout(proc: subprocess.Popen, timeout: float) -> str:
    """One stdout line from a child, or '' if it produced none in time."""
    box: list[str] = []

    def reader() -> None:
        box.append(proc.stdout.readline())

    t = threading.Thread(target=reader, daemon=True)
    t.start()
    t.join(timeout)
    return box[0] if box else ""


def ingest(lcsingest: pathlib.Path, store: pathlib.Path, args) -> str:
    """Freeze a generated gnm graph into the store; return its fingerprint."""
    out = subprocess.run(
        [str(lcsingest), "--store", str(store), "--generate", "gnm",
         "--n", str(args.n), "--m", str(args.m), "--seed", str(args.graph_seed)],
        capture_output=True, text=True, timeout=args.timeout)
    if out.returncode != 0:
        fail(f"lcsingest exited {out.returncode}:\n{out.stderr}")
    match = re.search(r"^fingerprint:\s+([0-9a-f]{16})$", out.stdout, re.M)
    if not match:
        fail(f"no fingerprint in lcsingest output:\n{out.stdout}")
    return match.group(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory holding tools/ binaries")
    parser.add_argument("--shards", type=int, default=3,
                        help="lcsshard processes in the fleet")
    parser.add_argument("--batches", type=int, default=4,
                        help="concurrent lcsrouter batches")
    parser.add_argument("--count", type=int, default=48,
                        help="queries per batch")
    parser.add_argument("--n", type=int, default=200, help="graph vertices")
    parser.add_argument("--m", type=int, default=600, help="graph edges")
    parser.add_argument("--graph-seed", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7, help="service seed")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-step timeout in seconds")
    args = parser.parse_args()

    build = pathlib.Path(args.build_dir)
    tools = {name: build / "tools" / name
             for name in ("lcsingest", "lcsshard", "lcsrouter")}
    for name, path in tools.items():
        if not path.is_file():
            fail(f"{path} not built — build the '{name}' target first")

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="lcs-stress-sharded-"))
    store = workdir / "store"
    shards: list[subprocess.Popen] = []
    try:
        fingerprint = ingest(tools["lcsingest"], store, args)
        print(f"store ready: fingerprint={fingerprint} "
              f"(n={args.n}, m={args.m}, graph seed {args.graph_seed})")

        # Fleet: one lcsshard per socket.  READY on stdout marks a shard
        # accepting; a shard that never says it is a failed launch.
        endpoints = []
        for i in range(args.shards):
            endpoint = f"unix:{workdir / f'shard{i}.sock'}"
            proc = subprocess.Popen(
                [str(tools["lcsshard"]), "--store", str(store),
                 "--fingerprint", fingerprint, "--listen", endpoint,
                 "--seed", str(args.seed), "--threads", "2"],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
            line = read_line_with_timeout(proc, args.timeout)
            if not line.startswith("READY "):
                proc.kill()
                fail(f"shard {i} never became ready (got: {line!r})")
            shards.append(proc)
            endpoints.append(endpoint)
        print(f"fleet ready: {args.shards} shard(s)")

        shard_flags: list[str] = []
        for endpoint in endpoints:
            shard_flags += ["--shard", endpoint]

        # Concurrent batches with disjoint id ranges, all in flight at
        # once against the same fleet.
        first_ids = [1000 + b * 100_000 for b in range(args.batches)]
        routers = [
            subprocess.Popen(
                [str(tools["lcsrouter"]), *shard_flags,
                 "--count", str(args.count), "--first-id", str(first_id)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
            for first_id in first_ids
        ]
        sharded_out = []
        for b, proc in enumerate(routers):
            stdout, stderr = proc.communicate(timeout=args.timeout)
            if proc.returncode != 0:
                fail(f"batch {b} router exited {proc.returncode}:\n{stderr}")
            sharded_out.append(stdout)

        # Oracle: the same batches on one in-process service.
        mismatches = 0
        for b, first_id in enumerate(first_ids):
            oracle = subprocess.run(
                [str(tools["lcsrouter"]), "--local", "--store", str(store),
                 "--fingerprint", fingerprint, "--count", str(args.count),
                 "--first-id", str(first_id), "--seed", str(args.seed)],
                capture_output=True, text=True, timeout=args.timeout)
            if oracle.returncode != 0:
                fail(f"batch {b} oracle exited {oracle.returncode}:\n{oracle.stderr}")
            if sharded_out[b] != oracle.stdout:
                mismatches += 1
                print(f"batch {b} (first id {first_id}): DIGEST MISMATCH",
                      file=sys.stderr)
                sys.stderr.writelines(difflib.unified_diff(
                    oracle.stdout.splitlines(keepends=True),
                    sharded_out[b].splitlines(keepends=True),
                    fromfile=f"oracle (batch {b})",
                    tofile=f"sharded (batch {b})"))
            else:
                summary = sharded_out[b].strip().splitlines()[-1]
                print(f"batch {b} identical to oracle: {summary}")
        if mismatches:
            fail(f"{mismatches}/{args.batches} batches diverged from the oracle")

        # Clean shutdown: one more (tiny) batch with --shutdown, then the
        # whole fleet must exit on its own.
        out = subprocess.run(
            [str(tools["lcsrouter"]), *shard_flags, "--count", "1",
             "--first-id", "999000", "--shutdown"],
            capture_output=True, text=True, timeout=args.timeout)
        if out.returncode != 0:
            fail(f"shutdown router exited {out.returncode}:\n{out.stderr}")
        for i, proc in enumerate(shards):
            try:
                code = proc.wait(timeout=args.timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                fail(f"shard {i} ignored shutdown")
            if code != 0:
                fail(f"shard {i} exited {code}:\n{proc.stderr.read()}")
        shards.clear()
        print(f"OK: {args.batches} concurrent batches x {args.count} queries "
              f"over {args.shards} shards, all digests identical to the "
              f"single-process oracle; clean fleet shutdown")
    finally:
        for proc in shards:
            proc.kill()
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
