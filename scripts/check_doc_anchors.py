#!/usr/bin/env python3
"""Anchor validation for docs/*.md (CI docs job).

The paper-to-code tables in docs/ tie theorems to implementations with
anchors of the form

    `src/core/kp.cpp:85` (`build_kp_shortcuts`)

This gate keeps them from rotting silently:

  * every backticked `path:line` must name an existing file and a line
    within it;
  * when the anchor is followed by a backticked (`symbol`), the symbol's
    last identifier must occur within a few lines of the anchored line
    (so an anchor that drifted away from its function fails loudly);
  * every backticked repo path (a token with a '/' under a known root)
    must exist.

Run from anywhere: paths resolve against the repository root.
"""

import re
import sys
from pathlib import Path

ROOTS = ("src/", "tests/", "bench/", "examples/", "scripts/", "docs/", "tools/", ".github/")

# `path:line` optionally followed by (`symbol`)
ANCHOR_RE = re.compile(
    r"`(?P<path>[A-Za-z0-9_./-]+\.(?:hpp|cpp|h|cc|py|md|yml|txt)):(?P<line>\d+)`"
    r"(?:\s*\(`(?P<symbol>[A-Za-z0-9_:~<>]+)`\))?"
)
PATH_RE = re.compile(r"`(?P<path>[A-Za-z0-9_.-]+/[A-Za-z0-9_./-]+)`")

# The anchored symbol must appear within this many lines of the anchor.
SYMBOL_WINDOW = 3


def check_doc(doc: Path, repo: Path) -> list[str]:
    problems = []
    text = doc.read_text(encoding="utf-8")
    rel = doc.relative_to(repo)

    for m in ANCHOR_RE.finditer(text):
        path, line = m.group("path"), int(m.group("line"))
        target = repo / path
        if not target.is_file():
            problems.append(f"{rel}: anchor `{path}:{line}` — file does not exist")
            continue
        lines = target.read_text(encoding="utf-8").splitlines()
        if line < 1 or line > len(lines):
            problems.append(
                f"{rel}: anchor `{path}:{line}` — file has only {len(lines)} lines"
            )
            continue
        symbol = m.group("symbol")
        if symbol:
            # Strip namespaces / destructor markers; match the identifier.
            ident = symbol.split("::")[-1].lstrip("~")
            lo = max(0, line - 1 - SYMBOL_WINDOW)
            hi = min(len(lines), line + SYMBOL_WINDOW)
            window = "\n".join(lines[lo:hi])
            if not re.search(rf"\b{re.escape(ident)}\b", window):
                problems.append(
                    f"{rel}: anchor `{path}:{line}` — symbol `{symbol}` not found "
                    f"within {SYMBOL_WINDOW} lines (anchor drifted?)"
                )

    # `path:line` tokens never match PATH_RE (':' is outside its character
    # class), so every match here is a plain path reference.
    for m in PATH_RE.finditer(text):
        path = m.group("path")
        if not path.startswith(ROOTS):
            continue
        target = repo / path
        if not target.exists():
            problems.append(f"{rel}: referenced path `{path}` does not exist")

    return problems


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    docs = sorted((repo / "docs").glob("*.md"))
    if not docs:
        print("no docs/*.md files found")
        return 1
    problems = []
    anchors = 0
    for doc in docs:
        anchors += len(ANCHOR_RE.findall(doc.read_text(encoding="utf-8")))
        problems.extend(check_doc(doc, repo))
    for p in problems:
        print(p)
    print(
        f"checked {len(docs)} doc(s), {anchors} line anchor(s): "
        + ("FAIL" if problems else "OK")
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
