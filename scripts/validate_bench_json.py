#!/usr/bin/env python3
"""Schema validation for lcsbench JSON records (CI bench-smoke gate).

Accepts either a single record object (one scenario) or an array of records
(--all / multiple scenarios).  Usage:

    validate_bench_json.py out.json [--min-scenarios N] [--require-ok]
                           [--speedup-floor X [--speedup-floor-min-threads T]]

The schema and the gating rules are documented in docs/bench.md.
"""

import argparse
import json
import sys

RECORD_KEYS = {
    "schema_version",
    "scenario",
    "description",
    "grid",
    "ok",
    "config",
    "params",
    "repetitions",
    "metrics",
    "machine",
}
MACHINE_KEYS = {
    "hostname",
    "os",
    "kernel",
    "arch",
    "cpu_model",
    "hardware_threads",
    "compiler",
    "build_type",
    "timestamp_utc",
}


def validate_machine(name: str, machine) -> list[str]:
    """A record without a complete machine stamp is not reproducible: every
    key must be present and non-empty, and hardware_threads must be a
    positive integer."""
    problems = []
    if not isinstance(machine, dict):
        return [f"{name}: machine stamp is not an object: {machine!r}"]
    missing = MACHINE_KEYS - machine.keys()
    if missing:
        problems.append(f"{name}: machine info missing {sorted(missing)}")
    for key in MACHINE_KEYS & machine.keys():
        value = machine[key]
        if key == "hardware_threads":
            if not isinstance(value, int) or value < 1:
                problems.append(f"{name}: machine.hardware_threads bad: {value!r}")
        elif not isinstance(value, str) or not value.strip():
            problems.append(f"{name}: machine.{key} is empty")
    return problems


# Thread-scaling scenarios and the legs whose speedup curves they must record.
SCALING_LEGS = {
    "s1_": ["kp_build", "quality", "congest"],
    "s2_": ["stoer_wagner", "karger", "boruvka", "diameter"],
    "s3_": ["batch"],
}

# Extra boolean metrics a scaling scenario must record as true (beyond the
# deterministic_across_threads check every scaling record gets).
SCALING_EXTRA_CHECKS = {
    "s3_": [
        "deterministic_across_orders",
        "deterministic_vs_sequential",
        "all_queries_ok",
    ],
}

# Per-load-leg metric prefixes every s4_ (admission/overload) record must
# carry for each swept offered-load multiple, plus boolean gates that must
# be true.  Schema documented in docs/bench.md.
S4_LEG_PREFIXES = [
    "qps",
    "queue_p99_ms",
    "latency_p50_ms_cheap",
    "latency_p99_ms_cheap",
    "latency_p50_ms_heavy",
    "latency_p99_ms_heavy",
    "cache_hit_rate",
]
S4_TRUE_CHECKS = [
    "all_queries_ok",
    "cheap_never_starved",
    "deterministic_hot_vs_cold",
    "deterministic_overload_vs_idle",
    "deterministic_cached_vs_uncached",
    "deterministic_across_threads",
]

# Timing metrics every s5_ (snapshot ingest/serve) record must carry, plus
# boolean gates that must be true.  Schema documented in docs/bench.md.
S5_TIMING_METRICS = [
    "build_ms",
    "save_ms",
    "load_ms",
    "snapshot_bytes",
    "cold_first_query_ms",
    "warm_first_query_ms",
]
S5_TRUE_CHECKS = [
    "all_queries_ok",
    "deterministic_loaded_vs_built",
    "mmap_load_faster",
]

# Per-fleet-size metric prefixes every s6_ (sharded throughput) record must
# carry for each shard count, the local-baseline leg, and boolean gates
# that must be true.  Schema documented in docs/bench.md.
S6_LOCAL_METRICS = [
    "qps_local",
    "latency_p50_ms_local",
    "latency_p99_ms_local",
]
S6_LEG_PREFIXES = [
    "qps",
    "latency_p50_ms",
    "latency_p99_ms",
    "speedup_vs_local",
]
S6_TRUE_CHECKS = [
    "all_queries_ok",
    "deterministic_sharded_vs_local",
]

# Availability ratios, failover timings and boolean gates every s7_ (fault
# tolerance) record must carry.  Schema documented in docs/bench.md.
S7_RATIO_METRICS = [
    "availability_kill",
    "availability_drop",
    "availability_garble",
    "availability_deadline",
    "availability_r1_kill",
]
S7_TIMING_METRICS = [
    "healthy_p99_ms",
    "failover_p99_ms",
]
S7_TRUE_CHECKS = [
    "all_queries_ok",
    "zero_failures_with_replication",
    "deterministic_failover_vs_healthy",
    "deterministic_fault_replay",
]


def validate_overload(record: dict, args) -> list[str]:
    """s4_ records sweep offered load, not threads: per load multiple there
    must be a complete per-class latency + cache-hit-rate leg, hit rates
    must be valid ratios, and every inline determinism cross-check
    (cached-vs-uncached, overload-vs-idle, across-threads) must have
    passed."""
    del args
    name = record["scenario"]
    problems = []
    if not isinstance(record["params"], dict) or not isinstance(record["metrics"], dict):
        return [f"{name}: params/metrics must be objects"]
    multiples = record["params"].get("offered_multiples")
    if (
        not isinstance(multiples, list)
        or not multiples
        or not all(isinstance(m, int) and m >= 1 for m in multiples)
    ):
        problems.append(
            f"{name}: params.offered_multiples must be a non-empty list of multiples"
        )
        multiples = []
    metrics = record["metrics"]
    for mult in multiples:
        for prefix in S4_LEG_PREFIXES:
            key = f"{prefix}_x{mult}"
            value = metrics.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"{name}: missing or bad leg metric {key}: {value!r}")
            elif prefix == "cache_hit_rate" and value > 1:
                problems.append(f"{name}: {key} is not a ratio: {value!r}")
    for key in S4_TRUE_CHECKS:
        if metrics.get(key) is not True:
            problems.append(f"{name}: {key} is not true")
    return problems


def validate_snapshot_io(record: dict, args) -> list[str]:
    """s5_ records measure the snapshot store's build/save/mmap-load cycle:
    every phase timing and the file size must be present and non-negative,
    and the inline gates — every query ok, bit-identical digests from the
    loaded snapshot at each thread count, and mmap load beating in-process
    build — must have passed."""
    del args
    name = record["scenario"]
    problems = []
    if not isinstance(record["params"], dict) or not isinstance(record["metrics"], dict):
        return [f"{name}: params/metrics must be objects"]
    metrics = record["metrics"]
    for key in S5_TIMING_METRICS:
        value = metrics.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"{name}: missing or bad metric {key}: {value!r}")
    if not metrics.get("snapshot_bytes"):
        problems.append(f"{name}: snapshot_bytes is zero")
    for key in S5_TRUE_CHECKS:
        if metrics.get(key) is not True:
            problems.append(f"{name}: {key} is not true")
    return problems


def validate_sharded(record: dict, args) -> list[str]:
    """s6_ records sweep fleet size over a real RPC stack: per shard count
    there must be a complete qps/latency/speedup leg, the local baseline
    leg must be present, and the inline gates — every query ok and
    bit-identical digests for every placement at every thread count — must
    have passed."""
    del args
    name = record["scenario"]
    problems = []
    if not isinstance(record["params"], dict) or not isinstance(record["metrics"], dict):
        return [f"{name}: params/metrics must be objects"]
    shard_counts = record["params"].get("shard_counts")
    if (
        not isinstance(shard_counts, list)
        or not shard_counts
        or not all(isinstance(k, int) and k >= 1 for k in shard_counts)
    ):
        problems.append(
            f"{name}: params.shard_counts must be a non-empty list of fleet sizes"
        )
        shard_counts = []
    metrics = record["metrics"]
    for key in S6_LOCAL_METRICS:
        value = metrics.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"{name}: missing or bad baseline metric {key}: {value!r}")
    for count in shard_counts:
        for prefix in S6_LEG_PREFIXES:
            key = f"{prefix}_shards{count}"
            value = metrics.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"{name}: missing or bad leg metric {key}: {value!r}")
    for key in S6_TRUE_CHECKS:
        if metrics.get(key) is not True:
            problems.append(f"{name}: {key} is not true")
    return problems


def validate_fault_tolerance(record: dict, args) -> list[str]:
    """s7_ records inject scripted faults into a replicated fleet: every
    availability metric must be a valid ratio (and exactly 1.0 for the
    replicated legs — replication must fully mask a single fault), the
    healthy/failover latency legs must be present, and the inline gates —
    failover digests identical to the healthy fleet at every thread count
    and seeded chaos plans replaying byte-identically — must have passed."""
    del args
    name = record["scenario"]
    problems = []
    if not isinstance(record["params"], dict) or not isinstance(record["metrics"], dict):
        return [f"{name}: params/metrics must be objects"]
    metrics = record["metrics"]
    for key in S7_RATIO_METRICS:
        value = metrics.get(key)
        if not isinstance(value, (int, float)) or not 0 <= value <= 1:
            problems.append(f"{name}: missing or bad availability ratio {key}: {value!r}")
        elif key != "availability_r1_kill" and value != 1:
            problems.append(f"{name}: {key} is {value!r}, replication must mask the fault")
    for key in S7_TIMING_METRICS:
        value = metrics.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"{name}: missing or bad timing metric {key}: {value!r}")
    for key in S7_TRUE_CHECKS:
        if metrics.get(key) is not True:
            problems.append(f"{name}: {key} is not true")
    return problems


def validate_scaling(record: dict, legs: list[str], args) -> list[str]:
    """Thread-scaling records must carry the thread sweep and a speedup curve
    per leg (and the inline determinism cross-check must not have failed).
    When --speedup-floor is set and the recording machine has at least
    --speedup-floor-min-threads hardware threads, the best leg's speedup at
    8 threads must clear the floor — a total parallelization regression
    gates, timing noise on a single leg does not."""
    name = record["scenario"]
    problems = []
    if not isinstance(record["params"], dict) or not isinstance(record["metrics"], dict):
        return [f"{name}: params/metrics must be objects"]
    threads = record["params"].get("threads")
    if (
        not isinstance(threads, list)
        or not threads
        or not all(isinstance(t, int) and t >= 1 for t in threads)
    ):
        problems.append(f"{name}: params.threads must be a non-empty list of counts")
    metrics = record["metrics"]
    speedups = {k: v for k, v in metrics.items() if k.startswith("speedup_")}
    if not speedups:
        problems.append(f"{name}: no speedup_* metrics recorded")
    for key, value in speedups.items():
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"{name}: bad {key}: {value!r}")
    for leg in legs:
        if not any(k.startswith(f"speedup_{leg}_t") for k in speedups):
            problems.append(f"{name}: missing speedup curve for leg {leg!r}")
    if metrics.get("deterministic_across_threads") is not True:
        problems.append(f"{name}: deterministic_across_threads is not true")
    for prefix, extra_keys in SCALING_EXTRA_CHECKS.items():
        if name.lower().startswith(prefix):
            for key in extra_keys:
                if metrics.get(key) is not True:
                    problems.append(f"{name}: {key} is not true")
    if args.speedup_floor is not None:
        machine = record.get("machine", {})
        host_threads = machine.get("hardware_threads", 0) if isinstance(machine, dict) else 0
        if isinstance(host_threads, int) and host_threads >= args.speedup_floor_min_threads:
            at8 = [
                v
                for k, v in speedups.items()
                if k.endswith("_t8") and isinstance(v, (int, float))
            ]
            if not at8:
                problems.append(f"{name}: no speedup_*_t8 metrics for the floor gate")
            elif max(at8) < args.speedup_floor:
                problems.append(
                    f"{name}: best t8 speedup {max(at8):.2f} below floor "
                    f"{args.speedup_floor} on a {host_threads}-thread host"
                )
    return problems


# Per-load-leg metric prefixes every s8_ (streaming admission) record must
# carry — scenario-wide per offered-load multiple, and per (multiple, tenant)
# for the QoS curves — plus the prewarm contrast metrics and boolean gates
# that must be true.  Schema documented in docs/bench.md.
S8_LEG_PREFIXES = [
    "wall_ms",
    "qps",
    "waves",
    "queue_depth_p99",
]
S8_TENANT_PREFIXES = [
    "latency_p50_ms",
    "latency_p99_ms",
    "queue_p99_ms",
    "shed_rate",
]
S8_PREWARM_METRICS = [
    "prewarm_cold_p99_ms",
    "prewarm_warm_p99_ms",
    "prewarm_speedup",
]
S8_TRUE_CHECKS = [
    "all_served_ok",
    "cheap_never_starved",
    "shed_replay_identical",
    "deterministic_overload_vs_idle",
    "deterministic_across_threads",
    "deterministic_prewarm_on_vs_off",
    "prewarm_zero_warm_misses",
]


def validate_streaming(record: dict, args) -> list[str]:
    """s8_ records sweep sustained offered load through the streaming
    admission loop: per load multiple there must be a complete throughput +
    queue-depth leg and, per registered tenant, a latency/shed-rate leg
    (shed rates must be valid ratios); the prewarm contrast metrics must be
    present; and every inline gate — byte-identical shed replay, overload
    vs idle digests, thread-count independence, prewarm on-vs-off digests,
    zero warm-path partition misses, and cheap-class no-starvation — must
    have passed."""
    del args
    name = record["scenario"]
    problems = []
    if not isinstance(record["params"], dict) or not isinstance(record["metrics"], dict):
        return [f"{name}: params/metrics must be objects"]
    multiples = record["params"].get("offered_multiples")
    if (
        not isinstance(multiples, list)
        or not multiples
        or not all(isinstance(m, int) and m >= 1 for m in multiples)
    ):
        problems.append(
            f"{name}: params.offered_multiples must be a non-empty list of multiples"
        )
        multiples = []
    tenants = record["params"].get("tenants")
    if (
        not isinstance(tenants, list)
        or not tenants
        or not all(isinstance(t, str) and t for t in tenants)
    ):
        problems.append(f"{name}: params.tenants must be a non-empty list of names")
        tenants = []
    metrics = record["metrics"]
    for mult in multiples:
        for prefix in S8_LEG_PREFIXES:
            key = f"{prefix}_x{mult}"
            value = metrics.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"{name}: missing or bad leg metric {key}: {value!r}")
        for tenant in tenants:
            for prefix in S8_TENANT_PREFIXES:
                key = f"{prefix}_x{mult}_{tenant}"
                value = metrics.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(
                        f"{name}: missing or bad tenant metric {key}: {value!r}"
                    )
                elif prefix == "shed_rate" and value > 1:
                    problems.append(f"{name}: {key} is not a ratio: {value!r}")
    for key in S8_PREWARM_METRICS:
        value = metrics.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"{name}: missing or bad prewarm metric {key}: {value!r}")
    for key in S8_TRUE_CHECKS:
        if metrics.get(key) is not True:
            problems.append(f"{name}: {key} is not true")
    return problems


# Per-size metric prefixes every s9_ (point-to-point routing) record must
# carry for each swept road-network size, plus boolean gates that must be
# true.  Schema documented in docs/bench.md.
S9_SIZE_PREFIXES = [
    "ch_build_ms",
    "overlay_build_ms",
    "dijkstra_p50_ms",
    "dijkstra_p99_ms",
    "ch_p50_ms",
    "ch_p99_ms",
    "assisted_p50_ms",
    "assisted_p99_ms",
]
S9_TRUE_CHECKS = [
    "all_engines_agree",
    "all_queries_ok",
    "ch_p99_beats_dijkstra",
    "deterministic_across_threads",
    "deterministic_loaded_vs_built",
    "deterministic_sharded_vs_local",
    "deterministic_streaming_vs_direct",
]


def validate_point_to_point(record: dict, args) -> list[str]:
    """s9_ records race three exact s-t engines over road networks: per
    swept size there must be a complete build-time + per-engine latency
    leg, and every inline gate — identical distances from all three
    engines, CH p99 beating plain Dijkstra at the largest size, and
    bit-identical digests across threads, loaded-vs-built snapshots,
    sharded-vs-local placement and streaming-vs-direct admission — must
    have passed."""
    del args
    name = record["scenario"]
    problems = []
    if not isinstance(record["params"], dict) or not isinstance(record["metrics"], dict):
        return [f"{name}: params/metrics must be objects"]
    sizes = record["params"].get("n_sweep")
    if (
        not isinstance(sizes, list)
        or not sizes
        or not all(isinstance(n, int) and n >= 2 for n in sizes)
    ):
        problems.append(f"{name}: params.n_sweep must be a non-empty list of sizes")
        sizes = []
    metrics = record["metrics"]
    for n in sizes:
        for prefix in S9_SIZE_PREFIXES:
            key = f"{prefix}_n{n}"
            value = metrics.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"{name}: missing or bad leg metric {key}: {value!r}")
    for key in S9_TRUE_CHECKS:
        if metrics.get(key) is not True:
            problems.append(f"{name}: {key} is not true")
    return problems


def validate_record(record: dict, require_ok: bool, args) -> list[str]:
    problems = []
    name = record.get("scenario", "<missing scenario>")
    missing = RECORD_KEYS - record.keys()
    if missing:
        problems.append(f"{name}: missing keys {sorted(missing)}")
        return problems
    if record["schema_version"] != 1:
        problems.append(f"{name}: unexpected schema_version {record['schema_version']}")
    if require_ok and not record["ok"]:
        problems.append(f"{name}: ok=false ({record.get('error', 'no error text')})")
    if record["ok"] and not record["repetitions"]:
        problems.append(f"{name}: ok but no repetition timings")
    for i, rep in enumerate(record["repetitions"]):
        for key in ("wall_ms", "cpu_ms"):
            if not isinstance(rep.get(key), (int, float)) or rep[key] < 0:
                problems.append(f"{name}: repetition {i} has bad {key}: {rep.get(key)!r}")
    problems.extend(validate_machine(name, record["machine"]))
    if record["ok"]:
        for prefix, legs in SCALING_LEGS.items():
            if name.lower().startswith(prefix):
                problems.extend(validate_scaling(record, legs, args))
        if name.lower().startswith("s4_"):
            problems.extend(validate_overload(record, args))
        if name.lower().startswith("s5_"):
            problems.extend(validate_snapshot_io(record, args))
        if name.lower().startswith("s6_"):
            problems.extend(validate_sharded(record, args))
        if name.lower().startswith("s7_"):
            problems.extend(validate_fault_tolerance(record, args))
        if name.lower().startswith("s8_"):
            problems.extend(validate_streaming(record, args))
        if name.lower().startswith("s9_"):
            problems.extend(validate_point_to_point(record, args))
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Schema validation for lcsbench JSON records.",
        epilog="The record schema, the S1/S2/S3 leg-curve fields, the S4 "
        "overload legs and the --speedup-floor gating rules are documented "
        "in docs/bench.md.",
    )
    parser.add_argument("path")
    parser.add_argument("--min-scenarios", type=int, default=1)
    parser.add_argument("--require-ok", action="store_true")
    parser.add_argument(
        "--speedup-floor",
        type=float,
        default=None,
        help="require the best t8 speedup of each thread-scaling record to "
        "reach this value (only enforced for records from hosts with at "
        "least --speedup-floor-min-threads hardware threads)",
    )
    parser.add_argument("--speedup-floor-min-threads", type=int, default=8)
    args = parser.parse_args()

    with open(args.path, encoding="utf-8") as f:
        data = json.load(f)
    records = data if isinstance(data, list) else [data]

    problems = []
    if len(records) < args.min_scenarios:
        problems.append(
            f"expected >= {args.min_scenarios} scenario records, got {len(records)}"
        )
    for record in records:
        if not isinstance(record, dict):
            problems.append(f"non-object record: {record!r}")
            continue
        problems.extend(validate_record(record, args.require_ok, args))

    for p in problems:
        print(p)
    print(f"{len(records)} record(s): " + ("FAIL" if problems else "OK"))
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
