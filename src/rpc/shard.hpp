// The RPC faces of the sharded service: RpcShard (client backend) and
// ShardServer (the serving side of an lcsshard process).
//
// Conversation, all frames from rpc/frame.hpp over one blocking socket:
//
//   client                          server
//   kHello (empty)            ->
//                             <-   kHelloAck (fingerprint u64, seed u64,
//                                             num_vertices u32, num_edges u32)
//   kRunBatch (wire requests) ->
//                             <-   kResults (wire results)   on success
//                             <-   kError (utf-8 text)       on a decode or
//                                                            batch-contract error
//   kShutdown (empty)         ->
//                             <-   kShutdownAck (empty), then the server stops
//
// The handshake's payload is the coherence token: a ShardRouter compares
// every shard's fingerprint and seed before any query crosses the wire.
// RpcShard folds every transport or protocol failure into
// service::ShardUnavailable with the transport's deterministic message, so
// the router's "shard <i> unavailable: <reason>" capture is stable.
//
// ShardServer accepts on a background thread and serves each connection on
// its own thread — ShortcutService supports concurrent caller threads, so
// two routers (or a router and a probe) can share one shard.  It is used
// in-process by the sharded bench/tests and wrapped by tools/lcsshard.cpp
// as a standalone process.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rpc/transport.hpp"
#include "service/service.hpp"
#include "service/sharded.hpp"

namespace lcs::rpc {

/// ShardBackend speaking the wire protocol to a ShardServer.
class RpcShard : public service::ShardBackend {
 public:
  /// Connect and run the hello handshake; throws service::ShardUnavailable
  /// when the shard cannot be reached or answers a malformed handshake.
  explicit RpcShard(const Endpoint& endpoint);

  std::string describe() const override { return endpoint_.describe(); }
  service::ShardInfo info() override { return info_; }
  void send_batch(const std::vector<service::QueryRequest>& batch) override;
  std::vector<service::QueryResult> gather() override;

  /// Ask the server process to exit (kShutdown, await kShutdownAck).
  /// Best-effort: a shard that died first is already shut down.
  void shutdown_server();

 private:
  Endpoint endpoint_;
  Socket socket_;
  service::ShardInfo info_;
};

/// Serving side: accept loop on a background thread, one thread per
/// connection, stop() joins everything.
class ShardServer {
 public:
  /// Bind `endpoint` (tcp port 0 resolves to an ephemeral port — read it
  /// back from endpoint()) and start accepting.
  ShardServer(std::shared_ptr<const service::ShortcutService> service,
              const Endpoint& endpoint);
  ~ShardServer();
  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  const Endpoint& endpoint() const { return listener_.endpoint(); }

  /// Block until a client sends kShutdown (or stop() is called).
  void wait_for_shutdown();

  /// Stop accepting, wake every connection thread, join them all.
  /// Idempotent; also called by the destructor.
  void stop();

 private:
  void accept_loop();
  void serve_connection(Socket& conn);

  std::shared_ptr<const service::ShortcutService> service_;
  Listener listener_;
  std::thread accept_thread_;

  std::mutex mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool stopped_ = false;
  std::list<Socket> connections_;          ///< guarded by mu_; closed after join
  std::vector<std::thread> conn_threads_;  ///< guarded by mu_
};

}  // namespace lcs::rpc
