// The RPC faces of the sharded service: RpcShard (client backend) and
// ShardServer (the serving side of an lcsshard process).
//
// Conversation, all frames from rpc/frame.hpp over one blocking socket:
//
//   client                          server
//   kHello (empty)            ->
//                             <-   kHelloAck (fingerprint u64, seed u64,
//                                             num_vertices u32, num_edges u32)
//   kRunBatch (wire requests) ->
//                             <-   kResults (wire results)   on success
//                             <-   kError (utf-8 text)       on a decode or
//                                                            batch-contract error
//   kShutdown (empty)         ->
//                             <-   kShutdownAck (empty), then the server stops
//
// The handshake's payload is the coherence token: a ShardRouter compares
// every shard's fingerprint and seed before any query crosses the wire.
// RpcShard folds every transport or protocol failure into
// service::ShardUnavailable with the transport's deterministic message, so
// the router's "shard <i> unavailable: <reason>" capture is stable.
//
// ShardServer accepts on a background thread and serves each connection on
// its own thread — ShortcutService supports concurrent caller threads, so
// two routers (or a router and a probe) can share one shard.  It is used
// in-process by the sharded bench/tests and wrapped by tools/lcsshard.cpp
// as a standalone process.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rpc/transport.hpp"
#include "service/service.hpp"
#include "service/sharded.hpp"

namespace lcs::rpc {

/// ShardBackend speaking the wire protocol to a ShardServer.
class RpcShard : public service::ShardBackend {
 public:
  /// Dial and run the hello handshake.  Never throws: a shard that cannot
  /// be reached (or answers a malformed handshake) is recorded as detached
  /// with its deterministic failure text, which info()/send_batch/gather
  /// then throw as service::ShardUnavailable and reattach() retries — so a
  /// replicated router can attach a fleet whose member is mid-restart.
  /// `deadlines` bounds the dial and every subsequent frame; the default
  /// (no deadlines) blocks exactly as before.
  explicit RpcShard(const Endpoint& endpoint, const DeadlineOptions& deadlines = {});

  std::string describe() const override { return endpoint_.describe(); }
  service::ShardInfo info() override;
  /// Re-dial and re-run the kHello handshake — the router's down-shard
  /// probe.  Throws service::ShardUnavailable while the shard stays
  /// unreachable.
  service::ShardInfo reattach() override;
  void send_batch(const std::vector<service::QueryRequest>& batch) override;
  std::vector<service::QueryResult> gather() override;

  /// Ask the server process to exit (kShutdown, await kShutdownAck).
  /// Best-effort: a shard that died first is already shut down.
  void shutdown_server();

 private:
  void dial();  ///< connect + kHello; fills info_ or throws ShardUnavailable

  Endpoint endpoint_;
  DeadlineOptions deadlines_;
  Socket socket_;
  service::ShardInfo info_;
  bool attached_ = false;
  std::string last_error_;  ///< deterministic reason while detached
};

/// Serving side: accept loop on a background thread, one thread per
/// connection, stop() joins everything.
class ShardServer {
 public:
  /// Bind `endpoint` (tcp port 0 resolves to an ephemeral port — read it
  /// back from endpoint()) and start accepting.  `send_deadline_ms` > 0
  /// bounds every reply write so a stalled client cannot pin a connection
  /// thread forever; 0 (the default) blocks as before.
  ShardServer(std::shared_ptr<const service::ShortcutService> service,
              const Endpoint& endpoint, int send_deadline_ms = 0);
  ~ShardServer();
  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  const Endpoint& endpoint() const { return listener_.endpoint(); }

  /// Block until a client sends kShutdown (or stop() is called).
  void wait_for_shutdown();

  /// Stop accepting, wake every connection thread, join them all.
  /// Idempotent; also called by the destructor.
  void stop();

 private:
  void accept_loop();
  void serve_connection(Socket& conn);

  std::shared_ptr<const service::ShortcutService> service_;
  Listener listener_;
  int send_deadline_ms_ = 0;
  std::thread accept_thread_;

  std::mutex mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool stopped_ = false;
  std::list<Socket> connections_;          ///< guarded by mu_; closed after join
  std::vector<std::thread> conn_threads_;  ///< guarded by mu_
};

}  // namespace lcs::rpc
