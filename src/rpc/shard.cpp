#include "rpc/shard.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "service/wire.hpp"
#include "util/bytes.hpp"
#include "util/check.hpp"

namespace lcs::rpc {

namespace {

Frame make_frame(FrameType type, std::vector<std::byte> payload = {}) {
  Frame f;
  f.type = type;
  f.payload = std::move(payload);
  return f;
}

std::vector<std::byte> text_payload(const std::string& text) {
  std::vector<std::byte> out(text.size());
  if (!text.empty()) std::memcpy(out.data(), text.data(), text.size());
  return out;
}

std::string payload_text(const Frame& frame) {
  return std::string(reinterpret_cast<const char*>(frame.payload.data()),
                     frame.payload.size());
}

[[noreturn]] void unexpected(const Frame& frame, const char* want) {
  throw std::runtime_error(std::string("rpc: unexpected frame type ") +
                           frame_type_name(frame.type) + " (want " + want + ")");
}

}  // namespace

RpcShard::RpcShard(const Endpoint& endpoint, const DeadlineOptions& deadlines)
    : endpoint_(endpoint), deadlines_(deadlines) {
  try {
    dial();
  } catch (const service::ShardUnavailable&) {
    // Recorded in last_error_ by dial(); surfaced lazily so a replicated
    // router can attach around a shard that is down right now.
  }
}

void RpcShard::dial() {
  attached_ = false;
  socket_.close();
  try {
    socket_ = connect_endpoint(endpoint_, deadlines_);
    socket_.send_frame(make_frame(FrameType::kHello));
    const Frame ack = socket_.recv_frame();
    if (ack.type != FrameType::kHelloAck) unexpected(ack, "hello_ack");
    ByteReader r(ack.payload.data(), ack.payload.size(), "rpc: wire ");
    info_.fingerprint = r.u64();
    info_.seed = r.u64();
    info_.num_vertices = r.u32();
    info_.num_edges = r.u32();
    if (!r.done()) throw std::runtime_error("rpc: wire payload has trailing bytes");
    attached_ = true;
    last_error_.clear();
  } catch (const std::exception& e) {
    socket_.close();
    last_error_ = e.what();
    throw service::ShardUnavailable(last_error_);
  }
}

service::ShardInfo RpcShard::info() {
  if (!attached_) throw service::ShardUnavailable(last_error_);
  return info_;
}

service::ShardInfo RpcShard::reattach() {
  dial();  // fresh connection + kHello: the deterministic health probe
  return info_;
}

void RpcShard::send_batch(const std::vector<service::QueryRequest>& batch) {
  if (!attached_) throw service::ShardUnavailable(last_error_);
  try {
    socket_.send_frame(make_frame(FrameType::kRunBatch, service::encode_requests(batch)));
  } catch (const std::exception& e) {
    attached_ = false;  // the stream is dead; reattach() re-dials
    last_error_ = e.what();
    throw service::ShardUnavailable(last_error_);
  }
}

std::vector<service::QueryResult> RpcShard::gather() {
  if (!attached_) throw service::ShardUnavailable(last_error_);
  try {
    const Frame reply = socket_.recv_frame();
    if (reply.type == FrameType::kError)
      throw service::ShardUnavailable(payload_text(reply));
    if (reply.type != FrameType::kResults) unexpected(reply, "results");
    return service::decode_results(reply.payload.data(), reply.payload.size());
  } catch (const service::ShardUnavailable&) {
    // A kError reply is a per-batch contract failure, not a dead stream:
    // the connection stays attached and usable.
    throw;
  } catch (const std::exception& e) {
    attached_ = false;  // mid-frame loss or deadline: the stream is unusable
    last_error_ = e.what();
    throw service::ShardUnavailable(last_error_);
  }
}

void RpcShard::shutdown_server() {
  if (!attached_) return;  // a shard that died first is already shut down
  try {
    socket_.send_frame(make_frame(FrameType::kShutdown));
    while (true) {
      const Frame reply = socket_.recv_frame();
      if (reply.type == FrameType::kShutdownAck) break;
    }
  } catch (const std::exception&) {
    // Best-effort: the server may have exited before acking.
  }
}

ShardServer::ShardServer(std::shared_ptr<const service::ShortcutService> service,
                         const Endpoint& endpoint, int send_deadline_ms)
    : service_(std::move(service)), send_deadline_ms_(send_deadline_ms) {
  LCS_REQUIRE(service_ != nullptr, "shard server needs a service");
  listener_ = Listener::listen(endpoint);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

ShardServer::~ShardServer() { stop(); }

void ShardServer::accept_loop() {
  while (true) {
    Socket conn = listener_.accept();
    if (!conn.valid()) break;  // listener closed
    // Replies carry the server's send budget; reads stay unbounded because
    // an idle-but-connected client is normal between batches.
    conn.set_deadlines(send_deadline_ms_, 0);
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) break;
    connections_.push_back(std::move(conn));
    Socket& ref = connections_.back();
    conn_threads_.emplace_back([this, &ref] { serve_connection(ref); });
  }
}

void ShardServer::serve_connection(Socket& conn) {
  while (true) {
    Frame frame;
    try {
      frame = conn.recv_frame();
    } catch (const std::exception&) {
      return;  // client gone (or stop() shut the socket down)
    }
    try {
      switch (frame.type) {
        case FrameType::kHello: {
          ByteBuf buf;
          buf.u64(service_->snapshot().fingerprint());
          buf.u64(service_->seed());
          buf.u32(service_->snapshot().num_vertices());
          buf.u32(service_->snapshot().num_edges());
          conn.send_frame(make_frame(FrameType::kHelloAck, buf.take()));
          break;
        }
        case FrameType::kRunBatch: {
          Frame reply;
          try {
            const std::vector<service::QueryRequest> batch =
                service::decode_requests(frame.payload.data(), frame.payload.size());
            reply = make_frame(FrameType::kResults,
                               service::encode_results(service_->run_batch(batch)));
          } catch (const std::exception& e) {
            // Decode and batch-contract failures are per-request errors the
            // client should see verbatim; the connection stays usable.
            reply = make_frame(FrameType::kError, text_payload(e.what()));
          }
          conn.send_frame(reply);
          break;
        }
        case FrameType::kShutdown: {
          conn.send_frame(make_frame(FrameType::kShutdownAck));
          {
            std::lock_guard<std::mutex> lock(mu_);
            shutdown_requested_ = true;
          }
          shutdown_cv_.notify_all();
          return;
        }
        default:
          conn.send_frame(make_frame(
              FrameType::kError,
              text_payload(std::string("rpc: unexpected frame type ") +
                           frame_type_name(frame.type))));
          break;
      }
    } catch (const std::exception&) {
      return;  // send failed: client gone mid-reply
    }
  }
}

void ShardServer::wait_for_shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void ShardServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // No new connections past this point: wake every connection thread
  // blocked in recv_frame, then join them all before the sockets die.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Socket& conn : connections_) conn.shutdown_both();
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
  std::lock_guard<std::mutex> lock(mu_);
  connections_.clear();
}

}  // namespace lcs::rpc
