#include "rpc/frame.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "util/bytes.hpp"

namespace lcs::rpc {

namespace {

constexpr char kMagic[4] = {'L', 'R', 'P', 'C'};

[[noreturn]] void bad(const std::string& what) { throw std::runtime_error("rpc: " + what); }

/// The header image that is checksummed and sent: trivially copyable,
/// little-endian on every supported host (the snapshot format already
/// rejects foreign endianness at the file layer; the wire format inherits
/// the assumption and the version byte guards evolution).
struct WireHeader {
  char magic[4];
  std::uint8_t version;
  std::uint8_t type;
  std::uint16_t reserved;
  std::uint64_t payload_bytes;
  std::uint64_t payload_checksum;
  std::uint64_t header_checksum;  ///< over this struct with the field zeroed
};
static_assert(sizeof(WireHeader) == kFrameHeaderBytes,
              "header layout is part of the wire format");
static_assert(std::is_trivially_copyable_v<WireHeader>);

bool known_frame_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kHello) &&
         t <= static_cast<std::uint8_t>(FrameType::kShutdownAck);
}

}  // namespace

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kHelloAck: return "hello_ack";
    case FrameType::kRunBatch: return "run_batch";
    case FrameType::kResults: return "results";
    case FrameType::kError: return "error";
    case FrameType::kShutdown: return "shutdown";
    case FrameType::kShutdownAck: return "shutdown_ack";
  }
  return "unknown";
}

std::vector<std::byte> encode_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxFramePayloadBytes) bad("frame payload too large to encode");
  WireHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kRpcProtocolVersion;
  h.type = static_cast<std::uint8_t>(frame.type);
  h.reserved = 0;
  h.payload_bytes = frame.payload.size();
  h.payload_checksum = checksum_bytes(frame.payload.data(), frame.payload.size());
  h.header_checksum = 0;
  h.header_checksum = checksum_bytes(&h, sizeof(h));

  std::vector<std::byte> out(kFrameHeaderBytes + frame.payload.size());
  std::memcpy(out.data(), &h, sizeof(h));
  if (!frame.payload.empty())
    std::memcpy(out.data() + kFrameHeaderBytes, frame.payload.data(), frame.payload.size());
  return out;
}

FrameHeader decode_frame_header(const std::byte* data, std::size_t size) {
  if (size < kFrameHeaderBytes) bad("frame truncated");
  WireHeader h{};
  std::memcpy(&h, data, sizeof(h));
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) bad("bad frame magic");
  if (h.version != kRpcProtocolVersion)
    bad("unsupported protocol version " + std::to_string(h.version));
  if (h.reserved != 0) bad("reserved frame bits set");
  if (!known_frame_type(h.type)) bad("unknown frame type " + std::to_string(h.type));
  if (h.payload_bytes > kMaxFramePayloadBytes)
    bad("frame payload too large (" + std::to_string(h.payload_bytes) + " bytes)");
  WireHeader unsummed = h;
  unsummed.header_checksum = 0;
  if (checksum_bytes(&unsummed, sizeof(unsummed)) != h.header_checksum)
    bad("frame header checksum mismatch");
  FrameHeader out;
  out.type = static_cast<FrameType>(h.type);
  out.payload_bytes = h.payload_bytes;
  out.payload_checksum = h.payload_checksum;
  return out;
}

void verify_frame_payload(const FrameHeader& header, const std::byte* data, std::size_t size) {
  if (size != header.payload_bytes) bad("frame truncated");
  if (checksum_bytes(data, size) != header.payload_checksum)
    bad("frame payload checksum mismatch");
}

Frame decode_frame(const std::byte* data, std::size_t size) {
  const FrameHeader header = decode_frame_header(data, size);
  if (size < kFrameHeaderBytes + header.payload_bytes) bad("frame truncated");
  if (size > kFrameHeaderBytes + header.payload_bytes) bad("frame has trailing bytes");
  verify_frame_payload(header, data + kFrameHeaderBytes, size - kFrameHeaderBytes);
  Frame frame;
  frame.type = header.type;
  frame.payload.assign(data + kFrameHeaderBytes, data + size);
  return frame;
}

}  // namespace lcs::rpc
