#include "rpc/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

namespace lcs::rpc {

namespace {

[[noreturn]] void bad(const std::string& what) { throw std::runtime_error("rpc: " + what); }

/// An absolute deadline derived from a millisecond budget.  budget_ms == 0
/// means "none"; the error text always quotes the configured budget, never
/// a measured elapsed time, so deadline failures are deterministic strings.
struct Deadline {
  int budget_ms = 0;
  std::chrono::steady_clock::time_point at{};

  static Deadline after(int budget_ms) {
    Deadline d;
    d.budget_ms = budget_ms;
    if (budget_ms > 0)
      d.at = std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
    return d;
  }

  int remaining_ms() const {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          at - std::chrono::steady_clock::now())
                          .count();
    return left > 0 ? static_cast<int>(left) : 0;
  }

  [[noreturn]] void expired() const {
    bad("deadline exceeded after " + std::to_string(budget_ms) + " ms");
  }
};

/// Block until `fd` is ready for `events` or the deadline passes (throws
/// the deadline error).  No-op without a deadline: the plain blocking
/// syscalls already wait.
void poll_or_deadline(int fd, short events, const Deadline& deadline) {
  while (true) {
    pollfd p{fd, events, 0};
    const int ready = ::poll(&p, 1, deadline.remaining_ms());
    if (ready < 0) {
      if (errno == EINTR) continue;
      bad("connection lost");
    }
    if (ready == 0) deadline.expired();
    return;
  }
}

/// Full-write loop; distinguishes nothing about errno — any failure is the
/// one deterministic "connection lost" (or the deadline error under a send
/// budget).  With a deadline the writes are non-blocking so a peer that
/// stops reading cannot pin the caller past the budget.
void write_all(int fd, const std::byte* data, std::size_t size, const Deadline& deadline) {
  std::size_t done = 0;
  while (done < size) {
    int flags = MSG_NOSIGNAL;
    if (deadline.budget_ms > 0) {
      poll_or_deadline(fd, POLLOUT, deadline);
      flags |= MSG_DONTWAIT;
    }
    const ssize_t wrote = ::send(fd, data + done, size - done, flags);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (deadline.budget_ms > 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
      bad("connection lost");
    }
    if (wrote == 0) bad("connection lost");
    done += static_cast<std::size_t>(wrote);
  }
}

/// Full-read loop.  A clean EOF before the first byte reports "closed"
/// (normal peer departure at a frame boundary); an EOF after it reports
/// "lost" (a torn frame); a recv budget that expires first reports the
/// deadline error.
void read_all(int fd, std::byte* data, std::size_t size, bool at_boundary,
              const Deadline& deadline) {
  std::size_t done = 0;
  while (done < size) {
    if (deadline.budget_ms > 0) poll_or_deadline(fd, POLLIN, deadline);
    const ssize_t got = ::read(fd, data + done, size - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      bad("connection lost");
    }
    if (got == 0) {
      if (at_boundary && done == 0) bad("connection closed");
      bad("connection lost");
    }
    done += static_cast<std::size_t>(got);
  }
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    bad("unix socket path too long: '" + path + "'");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_address(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = (host == "localhost") ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1)
    bad("bad tcp host '" + host + "' (numeric IPv4 or localhost)");
  return addr;
}

}  // namespace

Endpoint Endpoint::parse(const std::string& spec) {
  Endpoint e;
  if (spec.rfind("unix:", 0) == 0) {
    e.kind = Kind::kUnix;
    e.path = spec.substr(5);
    if (e.path.empty())
      throw std::invalid_argument("rpc: bad endpoint '" + spec + "' (empty unix path)");
    return e;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size())
      throw std::invalid_argument("rpc: bad endpoint '" + spec + "' (want tcp:host:port)");
    e.kind = Kind::kTcp;
    e.host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    char* end = nullptr;
    const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
    if (end == port_str.c_str() || *end != '\0' || port > 65535)
      throw std::invalid_argument("rpc: bad endpoint '" + spec + "' (bad port)");
    e.port = static_cast<std::uint16_t>(port);
    return e;
  }
  throw std::invalid_argument("rpc: bad endpoint '" + spec + "' (want unix:... or tcp:...)");
}

std::string Endpoint::describe() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_),
      send_deadline_ms_(other.send_deadline_ms_),
      recv_deadline_ms_(other.recv_deadline_ms_) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    send_deadline_ms_ = other.send_deadline_ms_;
    recv_deadline_ms_ = other.recv_deadline_ms_;
    other.fd_ = -1;
  }
  return *this;
}

Socket::~Socket() { close(); }

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::send_frame(const Frame& frame) {
  if (fd_ < 0) bad("connection lost");
  const std::vector<std::byte> bytes = encode_frame(frame);
  write_all(fd_, bytes.data(), bytes.size(), Deadline::after(send_deadline_ms_));
}

Frame Socket::recv_frame() {
  if (fd_ < 0) bad("connection lost");
  // One budget covers the whole frame: a peer trickling header bytes and a
  // peer stalling mid-payload hit the same deterministic deadline error.
  const Deadline deadline = Deadline::after(recv_deadline_ms_);
  std::byte header_bytes[kFrameHeaderBytes];
  read_all(fd_, header_bytes, kFrameHeaderBytes, /*at_boundary=*/true, deadline);
  const FrameHeader header = decode_frame_header(header_bytes, kFrameHeaderBytes);
  Frame frame;
  frame.type = header.type;
  frame.payload.resize(header.payload_bytes);
  read_all(fd_, frame.payload.data(), frame.payload.size(), /*at_boundary=*/false, deadline);
  verify_frame_payload(header, frame.payload.data(), frame.payload.size());
  return frame;
}

std::pair<Socket, Socket> Socket::make_pair() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) bad("socketpair failed");
  return {Socket(fds[0]), Socket(fds[1])};
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_.exchange(-1)), endpoint_(std::move(other.endpoint_)) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_.store(other.fd_.exchange(-1));
    endpoint_ = std::move(other.endpoint_);
  }
  return *this;
}

Listener::~Listener() { close(); }

Listener Listener::listen(const Endpoint& endpoint) {
  Listener l;
  l.endpoint_ = endpoint;
  int fd = -1;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    std::error_code ignored;
    std::filesystem::remove(endpoint.path, ignored);  // stale socket file
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) bad("cannot create socket for " + endpoint.describe());
    const sockaddr_un addr = unix_address(endpoint.path);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
      bad("cannot bind " + endpoint.describe());
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) bad("cannot create socket for " + endpoint.describe());
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = tcp_address(endpoint.host, endpoint.port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
      bad("cannot bind " + endpoint.describe());
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
      l.endpoint_.port = ntohs(addr.sin_port);
  }
  if (::listen(fd, SOMAXCONN) != 0) bad("cannot listen on " + endpoint.describe());
  l.fd_.store(fd);
  return l;
}

Socket Listener::accept() {
  while (true) {
    const int fd = fd_.load();
    if (fd < 0) break;
    // Poll with a short timeout so a concurrent close() is noticed: a
    // blocking accept() on a closed fd is not reliably interrupted.
    pollfd p{fd, POLLIN, 0};
    const int ready = ::poll(&p, 1, /*timeout_ms=*/50);
    if (fd_.load() < 0) break;
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Socket();
    }
    if (ready == 0) continue;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Socket();
    }
    return Socket(conn);
  }
  return Socket();
}

void Listener::close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    ::close(fd);
    if (endpoint_.kind == Endpoint::Kind::kUnix) {
      std::error_code ignored;
      std::filesystem::remove(endpoint_.path, ignored);
    }
  }
}

namespace {

/// Connect with an optional budget: non-blocking connect, poll for
/// writability, then read back SO_ERROR.  A refusal is the usual "cannot
/// connect"; running out the budget is the deadline error.
int connect_with_deadline(int fd, const sockaddr* addr, socklen_t len,
                          const Endpoint& endpoint, const Deadline& deadline) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, addr, len);
  if (rc != 0 && (errno == EINPROGRESS || errno == EAGAIN)) {
    while (true) {
      pollfd p{fd, POLLOUT, 0};
      const int ready = ::poll(&p, 1, deadline.remaining_ms());
      if (ready < 0) {
        if (errno == EINTR) continue;
        return -1;
      }
      if (ready == 0) {
        ::close(fd);
        deadline.expired();
      }
      break;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 || err != 0) return -1;
    rc = 0;
  }
  ::fcntl(fd, F_SETFL, flags);
  (void)endpoint;
  return rc;
}

}  // namespace

Socket connect_endpoint(const Endpoint& endpoint, const DeadlineOptions& deadlines) {
  int fd = -1;
  int rc = -1;
  const Deadline deadline = Deadline::after(deadlines.connect_ms);
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) bad("cannot create socket for " + endpoint.describe());
    const sockaddr_un addr = unix_address(endpoint.path);
    if (deadline.budget_ms > 0)
      rc = connect_with_deadline(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr),
                                 endpoint, deadline);
    else
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) bad("cannot create socket for " + endpoint.describe());
    const sockaddr_in addr = tcp_address(endpoint.host, endpoint.port);
    if (deadline.budget_ms > 0)
      rc = connect_with_deadline(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr),
                                 endpoint, deadline);
    else
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  }
  if (rc != 0) {
    ::close(fd);
    bad("cannot connect to " + endpoint.describe());
  }
  Socket socket(fd);
  socket.set_deadlines(deadlines.call_ms, deadlines.call_ms);
  return socket;
}

}  // namespace lcs::rpc
