// RPC frame format v1: length-prefixed, versioned, checksummed.
//
// Every message between an lcsrouter frontend and an lcsshard server is
// one frame: a fixed 32-byte little-endian header followed by the payload
// bytes.  The header carries the protocol version, the frame type, the
// payload length, and two checksums (util/bytes.hpp checksum_bytes — the
// same word-chain the snapshot format uses): one over the header with the
// checksum field zeroed, one over the payload.  A reader therefore rejects
// torn, truncated, bit-flipped or version-skewed frames with a
// deterministic "rpc: ..." error before interpreting a single payload
// byte — mirroring the snapshot format's verification discipline
// (docs/snapshot_format.md) on the wire.
//
//   offset  field                 bytes
//   0       magic "LRPC"          4
//   4       version (u8)          1
//   5       type (u8)             1
//   6       reserved (u16, 0)     2
//   8       payload_bytes (u64)   8
//   16      payload_checksum      8
//   24      header_checksum       8
//
// Validation order (each step's failure message is exact and stable):
// magic, version, reserved bits, frame type, payload bound, header
// checksum, then — once the payload bytes are present — payload checksum.
// Any layout change bumps kRpcProtocolVersion.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lcs::rpc {

inline constexpr std::uint8_t kRpcProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 32;

/// Frames larger than this are rejected before any allocation: a corrupted
/// or hostile length prefix must not drive the reader into a huge resize.
inline constexpr std::uint64_t kMaxFramePayloadBytes = 1ull << 30;

enum class FrameType : std::uint8_t {
  kHello = 1,        ///< router -> shard: empty payload, opens the handshake
  kHelloAck = 2,     ///< shard -> router: fingerprint u64 + seed u64 + n u32 + m u32
  kRunBatch = 3,     ///< router -> shard: wire-encoded QueryRequest sub-batch
  kResults = 4,      ///< shard -> router: wire-encoded QueryResult vector
  kError = 5,        ///< shard -> router: deterministic error text (utf-8)
  kShutdown = 6,     ///< router -> shard: empty payload, asks the server to exit
  kShutdownAck = 7,  ///< shard -> router: empty payload, sent before exiting
};

const char* frame_type_name(FrameType t);

struct Frame {
  FrameType type = FrameType::kHello;
  std::vector<std::byte> payload;
};

/// Decoded header of an incoming frame: what a streaming reader needs to
/// know before the payload bytes arrive.
struct FrameHeader {
  FrameType type = FrameType::kHello;
  std::uint64_t payload_bytes = 0;
  std::uint64_t payload_checksum = 0;
};

/// Encode `frame` as header + payload bytes.
std::vector<std::byte> encode_frame(const Frame& frame);

/// Validate and decode exactly kFrameHeaderBytes of header.  Throws
/// std::runtime_error("rpc: ...") on truncation, bad magic, version skew,
/// reserved bits, unknown type, oversized payload, or checksum mismatch.
FrameHeader decode_frame_header(const std::byte* data, std::size_t size);

/// Verify the payload bytes against the header's checksum; throws
/// std::runtime_error("rpc: frame payload checksum mismatch") otherwise.
void verify_frame_payload(const FrameHeader& header, const std::byte* data, std::size_t size);

/// Decode one complete frame from exactly `size` bytes (header + payload,
/// nothing more).  The non-streaming entry point the protocol tests drive
/// the corruption matrix through.
Frame decode_frame(const std::byte* data, std::size_t size);

}  // namespace lcs::rpc
