// Blocking socket transport for the framed RPC protocol.
//
// One deliberately small surface: parse an endpoint spec ("unix:/path" or
// "tcp:host:port"), listen / connect / accept, and move whole frames over
// a connected socket with full-read/full-write loops.  Everything is
// blocking — the router's scatter/gather and the shard's serve loop are
// sequential per connection, and cross-shard parallelism comes from having
// one connection per shard process, not from async I/O.
//
// Failure vocabulary is deterministic: transport errors throw
// std::runtime_error("rpc: ...") with stable messages ("connection
// closed", "connection lost", frame validation errors from
// rpc/frame.hpp), because the router folds them into per-query ok=false
// results whose digests must not vary run to run.
//
// PR 8 adds deadlines to the same vocabulary: a socket configured with
// per-frame send/recv budgets polls before every I/O step and fails a
// frame that cannot complete in time with the deterministic
// "rpc: deadline exceeded after <ms> ms" (the *configured* budget, never
// a measured elapsed time, so the text is stable run to run).  Without a
// budget (the default), behavior is byte-identical to PR 7's fully
// blocking transport.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

#include "rpc/frame.hpp"

namespace lcs::rpc {

/// A parsed shard address: "unix:/path/to.sock" or "tcp:host:port".
struct Endpoint {
  enum class Kind : std::uint8_t { kUnix, kTcp };

  Kind kind = Kind::kUnix;
  std::string path;         ///< unix: filesystem path of the socket
  std::string host;         ///< tcp: numeric IPv4 or "localhost"
  std::uint16_t port = 0;   ///< tcp: port (0 = ephemeral, resolved at listen)

  /// Parse a spec; throws std::invalid_argument("rpc: bad endpoint ...").
  static Endpoint parse(const std::string& spec);
  /// The canonical spec string ("unix:/path", "tcp:host:port").
  std::string describe() const;
};

/// Deadline budgets of one RPC client conversation, in milliseconds.
/// 0 means "no deadline" — block indefinitely, exactly as before PR 8.
struct DeadlineOptions {
  int connect_ms = 0;  ///< budget for establishing the connection
  int call_ms = 0;     ///< whole-frame budget for each send_frame/recv_frame
};

/// RAII connected socket.  Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();
  /// Shut down both directions without closing the fd: wakes a thread
  /// blocked in recv_frame() on this socket (used by server stop()).
  void shutdown_both();

  /// Per-frame deadlines (0 = block indefinitely).  A send_frame that
  /// cannot complete within send_ms — or a recv_frame within recv_ms —
  /// throws the deterministic "rpc: deadline exceeded after <ms> ms",
  /// quoting the configured budget.
  void set_deadlines(int send_ms, int recv_ms) {
    send_deadline_ms_ = send_ms;
    recv_deadline_ms_ = recv_ms;
  }
  int send_deadline_ms() const { return send_deadline_ms_; }
  int recv_deadline_ms() const { return recv_deadline_ms_; }

  /// Write one whole frame; throws "rpc: connection lost" when the peer is
  /// gone mid-write, or the deadline error under a send budget.
  void send_frame(const Frame& frame);

  /// Read one whole frame: exactly one header, validated, then exactly
  /// payload_bytes, validated.  Throws "rpc: connection closed" on a clean
  /// EOF at a frame boundary, "rpc: connection lost" mid-frame or on any
  /// socket error, the frame.hpp errors on malformed bytes, and the
  /// deadline error when a recv budget expires before the frame is whole.
  Frame recv_frame();

  /// An AF_UNIX socketpair (test harness for the framing layer).
  static std::pair<Socket, Socket> make_pair();

 private:
  int fd_ = -1;
  int send_deadline_ms_ = 0;
  int recv_deadline_ms_ = 0;
};

/// Bound + listening server socket.
class Listener {
 public:
  Listener() = default;
  Listener(Listener&&) noexcept;
  Listener& operator=(Listener&&) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  /// Bind and listen on `endpoint`.  A unix endpoint unlinks a stale
  /// socket file first; a tcp endpoint with port 0 gets an ephemeral port
  /// (read it back from endpoint()).
  static Listener listen(const Endpoint& endpoint);

  /// The endpoint actually bound (tcp port resolved).
  const Endpoint& endpoint() const { return endpoint_; }

  bool valid() const { return fd_.load() >= 0; }

  /// Block until a client connects (polling so close() from another thread
  /// is noticed); returns an invalid Socket once the listener is closed.
  Socket accept();

  /// Close the listening socket (accept() returns invalid afterwards) and
  /// unlink a unix socket file.  Safe to call from a thread other than the
  /// one blocked in accept(): the accept loop polls and notices the close
  /// within its poll interval.
  void close();

 private:
  std::atomic<int> fd_{-1};
  Endpoint endpoint_;
};

/// Connect to `endpoint`; throws "rpc: cannot connect to <spec>" on
/// refusal, or "rpc: deadline exceeded after <ms> ms" when
/// `deadlines.connect_ms` > 0 and the peer does not accept in time.  The
/// returned socket carries `deadlines.call_ms` as both frame budgets.
Socket connect_endpoint(const Endpoint& endpoint, const DeadlineOptions& deadlines = {});

}  // namespace lcs::rpc
