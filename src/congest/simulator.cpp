#include "congest/simulator.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace lcs::congest {

std::uint32_t NodeContext::round() const { return sim_.round_; }
const Graph& NodeContext::topology() const { return *sim_.g_; }

std::span<const Message> NodeContext::inbox() const { return sim_.inbox_[node_]; }

void NodeContext::send(EdgeId via_edge, const Message& m) {
  const std::size_t d = sim_.dir_index(via_edge, node_);
  LCS_REQUIRE(sim_.sent_this_round_[d] < sim_.capacity_,
              "edge capacity exceeded; CONGEST programs must queue");
  ++sim_.sent_this_round_[d];
  sim_.outbox_[d].push_back(m);
}

std::uint32_t NodeContext::remaining_capacity(EdgeId via_edge) const {
  const std::size_t d = sim_.dir_index(via_edge, node_);
  return sim_.capacity_ - sim_.sent_this_round_[d];
}

Simulator::Simulator(const Graph& g, std::uint32_t edge_capacity)
    : g_(&g), capacity_(edge_capacity) {
  LCS_REQUIRE(edge_capacity >= 1, "edge capacity must be positive");
  const std::size_t dirs = 2 * static_cast<std::size_t>(g.num_edges());
  outbox_.resize(dirs);
  inbox_.resize(g.num_vertices());
  sent_this_round_.assign(dirs, 0);
  cumulative_load_.assign(dirs, 0);
}

std::size_t Simulator::dir_index(EdgeId e, VertexId from) const {
  const graph::Edge ed = g_->edge(e);
  LCS_REQUIRE(ed.u == from || ed.v == from, "sender is not an endpoint of the edge");
  return 2 * static_cast<std::size_t>(e) + (ed.u == from ? 0 : 1);
}

RunStats Simulator::run(Program& p, std::uint32_t max_rounds) {
  RunStats stats;
  for (std::uint32_t r = 0; r < max_rounds; ++r) {
    round_ = r;
    std::fill(sent_this_round_.begin(), sent_this_round_.end(), 0);

    const std::uint32_t n = g_->num_vertices();
    if (parallel_ && num_threads() > 1) {
      // Nodes write disjoint per-directed-edge outboxes / send counters, so
      // the turns commute; a capacity violation still surfaces as the same
      // exception the sequential loop would throw first (see header).
      parallel_for(0, n, default_grain(n, 64), [&](std::size_t v) {
        NodeContext ctx(*this, static_cast<VertexId>(v));
        p.on_round(ctx);
      });
    } else {
      for (VertexId v = 0; v < n; ++v) {
        NodeContext ctx(*this, v);
        p.on_round(ctx);
      }
    }
    ++stats.rounds;

    // Deliver: move outboxes into the receivers' inboxes for next round.
    bool in_flight = false;
    for (auto& box : inbox_) box.clear();
    for (EdgeId e = 0; e < g_->num_edges(); ++e) {
      const graph::Edge ed = g_->edge(e);
      for (int dir = 0; dir < 2; ++dir) {
        const std::size_t d = 2 * static_cast<std::size_t>(e) + dir;
        if (outbox_[d].empty()) continue;
        in_flight = true;
        const VertexId to = dir == 0 ? ed.v : ed.u;
        cumulative_load_[d] += outbox_[d].size();
        messages_ += outbox_[d].size();
        stats.messages += outbox_[d].size();
        auto& box = inbox_[to];
        box.insert(box.end(), outbox_[d].begin(), outbox_[d].end());
        outbox_[d].clear();
      }
    }

    if (!in_flight && p.idle()) {
      stats.completed = true;
      break;
    }
  }
  stats.max_edge_load = cumulative_load_.empty()
                            ? 0
                            : *std::max_element(cumulative_load_.begin(), cumulative_load_.end());
  return stats;
}

}  // namespace lcs::congest
