#include "congest/simulator.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace lcs::congest {

std::uint32_t NodeContext::round() const { return sim_.round_; }
const Graph& NodeContext::topology() const { return *sim_.g_; }

std::span<const Message> NodeContext::inbox() const { return sim_.inbox_[node_]; }

void NodeContext::send(EdgeId via_edge, const Message& m) {
  const std::size_t d = sim_.dir_index(via_edge, node_);
  LCS_REQUIRE(sim_.sent_this_round_[d] < sim_.capacity_,
              "edge capacity exceeded; CONGEST programs must queue");
  ++sim_.sent_this_round_[d];
  sim_.outbox_[d].push_back(m);
}

std::uint32_t NodeContext::remaining_capacity(EdgeId via_edge) const {
  const std::size_t d = sim_.dir_index(via_edge, node_);
  return sim_.capacity_ - sim_.sent_this_round_[d];
}

Simulator::Simulator(const Graph& g, std::uint32_t edge_capacity)
    : g_(&g), capacity_(edge_capacity) {
  LCS_REQUIRE(edge_capacity >= 1, "edge capacity must be positive");
  const std::size_t dirs = 2 * static_cast<std::size_t>(g.num_edges());
  outbox_.resize(dirs);
  inbox_.resize(g.num_vertices());
  sent_this_round_.assign(dirs, 0);
  cumulative_load_.assign(dirs, 0);
}

std::size_t Simulator::dir_index(EdgeId e, VertexId from) const {
  const graph::Edge ed = g_->edge(e);
  LCS_REQUIRE(ed.u == from || ed.v == from, "sender is not an endpoint of the edge");
  return 2 * static_cast<std::size_t>(e) + (ed.u == from ? 0 : 1);
}

RunStats Simulator::run(Program& p, std::uint32_t max_rounds) {
  RunStats stats;
  for (std::uint32_t r = 0; r < max_rounds; ++r) {
    round_ = r;
    std::fill(sent_this_round_.begin(), sent_this_round_.end(), 0);

    const std::uint32_t n = g_->num_vertices();
    if (parallel_ && num_threads() > 1) {
      // Nodes write disjoint per-directed-edge outboxes / send counters, so
      // the turns commute; a capacity violation still surfaces as the same
      // exception the sequential loop would throw first (see header).
      parallel_for(0, n, default_grain(n, 64), [&](std::size_t v) {
        NodeContext ctx(*this, static_cast<VertexId>(v));
        p.on_round(ctx);
      });
    } else {
      for (VertexId v = 0; v < n; ++v) {
        NodeContext ctx(*this, v);
        p.on_round(ctx);
      }
    }
    ++stats.rounds;

    // Deliver: move outboxes into the receivers' inboxes for next round.
    // The per-node body below mirrors the sequential edge walk exactly: a
    // node's inbox receives from its incident edges in increasing edge-id
    // order (the CSR adjacency order), and every incoming directed-edge
    // slot (outbox, cumulative load) has that node as its only receiver.
    bool in_flight = false;
    const auto deliver_node = [&](VertexId v, std::uint64_t& delivered) {
      bool any = false;
      auto& box = inbox_[v];
      box.clear();
      for (const graph::HalfEdge he : g_->neighbors(v)) {
        // Incoming direction: the neighbour is the sender.
        const std::size_t d = 2 * static_cast<std::size_t>(he.edge) +
                              (g_->edge(he.edge).u == v ? 1 : 0);
        if (outbox_[d].empty()) continue;
        any = true;
        cumulative_load_[d] += outbox_[d].size();
        delivered += outbox_[d].size();
        box.insert(box.end(), outbox_[d].begin(), outbox_[d].end());
        outbox_[d].clear();
      }
      return any;
    };
    std::uint64_t delivered = 0;
    if ((parallel_ || parallel_delivery_) && num_threads() > 1) {
      struct Partial {
        std::uint64_t delivered = 0;
        bool in_flight = false;
      };
      const Partial total = parallel_reduce<Partial>(
          0, n, default_grain(n, 64), Partial{},
          [&](std::size_t begin, std::size_t end) {
            Partial part;
            for (std::size_t v = begin; v < end; ++v)
              part.in_flight |= deliver_node(static_cast<VertexId>(v), part.delivered);
            return part;
          },
          [](Partial acc, Partial part) {
            acc.delivered += part.delivered;
            acc.in_flight |= part.in_flight;
            return acc;
          });
      delivered = total.delivered;
      in_flight = total.in_flight;
    } else {
      for (VertexId v = 0; v < n; ++v) in_flight |= deliver_node(v, delivered);
    }
    messages_ += delivered;
    stats.messages += delivered;

    if (!in_flight && p.idle()) {
      stats.completed = true;
      break;
    }
  }
  stats.max_edge_load = cumulative_load_.empty()
                            ? 0
                            : *std::max_element(cumulative_load_.begin(), cumulative_load_.end());
  return stats;
}

}  // namespace lcs::congest
