// Building-block CONGEST programs: BFS, tree convergecast/broadcast,
// prefix assignment (component numbering) and Bellman–Ford SSSP.
//
// Tree programs operate over a RootedTree (typically derived from a BFS);
// the tree is *input configuration* (who my parent is), not communication.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "congest/simulator.hpp"
#include "graph/algorithms.hpp"
#include "graph/weighted.hpp"

namespace lcs::congest {

/// A rooted spanning structure: parent pointers plus per-node child edges.
struct RootedTree {
  VertexId root = graph::kNoVertex;
  std::vector<VertexId> parent;       ///< kNoVertex at root / non-members
  std::vector<EdgeId> parent_edge;    ///< kNoEdge at root / non-members
  std::vector<std::vector<EdgeId>> child_edges;
  std::vector<bool> member;

  static RootedTree from_bfs(const Graph& g, const graph::BfsResult& r, VertexId root);
  std::uint32_t num_members() const;
};

/// Distributed single-source BFS.  After the run, dist/parent describe the
/// BFS tree (kUnreached / kNoVertex where not reached within depth_cap).
class BfsProgram : public Program {
 public:
  BfsProgram(std::uint32_t n, VertexId source,
             std::uint32_t depth_cap = graph::kUnreached);

  void on_round(NodeContext& ctx) override;

  const std::vector<std::uint32_t>& dist() const { return dist_; }
  const std::vector<VertexId>& parent() const { return parent_; }
  const std::vector<EdgeId>& parent_edge() const { return parent_edge_; }

 private:
  VertexId source_;
  std::uint32_t depth_cap_;
  std::vector<std::uint32_t> dist_;
  std::vector<VertexId> parent_;
  std::vector<EdgeId> parent_edge_;
};

/// Convergecast: combine per-node values up a rooted tree with an
/// associative op; the root ends up with op over all member values.
class ConvergecastProgram : public Program {
 public:
  using Op = std::function<std::uint64_t(std::uint64_t, std::uint64_t)>;

  ConvergecastProgram(const RootedTree& tree, std::vector<std::uint64_t> values, Op op);

  void on_round(NodeContext& ctx) override;

  /// Aggregate at the root (valid after the run).
  std::uint64_t result() const;
  /// Aggregate of v's subtree (valid after the run).
  std::uint64_t subtree_value(VertexId v) const { return acc_[v]; }

 private:
  void maybe_send_up(NodeContext& ctx);

  const RootedTree* tree_;
  Op op_;
  std::vector<std::uint64_t> acc_;
  std::vector<std::uint32_t> pending_children_;
  // Per-node flag; bytes (not vector<bool> bits) so concurrent node turns in
  // the simulator's parallel mode touch distinct memory locations.
  std::vector<std::uint8_t> sent_;
};

/// Broadcast a value from the root down a rooted tree.
class BroadcastProgram : public Program {
 public:
  BroadcastProgram(const RootedTree& tree, std::uint64_t value);

  void on_round(NodeContext& ctx) override;

  bool received(VertexId v) const { return has_value_[v]; }
  std::uint64_t value_at(VertexId v) const;

 private:
  const RootedTree* tree_;
  std::uint64_t root_value_;
  std::vector<std::uint8_t> has_value_;  // bytes, not bits: parallel-mode safe
  std::vector<std::uint64_t> value_;
};

/// Ranks flagged nodes 0..K-1 in DFS order of the tree: convergecast of
/// subtree counts, then offset downcast.  This is the paper's "number the
/// large components in [1, N]" step, O(tree depth) rounds.
class PrefixAssignProgram : public Program {
 public:
  PrefixAssignProgram(const RootedTree& tree, std::vector<bool> flagged);

  void on_round(NodeContext& ctx) override;

  /// Rank of a flagged node (valid after the run); kUnreached otherwise.
  std::uint32_t rank(VertexId v) const { return rank_[v]; }
  /// Total number of flagged nodes (valid after the run, at every node
  /// that participated; exposed from the root here).
  std::uint32_t total() const;

 private:
  void assign_and_forward(NodeContext& ctx, std::uint64_t base);

  const RootedTree* tree_;
  std::vector<bool> flagged_;
  std::vector<std::uint64_t> count_;            // subtree flagged count
  std::vector<std::uint32_t> pending_children_;
  std::vector<std::uint8_t> sent_up_;  // bytes, not bits: parallel-mode safe
  std::vector<std::uint64_t> child_count_;      // per edge id -> child subtree count
  std::vector<std::uint32_t> rank_;
};

/// Distributed Bellman–Ford.  Exact SSSP; rounds = hop radius of the
/// shortest-path tree.  Weights are part of the local edge configuration.
class BellmanFordProgram : public Program {
 public:
  BellmanFordProgram(const Graph& g, graph::WeightSpan w, VertexId source);

  void on_round(NodeContext& ctx) override;

  static constexpr std::uint64_t kInf = static_cast<std::uint64_t>(-1);
  const std::vector<std::uint64_t>& dist() const { return dist_; }
  const std::vector<VertexId>& parent() const { return parent_; }
  const std::vector<EdgeId>& parent_edge() const { return parent_edge_; }

 private:
  graph::WeightSpan w_;
  VertexId source_;
  std::vector<std::uint64_t> dist_;
  std::vector<VertexId> parent_;
  std::vector<EdgeId> parent_edge_;
  std::vector<std::uint8_t> dirty_;  // improved since last send (bytes: parallel-mode safe)
};

}  // namespace lcs::congest
