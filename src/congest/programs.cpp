#include "congest/programs.hpp"

#include <algorithm>

namespace lcs::congest {

namespace {
// Message kinds shared by the building-block programs.
constexpr std::uint32_t kBfsToken = 1;
constexpr std::uint32_t kAggUp = 2;
constexpr std::uint32_t kCastDown = 3;
constexpr std::uint32_t kDistUpdate = 4;
}  // namespace

RootedTree RootedTree::from_bfs(const Graph& g, const graph::BfsResult& r, VertexId root) {
  LCS_REQUIRE(root < g.num_vertices(), "root out of range");
  LCS_REQUIRE(r.dist.size() == g.num_vertices(), "BFS result does not match graph");
  LCS_REQUIRE(r.dist[root] == 0, "root must be a BFS source");
  RootedTree t;
  t.root = root;
  t.parent = r.parent;
  t.parent_edge = r.parent_edge;
  t.member.assign(g.num_vertices(), false);
  t.child_edges.resize(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!r.reached_vertex(v)) continue;
    t.member[v] = true;
    if (r.parent[v] != graph::kNoVertex)
      t.child_edges[r.parent[v]].push_back(r.parent_edge[v]);
  }
  for (auto& ce : t.child_edges) std::sort(ce.begin(), ce.end());
  return t;
}

std::uint32_t RootedTree::num_members() const {
  return static_cast<std::uint32_t>(std::count(member.begin(), member.end(), true));
}

// --- BfsProgram -------------------------------------------------------------

BfsProgram::BfsProgram(std::uint32_t n, VertexId source, std::uint32_t depth_cap)
    : source_(source),
      depth_cap_(depth_cap),
      dist_(n, graph::kUnreached),
      parent_(n, graph::kNoVertex),
      parent_edge_(n, graph::kNoEdge) {
  LCS_REQUIRE(source < n, "source out of range");
}

void BfsProgram::on_round(NodeContext& ctx) {
  const VertexId v = ctx.node();
  bool adopted = false;
  if (ctx.round() == 0 && v == source_) {
    dist_[v] = 0;
    adopted = true;
  }
  for (const Message& m : ctx.inbox()) {
    if (m.kind != kBfsToken) continue;
    const std::uint32_t cand = static_cast<std::uint32_t>(m.a) + 1;
    if (dist_[v] != graph::kUnreached) continue;
    dist_[v] = cand;
    parent_[v] = static_cast<VertexId>(m.b);
    parent_edge_[v] = static_cast<EdgeId>(m.a >> 32);
    adopted = true;
  }
  if (adopted && dist_[v] < depth_cap_) {
    for (const graph::HalfEdge he : ctx.topology().neighbors(v)) {
      Message m;
      m.kind = kBfsToken;
      m.a = (static_cast<std::uint64_t>(he.edge) << 32) | dist_[v];
      m.b = v;
      ctx.send(he.edge, m);
    }
  }
}

// --- ConvergecastProgram ----------------------------------------------------

ConvergecastProgram::ConvergecastProgram(const RootedTree& tree,
                                         std::vector<std::uint64_t> values, Op op)
    : tree_(&tree), op_(std::move(op)), acc_(std::move(values)) {
  const std::size_t n = tree_->member.size();
  LCS_REQUIRE(acc_.size() == n, "value vector does not match tree size");
  pending_children_.resize(n);
  sent_.assign(n, false);
  for (std::size_t v = 0; v < n; ++v)
    pending_children_[v] = static_cast<std::uint32_t>(tree_->child_edges[v].size());
}

void ConvergecastProgram::maybe_send_up(NodeContext& ctx) {
  const VertexId v = ctx.node();
  if (sent_[v] || pending_children_[v] > 0) return;
  if (v == tree_->root || !tree_->member[v]) return;
  Message m;
  m.kind = kAggUp;
  m.a = acc_[v];
  ctx.send(tree_->parent_edge[v], m);
  sent_[v] = true;
}

void ConvergecastProgram::on_round(NodeContext& ctx) {
  const VertexId v = ctx.node();
  if (!tree_->member[v]) return;
  for (const Message& m : ctx.inbox()) {
    if (m.kind != kAggUp) continue;
    acc_[v] = op_(acc_[v], m.a);
    LCS_CHECK(pending_children_[v] > 0, "more child reports than children");
    --pending_children_[v];
  }
  maybe_send_up(ctx);
}

std::uint64_t ConvergecastProgram::result() const {
  LCS_REQUIRE(tree_->root != graph::kNoVertex, "tree has no root");
  return acc_[tree_->root];
}

// --- BroadcastProgram ---------------------------------------------------------

BroadcastProgram::BroadcastProgram(const RootedTree& tree, std::uint64_t value)
    : tree_(&tree), root_value_(value) {
  const std::size_t n = tree_->member.size();
  has_value_.assign(n, false);
  value_.assign(n, 0);
}

void BroadcastProgram::on_round(NodeContext& ctx) {
  const VertexId v = ctx.node();
  if (!tree_->member[v]) return;
  bool fresh = false;
  if (ctx.round() == 0 && v == tree_->root) {
    has_value_[v] = true;
    value_[v] = root_value_;
    fresh = true;
  }
  for (const Message& m : ctx.inbox()) {
    if (m.kind != kCastDown || has_value_[v]) continue;
    has_value_[v] = true;
    value_[v] = m.a;
    fresh = true;
  }
  if (fresh) {
    for (const EdgeId ce : tree_->child_edges[v]) {
      Message m;
      m.kind = kCastDown;
      m.a = value_[v];
      ctx.send(ce, m);
    }
  }
}

std::uint64_t BroadcastProgram::value_at(VertexId v) const {
  LCS_REQUIRE(has_value_[v], "node did not receive the broadcast");
  return value_[v];
}

// --- PrefixAssignProgram -----------------------------------------------------

PrefixAssignProgram::PrefixAssignProgram(const RootedTree& tree, std::vector<bool> flagged)
    : tree_(&tree), flagged_(std::move(flagged)) {
  const std::size_t n = tree_->member.size();
  LCS_REQUIRE(flagged_.size() == n, "flag vector does not match tree size");
  count_.assign(n, 0);
  pending_children_.resize(n);
  sent_up_.assign(n, false);
  rank_.assign(n, graph::kUnreached);
  for (std::size_t v = 0; v < n; ++v) {
    pending_children_[v] = static_cast<std::uint32_t>(tree_->child_edges[v].size());
    if (tree_->member[v] && flagged_[v]) count_[v] = 1;
  }
  std::size_t max_edge = 0;
  for (std::size_t v = 0; v < n; ++v)
    for (const EdgeId e : tree_->child_edges[v])
      max_edge = std::max<std::size_t>(max_edge, e + 1);
  child_count_.assign(max_edge, 0);
}

void PrefixAssignProgram::assign_and_forward(NodeContext& ctx, std::uint64_t base) {
  const VertexId v = ctx.node();
  std::uint64_t running = base;
  if (flagged_[v]) {
    rank_[v] = static_cast<std::uint32_t>(running);
    ++running;
  }
  for (const EdgeId ce : tree_->child_edges[v]) {
    Message m;
    m.kind = kCastDown;
    m.a = running;
    ctx.send(ce, m);
    running += child_count_[ce];
  }
}

void PrefixAssignProgram::on_round(NodeContext& ctx) {
  const VertexId v = ctx.node();
  if (!tree_->member[v]) return;
  for (const Message& m : ctx.inbox()) {
    if (m.kind == kAggUp) {
      // Identify which child edge delivered this (the only child edge whose
      // count is still unset and whose subtree just reported).  The message
      // itself tells us: sender is the child; we recover the edge by
      // scanning child edges for the one matching the sender's report
      // ordering — instead, encode the edge id in the payload.
      const EdgeId ce = static_cast<EdgeId>(m.a >> 40);
      const std::uint64_t cnt = m.a & ((1ULL << 40) - 1);
      LCS_CHECK(ce < child_count_.size(), "child edge id out of range");
      child_count_[ce] = cnt;
      count_[v] += cnt;
      LCS_CHECK(pending_children_[v] > 0, "more child reports than children");
      --pending_children_[v];
    } else if (m.kind == kCastDown) {
      assign_and_forward(ctx, m.a);
    }
  }
  if (!sent_up_[v] && pending_children_[v] == 0) {
    if (v == tree_->root) {
      assign_and_forward(ctx, 0);
      sent_up_[v] = true;
    } else {
      // Upward report carries (parent edge id, subtree count) packed into one
      // word: 24 bits of edge id, 40 bits of count.
      LCS_CHECK(tree_->parent_edge[v] < (1u << 24), "edge id exceeds packing width");
      Message m;
      m.kind = kAggUp;
      m.a = (static_cast<std::uint64_t>(tree_->parent_edge[v]) << 40) | count_[v];
      ctx.send(tree_->parent_edge[v], m);
      sent_up_[v] = true;
    }
  }
}

std::uint32_t PrefixAssignProgram::total() const {
  LCS_REQUIRE(tree_->root != graph::kNoVertex, "tree has no root");
  return static_cast<std::uint32_t>(count_[tree_->root]);
}

// --- BellmanFordProgram -------------------------------------------------------

BellmanFordProgram::BellmanFordProgram(const Graph& g, graph::WeightSpan w,
                                       VertexId source)
    : w_(w), source_(source) {
  LCS_REQUIRE(w.size() == g.num_edges(), "weights do not match graph");
  LCS_REQUIRE(source < g.num_vertices(), "source out of range");
  for (const graph::Weight x : w) LCS_REQUIRE(x >= 0, "negative weights unsupported");
  dist_.assign(g.num_vertices(), kInf);
  parent_.assign(g.num_vertices(), graph::kNoVertex);
  parent_edge_.assign(g.num_vertices(), graph::kNoEdge);
  dirty_.assign(g.num_vertices(), false);
}

void BellmanFordProgram::on_round(NodeContext& ctx) {
  const VertexId v = ctx.node();
  if (ctx.round() == 0 && v == source_) {
    dist_[v] = 0;
    dirty_[v] = true;
  }
  for (const Message& m : ctx.inbox()) {
    if (m.kind != kDistUpdate) continue;
    const EdgeId via = static_cast<EdgeId>(m.b);
    const std::uint64_t cand = m.a + static_cast<std::uint64_t>(w_[via]);
    if (cand < dist_[v]) {
      dist_[v] = cand;
      parent_[v] = ctx.topology().other_endpoint(via, v);
      parent_edge_[v] = via;
      dirty_[v] = true;
    }
  }
  if (dirty_[v]) {
    for (const graph::HalfEdge he : ctx.topology().neighbors(v)) {
      Message m;
      m.kind = kDistUpdate;
      m.a = dist_[v];
      m.b = he.edge;
      ctx.send(he.edge, m);
    }
    dirty_[v] = false;
  }
}

}  // namespace lcs::congest
