// Scheduled multi-source weighted SSSP: K Bellman–Ford executions (one per
// source) sharing the CONGEST bandwidth with per-edge FIFO queues.
//
// This is the communication pattern behind the landmark-based approximate
// SSSP of Corollary 4.2: every landmark grows its weighted Voronoi region
// concurrently; the simulated round count replaces the analytic charge.
// Unlike BFS, a vertex's distance can improve repeatedly; each improvement
// re-enqueues its announcements (standard distributed Bellman–Ford, just
// multiplexed).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "congest/simulator.hpp"
#include "graph/weighted.hpp"

namespace lcs::congest {

class MultiBellmanFordProgram : public Program {
 public:
  static constexpr std::uint64_t kInf = static_cast<std::uint64_t>(-1);

  /// One execution per source, all over the full graph with weights `w`.
  MultiBellmanFordProgram(const Graph& g, graph::WeightSpan w,
                          std::vector<VertexId> sources);

  void on_round(NodeContext& ctx) override;
  bool idle() const override { return total_queued_ == 0; }

  std::size_t num_sources() const { return sources_.size(); }
  /// Distance of v from source i (valid after quiescence).
  std::uint64_t dist_of(std::size_t i, VertexId v) const;
  VertexId parent_of(std::size_t i, VertexId v) const;

 private:
  void improve(std::size_t i, VertexId v, std::uint64_t d, VertexId par);

  const Graph* g_;
  graph::WeightSpan w_;
  std::vector<VertexId> sources_;
  // dist_[i * n + v] layout (K * n words; K is small: landmarks).
  std::vector<std::uint64_t> dist_;
  std::vector<VertexId> parent_;
  // Pending announcements per directed edge; an entry is (source, dist of
  // the sender at enqueue time).  Stale entries (already improved) are
  // dropped at send time.
  struct Pending {
    std::uint32_t source;
    VertexId sender;
    std::uint64_t dist;
  };
  std::vector<std::deque<Pending>> queue_;
  std::uint64_t total_queued_ = 0;
};

}  // namespace lcs::congest
