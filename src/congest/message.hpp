// The CONGEST message type.
//
// In the CONGEST(B) model every edge carries one B = O(log n)-bit message
// per direction per round.  We model a message as a small fixed struct —
// two 32-bit tags plus two 64-bit payload words — which is O(log n) bits
// for every instance size this library targets.  The simulator enforces
// the per-edge-per-round budget; it does not inspect payloads.
#pragma once

#include <cstdint>

namespace lcs::congest {

struct Message {
  std::uint32_t algo = 0;  ///< sub-algorithm tag (used by scheduled executions)
  std::uint32_t kind = 0;  ///< program-defined message type
  std::uint64_t a = 0;     ///< payload word 1
  std::uint64_t b = 0;     ///< payload word 2
};

}  // namespace lcs::congest
