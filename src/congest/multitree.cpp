#include "congest/multitree.hpp"

#include <algorithm>

#include "congest/multibfs.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace lcs::congest {

namespace {
constexpr std::uint32_t kAggToken = 20;
constexpr std::uint32_t kCastToken = 21;

std::size_t dir_of(const Graph& g, EdgeId e, VertexId from) {
  const graph::Edge ed = g.edge(e);
  LCS_CHECK(ed.u == from || ed.v == from, "sender not an endpoint");
  return 2 * static_cast<std::size_t>(e) + (ed.u == from ? 0 : 1);
}

void validate_spec(const Graph& g, const TreeInstanceSpec& s) {
  LCS_REQUIRE(s.root < g.num_vertices(), "tree root out of range");
  LCS_REQUIRE(s.members.size() == s.parent.size() &&
                  s.members.size() == s.parent_edge.size(),
              "tree spec arrays must be parallel");
  bool root_seen = false;
  for (std::size_t k = 0; k < s.members.size(); ++k) {
    if (s.members[k] == s.root) {
      root_seen = true;
      LCS_REQUIRE(s.parent[k] == graph::kNoVertex, "root must have no parent");
    } else {
      LCS_REQUIRE(s.parent[k] != graph::kNoVertex, "non-root member needs a parent");
      LCS_REQUIRE(s.parent_edge[k] < g.num_edges(), "parent edge out of range");
    }
  }
  LCS_REQUIRE(root_seen, "members must include the root");
}

}  // namespace

// --- MultiConvergecastProgram -------------------------------------------------

MultiConvergecastProgram::MultiConvergecastProgram(const Graph& g,
                                                   std::vector<TreeInstanceSpec> specs,
                                                   Op op)
    : g_(&g), op_(std::move(op)) {
  queue_.resize(2 * static_cast<std::size_t>(g.num_edges()));
  inst_.resize(specs.size());
  // Per-instance validation and state setup write only inst_[i]; the leaf
  // enqueue below stays sequential because instances share the per-edge
  // queues and the queue order is part of the simulated execution.
  parallel_for_or_serial(0, specs.size(), default_grain(specs.size(), 8), [&](std::size_t i) {
    TreeInstanceSpec& s = specs[i];
    validate_spec(g, s);
    LCS_REQUIRE(s.value.size() == s.members.size(), "convergecast needs a value per member");
    Instance& in = inst_[i];
    in.root = s.root;
    in.parent = s.parent;
    in.parent_edge = s.parent_edge;
    in.acc = s.value;
    in.pending_children.assign(s.members.size(), 0);
    in.sent.assign(s.members.size(), false);
    in.index.reserve(s.members.size());
    for (std::uint32_t k = 0; k < s.members.size(); ++k) in.index[s.members[k]] = k;
    for (std::uint32_t k = 0; k < s.members.size(); ++k) {
      if (s.parent[k] == graph::kNoVertex) continue;
      const auto it = in.index.find(s.parent[k]);
      LCS_REQUIRE(it != in.index.end(), "parent must be a member");
      ++in.pending_children[it->second];
    }
  });
  // Leaves enqueue immediately (round 0 drains them).
  for (std::size_t i = 0; i < specs.size(); ++i)
    for (std::uint32_t k = 0; k < specs[i].members.size(); ++k) maybe_enqueue_up(i, k);
}

void MultiConvergecastProgram::maybe_enqueue_up(std::size_t i, std::uint32_t local) {
  Instance& in = inst_[i];
  if (in.sent[local] || in.pending_children[local] > 0) return;
  if (in.parent[local] == graph::kNoVertex) return;  // the root never sends
  Message m;
  m.algo = static_cast<std::uint32_t>(i);
  m.kind = kAggToken;
  m.a = in.acc[local];
  // Own vertex id = the parent edge's endpoint that is not the parent.
  const graph::Edge ed = g_->edge(in.parent_edge[local]);
  const VertexId self = ed.u == in.parent[local] ? ed.v : ed.u;
  queue_[dir_of(*g_, in.parent_edge[local], self)].push_back(m);
  ++total_queued_;
  in.sent[local] = true;
}

void MultiConvergecastProgram::on_round(NodeContext& ctx) {
  const VertexId v = ctx.node();
  for (const Message& m : ctx.inbox()) {
    if (m.kind != kAggToken) continue;
    const std::size_t i = m.algo;
    Instance& in = inst_[i];
    const auto it = in.index.find(v);
    LCS_CHECK(it != in.index.end(), "aggregation token reached a non-member");
    const std::uint32_t local = it->second;
    in.acc[local] = op_(in.acc[local], m.a);
    LCS_CHECK(in.pending_children[local] > 0, "more reports than children");
    --in.pending_children[local];
    maybe_enqueue_up(i, local);
  }
  for (const graph::HalfEdge he : ctx.topology().neighbors(v)) {
    auto& q = queue_[dir_of(*g_, he.edge, v)];
    while (!q.empty() && ctx.remaining_capacity(he.edge) > 0) {
      ctx.send(he.edge, q.front());
      q.pop_front();
      --total_queued_;
    }
  }
}

std::uint64_t MultiConvergecastProgram::result(std::size_t i) const {
  LCS_REQUIRE(i < inst_.size(), "instance out of range");
  const Instance& in = inst_[i];
  return in.acc[in.index.at(in.root)];
}

bool MultiConvergecastProgram::complete(std::size_t i) const {
  LCS_REQUIRE(i < inst_.size(), "instance out of range");
  const Instance& in = inst_[i];
  return in.pending_children[in.index.at(in.root)] == 0;
}

// --- MultiBroadcastProgram ------------------------------------------------------

MultiBroadcastProgram::MultiBroadcastProgram(const Graph& g,
                                             std::vector<TreeInstanceSpec> specs,
                                             std::vector<std::uint64_t> root_values)
    : g_(&g) {
  LCS_REQUIRE(root_values.size() == specs.size(), "one root value per instance");
  queue_.resize(2 * static_cast<std::size_t>(g.num_edges()));
  inst_.resize(specs.size());
  // Same split as the convergecast: per-instance setup fans out, the root
  // deliveries stay sequential (they enqueue into the shared edge queues).
  parallel_for_or_serial(0, specs.size(), default_grain(specs.size(), 8), [&](std::size_t i) {
    TreeInstanceSpec& s = specs[i];
    validate_spec(g, s);
    Instance& in = inst_[i];
    in.root = s.root;
    in.members = s.members;
    in.index.reserve(s.members.size());
    for (std::uint32_t k = 0; k < s.members.size(); ++k) in.index[s.members[k]] = k;
    in.children.assign(s.members.size(), {});
    in.got.assign(s.members.size(), kMissing);
    for (std::uint32_t k = 0; k < s.members.size(); ++k) {
      if (s.parent[k] == graph::kNoVertex) continue;
      in.children[in.index.at(s.parent[k])].emplace_back(k, s.parent_edge[k]);
    }
  });
  for (std::size_t i = 0; i < specs.size(); ++i)
    deliver(i, inst_[i].index.at(specs[i].root), root_values[i]);
}

void MultiBroadcastProgram::deliver(std::size_t i, std::uint32_t local,
                                    std::uint64_t value) {
  Instance& in = inst_[i];
  if (in.got[local] != kMissing) return;
  in.got[local] = value;
  ++in.received;
  for (const auto& [child_local, edge] : in.children[local]) {
    Message m;
    m.algo = static_cast<std::uint32_t>(i);
    m.kind = kCastToken;
    m.a = value;
    // Sender = the parent-side endpoint of the child's parent edge.
    const graph::Edge ed = g_->edge(edge);
    const VertexId child_vertex = in.members[child_local];
    const VertexId sender = ed.u == child_vertex ? ed.v : ed.u;
    queue_[dir_of(*g_, edge, sender)].push_back(m);
    ++total_queued_;
  }
}

void MultiBroadcastProgram::on_round(NodeContext& ctx) {
  const VertexId v = ctx.node();
  for (const Message& m : ctx.inbox()) {
    if (m.kind != kCastToken) continue;
    const std::size_t i = m.algo;
    Instance& in = inst_[i];
    const auto it = in.index.find(v);
    LCS_CHECK(it != in.index.end(), "broadcast token reached a non-member");
    deliver(i, it->second, m.a);
  }
  for (const graph::HalfEdge he : ctx.topology().neighbors(v)) {
    auto& q = queue_[dir_of(*g_, he.edge, v)];
    while (!q.empty() && ctx.remaining_capacity(he.edge) > 0) {
      ctx.send(he.edge, q.front());
      q.pop_front();
      --total_queued_;
    }
  }
}

std::uint64_t MultiBroadcastProgram::value_at(std::size_t i, VertexId v) const {
  LCS_REQUIRE(i < inst_.size(), "instance out of range");
  const auto it = inst_[i].index.find(v);
  if (it == inst_[i].index.end()) return kMissing;
  return inst_[i].got[it->second];
}

bool MultiBroadcastProgram::complete(std::size_t i) const {
  LCS_REQUIRE(i < inst_.size(), "instance out of range");
  return inst_[i].received == inst_[i].got.size();
}

TreeInstanceSpec tree_spec_from_multibfs(const MultiBfsProgram& prog, std::size_t i) {
  TreeInstanceSpec s;
  s.members.reserve(prog.members(i).size());
  for (const VertexId v : prog.members(i)) {
    if (prog.dist_of(i, v) == graph::kUnreached) continue;  // outside the tree
    s.members.push_back(v);
    s.parent.push_back(prog.parent_of(i, v));
    s.parent_edge.push_back(prog.parent_edge_of(i, v));
    if (prog.dist_of(i, v) == 0) s.root = v;
  }
  s.value.assign(s.members.size(), 0);
  return s;
}

}  // namespace lcs::congest
