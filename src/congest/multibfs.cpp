#include "congest/multibfs.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace lcs::congest {

namespace {
constexpr std::uint32_t kMultiBfsToken = 10;
}

MultiBfsProgram::MultiBfsProgram(const Graph& g, std::vector<BfsInstanceSpec> specs)
    : g_(&g), specs_(std::move(specs)) {
  inst_.resize(specs_.size());
  instances_rooted_at_.resize(g.num_vertices());
  queue_.resize(2 * static_cast<std::size_t>(g.num_edges()));

  // Per-instance setup writes only its own inst_ slot, so it fans out over
  // instances (serialized when a caller already holds a parallel region).
  // The rooted-at registration below stays sequential: roots may repeat.
  parallel_for_or_serial(0, specs_.size(), default_grain(specs_.size(), 8), [&](std::size_t i) {
    const BfsInstanceSpec& spec = specs_[i];
    LCS_REQUIRE(spec.root < g.num_vertices(), "instance root out of range");
    Instance& in = inst_[i];
    in.root = spec.root;
    in.depth_cap = spec.depth_cap;
    in.start_round = spec.start_round;

    std::vector<EdgeId> edges = spec.edges;
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    // Member set: edge endpoints plus the root.
    in.members.push_back(spec.root);
    for (const EdgeId e : edges) {
      const graph::Edge ed = g.edge(e);
      in.members.push_back(ed.u);
      in.members.push_back(ed.v);
    }
    std::sort(in.members.begin(), in.members.end());
    in.members.erase(std::unique(in.members.begin(), in.members.end()), in.members.end());
    in.index.reserve(in.members.size());
    for (std::uint32_t k = 0; k < in.members.size(); ++k) in.index[in.members[k]] = k;

    // Local adjacency CSR over members.
    std::vector<std::uint32_t> deg(in.members.size() + 1, 0);
    for (const EdgeId e : edges) {
      const graph::Edge ed = g.edge(e);
      ++deg[in.index.at(ed.u) + 1];
      ++deg[in.index.at(ed.v) + 1];
    }
    for (std::size_t k = 0; k < in.members.size(); ++k) deg[k + 1] += deg[k];
    in.offsets = deg;
    in.adj.resize(2 * edges.size());
    for (const EdgeId e : edges) {
      const graph::Edge ed = g.edge(e);
      in.adj[deg[in.index.at(ed.u)]++] = graph::HalfEdge{ed.v, e};
      in.adj[deg[in.index.at(ed.v)]++] = graph::HalfEdge{ed.u, e};
    }

    in.dist.assign(in.members.size(), graph::kUnreached);
    in.parent.assign(in.members.size(), graph::kNoVertex);
    in.parent_edge.assign(in.members.size(), graph::kNoEdge);
  });
  for (std::size_t i = 0; i < specs_.size(); ++i)
    instances_rooted_at_[specs_[i].root].push_back(i);
}

std::size_t MultiBfsProgram::dir_of(EdgeId e, VertexId from) const {
  const graph::Edge ed = g_->edge(e);
  LCS_CHECK(ed.u == from || ed.v == from, "sender not an endpoint");
  return 2 * static_cast<std::size_t>(e) + (ed.u == from ? 0 : 1);
}

void MultiBfsProgram::adopt_and_enqueue(std::size_t i, VertexId v, std::uint32_t d,
                                        VertexId par, EdgeId par_edge,
                                        std::uint32_t round) {
  Instance& in = inst_[i];
  const auto it = in.index.find(v);
  LCS_CHECK(it != in.index.end(), "token reached a non-member vertex");
  const std::uint32_t local = it->second;
  if (in.dist[local] != graph::kUnreached) return;
  in.dist[local] = d;
  in.parent[local] = par;
  in.parent_edge[local] = par_edge;
  in.last_adoption = round;
  in.max_depth = std::max(in.max_depth, d);
  if (d >= in.depth_cap) return;
  // Enqueue forwarding tokens on every instance-local incident edge.
  for (std::uint32_t k = in.offsets[local]; k < in.offsets[local + 1]; ++k) {
    const graph::HalfEdge he = in.adj[k];
    Message m;
    m.algo = static_cast<std::uint32_t>(i);
    m.kind = kMultiBfsToken;
    m.a = (static_cast<std::uint64_t>(he.edge) << 32) | d;
    m.b = v;
    queue_[dir_of(he.edge, v)].push_back(m);
    ++total_queued_;
  }
}

void MultiBfsProgram::on_round(NodeContext& ctx) {
  const VertexId v = ctx.node();
  const std::uint32_t round = ctx.round();

  // Delayed starts.
  for (const std::size_t i : instances_rooted_at_[v]) {
    if (inst_[i].start_round == round) {
      adopt_and_enqueue(i, v, 0, graph::kNoVertex, graph::kNoEdge, round);
      ++started_;
    }
  }

  // Token receipt.
  for (const Message& m : ctx.inbox()) {
    if (m.kind != kMultiBfsToken) continue;
    const std::size_t i = m.algo;
    const std::uint32_t d = static_cast<std::uint32_t>(m.a) + 1;
    const EdgeId via = static_cast<EdgeId>(m.a >> 32);
    adopt_and_enqueue(i, v, d, static_cast<VertexId>(m.b), via, round);
  }

  // Drain queues: one message per incident edge direction per round.
  for (const graph::HalfEdge he : ctx.topology().neighbors(v)) {
    auto& q = queue_[dir_of(he.edge, v)];
    while (!q.empty() && ctx.remaining_capacity(he.edge) > 0) {
      ctx.send(he.edge, q.front());
      q.pop_front();
      --total_queued_;
    }
  }
}

std::uint32_t MultiBfsProgram::dist_of(std::size_t i, VertexId v) const {
  LCS_REQUIRE(i < inst_.size(), "instance out of range");
  const auto it = inst_[i].index.find(v);
  if (it == inst_[i].index.end()) return graph::kUnreached;
  return inst_[i].dist[it->second];
}

VertexId MultiBfsProgram::parent_of(std::size_t i, VertexId v) const {
  LCS_REQUIRE(i < inst_.size(), "instance out of range");
  const auto it = inst_[i].index.find(v);
  if (it == inst_[i].index.end()) return graph::kNoVertex;
  return inst_[i].parent[it->second];
}

EdgeId MultiBfsProgram::parent_edge_of(std::size_t i, VertexId v) const {
  LCS_REQUIRE(i < inst_.size(), "instance out of range");
  const auto it = inst_[i].index.find(v);
  if (it == inst_[i].index.end()) return graph::kNoEdge;
  return inst_[i].parent_edge[it->second];
}

std::uint32_t MultiBfsProgram::last_adoption_round(std::size_t i) const {
  LCS_REQUIRE(i < inst_.size(), "instance out of range");
  return inst_[i].last_adoption;
}

std::uint32_t MultiBfsProgram::max_depth(std::size_t i) const {
  LCS_REQUIRE(i < inst_.size(), "instance out of range");
  return inst_[i].max_depth;
}

const std::vector<VertexId>& MultiBfsProgram::members(std::size_t i) const {
  LCS_REQUIRE(i < inst_.size(), "instance out of range");
  return inst_[i].members;
}

MultiBfsOutcome run_multi_bfs(const Graph& g, MultiBfsProgram& program,
                              std::uint32_t max_rounds) {
  Simulator sim(g, 1);
  // Node turns must stay sequential (shared queue accounting), but the
  // simulator-owned delivery phase is safe to fan out for any program.
  sim.set_parallel_delivery(true);
  MultiBfsOutcome out;
  out.stats = sim.run(program, max_rounds);
  return out;
}

}  // namespace lcs::congest
