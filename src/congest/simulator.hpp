// Synchronous CONGEST-model simulator.
//
// Execution proceeds in rounds.  In each round every node, in increasing id
// order, observes the messages delivered to it (those sent in the previous
// round) and may send at most `edge_capacity` messages per incident edge
// direction.  Over-capacity sends raise an exception: CONGEST algorithms
// must do their own queueing, exactly as on a real network.
//
// Programs are "structure of arrays" objects: one Program instance holds the
// state of *all* nodes, and `on_round(ctx)` is invoked once per node per
// round.  By convention a program only touches the state of ctx.node() —
// locality by discipline, which keeps the simulator fast while preserving
// the round/message accounting the model is about.
//
// Parallel mode (set_parallel): the per-node on_round loop runs on the
// global thread pool.  This is deterministic by construction: outboxes and
// per-round send counters are indexed by *directed edge*, and each directed
// edge has exactly one sending node, so concurrently executing nodes write
// disjoint slots and a node's sends land in its own program order.  The
// node-locality discipline above becomes a hard requirement in this mode,
// and sharpens to *distinct memory locations*: per-node flags must live in
// bytes (std::vector<std::uint8_t>), never std::vector<bool> bits, because
// adjacent bits share a word and concurrent read-modify-writes across a
// chunk boundary are a data race.  Programs that maintain shared accounting
// across nodes (the multi-tree / multi-BFS scheduled programs' queue
// totals) must stay in sequential mode.
//
// Parallel delivery (set_parallel_delivery, implied by set_parallel): the
// delivery phase fans out partitioned by *receiver*.  Each directed edge has
// exactly one receiving node, so a node chunk owns the inboxes, outbox
// clears and cumulative loads of all its incoming directed edges; a node
// drains its incident edges in increasing edge-id order (the CSR adjacency
// order), which is exactly the order the sequential edge walk appends to
// that inbox.  Message totals are summed per chunk and combined in chunk
// order.  Delivery touches only simulator-owned state, so — unlike parallel
// node turns — it is safe for every program, including the scheduled
// multi-BFS/multi-tree programs with shared queue accounting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "congest/message.hpp"
#include "graph/graph.hpp"

namespace lcs::congest {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

class Simulator;

/// Per-node view handed to Program::on_round.
class NodeContext {
 public:
  VertexId node() const { return node_; }
  std::uint32_t round() const;
  const Graph& topology() const;

  /// Messages delivered to this node this round (sent by neighbours last round).
  std::span<const Message> inbox() const;

  /// Send a message along an incident edge.  `via_edge` must be incident to
  /// node() and the per-round capacity of that edge direction must not be
  /// exhausted (use Simulator::edge_capacity to plan).
  void send(EdgeId via_edge, const Message& m);

  /// Messages still sendable on `via_edge` this round.
  std::uint32_t remaining_capacity(EdgeId via_edge) const;

 private:
  friend class Simulator;
  NodeContext(Simulator& sim, VertexId node) : sim_(sim), node_(node) {}
  Simulator& sim_;
  VertexId node_;
};

/// A distributed algorithm under simulation.
class Program {
 public:
  virtual ~Program() = default;

  /// Invoked once per node per round, in increasing node order.
  virtual void on_round(NodeContext& ctx) = 0;

  /// "I have queued work even though I sent nothing this round."  The run
  /// ends at the first round where no messages are in flight and every
  /// node is idle.
  virtual bool idle() const { return true; }
};

struct RunStats {
  std::uint32_t rounds = 0;        ///< rounds executed
  std::uint64_t messages = 0;      ///< total messages delivered
  std::uint64_t max_edge_load = 0; ///< max cumulative messages over any edge direction
  bool completed = false;          ///< false when max_rounds was hit first
};

class Simulator {
 public:
  /// `edge_capacity` = messages per edge direction per round (1 = classic CONGEST).
  explicit Simulator(const Graph& g, std::uint32_t edge_capacity = 1);

  const Graph& topology() const { return *g_; }
  std::uint32_t edge_capacity() const { return capacity_; }
  std::uint32_t round() const { return round_; }

  /// Run node turns on the thread pool (see the header comment for the
  /// determinism argument).  Off by default; ignored when the resolved
  /// thread count is 1.  Also enables parallel delivery.
  void set_parallel(bool on) { parallel_ = on; }
  bool parallel() const { return parallel_; }

  /// Run only the delivery phase on the thread pool (receiver-partitioned;
  /// see header).  Safe for every program — including the scheduled
  /// multi-BFS/multi-tree programs whose node turns must stay sequential.
  void set_parallel_delivery(bool on) { parallel_delivery_ = on; }
  bool parallel_delivery() const { return parallel_delivery_; }

  /// Run `p` until quiescence (no in-flight messages, all nodes idle) or
  /// until `max_rounds`.  Statistics accumulate across the whole run.
  RunStats run(Program& p, std::uint32_t max_rounds);

 private:
  friend class NodeContext;

  /// Directed edge slot: 2*e for (edge.u -> edge.v), 2*e+1 for the reverse.
  std::size_t dir_index(EdgeId e, VertexId from) const;

  const Graph* g_;
  std::uint32_t capacity_;
  std::uint32_t round_ = 0;
  std::uint64_t messages_ = 0;
  bool parallel_ = false;
  bool parallel_delivery_ = false;

  // Outboxes of the current round (indexed by directed edge), inboxes of
  // the current round (indexed by node), per-direction sends this round,
  // and cumulative per-direction load.
  std::vector<std::vector<Message>> outbox_;
  std::vector<std::vector<Message>> inbox_;
  std::vector<std::uint32_t> sent_this_round_;
  std::vector<std::uint64_t> cumulative_load_;
};

}  // namespace lcs::congest
