// Scheduled multi-instance tree aggregation: N convergecasts (and
// broadcasts) over N trees — typically the BFS trees that MultiBfsProgram
// just built over the augmented subgraphs — sharing the CONGEST bandwidth
// with per-edge FIFO queues, exactly like the multi-BFS stage.
//
// This is the communication pattern behind the shortcut framework's
// applications: "every fragment aggregates its minimum-weight outgoing
// edge over G[S_i] ∪ H_i" is one MultiConvergecast (min) followed by one
// MultiBroadcast of the result.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "congest/simulator.hpp"

namespace lcs::congest {

/// A rooted tree over a subset of vertices, given by parent pointers.
/// members must include the root; parent/parent_edge are parallel to
/// members (kNoVertex/kNoEdge at the root).
struct TreeInstanceSpec {
  VertexId root = graph::kNoVertex;
  std::vector<VertexId> members;
  std::vector<VertexId> parent;
  std::vector<EdgeId> parent_edge;
  /// Per-member input value (used by the convergecast).
  std::vector<std::uint64_t> value;
};

class MultiConvergecastProgram : public Program {
 public:
  using Op = std::function<std::uint64_t(std::uint64_t, std::uint64_t)>;

  /// `op` must be associative and commutative.
  MultiConvergecastProgram(const Graph& g, std::vector<TreeInstanceSpec> specs, Op op);

  void on_round(NodeContext& ctx) override;
  bool idle() const override { return total_queued_ == 0; }

  /// Aggregate over instance i's members (valid after quiescence).
  std::uint64_t result(std::size_t i) const;
  /// True when the root of instance i received all child reports.
  bool complete(std::size_t i) const;

 private:
  struct Instance {
    VertexId root;
    std::unordered_map<VertexId, std::uint32_t> index;
    std::vector<VertexId> parent;
    std::vector<EdgeId> parent_edge;
    std::vector<std::uint64_t> acc;
    std::vector<std::uint32_t> pending_children;
    std::vector<bool> sent;
  };

  void maybe_enqueue_up(std::size_t i, std::uint32_t local);

  const Graph* g_;
  Op op_;
  std::vector<Instance> inst_;
  std::vector<std::deque<Message>> queue_;
  std::uint64_t total_queued_ = 0;
};

class MultiBroadcastProgram : public Program {
 public:
  /// Broadcast `root_value[i]` down tree i.
  MultiBroadcastProgram(const Graph& g, std::vector<TreeInstanceSpec> specs,
                        std::vector<std::uint64_t> root_values);

  void on_round(NodeContext& ctx) override;
  bool idle() const override { return total_queued_ == 0; }

  /// Value received by `v` in instance i (valid after quiescence); the
  /// root's value when v participates, nullopt-like kMissing otherwise.
  static constexpr std::uint64_t kMissing = static_cast<std::uint64_t>(-1);
  std::uint64_t value_at(std::size_t i, VertexId v) const;
  bool complete(std::size_t i) const;

 private:
  struct Instance {
    VertexId root;
    std::vector<VertexId> members;
    std::unordered_map<VertexId, std::uint32_t> index;
    std::vector<std::vector<std::pair<std::uint32_t, EdgeId>>> children;  // local ids
    std::vector<std::uint64_t> got;
    std::uint32_t received = 0;
  };

  void deliver(std::size_t i, std::uint32_t local, std::uint64_t value);

  const Graph* g_;
  std::vector<Instance> inst_;
  std::vector<std::deque<Message>> queue_;
  std::uint64_t total_queued_ = 0;
};

/// Convenience: derive a TreeInstanceSpec from a MultiBfs result.
class MultiBfsProgram;
TreeInstanceSpec tree_spec_from_multibfs(const MultiBfsProgram& prog, std::size_t i);

}  // namespace lcs::congest
