#include "congest/multibf.hpp"

#include "util/check.hpp"

namespace lcs::congest {

namespace {
constexpr std::uint32_t kDistToken = 30;

std::size_t dir_of(const Graph& g, EdgeId e, VertexId from) {
  const graph::Edge ed = g.edge(e);
  LCS_CHECK(ed.u == from || ed.v == from, "sender not an endpoint");
  return 2 * static_cast<std::size_t>(e) + (ed.u == from ? 0 : 1);
}
}  // namespace

MultiBellmanFordProgram::MultiBellmanFordProgram(const Graph& g,
                                                 graph::WeightSpan w,
                                                 std::vector<VertexId> sources)
    : g_(&g), w_(w), sources_(std::move(sources)) {
  LCS_REQUIRE(w.size() == g.num_edges(), "weights do not match graph");
  LCS_REQUIRE(!sources_.empty(), "need at least one source");
  for (const graph::Weight x : w) LCS_REQUIRE(x >= 0, "negative weights unsupported");
  const std::size_t n = g.num_vertices();
  dist_.assign(sources_.size() * n, kInf);
  parent_.assign(sources_.size() * n, graph::kNoVertex);
  queue_.resize(2 * static_cast<std::size_t>(g.num_edges()));
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    LCS_REQUIRE(sources_[i] < n, "source out of range");
    improve(i, sources_[i], 0, graph::kNoVertex);
  }
}

void MultiBellmanFordProgram::improve(std::size_t i, VertexId v, std::uint64_t d,
                                      VertexId par) {
  const std::size_t idx = i * g_->num_vertices() + v;
  if (d >= dist_[idx]) return;
  dist_[idx] = d;
  parent_[idx] = par;
  for (const graph::HalfEdge he : g_->neighbors(v)) {
    queue_[dir_of(*g_, he.edge, v)].push_back(
        {static_cast<std::uint32_t>(i), v, d});
    ++total_queued_;
  }
}

void MultiBellmanFordProgram::on_round(NodeContext& ctx) {
  const VertexId v = ctx.node();
  for (const Message& m : ctx.inbox()) {
    if (m.kind != kDistToken) continue;
    const std::size_t i = m.algo;
    const EdgeId via = static_cast<EdgeId>(m.b >> 32);
    const std::uint64_t cand = m.a + static_cast<std::uint64_t>(w_[via]);
    improve(i, v, cand, static_cast<VertexId>(m.b & 0xffffffffu));
  }
  for (const graph::HalfEdge he : ctx.topology().neighbors(v)) {
    auto& q = queue_[dir_of(*g_, he.edge, v)];
    while (!q.empty() && ctx.remaining_capacity(he.edge) > 0) {
      const Pending p = q.front();
      q.pop_front();
      --total_queued_;
      // Drop stale announcements: the sender has improved since enqueue,
      // and a fresher entry is behind this one in some queue.
      if (dist_[p.source * g_->num_vertices() + p.sender] != p.dist) continue;
      Message m;
      m.algo = p.source;
      m.kind = kDistToken;
      m.a = p.dist;
      m.b = (static_cast<std::uint64_t>(he.edge) << 32) | p.sender;
      ctx.send(he.edge, m);
    }
  }
}

std::uint64_t MultiBellmanFordProgram::dist_of(std::size_t i, VertexId v) const {
  LCS_REQUIRE(i < sources_.size(), "source index out of range");
  LCS_REQUIRE(v < g_->num_vertices(), "vertex out of range");
  return dist_[i * g_->num_vertices() + v];
}

VertexId MultiBellmanFordProgram::parent_of(std::size_t i, VertexId v) const {
  LCS_REQUIRE(i < sources_.size(), "source index out of range");
  LCS_REQUIRE(v < g_->num_vertices(), "vertex out of range");
  return parent_[i * g_->num_vertices() + v];
}

}  // namespace lcs::congest
