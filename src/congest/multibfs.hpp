// Scheduled parallel BFS — the engine behind Theorem 2.1 ([Gha15]) as the
// paper uses it: N BFS algorithms, the i-th restricted to its own
// sub-network (for shortcuts: G[S_i] ∪ H_i), all run together under the
// 1-message-per-edge-per-round CONGEST budget.  Each instance starts after
// a (random) delay and grows one hop per delivery opportunity; tokens that
// find an edge busy wait in per-edge FIFO queues (store-and-forward).
//
// With delays drawn uniformly from [0, C) and per-edge congestion <= C,
// dilation <= d, all instances complete in O(C + d log n) rounds w.h.p. —
// exactly the bound the shortcut construction's final step relies on.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "congest/simulator.hpp"

namespace lcs::congest {

struct BfsInstanceSpec {
  VertexId root = graph::kNoVertex;
  /// Sub-network edges (parent-graph edge ids; duplicates tolerated).
  std::vector<EdgeId> edges;
  std::uint32_t depth_cap = graph::kUnreached;
  std::uint32_t start_round = 0;
};

class MultiBfsProgram : public Program {
 public:
  MultiBfsProgram(const Graph& g, std::vector<BfsInstanceSpec> specs);

  void on_round(NodeContext& ctx) override;
  /// Busy while tokens are queued or any instance still awaits its delayed
  /// start (otherwise the simulator would quiesce before the start round).
  bool idle() const override {
    return total_queued_ == 0 && started_ == inst_.size();
  }

  std::size_t num_instances() const { return specs_.size(); }

  /// BFS distance of `v` in instance `i`, or kUnreached.
  std::uint32_t dist_of(std::size_t i, VertexId v) const;

  /// BFS parent of `v` in instance `i` (parent-graph vertex), or kNoVertex.
  VertexId parent_of(std::size_t i, VertexId v) const;
  /// Edge to the BFS parent, or kNoEdge.
  EdgeId parent_edge_of(std::size_t i, VertexId v) const;

  /// Round at which instance i adopted its last vertex (0 if it never grew).
  std::uint32_t last_adoption_round(std::size_t i) const;

  /// Largest BFS depth reached by instance i.
  std::uint32_t max_depth(std::size_t i) const;

  /// Members (vertices incident to the instance's edges, plus its root).
  const std::vector<VertexId>& members(std::size_t i) const;

 private:
  struct Instance {
    VertexId root;
    std::uint32_t depth_cap;
    std::uint32_t start_round;
    std::vector<VertexId> members;                       // sorted
    std::unordered_map<VertexId, std::uint32_t> index;   // vertex -> local id
    // Local CSR adjacency: (neighbour vertex, parent edge id).
    std::vector<std::uint32_t> offsets;
    std::vector<graph::HalfEdge> adj;
    // Per-member BFS state.
    std::vector<std::uint32_t> dist;
    std::vector<VertexId> parent;
    std::vector<EdgeId> parent_edge;
    std::uint32_t last_adoption = 0;
    std::uint32_t max_depth = 0;
  };

  void adopt_and_enqueue(std::size_t i, VertexId v, std::uint32_t d, VertexId par,
                         EdgeId par_edge, std::uint32_t round);
  std::size_t dir_of(EdgeId e, VertexId from) const;

  const Graph* g_;
  std::vector<BfsInstanceSpec> specs_;
  std::vector<Instance> inst_;
  std::vector<std::vector<std::size_t>> instances_rooted_at_;  // by root vertex
  std::vector<std::deque<Message>> queue_;                     // by directed edge
  std::uint64_t total_queued_ = 0;
  std::size_t started_ = 0;
};

/// Convenience runner: simulate until every instance stops growing, then
/// report the global round count and message totals.
struct MultiBfsOutcome {
  RunStats stats;
};
MultiBfsOutcome run_multi_bfs(const Graph& g, MultiBfsProgram& program,
                              std::uint32_t max_rounds);

}  // namespace lcs::congest
