#include "util/rng.hpp"

#include <cmath>
#include <unordered_set>

namespace lcs {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  LCS_REQUIRE(bound > 0, "uniform() needs a positive bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_in(std::int64_t lo, std::int64_t hi) {
  LCS_REQUIRE(lo <= hi, "uniform_in() needs lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform_real() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real_positive() {
  for (;;) {
    const double u = uniform_real();
    if (u > 0.0) return u;
  }
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_real() < p;
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  // Sample the rarer outcome so the inversion loop below stays short.
  if (p > 0.5) return n - binomial(n, 1.0 - p);

  const double nd = static_cast<double>(n);
  const double np = nd * p;
  if (np < 10.0) {
    // Geometric-skip inversion ("second waiting time"): jump from success to
    // success by geometric gaps instead of testing every trial.  Expected
    // iterations: np + 1.
    const double log_q = std::log1p(-p);
    std::uint64_t k = 0;
    double consumed = 0.0;
    for (;;) {
      const double u = uniform_real_positive();
      consumed += std::floor(std::log(u) / log_q) + 1.0;
      if (consumed > nd) return k;
      ++k;
    }
  }

  // BTRS (Hörmann 1993, "The generation of binomial random variates"):
  // transformed rejection with a squeeze, valid for p <= 0.5 and np >= 10.
  // Expected number of rounds is ~1.15 independent of n and p.
  const double q = 1.0 - p;
  const double spq = std::sqrt(np * q);
  const double b = 1.15 + 2.53 * spq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = np + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double u_rv_r = 0.86 * v_r;
  const double alpha = (2.83 + 5.1 / b) * spq;
  const double lpq = std::log(p / q);
  const double m = std::floor((nd + 1.0) * p);  // the mode
  const double h = std::lgamma(m + 1.0) + std::lgamma(nd - m + 1.0);
  for (;;) {
    double v = uniform_real();
    double u;
    if (v <= u_rv_r) {
      // Inside the squeeze: accept without evaluating the density.
      u = v / v_r - 0.43;
      return static_cast<std::uint64_t>(
          std::floor((2.0 * a / (0.5 - std::abs(u)) + b) * u + c));
    }
    if (v >= v_r) {
      u = uniform_real() - 0.5;
    } else {
      u = v / v_r - 0.93;
      u = (u < 0.0 ? -0.5 : 0.5) - u;
      v = uniform_real() * v_r;
    }
    const double us = 0.5 - std::abs(u);
    const double k = std::floor((2.0 * a / us + b) * u + c);
    if (k < 0.0 || k > nd) continue;
    v = v * alpha / (a / (us * us) + b);
    if (std::log(v) <=
        h - std::lgamma(k + 1.0) - std::lgamma(nd - k + 1.0) + (k - m) * lpq) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

std::vector<std::uint64_t> Rng::sample_distinct(std::uint64_t bound, std::size_t count) {
  LCS_REQUIRE(count <= bound, "cannot sample more distinct values than the range holds");
  // Dense range: partial Fisher–Yates; sparse: rejection with a hash set.
  if (bound <= 4 * count) {
    std::vector<std::uint64_t> all(bound);
    for (std::uint64_t i = 0; i < bound; ++i) all[i] = i;
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(uniform(bound - i));
      std::swap(all[i], all[j]);
    }
    all.resize(count);
    return all;
  }
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::uint64_t> out;
  out.reserve(count);
  while (out.size() < count) {
    const std::uint64_t v = uniform(bound);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

Rng Rng::fork(std::uint64_t stream) const {
  // Combine current state with the stream id through the mixer; the parent
  // generator is left untouched so forks are order-independent.
  return Rng(hash64(s_[0] ^ rotl(s_[3], 13) ^ hash64(stream)));
}

Rng Rng::split(std::uint64_t stream_id) const {
  // Counter-based: a pure function of (construction seed, stream id), so the
  // derived stream is identical no matter when — or on which thread — the
  // split happens.  Double mixing keeps adjacent stream ids uncorrelated.
  return Rng(hash64(hash64(seed_ ^ 0xa0761d6478bd642fULL) ^ hash64(stream_id)));
}

}  // namespace lcs
