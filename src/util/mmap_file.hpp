// Read-only whole-file memory mapping (POSIX).
//
// MappedFile backs the zero-deserialization snapshot load path: the CSR
// arrays and weight vector of a loaded GraphSnapshot are std::span views
// straight into the mapping, kept alive by the shared_ptr<const MappedFile>
// the snapshot stores as its backing.  The mapping is MAP_PRIVATE +
// PROT_READ, so a mapped snapshot file is physically immutable in-process
// and one file can back any number of concurrent readers.
#pragma once

#include <cstddef>
#include <filesystem>
#include <memory>

namespace lcs {

class MappedFile {
 public:
  /// Map `path` read-only in full.  Throws std::runtime_error (message
  /// prefixed "mmap: ") when the file cannot be opened, stat'ed or mapped.
  /// An empty file maps to {data() == nullptr, size() == 0}.
  static std::shared_ptr<const MappedFile> open(const std::filesystem::path& path);

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  MappedFile(const std::byte* data, std::size_t size) : data_(data), size_(size) {}

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace lcs
