// Byte-level checksumming and canonical little-endian encoding, shared by
// the on-disk snapshot format and the RPC wire protocol.
//
// checksum_bytes() is a word-at-a-time splitmix64 chain (util/rng.hpp's
// hash64 applied to each 8-byte little-endian word, with a zero-padded
// tail and the length mixed in last).  It is not cryptographic; it exists
// to reject torn, truncated or bit-flipped bytes with a deterministic
// error before any of them are interpreted.  The value is part of the
// snapshot file format (docs/snapshot_format.md) and of the RPC frame
// format (src/rpc/frame.hpp), so the definition must never change under an
// unchanged format version.
//
// ByteBuf / ByteReader are the canonical encoders both formats build their
// variable-length payloads from: fixed-width little-endian integers,
// doubles as bit patterns, raw byte runs — no varints, no padding, so the
// same logical content always produces the same bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace lcs {

/// Checksum of `size` bytes at `data`.  checksum_bytes(nullptr, 0) is a
/// well-defined constant (the empty-range checksum).
std::uint64_t checksum_bytes(const void* data, std::size_t size);

/// Little-endian append buffer: the canonical encoder of snapshot artifact
/// sections and RPC wire payloads.
class ByteBuf {
 public:
  void u8(std::uint8_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void raw(const void* p, std::size_t nbytes) {
    const std::size_t at = buf_.size();
    buf_.resize(at + nbytes);
    if (nbytes > 0) std::memcpy(buf_.data() + at, p, nbytes);
  }
  const std::byte* data() const { return buf_.data(); }
  std::uint64_t size() const { return buf_.size(); }
  /// Move the accumulated bytes out (the buffer is empty afterwards).
  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

/// Bounds-checked reader over one ByteBuf-encoded byte run.  Any read past
/// the end throws std::runtime_error("<context>data out of bounds") — the
/// caller chooses the context prefix so snapshot and RPC decoding keep
/// their own deterministic error vocabularies.
class ByteReader {
 public:
  ByteReader(const std::byte* data, std::uint64_t size, std::string context)
      : data_(data), size_(size), context_(std::move(context)) {}

  std::uint8_t u8() {
    std::uint8_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  void raw(void* dst, std::uint64_t nbytes) {
    if (size_ - pos_ < nbytes) throw std::runtime_error(context_ + "data out of bounds");
    if (nbytes > 0) std::memcpy(dst, data_ + pos_, nbytes);
    pos_ += nbytes;
  }
  std::uint64_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  const std::byte* data_;
  std::uint64_t size_;
  std::uint64_t pos_ = 0;
  std::string context_;
};

}  // namespace lcs
