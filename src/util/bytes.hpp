// Byte-level checksumming for the on-disk snapshot format.
//
// checksum_bytes() is a word-at-a-time splitmix64 chain (util/rng.hpp's
// hash64 applied to each 8-byte little-endian word, with a zero-padded
// tail and the length mixed in last).  It is not cryptographic; it exists
// to reject torn, truncated or bit-flipped snapshot sections with a
// deterministic error before any bytes are interpreted.  The value is part
// of the snapshot file format (docs/snapshot_format.md), so the definition
// must never change under an unchanged format version.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lcs {

/// Checksum of `size` bytes at `data`.  checksum_bytes(nullptr, 0) is a
/// well-defined constant (the empty-range checksum).
std::uint64_t checksum_bytes(const void* data, std::size_t size);

}  // namespace lcs
