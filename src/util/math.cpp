#include "util/math.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace lcs {

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  LCS_REQUIRE(b > 0, "ceil_div by zero");
  return (a + b - 1) / b;
}

unsigned floor_log2(std::uint64_t x) {
  LCS_REQUIRE(x >= 1, "floor_log2 of zero");
  unsigned r = 0;
  while (x >>= 1) ++r;
  return r;
}

double ln_clamped(std::uint64_t n) { return std::max(1.0, std::log(static_cast<double>(n))); }

double k_d_of(std::uint64_t n, unsigned diameter) {
  if (diameter <= 2) return 1.0;
  const double d = static_cast<double>(diameter);
  const double exponent = (d - 2.0) / (2.0 * d - 2.0);
  return std::pow(static_cast<double>(n), exponent);
}

ShortcutParams ShortcutParams::make(std::uint64_t n, unsigned diameter, double beta) {
  LCS_REQUIRE(n >= 2, "need at least two vertices");
  LCS_REQUIRE(diameter >= 1, "diameter must be positive");
  LCS_REQUIRE(beta > 0.0, "beta must be positive");
  ShortcutParams sp;
  sp.n = n;
  sp.diameter = diameter;
  sp.beta = beta;
  sp.k_d = k_d_of(n, diameter);
  sp.large_threshold = static_cast<std::uint64_t>(std::ceil(sp.k_d));
  sp.max_large_parts = ceil_div(n, std::max<std::uint64_t>(1, sp.large_threshold));
  sp.repetitions = std::max(1u, diameter);
  const double p = beta * sp.k_d * ln_clamped(n) / static_cast<double>(sp.max_large_parts);
  sp.sample_prob = std::clamp(p, 0.0, 1.0);
  return sp;
}

double log_log_slope(const double* xs, const double* ys, int count) {
  LCS_REQUIRE(count >= 2, "log_log_slope needs at least two points");
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int used = 0;
  for (int i = 0; i < count; ++i) {
    if (xs[i] <= 0.0 || ys[i] <= 0.0) continue;
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++used;
  }
  LCS_REQUIRE(used >= 2, "log_log_slope needs at least two positive points");
  const double denom = used * sxx - sx * sx;
  LCS_REQUIRE(std::abs(denom) > 1e-12, "log_log_slope: degenerate x values");
  return (used * sxy - sx * sy) / denom;
}

}  // namespace lcs
