#include "util/bytes.hpp"

#include <cstring>

#include "util/rng.hpp"

namespace lcs {

std::uint64_t checksum_bytes(const void* data, std::size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = hash64(0xb17e5ULL);
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, p + i, 8);
    h = hash64(h ^ word);
  }
  if (i < size) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, p + i, size - i);
    h = hash64(h ^ tail);
  }
  return hash64(h ^ static_cast<std::uint64_t>(size));
}

}  // namespace lcs
