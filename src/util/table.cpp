#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace lcs {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LCS_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table& Table::row() {
  LCS_CHECK(cells_.empty() || cells_.back().size() == headers_.size(),
            "previous row incomplete");
  cells_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& v) {
  LCS_REQUIRE(!cells_.empty(), "call row() before cell()");
  LCS_REQUIRE(cells_.back().size() < headers_.size(), "row has too many cells");
  cells_.back().push_back(v);
  return *this;
}

Table& Table::cell(const char* v) { return cell(std::string(v)); }
Table& Table::cell(std::uint64_t v) { return cell(std::to_string(v)); }
Table& Table::cell(std::int64_t v) { return cell(std::to_string(v)); }
Table& Table::cell(int v) { return cell(std::to_string(v)); }
Table& Table::cell(unsigned v) { return cell(std::to_string(v)); }

Table& Table::cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return cell(os.str());
}

void Table::print(std::ostream& os, const std::string& title) const {
  if (!title.empty()) os << "=== " << title << " ===\n";
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : cells_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : cells_) emit(row);
  os.flush();
}

}  // namespace lcs
