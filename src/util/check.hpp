// Precondition / invariant checking used across the library.
//
// Following the "catch run-time errors early" guideline, public entry
// points validate their contracts with LCS_REQUIRE (always on, throws
// std::invalid_argument) and internal invariants with LCS_CHECK (always
// on, throws std::logic_error).  Both are cheap O(1) checks; anything
// more expensive lives in the test suite or behind verify() functions.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace lcs::detail {

[[noreturn]] inline void fail_require(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "precondition violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void fail_check(const char* expr, const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace lcs::detail

// Contract on arguments of a public API entry point.
#define LCS_REQUIRE(expr, msg)                                          \
  do {                                                                  \
    if (!(expr)) ::lcs::detail::fail_require(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

// Internal invariant that indicates a library bug when violated.
#define LCS_CHECK(expr, msg)                                            \
  do {                                                                  \
    if (!(expr)) ::lcs::detail::fail_check(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
