// Shortcut parameters and small integer/real helpers.
//
// All quantities from Section 2 of Kogan–Parter (PODC 2021) live here:
//   k_D = n^((D-2)/(2D-2))        (the quality target)
//   N   = ceil(n / k_D)           (max number of "large" parts)
//   p   = beta * k_D * ln(n) / N  (per-repetition edge sampling probability)
// The `beta` knob scales the poly-log factor; the paper's w.h.p. analysis
// corresponds to beta >= 1, and the EA2 ablation sweeps it.
#pragma once

#include <cstdint>

namespace lcs {

/// ceil(a / b) for positive integers.
std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b);

/// floor(log2(x)) for x >= 1.
unsigned floor_log2(std::uint64_t x);

/// Natural log of n, clamped below by 1.0 so tiny instances stay sane.
double ln_clamped(std::uint64_t n);

/// Parameters of the Kogan–Parter construction for an n-vertex graph of
/// (even or odd) unweighted diameter D.
struct ShortcutParams {
  std::uint64_t n = 0;       ///< number of vertices
  unsigned diameter = 0;     ///< D (>= 3 for the k_D regime; D<=2 maps to trivial params)
  double beta = 1.0;         ///< poly-log scaling knob on the sampling probability
  double k_d = 0.0;          ///< n^((D-2)/(2D-2))
  std::uint64_t large_threshold = 0;  ///< parts with more vertices than this are "large"
  std::uint64_t max_large_parts = 0;  ///< N = ceil(n / k_D)
  unsigned repetitions = 0;  ///< D independent sampling repetitions (Step 2)
  double sample_prob = 0.0;  ///< p, clamped to [0, 1]

  /// Compute all derived quantities.  Requires n >= 2 and D >= 1.
  static ShortcutParams make(std::uint64_t n, unsigned diameter, double beta = 1.0);
};

/// k_D = n^((D-2)/(2D-2)); returns 1.0 for D <= 2 (the exponent is <= 0).
double k_d_of(std::uint64_t n, unsigned diameter);

/// Least-squares slope of log(y) against log(x); the empirical exponent of
/// a power law.  Ignores non-positive samples.  Needs >= 2 usable points.
double log_log_slope(const double* xs, const double* ys, int count);

}  // namespace lcs
