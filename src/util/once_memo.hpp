// Thread-safe once-per-key memoization for shared immutable artifacts.
//
// OnceMemo<Key, Value> backs the snapshot-level artifact cache: the first
// caller of a key computes the value (outside the map lock, so independent
// keys compute concurrently); every concurrent or later caller of the same
// key blocks on / reuses that one computation and receives the same
// shared_ptr<const Value>.  The memo never changes *what* is computed —
// compute functions must be pure in the key — so results are bit-identical
// whether a lookup hits, misses, or the table was cleared in between; only
// the hit/miss telemetry can tell the difference.
//
// Failure is not cached: when a compute throws, its slot is erased and the
// exception propagates to every caller waiting on that key, so a later call
// retries instead of replaying a stale error.
//
// No-deadlock rule: a caller running inside a parallel region (a pool
// worker or task) never *blocks* on an in-flight computation — it computes
// the value privately and returns its own copy (identical bytes, by
// purity), counted in stats as a bypass.  Blocking there could deadlock:
// the in-flight owner may be a top-level thread about to use the pool,
// which cannot drain while one of its workers sleeps on the owner's
// future.  Ready entries are reused from anywhere; top-level callers wait
// normally (they hold no pool resources an owner could need).
//
// Capacity: `max_entries` bounds the table (0 = unbounded).  On overflow
// the memo drops every *completed* entry — a deterministic epoch flush that
// needs no access-order bookkeeping (LRU order under concurrency is
// scheduling-dependent; which values exist in a cache must never matter for
// results, so the simplest policy wins).  In-flight computations survive a
// flush untouched.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace lcs {

/// Hit/miss/bypass/eviction counters of one memo (monotone; telemetry).
struct MemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// In-region callers that found the key in flight and computed privately
  /// instead of blocking (the no-deadlock rule above).
  std::uint64_t bypasses = 0;
  std::uint64_t evictions = 0;

  std::uint64_t lookups() const { return hits + misses + bypasses; }
  double hit_rate() const {
    const std::uint64_t total = lookups();
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class OnceMemo {
 public:
  using ValuePtr = std::shared_ptr<const Value>;

  /// `max_entries` caps the table size; 0 keeps it unbounded.
  explicit OnceMemo(std::size_t max_entries = 0) : max_entries_(max_entries) {}

  OnceMemo(const OnceMemo&) = delete;
  OnceMemo& operator=(const OnceMemo&) = delete;

  /// Return the memoized value for `key`, computing it via `compute` (any
  /// `Value()` callable — no std::function erasure on the hit path) on the
  /// first (or a concurrent-first) call.  `compute` must be a pure function
  /// of the key; it runs on the calling thread without the map lock held.
  template <typename Fn>
  ValuePtr get_or_compute(const Key& key, Fn&& compute) {
    std::shared_future<ValuePtr> future;
    bool owner = false;
    std::uint64_t token = 0;
    // Engaged only on the claim path: hits and bypasses must not pay the
    // promise's shared-state allocation.
    std::optional<std::promise<ValuePtr>> promise;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      auto it = map_.find(key);
      if (it == map_.end()) {
        if (max_entries_ > 0 && map_.size() >= max_entries_) evict_completed_locked();
        promise.emplace();
        future = promise->get_future().share();
        token = ++next_token_;
        map_.emplace(key, Entry{future, token});
        owner = true;
        ++misses_;
      } else if (in_parallel_region() &&
                 it->second.future.wait_for(std::chrono::seconds(0)) !=
                     std::future_status::ready) {
        // The no-deadlock rule: never block a pool worker on an in-flight
        // owner (who may be a top-level thread that needs this very pool).
        // The value is a pure function of the key — compute a private,
        // bit-identical copy instead.
        ++bypasses_;
        future = {};
      } else {
        future = it->second.future;
        ++hits_;
      }
    }
    if (!owner && !future.valid()) return std::make_shared<const Value>(compute());
    if (owner) {
      try {
        promise->set_value(std::make_shared<const Value>(compute()));
      } catch (...) {
        // Do not cache failure: erase the slot so a later call retries, then
        // deliver the exception to everyone already waiting on this key.
        // The token guards against erasing a successor entry that replaced
        // this one (impossible while we hold the slot, but cheap to pin).
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          auto it = map_.find(key);
          if (it != map_.end() && it->second.token == token) map_.erase(it);
        }
        promise->set_exception(std::current_exception());
      }
    }
    ValuePtr value = future.get();  // rethrows a compute failure
    LCS_CHECK(value != nullptr, "OnceMemo computed a null value");
    return value;
  }

  /// Every completed (key, value) pair currently in the table, in map
  /// order (callers sort by key when they need a canonical order — the
  /// snapshot writer does).  In-flight computations are skipped.
  std::vector<std::pair<Key, ValuePtr>> ready_entries() const {
    std::vector<std::pair<Key, ValuePtr>> out;
    const std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(map_.size());
    for (const auto& [key, entry] : map_)
      if (entry.future.wait_for(std::chrono::seconds(0)) == std::future_status::ready)
        out.emplace_back(key, entry.future.get());
    return out;
  }

  /// True when `key` holds a completed value.  A stats-free probe — counted
  /// as neither hit nor miss, like seed() — so prewarming passes can skip
  /// slots a loader already seeded without perturbing the telemetry the
  /// zero-lookup load gates assert on.  In-flight computations report false.
  bool contains_ready(const Key& key) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    return it != map_.end() &&
           it->second.future.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  }

  /// Pre-populate `key` with an already-materialized value (the snapshot
  /// loader warming a memo from disk).  Counted as neither hit nor miss —
  /// the entry was never computed here — and exempt from capacity eviction
  /// (seeders replay at most the entry set a capped memo held at save
  /// time).  Returns false, changing nothing, when the key already exists.
  bool seed(const Key& key, ValuePtr value) {
    LCS_CHECK(value != nullptr, "OnceMemo cannot be seeded with null");
    std::promise<ValuePtr> ready;
    ready.set_value(std::move(value));
    const std::lock_guard<std::mutex> lock(mutex_);
    if (map_.contains(key)) return false;
    map_.emplace(key, Entry{ready.get_future().share(), ++next_token_});
    return true;
  }

  /// Drop every completed entry (in-flight computations are left alone).
  /// Purely a capacity/telemetry event: values are recomputed bit-identical.
  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    evict_completed_locked();
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
  }

  std::size_t max_entries() const { return max_entries_; }

  MemoStats stats() const {
    MemoStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.bypasses = bypasses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Entry {
    std::shared_future<ValuePtr> future;
    std::uint64_t token = 0;  ///< identity of the insertion that owns the slot
  };

  void evict_completed_locked() {
    for (auto it = map_.begin(); it != map_.end();) {
      if (it->second.future.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
        it = map_.erase(it);
        evictions_.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }

  const std::size_t max_entries_;
  mutable std::mutex mutex_;
  std::unordered_map<Key, Entry, Hash> map_;
  std::uint64_t next_token_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> bypasses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace lcs
