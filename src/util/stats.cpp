#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace lcs {

void Stats::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Stats::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Stats::sum() const {
  double s = 0;
  for (double x : samples_) s += x;
  return s;
}

double Stats::mean() const {
  LCS_REQUIRE(!samples_.empty(), "mean of empty Stats");
  return sum() / static_cast<double>(samples_.size());
}

double Stats::min() const {
  LCS_REQUIRE(!samples_.empty(), "min of empty Stats");
  ensure_sorted();
  return samples_.front();
}

double Stats::max() const {
  LCS_REQUIRE(!samples_.empty(), "max of empty Stats");
  ensure_sorted();
  return samples_.back();
}

double Stats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double Stats::percentile(double q) const {
  LCS_REQUIRE(!samples_.empty(), "percentile of empty Stats");
  LCS_REQUIRE(q >= 0.0 && q <= 100.0, "percentile out of range");
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double rank = q / 100.0 * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace lcs
