// Fixed-width table printing for the benchmark harnesses.
//
// Every bench binary regenerates one "table" of the evaluation suite; this
// printer gives them a uniform, diff-friendly plain-text format:
//
//   === E2: congestion vs D*k_D*ln n ===
//   n        D    k_D      max_cong   bound     ratio
//   512      4    ...
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace lcs {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& v);
  Table& cell(const char* v);
  Table& cell(std::uint64_t v);
  Table& cell(std::int64_t v);
  Table& cell(int v);
  Table& cell(unsigned v);
  /// Doubles are rendered with 3 significant decimals (e.g. 12.345 -> "12.345").
  Table& cell(double v, int precision = 3);

  std::size_t rows() const { return cells_.size(); }

  /// Render with columns padded to the widest entry.
  void print(std::ostream& os, const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace lcs
