// Minimal JSON value + serializer (objects keep insertion order, doubles
// round-trip via %.17g).  Built for the bench harness's BENCH_*.json records
// but generic: no bench-specific knowledge lives here.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace lcs {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool v) : value_(v) {}
  Json(double v) : value_(v) {}
  Json(std::int64_t v) : value_(v) {}
  Json(std::uint64_t v) : value_(v) {}
  Json(int v) : value_(static_cast<std::int64_t>(v)) {}
  Json(unsigned v) : value_(static_cast<std::int64_t>(v)) {}
  Json(const char* v) : value_(std::string(v)) {}
  Json(std::string v) : value_(std::move(v)) {}

  static Json object() {
    Json j;
    j.value_ = Object{};
    return j;
  }
  static Json array() {
    Json j;
    j.value_ = Array{};
    return j;
  }

  bool is_object() const { return std::holds_alternative<Object>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }

  /// Object member lookup (false for non-objects).
  bool contains(const std::string& key) const;

  /// Object access; inserts a null member on first use.  Converts a
  /// default-constructed (null) value into an object.
  Json& operator[](const std::string& key);

  /// Array append.  Converts a default-constructed (null) value into an array.
  void push_back(Json v);

  std::size_t size() const;

  /// Serialize.  indent < 0 -> compact one-liner; otherwise pretty-printed
  /// with `indent` spaces per level.
  std::string dump(int indent = -1) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::int64_t, std::uint64_t, std::string, Array,
               Object>
      value_;
};

}  // namespace lcs
