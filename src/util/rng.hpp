// Deterministic pseudo-random number generation.
//
// All randomized components of the library (edge sampling, random-delay
// scheduling, workload generators) draw from lcs::Rng so that every
// experiment is reproducible from a single 64-bit seed.  The generator is
// xoshiro256**, seeded via splitmix64 (the recommended pairing); it is
// much faster than std::mt19937_64 and has no observable bias for our
// uses (Bernoulli sampling, bounded uniforms, shuffles).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace lcs {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless 64-bit mix (one splitmix64 round applied to `x`).
std::uint64_t hash64(std::uint64_t x);

/// xoshiro256** generator.  Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()();

  /// Uniform integer in [0, bound).  bound must be positive.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_in(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform_real();

  /// Uniform real in (0, 1): the zero draw (probability 2^-53) is rejected
  /// and redrawn, so -log of the result is always finite.  Use for
  /// exponential-clock keys instead of clamping.
  double uniform_real_positive();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Binomial(n, p) draw in O(1) expected time, independent of n: geometric-
  /// skip inversion while n*min(p,1-p) < 10 (expected n*p + 1 iterations),
  /// Hörmann's BTRS transformed rejection above it (expected ~1.15 rounds).
  /// Replaces n sequential bernoulli(p) draws wherever a whole capacity is
  /// thinned at once (sparsified_mincut's skeleton sampling).
  std::uint64_t binomial(std::uint64_t n, double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// `count` distinct values from [0, bound), in arbitrary order.
  std::vector<std::uint64_t> sample_distinct(std::uint64_t bound, std::size_t count);

  /// Derive an independent child generator (stable given the call index).
  Rng fork(std::uint64_t stream) const;

  /// Counter-based stream derivation: split(id) depends only on the seed
  /// this generator was constructed with and on `id` — not on how many
  /// values have been drawn since.  Parallel tasks that each take
  /// split(task_index) therefore observe identical streams at any thread
  /// count and in any execution order; fork() by contrast mixes in the
  /// current state, so it is stable only along a fixed draw sequence.
  Rng split(std::uint64_t stream_id) const;

  /// The seed this generator was constructed from (the split() base).
  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::uint64_t s_[4];
};

}  // namespace lcs
