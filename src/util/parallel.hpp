// Deterministic thread-pool runtime.
//
// A small work-stealing-free pool behind five entry points:
//
//   parallel_for(begin, end, grain, fn)            — fn(i) per index
//   parallel_for_chunked(begin, end, grain, fn)    — fn(chunk_begin, chunk_end, worker)
//   parallel_reduce(begin, end, grain, init, map, combine)
//   parallel_sort(first, last, cmp)                — == std::stable_sort at any thread count
//   parallel_tasks(count, task)                    — coarse tasks that may themselves
//                                                    call the entry points above
//
// Determinism contract: results never depend on thread count or scheduling.
// The index range is cut into fixed chunks of `grain` up front; chunks are
// claimed by an atomic counter, but everything that *combines* results does
// so in chunk-index order (parallel_reduce) or into caller-owned per-index /
// per-worker slots whose merge is order-insensitive.  An exception thrown by
// a worker is re-thrown in the caller, and when several chunks throw, the
// one with the smallest chunk index wins — the same exception a sequential
// run of the same body would surface first (for bodies whose failure
// condition is per-index).  Nested parallel regions are rejected
// (std::invalid_argument) rather than deadlocking or silently serializing
// differently at different thread counts — with one deliberate exception:
// inside a parallel_tasks task, a nested entry point *composes* by running
// its chunks serially inline on the task's thread (identical results by
// this contract), so whole library calls can be batched as tasks.
//
// Thread count resolution, in priority order: set_num_threads(n) override,
// the LCS_THREADS environment variable, std::thread::hardware_concurrency.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <iterator>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace lcs {

/// Number of executors (caller + workers) the next parallel region will use.
unsigned num_threads();

/// Override the thread count (0 restores LCS_THREADS / hardware default).
/// Not safe to call concurrently with a running parallel region.
void set_num_threads(unsigned n);

/// Current override as set by set_num_threads (0 when none), so callers that
/// sweep thread counts (the S1/S2/S3 bench scenarios) can restore the prior
/// state.
unsigned thread_override();

/// RAII restore of the thread-count override: thread-sweeping scenario and
/// test bodies call set_num_threads() freely and the destructor puts the
/// prior override back, even on exceptions.
struct ThreadOverrideGuard {
  unsigned previous = thread_override();
  ThreadOverrideGuard() = default;
  ThreadOverrideGuard(const ThreadOverrideGuard&) = delete;
  ThreadOverrideGuard& operator=(const ThreadOverrideGuard&) = delete;
  ~ThreadOverrideGuard() { set_num_threads(previous); }
};

/// True while the calling thread executes inside a parallel region (used to
/// reject nested parallelism).
bool in_parallel_region();

/// True while the calling thread executes a parallel_tasks task body (where
/// nested parallel entry points serialize instead of throwing).
bool in_parallel_task();

/// Batch-submission entry point: runs task(t) for every t in [0, count)
/// across the pool.  Unlike parallel_for bodies, a task body MAY call the
/// other parallel entry points — such nested regions degrade to serial
/// execution on the task's thread (carrying the task's worker id, so
/// per-worker scratch sized with num_threads() stays disjoint between
/// concurrently running tasks).  By the determinism contract the serialized
/// execution produces the very bytes the parallel one would, so a batch of
/// heterogeneous library calls (the service layer's queries) is bit-identical
/// at any thread count and in any scheduling order.  Top-level entry: calling
/// it from inside a region or a task throws std::invalid_argument.  An
/// exception thrown by a task is re-thrown in the caller (smallest task index
/// wins); batch runners that must not abort siblings catch inside the task.
void parallel_tasks(std::size_t count, const std::function<void(std::size_t)>& task);

namespace detail {

/// Runs chunk_fn(chunk, worker) for every chunk in [0, num_chunks) across
/// the global pool; worker ids are dense in [0, num_threads()).  Blocks
/// until every chunk finished; re-throws the smallest-chunk exception.
void run_chunks(std::size_t num_chunks,
                const std::function<void(std::size_t, unsigned)>& chunk_fn);

}  // namespace detail

/// fn(chunk_begin, chunk_end, worker_id) per grain-sized chunk.  Use the
/// worker id to index per-thread scratch (size it with num_threads()).
template <typename Fn>
void parallel_for_chunked(std::size_t begin, std::size_t end, std::size_t grain, Fn&& fn) {
  LCS_REQUIRE(grain > 0, "parallel_for grain must be positive");
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const std::size_t chunks = (count + grain - 1) / grain;
  detail::run_chunks(chunks, [&](std::size_t c, unsigned worker) {
    const std::size_t chunk_begin = begin + c * grain;
    const std::size_t chunk_end = std::min(end, chunk_begin + grain);
    fn(chunk_begin, chunk_end, worker);
  });
}

/// fn(i) for every i in [begin, end), grain indices per task.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain, Fn&& fn) {
  parallel_for_chunked(begin, end, grain,
                       [&](std::size_t chunk_begin, std::size_t chunk_end, unsigned) {
                         for (std::size_t i = chunk_begin; i < chunk_end; ++i) fn(i);
                       });
}

/// parallel_for that degrades to a plain sequential loop instead of throwing
/// when the caller already executes inside a parallel region.  For library
/// entry points reachable both from top level and from within parallel
/// loops (program constructors, per-trial bodies).  The per-index slot
/// contract still applies: fn(i) must produce identical results either way.
template <typename Fn>
void parallel_for_or_serial(std::size_t begin, std::size_t end, std::size_t grain, Fn&& fn) {
  if (in_parallel_region()) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  parallel_for(begin, end, grain, std::forward<Fn>(fn));
}

/// map(chunk_begin, chunk_end) -> T per chunk; partials are combined in
/// chunk-index order, so non-commutative combines are deterministic.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain, T init, Map&& map,
                  Combine&& combine) {
  LCS_REQUIRE(grain > 0, "parallel_reduce grain must be positive");
  if (begin >= end) return init;
  const std::size_t count = end - begin;
  const std::size_t chunks = (count + grain - 1) / grain;
  std::vector<T> partial(chunks, init);
  detail::run_chunks(chunks, [&](std::size_t c, unsigned) {
    const std::size_t chunk_begin = begin + c * grain;
    const std::size_t chunk_end = std::min(end, chunk_begin + grain);
    partial[c] = map(chunk_begin, chunk_end);
  });
  T acc = std::move(init);
  for (T& p : partial) acc = combine(std::move(acc), std::move(p));
  return acc;
}

/// Grain that yields a few chunks per executor without degenerating to
/// per-index tasks for huge ranges.
inline std::size_t default_grain(std::size_t count, std::size_t min_grain = 1) {
  const std::size_t per = count / (4 * static_cast<std::size_t>(num_threads()) + 1);
  return std::max<std::size_t>({min_grain, per, 1});
}

/// Deterministic parallel merge sort over a random-access range.
///
/// Contract: the output equals std::stable_sort(first, last, cmp) at every
/// thread count.  Fixed-size chunks are stable-sorted independently, then
/// merged pairwise in width-doubling rounds whose pairing depends only on
/// the element count and chunk grain; every merge is stable
/// (std::inplace_merge), so equal elements keep their input order no matter
/// how chunks were scheduled.  Inside an existing parallel region (or at one
/// thread) it degrades to a plain std::stable_sort — same result, no nested
/// region.
template <typename It, typename Cmp>
void parallel_sort(It first, It last, Cmp cmp) {
  const std::size_t count = static_cast<std::size_t>(last - first);
  if (count < 2) return;
  const std::size_t grain = default_grain(count, 4096);
  if (in_parallel_region() || num_threads() == 1 || count <= grain) {
    std::stable_sort(first, last, cmp);
    return;
  }
  const std::size_t chunks = (count + grain - 1) / grain;
  parallel_for(0, chunks, 1, [&](std::size_t c) {
    std::stable_sort(first + static_cast<std::ptrdiff_t>(c * grain),
                     first + static_cast<std::ptrdiff_t>(std::min(count, (c + 1) * grain)), cmp);
  });
  for (std::size_t width = grain; width < count; width *= 2) {
    const std::size_t pairs = (count + 2 * width - 1) / (2 * width);
    parallel_for(0, pairs, 1, [&](std::size_t p) {
      const std::size_t lo = p * 2 * width;
      const std::size_t mid = std::min(count, lo + width);
      const std::size_t hi = std::min(count, lo + 2 * width);
      if (mid < hi) {
        std::inplace_merge(first + static_cast<std::ptrdiff_t>(lo),
                           first + static_cast<std::ptrdiff_t>(mid),
                           first + static_cast<std::ptrdiff_t>(hi), cmp);
      }
    });
  }
}

template <typename It>
void parallel_sort(It first, It last) {
  parallel_sort(first, last, std::less<typename std::iterator_traits<It>::value_type>());
}

}  // namespace lcs
