// Summary statistics for experiment harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace lcs {

/// One-pass accumulator plus exact percentiles (keeps all samples).
class Stats {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  /// Population standard deviation; 0 for fewer than 2 samples.
  double stddev() const;
  /// Exact percentile by nearest-rank (q in [0,100]).
  double percentile(double q) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  void ensure_sorted() const;
};

}  // namespace lcs
