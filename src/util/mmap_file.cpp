#include "util/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace lcs {

namespace {

[[noreturn]] void fail(const std::string& what, const std::filesystem::path& path) {
  throw std::runtime_error("mmap: " + what + " '" + path.string() +
                           "': " + std::strerror(errno));
}

}  // namespace

std::shared_ptr<const MappedFile> MappedFile::open(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail("cannot open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail("cannot stat", path);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  const std::byte* data = nullptr;
  if (size > 0) {
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      ::close(fd);
      fail("cannot map", path);
    }
    data = static_cast<const std::byte*>(map);
  }
  ::close(fd);  // the mapping survives the descriptor
  return std::shared_ptr<const MappedFile>(new MappedFile(data, size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(const_cast<std::byte*>(data_), size_);
}

}  // namespace lcs
