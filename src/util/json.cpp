#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace lcs {
namespace {

void escape_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(double v, std::string& out) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no inf/nan
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

Json& Json::operator[](const std::string& key) {
  if (std::holds_alternative<std::nullptr_t>(value_)) value_ = Object{};
  Object& obj = std::get<Object>(value_);
  for (auto& [k, v] : obj) {
    if (k == key) return v;
  }
  obj.emplace_back(key, Json{});
  return obj.back().second;
}

bool Json::contains(const std::string& key) const {
  const Object* obj = std::get_if<Object>(&value_);
  if (obj == nullptr) return false;
  for (const auto& [k, v] : *obj) {
    if (k == key) return true;
  }
  return false;
}

void Json::push_back(Json v) {
  if (std::holds_alternative<std::nullptr_t>(value_)) value_ = Array{};
  std::get<Array>(value_).push_back(std::move(v));
}

std::size_t Json::size() const {
  if (is_array()) return std::get<Array>(value_).size();
  if (is_object()) return std::get<Object>(value_).size();
  return 0;
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent >= 0) out += '\n';
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad = pretty ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
                                 : std::string();
  const std::string close_pad =
      pretty ? std::string(static_cast<std::size_t>(indent * depth), ' ') : std::string();
  const char* nl = pretty ? "\n" : "";
  const char* colon = pretty ? ": " : ":";

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const bool* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const double* d = std::get_if<double>(&value_)) {
    append_double(*d, out);
  } else if (const std::int64_t* num = std::get_if<std::int64_t>(&value_)) {
    out += std::to_string(*num);
  } else if (const std::uint64_t* unum = std::get_if<std::uint64_t>(&value_)) {
    out += std::to_string(*unum);
  } else if (const std::string* s = std::get_if<std::string>(&value_)) {
    escape_string(*s, out);
  } else if (const Array* arr = std::get_if<Array>(&value_)) {
    if (arr->empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    for (std::size_t i = 0; i < arr->size(); ++i) {
      out += pad;
      (*arr)[i].dump_to(out, indent, depth + 1);
      if (i + 1 < arr->size()) out += ',';
      out += nl;
    }
    out += close_pad;
    out += ']';
  } else if (const Object* obj = std::get_if<Object>(&value_)) {
    if (obj->empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    for (std::size_t i = 0; i < obj->size(); ++i) {
      out += pad;
      escape_string((*obj)[i].first, out);
      out += colon;
      (*obj)[i].second.dump_to(out, indent, depth + 1);
      if (i + 1 < obj->size()) out += ',';
      out += nl;
    }
    out += close_pad;
    out += '}';
  }
}

}  // namespace lcs
