#include "util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

namespace lcs {
namespace {

std::atomic<unsigned> g_override{0};

// One region per thread at a time; set for the caller and every worker while
// chunk bodies run, including the sequential fallback, so nesting is
// rejected identically at every thread count.
thread_local bool tl_in_region = false;

// Set while a parallel_tasks task body runs on this thread: nested entry
// points serialize inline instead of throwing.  tl_worker_id is the dense
// worker id the current chunk executes under (always < num_threads()); the
// serialized nested chunks inherit it so per-worker scratch indexed by it
// stays disjoint between tasks running concurrently on different workers.
thread_local bool tl_in_task = false;
thread_local unsigned tl_worker_id = 0;

unsigned env_threads() {
  const char* env = std::getenv("LCS_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 1 || v > 1024) return 0;
  return static_cast<unsigned>(v);
}

// One batch of chunks.  Lives in a shared_ptr so a worker that wakes after
// the caller already returned only observes an exhausted batch instead of a
// dangling pointer.
struct Batch {
  const std::function<void(std::size_t, unsigned)>* fn = nullptr;
  std::size_t total = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex err_mutex;
  std::exception_ptr error;
  std::size_t error_chunk = 0;

  void record_error(std::size_t chunk, std::exception_ptr e) {
    const std::lock_guard<std::mutex> lock(err_mutex);
    if (error == nullptr || chunk < error_chunk) {
      error = std::move(e);
      error_chunk = chunk;
    }
  }
};

class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads) : size_(std::max(1u, threads)) {
    workers_.reserve(size_ - 1);
    for (unsigned w = 1; w < size_; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  unsigned size() const { return size_; }

  void run(std::size_t num_chunks, const std::function<void(std::size_t, unsigned)>& fn) {
    auto batch = std::make_shared<Batch>();
    batch->fn = &fn;
    batch->total = num_chunks;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Serialize batches from independent caller threads.
      caller_cv_.wait(lock, [this] { return batch_ == nullptr; });
      batch_ = batch;
      ++generation_;
    }
    wake_cv_.notify_all();
    execute(*batch, 0);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [&] { return batch->done.load() == batch->total; });
      batch_ = nullptr;
    }
    caller_cv_.notify_one();
    if (batch->error != nullptr) std::rethrow_exception(batch->error);
  }

 private:
  void worker_loop(unsigned worker) {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Batch> batch;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        batch = batch_;
      }
      if (batch != nullptr) execute(*batch, worker);
    }
  }

  void execute(Batch& batch, unsigned worker) {
    tl_in_region = true;
    tl_worker_id = worker;
    std::size_t finished = 0;
    for (;;) {
      const std::size_t chunk = batch.next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= batch.total) break;
      try {
        (*batch.fn)(chunk, worker);
      } catch (...) {
        batch.record_error(chunk, std::current_exception());
      }
      ++finished;
    }
    tl_in_region = false;
    if (finished == 0) return;
    const std::size_t done = batch.done.fetch_add(finished) + finished;
    if (done == batch.total) {
      const std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }

  const unsigned size_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::condition_variable caller_cv_;
  std::shared_ptr<Batch> batch_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

// The global pool, rebuilt when the resolved thread count changes (cheap:
// only on set_num_threads / LCS_THREADS transitions, never mid-region).
std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool>& pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

ThreadPool& global_pool() {
  const std::lock_guard<std::mutex> lock(g_pool_mutex);
  auto& pool = pool_slot();
  const unsigned want = num_threads();
  if (pool == nullptr || pool->size() != want) pool = std::make_unique<ThreadPool>(want);
  return *pool;
}

}  // namespace

unsigned num_threads() {
  const unsigned over = g_override.load(std::memory_order_relaxed);
  if (over > 0) return over;
  const unsigned env = env_threads();
  if (env > 0) return env;
  return std::max(1u, std::thread::hardware_concurrency());
}

void set_num_threads(unsigned n) { g_override.store(n, std::memory_order_relaxed); }

unsigned thread_override() { return g_override.load(std::memory_order_relaxed); }

bool in_parallel_region() { return tl_in_region; }

bool in_parallel_task() { return tl_in_task; }

void parallel_tasks(std::size_t count, const std::function<void(std::size_t)>& task) {
  LCS_REQUIRE(!tl_in_region, "parallel_tasks is a top-level entry point");
  detail::run_chunks(count, [&](std::size_t t, unsigned) {
    // One task per chunk.  The flag makes every parallel entry point the
    // task body reaches serialize inline instead of throwing; it is restored
    // per task because the surrounding worker loop keeps tl_in_region set
    // across tasks of the same batch.
    tl_in_task = true;
    try {
      task(t);
    } catch (...) {
      tl_in_task = false;
      throw;
    }
    tl_in_task = false;
  });
}

namespace detail {

void run_chunks(std::size_t num_chunks,
                const std::function<void(std::size_t, unsigned)>& chunk_fn) {
  if (num_chunks == 0) return;
  if (tl_in_region) {
    // A region opened inside a region is a bug — unless this thread runs a
    // parallel_tasks task, where nested entry points compose by running
    // their chunks serially inline, in chunk order (the same results by the
    // determinism contract, the same first exception by sequential order).
    LCS_REQUIRE(tl_in_task, "nested parallel regions are not supported");
    for (std::size_t c = 0; c < num_chunks; ++c) chunk_fn(c, tl_worker_id);
    return;
  }
  if (num_chunks == 1 || num_threads() == 1) {
    // Sequential fast path: same chunk order, same nesting rejection.
    tl_in_region = true;
    tl_worker_id = 0;
    try {
      for (std::size_t c = 0; c < num_chunks; ++c) chunk_fn(c, 0);
    } catch (...) {
      tl_in_region = false;
      throw;
    }
    tl_in_region = false;
    return;
  }
  global_pool().run(num_chunks, chunk_fn);
}

}  // namespace detail

}  // namespace lcs
