// Minimum spanning tree: the Kruskal reference and the shortcut-driven
// Boruvka algorithm of Corollary 1.2 (via [Gha17, Thm 6.1.2]).
//
// The Boruvka driver runs O(log n) phases.  In each phase the current
// fragments are the parts of a shortcut instance; every fragment finds its
// minimum-weight outgoing edge (MWOE) by a convergecast over the BFS tree
// of its augmented subgraph G[S_i] ∪ H_i.  All fragments do this together
// under the random-delay scheduler, so a phase costs Õ(c + d) rounds —
// Õ(k_D) with the Kogan–Parter shortcuts, Õ(sqrt(n)) with the
// Ghaffari–Haeupler baseline, and Θ(fragment diameter) with no shortcuts.
//
// What is simulated vs charged: the scheduled parallel BFS over the
// augmented subgraphs, the MWOE convergecast up the resulting trees, and
// the broadcast of each fragment's decision back down all run for real on
// the CONGEST simulator (rounds measured).  Fragment merging is charged
// one round (hook decisions are local once MWOEs are known).  Shortcut
// construction itself is charged per phase with the measured/analytic
// cost of its scheme (Theorem 1.1 / the GH baseline).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/kp.hpp"
#include "graph/weighted.hpp"

namespace lcs::mst {

using graph::EdgeId;
using graph::EdgeWeights;
using graph::WeightSpan;
using graph::Graph;
using graph::VertexId;
using graph::Weight;

struct MstResult {
  std::vector<EdgeId> edges;  ///< sorted edge ids
  Weight weight = 0;
};

/// Kruskal reference (spanning forest on disconnected graphs).
/// Ties broken by edge id, so the result is unique and comparable.
MstResult kruskal(const Graph& g, WeightSpan w);

enum class ShortcutScheme { kKoganParter, kGhaffariHaeupler, kNone };

struct BoruvkaOptions {
  ShortcutScheme scheme = ShortcutScheme::kKoganParter;
  double beta = 1.0;
  std::uint64_t seed = 1;
  std::optional<unsigned> diameter;  ///< known D for the KP parameters
  std::uint32_t max_phases = 64;
};

struct PhaseStats {
  std::uint32_t fragments = 0;       ///< fragments at phase start
  std::uint32_t bfs_rounds = 0;      ///< measured scheduled-BFS rounds
  std::uint32_t up_rounds = 0;       ///< measured MWOE convergecast rounds
  std::uint32_t down_rounds = 0;     ///< measured decision broadcast rounds
  std::uint32_t rounds_charged = 0;  ///< bfs + up + down + 1 (hooking)
  std::uint64_t messages = 0;
};

struct BoruvkaResult {
  MstResult mst;
  std::uint32_t phases = 0;
  std::uint64_t aggregation_rounds = 0;   ///< sum of rounds_charged
  std::uint64_t construction_rounds = 0;  ///< charged shortcut-construction cost
  std::uint64_t total_rounds() const { return aggregation_rounds + construction_rounds; }
  std::uint64_t messages = 0;
  std::vector<PhaseStats> phase_stats;
};

/// Boruvka over shortcuts.  Requires a connected graph.
BoruvkaResult boruvka_mst(const Graph& g, WeightSpan w,
                          const BoruvkaOptions& opt = {});

}  // namespace lcs::mst
