#include "mst/mst.hpp"

#include <algorithm>
#include <cmath>

#include "congest/multibfs.hpp"
#include "congest/multitree.hpp"
#include "congest/simulator.hpp"
#include "graph/algorithms.hpp"
#include "graph/union_find.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace lcs::mst {

MstResult kruskal(const Graph& g, WeightSpan w) {
  LCS_REQUIRE(w.size() == g.num_edges(), "weights do not match graph");
  std::vector<EdgeId> order(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) order[e] = e;
  // Deterministic parallel merge sort; (weight, id) keys are a total order,
  // so the sorted sequence is unique at every thread count.
  parallel_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return std::make_pair(w[a], a) < std::make_pair(w[b], b);
  });
  graph::UnionFind uf(g.num_vertices());
  MstResult out;
  for (const EdgeId e : order) {
    const graph::Edge ed = g.edge(e);
    if (uf.unite(ed.u, ed.v)) {
      out.edges.push_back(e);
      out.weight += w[e];
    }
  }
  std::sort(out.edges.begin(), out.edges.end());
  return out;
}

namespace {

/// Fragments of the current Boruvka forest as a Partition.
graph::Partition fragments_of(const Graph& g, graph::UnionFind& uf) {
  std::vector<std::int32_t> root_to_part(g.num_vertices(), -1);
  graph::Partition p;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const VertexId r = uf.find(v);
    if (root_to_part[r] == -1) {
      root_to_part[r] = static_cast<std::int32_t>(p.parts.size());
      p.parts.emplace_back();
    }
    p.parts[static_cast<std::size_t>(root_to_part[r])].push_back(v);
  }
  return p;
}

core::ShortcutSet shortcuts_for(const Graph& g, const graph::Partition& frags,
                                const BoruvkaOptions& opt, std::uint32_t phase) {
  switch (opt.scheme) {
    case ShortcutScheme::kKoganParter: {
      core::KpOptions ko;
      ko.beta = opt.beta;
      ko.seed = hash64(opt.seed ^ (0xb0f0ull + phase));
      ko.diameter = opt.diameter;
      return core::build_kp_shortcuts(g, frags, ko).shortcuts;
    }
    case ShortcutScheme::kGhaffariHaeupler:
      return core::build_gh_shortcuts(g, frags);
    case ShortcutScheme::kNone:
      return core::build_trivial_shortcuts(frags);
  }
  LCS_CHECK(false, "unknown scheme");
}

/// Charged per-phase construction cost of the scheme (rounds).
std::uint64_t construction_charge(const Graph& g, const BoruvkaOptions& opt) {
  const std::uint64_t n = std::max<std::uint64_t>(2, g.num_vertices());
  const double ln_n = ln_clamped(n);
  switch (opt.scheme) {
    case ShortcutScheme::kKoganParter: {
      const unsigned d =
          opt.diameter.value_or(std::max(1u, graph::diameter_double_sweep(g)));
      // Theorem 1.1: Õ(k_D) — charged as k_D * ln^2 n.
      return static_cast<std::uint64_t>(std::ceil(k_d_of(n, d) * ln_n * ln_n));
    }
    case ShortcutScheme::kGhaffariHaeupler:
      // O(sqrt(n) + D): identifying the >= sqrt(n)-size parts needs only
      // the part-internal BFS already charged in aggregation; take sqrt(n).
      return static_cast<std::uint64_t>(std::ceil(std::sqrt(static_cast<double>(n))));
    case ShortcutScheme::kNone:
      return 0;
  }
  LCS_CHECK(false, "unknown scheme");
}

}  // namespace

BoruvkaResult boruvka_mst(const Graph& g, WeightSpan w, const BoruvkaOptions& opt) {
  LCS_REQUIRE(w.size() == g.num_edges(), "weights do not match graph");
  LCS_REQUIRE(graph::is_connected(g), "boruvka_mst requires a connected graph");

  BoruvkaResult out;
  graph::UnionFind uf(g.num_vertices());
  const std::uint64_t per_phase_construction = construction_charge(g, opt);
  Rng delay_rng(hash64(opt.seed ^ 0xdead5eedULL));

  for (std::uint32_t phase = 0; phase < opt.max_phases; ++phase) {
    if (uf.num_sets() == 1) break;
    graph::Partition frags = fragments_of(g, uf);
    const std::vector<std::int32_t> frag_of = frags.assignment(g.num_vertices());

    // --- MWOE per fragment (computed centrally; communicated via the
    // convergecast charged below) --------------------------------------
    const EdgeId kNone = graph::kNoEdge;
    const std::size_t nf = frags.parts.size();
    std::vector<EdgeId> mwoe(nf, kNone);
    auto better = [&](EdgeId a, EdgeId b) {
      if (b == kNone) return false;
      if (a == kNone) return true;
      return std::make_pair(w[b], b) < std::make_pair(w[a], a);
    };
    // Edge chunks scan into per-worker per-fragment slots; (weight, id) is a
    // total order, so the cross-worker min-merge is order-insensitive and
    // the forest is identical at any thread count.
    {
      std::vector<std::vector<EdgeId>> worker_mwoe(num_threads());
      const std::size_t m = g.num_edges();
      parallel_for_chunked(
          0, m, default_grain(m, 512),
          [&](std::size_t begin, std::size_t end, unsigned worker) {
            auto& slots = worker_mwoe[worker];
            if (slots.size() != nf) slots.assign(nf, kNone);
            for (std::size_t e = begin; e < end; ++e) {
              const graph::Edge ed = g.edge(static_cast<EdgeId>(e));
              const std::int32_t fu = frag_of[ed.u];
              const std::int32_t fv = frag_of[ed.v];
              if (fu == fv) continue;
              const EdgeId id = static_cast<EdgeId>(e);
              if (better(slots[static_cast<std::size_t>(fu)], id))
                slots[static_cast<std::size_t>(fu)] = id;
              if (better(slots[static_cast<std::size_t>(fv)], id))
                slots[static_cast<std::size_t>(fv)] = id;
            }
          });
      for (const auto& slots : worker_mwoe) {
        if (slots.empty()) continue;
        for (std::size_t i = 0; i < nf; ++i)
          if (better(mwoe[i], slots[i])) mwoe[i] = slots[i];
      }
    }
    bool any = false;
    for (const EdgeId e : mwoe) any = any || e != kNone;
    if (!any) break;  // disconnected (excluded by precondition) or done

    // --- measured scheduled BFS over the augmented fragments ------------
    const core::ShortcutSet sc = shortcuts_for(g, frags, opt, phase);
    // Per-fragment augmented edge sets land in index-addressed spec slots;
    // the load count is summed afterwards (additions commute).
    std::vector<congest::BfsInstanceSpec> specs(nf);
    parallel_for(0, nf, default_grain(nf, 16), [&](std::size_t i) {
      specs[i].root = frags.leader(i);
      specs[i].edges = core::augmented_edges(g, frags.parts[i], sc.h[i]);
    });
    std::vector<std::uint32_t> edge_load(g.num_edges(), 0);
    for (const auto& spec : specs)
      for (const EdgeId e : spec.edges) ++edge_load[e];
    std::uint32_t delay_range = 1;
    for (const std::uint32_t c : edge_load) delay_range = std::max(delay_range, c);
    for (auto& spec : specs)
      spec.start_round = static_cast<std::uint32_t>(delay_rng.uniform(delay_range));

    congest::MultiBfsProgram prog(g, std::move(specs));
    congest::Simulator sim(g, 1);
    // Scheduled programs share queue accounting, so node turns stay
    // sequential — but message delivery is simulator-owned and fans out
    // receiver-partitioned without changing rounds/messages/loads.
    sim.set_parallel_delivery(true);
    const congest::RunStats st =
        sim.run(prog, 8 * g.num_vertices() + 4 * delay_range + 64);
    LCS_CHECK(st.completed, "phase BFS did not quiesce");

    // --- simulated MWOE convergecast + decision broadcast ----------------
    // Per-member value: its best *outgoing* edge packed as (weight, edge);
    // relay vertices (tree members outside the fragment) contribute the
    // identity.  The min over the tree must equal the centrally computed
    // MWOE — a structural cross-check on the whole pipeline.
    constexpr std::uint64_t kIdentity = static_cast<std::uint64_t>(-1);
    auto pack = [&](EdgeId e) {
      LCS_CHECK(e < (1u << 24), "edge id exceeds packing width");
      const std::uint64_t wgt = static_cast<std::uint64_t>(w[e]);
      LCS_CHECK(wgt < (1ULL << 39), "weight exceeds packing width");
      return (wgt << 24) | e;
    };
    // Per-instance tree extraction + member values are independent; each
    // instance writes only its own tspec slot.
    std::vector<congest::TreeInstanceSpec> tspecs(nf);
    parallel_for(0, nf, default_grain(nf, 16), [&](std::size_t i) {
      congest::TreeInstanceSpec spec = congest::tree_spec_from_multibfs(prog, i);
      for (std::size_t k = 0; k < spec.members.size(); ++k) {
        const VertexId v = spec.members[k];
        std::uint64_t best = kIdentity;
        if (frag_of[v] == static_cast<std::int32_t>(i)) {
          for (const graph::HalfEdge he : g.neighbors(v))
            if (frag_of[he.to] != static_cast<std::int32_t>(i))
              best = std::min(best, pack(he.edge));
        }
        spec.value[k] = best;
      }
      tspecs[i] = std::move(spec);
    });
    congest::MultiConvergecastProgram up(
        g, tspecs, [](std::uint64_t a, std::uint64_t b) { return std::min(a, b); });
    congest::Simulator up_sim(g, 1);
    up_sim.set_parallel_delivery(true);
    const congest::RunStats up_st = up.idle()
                                        ? congest::RunStats{0, 0, 0, true}
                                        : up_sim.run(up, 8 * g.num_vertices() + 64);
    std::vector<std::uint64_t> decisions(tspecs.size());
    for (std::size_t i = 0; i < tspecs.size(); ++i) {
      LCS_CHECK(up.complete(i), "convergecast did not reach the root");
      decisions[i] = up.result(i);
      const EdgeId central = mwoe[i];
      const EdgeId distributed =
          decisions[i] == kIdentity ? kNone
                                    : static_cast<EdgeId>(decisions[i] & 0xffffff);
      LCS_CHECK(central == distributed, "distributed MWOE disagrees with oracle");
    }
    congest::MultiBroadcastProgram down(g, std::move(tspecs), decisions);
    congest::Simulator down_sim(g, 1);
    down_sim.set_parallel_delivery(true);
    const congest::RunStats down_st =
        down.idle() ? congest::RunStats{0, 0, 0, true}
                    : down_sim.run(down, 8 * g.num_vertices() + 64);

    PhaseStats ps;
    ps.fragments = static_cast<std::uint32_t>(frags.parts.size());
    ps.bfs_rounds = st.rounds;
    ps.up_rounds = up_st.rounds;
    ps.down_rounds = down_st.rounds;
    ps.rounds_charged = st.rounds + up_st.rounds + down_st.rounds + 1;
    ps.messages = st.messages + up_st.messages + down_st.messages;
    out.aggregation_rounds += ps.rounds_charged;
    out.construction_rounds += per_phase_construction;
    out.messages += ps.messages;
    out.phase_stats.push_back(ps);

    // --- merge along MWOEs ----------------------------------------------
    for (const EdgeId e : mwoe) {
      if (e == kNone) continue;
      const graph::Edge ed = g.edge(e);
      if (uf.unite(ed.u, ed.v)) {
        out.mst.edges.push_back(e);
        out.mst.weight += w[e];
      }
    }
    ++out.phases;
  }
  LCS_CHECK(uf.num_sets() == 1, "boruvka did not converge to one fragment");
  std::sort(out.mst.edges.begin(), out.mst.edges.end());
  return out;
}

}  // namespace lcs::mst
