#include "tecss/tecss.hpp"

#include <algorithm>
#include <limits>

#include "graph/algorithms.hpp"
#include "graph/union_find.hpp"
#include "mst/mst.hpp"
#include "util/check.hpp"

namespace lcs::tecss {

bool is_two_edge_connected(const Graph& g) {
  if (g.num_vertices() < 2) return false;
  if (!graph::is_connected(g)) return false;
  return graph::bridges(g).empty();
}

namespace {

Weight certified_lower_bound(const Graph& g, WeightSpan w, Weight mst_weight) {
  // Degree bound: any 2-ECSS has min degree 2, so its weight is at least
  // half the sum over vertices of the two lightest incident edges.
  Weight two_min_sum = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    Weight m1 = std::numeric_limits<Weight>::max();
    Weight m2 = std::numeric_limits<Weight>::max();
    for (const graph::HalfEdge he : g.neighbors(v)) {
      const Weight x = w[he.edge];
      if (x < m1) {
        m2 = m1;
        m1 = x;
      } else if (x < m2) {
        m2 = x;
      }
    }
    LCS_CHECK(m2 != std::numeric_limits<Weight>::max(), "vertex with degree < 2");
    two_min_sum += m1 + m2;
  }
  return std::max(mst_weight, (two_min_sum + 1) / 2);
}

}  // namespace

TwoEcssResult two_ecss_approx(const Graph& g, WeightSpan w) {
  LCS_REQUIRE(w.size() == g.num_edges(), "weights do not match graph");
  LCS_REQUIRE(is_two_edge_connected(g), "input must be 2-edge-connected");

  const mst::MstResult tree = mst::kruskal(g, w);
  std::vector<bool> in_tree(g.num_edges(), false);
  for (const EdgeId e : tree.edges) in_tree[e] = true;

  // Root the tree; cover tree edges with non-tree edges chosen by
  // ascending weight.  The union-find "climb" contracts covered tree edges
  // so each is processed once (near-linear overall).
  const std::uint32_t n = g.num_vertices();
  std::vector<VertexId> parent(n, graph::kNoVertex);
  std::vector<std::uint32_t> depth(n, 0);
  {
    std::vector<std::vector<VertexId>> adj(n);
    for (const EdgeId e : tree.edges) {
      const graph::Edge ed = g.edge(e);
      adj[ed.u].push_back(ed.v);
      adj[ed.v].push_back(ed.u);
    }
    std::vector<VertexId> order{0};
    std::vector<bool> seen(n, false);
    seen[0] = true;
    for (std::size_t head = 0; head < order.size(); ++head) {
      const VertexId u = order[head];
      for (const VertexId v : adj[u]) {
        if (seen[v]) continue;
        seen[v] = true;
        parent[v] = u;
        depth[v] = depth[u] + 1;
        order.push_back(v);
      }
    }
  }
  // Union-find over "covered" tree edges: groups are subtrees whose
  // internal tree edges are all covered; shallow[] maps a group root to the
  // group's minimum-depth vertex (whose parent edge is the next uncovered
  // edge above the group).
  graph::UnionFind covered(n);
  std::vector<VertexId> shallow(n);
  for (VertexId v = 0; v < n; ++v) shallow[v] = v;
  auto rep = [&](VertexId v) { return shallow[covered.find(v)]; };

  std::vector<EdgeId> nontree;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (!in_tree[e]) nontree.push_back(e);
  std::sort(nontree.begin(), nontree.end(), [&](EdgeId a, EdgeId b) {
    return std::make_pair(w[a], a) < std::make_pair(w[b], b);
  });

  std::vector<EdgeId> chosen;
  std::uint32_t uncovered = n - 1;  // tree edges not yet covered
  for (const EdgeId e : nontree) {
    if (uncovered == 0) break;
    const graph::Edge ed = g.edge(e);
    VertexId a = rep(ed.u);
    VertexId b = rep(ed.v);
    bool used = false;
    // Climb both endpoints to their LCA, covering tree edges on the way.
    // a and b are always the shallowest vertices of their covered groups.
    while (a != b) {
      if (depth[a] < depth[b]) std::swap(a, b);
      // Cover the tree edge (a, parent(a)).
      const VertexId pa = parent[a];
      LCS_CHECK(pa != graph::kNoVertex, "climbed past the root");
      const VertexId ra = covered.find(a);
      const VertexId rb = covered.find(pa);
      LCS_CHECK(ra != rb, "group top's parent edge was already covered");
      const VertexId sa = shallow[ra];
      const VertexId sb = shallow[rb];
      covered.unite(ra, rb);
      shallow[covered.find(ra)] = depth[sb] < depth[sa] ? sb : sa;
      --uncovered;
      used = true;
      a = rep(a);
    }
    if (used) chosen.push_back(e);
  }
  LCS_CHECK(uncovered == 0, "2-edge-connected input must allow covering all tree edges");

  TwoEcssResult out;
  out.edges = tree.edges;
  out.edges.insert(out.edges.end(), chosen.begin(), chosen.end());
  std::sort(out.edges.begin(), out.edges.end());
  out.weight = graph::total_weight(w, out.edges);
  out.lower_bound = certified_lower_bound(g, w, tree.weight);
  out.ratio = static_cast<double>(out.weight) / static_cast<double>(out.lower_bound);

  // Verify.
  std::vector<std::pair<VertexId, VertexId>> sub_edges;
  sub_edges.reserve(out.edges.size());
  for (const EdgeId e : out.edges) {
    const graph::Edge ed = g.edge(e);
    sub_edges.emplace_back(ed.u, ed.v);
  }
  const Graph sub = Graph::from_edges(n, std::move(sub_edges));
  out.valid = is_two_edge_connected(sub);
  return out;
}

TwoEcssResult two_ecss_brute_force(const Graph& g, WeightSpan w) {
  LCS_REQUIRE(g.num_edges() <= 22, "brute force limited to tiny instances");
  LCS_REQUIRE(is_two_edge_connected(g), "input must be 2-edge-connected");
  const std::uint32_t m = g.num_edges();
  TwoEcssResult best;
  best.weight = std::numeric_limits<Weight>::max();
  for (std::uint32_t mask = 0; mask < (1u << m); ++mask) {
    Weight total = 0;
    std::vector<std::pair<VertexId, VertexId>> sub_edges;
    for (EdgeId e = 0; e < m; ++e) {
      if (!(mask & (1u << e))) continue;
      total += w[e];
      const graph::Edge ed = g.edge(e);
      sub_edges.emplace_back(ed.u, ed.v);
    }
    if (total >= best.weight) continue;
    const Graph sub = Graph::from_edges(g.num_vertices(), std::move(sub_edges));
    if (!is_two_edge_connected(sub)) continue;
    best.weight = total;
    best.edges.clear();
    for (EdgeId e = 0; e < m; ++e)
      if (mask & (1u << e)) best.edges.push_back(e);
  }
  LCS_CHECK(best.weight != std::numeric_limits<Weight>::max(), "no 2-ECSS found");
  best.valid = true;
  best.lower_bound = best.weight;
  best.ratio = 1.0;
  return best;
}

}  // namespace lcs::tecss
