// Minimum-weight two-edge-connected spanning subgraph (2-ECSS)
// approximation — Corollary 4.3's application.
//
// Dory–Ghaffari's O(log n)-approximation is a shortcut-driven distributed
// algorithm; per DESIGN.md §4 we reproduce its skeleton: take an MST, then
// augment it with non-tree edges covering every tree edge (bridges of the
// partial subgraph), chosen greedily by weight with a union-find climb.
// The achieved ratio is measured against a certified lower bound
// max(MST weight, half the sum of each vertex's two lightest edges).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/weighted.hpp"

namespace lcs::tecss {

using graph::EdgeId;
using graph::EdgeWeights;
using graph::WeightSpan;
using graph::Graph;
using graph::VertexId;
using graph::Weight;

/// True iff g is connected and has no bridge.
bool is_two_edge_connected(const Graph& g);

struct TwoEcssResult {
  std::vector<EdgeId> edges;   ///< the chosen subgraph (sorted)
  Weight weight = 0;
  Weight lower_bound = 0;      ///< certified LB on the optimum
  double ratio = 0.0;          ///< weight / lower_bound
  bool valid = false;          ///< result verified 2-edge-connected
};

/// Requires a 2-edge-connected input graph.
TwoEcssResult two_ecss_approx(const Graph& g, WeightSpan w);

/// Exhaustive optimum for tiny instances (m <= ~22); tests only.
TwoEcssResult two_ecss_brute_force(const Graph& g, WeightSpan w);

}  // namespace lcs::tecss
