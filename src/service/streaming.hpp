// StreamingService: steady-state streaming admission with per-tenant QoS.
//
// PR 5's run_admitted drains one batch per call — queue_ms and wave slots
// are only meaningful within that batch, and there is no notion of a
// tenant, a rate, or sustained load.  This layer promotes admission to a
// persistent loop: callers enqueue (tenant, QueryRequest) continuously from
// any number of threads into one shared bounded cross-batch queue, and
// drain waves pull strict per-cost-class FIFO slots exactly like
// run_admitted (cheap shortcut queries are never starved behind heavy
// MST/mincut work).  On top sits rate-based policy:
//
//  * Per-tenant token buckets.  Each tenant owns one bucket per cost class
//    (burst in whole queries = bucket capacity; refill in milli-tokens per
//    drained wave).  The admission clock is the wave counter — batch-counted
//    like the shard router's probe backoff, never wall time — so bucket
//    state is a pure fold over the event sequence.
//  * Deterministic load shedding.  A submission is admitted or shed
//    synchronously at submit(), and the verdict is a pure function of
//    (tenant config, arrival index, queue state at that index): replaying
//    the recorded schedule through replay_shed_schedule() reproduces the
//    byte-identical verdict sequence (determinism contract point 9,
//    docs/architecture.md).  Shedding never changes served content — an
//    admitted query's result is still pure in (snapshot, seed, id), and
//    admitted queries are never dropped, only delayed.
//
// The admission core is AdmissionLedger: a single-threaded pure fold of
// arrival/wave events that the live service drives under its mutex and
// that tests/the S8 gates re-drive offline from the recorded schedule.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/service.hpp"

namespace lcs::service {

/// Milli-token resolution of the tenant buckets: admitting one query costs
/// 1000 milli-tokens, refills are integral milli-tokens per drained wave, so
/// fractional rates (e.g. one query every 4 waves = 250) stay exact integer
/// arithmetic — no floats anywhere near an admission verdict.
inline constexpr std::uint64_t kMilliTokensPerQuery = 1000;

/// Sentinel tenant index carried by verdicts for unregistered tenant names
/// (named distinctly from ShedReason::kUnknownTenant, which reports it).
inline constexpr std::uint32_t kInvalidTenant = 0xffffffffu;

/// One cost-class budget of one tenant.
struct TokenBucketConfig {
  /// Bucket capacity in whole queries; also the initial fill, so a fresh
  /// tenant can burst up to `burst` queries of the class before the
  /// wave-counted refill matters.  0 = the class is shut off for the tenant
  /// (every arrival sheds, deterministically).
  std::uint32_t burst = 8;
  /// Milli-tokens credited per drained wave, capped at burst capacity.
  /// 1000 sustains one query per wave; 250 one query every 4th wave.
  std::uint64_t refill_millitokens = 1000;
};

/// Per-tenant QoS configuration: independent cheap / heavy budgets.
struct TenantConfig {
  std::string name;
  TokenBucketConfig cheap;
  TokenBucketConfig heavy;
};

/// Configuration of the streaming admission loop.
struct StreamingOptions {
  /// Bound of the shared cross-batch queue (cheap + heavy pending together).
  /// Arrivals that would exceed it shed with kQueueFull — before any token
  /// is spent, so a full queue never drains a tenant's budget.
  std::size_t max_queue = 1024;
  /// Per-wave slot caps, strict per class exactly as AdmissionOptions: the
  /// cheap class owns cheap_slots every wave regardless of heavy backlog.
  unsigned cheap_slots = 4;
  unsigned heavy_slots = 2;
  /// Registered tenants (non-empty, distinct non-empty names).  Submissions
  /// naming anyone else shed with ShedReason::kUnknownTenant.
  std::vector<TenantConfig> tenants;
  /// true: a background drain thread pumps waves whenever work is pending.
  /// false: the owner pumps explicitly via drain_wave()/drain_until_idle()
  /// — the mode tests and the S8 scenario use for schedule-exact replays.
  bool drain_thread = true;
};

/// Why a submission was shed (kNone = admitted).
enum class ShedReason : std::uint8_t {
  kNone = 0,
  kUnknownTenant,  ///< tenant name not registered in StreamingOptions
  kQueueFull,      ///< shared queue at max_queue (checked before the bucket)
  kRateLimited,    ///< the tenant's bucket for the class is below one query
};

inline const char* shed_reason_name(ShedReason r) {
  switch (r) {
    case ShedReason::kNone: return "admitted";
    case ShedReason::kUnknownTenant: return "unknown_tenant";
    case ShedReason::kQueueFull: return "queue_full";
    case ShedReason::kRateLimited: return "rate_limited";
  }
  return "invalid";
}

/// The admission decision for one arrival — everything here is a pure
/// function of (StreamingOptions, schedule prefix), which is what the
/// shed-replay gates compare structurally.
struct ArrivalVerdict {
  std::uint64_t arrival = 0;           ///< global arrival index (0-based)
  std::uint32_t tenant = kInvalidTenant;  ///< index into options().tenants
  CostClass cls = CostClass::kCheap;
  ShedReason reason = ShedReason::kNone;
  std::uint32_t admission_wave = 0;    ///< wave counter when the verdict fell
  std::uint64_t queue_depth = 0;       ///< shared queue depth after the verdict
  std::uint64_t millitokens_after = 0;  ///< tenant bucket for cls after the verdict
  bool admitted() const { return reason == ShedReason::kNone; }
  bool operator==(const ArrivalVerdict&) const = default;
};

/// One recorded admission event.  The journal of these is "the schedule":
/// folding it through a fresh AdmissionLedger must reproduce the live
/// verdict sequence byte for byte.
struct ScheduleEvent {
  enum class Kind : std::uint8_t { kArrival = 0, kWave = 1 };
  Kind kind = Kind::kArrival;
  std::uint32_t tenant = kInvalidTenant;  ///< arrivals only
  CostClass cls = CostClass::kCheap;      ///< arrivals only
  bool operator==(const ScheduleEvent&) const = default;
};

/// Telemetry of one drained wave (deterministic — a pure fold output).
struct WaveRecord {
  std::uint32_t wave = 0;
  std::uint32_t cheap_granted = 0;
  std::uint32_t heavy_granted = 0;
  std::uint64_t cheap_pending_before = 0;
  std::uint64_t heavy_pending_before = 0;
  std::uint64_t queue_depth_after = 0;
  bool operator==(const WaveRecord&) const = default;
};

/// Deterministic per-tenant admission counters.
struct TenantCounters {
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_rate_limited = 0;
  bool operator==(const TenantCounters&) const = default;
};

/// Snapshot of one tenant's state for reporting.
struct TenantStats {
  std::string name;
  TenantCounters counters;
  std::uint64_t served = 0;  ///< admitted queries whose results are published
  std::uint64_t cheap_millitokens = 0;
  std::uint64_t heavy_millitokens = 0;
};

/// The pure admission fold.  Single-threaded by design: the live service
/// drives one instance under its mutex; replay_shed_schedule() drives a
/// fresh instance from a recorded schedule.  Every output (verdicts, wave
/// grants, counters) is a deterministic function of the event sequence.
class AdmissionLedger {
 public:
  /// Members a wave granted, plus its telemetry record.
  struct WaveGrant {
    WaveRecord record;
    std::vector<std::uint64_t> members;  ///< arrival indices, cheap then heavy
  };

  /// Validates the options: positive slot caps and queue bound, at least
  /// one tenant, distinct non-empty tenant names.  Buckets start full.
  explicit AdmissionLedger(StreamingOptions options);

  const StreamingOptions& options() const { return opt_; }

  /// Index of `name` in options().tenants, or kInvalidTenant.
  std::uint32_t tenant_index(const std::string& name) const;

  /// Fold one arrival: verdict order is unknown-tenant, queue-full (no
  /// token spent), rate-limited, admitted (one query's worth of tokens
  /// deducted, arrival appended to its class FIFO).
  ArrivalVerdict on_arrival(std::uint32_t tenant, CostClass cls);

  /// Cut the next wave: up to cheap_slots cheap then heavy_slots heavy
  /// arrivals in strict per-class FIFO order, then advance the admission
  /// clock — every tenant bucket refills by its per-wave rate (capped at
  /// burst capacity).  An empty wave still ticks the clock.
  WaveGrant next_wave();

  std::size_t queue_depth() const { return cheap_fifo_.size() + heavy_fifo_.size(); }
  std::uint32_t waves() const { return waves_; }
  std::uint64_t arrivals() const { return arrivals_; }
  std::uint64_t millitokens(std::uint32_t tenant, CostClass cls) const;
  const TenantCounters& counters(std::uint32_t tenant) const;

 private:
  struct TenantState {
    TenantConfig cfg;
    std::uint64_t cheap_millitokens = 0;
    std::uint64_t heavy_millitokens = 0;
    TenantCounters counters;
  };

  StreamingOptions opt_;
  std::vector<TenantState> tenants_;
  std::unordered_map<std::string, std::uint32_t> index_;
  std::deque<std::uint64_t> cheap_fifo_;  ///< pending arrival indices
  std::deque<std::uint64_t> heavy_fifo_;
  std::uint64_t arrivals_ = 0;
  std::uint32_t waves_ = 0;
};

/// Re-fold a recorded schedule through a fresh ledger and return the verdict
/// sequence — the enforcement half of determinism contract point 9: the live
/// StreamingService's verdicts() must equal
/// replay_shed_schedule(options, schedule()) structurally, at any thread
/// count and under any submit interleaving that produced that schedule.
std::vector<ArrivalVerdict> replay_shed_schedule(const StreamingOptions& options,
                                                 const std::vector<ScheduleEvent>& schedule);

/// The persistent admission loop over a ShortcutService.  Thread-safe:
/// submit() may race from many threads (the mutex serializes arrivals into
/// the journal — whatever order the race produced IS the schedule, and the
/// shed set is then pure in it).  Admitted work executes in waves on the
/// deterministic pool via parallel_tasks; each result carries queue_ms and
/// wave telemetry (digest-excluded) and is bit-identical to
/// service().run(request).
class StreamingService {
 public:
  struct Entry;  // pending-result slot, private to the implementation

  /// Handle returned by submit(): either an admitted query to wait() on, or
  /// a shed verdict with deterministic reason text.
  class Ticket {
   public:
    bool admitted() const { return verdict_.admitted(); }
    const ArrivalVerdict& verdict() const { return verdict_; }
    /// Deterministic human-readable shed reason; empty when admitted.
    const std::string& shed_text() const { return shed_text_; }

   private:
    friend class StreamingService;
    ArrivalVerdict verdict_;
    std::string shed_text_;
    std::shared_ptr<Entry> entry_;
  };

  /// Takes the service by value (it is a cheap handle: snapshot pointer,
  /// seed, options).  With options.drain_thread the background pump starts
  /// immediately; otherwise the owner pumps manually.
  StreamingService(ShortcutService service, StreamingOptions options);
  ~StreamingService();
  StreamingService(const StreamingService&) = delete;
  StreamingService& operator=(const StreamingService&) = delete;

  const ShortcutService& service() const { return svc_; }
  const StreamingOptions& options() const { return ledger_.options(); }

  /// Admit or shed one query for `tenant`, synchronously and
  /// deterministically (see ArrivalVerdict).  Requires a running service
  /// (throws after stop()) and, for admitted queries, ids distinct from
  /// other in-flight admitted queries of this service.
  Ticket submit(const std::string& tenant, const QueryRequest& request);

  /// Block until the ticket's query is served and return its result.
  /// Requires an admitted ticket issued by this service.
  QueryResult wait(const Ticket& ticket) const;

  /// Manual pump (requires options().drain_thread == false): cut and
  /// execute one wave.  An empty wave still advances the refill clock and
  /// is journaled — the background loop, by contrast, only pumps when work
  /// is pending, so idle time never refills buckets there either way.
  void drain_wave();

  /// Manual pump until the queue is empty.
  void drain_until_idle();

  /// Stop accepting submissions and finish the backlog (admitted queries
  /// are never dropped).  Idempotent; the destructor calls it.
  void stop();

  // Deterministic admission state, copied under the lock.
  std::vector<ScheduleEvent> schedule() const;
  std::vector<ArrivalVerdict> verdicts() const;
  std::vector<WaveRecord> wave_records() const;
  std::vector<TenantStats> tenant_stats() const;
  std::size_t queue_depth() const;
  std::uint32_t waves_completed() const;
  std::uint64_t arrivals() const;

 private:
  void drain_loop();
  void pump_one_wave();
  std::string make_shed_text(const std::string& tenant, const ArrivalVerdict& v) const;

  ShortcutService svc_;
  mutable std::mutex mu_;
  mutable std::condition_variable work_cv_;
  mutable std::condition_variable done_cv_;
  AdmissionLedger ledger_;                 // guarded by mu_ (options are immutable)
  std::vector<ScheduleEvent> schedule_;    // guarded by mu_
  std::vector<ArrivalVerdict> verdicts_;   // guarded by mu_
  std::vector<WaveRecord> wave_records_;   // guarded by mu_
  std::unordered_map<std::uint64_t, std::shared_ptr<Entry>> pending_;  // guarded by mu_
  std::vector<std::uint64_t> served_;      // per tenant, guarded by mu_
  std::uint32_t waves_completed_ = 0;      // guarded by mu_
  bool stopped_ = false;                   // guarded by mu_
  std::thread drain_;
};

}  // namespace lcs::service
