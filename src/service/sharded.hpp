// Sharded query execution: a router scattering batches across shard
// backends by query id.
//
// Placement is the pure function shard_of(id, N) = hash64(id) % N — no
// load feedback, no affinity state — so where a query runs is as
// deterministic as what it computes.  Combined with the service contract
// (a result is a pure function of snapshot, seed and request), this gives
// the sharding determinism guarantee the tests pin down: the same batch
// routed across 1, 2 or 4 shards produces digests bit-identical to a
// single ShortcutService, at any thread count.
//
// The router talks to shards through the ShardBackend interface in two
// sequential passes: send every sub-batch, then gather every reply.  A
// LocalShard wraps an in-process ShortcutService (and can be killed for
// fault-injection tests); rpc/shard.hpp plugs a remote lcsshard process
// into the same seam.  Coherence is checked once at construction: every
// backend must report the snapshot fingerprint and service seed of shard
// 0, because a mixed fleet would silently answer queries against different
// frozen inputs.
//
// Shard death is captured, not retried: every query placed on a failed
// shard comes back ok=false with error "shard <i> unavailable: <reason>"
// (the reason is the backend's deterministic failure text), and queries on
// other shards are untouched.  A retry could land the query on a live
// shard and change the batch's failure pattern run to run; capturing keeps
// the whole result vector a function of (batch, fleet state).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/service.hpp"

namespace lcs::service {

/// The shard a query id lives on, given a fleet of `num_shards` (> 0).
inline std::size_t shard_of(std::uint64_t id, std::size_t num_shards) {
  return static_cast<std::size_t>(hash64(id) % num_shards);
}

/// Thrown by a backend whose shard is gone; the message is the
/// deterministic reason the router embeds in affected results.
class ShardUnavailable : public std::runtime_error {
 public:
  explicit ShardUnavailable(const std::string& reason) : std::runtime_error(reason) {}
};

/// Identity a shard reports at attach time: which frozen inputs it serves.
struct ShardInfo {
  std::uint64_t fingerprint = 0;   ///< GraphSnapshot::fingerprint()
  std::uint64_t seed = 0;          ///< ShortcutService seed
  std::uint32_t num_vertices = 0;  ///< sanity echo of the snapshot shape
  std::uint32_t num_edges = 0;
};

/// One shard as the router sees it.  send_batch/gather are a matched pair:
/// the router sends every shard's sub-batch before gathering any reply, so
/// remote shards compute concurrently without the router spawning threads.
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  /// Where/what this shard is, for error text ("local", an endpoint spec).
  virtual std::string describe() const = 0;

  /// The shard's identity; throws ShardUnavailable when it cannot answer.
  virtual ShardInfo info() = 0;

  /// Hand the shard its sub-batch.  Throws ShardUnavailable on a dead
  /// shard; must not partially apply (the router treats any throw as
  /// whole-sub-batch failure).
  virtual void send_batch(const std::vector<QueryRequest>& batch) = 0;

  /// Collect the results of the last send_batch, positionally parallel to
  /// it.  Throws ShardUnavailable on a dead shard.
  virtual std::vector<QueryResult> gather() = 0;
};

/// In-process backend over a ShortcutService — the reference shard the
/// digest gates compare remote fleets against, and the fault-injection
/// vehicle: kill() makes every later call throw ShardUnavailable("shard
/// killed") deterministically.
class LocalShard : public ShardBackend {
 public:
  explicit LocalShard(std::shared_ptr<const ShortcutService> service);

  std::string describe() const override { return "local"; }
  ShardInfo info() override;
  void send_batch(const std::vector<QueryRequest>& batch) override;
  std::vector<QueryResult> gather() override;

  /// Simulate shard death: every subsequent call throws.
  void kill() { killed_ = true; }

 private:
  void check_alive() const;

  std::shared_ptr<const ShortcutService> service_;
  std::vector<QueryRequest> pending_;
  bool killed_ = false;
};

/// The scatter/gather frontend.  Owns its backends; stateless across
/// batches beyond them.
class ShardRouter {
 public:
  /// Attaches the fleet and verifies coherence: every shard must report
  /// shard 0's snapshot fingerprint and service seed (LCS_REQUIRE
  /// otherwise — a mixed fleet is caller misuse, not a per-query error).
  explicit ShardRouter(std::vector<std::unique_ptr<ShardBackend>> shards);

  std::size_t num_shards() const { return shards_.size(); }
  /// The fleet's common snapshot fingerprint — the coherence token.
  std::uint64_t fingerprint() const { return fingerprint_; }
  std::uint64_t seed() const { return seed_; }

  /// Scatter `batch` by shard_of, gather, and return results in the
  /// caller's order.  Requires pairwise-distinct ids (the same guard as
  /// ShortcutService::run_batch, applied before anything crosses a
  /// process boundary).  Never throws for a dead shard: affected queries
  /// come back ok=false as documented above.
  std::vector<QueryResult> run_batch(const std::vector<QueryRequest>& batch) const;

 private:
  std::vector<std::unique_ptr<ShardBackend>> shards_;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t seed_ = 0;
};

}  // namespace lcs::service
