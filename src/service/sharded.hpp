// Sharded query execution: a router scattering batches across replicated
// shard backends by query id, with deterministic failover.
//
// Placement is a pure function of the query id.  The primary shard is
// shard_of(id, N) = hash64(id) % N — no load feedback, no affinity state —
// and replicas_of(id, N, R) extends it to an ordered preference list of R
// distinct shards via rendezvous hashing (R = 1 reduces exactly to
// shard_of).  Combined with the service contract (a result is a pure
// function of snapshot, seed and request), this gives the determinism
// guarantee the tests pin down: because every shard of a coherent fleet
// serves the same frozen inputs, serving a query from *any* replica in its
// preference list produces bit-identical bytes — so failover is
// determinism-safe, and the same batch routed across any fleet shape
// produces digests bit-identical to a single ShortcutService.
//
// The router talks to shards through the ShardBackend interface in
// sequential scatter/gather rounds: send every sub-batch, then gather
// every reply; queries whose shard failed move to their next live replica
// and go out in the next round.  A LocalShard wraps an in-process
// ShortcutService (and can be killed and revived for fault-injection
// tests); rpc/shard.hpp plugs a remote lcsshard process into the same
// seam, and service/fault.hpp wraps any backend in a scripted FaultPlan.
// Coherence is checked at attach: every reachable backend must report one
// common snapshot fingerprint and service seed, because a mixed fleet
// would silently answer queries against different frozen inputs.
//
// Failure handling is capture-or-failover, never blind retry: a query
// whose shard dies mid-batch fails over in preference order (at most one
// attempt per shard, bounded by RouterOptions::retries), and a query whose
// whole replica group is down comes back ok=false with error "shard <i>
// unavailable: <reason>" (the reason is the backend's deterministic
// failure text).  A shard that fails is marked down and re-probed lazily —
// one reattach() per due batch, spaced by capped exponential backoff
// counted in batches (never wall-clock), so the probe schedule itself is a
// pure function of the batch sequence.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/service.hpp"

namespace lcs::service {

/// The primary shard of a query id, given a fleet of `num_shards` (> 0).
inline std::size_t shard_of(std::uint64_t id, std::size_t num_shards) {
  return static_cast<std::size_t>(hash64(id) % num_shards);
}

/// The ordered replica preference list of a query id: `replicas` distinct
/// shards, primary first (== shard_of), fallbacks ranked by rendezvous
/// hashing over (id, shard) so each id gets its own deterministic fallback
/// order and a dead shard's load spreads over the whole fleet instead of
/// piling onto one neighbor.  `replicas` is clamped to `num_shards`.
std::vector<std::size_t> replicas_of(std::uint64_t id, std::size_t num_shards,
                                     std::size_t replicas);

/// Thrown by a backend whose shard is gone; the message is the
/// deterministic reason the router embeds in affected results.
class ShardUnavailable : public std::runtime_error {
 public:
  explicit ShardUnavailable(const std::string& reason) : std::runtime_error(reason) {}
};

/// Identity a shard reports at attach time: which frozen inputs it serves.
struct ShardInfo {
  std::uint64_t fingerprint = 0;   ///< GraphSnapshot::fingerprint()
  std::uint64_t seed = 0;          ///< ShortcutService seed
  std::uint32_t num_vertices = 0;  ///< sanity echo of the snapshot shape
  std::uint32_t num_edges = 0;
};

/// One shard as the router sees it.  send_batch/gather are a matched pair:
/// the router sends every shard's sub-batch before gathering any reply, so
/// remote shards compute concurrently without the router spawning threads.
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  /// Where/what this shard is, for error text ("local", an endpoint spec).
  virtual std::string describe() const = 0;

  /// The shard's identity; throws ShardUnavailable when it cannot answer.
  virtual ShardInfo info() = 0;

  /// Re-establish a lost connection and report identity — the router's
  /// down-shard probe.  The default is info() (in-process backends have
  /// nothing to re-dial); throws ShardUnavailable while the shard stays
  /// unreachable.
  virtual ShardInfo reattach() { return info(); }

  /// Hand the shard its sub-batch.  Throws ShardUnavailable on a dead
  /// shard; must not partially apply (the router treats any throw as
  /// whole-sub-batch failure).
  virtual void send_batch(const std::vector<QueryRequest>& batch) = 0;

  /// Collect the results of the last send_batch, positionally parallel to
  /// it.  Throws ShardUnavailable on a dead shard.
  virtual std::vector<QueryResult> gather() = 0;
};

/// In-process backend over a ShortcutService — the reference shard the
/// digest gates compare remote fleets against, and the fault-injection
/// vehicle: kill() makes every later call throw ShardUnavailable("shard
/// killed") deterministically, revive() brings it back (the router's next
/// probe re-attaches it).
class LocalShard : public ShardBackend {
 public:
  explicit LocalShard(std::shared_ptr<const ShortcutService> service);

  std::string describe() const override { return "local"; }
  ShardInfo info() override;
  void send_batch(const std::vector<QueryRequest>& batch) override;
  std::vector<QueryResult> gather() override;

  /// Simulate shard death: every subsequent call throws.
  void kill() { killed_ = true; }
  /// Undo kill(): the shard answers again (snapshot and seed unchanged).
  void revive() { killed_ = false; }

 private:
  void check_alive() const;

  std::shared_ptr<const ShortcutService> service_;
  std::vector<QueryRequest> pending_;
  bool killed_ = false;
};

/// "Try every replica" — the default retry budget.
inline constexpr std::size_t kRetryAllReplicas = static_cast<std::size_t>(-1);

/// Fault-tolerance knobs of a ShardRouter.  The defaults reproduce the
/// unreplicated pre-replication router byte for byte: one replica per
/// query, so there is nowhere to fail over to and every shard failure is
/// captured exactly as before.
struct RouterOptions {
  /// Preference-list length per query, clamped to the fleet size.
  std::size_t replicas = 1;
  /// Max *distinct* shards a query is sent to (1 + this many failovers).
  /// Never a same-shard blind retry; kRetryAllReplicas walks the whole
  /// preference list.
  std::size_t retries = kRetryAllReplicas;
  /// Cap on the probe backoff: a down shard is re-probed after 1, 2, 4, ...
  /// batches, never more than this many apart.  Counted in batches, not
  /// wall-clock, so the schedule is deterministic.
  std::uint64_t probe_backoff_cap = 8;
};

/// The scatter/gather frontend.  Owns its backends; across batches it
/// keeps only per-shard health state (up/down, last deterministic failure
/// text, probe backoff), guarded by a mutex so run_batch stays usable from
/// the existing const call sites.
class ShardRouter {
 public:
  /// A snapshot of one shard's health for telemetry (lcsrouter's batch
  /// summary).  Never part of any digest.
  struct ShardHealthView {
    bool up = true;
    std::uint64_t failures = 0;  ///< consecutive failed probes while down
    std::string last_error;      ///< deterministic reason while down
  };

  /// Attaches the fleet and verifies coherence: every reachable shard must
  /// report one common snapshot fingerprint and service seed (LCS_REQUIRE
  /// otherwise — a mixed fleet is caller misuse, not a per-query error).
  /// With replicas == 1 an unreachable shard fails attach (the legacy
  /// strictness: ShardUnavailable propagates); with replicas > 1 it is
  /// marked down and probed lazily, and only a fleet with *no* reachable
  /// shard is rejected.
  explicit ShardRouter(std::vector<std::unique_ptr<ShardBackend>> shards,
                       RouterOptions options = {});

  std::size_t num_shards() const { return shards_.size(); }
  /// The fleet's common snapshot fingerprint — the coherence token.
  std::uint64_t fingerprint() const { return fingerprint_; }
  std::uint64_t seed() const { return seed_; }
  const RouterOptions& options() const { return options_; }

  /// Scatter `batch` by replicas_of, gather, fail queries over to their
  /// next live replica in rounds, and return results in the caller's
  /// order.  Requires pairwise-distinct ids (the same guard as
  /// ShortcutService::run_batch, applied before anything crosses a
  /// process boundary).  Never throws for a dead shard: queries whose
  /// whole replica group is exhausted come back ok=false as documented
  /// above.  Fills the digest-excluded QueryResult::attempts /
  /// served_by_replica telemetry.
  std::vector<QueryResult> run_batch(const std::vector<QueryRequest>& batch) const;

  /// Per-shard health after the last batch (telemetry only).
  std::vector<ShardHealthView> health() const;

 private:
  struct Health {
    bool up = true;
    std::string last_error;
    std::uint64_t failures = 0;          ///< consecutive failures (backoff exponent)
    std::uint64_t next_probe_batch = 0;  ///< earliest batch index to probe again
  };

  void mark_down(std::size_t shard, const std::string& reason, std::uint64_t batch) const;
  void probe_down_shards(std::uint64_t batch) const;

  std::vector<std::unique_ptr<ShardBackend>> shards_;
  RouterOptions options_;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t seed_ = 0;

  mutable std::mutex mu_;                ///< serializes batches over the health state
  mutable std::vector<Health> health_;
  mutable std::uint64_t next_batch_ = 0;
};

}  // namespace lcs::service
