#include "service/snapshot.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "util/rng.hpp"

namespace lcs::service {

std::shared_ptr<const GraphSnapshot> GraphSnapshot::make(graph::Graph g) {
  return make(std::move(g), Options{});
}

std::shared_ptr<const GraphSnapshot> GraphSnapshot::make(graph::Graph g, const Options& opt) {
  auto snap = std::shared_ptr<GraphSnapshot>(new GraphSnapshot());
  snap->g_ = std::move(g);
  const graph::Graph& gr = snap->g_;

  Rng wrng(opt.weight_seed);
  snap->weights_ = graph::random_weights(gr, std::max<graph::Weight>(1, opt.max_weight), wrng);

  snap->connected_ = gr.num_vertices() > 0 && graph::is_connected(gr);
  for (graph::VertexId v = 0; v < gr.num_vertices(); ++v)
    snap->max_degree_ = std::max(snap->max_degree_, gr.degree(v));

  if (snap->connected_) {
    if (gr.num_vertices() <= opt.exact_diameter_max_vertices) {
      const std::uint32_t d = graph::diameter_exact(gr);
      snap->diameter_lb_ = d;
      snap->diameter_ub_ = d;
      snap->diameter_exact_ = true;
    } else {
      snap->diameter_lb_ = graph::diameter_double_sweep(gr);
      // Any eccentricity brackets the diameter within a factor of two.
      snap->diameter_ub_ = 2 * graph::eccentricity(gr, 0);
    }
  }

  std::uint64_t h = hash64(0x5eedULL ^ gr.num_vertices());
  for (graph::EdgeId e = 0; e < gr.num_edges(); ++e) {
    const graph::Edge ed = gr.edge(e);
    h = hash64(h ^ (static_cast<std::uint64_t>(ed.u) << 32 | ed.v));
    h = hash64(h ^ static_cast<std::uint64_t>(snap->weights_[e]));
  }
  snap->fingerprint_ = h;
  return snap;
}

}  // namespace lcs::service
