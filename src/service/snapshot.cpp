#include "service/snapshot.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace lcs::service {

std::shared_ptr<const GraphSnapshot> GraphSnapshot::build(graph::Graph g) {
  return build(std::move(g), Options{});
}

std::shared_ptr<const GraphSnapshot> GraphSnapshot::build(graph::Graph g, const Options& opt) {
  auto snap = std::shared_ptr<GraphSnapshot>(new GraphSnapshot());
  snap->g_ = std::move(g);
  const graph::Graph& gr = snap->g_;
  snap->opt_ = opt;

  Rng wrng(opt.weight_seed);
  snap->weights_store_ =
      graph::random_weights(gr, std::max<graph::Weight>(1, opt.max_weight), wrng);
  snap->weights_ = snap->weights_store_;

  snap->connected_ = gr.num_vertices() > 0 && graph::is_connected(gr);
  for (graph::VertexId v = 0; v < gr.num_vertices(); ++v)
    snap->max_degree_ = std::max(snap->max_degree_, gr.degree(v));

  snap->bfs_memo_ = std::make_unique<OnceMemo<graph::VertexId, graph::BfsResult>>(
      opt.max_cached_bfs_trees);
  snap->partition_memo_ =
      std::make_unique<OnceMemo<PartitionKey, graph::Partition, PartitionKeyHash>>(
          opt.max_cached_partitions);
  snap->sample_memo_ =
      std::make_unique<OnceMemo<SampleKey, mincut::SparsifiedSample, SampleKeyHash>>(
          opt.max_cached_samples);
  snap->ch_memo_ = std::make_unique<OnceMemo<std::uint32_t, sssp::ChIndex>>(0);

  // Prewarm at the one place guaranteed to be a top-level entry (the exact
  // path fans its all-pairs BFS out on the pool).  Lazy first access inside
  // a query task computes the same bytes, just serially.
  if (opt.prewarm_diameter && snap->connected_) snap->bracket();
  if (opt.prewarm_partition_pool) snap->warm_partition_pool();

  std::uint64_t h = hash64(0x5eedULL ^ gr.num_vertices());
  for (graph::EdgeId e = 0; e < gr.num_edges(); ++e) {
    const graph::Edge ed = gr.edge(e);
    h = hash64(h ^ (static_cast<std::uint64_t>(ed.u) << 32 | ed.v));
    h = hash64(h ^ static_cast<std::uint64_t>(snap->weights_[e]));
  }
  snap->fingerprint_ = h;
  return snap;
}

GraphSnapshot::DiameterBracket GraphSnapshot::compute_bracket() const {
  DiameterBracket b;
  if (!connected_) return b;
  if (g_.num_vertices() <= opt_.exact_diameter_max_vertices) {
    const std::uint32_t d = graph::diameter_exact(g_);
    b.lb = d;
    b.ub = d;
    b.exact = true;
  } else {
    // The same bracket the eager pre-PR-5 make() recorded: the restarted
    // double-sweep lower bound, and 2x the eccentricity of vertex 0 — the
    // latter read off the shared BFS-tree artifact, which this also
    // materializes for later bfs_tree() callers.
    const auto t0 = bfs_tree(0);
    b.lb = graph::diameter_double_sweep(g_);
    b.ub = 2 * t0->max_dist;
    b.exact = false;
  }
  return b;
}

GraphSnapshot::DiameterBracket GraphSnapshot::bracket() const {
  // Lock-free fast path: bracket_val_ is immutable once published.
  if (bracket_ready_.load(std::memory_order_acquire)) return bracket_val_;
  std::unique_lock<std::mutex> lock(bracket_mutex_);
  for (;;) {
    if (bracket_ready_.load(std::memory_order_relaxed)) return bracket_val_;
    if (!bracket_inflight_) break;
    if (in_parallel_region()) {
      // No-deadlock rule (see util/once_memo.hpp): the in-flight owner may
      // be a top-level thread that needs the pool this caller occupies.
      // The bracket is pure — derive a private bit-identical copy.
      lock.unlock();
      return compute_bracket();
    }
    bracket_cv_.wait(lock);
  }
  bracket_inflight_ = true;
  lock.unlock();
  DiameterBracket b;
  try {
    b = compute_bracket();
  } catch (...) {
    lock.lock();
    bracket_inflight_ = false;
    bracket_cv_.notify_all();
    throw;
  }
  lock.lock();
  bracket_val_ = b;
  bracket_ready_.store(true, std::memory_order_release);
  bracket_inflight_ = false;
  bracket_cv_.notify_all();
  return b;
}

std::shared_ptr<const graph::BfsResult> GraphSnapshot::bfs_tree(graph::VertexId root) const {
  LCS_REQUIRE(root < g_.num_vertices(), "bfs_tree root out of range");
  return bfs_memo_->get_or_compute(root, [&] { return graph::bfs(g_, root); });
}

graph::Partition GraphSnapshot::compute_partition(const graph::Graph& g, std::uint64_t seed,
                                                  std::uint32_t part_count) {
  Rng rng(seed);
  return graph::ball_partition(g, part_count, rng);
}

std::shared_ptr<const graph::Partition> GraphSnapshot::partition(
    std::uint64_t seed, std::uint32_t part_count) const {
  const PartitionKey key{seed, part_count};
  return partition_memo_->get_or_compute(
      key, [&] { return compute_partition(g_, seed, part_count); });
}

std::shared_ptr<const mincut::SparsifiedSample> GraphSnapshot::sparsified_sample(
    std::uint64_t seed, double eps) const {
  std::uint64_t eps_bits = 0;
  static_assert(sizeof(eps_bits) == sizeof(eps));
  std::memcpy(&eps_bits, &eps, sizeof(eps));
  const SampleKey key{seed, eps_bits};
  return sample_memo_->get_or_compute(
      key, [&] { return mincut::sparsify_edges(g_, weights_, eps, seed); });
}

std::shared_ptr<const sssp::ChIndex> GraphSnapshot::ch_index() const {
  // Single-valued artifact: the key is constant, the compute pure in
  // (g_, weights_) — a loaded snapshot seeds this entry from the file.
  return ch_memo_->get_or_compute(0u, [&] { return sssp::build_ch(g_, weights_); });
}

std::uint32_t GraphSnapshot::default_part_count() const {
  const std::uint32_t n = g_.num_vertices();
  if (n == 0) return 1;
  const auto r =
      static_cast<std::uint32_t>(std::lround(std::sqrt(static_cast<double>(n))));
  return std::min(std::max<std::uint32_t>(1, r), n);
}

std::uint64_t GraphSnapshot::pool_seed(std::uint64_t slot) {
  // Salted so pool keys live in their own seed family, disjoint by
  // construction from anything a per-query RNG stream would draw.
  return hash64(0x706f6f6c5eedULL ^ (slot + 1));
}

void GraphSnapshot::warm_partition_pool() const {
  const std::uint32_t pool = opt_.partition_pool_size;
  if (pool == 0 || g_.num_vertices() == 0) return;
  const std::uint32_t parts = default_part_count();
  std::vector<std::uint64_t> missing;
  missing.reserve(pool);
  for (std::uint32_t slot = 0; slot < pool; ++slot) {
    const std::uint64_t seed = pool_seed(slot);
    // contains_ready is a stats-free probe: slots a snapshot file already
    // seeded are skipped without perturbing the memo telemetry the
    // zero-lookup load gates assert on.
    if (!partition_memo_->contains_ready(PartitionKey{seed, parts}))
      missing.push_back(seed);
  }
  if (missing.empty()) return;
  const auto warm_one = [&](std::size_t i) { (void)partition(missing[i], parts); };
  if (in_parallel_region()) {
    // parallel_tasks is top-level-only; a nested caller warms serially
    // (identical bytes, the pool's whole point is that there are few slots).
    for (std::size_t i = 0; i < missing.size(); ++i) warm_one(i);
  } else {
    parallel_tasks(missing.size(), warm_one);
  }
}

ArtifactStats GraphSnapshot::artifact_stats() const {
  ArtifactStats s;
  s.bfs_tree = bfs_memo_->stats();
  s.partition = partition_memo_->stats();
  s.sparsified = sample_memo_->stats();
  s.ch = ch_memo_->stats();
  return s;
}

void GraphSnapshot::clear_artifacts() const {
  bfs_memo_->clear();
  partition_memo_->clear();
  sample_memo_->clear();
  ch_memo_->clear();
}

}  // namespace lcs::service
