#include "service/snapshot_format.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "util/bytes.hpp"
#include "util/check.hpp"
#include "util/mmap_file.hpp"

namespace lcs::service {

namespace {

constexpr char kMagic[8] = {'L', 'C', 'S', 'S', 'N', 'A', 'P', '1'};
constexpr std::uint32_t kEndianTag = 0x01020304u;  // bytes 04 03 02 01 on disk
constexpr std::uint64_t kAlign = 64;
constexpr std::uint32_t kSectionCount = 8;

constexpr std::uint32_t kFlagConnected = 1u << 0;
constexpr std::uint32_t kFlagBracketExact = 1u << 1;
constexpr std::uint32_t kFlagPoolPrewarm = 1u << 2;  ///< Options::prewarm_partition_pool

// Fixed section order; ids are 1-based positions.  The bulk sections
// (1..4) are verbatim in-memory bytes and get mmap'ed in place; the
// artifact sections (5..8) are decoded into the caches at load.  Section 8
// (the CH index) arrived with format v2.
enum SectionId : std::uint32_t {
  kSecOffsets = 1,
  kSecAdjacency = 2,
  kSecEdges = 3,
  kSecWeights = 4,
  kSecBfsTrees = 5,
  kSecPartitions = 6,
  kSecSamples = 7,
  kSecChIndex = 8,
};

/// 128-byte fixed header.  Every multi-byte field is little-endian; the
/// endian tag lets a foreign reader detect (and reject) a byte-order
/// mismatch before interpreting anything else.
struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t endian_tag;
  std::uint64_t fingerprint;
  std::uint32_t num_vertices;
  std::uint32_t num_edges;
  std::uint32_t flags;
  std::uint32_t max_degree;
  std::uint32_t diameter_lb;
  std::uint32_t diameter_ub;
  std::uint64_t weight_seed;
  std::int64_t max_weight;
  std::uint32_t exact_diameter_max_vertices;
  std::uint32_t section_count;
  std::uint64_t max_cached_bfs_trees;
  std::uint64_t max_cached_partitions;
  std::uint64_t max_cached_samples;
  std::uint64_t file_bytes;
  std::uint64_t table_checksum;   ///< over the section table bytes
  std::uint64_t header_checksum;  ///< over this struct with the field zeroed
  /// PR 9, carved from the former reserved[8]: Options::partition_pool_size.
  /// Files written before the field existed carry 0 here — pool disabled —
  /// so the layout change needs no version bump (checksums cover it either
  /// way, and 0 was the only value those writers could have stored).
  std::uint32_t partition_pool_size;
  std::uint8_t reserved[4];
};
static_assert(sizeof(FileHeader) == 128, "header layout is part of the file format");
static_assert(std::is_trivially_copyable_v<FileHeader>);

struct SectionRecord {
  std::uint32_t id;
  std::uint32_t reserved;
  std::uint64_t offset;    ///< absolute file offset, kAlign-aligned
  std::uint64_t length;    ///< payload bytes (padding excluded)
  std::uint64_t checksum;  ///< checksum_bytes over the payload
};
static_assert(sizeof(SectionRecord) == 32, "record layout is part of the file format");
static_assert(std::is_trivially_copyable_v<SectionRecord>);

constexpr std::uint64_t kTableBytes = kSectionCount * sizeof(SectionRecord);

std::uint64_t align_up(std::uint64_t x) { return (x + (kAlign - 1)) & ~(kAlign - 1); }

[[noreturn]] void bad(const std::string& what) { throw std::runtime_error("snapshot: " + what); }

// The artifact sections are encoded with the shared canonical encoders
// (util/bytes.hpp ByteBuf / ByteReader — the RPC wire format reuses the
// same primitives).  The section checksum has been verified before a
// reader runs, so an out-of-bounds read means a writer bug or a format
// mismatch — still rejected deterministically, never read past.
ByteReader artifact_reader(const std::byte* data, std::uint64_t size) {
  return ByteReader(data, size, "snapshot: artifact ");
}

/// Shared validation: mmap the file, check magic / version / endianness /
/// sizes / every checksum, and hand back the parsed header + table.
struct ParsedFile {
  std::shared_ptr<const MappedFile> mapped;
  FileHeader header;
  SectionRecord table[kSectionCount];
};

ParsedFile parse_and_verify(const std::filesystem::path& path) {
  ParsedFile f;
  f.mapped = MappedFile::open(path);
  const std::byte* base = f.mapped->data();
  if (f.mapped->size() < sizeof(FileHeader) + kTableBytes) bad("file truncated");
  std::memcpy(&f.header, base, sizeof(FileHeader));
  const FileHeader& h = f.header;
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) bad("bad magic");
  if (h.endian_tag != kEndianTag) bad("endianness mismatch");
  if (h.version != kSnapshotFormatVersion)
    bad("unsupported format version " + std::to_string(h.version));
  FileHeader unsummed = h;
  unsummed.header_checksum = 0;
  if (checksum_bytes(&unsummed, sizeof(unsummed)) != h.header_checksum)
    bad("header checksum mismatch");
  if (h.file_bytes != f.mapped->size()) bad("file size mismatch");
  if (h.section_count != kSectionCount) bad("unexpected section count");
  std::memcpy(f.table, base + sizeof(FileHeader), kTableBytes);
  if (checksum_bytes(f.table, kTableBytes) != h.table_checksum)
    bad("section table checksum mismatch");
  for (std::uint32_t i = 0; i < kSectionCount; ++i) {
    const SectionRecord& rec = f.table[i];
    if (rec.id != i + 1) bad("unexpected section id");
    if (rec.offset % kAlign != 0) bad("section misaligned");
    if (rec.offset > h.file_bytes || rec.length > h.file_bytes - rec.offset)
      bad("section out of bounds");
    if (checksum_bytes(base + rec.offset, rec.length) != rec.checksum)
      bad("section checksum mismatch (section " + std::to_string(rec.id) + ")");
  }
  const std::uint64_t n = h.num_vertices;
  const std::uint64_t m = h.num_edges;
  if (f.table[kSecOffsets - 1].length != (n + 1) * 8 ||
      f.table[kSecAdjacency - 1].length != 2 * m * 8 ||
      f.table[kSecEdges - 1].length != m * 8 || f.table[kSecWeights - 1].length != m * 8)
    bad("section size mismatch");
  return f;
}

}  // namespace

/// The one piece of code with I/O access to GraphSnapshot internals
/// (declared friend in snapshot.hpp).
class SnapshotCodec {
 public:
  static void save(const GraphSnapshot& snap, const std::filesystem::path& path);
  static std::shared_ptr<const GraphSnapshot> load(const std::filesystem::path& path);

 private:
  static ByteBuf encode_bfs_trees(const GraphSnapshot& snap);
  static ByteBuf encode_partitions(const GraphSnapshot& snap);
  static ByteBuf encode_samples(const GraphSnapshot& snap);
  static ByteBuf encode_ch_index(const GraphSnapshot& snap);
  static void seed_artifacts(GraphSnapshot& snap, const std::byte* base,
                             const SectionRecord* table);
};

ByteBuf SnapshotCodec::encode_bfs_trees(const GraphSnapshot& snap) {
  const std::uint32_t n = snap.g_.num_vertices();
  auto entries = snap.bfs_memo_->ready_entries();
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ByteBuf buf;
  buf.u64(entries.size());
  for (const auto& [root, tree] : entries) {
    LCS_CHECK(tree->dist.size() == n && tree->parent.size() == n &&
                  tree->parent_edge.size() == n,
              "snapshot: cached BFS tree has unexpected shape");
    buf.u32(root);
    buf.u32(tree->max_dist);
    buf.u32(tree->reached);
    buf.raw(tree->dist.data(), std::size_t{n} * 4);
    buf.raw(tree->parent.data(), std::size_t{n} * 4);
    buf.raw(tree->parent_edge.data(), std::size_t{n} * 4);
  }
  return buf;
}

ByteBuf SnapshotCodec::encode_partitions(const GraphSnapshot& snap) {
  auto entries = snap.partition_memo_->ready_entries();
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    return std::tie(a.first.seed, a.first.parts) < std::tie(b.first.seed, b.first.parts);
  });
  ByteBuf buf;
  buf.u64(entries.size());
  for (const auto& [key, part] : entries) {
    buf.u64(key.seed);
    buf.u32(key.parts);
    buf.u32(static_cast<std::uint32_t>(part->parts.size()));
    for (const auto& members : part->parts) {
      buf.u64(members.size());
      buf.raw(members.data(), members.size() * 4);
    }
  }
  return buf;
}

ByteBuf SnapshotCodec::encode_samples(const GraphSnapshot& snap) {
  auto entries = snap.sample_memo_->ready_entries();
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    return std::tie(a.first.seed, a.first.eps_bits) < std::tie(b.first.seed, b.first.eps_bits);
  });
  ByteBuf buf;
  buf.u64(entries.size());
  for (const auto& [key, sample] : entries) {
    buf.u64(key.seed);
    buf.u64(key.eps_bits);
    buf.f64(sample->sample_prob);
    buf.u64(sample->units.size());
    buf.raw(sample->units.data(), sample->units.size() * 8);
  }
  return buf;
}

ByteBuf SnapshotCodec::encode_ch_index(const GraphSnapshot& snap) {
  // The artifact is single-valued (constant memo key 0), so the count is 0
  // or 1; arcs are encoded field-by-field because ChArc carries padding.
  const auto entries = snap.ch_memo_->ready_entries();
  ByteBuf buf;
  buf.u64(entries.size());
  for (const auto& [key, ch] : entries) {
    LCS_CHECK(key == 0 && ch->n == snap.g_.num_vertices() &&
                  ch->rank.size() == ch->n && ch->up_offsets.size() == std::size_t{ch->n} + 1 &&
                  ch->up_arcs.size() == ch->up_offsets[ch->n],
              "snapshot: cached CH index has unexpected shape");
    buf.u32(ch->n);
    buf.u64(ch->num_shortcuts);
    buf.raw(ch->rank.data(), std::size_t{ch->n} * 4);
    buf.raw(ch->up_offsets.data(), (std::size_t{ch->n} + 1) * 8);
    buf.u64(ch->up_arcs.size());
    for (const sssp::ChArc& arc : ch->up_arcs) {
      buf.u32(arc.to);
      buf.u64(arc.len);
    }
  }
  return buf;
}

void SnapshotCodec::save(const GraphSnapshot& snap, const std::filesystem::path& path) {
  const graph::Graph& g = snap.g_;
  // The bracket is part of the file (loaded snapshots answer diameter
  // queries without recomputation), so materialize it now — same bytes a
  // lazy first access would have produced.
  const GraphSnapshot::DiameterBracket br = snap.bracket();

  const ByteBuf bfs_buf = encode_bfs_trees(snap);
  const ByteBuf part_buf = encode_partitions(snap);
  const ByteBuf sample_buf = encode_samples(snap);
  const ByteBuf ch_buf = encode_ch_index(snap);

  struct Payload {
    const void* data;
    std::uint64_t size;
  };
  const std::span<const std::uint64_t> offs = g.csr_offsets();
  const std::span<const graph::HalfEdge> adj = g.csr_adjacency();
  const std::span<const graph::Edge> edges = g.edges();
  const graph::WeightSpan w = snap.weights_;
  const Payload payloads[kSectionCount] = {
      {offs.data(), offs.size_bytes()},      {adj.data(), adj.size_bytes()},
      {edges.data(), edges.size_bytes()},    {w.data(), w.size_bytes()},
      {bfs_buf.data(), bfs_buf.size()},      {part_buf.data(), part_buf.size()},
      {sample_buf.data(), sample_buf.size()}, {ch_buf.data(), ch_buf.size()}};

  SectionRecord table[kSectionCount] = {};
  std::uint64_t cursor = align_up(sizeof(FileHeader) + kTableBytes);
  for (std::uint32_t i = 0; i < kSectionCount; ++i) {
    table[i].id = i + 1;
    table[i].offset = cursor;
    table[i].length = payloads[i].size;
    table[i].checksum = checksum_bytes(payloads[i].data, payloads[i].size);
    cursor = align_up(cursor + payloads[i].size);
  }

  FileHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kSnapshotFormatVersion;
  h.endian_tag = kEndianTag;
  h.fingerprint = snap.fingerprint_;
  h.num_vertices = g.num_vertices();
  h.num_edges = g.num_edges();
  h.flags = (snap.connected_ ? kFlagConnected : 0u) | (br.exact ? kFlagBracketExact : 0u) |
            (snap.opt_.prewarm_partition_pool ? kFlagPoolPrewarm : 0u);
  h.max_degree = snap.max_degree_;
  h.diameter_lb = br.lb;
  h.diameter_ub = br.ub;
  h.weight_seed = snap.opt_.weight_seed;
  h.max_weight = snap.opt_.max_weight;
  h.exact_diameter_max_vertices = snap.opt_.exact_diameter_max_vertices;
  h.section_count = kSectionCount;
  h.max_cached_bfs_trees = snap.opt_.max_cached_bfs_trees;
  h.max_cached_partitions = snap.opt_.max_cached_partitions;
  h.max_cached_samples = snap.opt_.max_cached_samples;
  h.partition_pool_size = snap.opt_.partition_pool_size;
  h.file_bytes = cursor;
  h.table_checksum = checksum_bytes(table, kTableBytes);
  h.header_checksum = 0;
  h.header_checksum = checksum_bytes(&h, sizeof(h));

  // Temp + rename: a crash mid-write never leaves a torn file under the
  // fingerprint-addressed name.
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) bad("cannot write '" + tmp.string() + "'");
    out.write(reinterpret_cast<const char*>(&h), sizeof(h));
    out.write(reinterpret_cast<const char*>(table), static_cast<std::streamsize>(kTableBytes));
    std::uint64_t written = sizeof(FileHeader) + kTableBytes;
    const char zeros[kAlign] = {};
    const auto pad_to = [&](std::uint64_t target) {
      while (written < target) {
        const std::uint64_t chunk = std::min(target - written, kAlign);
        out.write(zeros, static_cast<std::streamsize>(chunk));
        written += chunk;
      }
    };
    for (std::uint32_t i = 0; i < kSectionCount; ++i) {
      pad_to(table[i].offset);
      out.write(reinterpret_cast<const char*>(payloads[i].data),
                static_cast<std::streamsize>(payloads[i].size));
      written += payloads[i].size;
    }
    pad_to(h.file_bytes);
    if (!out) bad("write failed for '" + tmp.string() + "'");
  }
  std::filesystem::rename(tmp, path);
}

void SnapshotCodec::seed_artifacts(GraphSnapshot& snap, const std::byte* base,
                                   const SectionRecord* table) {
  const std::uint32_t n = snap.g_.num_vertices();
  {
    ByteReader r = artifact_reader(base + table[kSecBfsTrees - 1].offset,
                                   table[kSecBfsTrees - 1].length);
    const std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint32_t root = r.u32();
      if (root >= n) bad("artifact key out of range");
      graph::BfsResult tree;
      tree.max_dist = r.u32();
      tree.reached = r.u32();
      tree.dist.resize(n);
      tree.parent.resize(n);
      tree.parent_edge.resize(n);
      r.raw(tree.dist.data(), std::uint64_t{n} * 4);
      r.raw(tree.parent.data(), std::uint64_t{n} * 4);
      r.raw(tree.parent_edge.data(), std::uint64_t{n} * 4);
      snap.bfs_memo_->seed(root, std::make_shared<const graph::BfsResult>(std::move(tree)));
    }
    if (!r.done()) bad("trailing artifact bytes");
  }
  {
    ByteReader r = artifact_reader(base + table[kSecPartitions - 1].offset,
                                   table[kSecPartitions - 1].length);
    const std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      GraphSnapshot::PartitionKey key;
      key.seed = r.u64();
      key.parts = r.u32();
      graph::Partition part;
      part.parts.resize(r.u32());
      for (auto& members : part.parts) {
        members.resize(r.u64());
        r.raw(members.data(), members.size() * 4);
      }
      snap.partition_memo_->seed(key, std::make_shared<const graph::Partition>(std::move(part)));
    }
    if (!r.done()) bad("trailing artifact bytes");
  }
  {
    ByteReader r = artifact_reader(base + table[kSecSamples - 1].offset,
                                   table[kSecSamples - 1].length);
    const std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      GraphSnapshot::SampleKey key;
      key.seed = r.u64();
      key.eps_bits = r.u64();
      mincut::SparsifiedSample sample;
      sample.sample_prob = r.f64();
      sample.units.resize(r.u64());
      r.raw(sample.units.data(), sample.units.size() * 8);
      snap.sample_memo_->seed(key,
                              std::make_shared<const mincut::SparsifiedSample>(std::move(sample)));
    }
    if (!r.done()) bad("trailing artifact bytes");
  }
  {
    ByteReader r = artifact_reader(base + table[kSecChIndex - 1].offset,
                                   table[kSecChIndex - 1].length);
    const std::uint64_t count = r.u64();
    if (count > 1) bad("artifact key out of range");
    for (std::uint64_t i = 0; i < count; ++i) {
      sssp::ChIndex ch;
      ch.n = r.u32();
      if (ch.n != n) bad("artifact key out of range");
      ch.num_shortcuts = r.u64();
      ch.rank.resize(ch.n);
      r.raw(ch.rank.data(), std::uint64_t{ch.n} * 4);
      ch.up_offsets.resize(std::size_t{ch.n} + 1);
      r.raw(ch.up_offsets.data(), (std::uint64_t{ch.n} + 1) * 8);
      const std::uint64_t arcs = r.u64();
      if (ch.up_offsets[ch.n] != arcs || (ch.n > 0 && ch.up_offsets[0] != 0))
        bad("artifact key out of range");
      ch.up_arcs.resize(arcs);
      for (sssp::ChArc& arc : ch.up_arcs) {
        arc.to = r.u32();
        arc.len = r.u64();
        if (arc.to >= n) bad("artifact key out of range");
      }
      snap.ch_memo_->seed(0u, std::make_shared<const sssp::ChIndex>(std::move(ch)));
    }
    if (!r.done()) bad("trailing artifact bytes");
  }
}

std::shared_ptr<const GraphSnapshot> SnapshotCodec::load(const std::filesystem::path& path) {
  ParsedFile f = parse_and_verify(path);
  const std::byte* base = f.mapped->data();
  const FileHeader& h = f.header;
  const std::uint64_t n = h.num_vertices;
  const std::uint64_t m = h.num_edges;

  // Zero-copy: the graph arrays and weights are views into the mapping,
  // which the Graph's backing pointer keeps alive for the snapshot's life.
  const std::span<const std::uint64_t> offs{
      reinterpret_cast<const std::uint64_t*>(base + f.table[kSecOffsets - 1].offset), n + 1};
  const std::span<const graph::HalfEdge> adj{
      reinterpret_cast<const graph::HalfEdge*>(base + f.table[kSecAdjacency - 1].offset), 2 * m};
  const std::span<const graph::Edge> edges{
      reinterpret_cast<const graph::Edge*>(base + f.table[kSecEdges - 1].offset), m};
  const graph::WeightSpan weights{
      reinterpret_cast<const graph::Weight*>(base + f.table[kSecWeights - 1].offset), m};

  auto snap = std::shared_ptr<GraphSnapshot>(new GraphSnapshot());
  snap->g_ = graph::Graph::from_csr(offs, adj, edges, f.mapped);
  snap->weights_ = weights;
  snap->connected_ = (h.flags & kFlagConnected) != 0;
  snap->max_degree_ = h.max_degree;
  snap->opt_.weight_seed = h.weight_seed;
  snap->opt_.max_weight = h.max_weight;
  snap->opt_.exact_diameter_max_vertices = h.exact_diameter_max_vertices;
  snap->opt_.prewarm_diameter = true;  // the bracket below *is* the prewarm
  snap->opt_.max_cached_bfs_trees = h.max_cached_bfs_trees;
  snap->opt_.max_cached_partitions = h.max_cached_partitions;
  snap->opt_.max_cached_samples = h.max_cached_samples;
  snap->opt_.partition_pool_size = h.partition_pool_size;
  snap->opt_.prewarm_partition_pool = (h.flags & kFlagPoolPrewarm) != 0;
  snap->fingerprint_ = h.fingerprint;
  snap->bracket_val_ = GraphSnapshot::DiameterBracket{h.diameter_lb, h.diameter_ub,
                                                      (h.flags & kFlagBracketExact) != 0};
  snap->bracket_ready_.store(true, std::memory_order_release);
  snap->bfs_memo_ = std::make_unique<OnceMemo<graph::VertexId, graph::BfsResult>>(
      snap->opt_.max_cached_bfs_trees);
  snap->partition_memo_ = std::make_unique<
      OnceMemo<GraphSnapshot::PartitionKey, graph::Partition, GraphSnapshot::PartitionKeyHash>>(
      snap->opt_.max_cached_partitions);
  snap->sample_memo_ = std::make_unique<
      OnceMemo<GraphSnapshot::SampleKey, mincut::SparsifiedSample, GraphSnapshot::SampleKeyHash>>(
      snap->opt_.max_cached_samples);
  snap->ch_memo_ = std::make_unique<OnceMemo<std::uint32_t, sssp::ChIndex>>(0);
  seed_artifacts(*snap, base, f.table);
  // Proactive prewarm, after seeding: only pool slots the file did not
  // carry are computed (contains_ready skips the rest without touching the
  // stats, so a fully-seeded load still shows zero lookups).
  if (snap->opt_.prewarm_partition_pool) snap->warm_partition_pool();
  return snap;
}

void save_snapshot(const GraphSnapshot& snap, const std::filesystem::path& path) {
  SnapshotCodec::save(snap, path);
}

std::shared_ptr<const GraphSnapshot> load_snapshot(const std::filesystem::path& path) {
  return SnapshotCodec::load(path);
}

SnapshotFileInfo read_snapshot_info(const std::filesystem::path& path) {
  const ParsedFile f = parse_and_verify(path);
  const FileHeader& h = f.header;
  SnapshotFileInfo info;
  info.fingerprint = h.fingerprint;
  info.version = h.version;
  info.num_vertices = h.num_vertices;
  info.num_edges = h.num_edges;
  info.connected = (h.flags & kFlagConnected) != 0;
  info.max_degree = h.max_degree;
  info.file_bytes = h.file_bytes;
  const auto count_of = [&](std::uint32_t id) {
    ByteReader r = artifact_reader(f.mapped->data() + f.table[id - 1].offset,
                                   f.table[id - 1].length);
    return r.u64();
  };
  info.saved_bfs_trees = count_of(kSecBfsTrees);
  info.saved_partitions = count_of(kSecPartitions);
  info.saved_samples = count_of(kSecSamples);
  info.saved_ch_indexes = count_of(kSecChIndex);
  return info;
}

std::shared_ptr<const GraphSnapshot> GraphSnapshot::load(const std::filesystem::path& path) {
  return load_snapshot(path);
}

}  // namespace lcs::service
