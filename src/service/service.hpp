// ShortcutService: concurrent heterogeneous queries over one shared
// GraphSnapshot.
//
// Each query (shortcut construction, quality measurement, MST, mincut) is a
// pure function of (snapshot, service seed, request) running on its own
// counter-based RNG stream Rng(seed).split(request.id).  run_batch() fans a
// batch out as parallel_tasks on the deterministic pool — inside a task the
// library's own parallel regions serialize, so a batch is bit-identical to
// running every query alone via run(), at any thread count, in any batch
// order, interleaved with any other batches.  Services are stateless beyond
// (snapshot pointer, seed, options): two services over one snapshot with one
// seed are interchangeable, and a service may be queried from several caller
// threads at once (the pool serializes their batches).
//
// PR 5 adds two layers on that contract:
//
//  * Artifact reuse — queries derive their expensive intermediates (ball
//    partitions, sparsified edge samples, the diameter bracket) through the
//    snapshot's deterministically keyed artifact cache, so repeat queries
//    hit shared bytes instead of re-deriving.  Options::use_artifact_cache
//    switches to the uncached pure-function path, which must be (and is
//    tested to be) bit-identical.
//  * Admission control — run_admitted() pushes a batch through a bounded
//    admission queue with per-cost-class concurrency caps, executing it as
//    a deterministic sequence of waves: every wave grants the cheap class
//    its own slots, so cheap shortcut queries are never starved behind
//    heavy mincut/MST work.  Scheduling changes only latency and the
//    queue/wave telemetry; executed result content is identical to run().
//
// PR 9 promotes admission from per-call to a persistent loop:
// service/streaming.hpp wraps a ShortcutService in a StreamingService whose
// shared cross-batch queue and per-tenant token buckets admit a continuous
// open-loop arrival stream; its drain waves execute through run() and
// inherit every purity guarantee above.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "service/query.hpp"
#include "service/snapshot.hpp"

namespace lcs::service {

/// Admission-queue configuration for ShortcutService::run_admitted.
struct AdmissionOptions {
  /// Bound of the admission queue.  Queries beyond the first `max_queue`
  /// batch positions are rejected with a deterministic ok=false result
  /// (rejection depends only on batch position and this bound — never on
  /// timing).  Admitted queries are never dropped; saturation shows up as
  /// queue_ms, not as different results.
  std::size_t max_queue = 1024;
  /// Per-wave concurrency cap of the cheap class (> 0).  Strict: a class
  /// never borrows the other's idle slots, so the cap is also a guarantee —
  /// every wave has cheap capacity regardless of how much heavy work waits.
  unsigned cheap_slots = 4;
  /// Per-wave concurrency cap of the heavy class (> 0).
  unsigned heavy_slots = 2;
};

class ShortcutService {
 public:
  struct Options {
    /// Derive partitions / sparsified samples / diameter estimates through
    /// the snapshot's shared artifact cache.  Off = compute the identical
    /// pure functions privately per query (the reference path the cache is
    /// tested against).
    bool use_artifact_cache = true;
  };

  /// `seed` is the base of every per-query RNG stream; services that must
  /// be result-interchangeable must agree on it (options may differ: they
  /// never influence result content).
  explicit ShortcutService(std::shared_ptr<const GraphSnapshot> snapshot,
                           std::uint64_t seed = 1);
  ShortcutService(std::shared_ptr<const GraphSnapshot> snapshot, std::uint64_t seed,
                  const Options& options);

  const GraphSnapshot& snapshot() const { return *snap_; }
  const std::shared_ptr<const GraphSnapshot>& snapshot_ptr() const { return snap_; }
  std::uint64_t seed() const { return seed_; }
  const Options& options() const { return opt_; }

  /// Execute one query on the calling thread (top level: the query body may
  /// itself use the pool).  A failing query reports ok=false + error text;
  /// only misuse of the service throws.
  QueryResult run(const QueryRequest& request) const;

  /// Execute a batch concurrently on the pool, one task per query; results
  /// are positionally parallel to `batch`.  Requires pairwise-distinct
  /// request ids (duplicates would alias RNG streams) and must be called at
  /// top level — not from inside a parallel region or another batch's task.
  std::vector<QueryResult> run_batch(const std::vector<QueryRequest>& batch) const;

  /// Execute a batch through the bounded admission queue: cost-classed
  /// queries run in deterministic waves of at most cheap_slots + heavy_slots
  /// concurrent tasks, FIFO within each class by batch position.  Results
  /// are positionally parallel to `batch`; executed queries carry the same
  /// deterministic content (and digest) as run() plus queue_ms / wave
  /// telemetry, and positions beyond max_queue are deterministically
  /// rejected.  Same top-level and distinct-id requirements as run_batch.
  std::vector<QueryResult> run_admitted(const std::vector<QueryRequest>& batch,
                                        const AdmissionOptions& admission) const;

 private:
  QueryResult execute(const QueryRequest& request) const;

  std::shared_ptr<const GraphSnapshot> snap_;
  std::uint64_t seed_;
  Options opt_;
};

}  // namespace lcs::service
