// ShortcutService: concurrent heterogeneous queries over one shared
// GraphSnapshot.
//
// Each query (shortcut construction, quality measurement, MST, mincut) is a
// pure function of (snapshot, service seed, request) running on its own
// counter-based RNG stream Rng(seed).split(request.id).  run_batch() fans a
// batch out as parallel_tasks on the deterministic pool — inside a task the
// library's own parallel regions serialize, so a batch is bit-identical to
// running every query alone via run(), at any thread count, in any batch
// order, interleaved with any other batches.  Services are stateless beyond
// (snapshot pointer, seed): two services over one snapshot with one seed
// are interchangeable, and a service may be queried from several caller
// threads at once (the pool serializes their batches).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "service/query.hpp"
#include "service/snapshot.hpp"

namespace lcs::service {

class ShortcutService {
 public:
  /// `seed` is the base of every per-query RNG stream; services that must
  /// be result-interchangeable must agree on it.
  explicit ShortcutService(std::shared_ptr<const GraphSnapshot> snapshot,
                           std::uint64_t seed = 1);

  const GraphSnapshot& snapshot() const { return *snap_; }
  const std::shared_ptr<const GraphSnapshot>& snapshot_ptr() const { return snap_; }
  std::uint64_t seed() const { return seed_; }

  /// Execute one query on the calling thread (top level: the query body may
  /// itself use the pool).  A failing query reports ok=false + error text;
  /// only misuse of the service throws.
  QueryResult run(const QueryRequest& request) const;

  /// Execute a batch concurrently on the pool, one task per query; results
  /// are positionally parallel to `batch`.  Requires pairwise-distinct
  /// request ids (duplicates would alias RNG streams) and must be called at
  /// top level — not from inside a parallel region or another batch's task.
  std::vector<QueryResult> run_batch(const std::vector<QueryRequest>& batch) const;

 private:
  QueryResult execute(const QueryRequest& request) const;

  std::shared_ptr<const GraphSnapshot> snap_;
  std::uint64_t seed_;
};

}  // namespace lcs::service
