// The query model of the shortcut service.
//
// A QueryRequest names one self-contained unit of work against a shared
// GraphSnapshot; a QueryResult carries its outcome.  The determinism
// contract of the service hinges on one rule: a result is a pure function
// of (snapshot, service seed, request) — never of batch composition, batch
// order, thread count, or what other batches run concurrently.  The request
// `id` doubles as the counter-based RNG stream key, so two queries with the
// same id and parameters produce byte-identical results wherever and
// whenever they execute.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace lcs::service {

enum class QueryKind : std::uint8_t {
  kShortcutQuality,  ///< KP construction + streamed Definition-1.1 quality
  kShortcutBuild,    ///< materialize the KP shortcut assignment
  kMst,              ///< shortcut-accelerated Boruvka (Corollary 1.2)
  kMincut,           ///< Karger trials or Karger's sparsified estimator
  kPointToPoint,     ///< exact s–t distance over the snapshot's CH artifact
};

/// The one rejection text for an out-of-range kind byte, shared by every
/// kind switch and by the wire decoder so the corruption matrix can pin it
/// exactly.  Out-of-range kinds can only originate from untrusted wire
/// bytes — internal code holds enumerators — hence the "wire:" prefix.
[[noreturn]] inline void throw_unknown_query_kind(std::uint8_t raw) {
  throw std::runtime_error("wire: unknown query kind " + std::to_string(raw));
}

/// Validate a raw kind byte (fails closed via throw_unknown_query_kind).
inline QueryKind checked_query_kind(std::uint8_t raw) {
  switch (static_cast<QueryKind>(raw)) {
    case QueryKind::kShortcutQuality:
    case QueryKind::kShortcutBuild:
    case QueryKind::kMst:
    case QueryKind::kMincut:
    case QueryKind::kPointToPoint: return static_cast<QueryKind>(raw);
  }
  throw_unknown_query_kind(raw);
}

inline const char* query_kind_name(QueryKind k) {
  switch (k) {
    case QueryKind::kShortcutQuality: return "shortcut_quality";
    case QueryKind::kShortcutBuild: return "shortcut_build";
    case QueryKind::kMst: return "mst";
    case QueryKind::kMincut: return "mincut";
    case QueryKind::kPointToPoint: return "point_to_point";
  }
  throw_unknown_query_kind(static_cast<std::uint8_t>(k));  // fail closed
}

/// Admission cost class of a query: the scheduler gives each class its own
/// concurrency slots so cheap shortcut queries are never starved behind
/// heavy referee work.  A pure function of the query kind (below), so the
/// classification itself can never make results scheduling-dependent.
enum class CostClass : std::uint8_t {
  kCheap,  ///< shortcut_quality / shortcut_build / point_to_point
  kHeavy,  ///< mst / mincut: simulator rounds or repeated contraction trials
};

inline const char* cost_class_name(CostClass c) {
  return c == CostClass::kCheap ? "cheap" : "heavy";
}

struct QueryRequest {
  /// Correlation id and RNG stream key.  Unique within a batch (run_batch
  /// rejects duplicates — two queries sharing a stream would be the one
  /// thing that silently breaks per-query independence).
  std::uint64_t id = 0;
  QueryKind kind = QueryKind::kShortcutQuality;

  // -- shortcut / MST knobs --------------------------------------------------
  double beta = 1.0;                 ///< KP sampling-probability scale
  std::uint32_t num_parts = 0;       ///< ball-partition seeds; 0 = ~sqrt(n)
  std::optional<unsigned> diameter;  ///< override the snapshot's cached estimate

  // -- mincut knobs ----------------------------------------------------------
  std::uint32_t karger_trials = 0;  ///< > 0: Karger with this many trials
  double eps = 0.5;                 ///< otherwise: sparsified estimator at this eps

  // -- point-to-point knobs --------------------------------------------------
  std::uint32_t s = 0;  ///< source vertex (kPointToPoint)
  std::uint32_t t = 0;  ///< target vertex (kPointToPoint)
};

/// The admission scheduler's cost classification of a request.
inline CostClass query_cost_class(const QueryRequest& q) {
  switch (q.kind) {
    case QueryKind::kShortcutQuality:
    case QueryKind::kShortcutBuild:
    case QueryKind::kPointToPoint: return CostClass::kCheap;
    case QueryKind::kMst:
    case QueryKind::kMincut: return CostClass::kHeavy;
  }
  throw_unknown_query_kind(static_cast<std::uint8_t>(q.kind));  // fail closed
}

/// The duplicate-id guard of every batch boundary — ShortcutService's
/// run_batch/run_admitted and the shard router reject a batch whose ids are
/// not pairwise distinct (duplicates would alias RNG streams), naming the
/// offending id so a caller merging query sources can find the collision.
inline void check_distinct_query_ids(const std::vector<QueryRequest>& batch) {
  std::unordered_set<std::uint64_t> ids;
  ids.reserve(batch.size());
  for (const QueryRequest& q : batch)
    LCS_REQUIRE(ids.insert(q.id).second,
                "batch has duplicate query id " + std::to_string(q.id));
}

struct QueryResult {
  std::uint64_t id = 0;
  QueryKind kind = QueryKind::kShortcutQuality;
  bool ok = false;
  std::string error;  ///< exception text when !ok

  /// Wall-clock latency of this query's execution.  Measurement only — like
  /// the two admission fields below it is excluded from digest(), which
  /// covers deterministic content exclusively.
  double latency_ms = 0.0;

  // Admission telemetry, filled by both admission entry points — per-call
  // run_admitted and the StreamingService drain loop (run/run_batch leave
  // them zero).  Scheduling observations, never content: digest-excluded.
  double queue_ms = 0.0;   ///< wait from admission to wave dispatch
  std::uint32_t wave = 0;  ///< index of the admission wave that ran the query

  // Failover telemetry (ShardRouter fills these; everything else leaves
  // them zero).  Placement observations, never content: digest-excluded,
  // because which replica answered cannot change what it answered.
  std::uint32_t attempts = 0;          ///< shards this query was actually sent to
  std::uint32_t served_by_replica = 0; ///< preference-list index that answered (0 = primary)

  // Search-effort telemetry (kPointToPoint fills it).  Settled-heap-pop
  // counts are the workload's cost signal, not its answer: digest-excluded
  // under the same rule as latency_ms/queue_ms.
  std::uint64_t settled_nodes = 0;

  // Deterministic outcome fields (meaning depends on kind; unused stay 0).
  std::uint64_t congestion = 0;    ///< shortcut queries: Definition-1.1 c
  std::uint64_t dilation = 0;      ///< shortcut queries: Definition-1.1 d (ub)
  std::uint64_t value = 0;         ///< headline: c+d quality / MST weight / cut value
  std::uint64_t cardinality = 0;   ///< num large parts / MST edges / cut side size
  std::uint64_t rounds = 0;        ///< CONGEST rounds charged (MST legs)
  std::uint64_t content_hash = 0;  ///< order-sensitive hash of the full structure
  std::uint32_t s = 0;             ///< point-to-point: echoed source vertex
  std::uint32_t t = 0;             ///< point-to-point: echoed target vertex
  std::uint64_t distance = 0;      ///< point-to-point: exact s–t distance
                                   ///< (sssp::kInfDist when unreachable)

  /// Fingerprint of every deterministic field — what the cross-thread,
  /// cross-order and cross-service checks compare.  Telemetry stays out:
  /// latency_ms, queue_ms, wave, attempts, served_by_replica, settled_nodes.
  std::uint64_t digest() const {
    std::uint64_t h = hash64(id ^ (static_cast<std::uint64_t>(kind) << 56));
    h = hash64(h ^ (ok ? 0x6f6bULL : 0x657272ULL));
    for (const char c : error) h = hash64(h ^ static_cast<unsigned char>(c));
    h = hash64(h ^ congestion);
    h = hash64(h ^ dilation);
    h = hash64(h ^ value);
    h = hash64(h ^ cardinality);
    h = hash64(h ^ rounds);
    h = hash64(h ^ content_hash);
    h = hash64(h ^ ((static_cast<std::uint64_t>(s) << 32) | t));
    h = hash64(h ^ distance);
    return h;
  }
};

}  // namespace lcs::service
