// Immutable, shareable graph snapshots for the query service.
//
// A GraphSnapshot freezes one graph together with everything independent
// queries would otherwise recompute per call: the CSR adjacency (the Graph
// itself), a fixed edge-weight vector, connectivity, degree extrema, and
// cached diameter bounds (exact when the graph is small enough for the
// all-pairs referee, double-sweep bracket otherwise).  Snapshots are
// immutable after make() and handed around as shared_ptr<const ...>: any
// number of services, batches and threads may read one concurrently —
// there is no mutable state to guard.
#pragma once

#include <cstdint>
#include <memory>

#include "graph/graph.hpp"
#include "graph/weighted.hpp"

namespace lcs::service {

class GraphSnapshot {
 public:
  struct Options {
    /// Weights are part of the snapshot (queries over one snapshot must
    /// agree on them); generated as uniform [1, max_weight] from this seed.
    std::uint64_t weight_seed = 7;
    graph::Weight max_weight = 16;
    /// The diameter cache is exact (all-pairs BFS on the pool) up to this
    /// many vertices; larger snapshots record the double-sweep lower bound
    /// and a 2*eccentricity upper bound.
    std::uint32_t exact_diameter_max_vertices = 2048;
  };

  /// Build a snapshot (the only constructor).  Top-level entry: the diameter
  /// precomputation may use the thread pool.
  static std::shared_ptr<const GraphSnapshot> make(graph::Graph g, const Options& opt);
  static std::shared_ptr<const GraphSnapshot> make(graph::Graph g);

  const graph::Graph& graph() const { return g_; }
  const graph::EdgeWeights& weights() const { return weights_; }

  std::uint32_t num_vertices() const { return g_.num_vertices(); }
  std::uint32_t num_edges() const { return g_.num_edges(); }
  bool connected() const { return connected_; }
  std::uint32_t max_degree() const { return max_degree_; }

  /// Cached unweighted diameter bracket (meaningful only when connected()).
  std::uint32_t diameter_lb() const { return diameter_lb_; }
  std::uint32_t diameter_ub() const { return diameter_ub_; }
  bool diameter_is_exact() const { return diameter_exact_; }
  /// The estimate queries use when they carry no explicit diameter: the
  /// exact value when cached, else the double-sweep lower bound (what the
  /// KP options would estimate themselves).
  std::uint32_t diameter_estimate() const { return diameter_exact_ ? diameter_ub_ : diameter_lb_; }

  /// Stable identity of (edges, weights): two services agreeing on this
  /// fingerprint are provably querying the same frozen inputs.
  std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  GraphSnapshot() = default;

  graph::Graph g_;
  graph::EdgeWeights weights_;
  bool connected_ = false;
  std::uint32_t max_degree_ = 0;
  std::uint32_t diameter_lb_ = 0;
  std::uint32_t diameter_ub_ = 0;
  bool diameter_exact_ = false;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace lcs::service
