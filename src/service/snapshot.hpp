// Immutable, shareable graph snapshots for the query service.
//
// A GraphSnapshot freezes one graph together with everything independent
// queries would otherwise recompute per call: the CSR adjacency (the Graph
// itself), a fixed edge-weight vector, connectivity, degree extrema, and
// cached diameter bounds (exact when the graph is small enough for the
// all-pairs referee, double-sweep bracket otherwise).  Snapshots are
// immutable after construction and handed around as shared_ptr<const ...>:
// any number of services, batches and threads may read one concurrently.
//
// PR 6: one construction surface, two construction paths.
//
//   GraphSnapshot::build(g, opt)  — freeze an in-process graph (was make());
//   GraphSnapshot::load(path)     — mmap a snapshot file written by
//                                   snapshot_format.hpp: the CSR arrays and
//                                   weights are views into the mapping
//                                   (zero deserialization) and saved
//                                   artifacts arrive pre-warmed.
//
// Both return the same shared_ptr<const GraphSnapshot>, and a loaded
// snapshot is contractually indistinguishable from the built one it was
// saved from: same fingerprint(), and bit-identical digests for every query
// at every thread count.  SnapshotStore (snapshot_store.hpp) adds
// fingerprint-addressed save/open/list/evict on top of load().
//
// PR 5: snapshots additionally own an *artifact cache* — lazily
// materialized, deterministically keyed intermediates that repeat queries
// share instead of re-deriving (ROADMAP "snapshot-level artifact caching"):
//
//   | artifact            | key                  | compute (pure in key)        |
//   | ------------------- | -------------------- | ---------------------------- |
//   | diameter bracket    | (none — per snapshot)| all-pairs BFS when small,    |
//   |                     |                      | else via two bfs_tree trees  |
//   | global BFS tree     | root vertex          | graph::bfs(g, root)          |
//   | ball partition      | (seed, part_count)   | ball_partition on Rng(seed)  |
//   | sparsified sample   | (seed, eps)          | mincut::sparsify_edges       |
//   | CH index            | (none — per snapshot)| sssp::build_ch(g, weights)   |
//
// Every compute function is a pure function of (frozen graph, weights, key),
// so a cache hit returns bit-identical bytes to an uncached re-derivation —
// the cache can change only latency and the hit/miss telemetry, never a
// result.  The graph/weight/fact members stay physically immutable; the
// artifact memos are mutable but internally synchronized (once-per-key,
// see util/once_memo.hpp), so the share-freely contract is unchanged.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/weighted.hpp"
#include "mincut/mincut.hpp"
#include "sssp/ch.hpp"
#include "util/once_memo.hpp"

namespace lcs::service {

/// Hit/miss/eviction counters of every artifact memo of one snapshot.
struct ArtifactStats {
  MemoStats bfs_tree;
  MemoStats partition;
  MemoStats sparsified;
  MemoStats ch;

  MemoStats total() const {
    MemoStats t;
    t.hits = bfs_tree.hits + partition.hits + sparsified.hits + ch.hits;
    t.misses = bfs_tree.misses + partition.misses + sparsified.misses + ch.misses;
    t.bypasses = bfs_tree.bypasses + partition.bypasses + sparsified.bypasses + ch.bypasses;
    t.evictions = bfs_tree.evictions + partition.evictions + sparsified.evictions + ch.evictions;
    return t;
  }
};

class GraphSnapshot {
 public:
  struct Options {
    /// Weights are part of the snapshot (queries over one snapshot must
    /// agree on them); generated as uniform [1, max_weight] from this seed.
    std::uint64_t weight_seed = 7;
    graph::Weight max_weight = 16;
    /// The diameter cache is exact (all-pairs BFS on the pool) up to this
    /// many vertices; larger snapshots record the double-sweep lower bound
    /// and a 2*eccentricity upper bound.
    std::uint32_t exact_diameter_max_vertices = 2048;
    /// Materialize the diameter bracket inside build() (a top-level entry,
    /// so the all-pairs BFS may use the pool).  When false the bracket is
    /// computed on first access — same values, different place.
    bool prewarm_diameter = true;
    /// Artifact-cache capacities (entries per memo; 0 = unbounded).  On
    /// overflow a memo drops its completed entries and rebuilds on demand —
    /// results are unaffected by construction.
    std::size_t max_cached_bfs_trees = 64;
    std::size_t max_cached_partitions = 64;
    std::size_t max_cached_samples = 64;
    /// Size of the default partition pool (PR 9).  Queries that carry no
    /// explicit num_parts draw one of these pool slots deterministically
    /// (seed = pool_seed(slot), ~sqrt(n) parts) instead of a fresh
    /// per-query partition seed, so default-shaped traffic works over a
    /// finite, prewarmable partition set.  0 restores the pre-PR-9
    /// unique-partition-per-query behavior.
    std::uint32_t partition_pool_size = 8;
    /// Materialize the whole pool inside build()/load() (a parallel_tasks
    /// job at top level) so a cold cache never pays first-query partition
    /// derivation — the proactive-prewarm half of ROADMAP item 3.  load()
    /// skips slots the snapshot file already seeded.
    bool prewarm_partition_pool = true;
  };

  /// Freeze `g` into a snapshot.  Top-level entry: the diameter
  /// precomputation may use the thread pool.  (Two overloads rather than a
  /// defaulted argument: a nested class cannot be list-initialized in a
  /// default argument of its own enclosing class.)
  static std::shared_ptr<const GraphSnapshot> build(graph::Graph g, const Options& opt);
  static std::shared_ptr<const GraphSnapshot> build(graph::Graph g);

  /// mmap a snapshot file written by save_snapshot() / SnapshotStore::save.
  /// The CSR arrays and weights stay views into the mapping; artifacts
  /// saved with the file are seeded into the caches (pre-warmed).  Throws
  /// std::runtime_error with a deterministic "snapshot: ..." message on any
  /// malformed, truncated or version-mismatched file.
  static std::shared_ptr<const GraphSnapshot> load(const std::filesystem::path& path);

  const graph::Graph& graph() const { return g_; }
  graph::WeightSpan weights() const { return weights_; }

  /// The options the snapshot was built with (load() restores them from the
  /// file header, so round-tripping preserves cache capacities too).
  const Options& options() const { return opt_; }

  std::uint32_t num_vertices() const { return g_.num_vertices(); }
  std::uint32_t num_edges() const { return g_.num_edges(); }
  bool connected() const { return connected_; }
  std::uint32_t max_degree() const { return max_degree_; }

  /// Cached unweighted diameter bracket (meaningful only when connected()).
  /// Materialized lazily through the artifact cache; bit-identical whether
  /// it was prewarmed by build() or computed on first use.
  std::uint32_t diameter_lb() const { return bracket().lb; }
  std::uint32_t diameter_ub() const { return bracket().ub; }
  bool diameter_is_exact() const { return bracket().exact; }
  /// The estimate queries use when they carry no explicit diameter: the
  /// exact value when cached, else the double-sweep lower bound (what the
  /// KP options would estimate themselves).
  std::uint32_t diameter_estimate() const {
    const DiameterBracket b = bracket();
    return b.exact ? b.ub : b.lb;
  }

  // -- shared artifacts -------------------------------------------------------

  /// Global BFS tree rooted at `root` (parents, distances, eccentricity).
  /// Each tree is one diameter estimate: dist-max brackets the diameter
  /// within a factor of two.  Computed once per root, shared by reference.
  std::shared_ptr<const graph::BfsResult> bfs_tree(graph::VertexId root) const;

  /// BFS-Voronoi ball partition grown from `part_count` seeds drawn from
  /// Rng(seed) — the partition family shortcut-shaped queries run on,
  /// computed once per (seed, part_count) and shared across queries,
  /// services and caller threads.
  std::shared_ptr<const graph::Partition> partition(std::uint64_t seed,
                                                    std::uint32_t part_count) const;

  /// Sparsified-mincut edge sample (binomial capacity thinning), computed
  /// once per (seed, eps).
  std::shared_ptr<const mincut::SparsifiedSample> sparsified_sample(std::uint64_t seed,
                                                                    double eps) const;

  /// Contraction-hierarchies index over (graph, weights) — the
  /// point-to-point query artifact.  Single-valued per snapshot (the memo
  /// key is constant): computed once by sssp::build_ch with default
  /// ChOptions, shared by every s–t query, serialized with the snapshot and
  /// seeded back on load().
  std::shared_ptr<const sssp::ChIndex> ch_index() const;

  /// The pure function behind partition(): what an uncached caller computes
  /// and what a cached caller must receive bit for bit.
  static graph::Partition compute_partition(const graph::Graph& g, std::uint64_t seed,
                                            std::uint32_t part_count);

  // -- default partition pool (PR 9) -----------------------------------------

  /// Part count of default-shaped queries (no explicit num_parts): ~sqrt(n)
  /// rounded to nearest, clamped to [1, n].
  std::uint32_t default_part_count() const;

  /// Seed of partition-pool slot `slot` — a pure function of the slot alone,
  /// so every service over any snapshot agrees on the pool keys, and the
  /// cached and uncached query paths derive the identical partition.
  static std::uint64_t pool_seed(std::uint64_t slot);

  /// Materialize every missing pool entry (partition_pool_size partitions at
  /// default_part_count()).  Fans out via parallel_tasks at top level and
  /// runs serially inside a parallel region; slots already cached (e.g.
  /// seeded from a snapshot file) are skipped without touching the hit/miss
  /// telemetry.  Idempotent; a no-op when the pool is disabled or n == 0.
  void warm_partition_pool() const;

  /// Snapshot-lifetime artifact-cache telemetry (monotone counters).
  ArtifactStats artifact_stats() const;

  /// Drop every completed cache entry (a capacity/telemetry event only:
  /// artifacts rebuild bit-identical on the next access).
  void clear_artifacts() const;

  /// Stable identity of (edges, weights): two services agreeing on this
  /// fingerprint are provably querying the same frozen inputs.
  std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  friend class SnapshotCodec;  // snapshot_format.{hpp,cpp}: save/load I/O

  GraphSnapshot() = default;

  struct DiameterBracket {
    std::uint32_t lb = 0;
    std::uint32_t ub = 0;
    bool exact = false;
  };
  struct PartitionKey {
    std::uint64_t seed = 0;
    std::uint32_t parts = 0;
    bool operator==(const PartitionKey&) const = default;
  };
  struct PartitionKeyHash {
    std::size_t operator()(const PartitionKey& k) const {
      return static_cast<std::size_t>(hash64(k.seed ^ (std::uint64_t{k.parts} << 32)));
    }
  };
  struct SampleKey {
    std::uint64_t seed = 0;
    std::uint64_t eps_bits = 0;  ///< bit pattern of the eps double (exact key)
    bool operator==(const SampleKey&) const = default;
  };
  struct SampleKeyHash {
    std::size_t operator()(const SampleKey& k) const {
      return static_cast<std::size_t>(hash64(k.seed ^ hash64(k.eps_bits)));
    }
  };

  DiameterBracket bracket() const;
  DiameterBracket compute_bracket() const;

  graph::Graph g_;
  graph::EdgeWeights weights_store_;  ///< owned weights (empty when mmap'ed)
  graph::WeightSpan weights_;         ///< the view queries read (store or mapping)
  bool connected_ = false;
  std::uint32_t max_degree_ = 0;
  Options opt_;
  std::uint64_t fingerprint_ = 0;

  // Artifact memos: mutable because materialization is lazy behind const
  // accessors; each is internally synchronized and computes pure functions,
  // so logical immutability (and the share-freely contract) holds.  The
  // bracket is single-valued and never evicted, so it lives behind its own
  // once-latch rather than a memo; like OnceMemo it obeys the no-deadlock
  // rule (an in-region caller finding the compute in flight derives a
  // private bit-identical copy instead of blocking), and a failed compute
  // clears the in-flight flag so a later call retries.
  // bracket_ready_ doubles as the publication flag: once stored with
  // release semantics (after bracket_val_ is written, still under the
  // mutex), readers take a lock-free acquire fast path — the diameter
  // accessors sit on the per-query hot path and must not contend.
  mutable std::mutex bracket_mutex_;
  mutable std::condition_variable bracket_cv_;
  mutable std::atomic<bool> bracket_ready_{false};
  mutable bool bracket_inflight_ = false;
  mutable DiameterBracket bracket_val_;
  mutable std::unique_ptr<OnceMemo<graph::VertexId, graph::BfsResult>> bfs_memo_;
  mutable std::unique_ptr<OnceMemo<PartitionKey, graph::Partition, PartitionKeyHash>>
      partition_memo_;
  mutable std::unique_ptr<OnceMemo<SampleKey, mincut::SparsifiedSample, SampleKeyHash>>
      sample_memo_;
  mutable std::unique_ptr<OnceMemo<std::uint32_t, sssp::ChIndex>> ch_memo_;
};

}  // namespace lcs::service
