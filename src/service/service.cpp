#include "service/service.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "core/kp.hpp"
#include "graph/partition.hpp"
#include "mincut/mincut.hpp"
#include "mst/mst.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace lcs::service {

namespace {

/// The vertex-disjoint connected parts a shortcut-shaped query runs on:
/// BFS-Voronoi balls around num_parts (default ~sqrt(n)) seeds grown from a
/// partition seed drawn from the query's own stream.  Default-shaped
/// queries (num_parts == 0, pool enabled) map that draw onto a slot of the
/// snapshot's finite partition pool — GraphSnapshot::pool_seed keys, so the
/// build()/load()-time prewarm covers exactly this working set; explicit
/// num_parts keeps the unbounded per-query seed family.  Cached: the shared
/// artifact keyed by (part_seed, part_count); uncached: the identical pure
/// function computed privately — bit-equal by construction, verified by the
/// cached-vs-uncached test fleet.
std::shared_ptr<const graph::Partition> query_partition(const GraphSnapshot& snap,
                                                        const QueryRequest& q, Rng& stream,
                                                        bool use_cache) {
  const std::uint32_t n = snap.num_vertices();
  LCS_REQUIRE(n > 0, "query needs a non-empty snapshot");
  const std::uint32_t pool = snap.options().partition_pool_size;
  std::uint32_t seeds = q.num_parts;
  std::uint64_t part_seed = 0;
  if (seeds == 0 && pool > 0) {
    // One stream draw either way, so pool on/off changes which partition a
    // query uses but never the rest of its random sequence.
    part_seed = GraphSnapshot::pool_seed(stream() % pool);
    seeds = snap.default_part_count();
  } else {
    if (seeds == 0)
      seeds = std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(std::lround(std::sqrt(static_cast<double>(n)))));
    seeds = std::min(seeds, n);
    part_seed = stream();
  }
  if (use_cache) return snap.partition(part_seed, seeds);
  return std::make_shared<const graph::Partition>(
      GraphSnapshot::compute_partition(snap.graph(), part_seed, seeds));
}

core::KpOptions kp_options(const GraphSnapshot& snap, const QueryRequest& q,
                           std::uint64_t kp_seed) {
  core::KpOptions opt;
  opt.beta = q.beta;
  opt.seed = kp_seed;
  opt.diameter = q.diameter.has_value() ? q.diameter
                 : snap.connected()     ? std::optional<unsigned>(snap.diameter_estimate())
                                        : std::nullopt;
  return opt;
}

std::uint64_t hash_vertices(const std::vector<graph::VertexId>& vs) {
  std::uint64_t h = hash64(vs.size());
  for (const graph::VertexId v : vs) h = hash64(h ^ v);
  return h;
}

void run_shortcut_quality(const GraphSnapshot& snap, const QueryRequest& q, Rng& stream,
                          bool use_cache, QueryResult& r) {
  const std::uint64_t kp_seed = stream();
  const auto parts = query_partition(snap, q, stream, use_cache);
  const core::KpStreamReport rep =
      core::measure_kp_quality(snap.graph(), *parts, kp_options(snap, q, kp_seed), {});
  r.congestion = rep.quality.congestion;
  r.dilation = rep.quality.dilation_ub;
  r.value = rep.quality.quality();
  r.cardinality = rep.num_large;
  // Hash the full per-part structure, not just the maxima: instances whose
  // aggregates coincide (e.g. when the sampling probability clamps to 1)
  // must still be distinguishable by their partition-level results.
  std::uint64_t h = hash64(rep.total_shortcut_edges);
  h = hash64(h ^ rep.quality.dilation_lb);
  h = hash64(h ^ rep.quality.max_cover_radius);
  h = hash64(h ^ (rep.quality.all_covered ? 1ULL : 0ULL));
  for (const core::PartDilation& pd : rep.quality.parts) {
    h = hash64(h ^ ((static_cast<std::uint64_t>(pd.cover_radius) << 32) | pd.diameter_ub));
    h = hash64(h ^ ((static_cast<std::uint64_t>(pd.diameter_lb) << 2) |
                    (pd.covered ? 2ULL : 0ULL) | (pd.exact ? 1ULL : 0ULL)));
  }
  r.content_hash = h;
}

void run_shortcut_build(const GraphSnapshot& snap, const QueryRequest& q, Rng& stream,
                        bool use_cache, QueryResult& r) {
  const std::uint64_t kp_seed = stream();
  const auto parts = query_partition(snap, q, stream, use_cache);
  const core::KpBuildResult built =
      core::build_kp_shortcuts(snap.graph(), *parts, kp_options(snap, q, kp_seed));
  std::uint64_t total = 0;
  std::uint64_t h = hash64(built.shortcuts.num_parts());
  for (const auto& h_i : built.shortcuts.h) {
    total += h_i.size();
    h = hash64(h ^ h_i.size());
    for (const graph::EdgeId e : h_i) h = hash64(h ^ e);
  }
  r.value = total;
  r.cardinality = built.num_large;
  r.content_hash = h;
}

void run_mst(const GraphSnapshot& snap, const QueryRequest& q, Rng& stream, QueryResult& r) {
  mst::BoruvkaOptions opt;
  opt.beta = q.beta;
  opt.seed = stream();
  if (q.diameter.has_value())
    opt.diameter = q.diameter;
  else if (snap.connected())
    opt.diameter = snap.diameter_estimate();
  const mst::BoruvkaResult res = mst::boruvka_mst(snap.graph(), snap.weights(), opt);
  r.value = static_cast<std::uint64_t>(res.mst.weight);
  r.cardinality = res.mst.edges.size();
  r.rounds = res.total_rounds();
  std::uint64_t h = hash64(res.phases);
  for (const graph::EdgeId e : res.mst.edges) h = hash64(h ^ e);
  h = hash64(h ^ res.messages);
  r.content_hash = h;
}

void run_mincut(const GraphSnapshot& snap, const QueryRequest& q, Rng& stream, bool use_cache,
                QueryResult& r) {
  Rng local(stream());
  mincut::CutResult cut;
  if (q.karger_trials > 0) {
    cut = mincut::karger_mincut(snap.graph(), snap.weights(), q.karger_trials, local);
    r.rounds = q.karger_trials;
  } else {
    // The binomial edge thinning is the shareable intermediate: seeded by
    // the same one draw the library entry point would take, then reused
    // from the (sample_seed, eps) cache or recomputed identically.
    const std::uint64_t sample_seed = local();
    std::shared_ptr<const mincut::SparsifiedSample> sample =
        use_cache ? snap.sparsified_sample(sample_seed, q.eps)
                  : std::make_shared<const mincut::SparsifiedSample>(mincut::sparsify_edges(
                        snap.graph(), snap.weights(), q.eps, sample_seed));
    const mincut::SparsifiedResult sp =
        mincut::sparsified_mincut_on_sample(snap.graph(), snap.weights(), *sample);
    cut = sp.cut;
    r.rounds = static_cast<std::uint64_t>(sp.skeleton_cut);
  }
  r.value = static_cast<std::uint64_t>(cut.value);
  r.cardinality = cut.side.size();
  r.content_hash = hash_vertices(cut.side);
}

void run_point_to_point(const GraphSnapshot& snap, const QueryRequest& q, bool use_cache,
                        QueryResult& r) {
  const std::uint32_t n = snap.num_vertices();
  LCS_REQUIRE(q.s < n && q.t < n, "point-to-point endpoints out of range");
  // Cached: the snapshot's single CH artifact (possibly seeded from a
  // snapshot file).  Uncached: the identical pure function of
  // (graph, weights) computed privately — bit-equal by construction.
  const std::shared_ptr<const sssp::ChIndex> ch =
      use_cache ? snap.ch_index()
                : std::make_shared<const sssp::ChIndex>(
                      sssp::build_ch(snap.graph(), snap.weights()));
  const sssp::PointToPointResult res = sssp::ch_query(*ch, q.s, q.t);
  r.s = q.s;
  r.t = q.t;
  r.distance = res.distance;
  r.value = res.distance;
  r.cardinality = res.distance == sssp::kInfDist ? 0 : 1;  // reachability bit
  r.settled_nodes = res.settled;
  r.content_hash =
      hash64(hash64((static_cast<std::uint64_t>(q.s) << 32) | q.t) ^ res.distance);
}

}  // namespace

ShortcutService::ShortcutService(std::shared_ptr<const GraphSnapshot> snapshot,
                                 std::uint64_t seed)
    : ShortcutService(std::move(snapshot), seed, Options{}) {}

ShortcutService::ShortcutService(std::shared_ptr<const GraphSnapshot> snapshot,
                                 std::uint64_t seed, const Options& options)
    : snap_(std::move(snapshot)), seed_(seed), opt_(options) {
  LCS_REQUIRE(snap_ != nullptr, "service needs a snapshot");
}

QueryResult ShortcutService::execute(const QueryRequest& q) const {
  // Catch misuse before the try below would fold it into a deterministic
  // ok=false result: queries execute at top level or as parallel_tasks
  // tasks, never from inside a plain parallel region.
  LCS_REQUIRE(!in_parallel_region() || in_parallel_task(),
              "service queries cannot run inside a parallel region");
  QueryResult r;
  r.id = q.id;
  r.kind = q.kind;
  const auto start = std::chrono::steady_clock::now();
  try {
    // The query's whole randomness budget: a stream keyed by (service seed,
    // query id) alone, so the result cannot depend on batch composition.
    Rng stream = Rng(seed_).split(q.id);
    const bool cache = opt_.use_artifact_cache;
    switch (q.kind) {
      case QueryKind::kShortcutQuality: run_shortcut_quality(*snap_, q, stream, cache, r); break;
      case QueryKind::kShortcutBuild: run_shortcut_build(*snap_, q, stream, cache, r); break;
      case QueryKind::kMst: run_mst(*snap_, q, stream, r); break;
      case QueryKind::kMincut: run_mincut(*snap_, q, stream, cache, r); break;
      // Draws nothing from the stream: the answer is a pure function of the
      // snapshot and (s, t), so the stream exists only to keep the RNG
      // discipline uniform across kinds.
      case QueryKind::kPointToPoint: run_point_to_point(*snap_, q, cache, r); break;
    }
    r.ok = true;
  } catch (const std::exception& e) {
    r.ok = false;
    r.error = e.what();
  }
  r.latency_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  return r;
}

QueryResult ShortcutService::run(const QueryRequest& request) const { return execute(request); }

std::vector<QueryResult> ShortcutService::run_batch(
    const std::vector<QueryRequest>& batch) const {
  check_distinct_query_ids(batch);
  std::vector<QueryResult> out(batch.size());
  parallel_tasks(batch.size(), [&](std::size_t t) { out[t] = execute(batch[t]); });
  return out;
}

std::vector<QueryResult> ShortcutService::run_admitted(
    const std::vector<QueryRequest>& batch, const AdmissionOptions& admission) const {
  LCS_REQUIRE(admission.cheap_slots > 0, "admission needs cheap_slots > 0");
  LCS_REQUIRE(admission.heavy_slots > 0, "admission needs heavy_slots > 0");
  check_distinct_query_ids(batch);
  const auto admitted_at = std::chrono::steady_clock::now();
  std::vector<QueryResult> out(batch.size());

  // Admission bound first: a pure function of batch position and the bound,
  // so a rejection digest can never depend on timing or thread count.
  std::vector<std::size_t> cheap_fifo, heavy_fifo;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (i >= admission.max_queue) {
      QueryResult& r = out[i];
      r.id = batch[i].id;
      r.kind = batch[i].kind;
      r.ok = false;
      r.error = "rejected: admission queue full (capacity " +
                std::to_string(admission.max_queue) + ")";
      continue;
    }
    (query_cost_class(batch[i]) == CostClass::kCheap ? cheap_fifo : heavy_fifo).push_back(i);
  }

  // Waves: each grants every class its own slots (strict caps, FIFO within
  // a class), so heavy backlog can delay cheap queries by at most one wave
  // of heavy_slots tasks — never monopolize the pool.
  std::size_t next_cheap = 0, next_heavy = 0;
  std::uint32_t wave = 0;
  std::vector<std::size_t> wave_members;
  while (next_cheap < cheap_fifo.size() || next_heavy < heavy_fifo.size()) {
    wave_members.clear();
    for (unsigned s = 0; s < admission.cheap_slots && next_cheap < cheap_fifo.size(); ++s)
      wave_members.push_back(cheap_fifo[next_cheap++]);
    for (unsigned s = 0; s < admission.heavy_slots && next_heavy < heavy_fifo.size(); ++s)
      wave_members.push_back(heavy_fifo[next_heavy++]);
    const double queued_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - admitted_at)
                                 .count();
    parallel_tasks(wave_members.size(), [&](std::size_t t) {
      const std::size_t i = wave_members[t];
      out[i] = execute(batch[i]);
      out[i].queue_ms = queued_ms;
      out[i].wave = wave;
    });
    ++wave;
  }
  return out;
}

}  // namespace lcs::service
