#include "service/streaming.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace lcs::service {
namespace {

std::uint64_t bucket_capacity(const TokenBucketConfig& cfg) {
  return static_cast<std::uint64_t>(cfg.burst) * kMilliTokensPerQuery;
}

}  // namespace

// ---------------------------------------------------------------------------
// AdmissionLedger — the pure fold.

AdmissionLedger::AdmissionLedger(StreamingOptions options) : opt_(std::move(options)) {
  LCS_REQUIRE(opt_.max_queue > 0, "streaming admission needs max_queue > 0");
  LCS_REQUIRE(opt_.cheap_slots > 0, "streaming admission needs cheap_slots > 0");
  LCS_REQUIRE(opt_.heavy_slots > 0, "streaming admission needs heavy_slots > 0");
  LCS_REQUIRE(!opt_.tenants.empty(), "streaming admission needs at least one tenant");
  tenants_.reserve(opt_.tenants.size());
  for (const TenantConfig& cfg : opt_.tenants) {
    LCS_REQUIRE(!cfg.name.empty(), "tenant names must be non-empty");
    const bool fresh =
        index_.emplace(cfg.name, static_cast<std::uint32_t>(tenants_.size())).second;
    LCS_REQUIRE(fresh, "tenant names must be distinct: " + cfg.name);
    TenantState st;
    st.cfg = cfg;
    st.cheap_millitokens = bucket_capacity(cfg.cheap);  // buckets start full
    st.heavy_millitokens = bucket_capacity(cfg.heavy);
    tenants_.push_back(std::move(st));
  }
}

std::uint32_t AdmissionLedger::tenant_index(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? kInvalidTenant : it->second;
}

ArrivalVerdict AdmissionLedger::on_arrival(std::uint32_t tenant, CostClass cls) {
  ArrivalVerdict v;
  v.arrival = arrivals_++;
  v.tenant = tenant;
  v.cls = cls;
  v.admission_wave = waves_;
  if (tenant >= tenants_.size()) {
    v.tenant = kInvalidTenant;
    v.reason = ShedReason::kUnknownTenant;
    v.queue_depth = queue_depth();
    return v;
  }
  TenantState& t = tenants_[tenant];
  ++t.counters.arrivals;
  std::uint64_t& bucket =
      cls == CostClass::kCheap ? t.cheap_millitokens : t.heavy_millitokens;
  v.millitokens_after = bucket;
  if (queue_depth() >= opt_.max_queue) {
    // Checked before the bucket so backpressure never drains a budget.
    v.reason = ShedReason::kQueueFull;
    ++t.counters.shed_queue_full;
  } else if (bucket < kMilliTokensPerQuery) {
    v.reason = ShedReason::kRateLimited;
    ++t.counters.shed_rate_limited;
  } else {
    bucket -= kMilliTokensPerQuery;
    v.millitokens_after = bucket;
    (cls == CostClass::kCheap ? cheap_fifo_ : heavy_fifo_).push_back(v.arrival);
    ++t.counters.admitted;
  }
  v.queue_depth = queue_depth();
  return v;
}

AdmissionLedger::WaveGrant AdmissionLedger::next_wave() {
  WaveGrant g;
  g.record.wave = waves_;
  g.record.cheap_pending_before = cheap_fifo_.size();
  g.record.heavy_pending_before = heavy_fifo_.size();
  for (unsigned s = 0; s < opt_.cheap_slots && !cheap_fifo_.empty(); ++s) {
    g.members.push_back(cheap_fifo_.front());
    cheap_fifo_.pop_front();
    ++g.record.cheap_granted;
  }
  for (unsigned s = 0; s < opt_.heavy_slots && !heavy_fifo_.empty(); ++s) {
    g.members.push_back(heavy_fifo_.front());
    heavy_fifo_.pop_front();
    ++g.record.heavy_granted;
  }
  g.record.queue_depth_after = queue_depth();
  ++waves_;
  for (TenantState& t : tenants_) {
    t.cheap_millitokens = std::min(bucket_capacity(t.cfg.cheap),
                                   t.cheap_millitokens + t.cfg.cheap.refill_millitokens);
    t.heavy_millitokens = std::min(bucket_capacity(t.cfg.heavy),
                                   t.heavy_millitokens + t.cfg.heavy.refill_millitokens);
  }
  return g;
}

std::uint64_t AdmissionLedger::millitokens(std::uint32_t tenant, CostClass cls) const {
  LCS_REQUIRE(tenant < tenants_.size(), "tenant index out of range");
  const TenantState& t = tenants_[tenant];
  return cls == CostClass::kCheap ? t.cheap_millitokens : t.heavy_millitokens;
}

const TenantCounters& AdmissionLedger::counters(std::uint32_t tenant) const {
  LCS_REQUIRE(tenant < tenants_.size(), "tenant index out of range");
  return tenants_[tenant].counters;
}

std::vector<ArrivalVerdict> replay_shed_schedule(const StreamingOptions& options,
                                                 const std::vector<ScheduleEvent>& schedule) {
  AdmissionLedger ledger(options);
  std::vector<ArrivalVerdict> verdicts;
  for (const ScheduleEvent& e : schedule) {
    if (e.kind == ScheduleEvent::Kind::kWave) {
      (void)ledger.next_wave();
    } else {
      verdicts.push_back(ledger.on_arrival(e.tenant, e.cls));
    }
  }
  return verdicts;
}

// ---------------------------------------------------------------------------
// StreamingService — the live loop around the fold.

struct StreamingService::Entry {
  QueryRequest request;
  std::uint32_t tenant = 0;
  std::chrono::steady_clock::time_point enqueued;
  QueryResult result;
  bool ready = false;  // guarded by the service mutex
};

StreamingService::StreamingService(ShortcutService service, StreamingOptions options)
    : svc_(std::move(service)),
      ledger_(std::move(options)),
      served_(ledger_.options().tenants.size(), 0) {
  if (ledger_.options().drain_thread) drain_ = std::thread([this] { drain_loop(); });
}

StreamingService::~StreamingService() { stop(); }

StreamingService::Ticket StreamingService::submit(const std::string& tenant,
                                                  const QueryRequest& request) {
  const CostClass cls = query_cost_class(request);
  Ticket ticket;
  bool notify = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    LCS_REQUIRE(!stopped_, "submit() on a stopped StreamingService");
    const std::uint32_t idx = ledger_.tenant_index(tenant);
    schedule_.push_back(ScheduleEvent{ScheduleEvent::Kind::kArrival, idx, cls});
    const ArrivalVerdict v = ledger_.on_arrival(idx, cls);
    verdicts_.push_back(v);
    ticket.verdict_ = v;
    if (v.admitted()) {
      auto entry = std::make_shared<Entry>();
      entry->request = request;
      entry->tenant = idx;
      entry->enqueued = std::chrono::steady_clock::now();
      pending_.emplace(v.arrival, entry);
      ticket.entry_ = std::move(entry);
      notify = true;
    } else {
      ticket.shed_text_ = make_shed_text(tenant, v);
    }
  }
  if (notify) work_cv_.notify_one();
  return ticket;
}

QueryResult StreamingService::wait(const Ticket& ticket) const {
  LCS_REQUIRE(ticket.entry_ != nullptr, "wait() needs an admitted ticket");
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return ticket.entry_->ready; });
  return ticket.entry_->result;
}

void StreamingService::drain_wave() {
  LCS_REQUIRE(!ledger_.options().drain_thread,
              "drain_wave() is the manual pump; this service owns a drain thread");
  pump_one_wave();
}

void StreamingService::drain_until_idle() {
  LCS_REQUIRE(!ledger_.options().drain_thread,
              "drain_until_idle() is the manual pump; this service owns a drain thread");
  while (queue_depth() > 0) pump_one_wave();
}

void StreamingService::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      // Idempotent; a second stop() only needs to re-join below.
    }
    stopped_ = true;
  }
  work_cv_.notify_all();
  if (drain_.joinable()) drain_.join();
  if (!ledger_.options().drain_thread) {
    // Manual mode: finish the backlog so admitted queries are never dropped.
    while (queue_depth() > 0) pump_one_wave();
  }
}

std::vector<ScheduleEvent> StreamingService::schedule() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return schedule_;
}

std::vector<ArrivalVerdict> StreamingService::verdicts() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return verdicts_;
}

std::vector<WaveRecord> StreamingService::wave_records() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return wave_records_;
}

std::vector<TenantStats> StreamingService::tenant_stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<TenantStats> out;
  const auto& tenants = ledger_.options().tenants;
  out.reserve(tenants.size());
  for (std::uint32_t i = 0; i < tenants.size(); ++i) {
    TenantStats st;
    st.name = tenants[i].name;
    st.counters = ledger_.counters(i);
    st.served = served_[i];
    st.cheap_millitokens = ledger_.millitokens(i, CostClass::kCheap);
    st.heavy_millitokens = ledger_.millitokens(i, CostClass::kHeavy);
    out.push_back(std::move(st));
  }
  return out;
}

std::size_t StreamingService::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return ledger_.queue_depth();
}

std::uint32_t StreamingService::waves_completed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return waves_completed_;
}

std::uint64_t StreamingService::arrivals() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return ledger_.arrivals();
}

void StreamingService::drain_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopped_ || ledger_.queue_depth() > 0; });
      if (ledger_.queue_depth() == 0) return;  // stopped_ and drained
    }
    // Only this thread consumes the queue, so the depth observed above can
    // only have grown by the time the wave is cut.
    pump_one_wave();
  }
}

void StreamingService::pump_one_wave() {
  AdmissionLedger::WaveGrant grant;
  std::vector<std::shared_ptr<Entry>> members;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    schedule_.push_back(ScheduleEvent{ScheduleEvent::Kind::kWave, kInvalidTenant,
                                      CostClass::kCheap});
    grant = ledger_.next_wave();
    members.reserve(grant.members.size());
    for (const std::uint64_t arrival : grant.members) {
      const auto it = pending_.find(arrival);
      LCS_CHECK(it != pending_.end(), "wave granted an arrival with no pending entry");
      members.push_back(it->second);
      pending_.erase(it);
    }
  }
  const auto dispatch = std::chrono::steady_clock::now();
  std::vector<QueryResult> results(members.size());
  if (!members.empty()) {
    // Executed outside the lock: submissions keep flowing while the wave
    // runs.  parallel_tasks gives each member its own task; inside a task
    // the library's own parallel regions serialize (same rule as
    // run_batch), so results match service().run() bit for bit.
    parallel_tasks(members.size(),
                   [&](std::size_t i) { results[i] = svc_.run(members[i]->request); });
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < members.size(); ++i) {
      const double queue_ms =
          std::chrono::duration<double, std::milli>(dispatch - members[i]->enqueued).count();
      results[i].queue_ms = queue_ms;
      results[i].wave = grant.record.wave;
      members[i]->result = std::move(results[i]);
      members[i]->ready = true;
      ++served_[members[i]->tenant];
    }
    wave_records_.push_back(grant.record);
    waves_completed_ = ledger_.waves();
  }
  done_cv_.notify_all();
}

std::string StreamingService::make_shed_text(const std::string& tenant,
                                             const ArrivalVerdict& v) const {
  switch (v.reason) {
    case ShedReason::kUnknownTenant: return "shed: unknown tenant '" + tenant + "'";
    case ShedReason::kQueueFull:
      return "shed: queue full (capacity " + std::to_string(ledger_.options().max_queue) + ")";
    case ShedReason::kRateLimited:
      return "shed: tenant '" + tenant + "' " + cost_class_name(v.cls) + " budget exhausted";
    case ShedReason::kNone: break;
  }
  return {};
}

}  // namespace lcs::service
