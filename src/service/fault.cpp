#include "service/fault.hpp"

#include <utility>

#include "util/check.hpp"

namespace lcs::service {

FaultyShard::FaultyShard(std::unique_ptr<ShardBackend> inner, FaultPlan plan,
                         std::uint32_t call_deadline_ms)
    : inner_(std::move(inner)), plan_(plan), call_deadline_ms_(call_deadline_ms) {
  LCS_REQUIRE(inner_ != nullptr, "faulty shard needs an inner backend");
  LCS_REQUIRE(plan_.drop_percent <= 100,
              "fault plan drop_percent must be a percent in [0, 100]");
}

void FaultyShard::check_alive() const {
  if (killed_) throw ShardUnavailable("shard killed");
}

ShardInfo FaultyShard::info() {
  check_alive();
  return inner_->info();
}

ShardInfo FaultyShard::reattach() {
  // A killed shard stays dead through probes; transient faults do not
  // survive into the probe, so a drop/garble/delay victim re-attaches.
  check_alive();
  return inner_->reattach();
}

void FaultyShard::send_batch(const std::vector<QueryRequest>& batch) {
  const std::uint64_t b = next_batch_;
  if (plan_.kills(b)) killed_ = true;
  check_alive();
  next_batch_ += 1;  // only live batches advance the fault clock
  pending_fault_.clear();
  if (plan_.drops(b)) {
    pending_fault_ = "rpc: connection lost";
  } else if (plan_.garbles(b)) {
    pending_fault_ = "rpc: frame payload checksum mismatch";
  } else if (const std::uint32_t stall = plan_.delays(b);
             stall > 0 && call_deadline_ms_ > 0 && stall >= call_deadline_ms_) {
    pending_fault_ =
        "rpc: deadline exceeded after " + std::to_string(call_deadline_ms_) + " ms";
  }
  inner_->send_batch(batch);
}

std::vector<QueryResult> FaultyShard::gather() {
  check_alive();
  // Drain the inner backend first so a transient fault leaves it
  // consistent for the next batch, then lose/corrupt the reply.
  std::vector<QueryResult> results = inner_->gather();
  if (!pending_fault_.empty()) {
    const std::string fault = std::move(pending_fault_);
    pending_fault_.clear();
    throw ShardUnavailable(fault);
  }
  return results;
}

}  // namespace lcs::service
