// Fingerprint-addressed snapshot store: a directory of snapshot files.
//
// The store names every file by the snapshot's fingerprint() —
// `<root>/<%016x fingerprint>.lcss` — which makes it content-addressed:
// saving the same frozen inputs twice is a no-op, and any process that
// knows a fingerprint can open exactly those inputs.  open() mmap-loads
// (snapshot_format.hpp) and caches the handle by fingerprint, so every
// tenant opening one fingerprint shares a single GraphSnapshot instance —
// and with it the artifact caches: one tenant's BFS trees, partitions and
// samples are warm hits for every other (examples/query_server.cpp
// demonstrates this cross-tenant sharing).
//
// The store synchronizes its own handle table; file-level concurrency is
// what the filesystem gives us (save is temp+rename, so readers never see
// a torn file).  Eviction drops the file and the cached handle; snapshots
// already opened stay valid — they own their mapping.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "service/snapshot.hpp"

namespace lcs::service {

class SnapshotStore {
 public:
  static constexpr const char* kExtension = ".lcss";

  /// Open (creating if needed) the store rooted at `root`.
  explicit SnapshotStore(std::filesystem::path root);

  const std::filesystem::path& root() const { return root_; }

  /// The file a fingerprint addresses (whether or not it exists yet).
  std::filesystem::path path_of(std::uint64_t fingerprint) const;

  /// Save `snap` under its fingerprint; returns the file path.  Content-
  /// addressed: when the file already exists it is left untouched (same
  /// fingerprint = same frozen inputs; re-saving could only add newer
  /// cached artifacts, and deterministically reproducible ones at that).
  std::filesystem::path save(const GraphSnapshot& snap);

  bool contains(std::uint64_t fingerprint) const;

  /// mmap-load the snapshot addressed by `fingerprint`.  Repeated opens of
  /// a live fingerprint return the *same* shared_ptr (handle cache), so
  /// artifact caches are shared across every caller.  Throws
  /// std::runtime_error when the fingerprint is not in the store or the
  /// file does not round-trip to the requested fingerprint.
  std::shared_ptr<const GraphSnapshot> open(std::uint64_t fingerprint);

  /// Fingerprints present on disk, ascending.
  std::vector<std::uint64_t> list() const;

  /// Remove the file (and any cached handle) for `fingerprint`; returns
  /// whether a file existed.  Already-open snapshots remain valid.
  bool evict(std::uint64_t fingerprint);

 private:
  std::filesystem::path root_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::weak_ptr<const GraphSnapshot>> handles_;
};

}  // namespace lcs::service
