// On-disk snapshot format v2: versioned, checksummed, mmap-friendly.
//
// A snapshot file is the byte image of one frozen GraphSnapshot — the CSR
// graph arrays, the edge weights, the diameter bracket, and every completed
// artifact-cache entry (BFS trees, ball partitions, sparsified samples, and
// since v2 the contraction-hierarchies index) at save time.  The layout
// (docs/snapshot_format.md) is a fixed 128-byte header, a section table,
// and 64-byte-aligned little-endian sections, each
// independently checksummed.  The bulk sections (CSR arrays, weights) are
// stored exactly as their in-memory representation, so loading is mmap plus
// checksum verification: the loaded snapshot's graph and weights are spans
// into the mapping, and no bulk byte is ever copied or decoded.
//
// Files are addressed by GraphSnapshot::fingerprint(): the writer embeds it
// in the header, SnapshotStore names files by it, and the loader hands it
// back — so two processes agreeing on a fingerprint are provably serving
// the same frozen inputs.  Round-trip contract: a loaded snapshot produces
// bit-identical query digests to the built snapshot it was saved from, at
// every thread count (enforced by tests/test_snapshot_store.cpp and the
// S5_snapshot_io bench gate).
//
// Versioning: the header carries a format version and an endianness tag;
// readers reject anything they do not understand with a deterministic
// "snapshot: ..." error instead of guessing.  Any layout change bumps
// kSnapshotFormatVersion.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>

#include "service/snapshot.hpp"

namespace lcs::service {

inline constexpr std::uint32_t kSnapshotFormatVersion = 2;

/// Header summary of a snapshot file — what `lcsingest --info` and store
/// listings print.  Reading it validates the header and section table (not
/// the bulk payload checksums, which load_snapshot verifies).
struct SnapshotFileInfo {
  std::uint64_t fingerprint = 0;
  std::uint32_t version = 0;
  std::uint32_t num_vertices = 0;
  std::uint32_t num_edges = 0;
  bool connected = false;
  std::uint32_t max_degree = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t saved_bfs_trees = 0;
  std::uint64_t saved_partitions = 0;
  std::uint64_t saved_samples = 0;
  std::uint64_t saved_ch_indexes = 0;  ///< 0 or 1 (the artifact is single-valued)
};

/// Write `snap` to `path` in the canonical v2 layout: sections in fixed
/// order, artifact entries sorted by key, so saving the same snapshot state
/// twice produces identical bytes.  Writes a temp file and renames, so a
/// crash never leaves a half-written snapshot under the final name.
void save_snapshot(const GraphSnapshot& snap, const std::filesystem::path& path);

/// mmap `path` and reconstruct the snapshot (what GraphSnapshot::load
/// forwards to).  Verifies magic, version, endianness, sizes and every
/// checksum; throws std::runtime_error with a deterministic "snapshot: ..."
/// message on any mismatch.  Saved artifacts are seeded into the caches.
std::shared_ptr<const GraphSnapshot> load_snapshot(const std::filesystem::path& path);

/// Validate the header + section table of `path` and summarize it.
SnapshotFileInfo read_snapshot_info(const std::filesystem::path& path);

}  // namespace lcs::service
