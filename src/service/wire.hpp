// Wire encoding of query batches: the RPC payload bodies.
//
// The router and the shard exchange QueryRequest / QueryResult vectors as
// ByteBuf-encoded runs (util/bytes.hpp) inside kRunBatch / kResults frames.
// The encoding is canonical — fixed-width little-endian fields in struct
// order, a u64 count up front, no padding — so the same logical batch
// always produces the same payload bytes and therefore the same frame
// checksum.  Decoding is strict: truncation and trailing bytes are rejected
// with deterministic "rpc: ..." errors, and an out-of-range kind byte fails
// closed with the shared "wire: unknown query kind <k>" text of
// checked_query_kind (query.hpp).
//
// Layout (v1, guarded by the frame header's protocol version):
//   requests:  count u64, then per request
//     id u64, kind u8, has_diameter u8, diameter u32,
//     beta f64, num_parts u32, karger_trials u32, eps f64,
//     s u32, t u32
//   results:   count u64, then per result
//     id u64, kind u8, ok u8, error (u64 length + bytes),
//     latency_ms f64, queue_ms f64, wave u32,
//     congestion u64, dilation u64, value u64, cardinality u64,
//     rounds u64, content_hash u64, s u32, t u32,
//     distance u64, settled_nodes u64
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "service/query.hpp"

namespace lcs::service {

/// Encode a request batch as a kRunBatch payload.
std::vector<std::byte> encode_requests(const std::vector<QueryRequest>& requests);

/// Decode a kRunBatch payload.  Throws std::runtime_error("rpc: ...") on
/// truncation or trailing bytes, "wire: unknown query kind <k>" on an
/// out-of-range kind byte.
std::vector<QueryRequest> decode_requests(const std::byte* data, std::size_t size);

/// Encode a result vector as a kResults payload.
std::vector<std::byte> encode_results(const std::vector<QueryResult>& results);

/// Decode a kResults payload.  Same strictness as decode_requests.
std::vector<QueryResult> decode_results(const std::byte* data, std::size_t size);

}  // namespace lcs::service
