#include "service/wire.hpp"

#include <stdexcept>
#include <string>

#include "util/bytes.hpp"

namespace lcs::service {

namespace {

[[noreturn]] void bad(const std::string& what) { throw std::runtime_error("rpc: " + what); }

ByteReader wire_reader(const std::byte* data, std::size_t size) {
  return ByteReader(data, size, "rpc: wire ");
}

// Kind bytes are validated by checked_query_kind (query.hpp), which fails
// closed with the exact "wire: unknown query kind <k>" text the corruption
// matrix pins.

/// The count prefix bounds the decode loop; cap it by what the payload
/// could possibly hold so a corrupted count cannot drive a huge reserve.
std::uint64_t decode_count(ByteReader& r, std::uint64_t min_item_bytes) {
  const std::uint64_t count = r.u64();
  if (count > r.remaining() / min_item_bytes) bad("wire count exceeds payload");
  return count;
}

void check_drained(const ByteReader& r) {
  if (!r.done()) bad("wire payload has trailing bytes");
}

}  // namespace

std::vector<std::byte> encode_requests(const std::vector<QueryRequest>& requests) {
  ByteBuf buf;
  buf.u64(requests.size());
  for (const QueryRequest& q : requests) {
    buf.u64(q.id);
    buf.u8(static_cast<std::uint8_t>(q.kind));
    buf.u8(q.diameter.has_value() ? 1 : 0);
    buf.u32(q.diameter.value_or(0));
    buf.f64(q.beta);
    buf.u32(q.num_parts);
    buf.u32(q.karger_trials);
    buf.f64(q.eps);
    buf.u32(q.s);
    buf.u32(q.t);
  }
  return buf.take();
}

std::vector<QueryRequest> decode_requests(const std::byte* data, std::size_t size) {
  ByteReader r = wire_reader(data, size);
  constexpr std::uint64_t kRequestBytes = 8 + 1 + 1 + 4 + 8 + 4 + 4 + 8 + 4 + 4;
  const std::uint64_t count = decode_count(r, kRequestBytes);
  std::vector<QueryRequest> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    QueryRequest q;
    q.id = r.u64();
    q.kind = checked_query_kind(r.u8());
    const bool has_diameter = r.u8() != 0;
    const std::uint32_t diameter = r.u32();
    if (has_diameter) q.diameter = diameter;
    q.beta = r.f64();
    q.num_parts = r.u32();
    q.karger_trials = r.u32();
    q.eps = r.f64();
    q.s = r.u32();
    q.t = r.u32();
    out.push_back(q);
  }
  check_drained(r);
  return out;
}

std::vector<std::byte> encode_results(const std::vector<QueryResult>& results) {
  ByteBuf buf;
  buf.u64(results.size());
  for (const QueryResult& res : results) {
    buf.u64(res.id);
    buf.u8(static_cast<std::uint8_t>(res.kind));
    buf.u8(res.ok ? 1 : 0);
    buf.u64(res.error.size());
    buf.raw(res.error.data(), res.error.size());
    buf.f64(res.latency_ms);
    buf.f64(res.queue_ms);
    buf.u32(res.wave);
    buf.u64(res.congestion);
    buf.u64(res.dilation);
    buf.u64(res.value);
    buf.u64(res.cardinality);
    buf.u64(res.rounds);
    buf.u64(res.content_hash);
    buf.u32(res.s);
    buf.u32(res.t);
    buf.u64(res.distance);
    buf.u64(res.settled_nodes);
  }
  return buf.take();
}

std::vector<QueryResult> decode_results(const std::byte* data, std::size_t size) {
  ByteReader r = wire_reader(data, size);
  constexpr std::uint64_t kResultMinBytes = 8 + 1 + 1 + 8 + 8 + 8 + 4 + 6 * 8 + 4 + 4 + 8 + 8;
  const std::uint64_t count = decode_count(r, kResultMinBytes);
  std::vector<QueryResult> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    QueryResult res;
    res.id = r.u64();
    res.kind = checked_query_kind(r.u8());
    res.ok = r.u8() != 0;
    const std::uint64_t error_bytes = r.u64();
    if (error_bytes > r.remaining()) bad("wire count exceeds payload");
    res.error.resize(error_bytes);
    r.raw(res.error.data(), error_bytes);
    res.latency_ms = r.f64();
    res.queue_ms = r.f64();
    res.wave = r.u32();
    res.congestion = r.u64();
    res.dilation = r.u64();
    res.value = r.u64();
    res.cardinality = r.u64();
    res.rounds = r.u64();
    res.content_hash = r.u64();
    res.s = r.u32();
    res.t = r.u32();
    res.distance = r.u64();
    res.settled_nodes = r.u64();
    out.push_back(std::move(res));
  }
  check_drained(r);
  return out;
}

}  // namespace lcs::service
