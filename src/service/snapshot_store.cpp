#include "service/snapshot_store.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "service/snapshot_format.hpp"

namespace lcs::service {

namespace {

std::string hex_name(std::uint64_t fingerprint) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(fingerprint));
  return buf;
}

/// Parse a `<%016x>.lcss` file name; returns false for foreign files.
bool parse_name(const std::filesystem::path& p, std::uint64_t& fingerprint) {
  if (p.extension() != SnapshotStore::kExtension) return false;
  const std::string stem = p.stem().string();
  if (stem.size() != 16) return false;
  std::uint64_t value = 0;
  for (const char c : stem) {
    int digit = 0;
    if (c >= '0' && c <= '9')
      digit = c - '0';
    else if (c >= 'a' && c <= 'f')
      digit = c - 'a' + 10;
    else
      return false;
    value = value << 4 | static_cast<std::uint64_t>(digit);
  }
  fingerprint = value;
  return true;
}

}  // namespace

SnapshotStore::SnapshotStore(std::filesystem::path root) : root_(std::move(root)) {
  std::filesystem::create_directories(root_);
}

std::filesystem::path SnapshotStore::path_of(std::uint64_t fingerprint) const {
  return root_ / (hex_name(fingerprint) + kExtension);
}

std::filesystem::path SnapshotStore::save(const GraphSnapshot& snap) {
  const std::filesystem::path path = path_of(snap.fingerprint());
  if (!std::filesystem::exists(path)) save_snapshot(snap, path);
  return path;
}

bool SnapshotStore::contains(std::uint64_t fingerprint) const {
  return std::filesystem::exists(path_of(fingerprint));
}

std::shared_ptr<const GraphSnapshot> SnapshotStore::open(std::uint64_t fingerprint) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = handles_.find(fingerprint);
    if (it != handles_.end()) {
      if (auto live = it->second.lock()) return live;
      handles_.erase(it);
    }
  }
  const std::filesystem::path path = path_of(fingerprint);
  if (!std::filesystem::exists(path))
    throw std::runtime_error("snapshot store: unknown fingerprint " + hex_name(fingerprint));
  std::shared_ptr<const GraphSnapshot> snap = load_snapshot(path);
  if (snap->fingerprint() != fingerprint)
    throw std::runtime_error("snapshot store: file " + path.string() +
                             " does not match its fingerprint");
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = handles_.find(fingerprint);
  if (auto live = it != handles_.end() ? it->second.lock() : nullptr) return live;
  handles_[fingerprint] = snap;
  return snap;
}

std::vector<std::uint64_t> SnapshotStore::list() const {
  std::vector<std::uint64_t> out;
  for (const auto& entry : std::filesystem::directory_iterator(root_)) {
    std::uint64_t fingerprint = 0;
    if (entry.is_regular_file() && parse_name(entry.path(), fingerprint))
      out.push_back(fingerprint);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool SnapshotStore::evict(std::uint64_t fingerprint) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    handles_.erase(fingerprint);
  }
  return std::filesystem::remove(path_of(fingerprint));
}

}  // namespace lcs::service
