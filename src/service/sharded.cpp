#include "service/sharded.hpp"

#include <utility>

#include "util/check.hpp"

namespace lcs::service {

LocalShard::LocalShard(std::shared_ptr<const ShortcutService> service)
    : service_(std::move(service)) {
  LCS_REQUIRE(service_ != nullptr, "local shard needs a service");
}

void LocalShard::check_alive() const {
  if (killed_) throw ShardUnavailable("shard killed");
}

ShardInfo LocalShard::info() {
  check_alive();
  ShardInfo info;
  info.fingerprint = service_->snapshot().fingerprint();
  info.seed = service_->seed();
  info.num_vertices = service_->snapshot().num_vertices();
  info.num_edges = service_->snapshot().num_edges();
  return info;
}

void LocalShard::send_batch(const std::vector<QueryRequest>& batch) {
  check_alive();
  pending_ = batch;
}

std::vector<QueryResult> LocalShard::gather() {
  check_alive();
  const std::vector<QueryRequest> batch = std::move(pending_);
  pending_.clear();
  return service_->run_batch(batch);
}

ShardRouter::ShardRouter(std::vector<std::unique_ptr<ShardBackend>> shards)
    : shards_(std::move(shards)) {
  LCS_REQUIRE(!shards_.empty(), "router needs at least one shard");
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    LCS_REQUIRE(shards_[s] != nullptr, "router shard " + std::to_string(s) + " is null");
    const ShardInfo info = shards_[s]->info();  // ShardUnavailable propagates: a
                                                // fleet that cannot attach is misuse
    if (s == 0) {
      fingerprint_ = info.fingerprint;
      seed_ = info.seed;
      continue;
    }
    LCS_REQUIRE(info.fingerprint == fingerprint_,
                "shard " + std::to_string(s) + " (" + shards_[s]->describe() +
                    ") serves snapshot fingerprint " + std::to_string(info.fingerprint) +
                    " but the router expects " + std::to_string(fingerprint_));
    LCS_REQUIRE(info.seed == seed_,
                "shard " + std::to_string(s) + " (" + shards_[s]->describe() +
                    ") uses service seed " + std::to_string(info.seed) +
                    " but the router expects " + std::to_string(seed_));
  }
}

std::vector<QueryResult> ShardRouter::run_batch(const std::vector<QueryRequest>& batch) const {
  check_distinct_query_ids(batch);
  const std::size_t n = shards_.size();

  std::vector<std::vector<QueryRequest>> sub(n);
  std::vector<std::vector<std::size_t>> origin(n);  // sub position -> batch position
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::size_t s = shard_of(batch[i].id, n);
    sub[s].push_back(batch[i]);
    origin[s].push_back(i);
  }

  // Scatter first, gather second: remote shards overlap their compute while
  // the router is still blocked on an earlier shard's reply.
  std::vector<std::string> failure(n);
  for (std::size_t s = 0; s < n; ++s) {
    if (sub[s].empty()) continue;
    try {
      shards_[s]->send_batch(sub[s]);
    } catch (const std::exception& e) {
      failure[s] = e.what();
    }
  }

  std::vector<QueryResult> out(batch.size());
  for (std::size_t s = 0; s < n; ++s) {
    if (sub[s].empty()) continue;
    std::vector<QueryResult> got;
    if (failure[s].empty()) {
      try {
        got = shards_[s]->gather();
        // A reply that does not line up with the sub-batch is as unusable
        // as no reply: fold it into the same failure path.
        if (got.size() != sub[s].size()) {
          failure[s] = "result count mismatch";
        } else {
          for (std::size_t k = 0; k < got.size(); ++k) {
            if (got[k].id != sub[s][k].id) {
              failure[s] = "result id mismatch";
              break;
            }
          }
        }
      } catch (const std::exception& e) {
        failure[s] = e.what();
      }
    }
    if (!failure[s].empty()) {
      for (std::size_t k = 0; k < sub[s].size(); ++k) {
        QueryResult r;
        r.id = sub[s][k].id;
        r.kind = sub[s][k].kind;
        r.ok = false;
        r.error = "shard " + std::to_string(s) + " unavailable: " + failure[s];
        out[origin[s][k]] = std::move(r);
      }
    } else {
      for (std::size_t k = 0; k < got.size(); ++k) out[origin[s][k]] = std::move(got[k]);
    }
  }
  return out;
}

}  // namespace lcs::service
