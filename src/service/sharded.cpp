#include "service/sharded.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace lcs::service {

std::vector<std::size_t> replicas_of(std::uint64_t id, std::size_t num_shards,
                                     std::size_t replicas) {
  LCS_REQUIRE(num_shards > 0, "replicas_of needs at least one shard");
  LCS_REQUIRE(replicas > 0, "replicas_of needs at least one replica");
  const std::size_t r = std::min(replicas, num_shards);
  std::vector<std::size_t> prefs;
  prefs.reserve(r);
  prefs.push_back(shard_of(id, num_shards));
  if (r == 1) return prefs;
  // Rendezvous-rank the remaining shards for this id: highest
  // hash64(id-key ^ shard-key) first, ties broken by shard index so the
  // order is total.  Every id draws its own fallback permutation, so the
  // load of a dead shard spreads over the whole fleet.
  std::vector<std::pair<std::uint64_t, std::size_t>> ranked;
  ranked.reserve(num_shards - 1);
  const std::uint64_t id_key = hash64(id);
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (s == prefs[0]) continue;
    ranked.emplace_back(hash64(id_key ^ hash64(0x7265706c69636173ULL + s)), s);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first : a.second < b.second;
            });
  for (std::size_t k = 0; k + 1 < r; ++k) prefs.push_back(ranked[k].second);
  return prefs;
}

LocalShard::LocalShard(std::shared_ptr<const ShortcutService> service)
    : service_(std::move(service)) {
  LCS_REQUIRE(service_ != nullptr, "local shard needs a service");
}

void LocalShard::check_alive() const {
  if (killed_) throw ShardUnavailable("shard killed");
}

ShardInfo LocalShard::info() {
  check_alive();
  ShardInfo info;
  info.fingerprint = service_->snapshot().fingerprint();
  info.seed = service_->seed();
  info.num_vertices = service_->snapshot().num_vertices();
  info.num_edges = service_->snapshot().num_edges();
  return info;
}

void LocalShard::send_batch(const std::vector<QueryRequest>& batch) {
  check_alive();
  pending_ = batch;
}

std::vector<QueryResult> LocalShard::gather() {
  check_alive();
  const std::vector<QueryRequest> batch = std::move(pending_);
  pending_.clear();
  return service_->run_batch(batch);
}

ShardRouter::ShardRouter(std::vector<std::unique_ptr<ShardBackend>> shards,
                         RouterOptions options)
    : shards_(std::move(shards)), options_(options) {
  LCS_REQUIRE(!shards_.empty(), "router needs at least one shard");
  LCS_REQUIRE(options_.replicas > 0, "router needs replicas >= 1");
  health_.resize(shards_.size());
  bool have_reference = false;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    LCS_REQUIRE(shards_[s] != nullptr, "router shard " + std::to_string(s) + " is null");
    ShardInfo info;
    try {
      info = shards_[s]->info();
    } catch (const ShardUnavailable& e) {
      // Unreplicated fleets keep the legacy strictness: a fleet that cannot
      // attach is misuse.  With replication the shard is marked down and the
      // first batch probes it — that is what lets a router attach to a fleet
      // whose member is mid-restart.
      if (options_.replicas <= 1) throw;
      health_[s].up = false;
      health_[s].last_error = e.what();
      health_[s].failures = 1;
      health_[s].next_probe_batch = 0;
      continue;
    }
    if (!have_reference) {
      fingerprint_ = info.fingerprint;
      seed_ = info.seed;
      have_reference = true;
      continue;
    }
    LCS_REQUIRE(info.fingerprint == fingerprint_,
                "shard " + std::to_string(s) + " (" + shards_[s]->describe() +
                    ") serves snapshot fingerprint " + std::to_string(info.fingerprint) +
                    " but the router expects " + std::to_string(fingerprint_));
    LCS_REQUIRE(info.seed == seed_,
                "shard " + std::to_string(s) + " (" + shards_[s]->describe() +
                    ") uses service seed " + std::to_string(info.seed) +
                    " but the router expects " + std::to_string(seed_));
  }
  LCS_REQUIRE(have_reference, "router could not attach any shard");
}

void ShardRouter::mark_down(std::size_t shard, const std::string& reason,
                            std::uint64_t batch) const {
  Health& h = health_[shard];
  h.up = false;
  h.last_error = reason;
  h.failures = 1;
  h.next_probe_batch = batch + 1;  // first re-probe on the very next batch
}

void ShardRouter::probe_down_shards(std::uint64_t batch) const {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Health& h = health_[s];
    if (h.up || batch < h.next_probe_batch) continue;
    try {
      const ShardInfo info = shards_[s]->reattach();
      if (info.fingerprint != fingerprint_ || info.seed != seed_)
        throw ShardUnavailable("reattached shard serves different frozen inputs");
      h.up = true;
      h.failures = 0;
      h.last_error.clear();
    } catch (const std::exception& e) {
      h.last_error = e.what();
      h.failures += 1;
      // Capped exponential backoff in batch counts: probe after 1, 2, 4, ...
      // further batches, never more than the cap apart.
      const std::uint64_t shift = std::min<std::uint64_t>(h.failures - 1, 20);
      h.next_probe_batch =
          batch + std::min<std::uint64_t>(std::uint64_t{1} << shift, options_.probe_backoff_cap);
    }
  }
}

std::vector<QueryResult> ShardRouter::run_batch(const std::vector<QueryRequest>& batch) const {
  check_distinct_query_ids(batch);
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t batch_index = next_batch_++;
  // One reconnect attempt per marked-down shard per batch, backoff allowing.
  probe_down_shards(batch_index);

  const std::size_t n = shards_.size();
  const std::size_t max_targets =
      options_.retries == kRetryAllReplicas
          ? n
          : std::min(n, options_.retries + 1);

  // Per-query failover state: the preference cursor walks replicas_of in
  // order, skipping known-down shards for free; only shards the query was
  // actually sent to consume the retry budget (and count as attempts).
  struct Pending {
    std::size_t pos = 0;            ///< position in the caller's batch
    std::vector<std::size_t> prefs;
    std::size_t cursor = 0;         ///< next preference to consider
    std::uint32_t sends = 0;        ///< live shards actually attempted
    std::size_t fail_shard = 0;     ///< last shard skipped or failed
    std::string fail_reason;
  };
  std::vector<Pending> pending(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    pending[i].pos = i;
    pending[i].prefs = replicas_of(batch[i].id, n, options_.replicas);
  }

  std::vector<QueryResult> out(batch.size());
  auto capture = [&](const Pending& q) {
    QueryResult r;
    r.id = batch[q.pos].id;
    r.kind = batch[q.pos].kind;
    r.ok = false;
    r.error = "shard " + std::to_string(q.fail_shard) + " unavailable: " + q.fail_reason;
    r.attempts = q.sends;
    out[q.pos] = std::move(r);
  };

  // Failover rounds: assign every unresolved query to its first live
  // preference, scatter, gather, and carry live failures into the next
  // round.  Each round either resolves a query or advances its cursor, so
  // the loop terminates after at most `replicas` rounds.
  while (!pending.empty()) {
    std::vector<std::vector<std::size_t>> assigned(n);  // shard -> pending indices
    std::vector<Pending> still_pending;
    for (Pending& q : pending) {
      while (q.cursor < q.prefs.size() && !health_[q.prefs[q.cursor]].up) {
        q.fail_shard = q.prefs[q.cursor];
        q.fail_reason = health_[q.fail_shard].last_error;
        ++q.cursor;
      }
      if (q.cursor >= q.prefs.size() || q.sends >= max_targets) {
        capture(q);
        continue;
      }
      assigned[q.prefs[q.cursor]].push_back(still_pending.size());
      still_pending.push_back(std::move(q));
    }
    pending = std::move(still_pending);
    if (pending.empty()) break;

    // Scatter first, gather second: remote shards overlap their compute
    // while the router is still blocked on an earlier shard's reply.
    std::vector<std::string> failure(n);
    std::vector<std::vector<QueryRequest>> sub(n);
    for (std::size_t s = 0; s < n; ++s) {
      if (assigned[s].empty()) continue;
      sub[s].reserve(assigned[s].size());
      for (const std::size_t qi : assigned[s]) sub[s].push_back(batch[pending[qi].pos]);
      try {
        shards_[s]->send_batch(sub[s]);
      } catch (const std::exception& e) {
        failure[s] = e.what();
      }
    }

    std::vector<Pending> next_round;
    for (std::size_t s = 0; s < n; ++s) {
      if (assigned[s].empty()) continue;
      std::vector<QueryResult> got;
      if (failure[s].empty()) {
        try {
          got = shards_[s]->gather();
          // A reply that does not line up with the sub-batch is as unusable
          // as no reply: fold it into the same failure path.
          if (got.size() != sub[s].size()) {
            failure[s] = "result count mismatch";
          } else {
            for (std::size_t k = 0; k < got.size(); ++k) {
              if (got[k].id != sub[s][k].id) {
                failure[s] = "result id mismatch";
                break;
              }
            }
          }
        } catch (const std::exception& e) {
          failure[s] = e.what();
        }
      }
      if (!failure[s].empty()) {
        mark_down(s, failure[s], batch_index);
        for (const std::size_t qi : assigned[s]) {
          Pending& q = pending[qi];
          q.sends += 1;
          q.fail_shard = s;
          q.fail_reason = failure[s];
          q.cursor += 1;
          next_round.push_back(std::move(q));
        }
      } else {
        for (std::size_t k = 0; k < assigned[s].size(); ++k) {
          Pending& q = pending[assigned[s][k]];
          q.sends += 1;
          got[k].attempts = q.sends;
          got[k].served_by_replica = static_cast<std::uint32_t>(q.cursor);
          out[q.pos] = std::move(got[k]);
        }
      }
    }
    pending = std::move(next_round);
  }
  return out;
}

std::vector<ShardRouter::ShardHealthView> ShardRouter::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ShardHealthView> out(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    out[s].up = health_[s].up;
    out[s].failures = health_[s].failures;
    out[s].last_error = health_[s].last_error;
  }
  return out;
}

}  // namespace lcs::service
