// Scripted, reproducible fault injection for the sharded service.
//
// FaultPlan describes *when* a shard misbehaves — kill from batch k
// onward, drop or garble one reply frame, stall past a deadline — either
// scripted exactly (the *_at_batch fields) or drawn probabilistically from
// a counter-based hash of (seed, batch index), so two runs of the same
// plan misbehave identically with no RNG state to thread through.
//
// FaultyShard is a ShardBackend decorator applying a plan to any inner
// backend (a LocalShard in tests and the S7 bench, an RpcShard if a fleet
// should be chaos-tested in-process before scripts/stress_sharded.py does
// it cross-process).  Every injected failure throws ShardUnavailable with
// the *same* deterministic text the real failure mode produces:
//
//   kill    -> "shard killed"                        (LocalShard::kill)
//   drop    -> "rpc: connection lost"                (transport mid-frame)
//   garble  -> "rpc: frame payload checksum mismatch" (frame validation)
//   delay   -> "rpc: deadline exceeded after <ms> ms" (socket deadline),
//              quoting the configured call deadline — a delay shorter than
//              the deadline (or with no deadline at all) is absorbed
//
// so the router cannot tell an injected fault from a real one, and every
// digest/capture gate exercised under injection holds verbatim under real
// faults.  Transient faults (drop, garble, delay) leave the inner backend
// alive: its gather is drained before the throw, so the next batch finds
// the shard consistent and the router's probe re-attaches it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "service/sharded.hpp"

namespace lcs::service {

/// When a shard misbehaves, keyed by the backend's send_batch counter
/// (batch 0 is the first batch sent through the wrapper).
struct FaultPlan {
  /// "Never" for the scripted one-shot faults below.
  static constexpr std::uint64_t kNever = static_cast<std::uint64_t>(-1);

  std::uint64_t seed = 0;  ///< keys the probabilistic faults, nothing else

  std::uint64_t kill_at_batch = kNever;    ///< dead from this batch onward
  std::uint64_t drop_frame_at = kNever;    ///< this batch's reply frame is lost
  std::uint64_t garble_frame_at = kNever;  ///< this batch's reply frame is corrupted
  std::uint64_t delay_at = kNever;         ///< this batch's reply stalls delay_ms
  std::uint32_t delay_ms = 0;              ///< the stall length for delay_at

  /// Per-batch percent chance [0, 100] of a transient dropped reply, drawn
  /// from hash64(seed, batch) — scriptable chaos without scripting every
  /// batch index.
  std::uint32_t drop_percent = 0;

  bool kills(std::uint64_t batch) const { return batch >= kill_at_batch; }
  bool garbles(std::uint64_t batch) const { return batch == garble_frame_at; }
  std::uint32_t delays(std::uint64_t batch) const {
    return batch == delay_at ? delay_ms : 0;
  }
  bool drops(std::uint64_t batch) const {
    if (batch == drop_frame_at) return true;
    if (drop_percent == 0) return false;
    return hash64(seed ^ hash64(0x6661756c74ULL + batch)) % 100 < drop_percent;
  }
};

/// ShardBackend decorator injecting a FaultPlan into any inner backend.
/// `call_deadline_ms` mirrors the rpc-layer DeadlineOptions::call_ms as a
/// plain integer (the service layer does not depend on rpc): a scripted
/// delay at or past it throws the deadline error, 0 means no deadline.
class FaultyShard : public ShardBackend {
 public:
  FaultyShard(std::unique_ptr<ShardBackend> inner, FaultPlan plan,
              std::uint32_t call_deadline_ms = 0);

  std::string describe() const override { return inner_->describe(); }
  ShardInfo info() override;
  ShardInfo reattach() override;
  void send_batch(const std::vector<QueryRequest>& batch) override;
  std::vector<QueryResult> gather() override;

  /// Batches sent through this wrapper so far (the fault clock).
  std::uint64_t batches_sent() const { return next_batch_; }

 private:
  void check_alive() const;

  std::unique_ptr<ShardBackend> inner_;
  FaultPlan plan_;
  std::uint32_t call_deadline_ms_ = 0;
  std::uint64_t next_batch_ = 0;
  bool killed_ = false;
  std::string pending_fault_;  ///< error text to throw at the next gather
};

}  // namespace lcs::service
