#include "core/kp.hpp"

#include <algorithm>
#include <cmath>

#include "core/coin.hpp"
#include "core/congestion_merge.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace lcs::core {

namespace {

unsigned effective_diameter(const Graph& g, const KpOptions& opt) {
  if (opt.diameter.has_value()) return *opt.diameter;
  // Double sweep is exact on our generator families and never above the
  // true diameter, matching what a BFS-based 2-approximation would allow.
  return std::max(1u, graph::diameter_double_sweep(g));
}

ShortcutParams make_params(const Graph& g, const KpOptions& opt) {
  const unsigned d = effective_diameter(g, opt);
  ShortcutParams p = ShortcutParams::make(g.num_vertices(), d, opt.beta);
  if (opt.repetitions.has_value()) p.repetitions = std::max(1u, *opt.repetitions);
  if (opt.probability_override.has_value())
    p.sample_prob = std::clamp(*opt.probability_override, 0.0, 1.0);
  return p;
}

struct Classification {
  std::vector<bool> is_large;
  std::vector<std::uint32_t> large_index;
  std::uint32_t num_large = 0;
};

Classification classify(const Partition& parts, const ShortcutParams& params) {
  Classification c;
  c.is_large.resize(parts.parts.size());
  c.large_index.assign(parts.parts.size(), graph::kUnreached);
  for (std::size_t i = 0; i < parts.parts.size(); ++i) {
    c.is_large[i] = parts.parts[i].size() > params.large_threshold;
    if (c.is_large[i]) c.large_index[i] = c.num_large++;
  }
  return c;
}

}  // namespace

ShortcutParams kp_params(const Graph& g, const Partition& parts, const KpOptions& opt) {
  (void)parts;
  return make_params(g, opt);
}

std::vector<EdgeId> kp_edges_for_part(const Graph& g, const Partition& parts,
                                      std::size_t part, const ShortcutParams& params,
                                      std::uint32_t large_idx, std::uint64_t seed,
                                      unsigned repetitions) {
  LCS_REQUIRE(part < parts.parts.size(), "part out of range");
  const CoinFlipper coins(seed, params.sample_prob);
  std::vector<bool> in_part(g.num_vertices(), false);
  for (const VertexId v : parts.parts[part]) in_part[v] = true;

  std::vector<EdgeId> h;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::Edge ed = g.edge(e);
    const bool u_in = in_part[ed.u];
    const bool v_in = in_part[ed.v];
    if (u_in || v_in) {
      // Step 1: all edges incident to S_i, with probability 1.
      h.push_back(e);
      continue;
    }
    // Step 2: both endpoints sample the directed edge, `repetitions` times.
    bool taken = false;
    for (unsigned rep = 0; rep < repetitions && !taken; ++rep)
      taken = coins.flip(e, 0, large_idx, rep) || coins.flip(e, 1, large_idx, rep);
    if (taken) h.push_back(e);
  }
  return h;
}

KpBuildResult build_kp_shortcuts(const Graph& g, const Partition& parts,
                                 const KpOptions& opt) {
  KpBuildResult out;
  out.params = make_params(g, opt);
  Classification c = classify(parts, out.params);
  out.is_large = std::move(c.is_large);
  out.large_index = std::move(c.large_index);
  out.num_large = c.num_large;

  // One task per part; the coin flips are stateless hashes of (seed, edge,
  // direction, part, repetition), i.e. counter-based streams indexed by the
  // (repetition x large-part x edge) task coordinates, so the sampled set is
  // bit-identical at every thread count.
  const std::size_t np = parts.parts.size();
  out.shortcuts.h.resize(np);
  parallel_for(0, np, 1, [&](std::size_t i) {
    if (!out.is_large[i]) return;  // small parts get no shortcut
    out.shortcuts.h[i] = kp_edges_for_part(g, parts, i, out.params, out.large_index[i],
                                           opt.seed, out.params.repetitions);
  });
  return out;
}

KpStreamReport measure_kp_quality(const Graph& g, const Partition& parts,
                                  const KpOptions& opt, const QualityOptions& qopt) {
  KpStreamReport out;
  out.params = make_params(g, opt);
  const Classification c = classify(parts, out.params);
  out.num_large = c.num_large;

  // Streamed and parallel: each task samples, counts and measures one part's
  // H_i, then drops it.  Per-part results go to index-addressed slots, the
  // congestion counts to per-worker scratch; both merges below are
  // order-insensitive, so the report matches sequential execution exactly.
  const std::size_t np = parts.parts.size();
  QualityReport& rep = out.quality;
  rep.parts.resize(np);
  std::vector<std::uint64_t> h_sizes(np, 0);
  std::vector<std::vector<std::uint32_t>> load(num_threads());
  parallel_for_chunked(
      0, np, default_grain(np), [&](std::size_t begin, std::size_t end, unsigned worker) {
        auto& l = detail::worker_load(load, worker, g.num_edges());
        for (std::size_t i = begin; i < end; ++i) {
          std::vector<EdgeId> h_i;
          if (c.is_large[i]) {
            h_i = kp_edges_for_part(g, parts, i, out.params, c.large_index[i], opt.seed,
                                    out.params.repetitions);
            h_sizes[i] = h_i.size();
          }
          for (const EdgeId e : augmented_edges(g, parts.parts[i], h_i)) ++l[e];
          rep.parts[i] = measure_part_dilation(g, parts.parts[i], parts.leader(i), h_i, qopt);
        }
      });
  for (std::size_t i = 0; i < np; ++i) {
    out.total_shortcut_edges += h_sizes[i];
    const PartDilation& pd = rep.parts[i];
    rep.all_covered = rep.all_covered && pd.covered;
    rep.dilation_lb = std::max(rep.dilation_lb, pd.diameter_lb);
    rep.dilation_ub = std::max(rep.dilation_ub, pd.diameter_ub);
    rep.max_cover_radius = std::max(rep.max_cover_radius, pd.cover_radius);
  }
  rep.congestion = detail::merged_congestion(load, g.num_edges());
  return out;
}

ShortcutSet build_gh_shortcuts(const Graph& g, const Partition& parts) {
  const double threshold = std::sqrt(static_cast<double>(g.num_vertices()));
  ShortcutSet sc;
  sc.h.resize(parts.parts.size());
  std::vector<EdgeId> all;
  for (std::size_t i = 0; i < parts.parts.size(); ++i) {
    if (static_cast<double>(parts.parts[i].size()) < threshold) continue;
    if (all.empty()) {
      all.resize(g.num_edges());
      for (EdgeId e = 0; e < g.num_edges(); ++e) all[e] = e;
    }
    sc.h[i] = all;
  }
  return sc;
}

ShortcutSet build_trivial_shortcuts(const Partition& parts) {
  ShortcutSet sc;
  sc.h.resize(parts.parts.size());
  return sc;
}

KpBuildResult build_kp_shortcuts_odd(const Graph& g, const Partition& parts,
                                     const KpOptions& opt) {
  KpBuildResult out;
  out.params = make_params(g, opt);
  LCS_REQUIRE(out.params.diameter % 2 == 1, "odd-diameter construction needs odd D");
  Classification c = classify(parts, out.params);
  out.is_large = std::move(c.is_large);
  out.large_index = std::move(c.large_index);
  out.num_large = c.num_large;

  const graph::Subdivision sub = graph::subdivide(g);
  const double p_half = std::sqrt(out.params.sample_prob);
  const CoinFlipper coins(opt.seed, p_half);

  const std::size_t np = parts.parts.size();
  out.shortcuts.h.resize(np);
  // One task per part with a per-worker membership scratch; the coins are
  // stateless hashes, so the sample is thread-count independent.
  std::vector<std::vector<bool>> in_part_scratch(num_threads());
  parallel_for_chunked(0, np, 1, [&](std::size_t begin, std::size_t end, unsigned worker) {
    auto& in_part = in_part_scratch[worker];
    if (in_part.size() != g.num_vertices()) in_part.assign(g.num_vertices(), false);
    for (std::size_t i = begin; i < end; ++i) {
      if (!out.is_large[i]) continue;
      for (const VertexId v : parts.parts[i]) in_part[v] = true;
      const std::uint32_t li = out.large_index[i];
      auto& h = out.shortcuts.h[i];
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        const graph::Edge ed = g.edge(e);
        if (in_part[ed.u] || in_part[ed.v]) {
          h.push_back(e);  // step 1: the two-edge path with probability 1
          continue;
        }
        bool taken = false;
        for (unsigned rep = 0; rep < out.params.repetitions && !taken; ++rep) {
          // Both halves must be sampled in the same repetition: probability
          // sqrt(p)^2 = p per repetition, exactly as in the paper.
          taken = coins.flip(sub.half_a[e], 0, li, rep) &&
                  coins.flip(sub.half_b[e], 0, li, rep);
        }
        if (taken) h.push_back(e);
      }
      for (const VertexId v : parts.parts[i]) in_part[v] = false;
    }
  });
  return out;
}

KpBuildResult build_kkoi_d3(const Graph& g, const Partition& parts, std::uint64_t seed,
                            double beta) {
  KpOptions opt;
  opt.beta = beta;
  opt.seed = seed;
  opt.diameter = 3;
  opt.repetitions = 1;
  return build_kp_shortcuts(g, parts, opt);
}

ShortcutSet build_deterministic_tree_shortcuts(const Graph& g, const Partition& parts,
                                               std::uint32_t depth_cap) {
  if (depth_cap == 0) depth_cap = std::max(1u, graph::diameter_double_sweep(g));
  const ShortcutParams params =
      ShortcutParams::make(std::max<std::uint64_t>(2, g.num_vertices()),
                           std::max(1u, depth_cap));
  ShortcutSet sc;
  sc.h.resize(parts.parts.size());
  for (std::size_t i = 0; i < parts.parts.size(); ++i) {
    if (parts.parts[i].size() <= params.large_threshold) continue;
    const graph::BfsResult r = graph::bfs_truncated(g, parts.leader(i), depth_cap);
    auto& h = sc.h[i];
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      if (r.parent_edge[v] != graph::kNoEdge) h.push_back(r.parent_edge[v]);
    std::sort(h.begin(), h.end());
  }
  return sc;
}

}  // namespace lcs::core
