// Shortcut trees (Section 3.1 of the paper) — the analytical device behind
// the dilation bound, implemented concretely so that Lemma 3.3 and
// Observation 3.1 can be validated empirically.
//
// For a path P = [p_1..p_{2d-1}] (a shortest path inside a part), a node
// set Q, and a bound l >= dist_G(P, Q), the auxiliary graph G_{P,Q,l} is a
// layered graph:
//
//   L_1     = the path positions (one aux node per position),
//   L_2..L_l = one copy of V(G) per layer,
//   L_{l+1} = Q,
//   L_{l+2} = {r},
//
// with "self-copy" edges between consecutive copies of the same G-vertex,
// copies of every G-edge between consecutive layers, and r joined to all
// of Q.  T_{P,Q,l} is the BFS tree from r; T[p] keeps the L_1-L_2 edges,
// the r edges and the self edges, and keeps a non-self tree edge between
// L_k and L_{k+1} iff its directed G-edge was sampled in repetition k-1 of
// Step (2) — the *same* coins as the shortcut construction itself.
// Finally T* = T[p] ∪ E(P).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/coin.hpp"
#include "graph/algorithms.hpp"
#include "graph/graph.hpp"

namespace lcs::core {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

class ShortcutTree {
 public:
  /// `path` must be a path in G (consecutive vertices adjacent); `q` must be
  /// non-empty.  `part_for_coins` is the large-part index whose Step-2 coins
  /// the sampling replays; `sample_prob` is p.
  ShortcutTree(const Graph& g, std::vector<VertexId> path, std::vector<VertexId> q,
               std::uint32_t ell, std::uint64_t seed, double sample_prob,
               std::uint32_t part_for_coins);

  std::uint32_t ell() const { return ell_; }
  std::uint32_t path_length() const { return static_cast<std::uint32_t>(path_.size()); }

  /// True when the BFS tree attaches every path position to the root,
  /// i.e. dist_G(P, Q) <= l.
  bool tree_complete() const { return tree_complete_; }

  // --- aux graph structure ---------------------------------------------------
  std::uint32_t num_aux_nodes() const { return aux_.num_vertices(); }
  /// Layer of an aux node, in [1, l+2].
  std::uint32_t layer_of(VertexId aux) const;
  /// The G-vertex an aux node copies (kNoVertex for the root).
  VertexId g_vertex_of(VertexId aux) const;
  /// Aux id of path position `pos` (0-based).
  VertexId path_node(std::uint32_t pos) const;
  /// Aux id of the root.
  VertexId root() const { return root_; }

  /// BFS-tree parent of an aux node (kNoVertex for the root / unreached).
  VertexId tree_parent(VertexId aux) const;
  /// Whether the tree edge (aux -> parent) survived the sampling into T[p].
  bool tree_edge_survives(VertexId aux) const;

  // --- T* queries --------------------------------------------------------
  /// BFS distances in T* from path position `pos` (indexed by aux id).
  std::vector<std::uint32_t> tstar_dist_from(std::uint32_t pos) const;

  /// min distance in T* from position `pos` to {t} ∪ L_k  (Lemma 3.3's
  /// quantity); kUnreached when unreachable.
  std::uint32_t dist_to_level(std::uint32_t pos, std::uint32_t k) const;

  // --- (i, k) units and walks (Definition 3.1) -------------------------------
  struct Unit {
    bool valid = false;                 ///< u_{i,k} exists (always true when complete)
    std::vector<VertexId> walk;         ///< aux ids: p_i .. u_{i,k} .. p_j
    std::uint32_t apex = 0;             ///< aux id of u_{i,k}
    std::uint32_t apex_layer = 0;
    std::uint32_t end_pos = 0;          ///< j (0-based position of p_j)
  };
  Unit unit(std::uint32_t pos, std::uint32_t k) const;

  struct Walk {
    std::vector<VertexId> nodes;        ///< aux ids of the full walk
    std::vector<VertexId> level_k_nodes;///< the w_j sequence of Obs. 3.1
    std::uint32_t end_pos = 0;
    bool reached_t = false;
  };
  /// The maximal (i,k) walk of Definition 3.1.
  Walk maximal_walk(std::uint32_t pos, std::uint32_t k) const;

  /// Project a T*-walk to parent-graph vertices (Observation 3.2: every
  /// aux step maps to a G-edge or stays on the same G-vertex).
  std::vector<VertexId> project_to_g(const std::vector<VertexId>& aux_walk) const;

 private:
  VertexId aux_of_copy(std::uint32_t layer, VertexId g_vertex) const;
  void build_aux_graph(const Graph& g);
  void run_tree_bfs();
  void sample_tree_edges(const Graph& g, std::uint64_t seed, double sample_prob,
                         std::uint32_t part);
  void build_tstar();

  const Graph* g_;
  std::vector<VertexId> path_;
  std::vector<VertexId> q_;
  std::uint32_t ell_;

  Graph aux_;                           // the layered graph G_{P,Q,l}
  std::vector<std::uint32_t> layer_;    // per aux node
  std::vector<VertexId> g_vertex_;      // per aux node; kNoVertex for root
  VertexId root_ = graph::kNoVertex;
  std::uint32_t n_g_ = 0;

  std::vector<VertexId> parent_;        // BFS tree parent per aux node
  std::vector<bool> survives_;          // per aux node: edge to parent kept in T[p]
  std::vector<std::vector<VertexId>> children_;  // surviving-children lists
  bool tree_complete_ = false;

  Graph tstar_;                         // T[p] ∪ E(P) over aux ids
  std::unordered_map<std::uint64_t, EdgeId> g_edge_lookup_;
};

}  // namespace lcs::core
