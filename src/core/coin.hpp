// Shared-randomness coin flips for the sampling construction.
//
// Step (2) of the centralized construction flips, for every directed edge
// (u, v) with u outside S_i, D independent coins of bias p — one per
// repetition — deciding membership of (u, v) in H_i.  We realise each coin
// as a hash of (seed, edge, direction, part, repetition): deterministic,
// reproducible, and *memoryless*, so the centralized sampler, the
// distributed simulation (where the seed is the broadcast shared
// randomness SR of [Gha15]) and the shortcut-tree analysis all observe the
// exact same coin outcomes without storing anything.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lcs::core {

class CoinFlipper {
 public:
  CoinFlipper(std::uint64_t seed, double p) : seed_(seed) {
    LCS_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
    // Threshold comparison against the full 64-bit hash range.
    threshold_ = p >= 1.0 ? ~0ULL : static_cast<std::uint64_t>(p * 18446744073709551615.0);
    always_ = p >= 1.0;
  }

  double probability_threshold() const { return static_cast<double>(threshold_); }

  /// The coin for (directed edge, part, repetition).
  /// `direction` is 0 when the sampling endpoint is edge(e).u, 1 otherwise.
  bool flip(graph::EdgeId e, int direction, std::uint32_t part, std::uint32_t repetition) const {
    if (always_) return true;
    std::uint64_t h = seed_;
    h = hash64(h ^ ((static_cast<std::uint64_t>(e) << 1) | static_cast<std::uint64_t>(direction)));
    h = hash64(h ^ (static_cast<std::uint64_t>(part) * 0x9e3779b97f4a7c15ULL));
    h = hash64(h ^ repetition);
    return h < threshold_;
  }

 private:
  std::uint64_t seed_;
  std::uint64_t threshold_;
  bool always_ = false;
};

}  // namespace lcs::core
