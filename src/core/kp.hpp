// The Kogan–Parter shortcut construction (Section 2 of the paper), plus the
// baseline constructions it is evaluated against.
//
// Centralized construction, for each large part S_i (|S_i| > k_D):
//   Step 1: every edge incident to S_i joins H_i.
//   Step 2: every node u outside S_i samples each incident directed edge
//           (u, v) into H_i with probability p = beta * k_D * ln(n) / N,
//           independently, D times.
// Congestion is O(D * k_D * log n) w.h.p. by Chernoff; dilation is
// O(k_D log n) w.h.p. by the shortcut-tree argument (Section 3).
#pragma once

#include <cstdint>
#include <optional>

#include "core/shortcut.hpp"
#include "util/math.hpp"

namespace lcs::core {

struct KpOptions {
  double beta = 1.0;            ///< scales the sampling probability (EA2 ablation)
  std::uint64_t seed = 1;       ///< shared randomness
  /// Unweighted diameter of G.  When absent it is estimated by double sweep
  /// (the distributed algorithm would get a 2-approximation from a BFS).
  std::optional<unsigned> diameter;
  /// Number of independent sampling repetitions; defaults to D (EA1 ablation).
  std::optional<unsigned> repetitions;
  /// Direct override of the sampling probability (diagnostics only).
  std::optional<double> probability_override;
};

struct KpBuildResult {
  ShortcutSet shortcuts;       ///< H_i per part (empty for small parts)
  ShortcutParams params;
  std::vector<bool> is_large;
  std::vector<std::uint32_t> large_index;  ///< index in [0, N) or kUnreached
  std::uint32_t num_large = 0;
};

/// Materialize the full shortcut assignment.  Memory is
/// O(total |H_i|) = O(m * congestion); for large sweeps prefer
/// measure_kp_quality below.
KpBuildResult build_kp_shortcuts(const Graph& g, const Partition& parts,
                                 const KpOptions& opt = {});

/// Sampled H_i of a single part, computed independently (same coins as the
/// full construction — the coins are hashes of shared randomness).
std::vector<EdgeId> kp_edges_for_part(const Graph& g, const Partition& parts,
                                      std::size_t part, const ShortcutParams& params,
                                      std::uint32_t large_idx, std::uint64_t seed,
                                      unsigned repetitions);

/// Streamed quality measurement: identical outcome to
/// measure_quality(build_kp_shortcuts(...)) but only one H_i is alive at a
/// time.
struct KpStreamReport {
  QualityReport quality;
  ShortcutParams params;
  std::uint32_t num_large = 0;
  std::uint64_t total_shortcut_edges = 0;  ///< sum over parts of |H_i|
};
KpStreamReport measure_kp_quality(const Graph& g, const Partition& parts,
                                  const KpOptions& opt = {}, const QualityOptions& qopt = {});

// --- baselines --------------------------------------------------------------

/// Ghaffari–Haeupler (SODA 2016) general-graph construction: parts with at
/// least sqrt(n) vertices take all of G as their shortcut; smaller parts
/// take nothing.  Quality O(D + sqrt(n)).
ShortcutSet build_gh_shortcuts(const Graph& g, const Partition& parts);

/// No shortcuts at all; dilation is the diameter of the parts themselves.
ShortcutSet build_trivial_shortcuts(const Partition& parts);

/// Kitamura et al. (DISC 2019) style D=3 construction: single-repetition
/// sampling at the D=3 rate.  (The paper notes its own construction
/// coincides with this scheme for D = 3.)
KpBuildResult build_kkoi_d3(const Graph& g, const Partition& parts, std::uint64_t seed,
                            double beta = 1.0);

/// Deterministic tree baseline (a natural candidate for the paper's
/// derandomization open problem): every large part takes the truncated
/// global BFS tree from its leader, depth <= depth_cap (default: the graph
/// diameter estimate).  Dilation is <= 2*depth_cap by construction, but
/// congestion degrades to the number of large parts on hub edges — the
/// measured gap to the sampled construction is exactly what randomization
/// buys.  Parts sized over k_D (same rule as KP) get the tree.
ShortcutSet build_deterministic_tree_shortcuts(const Graph& g, const Partition& parts,
                                               std::uint32_t depth_cap = 0);

/// Parameters the construction would use (exposed for harnesses).
ShortcutParams kp_params(const Graph& g, const Partition& parts, const KpOptions& opt);

// --- odd diameter via subdivision (Section 3.2) -----------------------------

/// The paper's odd-D construction: subdivide every edge (G' has even
/// diameter 2D), sample each half-edge with probability sqrt(p), and keep an
/// original edge in H_i iff both halves were sampled in the same repetition.
/// Edges incident to S_i are kept with probability 1, as the two-edge path.
/// The result lives on the *original* graph.
KpBuildResult build_kp_shortcuts_odd(const Graph& g, const Partition& parts,
                                     const KpOptions& opt = {});

}  // namespace lcs::core
