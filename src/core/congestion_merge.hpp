// Internal helper shared by the parallel quality measurements: merging
// per-worker congestion scratch into the max edge load.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/parallel.hpp"

namespace lcs::core::detail {

/// Lazily initialised per-worker counter row (size the outer vector with
/// num_threads()); workers that never run a chunk leave their row empty.
inline std::vector<std::uint32_t>& worker_load(std::vector<std::vector<std::uint32_t>>& load,
                                               unsigned worker, std::size_t num_edges) {
  auto& row = load[worker];
  if (row.empty() && num_edges > 0) row.assign(num_edges, 0);
  return row;
}

/// Edge-wise sum across the non-empty worker rows (commutative, so the
/// result is identical at every thread count).
inline std::uint32_t summed_load(const std::vector<std::vector<std::uint32_t>>& load,
                                 std::size_t e) {
  std::uint32_t sum = 0;
  for (const auto& row : load) {
    if (!row.empty()) sum += row[e];
  }
  return sum;
}

/// Max over edges of the per-worker congestion counters, summed edge-wise.
inline std::uint32_t merged_congestion(const std::vector<std::vector<std::uint32_t>>& load,
                                       std::size_t num_edges) {
  if (num_edges == 0) return 0;
  return parallel_reduce<std::uint32_t>(
      0, num_edges, default_grain(num_edges, 4096), 0u,
      [&](std::size_t begin, std::size_t end) {
        std::uint32_t best = 0;
        for (std::size_t e = begin; e < end; ++e) best = std::max(best, summed_load(load, e));
        return best;
      },
      [](std::uint32_t a, std::uint32_t b) { return std::max(a, b); });
}

}  // namespace lcs::core::detail
