// Executable form of the dilation argument (Theorem 3.1 / Lemma 3.5).
//
// The paper proves diam(G[S_j] ∪ H_j) = O(k_D log n) by a recursion on the
// s-t shortest path P of G[S_j]: w.h.p. one of three events holds —
//   (O1) dist_H(v_1, v_d)        = O(k_D)   (first half shortcuts),
//   (O2) dist_H(v_{d+1}, v_{2d-1}) = O(k_D) (second half shortcuts),
//   (O3) dist_H(v_1, v_{2d-1})   = O(k_D)   (the whole pair shortcuts),
// and the argument recurses on the un-shortcut half.  Each level
// contributes O(k_D), the depth is O(log |P|), giving O(k_D log n).
//
// `certify_dilation` runs exactly this recursion against a concrete
// shortcut subgraph H (checking the events by BFS inside G[S_j] ∪ H_j) and
// returns the certified bound together with the recursion trace.  The
// certificate is sound by construction: certified >= dist_H(s, t).  The
// interesting empirical claims are (a) every level finds one of the three
// events (the w.h.p. part), and (b) certified = O(k_D log n).
#pragma once

#include <cstdint>
#include <vector>

#include "core/shortcut.hpp"

namespace lcs::core {

enum class HalfEvent : std::uint8_t {
  kWholePair,   ///< O3: s..t shortcut directly
  kFirstHalf,   ///< O1: recursion continued on the second half
  kSecondHalf,  ///< O2: recursion continued on the first half
  kBaseCase,    ///< path already within the per-level budget
  kFailed,      ///< none of the events within budget (w.h.p. excluded)
};

struct RecursionLevel {
  std::uint32_t path_length = 0;  ///< vertices on the current sub-path
  HalfEvent event = HalfEvent::kFailed;
  std::uint32_t shortcut_length = 0;  ///< dist_H contributed by this level
};

struct DilationCertificate {
  bool success = false;            ///< every level found an event
  std::uint32_t certified = 0;     ///< certified upper bound on dist_H(s,t)
  std::uint32_t actual = 0;        ///< exact dist_H(s,t) (BFS referee)
  std::uint32_t depth = 0;         ///< recursion depth
  double budget = 0.0;             ///< the per-level budget used (c * k_D)
  std::vector<RecursionLevel> levels;
};

struct CertifyOptions {
  /// Per-level budget multiplier: an event "holds" when its distance is at
  /// most budget_factor * k_D.  The paper's constant is unspecified; 4 is
  /// comfortable at reproduction scale.
  double budget_factor = 4.0;
  /// Recursion stops when the sub-path has at most this many vertices
  /// (its own length is then within one budget).
  std::uint32_t base_case = 0;  ///< 0 = use the budget itself
};

/// Run the Theorem 3.1 recursion for s, t inside `part`, against the
/// concrete augmented subgraph G[S] ∪ h_edges.  `k_d` parameterizes the
/// per-level budget.  s and t must lie in the part; the part must be
/// connected in G.
DilationCertificate certify_dilation(const Graph& g, const std::vector<VertexId>& part,
                                     const std::vector<EdgeId>& h_edges, VertexId s,
                                     VertexId t, double k_d,
                                     const CertifyOptions& opt = {});

}  // namespace lcs::core
