// Distributed implementation of the shortcut construction (Section 2),
// executed on the CONGEST simulator:
//
//   1. BFS from an arbitrary node: n, a 2-approximation of D, and a global
//      tree for aggregation (O(D) rounds).
//   2. Truncated BFS inside every part from its leader, depth k_D: detects
//      the "large" parts (those whose leader-BFS cannot span them within
//      k_D hops) — O(k_D) rounds, parts are disjoint so they run in
//      parallel with congestion 1.
//   3. Numbering of the large parts in [0, N) by a convergecast/downcast on
//      the global tree (O(D) rounds), plus broadcast of N and of the shared
//      randomness SR (charged O(D + log n) rounds, as in the paper).
//   4. Local sampling: every node flips the CoinFlipper coins (no rounds).
//   5. All N (truncated) BFS trees of G[S_i] ∪ H_i are grown in parallel
//      under random start delays with per-edge FIFO queues — the [Gha15]
//      random-delay scheduler — and each leader verifies its tree spans S_i.
//
// The variant that does not know D (Section 2, "omitting the assumption")
// sweeps guesses D'' = D'/2 .. D' and stops at the first success.
#pragma once

#include <cstdint>
#include <optional>

#include "core/kp.hpp"
#include "core/shortcut.hpp"

namespace lcs::core {

struct DistributedOptions {
  double beta = 1.0;
  std::uint64_t seed = 1;
  /// Exact diameter, when known.  Otherwise stage 1's 2-approximation
  /// drives the parameters (or the guessing variant sweeps it).
  std::optional<unsigned> diameter;
  /// BFS depth cap for stage 5, as a multiple of k_D * ln n.
  double depth_cap_factor = 4.0;
  /// Hard cap on stage-5 rounds, as a multiple of k_D * ln^2 n.
  double round_cap_factor = 24.0;
};

struct StageRounds {
  std::uint32_t global_bfs = 0;     ///< stage 1
  std::uint32_t part_detection = 0; ///< stage 2 (incl. spanning verification)
  std::uint32_t numbering = 0;      ///< stage 3a
  std::uint32_t sr_broadcast = 0;   ///< stage 3b (charged, not simulated)
  std::uint32_t multi_bfs = 0;      ///< stage 5
  std::uint32_t verification = 0;   ///< stage 5 spanning convergecast (charged)

  std::uint32_t total() const {
    return global_bfs + part_detection + numbering + sr_broadcast + multi_bfs +
           verification;
  }
};

struct DistributedOutcome {
  bool success = false;            ///< every large part spanned within the caps
  ShortcutParams params;
  ShortcutSet shortcuts;           ///< the H_i actually constructed
  std::vector<bool> is_large;
  std::uint32_t num_large = 0;
  std::uint32_t diameter_estimate = 0;  ///< 2-approx from stage 1 (eccentricity * 2)
  StageRounds rounds;
  std::uint64_t messages = 0;
  std::uint32_t depth_cap = 0;     ///< stage-5 BFS truncation depth
  std::uint32_t delay_range = 0;   ///< random start delays drawn from [0, this)
  unsigned attempts = 1;           ///< > 1 only for the guessing variant
};

/// Run the full pipeline with D known (from opt.diameter) or estimated.
DistributedOutcome build_distributed(const Graph& g, const Partition& parts,
                                     const DistributedOptions& opt = {});

/// The guessing variant: sweep D'' from max(3, ecc) upwards to 2*ecc until
/// a sweep succeeds; round counts accumulate over failed attempts.
DistributedOutcome build_distributed_guessing(const Graph& g, const Partition& parts,
                                              DistributedOptions opt = {});

}  // namespace lcs::core
