#include "core/shortcut_tree.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace lcs::core {

namespace {
inline std::uint64_t pair_key(VertexId a, VertexId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}
}  // namespace

ShortcutTree::ShortcutTree(const Graph& g, std::vector<VertexId> path,
                           std::vector<VertexId> q, std::uint32_t ell,
                           std::uint64_t seed, double sample_prob,
                           std::uint32_t part_for_coins)
    : g_(&g), path_(std::move(path)), q_(std::move(q)), ell_(ell), n_g_(g.num_vertices()) {
  LCS_REQUIRE(!path_.empty(), "path must be non-empty");
  LCS_REQUIRE(!q_.empty(), "Q must be non-empty");
  LCS_REQUIRE(ell_ >= 1, "l must be at least 1");
  for (std::size_t i = 0; i + 1 < path_.size(); ++i) {
    bool adjacent = false;
    for (const graph::HalfEdge he : g.neighbors(path_[i]))
      if (he.to == path_[i + 1]) adjacent = true;
    LCS_REQUIRE(adjacent, "path positions must be adjacent in G");
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::Edge ed = g.edge(e);
    g_edge_lookup_[pair_key(ed.u, ed.v)] = e;
    g_edge_lookup_[pair_key(ed.v, ed.u)] = e;
  }
  build_aux_graph(g);
  run_tree_bfs();
  sample_tree_edges(g, seed, sample_prob, part_for_coins);
  build_tstar();
}

// Aux node layout:
//   [0, |P|)                              layer 1 (path positions)
//   |P| + (k-2)*n + v  for k in [2, l]    layer k copy of G-vertex v
//   base_q + j                            layer l+1 (Q entries)
//   root                                  layer l+2
VertexId ShortcutTree::path_node(std::uint32_t pos) const {
  LCS_REQUIRE(pos < path_.size(), "path position out of range");
  return pos;
}

VertexId ShortcutTree::aux_of_copy(std::uint32_t layer, VertexId g_vertex) const {
  LCS_CHECK(layer >= 2 && layer <= ell_, "copy layers are 2..l");
  return static_cast<VertexId>(path_.size() + (layer - 2) * static_cast<std::size_t>(n_g_) +
                               g_vertex);
}

std::uint32_t ShortcutTree::layer_of(VertexId aux) const {
  LCS_REQUIRE(aux < layer_.size(), "aux node out of range");
  return layer_[aux];
}

VertexId ShortcutTree::g_vertex_of(VertexId aux) const {
  LCS_REQUIRE(aux < g_vertex_.size(), "aux node out of range");
  return g_vertex_[aux];
}

void ShortcutTree::build_aux_graph(const Graph& g) {
  const std::uint32_t p_count = static_cast<std::uint32_t>(path_.size());
  const std::uint32_t copies = ell_ >= 2 ? (ell_ - 1) * n_g_ : 0;
  const std::uint32_t q_base = p_count + copies;
  const std::uint32_t total = q_base + static_cast<std::uint32_t>(q_.size()) + 1;
  root_ = total - 1;

  layer_.assign(total, 0);
  g_vertex_.assign(total, graph::kNoVertex);
  for (std::uint32_t pos = 0; pos < p_count; ++pos) {
    layer_[pos] = 1;
    g_vertex_[pos] = path_[pos];
  }
  for (std::uint32_t k = 2; k <= ell_; ++k)
    for (VertexId v = 0; v < n_g_; ++v) {
      const VertexId id = aux_of_copy(k, v);
      layer_[id] = k;
      g_vertex_[id] = v;
    }
  for (std::uint32_t j = 0; j < q_.size(); ++j) {
    layer_[q_base + j] = ell_ + 1;
    g_vertex_[q_base + j] = q_[j];
  }
  layer_[root_] = ell_ + 2;

  graph::GraphBuilder b(total);
  // Root to every Q node.
  for (std::uint32_t j = 0; j < q_.size(); ++j) b.add_edge(root_, q_base + j);

  // "Next layer" resolver: aux id of G-vertex v in layer k+1 (or Q match).
  // Q may contain duplicates of a vertex only once (Q is a set).  Dense
  // vector indexed by G-vertex id: O(1) without hashing, and no hash-order
  // surface anywhere near the construction.
  std::vector<VertexId> q_index(n_g_, graph::kNoVertex);
  for (std::uint32_t j = 0; j < q_.size(); ++j) {
    LCS_REQUIRE(q_[j] < n_g_, "Q vertex out of range");
    q_index[q_[j]] = q_base + j;
  }

  auto upper_of = [&](std::uint32_t upper_layer, VertexId v) -> VertexId {
    if (upper_layer == ell_ + 1) return q_index[v];
    return aux_of_copy(upper_layer, v);
  };

  // E(L_k, L_{k+1}) for k = 1..l: self edge + copies of G-edges.
  for (std::uint32_t k = 1; k <= ell_; ++k) {
    const std::uint32_t up = k + 1;
    if (k == 1) {
      for (std::uint32_t pos = 0; pos < p_count; ++pos) {
        const VertexId v = path_[pos];
        const VertexId self_up = upper_of(up, v);
        if (self_up != graph::kNoVertex) b.add_edge(pos, self_up);
        for (const graph::HalfEdge he : g.neighbors(v)) {
          const VertexId nb_up = upper_of(up, he.to);
          if (nb_up != graph::kNoVertex) b.add_edge(pos, nb_up);
        }
      }
    } else {
      for (VertexId v = 0; v < n_g_; ++v) {
        const VertexId me = aux_of_copy(k, v);
        const VertexId self_up = upper_of(up, v);
        if (self_up != graph::kNoVertex) b.add_edge(me, self_up);
        for (const graph::HalfEdge he : g.neighbors(v)) {
          const VertexId nb_up = upper_of(up, he.to);
          if (nb_up != graph::kNoVertex) b.add_edge(me, nb_up);
        }
      }
    }
  }
  aux_ = std::move(b).build();
}

void ShortcutTree::run_tree_bfs() {
  // Layered BFS from the root: a node in layer k may only be discovered
  // from a node in layer k+1, so every tree path ascends monotonically
  // through the layers (the tree of Fig. 1: each leaf p_i hangs at depth
  // exactly l+1).  A plain BFS would also reach copies through zig-zag
  // routes, which the paper's construction does not use.
  parent_.assign(aux_.num_vertices(), graph::kNoVertex);
  std::vector<bool> reached(aux_.num_vertices(), false);
  reached[root_] = true;
  std::vector<VertexId> frontier{root_};
  while (!frontier.empty()) {
    std::vector<VertexId> next;
    for (const VertexId u : frontier) {
      for (const graph::HalfEdge he : aux_.neighbors(u)) {
        if (reached[he.to] || layer_[he.to] + 1 != layer_[u]) continue;
        reached[he.to] = true;
        parent_[he.to] = u;
        next.push_back(he.to);
      }
    }
    frontier.swap(next);
  }
  tree_complete_ = true;
  for (std::uint32_t pos = 0; pos < path_.size(); ++pos)
    if (!reached[path_node(pos)]) tree_complete_ = false;
}

void ShortcutTree::sample_tree_edges(const Graph& g, std::uint64_t seed,
                                     double sample_prob, std::uint32_t part) {
  const CoinFlipper coins(seed, sample_prob);
  survives_.assign(aux_.num_vertices(), false);
  children_.assign(aux_.num_vertices(), {});
  for (VertexId x = 0; x < aux_.num_vertices(); ++x) {
    const VertexId par = parent_[x];
    if (par == graph::kNoVertex) continue;
    const std::uint32_t k = layer_[x];  // child layer; parent is k+1
    bool keep = false;
    if (k == 1 || layer_[par] == ell_ + 2) {
      keep = true;  // E(L1, L2) and root edges survive with probability 1
    } else if (g_vertex_[x] == g_vertex_[par]) {
      keep = true;  // self-copy edge
    } else {
      // Non-self edge between L_k and L_{k+1}: kept iff the directed G-edge
      // (child vertex -> parent vertex) was sampled in repetition k-1.
      const auto it = g_edge_lookup_.find(pair_key(g_vertex_[x], g_vertex_[par]));
      LCS_CHECK(it != g_edge_lookup_.end(), "aux edge without G counterpart");
      const graph::Edge ed = g.edge(it->second);
      const int dir = ed.u == g_vertex_[x] ? 0 : 1;
      keep = coins.flip(it->second, dir, part, k - 1);
    }
    survives_[x] = keep;
    if (keep) children_[par].push_back(x);
  }
  for (auto& c : children_) std::sort(c.begin(), c.end());
}

void ShortcutTree::build_tstar() {
  graph::GraphBuilder b(aux_.num_vertices());
  for (VertexId x = 0; x < aux_.num_vertices(); ++x)
    if (parent_[x] != graph::kNoVertex && survives_[x]) b.add_edge(x, parent_[x]);
  for (std::uint32_t pos = 0; pos + 1 < path_.size(); ++pos)
    b.add_edge(path_node(pos), path_node(pos + 1));
  tstar_ = std::move(b).build();
}

VertexId ShortcutTree::tree_parent(VertexId aux) const {
  LCS_REQUIRE(aux < parent_.size(), "aux node out of range");
  return parent_[aux];
}

bool ShortcutTree::tree_edge_survives(VertexId aux) const {
  LCS_REQUIRE(aux < survives_.size(), "aux node out of range");
  return survives_[aux];
}

std::vector<std::uint32_t> ShortcutTree::tstar_dist_from(std::uint32_t pos) const {
  return graph::bfs(tstar_, path_node(pos)).dist;
}

std::uint32_t ShortcutTree::dist_to_level(std::uint32_t pos, std::uint32_t k) const {
  LCS_REQUIRE(k >= 2 && k <= ell_ + 1, "level out of range");
  const auto dist = tstar_dist_from(pos);
  std::uint32_t best = graph::kUnreached;
  for (VertexId x = 0; x < aux_.num_vertices(); ++x) {
    if (layer_[x] == k && dist[x] != graph::kUnreached) best = std::min(best, dist[x]);
  }
  const VertexId t = path_node(static_cast<std::uint32_t>(path_.size()) - 1);
  if (dist[t] != graph::kUnreached) best = std::min(best, dist[t]);
  return best;
}

ShortcutTree::Unit ShortcutTree::unit(std::uint32_t pos, std::uint32_t k) const {
  LCS_REQUIRE(pos < path_.size(), "path position out of range");
  LCS_REQUIRE(k >= 2 && k <= ell_ + 1, "level out of range");
  Unit u;
  VertexId cur = path_node(pos);
  if (parent_[cur] == graph::kNoVertex) return u;  // tree incomplete at p_i
  // Climb the surviving ancestor chain from p_i while layers stay <= k.
  // The first step (layer 1 -> 2) always survives, so the apex reaches at
  // least layer 2.
  std::vector<VertexId> up{cur};
  while (true) {
    const VertexId par = parent_[cur];
    if (par == graph::kNoVertex || layer_[par] > k) break;
    if (!survives_[cur]) break;
    cur = par;
    up.push_back(cur);
  }
  u.valid = true;
  u.apex = cur;
  u.apex_layer = layer_[cur];

  // Right-most path position in the surviving subtree of the apex.
  std::uint32_t best_pos = pos;
  VertexId best_node = path_node(pos);
  std::vector<VertexId> stack{u.apex};
  while (!stack.empty()) {
    const VertexId x = stack.back();
    stack.pop_back();
    if (layer_[x] == 1 && x >= best_node) {
      best_node = x;
      best_pos = x;  // layer-1 aux id == position
    }
    for (const VertexId c : children_[x]) stack.push_back(c);
  }
  u.end_pos = best_pos;

  // Assemble the walk: p_i up to apex, then apex down to p_j (tree path).
  u.walk = up;
  std::vector<VertexId> down;
  VertexId walker = best_node;
  while (walker != u.apex) {
    down.push_back(walker);
    walker = parent_[walker];
    LCS_CHECK(walker != graph::kNoVertex, "descent escaped the apex subtree");
  }
  std::reverse(down.begin(), down.end());
  u.walk.insert(u.walk.end(), down.begin(), down.end());
  return u;
}

ShortcutTree::Walk ShortcutTree::maximal_walk(std::uint32_t pos, std::uint32_t k) const {
  Walk w;
  const std::uint32_t last = static_cast<std::uint32_t>(path_.size()) - 1;
  std::uint32_t at = pos;
  bool first = true;
  while (true) {
    const Unit u = unit(at, k);
    if (!u.valid) break;
    if (first) {
      w.nodes = u.walk;
    } else {
      // Path edge from p_{prev_end} into p_at, then the unit (skipping its
      // leading p_at which the path edge already contributed).
      w.nodes.push_back(path_node(at));
      w.nodes.insert(w.nodes.end(), u.walk.begin() + 1, u.walk.end());
    }
    if (u.apex_layer == k) w.level_k_nodes.push_back(u.apex);
    w.end_pos = u.end_pos;
    if (u.end_pos == last) {
      w.reached_t = true;
      break;
    }
    at = u.end_pos + 1;
    first = false;
  }
  return w;
}

std::vector<VertexId> ShortcutTree::project_to_g(const std::vector<VertexId>& aux_walk) const {
  std::vector<VertexId> out;
  for (const VertexId x : aux_walk) {
    const VertexId gv = g_vertex_[x];
    if (gv == graph::kNoVertex) continue;  // root has no projection
    if (out.empty() || out.back() != gv) out.push_back(gv);
  }
  return out;
}

}  // namespace lcs::core
