#include "core/dilation_argument.hpp"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.hpp"
#include "util/check.hpp"

namespace lcs::core {

namespace {

/// BFS distance between two parent-graph vertices inside the subgraph.
std::uint32_t sub_dist(const graph::EdgeInducedSubgraph& sub, VertexId a, VertexId b) {
  const auto la = sub.to_local(a);
  const auto lb = sub.to_local(b);
  if (!la.has_value() || !lb.has_value()) return graph::kUnreached;
  const graph::BfsResult r = graph::bfs(sub.local_graph(), *la);
  return r.dist[*lb];
}

/// Shortest path between two part vertices inside G[S] (vertex sequence).
std::vector<VertexId> part_path(const Graph& g, const std::vector<VertexId>& part,
                                VertexId s, VertexId t) {
  const std::vector<EdgeId> induced = induced_part_edges(g, part);
  const graph::EdgeInducedSubgraph sub(g, induced);
  const auto ls = sub.to_local(s);
  const auto lt = sub.to_local(t);
  LCS_REQUIRE(ls.has_value() && lt.has_value(),
              "s and t must have induced edges inside the part");
  const graph::BfsResult r = graph::bfs(sub.local_graph(), *ls);
  LCS_REQUIRE(r.reached_vertex(*lt), "part must connect s and t");
  std::vector<VertexId> local = graph::extract_path(r, *lt);
  std::vector<VertexId> out;
  out.reserve(local.size());
  for (const VertexId lv : local) out.push_back(sub.to_parent(lv));
  return out;
}

}  // namespace

DilationCertificate certify_dilation(const Graph& g, const std::vector<VertexId>& part,
                                     const std::vector<EdgeId>& h_edges, VertexId s,
                                     VertexId t, double k_d, const CertifyOptions& opt) {
  LCS_REQUIRE(k_d >= 1.0, "k_d must be at least 1");
  LCS_REQUIRE(opt.budget_factor > 0.0, "budget factor must be positive");

  DilationCertificate cert;
  cert.budget = opt.budget_factor * k_d;
  const std::uint32_t budget = static_cast<std::uint32_t>(std::ceil(cert.budget));
  const std::uint32_t base_case = opt.base_case > 0 ? opt.base_case : budget;

  // The augmented subgraph H = G[S] ∪ h_edges; referee distance first.
  const std::vector<EdgeId> aug = augmented_edges(g, part, h_edges);
  const graph::EdgeInducedSubgraph sub(g, aug);
  cert.actual = sub_dist(sub, s, t);
  LCS_REQUIRE(cert.actual != graph::kUnreached, "H does not connect s and t");

  // The recursion of Theorem 3.1 over the G[S]-shortest path.
  std::vector<VertexId> path = part_path(g, part, s, t);
  cert.success = true;
  while (true) {
    RecursionLevel level;
    level.path_length = static_cast<std::uint32_t>(path.size());

    // O3 first — the direct shortcut gives the tightest certificate.
    const VertexId v1 = path.front();
    const VertexId vlast = path.back();
    const std::uint32_t whole = sub_dist(sub, v1, vlast);
    if (whole <= budget) {
      level.event = HalfEvent::kWholePair;
      level.shortcut_length = whole;
      cert.certified += whole;
      cert.levels.push_back(level);
      break;
    }
    if (path.size() <= base_case) {
      // Base case: the remaining sub-path is itself within one budget
      // (its edges are in G[S] ⊆ H).
      level.event = HalfEvent::kBaseCase;
      level.shortcut_length = static_cast<std::uint32_t>(path.size() - 1);
      cert.certified += level.shortcut_length;
      cert.levels.push_back(level);
      break;
    }
    const std::size_t d = path.size() / 2;  // path = [v_1 .. v_{2d-1}] roughly
    const VertexId vd = path[d];
    const std::uint32_t first = sub_dist(sub, v1, vd);
    const std::uint32_t second = sub_dist(sub, vd, vlast);

    if (first <= budget || second <= budget) {
      // One half shortcuts within budget; recurse on the other half.
      const bool first_half_done = first <= second;
      level.event = first_half_done ? HalfEvent::kFirstHalf : HalfEvent::kSecondHalf;
      level.shortcut_length = std::min(first, second);
      cert.certified += level.shortcut_length;
      cert.levels.push_back(level);
      if (first_half_done) {
        path.erase(path.begin(), path.begin() + static_cast<std::ptrdiff_t>(d));
      } else {
        path.resize(d + 1);
      }
      ++cert.depth;
      continue;
    }
    // None of the three events within budget: the w.h.p. failure branch.
    level.event = HalfEvent::kFailed;
    cert.levels.push_back(level);
    cert.success = false;
    // Fall back to the referee so the certificate stays sound.
    cert.certified += sub_dist(sub, v1, vlast);
    break;
  }

  LCS_CHECK(cert.certified >= cert.actual || !cert.success,
            "certificate must upper-bound the true distance");
  return cert;
}

}  // namespace lcs::core
