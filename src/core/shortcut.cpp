#include "core/shortcut.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace lcs::core {

std::vector<EdgeId> induced_part_edges(const Graph& g, const std::vector<VertexId>& part) {
  std::vector<bool> in_part(g.num_vertices(), false);
  for (const VertexId v : part) {
    LCS_REQUIRE(v < g.num_vertices(), "part vertex out of range");
    in_part[v] = true;
  }
  std::vector<EdgeId> out;
  for (const VertexId v : part) {
    for (const graph::HalfEdge he : g.neighbors(v)) {
      // Count each induced edge once (from its smaller endpoint).
      if (in_part[he.to] && v < he.to) out.push_back(he.edge);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<EdgeId> augmented_edges(const Graph& g, const std::vector<VertexId>& part,
                                    const std::vector<EdgeId>& h_i) {
  std::vector<EdgeId> edges = induced_part_edges(g, part);
  edges.insert(edges.end(), h_i.begin(), h_i.end());
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

PartDilation measure_part_dilation(const Graph& g, const std::vector<VertexId>& part,
                                   VertexId leader, const std::vector<EdgeId>& h_i,
                                   const QualityOptions& opt) {
  PartDilation out;
  const std::vector<EdgeId> edges = augmented_edges(g, part, h_i);
  if (edges.empty()) {
    // Singleton part with no shortcut edges: trivially covered, diameter 0.
    out.covered = part.size() == 1;
    out.exact = true;
    return out;
  }
  const graph::EdgeInducedSubgraph sub(g, edges);
  const auto radius = graph::cover_radius(sub, leader, part);
  if (!radius.has_value()) return out;  // not covered
  out.covered = true;
  out.cover_radius = *radius;
  const Graph& local = sub.local_graph();
  if (local.num_vertices() <= opt.exact_diameter_max_vertices && graph::is_connected(local)) {
    out.diameter_lb = out.diameter_ub = graph::diameter_exact(local);
    out.exact = true;
  } else {
    // The augmented subgraph may be disconnected away from S_i (stray
    // sampled edges); measure from the leader's component via sweeps.
    out.diameter_lb = graph::diameter_double_sweep(local);
    out.diameter_ub = std::max(out.diameter_lb, 2 * out.cover_radius);
  }
  return out;
}

std::vector<std::uint32_t> edge_congestion(const Graph& g, const Partition& parts,
                                           const ShortcutSet& sc) {
  LCS_REQUIRE(sc.h.size() == parts.parts.size(), "shortcut/partition size mismatch");
  std::vector<std::uint32_t> load(g.num_edges(), 0);
  for (std::size_t i = 0; i < parts.parts.size(); ++i) {
    for (const EdgeId e : augmented_edges(g, parts.parts[i], sc.h[i])) ++load[e];
  }
  return load;
}

QualityReport measure_quality(const Graph& g, const Partition& parts, const ShortcutSet& sc,
                              const QualityOptions& opt) {
  LCS_REQUIRE(sc.h.size() == parts.parts.size(), "shortcut/partition size mismatch");
  QualityReport rep;
  std::vector<std::uint32_t> load(g.num_edges(), 0);
  for (std::size_t i = 0; i < parts.parts.size(); ++i) {
    for (const EdgeId e : augmented_edges(g, parts.parts[i], sc.h[i])) ++load[e];
    PartDilation pd = measure_part_dilation(g, parts.parts[i], parts.leader(i), sc.h[i], opt);
    rep.all_covered = rep.all_covered && pd.covered;
    rep.dilation_lb = std::max(rep.dilation_lb, pd.diameter_lb);
    rep.dilation_ub = std::max(rep.dilation_ub, pd.diameter_ub);
    rep.max_cover_radius = std::max(rep.max_cover_radius, pd.cover_radius);
    rep.parts.push_back(std::move(pd));
  }
  if (!load.empty()) rep.congestion = *std::max_element(load.begin(), load.end());
  return rep;
}

}  // namespace lcs::core
