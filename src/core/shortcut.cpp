#include "core/shortcut.hpp"

#include <algorithm>

#include "core/congestion_merge.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace lcs::core {

namespace {

// Exact diameter of the connected component of `leader` (a parent vertex)
// inside the subgraph.  Used when stray shortcut edges disconnect the
// augmented subgraph but the part itself is covered.
std::uint32_t leader_component_diameter(const graph::EdgeInducedSubgraph& sub,
                                        VertexId leader) {
  const Graph& local = sub.local_graph();
  const auto local_leader = sub.to_local(leader);
  LCS_CHECK(local_leader.has_value(), "leader must be in the covered subgraph");
  const graph::Components comp = graph::connected_components(local);
  const std::uint32_t cid = comp.id[*local_leader];
  std::vector<VertexId> remap(local.num_vertices(), graph::kNoVertex);
  std::uint32_t count = 0;
  for (VertexId v = 0; v < local.num_vertices(); ++v) {
    if (comp.id[v] == cid) remap[v] = count++;
  }
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (EdgeId e = 0; e < local.num_edges(); ++e) {
    const graph::Edge ed = local.edge(e);
    if (comp.id[ed.u] == cid) edges.emplace_back(remap[ed.u], remap[ed.v]);
  }
  return graph::diameter_exact(Graph::from_edges(count, std::move(edges)));
}

}  // namespace

std::vector<EdgeId> induced_part_edges(const Graph& g, const std::vector<VertexId>& part) {
  std::vector<bool> in_part(g.num_vertices(), false);
  for (const VertexId v : part) {
    LCS_REQUIRE(v < g.num_vertices(), "part vertex out of range");
    in_part[v] = true;
  }
  std::vector<EdgeId> out;
  for (const VertexId v : part) {
    for (const graph::HalfEdge he : g.neighbors(v)) {
      // Count each induced edge once (from its smaller endpoint).
      if (in_part[he.to] && v < he.to) out.push_back(he.edge);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<EdgeId> augmented_edges(const Graph& g, const std::vector<VertexId>& part,
                                    const std::vector<EdgeId>& h_i) {
  std::vector<EdgeId> edges = induced_part_edges(g, part);
  edges.insert(edges.end(), h_i.begin(), h_i.end());
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

PartDilation measure_part_dilation(const Graph& g, const std::vector<VertexId>& part,
                                   VertexId leader, const std::vector<EdgeId>& h_i,
                                   const QualityOptions& opt) {
  PartDilation out;
  const std::vector<EdgeId> edges = augmented_edges(g, part, h_i);
  if (edges.empty()) {
    // Singleton part with no shortcut edges: trivially covered, diameter 0.
    // A larger edgeless part is uncovered and therefore never exact.
    out.covered = part.size() == 1;
    out.exact = out.covered;
    return out;
  }
  const graph::EdgeInducedSubgraph sub(g, edges);
  const auto radius = graph::cover_radius(sub, leader, part);
  if (!radius.has_value()) return out;  // not covered, never exact
  out.covered = true;
  out.cover_radius = *radius;
  const Graph& local = sub.local_graph();
  if (local.num_vertices() <= opt.exact_diameter_max_vertices) {
    if (graph::is_connected(local)) {
      out.diameter_lb = out.diameter_ub = graph::diameter_exact(local);
      out.exact = true;
    } else {
      // Stray sampled components disconnect the augmented subgraph, so no
      // finite exact diameter exists (exact stays false, matching every
      // other non-exact path).  The exact_diameter_max_vertices budget is
      // still honoured rather than silently ignored: dilation is measured
      // as the exact diameter of the leader's component, which contains
      // all of S_i — the quantity every dilation argument is about.
      const std::uint32_t d = leader_component_diameter(sub, leader);
      out.diameter_lb = out.diameter_ub = d;
    }
  } else {
    // Too large for the exact check: the subgraph may be disconnected away
    // from S_i; measure the leader's component optimistically via sweeps.
    out.diameter_lb = graph::diameter_double_sweep(local);
    out.diameter_ub = std::max(out.diameter_lb, 2 * out.cover_radius);
  }
  return out;
}

std::vector<std::uint32_t> edge_congestion(const Graph& g, const Partition& parts,
                                           const ShortcutSet& sc) {
  LCS_REQUIRE(sc.h.size() == parts.parts.size(), "shortcut/partition size mismatch");
  const std::size_t np = parts.parts.size();
  std::vector<std::vector<std::uint32_t>> load(num_threads());
  parallel_for_chunked(0, np, default_grain(np),
                       [&](std::size_t begin, std::size_t end, unsigned worker) {
                         auto& l = detail::worker_load(load, worker, g.num_edges());
                         for (std::size_t i = begin; i < end; ++i) {
                           for (const EdgeId e : augmented_edges(g, parts.parts[i], sc.h[i])) {
                             ++l[e];
                           }
                         }
                       });
  std::vector<std::uint32_t> total(g.num_edges(), 0);
  parallel_for(0, total.size(), default_grain(total.size(), 4096),
               [&](std::size_t e) { total[e] = detail::summed_load(load, e); });
  return total;
}

QualityReport measure_quality(const Graph& g, const Partition& parts, const ShortcutSet& sc,
                              const QualityOptions& opt) {
  LCS_REQUIRE(sc.h.size() == parts.parts.size(), "shortcut/partition size mismatch");
  QualityReport rep;
  const std::size_t np = parts.parts.size();
  rep.parts.resize(np);
  // Per-part dilation lands in its own slot; congestion counts go to
  // per-worker scratch.  Both merges below are order-insensitive, so the
  // report is byte-identical at any thread count.
  std::vector<std::vector<std::uint32_t>> load(num_threads());
  parallel_for_chunked(0, np, default_grain(np),
                       [&](std::size_t begin, std::size_t end, unsigned worker) {
                         auto& l = detail::worker_load(load, worker, g.num_edges());
                         for (std::size_t i = begin; i < end; ++i) {
                           for (const EdgeId e : augmented_edges(g, parts.parts[i], sc.h[i])) {
                             ++l[e];
                           }
                           rep.parts[i] = measure_part_dilation(g, parts.parts[i],
                                                                parts.leader(i), sc.h[i], opt);
                         }
                       });
  for (const PartDilation& pd : rep.parts) {
    rep.all_covered = rep.all_covered && pd.covered;
    rep.dilation_lb = std::max(rep.dilation_lb, pd.diameter_lb);
    rep.dilation_ub = std::max(rep.dilation_ub, pd.diameter_ub);
    rep.max_cover_radius = std::max(rep.max_cover_radius, pd.cover_radius);
  }
  rep.congestion = detail::merged_congestion(load, g.num_edges());
  return rep;
}

}  // namespace lcs::core
