// Low-congestion shortcuts: the central data type and its quality metrics.
//
// Definition 1.1 (Ghaffari–Haeupler): given G and vertex-disjoint connected
// parts S_1..S_l, a (c, d)-shortcut assigns each part a subgraph H_i ⊆ G
// such that diam(G[S_i] ∪ H_i) <= d and no edge lies in more than c of the
// augmented subgraphs.  Here H_i is simply a set of edge ids of G.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"

namespace lcs::core {

using graph::EdgeId;
using graph::Graph;
using graph::Partition;
using graph::VertexId;

/// A shortcut assignment: H_i per part (parallel to partition.parts).
struct ShortcutSet {
  std::vector<std::vector<EdgeId>> h;

  std::size_t num_parts() const { return h.size(); }
};

/// Edge ids of G[S]: edges with both endpoints inside the part.
std::vector<EdgeId> induced_part_edges(const Graph& g, const std::vector<VertexId>& part);

/// Edge ids of the augmented subgraph G[S_i] ∪ H_i (deduplicated).
std::vector<EdgeId> augmented_edges(const Graph& g, const std::vector<VertexId>& part,
                                    const std::vector<EdgeId>& h_i);

/// Per-part dilation measurements.
///
/// Contract: `exact` is true only when lb == ub is the exact diameter of the
/// whole (connected) augmented subgraph; an uncovered part is never exact.
/// When stray shortcut edges disconnect the augmented subgraph away from
/// S_i, the part still counts as covered (S_i itself is connected through
/// the leader), and — within QualityOptions::exact_diameter_max_vertices —
/// lb == ub is the exact diameter of the leader's component with
/// exact == false recording the disconnection caveat.
struct PartDilation {
  bool covered = false;            ///< augmented subgraph connects all of S_i
  std::uint32_t cover_radius = 0;  ///< BFS depth from the leader covering S_i
  std::uint32_t diameter_lb = 0;   ///< double-sweep lower bound on diam(G[S_i] ∪ H_i)
  std::uint32_t diameter_ub = 0;   ///< upper bound (exact when small, else 2*radius)
  bool exact = false;              ///< lb == ub == exact diameter of the connected subgraph
};

struct QualityReport {
  std::uint32_t congestion = 0;        ///< max over edges of #augmented subgraphs containing it
  std::uint32_t dilation_lb = 0;       ///< max over parts of diameter_lb
  std::uint32_t dilation_ub = 0;       ///< max over parts of diameter_ub
  std::uint32_t max_cover_radius = 0;  ///< max over parts of cover_radius
  bool all_covered = true;
  std::vector<PartDilation> parts;

  /// Headline quality c + d, using the upper-bound dilation.
  std::uint64_t quality() const {
    return static_cast<std::uint64_t>(congestion) + dilation_ub;
  }
};

struct QualityOptions {
  /// Exact diameter is computed for augmented subgraphs with at most this
  /// many vertices; larger ones get the double-sweep / 2*radius bracket.
  std::uint32_t exact_diameter_max_vertices = 700;
};

/// Measure congestion and dilation of a shortcut assignment, by definition.
QualityReport measure_quality(const Graph& g, const Partition& parts,
                              const ShortcutSet& sc, const QualityOptions& opt = {});

/// Dilation of one augmented subgraph.
PartDilation measure_part_dilation(const Graph& g, const std::vector<VertexId>& part,
                                   VertexId leader, const std::vector<EdgeId>& h_i,
                                   const QualityOptions& opt = {});

/// Exact congestion vector: for each edge, the number of augmented
/// subgraphs containing it.  (measure_quality reports its max.)
std::vector<std::uint32_t> edge_congestion(const Graph& g, const Partition& parts,
                                           const ShortcutSet& sc);

}  // namespace lcs::core
