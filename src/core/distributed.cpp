#include "core/distributed.hpp"

#include <algorithm>
#include <cmath>

#include "congest/multibfs.hpp"
#include "congest/programs.hpp"
#include "congest/simulator.hpp"
#include "graph/algorithms.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lcs::core {

namespace {

using congest::BfsInstanceSpec;
using congest::MultiBfsProgram;
using congest::Simulator;

struct Stage1 {
  std::uint32_t ecc = 0;
  std::uint32_t rounds = 0;
  std::uint64_t messages = 0;
  congest::RootedTree tree;
};

Stage1 run_global_bfs(const Graph& g) {
  Stage1 out;
  congest::BfsProgram bfs(g.num_vertices(), 0);
  Simulator sim(g, 1);
  const congest::RunStats st = sim.run(bfs, 4 * g.num_vertices() + 16);
  LCS_CHECK(st.completed, "global BFS did not quiesce");
  out.rounds = st.rounds;
  out.messages = st.messages;
  graph::BfsResult r;
  r.dist = bfs.dist();
  r.parent = bfs.parent();
  r.parent_edge = bfs.parent_edge();
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (r.dist[v] != graph::kUnreached) {
      out.ecc = std::max(out.ecc, r.dist[v]);
      ++r.reached;
    }
  out.tree = congest::RootedTree::from_bfs(g, r, 0);
  return out;
}

/// One attempt with fixed parameters; fills everything except `attempts`.
DistributedOutcome attempt(const Graph& g, const Partition& parts,
                           const DistributedOptions& opt, unsigned diameter,
                           const Stage1& s1) {
  DistributedOutcome out;
  out.params = ShortcutParams::make(std::max<std::uint64_t>(2, g.num_vertices()),
                                    std::max(1u, diameter), opt.beta);
  out.diameter_estimate = 2 * s1.ecc;
  out.rounds.global_bfs = s1.rounds;
  out.messages += s1.messages;

  const double ln_n = ln_clamped(g.num_vertices());

  // --- stage 2: per-part truncated leader BFS (parallel, disjoint) ---------
  const std::uint32_t detect_depth =
      static_cast<std::uint32_t>(out.params.large_threshold);
  std::vector<BfsInstanceSpec> detect;
  detect.reserve(parts.parts.size());
  for (std::size_t i = 0; i < parts.parts.size(); ++i) {
    BfsInstanceSpec spec;
    spec.root = parts.leader(i);
    spec.edges = induced_part_edges(g, parts.parts[i]);
    spec.depth_cap = detect_depth;
    detect.push_back(std::move(spec));
  }
  {
    MultiBfsProgram prog(g, std::move(detect));
    Simulator sim(g, 1);
    const congest::RunStats st = sim.run(prog, 4 * g.num_vertices() + 16);
    LCS_CHECK(st.completed, "part-detection BFS did not quiesce");
    out.messages += st.messages;
    out.is_large.resize(parts.parts.size());
    for (std::size_t i = 0; i < parts.parts.size(); ++i) {
      bool spans = true;
      for (const VertexId v : parts.parts[i])
        spans = spans && prog.dist_of(i, v) != graph::kUnreached;
      out.is_large[i] = !spans;
    }
    // Spanning verification = one convergecast over each truncated tree,
    // bounded by the truncation depth (charged, not simulated).
    out.rounds.part_detection = st.rounds + detect_depth;
  }

  // --- stage 3: numbering of large parts on the global tree ----------------
  std::vector<std::uint32_t> large_index(parts.parts.size(), graph::kUnreached);
  {
    std::vector<bool> flagged(g.num_vertices(), false);
    for (std::size_t i = 0; i < parts.parts.size(); ++i)
      if (out.is_large[i]) flagged[parts.leader(i)] = true;
    congest::PrefixAssignProgram prog(s1.tree, flagged);
    Simulator sim(g, 1);
    const congest::RunStats st = sim.run(prog, 8 * g.num_vertices() + 16);
    LCS_CHECK(st.completed, "numbering did not quiesce");
    out.messages += st.messages;
    out.rounds.numbering = st.rounds;
    for (std::size_t i = 0; i < parts.parts.size(); ++i)
      if (out.is_large[i]) {
        large_index[i] = prog.rank(parts.leader(i));
        ++out.num_large;
      }
    LCS_CHECK(prog.total() == out.num_large, "numbering disagrees with flag count");
  }
  // Shared randomness broadcast: O(D + log n) rounds, as in [Gha15].
  out.rounds.sr_broadcast =
      s1.ecc + static_cast<std::uint32_t>(std::ceil(std::log2(std::max(2u, g.num_vertices()))));

  // --- stage 4: local sampling (coins; zero rounds) -------------------------
  out.shortcuts.h.resize(parts.parts.size());
  for (std::size_t i = 0; i < parts.parts.size(); ++i) {
    if (!out.is_large[i]) continue;
    out.shortcuts.h[i] = kp_edges_for_part(g, parts, i, out.params, large_index[i],
                                           opt.seed, out.params.repetitions);
  }

  // --- stage 5: scheduled parallel BFS over the augmented subgraphs --------
  out.depth_cap = std::max<std::uint32_t>(
      detect_depth + 1,
      static_cast<std::uint32_t>(opt.depth_cap_factor * out.params.k_d * ln_n));
  std::vector<BfsInstanceSpec> grow;
  std::vector<std::size_t> grow_part;  // instance -> part
  // Delay range: the actual per-edge instance congestion (every node can
  // compute its local load; the scheduler needs delays ~ the max).
  std::vector<std::uint32_t> edge_instances(g.num_edges(), 0);
  for (std::size_t i = 0; i < parts.parts.size(); ++i) {
    if (!out.is_large[i]) continue;
    BfsInstanceSpec spec;
    spec.root = parts.leader(i);
    spec.edges = augmented_edges(g, parts.parts[i], out.shortcuts.h[i]);
    for (const graph::EdgeId e : spec.edges) ++edge_instances[e];
    spec.depth_cap = out.depth_cap;
    grow.push_back(std::move(spec));
    grow_part.push_back(i);
  }
  out.delay_range = 1;
  for (const std::uint32_t c : edge_instances) out.delay_range = std::max(out.delay_range, c);

  if (!grow.empty()) {
    Rng delays(hash64(opt.seed ^ 0xd15c0ULL));
    for (auto& spec : grow)
      spec.start_round = static_cast<std::uint32_t>(delays.uniform(out.delay_range));
    const std::uint32_t round_cap = std::max<std::uint32_t>(
        out.delay_range + 2 * out.depth_cap + 8,
        static_cast<std::uint32_t>(opt.round_cap_factor * out.params.k_d * ln_n * ln_n));
    MultiBfsProgram prog(g, std::move(grow));
    Simulator sim(g, 1);
    const congest::RunStats st = sim.run(prog, round_cap);
    out.messages += st.messages;
    out.rounds.multi_bfs = st.rounds;
    // Spanning verification: one convergecast per truncated BFS tree, all
    // scheduled together — the trees are the ones just built, so the charge
    // is the max observed tree depth (bounded by depth_cap) plus the same
    // congestion-driven delay the growth stage paid.
    std::uint32_t max_tree_depth = 0;
    for (std::size_t k = 0; k < grow_part.size(); ++k)
      max_tree_depth = std::max(max_tree_depth, prog.max_depth(k));
    out.rounds.verification = max_tree_depth + out.delay_range;

    out.success = st.completed;
    for (std::size_t k = 0; k < grow_part.size(); ++k) {
      const auto& part = parts.parts[grow_part[k]];
      for (const VertexId v : part)
        if (prog.dist_of(k, v) == graph::kUnreached) out.success = false;
    }
  } else {
    out.success = true;  // no large parts: nothing to do
  }
  return out;
}

}  // namespace

DistributedOutcome build_distributed(const Graph& g, const Partition& parts,
                                     const DistributedOptions& opt) {
  LCS_REQUIRE(g.num_vertices() >= 2, "need at least two vertices");
  const std::string err = validate_partition(g, parts);
  LCS_REQUIRE(err.empty(), "invalid partition: " + err);
  const Stage1 s1 = run_global_bfs(g);
  const unsigned diameter =
      opt.diameter.has_value() ? *opt.diameter : std::max(1u, 2 * s1.ecc);
  return attempt(g, parts, opt, diameter, s1);
}

DistributedOutcome build_distributed_guessing(const Graph& g, const Partition& parts,
                                              DistributedOptions opt) {
  LCS_REQUIRE(g.num_vertices() >= 2, "need at least two vertices");
  const std::string err = validate_partition(g, parts);
  LCS_REQUIRE(err.empty(), "invalid partition: " + err);
  const Stage1 s1 = run_global_bfs(g);
  const unsigned lo = std::max(3u, s1.ecc);
  const unsigned hi = std::max(lo, 2 * s1.ecc);

  DistributedOutcome best;
  std::uint32_t accumulated_rounds = 0;
  std::uint64_t accumulated_messages = 0;
  unsigned attempts = 0;
  for (unsigned guess = lo; guess <= hi; ++guess) {
    ++attempts;
    DistributedOutcome cur = attempt(g, parts, opt, guess, s1);
    // Stage 1 is shared across attempts; count it only once.
    if (attempts > 1) cur.rounds.global_bfs = 0;
    accumulated_rounds += cur.rounds.total();
    accumulated_messages += cur.messages;
    if (cur.success || guess == hi) {
      cur.rounds.multi_bfs +=
          accumulated_rounds - cur.rounds.total();  // fold earlier attempts in
      cur.messages = accumulated_messages;
      cur.attempts = attempts;
      return cur;
    }
    best = std::move(cur);
  }
  return best;  // unreachable
}

}  // namespace lcs::core
