#include "bench/machine.hpp"

#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#include <unistd.h>
#endif

namespace lcs::bench {
namespace {

std::string hostname() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') return buf;
#endif
  return "unknown";
}

std::string cpu_model() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const auto pos = line.find("model name");
    if (pos == std::string::npos) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) break;
    std::size_t start = colon + 1;
    while (start < line.size() && line[start] == ' ') ++start;
    return line.substr(start);
  }
  return "unknown";
}

std::string compiler() {
#if defined(__clang__)
  std::ostringstream os;
  os << "clang " << __clang_major__ << '.' << __clang_minor__ << '.' << __clang_patchlevel__;
  return os.str();
#elif defined(__GNUC__)
  std::ostringstream os;
  os << "gcc " << __GNUC__ << '.' << __GNUC_MINOR__ << '.' << __GNUC_PATCHLEVEL__;
  return os.str();
#else
  return "unknown";
#endif
}

std::string build_type() {
#if defined(LCS_BUILD_TYPE)
  return LCS_BUILD_TYPE;
#elif defined(NDEBUG)
  return "Release";
#else
  return "Debug";
#endif
}

std::string timestamp_utc() {
  const std::time_t now = std::time(nullptr);
  std::tm tm = {};
#if defined(__unix__) || defined(__APPLE__)
  gmtime_r(&now, &tm);
#else
  tm = *std::gmtime(&now);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

Json machine_info() {
  // One stamp per process: every record of a run carries identical
  // provenance (and /proc/cpuinfo is not re-read per scenario).
  static const Json cached = [] {
    Json j = Json::object();
    j["hostname"] = hostname();
#if defined(__unix__) || defined(__APPLE__)
    utsname u = {};
    if (uname(&u) == 0) {
      j["os"] = std::string(u.sysname);
      j["kernel"] = std::string(u.release);
      j["arch"] = std::string(u.machine);
    } else {
      j["os"] = "unknown";
      j["kernel"] = "unknown";
      j["arch"] = "unknown";
    }
#else
    j["os"] = "unknown";
    j["kernel"] = "unknown";
    j["arch"] = "unknown";
#endif
    j["cpu_model"] = cpu_model();
    j["hardware_threads"] = static_cast<std::int64_t>(std::thread::hardware_concurrency());
    j["compiler"] = compiler();
    j["build_type"] = build_type();
    j["timestamp_utc"] = timestamp_utc();
    return j;
  }();
  return cached;
}

}  // namespace lcs::bench
