#include "bench/runner.hpp"

#include <algorithm>
#include <exception>
#include <ostream>
#include <sstream>

#include "bench/machine.hpp"
#include "bench/timer.hpp"

namespace lcs::bench {

ScenarioResult run_scenario(const Scenario& scenario, const RunConfig& config,
                            std::ostream& out) {
  ScenarioResult result;
  result.name = scenario.name;
  result.ok = true;

  const unsigned total = config.warmup + std::max(1u, config.repetitions);
  for (unsigned rep = 0; rep < total && result.ok; ++rep) {
    const bool timed = rep >= config.warmup;
    const bool show = timed && rep == config.warmup && !config.quiet;
    // Every repetition formats into a buffer (identical work per rep, so
    // timings stay comparable); only the first timed one is flushed to the
    // real stream — after the clocks stop, so terminal I/O is not timed.
    std::ostringstream body_out;
    ScenarioContext ctx(config, body_out);
    MonotonicTimer wall;
    CpuTimer cpu;
    try {
      scenario.fn(ctx);
    } catch (const std::exception& e) {
      result.ok = false;
      result.error = e.what();
    } catch (...) {
      result.ok = false;
      result.error = "unknown exception";
    }
    const RepetitionTiming timing{wall.elapsed_ms(), cpu.elapsed_ms()};
    if (timed && result.ok) {
      result.timings.push_back(timing);
      result.params = ctx.params();
      result.metrics = ctx.metrics();
      result.resolved_n = ctx.resolved_n();
      result.resolved_beta = ctx.resolved_beta();
      result.resolved_seed = ctx.resolved_seed();
    }
    if (show || (!result.ok && !config.quiet)) out << body_out.str();
  }
  return result;
}

Json result_to_json(const Scenario& scenario, const ScenarioResult& result,
                    const RunConfig& config) {
  Json j = Json::object();
  j["schema_version"] = std::int64_t{1};
  j["scenario"] = result.name;
  j["description"] = scenario.description;
  j["grid"] = scenario.grid;
  j["ok"] = result.ok;
  if (!result.ok) j["error"] = result.error;

  Json cfg = Json::object();
  cfg["smoke"] = config.smoke;
  cfg["repetitions"] = std::uint64_t{std::max(1u, config.repetitions)};
  cfg["warmup"] = std::uint64_t{config.warmup};
  if (config.n_override) {
    Json ns = Json::array();
    for (const auto n : *config.n_override) ns.push_back(std::uint64_t{n});
    cfg["n_override"] = std::move(ns);
  }
  if (config.beta_override) cfg["beta_override"] = *config.beta_override;
  if (config.seed_override) cfg["seed_override"] = *config.seed_override;
  if (config.threads) cfg["threads"] = std::uint64_t{*config.threads};
  j["config"] = std::move(cfg);

  j["params"] = result.params;

  Json reps = Json::array();
  for (const RepetitionTiming& t : result.timings) {
    Json r = Json::object();
    r["wall_ms"] = t.wall_ms;
    r["cpu_ms"] = t.cpu_ms;
    reps.push_back(std::move(r));
  }
  j["repetitions"] = std::move(reps);

  j["metrics"] = result.metrics;
  j["machine"] = machine_info();
  return j;
}

}  // namespace lcs::bench
