// Scenario registry for the unified `lcsbench` harness.
//
// Each experiment (E1..E14, ablations, micro) registers itself once with
// LCS_BENCH_SCENARIO(name, description, grid) { ...body(ctx)... } and the
// single lcsbench binary lists, selects, sweeps and times them uniformly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace lcs::bench {

/// CLI-driven overrides + run control shared by every scenario.
struct RunConfig {
  bool smoke = false;         ///< shrink instance sizes / trial counts
  unsigned repetitions = 1;   ///< timed repetitions of the whole scenario body
  unsigned warmup = 0;        ///< untimed, unrecorded leading repetitions
  bool quiet = false;         ///< suppress the scenario's table output
  std::optional<std::vector<std::uint32_t>> n_override;  ///< --n
  std::optional<double> beta_override;                   ///< --beta
  std::optional<std::uint64_t> seed_override;            ///< --seed
  std::optional<unsigned> threads;                       ///< --threads
};

/// Handed to a scenario body for each repetition.  Every accessor that
/// resolves a parameter (sweep sizes, beta, seed, trials) also records the
/// resolved value, so the JSON record reports the parameters actually used.
class ScenarioContext {
 public:
  ScenarioContext(const RunConfig& config, std::ostream& out);

  /// Instance sizes for n-sweeps; --n overrides, smoke mode shrinks.
  /// `param_name` is the key the sweep is recorded under (scenarios with
  /// several sweeps give each its own key so none is overwritten).
  std::vector<std::uint32_t> n_sweep();
  // param_name is const char* (not std::string) so brace-initialized sweep
  // lists cannot ambiguously match a std::string overload.
  std::vector<std::uint32_t> n_sweep(std::vector<std::uint32_t> defaults,
                                     const char* param_name = "n_sweep");
  /// Scenario-specific sweep with its own smoke profile (--n still wins).
  std::vector<std::uint32_t> n_sweep(std::vector<std::uint32_t> smoke_defaults,
                                     std::vector<std::uint32_t> full_defaults,
                                     const char* param_name = "n_sweep");

  /// Record (or overwrite) a scenario-specific parameter in the JSON record
  /// — e.g. the effective sizes after a scenario-side clamp.
  void param(const std::string& name, Json value);
  /// Single-n scenarios: `full` normally, `small` under smoke, --n[0] wins.
  std::uint32_t pick_n(std::uint32_t small, std::uint32_t full);

  unsigned trials();
  bool smoke() const { return config_.smoke; }
  double beta(double fallback);
  std::uint64_t seed(std::uint64_t fallback);

  /// Table/prose output stream (a null sink under --quiet).
  std::ostream& out() { return out_; }

  /// Record a named result metric into the JSON record (last repetition wins).
  void metric(const std::string& name, double value);
  void metric(const std::string& name, std::uint64_t value);
  void metric(const std::string& name, bool value);

  const Json& params() const { return params_; }
  const Json& metrics() const { return metrics_; }

  /// Whether the body resolved each overridable parameter (used to warn
  /// when a CLI override was passed but the scenario never consumed it).
  bool resolved_n() const { return resolved_n_; }
  bool resolved_beta() const { return resolved_beta_; }
  bool resolved_seed() const { return resolved_seed_; }

 private:
  void record_param(const std::string& name, Json value);

  const RunConfig& config_;
  std::ostream& out_;
  Json params_ = Json::object();
  Json metrics_ = Json::object();
  bool resolved_n_ = false;
  bool resolved_beta_ = false;
  bool resolved_seed_ = false;
};

using ScenarioFn = void (*)(ScenarioContext&);

struct Scenario {
  std::string name;
  std::string description;
  std::string grid;  ///< human-readable default parameter grid
  ScenarioFn fn = nullptr;
};

/// Global scenario registry (populated by static Registrar objects before
/// main() runs; scenario .cpp files are linked into the lcsbench binary
/// directly so no registration is dropped by the archiver).
class Registry {
 public:
  static Registry& instance();

  void add(Scenario s);
  /// All scenarios, sorted by name.
  std::vector<Scenario> scenarios() const;
  const Scenario* find(const std::string& name) const;

 private:
  std::vector<Scenario> scenarios_;
};

struct Registrar {
  Registrar(const char* name, const char* description, const char* grid, ScenarioFn fn);
};

}  // namespace lcs::bench

/// Defines and registers a scenario:
///   LCS_BENCH_SCENARIO(e2_congestion, "congestion = O(D k_D log n)",
///                      "D in {3..6} x n-sweep") { ... use ctx ... }
#define LCS_BENCH_SCENARIO(scenario_name, description, grid)                               \
  static void lcs_bench_body_##scenario_name(::lcs::bench::ScenarioContext& ctx);          \
  static const ::lcs::bench::Registrar lcs_bench_registrar_##scenario_name{                \
      #scenario_name, description, grid, &lcs_bench_body_##scenario_name};                 \
  static void lcs_bench_body_##scenario_name(::lcs::bench::ScenarioContext& ctx)
