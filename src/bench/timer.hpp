// Wall-clock and CPU timers for the scenario harness, plus the usual
// optimizer barrier for micro-measurements.
#pragma once

#include <chrono>
#include <cstdint>
#include <ctime>

namespace lcs::bench {

/// Monotonic wall clock (std::chrono::steady_clock).
class MonotonicTimer {
 public:
  MonotonicTimer() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start_)
        .count();
  }

  double elapsed_ns() const {
    return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Process CPU time (CLOCK_PROCESS_CPUTIME_ID on POSIX, std::clock fallback).
class CpuTimer {
 public:
  CpuTimer() : start_(now()) {}

  void reset() { start_ = now(); }

  double elapsed_ms() const { return (now() - start_) * 1e3; }

 private:
  static double now() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
  }

  double start_;
};

/// Prevents the optimizer from eliding a computed value (the classic
/// google-benchmark barrier, so micro scenarios survive -O2).
template <class T>
inline void do_not_optimize(const T& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r,m"(value) : "memory");
#else
  static volatile const void* sink;
  sink = &value;
#endif
}

/// Times `fn` over `iters` iterations and returns nanoseconds per iteration.
template <class F>
inline double time_ns_per_op(std::uint64_t iters, F&& fn) {
  MonotonicTimer t;
  for (std::uint64_t i = 0; i < iters; ++i) fn();
  return t.elapsed_ns() / static_cast<double>(iters == 0 ? 1 : iters);
}

}  // namespace lcs::bench
