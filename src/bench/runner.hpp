// Repetition/warmup control around a scenario body, and the JSON record
// emitter (one machine-info-stamped record per scenario run).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "bench/registry.hpp"
#include "util/json.hpp"

namespace lcs::bench {

struct RepetitionTiming {
  double wall_ms = 0;
  double cpu_ms = 0;
};

struct ScenarioResult {
  std::string name;
  bool ok = false;
  std::string error;  ///< exception text when !ok
  std::vector<RepetitionTiming> timings;
  Json params = Json::object();   ///< parameters the body actually resolved
  Json metrics = Json::object();  ///< named metrics from the last repetition
  bool resolved_n = false;        ///< body consumed the n sweep / pick_n
  bool resolved_beta = false;     ///< body consumed ctx.beta()
  bool resolved_seed = false;     ///< body consumed ctx.seed()
};

/// Runs `config.warmup` untimed + `config.repetitions` timed executions of
/// the scenario body.  Table output goes to `out` (first timed repetition
/// only, so repeated runs do not spam); a thrown exception fails the
/// scenario but not the process.
ScenarioResult run_scenario(const Scenario& scenario, const RunConfig& config,
                            std::ostream& out);

/// One schema-stable JSON record: {schema_version, scenario, description,
/// ok, error?, config, params, repetitions:[{wall_ms,cpu_ms}], metrics,
/// machine}.
Json result_to_json(const Scenario& scenario, const ScenarioResult& result,
                    const RunConfig& config);

}  // namespace lcs::bench
