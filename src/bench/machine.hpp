// Machine + build provenance stamped into every BENCH_*.json record, so a
// perf trajectory accumulated across machines stays interpretable.
#pragma once

#include "util/json.hpp"

namespace lcs::bench {

/// {hostname, os, kernel, arch, cpu_model, hardware_threads, compiler,
///  build_type, timestamp_utc}.  Unknown fields come back as "unknown"
/// rather than being omitted, so the schema is stable.
Json machine_info();

}  // namespace lcs::bench
