#include "bench/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace lcs::bench {

ScenarioContext::ScenarioContext(const RunConfig& config, std::ostream& out)
    : config_(config), out_(out) {}

std::vector<std::uint32_t> ScenarioContext::n_sweep() {
  return n_sweep(config_.smoke ? std::vector<std::uint32_t>{512, 1024}
                               : std::vector<std::uint32_t>{512, 1024, 2048, 4096});
}

std::vector<std::uint32_t> ScenarioContext::n_sweep(std::vector<std::uint32_t> smoke_defaults,
                                                    std::vector<std::uint32_t> full_defaults,
                                                    const char* param_name) {
  return n_sweep(config_.smoke ? std::move(smoke_defaults) : std::move(full_defaults),
                 param_name);
}

std::vector<std::uint32_t> ScenarioContext::n_sweep(std::vector<std::uint32_t> defaults,
                                                    const char* param_name) {
  resolved_n_ = true;
  std::vector<std::uint32_t> ns =
      config_.n_override ? *config_.n_override : std::move(defaults);
  Json arr = Json::array();
  for (const auto n : ns) arr.push_back(std::uint64_t{n});
  record_param(param_name, std::move(arr));
  return ns;
}

void ScenarioContext::param(const std::string& name, Json value) {
  record_param(name, std::move(value));
}

std::uint32_t ScenarioContext::pick_n(std::uint32_t small, std::uint32_t full) {
  resolved_n_ = true;
  std::uint32_t n = config_.smoke ? small : full;
  if (config_.n_override && !config_.n_override->empty()) {
    n = config_.n_override->front();
    if (config_.n_override->size() > 1) {
      // Single-n scenario: surface the dropped sweep values instead of
      // silently pretending a multi-size sweep ran.
      Json unused = Json::array();
      for (std::size_t i = 1; i < config_.n_override->size(); ++i) {
        unused.push_back(std::uint64_t{(*config_.n_override)[i]});
      }
      record_param("n_unused_override_values", std::move(unused));
      out_ << "(note: single-n scenario; only --n front value " << n << " is used)\n";
    }
  }
  record_param("n", std::uint64_t{n});
  return n;
}

unsigned ScenarioContext::trials() {
  const unsigned t = config_.smoke ? 1 : 3;
  record_param("trials", std::uint64_t{t});
  return t;
}

double ScenarioContext::beta(double fallback) {
  resolved_beta_ = true;
  const double b = config_.beta_override.value_or(fallback);
  record_param("beta", b);
  return b;
}

std::uint64_t ScenarioContext::seed(std::uint64_t fallback) {
  resolved_seed_ = true;
  const std::uint64_t s = config_.seed_override.value_or(fallback);
  record_param("seed", s);
  return s;
}

void ScenarioContext::metric(const std::string& name, double value) { metrics_[name] = value; }
void ScenarioContext::metric(const std::string& name, std::uint64_t value) {
  metrics_[name] = value;
}
void ScenarioContext::metric(const std::string& name, bool value) { metrics_[name] = value; }

void ScenarioContext::record_param(const std::string& name, Json value) {
  params_[name] = std::move(value);
}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

void Registry::add(Scenario s) {
  if (find(s.name) != nullptr) {
    // Fail fast at startup: a shadowed scenario would silently clobber the
    // other's BENCH_<name>.json record under --all --out-dir.
    std::fprintf(stderr, "lcsbench: duplicate scenario name '%s'\n", s.name.c_str());
    std::abort();
  }
  scenarios_.push_back(std::move(s));
}

std::vector<Scenario> Registry::scenarios() const {
  std::vector<Scenario> out = scenarios_;
  std::sort(out.begin(), out.end(),
            [](const Scenario& a, const Scenario& b) { return a.name < b.name; });
  return out;
}

const Scenario* Registry::find(const std::string& name) const {
  for (const Scenario& s : scenarios_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Registrar::Registrar(const char* name, const char* description, const char* grid,
                     ScenarioFn fn) {
  Registry::instance().add(Scenario{name, description, grid, fn});
}

}  // namespace lcs::bench
