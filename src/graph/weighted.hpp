// Edge weights, kept as a parallel array indexed by EdgeId.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace lcs::graph {

using Weight = std::int64_t;
using EdgeWeights = std::vector<Weight>;
/// Read-only weight view — what every referee takes.  An EdgeWeights vector
/// converts implicitly; a mmap-loaded snapshot passes a view straight into
/// the file mapping without ever materializing a vector.
using WeightSpan = std::span<const Weight>;

/// Uniform random weights in [1, max_weight].
EdgeWeights random_weights(const Graph& g, Weight max_weight, Rng& rng);

/// A random permutation of 1..m — all-distinct weights, so the MST is
/// unique and cross-implementation comparisons can match edge sets exactly.
EdgeWeights distinct_random_weights(const Graph& g, Rng& rng);

/// Sum of the weights of the given edges.
Weight total_weight(WeightSpan w, const std::vector<EdgeId>& edges);

}  // namespace lcs::graph
