// Breadth-first search family, connectivity and diameter utilities.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace lcs::graph {

/// Result of a (possibly truncated / multi-source) BFS.
struct BfsResult {
  std::vector<std::uint32_t> dist;   ///< kUnreached where not reached
  std::vector<VertexId> parent;      ///< kNoVertex at sources / unreached
  std::vector<EdgeId> parent_edge;   ///< kNoEdge at sources / unreached
  std::uint32_t max_dist = 0;        ///< eccentricity restricted to reached set
  std::uint32_t reached = 0;         ///< number of reached vertices

  bool reached_vertex(VertexId v) const { return dist[v] != kUnreached; }
};

/// Plain BFS from a single source.
BfsResult bfs(const Graph& g, VertexId source);

/// BFS that never expands beyond `depth_cap` hops.
BfsResult bfs_truncated(const Graph& g, VertexId source, std::uint32_t depth_cap);

/// Multi-source BFS; dist is the distance to the nearest source.
BfsResult bfs_multi(const Graph& g, const std::vector<VertexId>& sources);

/// Reconstruct the source->target path (sequence of vertices) from a BFS.
/// Empty when the target was not reached.
std::vector<VertexId> extract_path(const BfsResult& r, VertexId target);

/// Connected components; returns component id per vertex and the count.
struct Components {
  std::vector<std::uint32_t> id;
  std::uint32_t count = 0;
};
Components connected_components(const Graph& g);

bool is_connected(const Graph& g);

/// Exact diameter by all-pairs BFS.  Intended for n up to a few thousand.
/// Requires a connected graph.  Sources fan out across the thread pool with
/// per-worker reusable BFS scratch (bit-identical at any thread count);
/// inside an existing parallel region it serializes on the calling thread.
std::uint32_t diameter_exact(const Graph& g);

/// Lower bound on the diameter by repeated double-sweep (exact on trees and
/// usually exact on our families).  `sweeps` extra restarts tighten it.
std::uint32_t diameter_double_sweep(const Graph& g, unsigned sweeps = 4);

/// Eccentricity of v (max distance to any reachable vertex).
std::uint32_t eccentricity(const Graph& g, VertexId v);

// ---------------------------------------------------------------------------
// Edge-induced subgraphs.
//
// A shortcut subgraph H_i is a set of edge ids of the parent graph; the
// augmented part G[S_i] ∪ H_i is exactly an edge-induced subgraph.  This
// class materialises a local CSR over the touched vertices so the BFS/
// diameter helpers above can run on it unchanged via `local_graph()`.
// ---------------------------------------------------------------------------
class EdgeInducedSubgraph {
 public:
  /// Build from parent graph + edge id set (duplicates tolerated).
  EdgeInducedSubgraph(const Graph& parent, const std::vector<EdgeId>& edge_ids);

  const Graph& local_graph() const { return local_; }
  std::uint32_t num_vertices() const { return local_.num_vertices(); }
  std::uint32_t num_edges() const { return local_.num_edges(); }

  /// Parent-vertex of a local vertex id.
  VertexId to_parent(VertexId local) const {
    LCS_REQUIRE(local < to_parent_.size(), "local vertex out of range");
    return to_parent_[local];
  }
  /// Local id of a parent vertex, if present.
  std::optional<VertexId> to_local(VertexId parent) const;

  /// True when every vertex of `parent_vertices` appears in the subgraph.
  bool contains_all(const std::vector<VertexId>& parent_vertices) const;

 private:
  Graph local_;
  std::vector<VertexId> to_parent_;
  std::vector<VertexId> parent_to_local_;  // dense map, kNoVertex when absent
};

/// Depth at which a BFS from `source` (a parent vertex) inside the subgraph
/// covers all of `targets` (parent vertices); nullopt when it never does.
std::optional<std::uint32_t> cover_radius(const EdgeInducedSubgraph& sub, VertexId source,
                                          const std::vector<VertexId>& targets);

/// Bridges (cut edges) of the graph; returns edge ids.  Iterative Tarjan.
std::vector<EdgeId> bridges(const Graph& g);

}  // namespace lcs::graph
