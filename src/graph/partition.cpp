#include "graph/partition.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "graph/union_find.hpp"

namespace lcs::graph {

std::vector<std::int32_t> Partition::assignment(std::uint32_t n) const {
  std::vector<std::int32_t> a(n, -1);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (const VertexId v : parts[i]) {
      LCS_REQUIRE(v < n, "partition vertex out of range");
      LCS_REQUIRE(a[v] == -1, "vertex appears in two parts");
      a[v] = static_cast<std::int32_t>(i);
    }
  }
  return a;
}

VertexId Partition::leader(std::size_t i) const {
  LCS_REQUIRE(i < parts.size(), "part index out of range");
  LCS_REQUIRE(!parts[i].empty(), "empty part has no leader");
  return *std::max_element(parts[i].begin(), parts[i].end());
}

std::string validate_partition(const Graph& g, const Partition& p) {
  const std::uint32_t n = g.num_vertices();
  std::vector<bool> seen(n, false);
  for (std::size_t i = 0; i < p.parts.size(); ++i) {
    const auto& part = p.parts[i];
    if (part.empty()) return "part " + std::to_string(i) + " is empty";
    for (const VertexId v : part) {
      if (v >= n) return "part " + std::to_string(i) + " has out-of-range vertex";
      if (seen[v])
        return "vertex " + std::to_string(v) + " appears in more than one part";
      seen[v] = true;
    }
    // Connectivity of G[S_i]: BFS restricted to the part.
    std::vector<bool> in_part(n, false);
    for (const VertexId v : part) in_part[v] = true;
    std::vector<VertexId> stack{part.front()};
    std::vector<bool> visited(n, false);
    visited[part.front()] = true;
    std::size_t reached = 1;
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (const HalfEdge he : g.neighbors(u)) {
        if (in_part[he.to] && !visited[he.to]) {
          visited[he.to] = true;
          ++reached;
          stack.push_back(he.to);
        }
      }
    }
    if (reached != part.size())
      return "part " + std::to_string(i) + " is not connected in G";
  }
  return {};
}

Partition ball_partition(const Graph& g, std::uint32_t num_seeds, Rng& rng) {
  const std::uint32_t n = g.num_vertices();
  LCS_REQUIRE(n > 0, "ball_partition of empty graph");
  LCS_REQUIRE(num_seeds >= 1 && num_seeds <= n, "seed count out of range");
  const auto seeds64 = rng.sample_distinct(n, num_seeds);
  std::vector<VertexId> seeds(seeds64.begin(), seeds64.end());
  const BfsResult r = bfs_multi(g, seeds);

  // Cell of a vertex = cell of its BFS parent; seeds root their own cell.
  std::vector<std::int32_t> cell(n, -1);
  for (std::size_t i = 0; i < seeds.size(); ++i) cell[seeds[i]] = static_cast<std::int32_t>(i);
  // Resolve in order of increasing BFS distance so parents are resolved first.
  std::vector<VertexId> order;
  order.reserve(n);
  for (VertexId v = 0; v < n; ++v)
    if (r.reached_vertex(v)) order.push_back(v);
  std::sort(order.begin(), order.end(),
            [&](VertexId a, VertexId b) { return r.dist[a] < r.dist[b]; });
  Partition p;
  p.parts.resize(seeds.size());
  for (const VertexId v : order) {
    if (cell[v] == -1) {
      LCS_CHECK(r.parent[v] != kNoVertex, "non-seed vertex with no BFS parent");
      cell[v] = cell[r.parent[v]];
    }
    p.parts[static_cast<std::size_t>(cell[v])].push_back(v);
  }
  // Drop empty cells (possible when a seed set is larger than a component).
  std::erase_if(p.parts, [](const auto& part) { return part.empty(); });
  return p;
}

Partition forest_partition(const Graph& g, std::uint32_t max_part_size, Rng& rng) {
  LCS_REQUIRE(max_part_size >= 1, "max_part_size must be positive");
  const std::uint32_t n = g.num_vertices();
  std::vector<EdgeId> order(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) order[e] = e;
  rng.shuffle(order);
  UnionFind uf(n);
  for (const EdgeId e : order) {
    const Edge ed = g.edge(e);
    const VertexId ra = uf.find(ed.u);
    const VertexId rb = uf.find(ed.v);
    if (ra == rb) continue;
    if (uf.set_size(ra) + uf.set_size(rb) <= max_part_size) uf.unite(ra, rb);
  }
  std::vector<std::int32_t> root_to_part(n, -1);
  Partition p;
  for (VertexId v = 0; v < n; ++v) {
    const VertexId r = uf.find(v);
    if (root_to_part[r] == -1) {
      root_to_part[r] = static_cast<std::int32_t>(p.parts.size());
      p.parts.emplace_back();
    }
    p.parts[static_cast<std::size_t>(root_to_part[r])].push_back(v);
  }
  return p;
}

Partition singleton_partition(const Graph& g) {
  Partition p;
  p.parts.reserve(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) p.parts.push_back({v});
  return p;
}

Partition component_partition(const Graph& g) {
  const Components c = connected_components(g);
  Partition p;
  p.parts.resize(c.count);
  for (VertexId v = 0; v < g.num_vertices(); ++v) p.parts[c.id[v]].push_back(v);
  return p;
}

}  // namespace lcs::graph
