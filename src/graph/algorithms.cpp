#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>

#include "util/parallel.hpp"

namespace lcs::graph {

namespace {

/// Reusable BFS buffers: one set per worker, so the all-pairs sweep of
/// diameter_exact never allocates per source.
struct BfsScratch {
  std::vector<std::uint32_t> dist;
  std::vector<VertexId> frontier;
  std::vector<VertexId> next;
};

/// Eccentricity of `source` using caller-owned scratch.  Equivalent to
/// bfs(g, source).max_dist without the per-call allocations.
std::uint32_t eccentricity_scratch(const Graph& g, VertexId source, BfsScratch& s) {
  s.dist.assign(g.num_vertices(), kUnreached);
  s.frontier.clear();
  s.dist[source] = 0;
  s.frontier.push_back(source);
  std::uint32_t depth = 0;
  while (!s.frontier.empty()) {
    s.next.clear();
    for (const VertexId u : s.frontier) {
      for (const HalfEdge he : g.neighbors(u)) {
        if (s.dist[he.to] != kUnreached) continue;
        s.dist[he.to] = depth + 1;
        s.next.push_back(he.to);
      }
    }
    s.frontier.swap(s.next);
    if (!s.frontier.empty()) ++depth;
  }
  return depth;
}

BfsResult bfs_impl(const Graph& g, const std::vector<VertexId>& sources,
                   std::uint32_t depth_cap) {
  const std::uint32_t n = g.num_vertices();
  BfsResult r;
  r.dist.assign(n, kUnreached);
  r.parent.assign(n, kNoVertex);
  r.parent_edge.assign(n, kNoEdge);

  std::vector<VertexId> frontier;
  for (VertexId s : sources) {
    LCS_REQUIRE(s < n, "BFS source out of range");
    if (r.dist[s] == kUnreached) {
      r.dist[s] = 0;
      frontier.push_back(s);
      ++r.reached;
    }
  }
  std::uint32_t depth = 0;
  std::vector<VertexId> next;
  while (!frontier.empty() && depth < depth_cap) {
    next.clear();
    for (VertexId u : frontier) {
      for (const HalfEdge he : g.neighbors(u)) {
        if (r.dist[he.to] != kUnreached) continue;
        r.dist[he.to] = depth + 1;
        r.parent[he.to] = u;
        r.parent_edge[he.to] = he.edge;
        next.push_back(he.to);
        ++r.reached;
      }
    }
    frontier.swap(next);
    if (!frontier.empty()) r.max_dist = ++depth;
  }
  return r;
}

}  // namespace

BfsResult bfs(const Graph& g, VertexId source) {
  return bfs_impl(g, {source}, kUnreached);
}

BfsResult bfs_truncated(const Graph& g, VertexId source, std::uint32_t depth_cap) {
  return bfs_impl(g, {source}, depth_cap);
}

BfsResult bfs_multi(const Graph& g, const std::vector<VertexId>& sources) {
  LCS_REQUIRE(!sources.empty(), "multi-source BFS needs at least one source");
  return bfs_impl(g, sources, kUnreached);
}

std::vector<VertexId> extract_path(const BfsResult& r, VertexId target) {
  LCS_REQUIRE(target < r.dist.size(), "target out of range");
  if (r.dist[target] == kUnreached) return {};
  std::vector<VertexId> path{target};
  VertexId cur = target;
  while (r.parent[cur] != kNoVertex) {
    cur = r.parent[cur];
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Components connected_components(const Graph& g) {
  const std::uint32_t n = g.num_vertices();
  Components c;
  c.id.assign(n, kUnreached);
  std::vector<VertexId> stack;
  for (VertexId s = 0; s < n; ++s) {
    if (c.id[s] != kUnreached) continue;
    c.id[s] = c.count;
    stack.push_back(s);
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (const HalfEdge he : g.neighbors(u)) {
        if (c.id[he.to] == kUnreached) {
          c.id[he.to] = c.count;
          stack.push_back(he.to);
        }
      }
    }
    ++c.count;
  }
  return c;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  return bfs(g, 0).reached == g.num_vertices();
}

std::uint32_t diameter_exact(const Graph& g) {
  LCS_REQUIRE(g.num_vertices() > 0, "diameter of empty graph");
  LCS_REQUIRE(is_connected(g), "diameter of a disconnected graph is infinite");
  const std::uint32_t n = g.num_vertices();
  // All-pairs BFS over source vertices.  The per-vertex eccentricities are
  // independent, so the sweep fans out across the pool with per-worker
  // scratch; the result is a max over all sources, which is
  // order-insensitive.  measure_part_dilation calls this from inside a
  // parallel region, where it serializes on the caller's thread (still with
  // reused scratch instead of per-source allocation).
  if (in_parallel_region() || num_threads() == 1) {
    BfsScratch s;
    std::uint32_t best = 0;
    for (VertexId v = 0; v < n; ++v) best = std::max(best, eccentricity_scratch(g, v, s));
    return best;
  }
  std::vector<BfsScratch> scratch(num_threads());
  std::vector<std::uint32_t> best(num_threads(), 0);
  parallel_for_chunked(0, n, default_grain(n, 8),
                       [&](std::size_t begin, std::size_t end, unsigned worker) {
                         BfsScratch& s = scratch[worker];
                         for (std::size_t v = begin; v < end; ++v) {
                           best[worker] = std::max(
                               best[worker],
                               eccentricity_scratch(g, static_cast<VertexId>(v), s));
                         }
                       });
  return *std::max_element(best.begin(), best.end());
}

std::uint32_t diameter_double_sweep(const Graph& g, unsigned sweeps) {
  LCS_REQUIRE(g.num_vertices() > 0, "diameter of empty graph");
  std::uint32_t best = 0;
  VertexId start = 0;
  for (unsigned i = 0; i < sweeps; ++i) {
    const BfsResult a = bfs(g, start);
    // Farthest vertex from `start`.
    VertexId far = start;
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      if (a.dist[v] != kUnreached && a.dist[v] > a.dist[far]) far = v;
    const BfsResult b = bfs(g, far);
    best = std::max(best, b.max_dist);
    // Restart from the far end of the second sweep.
    VertexId far2 = far;
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      if (b.dist[v] != kUnreached && b.dist[v] > b.dist[far2]) far2 = v;
    if (far2 == start) break;
    start = far2;
  }
  return best;
}

std::uint32_t eccentricity(const Graph& g, VertexId v) { return bfs(g, v).max_dist; }

EdgeInducedSubgraph::EdgeInducedSubgraph(const Graph& parent,
                                         const std::vector<EdgeId>& edge_ids) {
  parent_to_local_.assign(parent.num_vertices(), kNoVertex);
  std::vector<std::pair<VertexId, VertexId>> local_edges;
  local_edges.reserve(edge_ids.size());
  auto local_of = [&](VertexId pv) {
    if (parent_to_local_[pv] == kNoVertex) {
      parent_to_local_[pv] = static_cast<VertexId>(to_parent_.size());
      to_parent_.push_back(pv);
    }
    return parent_to_local_[pv];
  };
  for (const EdgeId e : edge_ids) {
    const Edge ed = parent.edge(e);
    local_edges.emplace_back(local_of(ed.u), local_of(ed.v));
  }
  local_ = Graph::from_edges(static_cast<std::uint32_t>(to_parent_.size()),
                             std::move(local_edges));
}

std::optional<VertexId> EdgeInducedSubgraph::to_local(VertexId parent) const {
  LCS_REQUIRE(parent < parent_to_local_.size(), "parent vertex out of range");
  const VertexId l = parent_to_local_[parent];
  if (l == kNoVertex) return std::nullopt;
  return l;
}

bool EdgeInducedSubgraph::contains_all(const std::vector<VertexId>& parent_vertices) const {
  for (const VertexId pv : parent_vertices)
    if (!to_local(pv).has_value()) return false;
  return true;
}

std::optional<std::uint32_t> cover_radius(const EdgeInducedSubgraph& sub, VertexId source,
                                          const std::vector<VertexId>& targets) {
  const auto src_local = sub.to_local(source);
  if (!src_local.has_value()) return std::nullopt;
  const BfsResult r = bfs(sub.local_graph(), *src_local);
  std::uint32_t radius = 0;
  for (const VertexId t : targets) {
    const auto tl = sub.to_local(t);
    if (!tl.has_value() || !r.reached_vertex(*tl)) return std::nullopt;
    radius = std::max(radius, r.dist[*tl]);
  }
  return radius;
}

std::vector<EdgeId> bridges(const Graph& g) {
  const std::uint32_t n = g.num_vertices();
  std::vector<EdgeId> out;
  std::vector<std::uint32_t> disc(n, kUnreached);
  std::vector<std::uint32_t> low(n, 0);

  // Iterative DFS; each frame remembers its position in the adjacency list
  // and the edge taken to enter the vertex (parallel-edge safe via edge id).
  struct Frame {
    VertexId v;
    EdgeId in_edge;
    std::size_t next;
  };
  std::uint32_t timer = 0;
  std::vector<Frame> stack;
  for (VertexId root = 0; root < n; ++root) {
    if (disc[root] != kUnreached) continue;
    stack.push_back({root, kNoEdge, 0});
    disc[root] = low[root] = timer++;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto nbrs = g.neighbors(f.v);
      if (f.next < nbrs.size()) {
        const HalfEdge he = nbrs[f.next++];
        if (he.edge == f.in_edge) continue;
        if (disc[he.to] == kUnreached) {
          disc[he.to] = low[he.to] = timer++;
          stack.push_back({he.to, he.edge, 0});
        } else {
          low[f.v] = std::min(low[f.v], disc[he.to]);
        }
      } else {
        const Frame done = f;
        stack.pop_back();
        if (!stack.empty()) {
          Frame& up = stack.back();
          low[up.v] = std::min(low[up.v], low[done.v]);
          if (low[done.v] > disc[up.v]) out.push_back(done.in_edge);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace lcs::graph
