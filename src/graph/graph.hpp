// Immutable undirected simple graph in CSR form.
//
// Vertices are dense ids [0, n); undirected edges have dense ids [0, m).
// Each adjacency entry carries the edge id so that algorithms operating on
// edge subsets (shortcut subgraphs are *sets of edge ids*) never need any
// lookup structure.  The graph is immutable after construction; use
// GraphBuilder to assemble one.
//
// Storage is three flat CSR arrays — offsets (n+1), adjacency half-edges
// (2m, grouped by vertex) and edge endpoints (m) — held as spans over one
// shared backing allocation.  from_edges() backs them with heap vectors;
// from_csr() can point them at externally owned memory (the mmap'ed
// snapshot files of service/snapshot_format.hpp), which makes loading a
// frozen graph a zero-copy operation.  Either way a Graph copy is three
// spans plus one shared_ptr bump: cheap, and safe because the arrays are
// immutable for the life of the backing.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace lcs::graph {

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr VertexId kNoVertex = static_cast<VertexId>(-1);
inline constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);
inline constexpr std::uint32_t kUnreached = static_cast<std::uint32_t>(-1);

/// One adjacency entry: the neighbour and the undirected edge connecting to it.
struct HalfEdge {
  VertexId to;
  EdgeId edge;
};

/// Endpoints of an undirected edge, stored with u < v.
struct Edge {
  VertexId u;
  VertexId v;
};

// The CSR arrays are serialized verbatim into snapshot files, so the entry
// types must stay raw 8-byte PODs (docs/snapshot_format.md).
static_assert(sizeof(HalfEdge) == 8 && std::is_trivially_copyable_v<HalfEdge>);
static_assert(sizeof(Edge) == 8 && std::is_trivially_copyable_v<Edge>);

class Graph {
 public:
  Graph() = default;

  std::uint32_t num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<std::uint32_t>(offsets_.size()) - 1;
  }
  std::uint32_t num_edges() const { return static_cast<std::uint32_t>(edges_.size()); }

  std::span<const HalfEdge> neighbors(VertexId v) const {
    LCS_REQUIRE(v < num_vertices(), "vertex out of range");
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  std::uint32_t degree(VertexId v) const {
    LCS_REQUIRE(v < num_vertices(), "vertex out of range");
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  Edge edge(EdgeId e) const {
    LCS_REQUIRE(e < num_edges(), "edge out of range");
    return edges_[e];
  }

  /// The endpoint of `e` that is not `v`; requires `v` to be an endpoint.
  VertexId other_endpoint(EdgeId e, VertexId v) const {
    const Edge ed = edge(e);
    LCS_REQUIRE(ed.u == v || ed.v == v, "vertex is not an endpoint of the edge");
    return ed.u == v ? ed.v : ed.u;
  }

  std::span<const Edge> edges() const { return edges_; }

  /// The raw CSR arrays, exposed for serialization (snapshot_format) and
  /// for cache-friendly linear sweeps that want the flat layout directly.
  std::span<const std::uint64_t> csr_offsets() const { return offsets_; }
  std::span<const HalfEdge> csr_adjacency() const { return adj_; }

  /// Build from an explicit edge list.  Self-loops are rejected; duplicate
  /// edges are merged.  Vertices not mentioned still exist as isolated ids.
  static Graph from_edges(std::uint32_t n, std::vector<std::pair<VertexId, VertexId>> edge_list);

  /// View already-materialized CSR arrays without copying them.  `backing`
  /// keeps the spans' memory alive for the life of the graph (and of every
  /// copy) — typically a MappedFile holding a snapshot section.  Only shape
  /// invariants are checked here (sizes and the offset endpoints); content
  /// integrity is the caller's job — the snapshot loader has already
  /// checksummed each section before calling this.
  static Graph from_csr(std::span<const std::uint64_t> offsets, std::span<const HalfEdge> adj,
                        std::span<const Edge> edges, std::shared_ptr<const void> backing);

 private:
  friend class GraphBuilder;
  std::span<const std::uint64_t> offsets_;  // size n+1
  std::span<const HalfEdge> adj_;           // size 2m, grouped by vertex
  std::span<const Edge> edges_;             // size m
  std::shared_ptr<const void> backing_;     // owns the spans' memory
};

/// Incremental construction helper; deduplicates at build() time.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::uint32_t n) : n_(n) {}

  /// Add an undirected edge (duplicates allowed; merged at build()).
  void add_edge(VertexId u, VertexId v);

  /// Add `count` fresh vertices; returns the id of the first one.
  VertexId add_vertices(std::uint32_t count);

  std::uint32_t num_vertices() const { return n_; }

  Graph build() &&;

 private:
  std::uint32_t n_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace lcs::graph
