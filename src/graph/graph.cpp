#include "graph/graph.hpp"

#include <algorithm>

namespace lcs::graph {

namespace {

/// Heap backing for graphs assembled in-process (from_edges).  The Graph's
/// spans point into these vectors; the shared_ptr<const void> erasure keeps
/// them alive without the Graph knowing (or caring) who owns its bytes.
struct OwnedCsr {
  std::vector<std::uint64_t> offsets;
  std::vector<HalfEdge> adj;
  std::vector<Edge> edges;
};

}  // namespace

Graph Graph::from_edges(std::uint32_t n, std::vector<std::pair<VertexId, VertexId>> edge_list) {
  for (auto& [u, v] : edge_list) {
    LCS_REQUIRE(u < n && v < n, "edge endpoint out of range");
    LCS_REQUIRE(u != v, "self-loops are not allowed");
    if (u > v) std::swap(u, v);
  }
  std::sort(edge_list.begin(), edge_list.end());
  edge_list.erase(std::unique(edge_list.begin(), edge_list.end()), edge_list.end());

  auto store = std::make_shared<OwnedCsr>();
  store->edges.reserve(edge_list.size());
  for (const auto& [u, v] : edge_list) store->edges.push_back(Edge{u, v});

  // Counting sort into CSR.
  std::vector<std::uint64_t> counts(n + 1, 0);
  for (const Edge& e : store->edges) {
    ++counts[e.u + 1];
    ++counts[e.v + 1];
  }
  for (std::uint32_t v = 0; v < n; ++v) counts[v + 1] += counts[v];
  store->offsets = counts;
  store->adj.resize(2 * store->edges.size());
  for (EdgeId e = 0; e < store->edges.size(); ++e) {
    const Edge ed = store->edges[e];
    store->adj[counts[ed.u]++] = HalfEdge{ed.v, e};
    store->adj[counts[ed.v]++] = HalfEdge{ed.u, e};
  }

  Graph g;
  g.offsets_ = store->offsets;
  g.adj_ = store->adj;
  g.edges_ = store->edges;
  g.backing_ = std::move(store);
  return g;
}

Graph Graph::from_csr(std::span<const std::uint64_t> offsets, std::span<const HalfEdge> adj,
                      std::span<const Edge> edges, std::shared_ptr<const void> backing) {
  LCS_REQUIRE(!offsets.empty(), "CSR offsets must have at least one entry");
  LCS_REQUIRE(offsets.front() == 0, "CSR offsets must start at 0");
  LCS_REQUIRE(offsets.back() == adj.size(), "CSR offsets must end at the adjacency size");
  LCS_REQUIRE(adj.size() == 2 * edges.size(), "CSR adjacency must hold two halves per edge");
  Graph g;
  g.offsets_ = offsets;
  g.adj_ = adj;
  g.edges_ = edges;
  g.backing_ = std::move(backing);
  return g;
}

void GraphBuilder::add_edge(VertexId u, VertexId v) {
  LCS_REQUIRE(u < n_ && v < n_, "edge endpoint out of range");
  LCS_REQUIRE(u != v, "self-loops are not allowed");
  edges_.emplace_back(u, v);
}

VertexId GraphBuilder::add_vertices(std::uint32_t count) {
  const VertexId first = n_;
  n_ += count;
  return first;
}

Graph GraphBuilder::build() && { return Graph::from_edges(n_, std::move(edges_)); }

}  // namespace lcs::graph
