#include "graph/graph.hpp"

#include <algorithm>

namespace lcs::graph {

Graph Graph::from_edges(std::uint32_t n, std::vector<std::pair<VertexId, VertexId>> edge_list) {
  for (auto& [u, v] : edge_list) {
    LCS_REQUIRE(u < n && v < n, "edge endpoint out of range");
    LCS_REQUIRE(u != v, "self-loops are not allowed");
    if (u > v) std::swap(u, v);
  }
  std::sort(edge_list.begin(), edge_list.end());
  edge_list.erase(std::unique(edge_list.begin(), edge_list.end()), edge_list.end());

  Graph g;
  g.edges_.reserve(edge_list.size());
  for (const auto& [u, v] : edge_list) g.edges_.push_back(Edge{u, v});

  // Counting sort into CSR.
  std::vector<std::uint64_t> counts(n + 1, 0);
  for (const Edge& e : g.edges_) {
    ++counts[e.u + 1];
    ++counts[e.v + 1];
  }
  for (std::uint32_t v = 0; v < n; ++v) counts[v + 1] += counts[v];
  g.offsets_ = counts;
  g.adj_.resize(2 * g.edges_.size());
  for (EdgeId e = 0; e < g.edges_.size(); ++e) {
    const Edge ed = g.edges_[e];
    g.adj_[counts[ed.u]++] = HalfEdge{ed.v, e};
    g.adj_[counts[ed.v]++] = HalfEdge{ed.u, e};
  }
  return g;
}

void GraphBuilder::add_edge(VertexId u, VertexId v) {
  LCS_REQUIRE(u < n_ && v < n_, "edge endpoint out of range");
  LCS_REQUIRE(u != v, "self-loops are not allowed");
  edges_.emplace_back(u, v);
}

VertexId GraphBuilder::add_vertices(std::uint32_t count) {
  const VertexId first = n_;
  n_ += count;
  return first;
}

Graph GraphBuilder::build() && { return Graph::from_edges(n_, std::move(edges_)); }

}  // namespace lcs::graph
