#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.hpp"
#include "util/math.hpp"

namespace lcs::graph {

Graph path_graph(std::uint32_t n) {
  LCS_REQUIRE(n >= 1, "path needs a vertex");
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return std::move(b).build();
}

Graph cycle_graph(std::uint32_t n) {
  LCS_REQUIRE(n >= 3, "cycle needs at least three vertices");
  GraphBuilder b(n);
  for (VertexId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return std::move(b).build();
}

Graph complete_graph(std::uint32_t n) {
  LCS_REQUIRE(n >= 1, "complete graph needs a vertex");
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) b.add_edge(u, v);
  return std::move(b).build();
}

Graph star_graph(std::uint32_t n) {
  LCS_REQUIRE(n >= 1, "star needs a vertex");
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) b.add_edge(0, v);
  return std::move(b).build();
}

Graph grid_graph(std::uint32_t rows, std::uint32_t cols) {
  LCS_REQUIRE(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  GraphBuilder b(rows * cols);
  auto id = [cols](std::uint32_t r, std::uint32_t c) { return r * cols + c; };
  for (std::uint32_t r = 0; r < rows; ++r)
    for (std::uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  return std::move(b).build();
}

Graph dumbbell_graph(std::uint32_t clique, std::uint32_t path_len) {
  LCS_REQUIRE(clique >= 2, "dumbbell cliques need at least two vertices");
  const std::uint32_t n = 2 * clique + (path_len > 0 ? path_len - 1 : 0);
  GraphBuilder b(n);
  auto add_clique = [&](VertexId first) {
    for (VertexId u = 0; u < clique; ++u)
      for (VertexId v = u + 1; v < clique; ++v) b.add_edge(first + u, first + v);
  };
  add_clique(0);
  add_clique(clique);
  if (path_len == 0) {
    b.add_edge(0, clique);  // touching cliques
  } else {
    VertexId prev = 0;
    for (std::uint32_t i = 0; i + 1 < path_len; ++i) {
      const VertexId mid = 2 * clique + i;
      b.add_edge(prev, mid);
      prev = mid;
    }
    b.add_edge(prev, clique);
  }
  return std::move(b).build();
}

Graph erdos_renyi(std::uint32_t n, double p, Rng& rng) {
  LCS_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v)
      if (rng.bernoulli(p)) b.add_edge(u, v);
  return std::move(b).build();
}

Graph random_tree(std::uint32_t n, Rng& rng) {
  LCS_REQUIRE(n >= 1, "tree needs a vertex");
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v)
    b.add_edge(v, static_cast<VertexId>(rng.uniform(v)));
  return std::move(b).build();
}

Graph connected_gnm(std::uint32_t n, std::uint32_t m, Rng& rng) {
  LCS_REQUIRE(m + 1 >= n, "too few edges for a connected graph");
  const std::uint64_t max_edges = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  LCS_REQUIRE(m <= max_edges, "too many edges for a simple graph");
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v)
    b.add_edge(v, static_cast<VertexId>(rng.uniform(v)));
  // Extra random edges; duplicates get merged at build, so top up afterwards.
  std::uint32_t want = m;
  Graph g = std::move(b).build();
  while (g.num_edges() < want) {
    GraphBuilder b2(n);
    for (const Edge& e : g.edges()) b2.add_edge(e.u, e.v);
    const std::uint32_t missing = want - g.num_edges();
    for (std::uint32_t i = 0; i < missing; ++i) {
      const VertexId u = static_cast<VertexId>(rng.uniform(n));
      VertexId v = static_cast<VertexId>(rng.uniform(n));
      if (u == v) v = (v + 1) % n;
      b2.add_edge(u, v);
    }
    g = std::move(b2).build();
  }
  return g;
}

Graph preferential_attachment(std::uint32_t n, std::uint32_t edges_per_vertex, Rng& rng) {
  LCS_REQUIRE(edges_per_vertex >= 1, "need at least one edge per vertex");
  LCS_REQUIRE(n > edges_per_vertex + 1, "n too small for the seed clique");
  GraphBuilder b(n);
  // Seed: a small clique of m0 = edges_per_vertex + 1 vertices.
  const std::uint32_t m0 = edges_per_vertex + 1;
  // `stubs` holds one entry per edge endpoint: sampling uniformly from it
  // is exactly degree-proportional sampling.
  std::vector<VertexId> stubs;
  for (VertexId u = 0; u < m0; ++u)
    for (VertexId v = u + 1; v < m0; ++v) {
      b.add_edge(u, v);
      stubs.push_back(u);
      stubs.push_back(v);
    }
  for (VertexId v = m0; v < n; ++v) {
    // Choose distinct targets degree-proportionally (retry on repeats).
    std::vector<VertexId> targets;
    while (targets.size() < edges_per_vertex) {
      const VertexId u = stubs[static_cast<std::size_t>(rng.uniform(stubs.size()))];
      if (std::find(targets.begin(), targets.end(), u) == targets.end())
        targets.push_back(u);
    }
    for (const VertexId u : targets) {
      b.add_edge(v, u);
      stubs.push_back(v);
      stubs.push_back(u);
    }
  }
  return std::move(b).build();
}

Graph road_network(std::uint32_t n, Rng& rng) {
  LCS_REQUIRE(n >= 1, "road network needs a vertex");
  const auto rows = static_cast<std::uint32_t>(
      std::max(1.0, std::floor(std::sqrt(static_cast<double>(n)))));
  const std::uint32_t cols = (n + rows - 1) / rows;
  GraphBuilder b(n);
  const auto id = [cols](std::uint32_t r, std::uint32_t c) { return r * cols + c; };
  const auto exists = [&](std::uint32_t r, std::uint32_t c) {
    return c < cols && id(r, c) < n;
  };
  for (std::uint32_t r = 0; exists(r, 0); ++r) {
    for (std::uint32_t c = 0; exists(r, c); ++c) {
      // Spine: every horizontal street plus the column-0 avenue keeps the
      // network connected no matter how the thinning draws fall.
      if (exists(r, c + 1)) b.add_edge(id(r, c), id(r, c + 1));
      if (exists(r + 1, c) && (c == 0 || rng.bernoulli(0.7)))
        b.add_edge(id(r, c), id(r + 1, c));
      if (exists(r + 1, c + 1) && rng.bernoulli(0.1))
        b.add_edge(id(r, c), id(r + 1, c + 1));
    }
  }
  return std::move(b).build();
}

Graph transit_network(std::uint32_t n, std::uint32_t lines, Rng& rng) {
  LCS_REQUIRE(n >= 2, "transit network needs at least two stops");
  LCS_REQUIRE(lines >= 1, "transit network needs a line");
  const std::uint32_t stops_per_line = std::max(2u, n / lines);
  GraphBuilder b(n);
  VertexId next = 0;
  while (next < n) {
    const std::uint32_t len = std::min(stops_per_line, n - next);
    const VertexId first = next;
    for (std::uint32_t i = 0; i + 1 < len; ++i) b.add_edge(first + i, first + i + 1);
    if (first > 0) {
      // Interchange: attach the new line to a random already-built stop.
      b.add_edge(first, static_cast<VertexId>(rng.uniform(first)));
      // Occasionally loop the far end back as a second transfer.
      if (len > 1 && rng.bernoulli(0.3))
        b.add_edge(first + len - 1, static_cast<VertexId>(rng.uniform(first)));
    }
    next += len;
  }
  // Sparse express/transfer edges across the whole network.
  const std::uint32_t extras = n / 16;
  for (std::uint32_t i = 0; i < extras; ++i) {
    const auto u = static_cast<VertexId>(rng.uniform(n));
    auto v = static_cast<VertexId>(rng.uniform(n));
    if (u == v) v = (v + 1) % n;
    b.add_edge(u, v);
  }
  return std::move(b).build();
}

Graph layered_random_graph(std::uint32_t n, std::uint32_t diameter, double avg_extra,
                           Rng& rng) {
  LCS_REQUIRE(diameter >= 1, "diameter must be positive");
  LCS_REQUIRE(n >= diameter + 1, "need at least one vertex per layer");
  const std::uint32_t layers = diameter + 1;
  // Layer assignment: both ends singleton; middle layers get one guaranteed
  // vertex each, the rest spread uniformly.
  std::vector<std::uint32_t> layer(n);
  layer[0] = 0;
  layer[n - 1] = diameter;
  std::uint32_t next = 1;
  for (std::uint32_t l = 1; l + 1 < layers; ++l) layer[next++] = l;
  for (VertexId v = next; v + 1 < n; ++v)
    layer[v] = 1 + static_cast<std::uint32_t>(rng.uniform(diameter - 1));

  std::vector<std::vector<VertexId>> by_layer(layers);
  for (VertexId v = 0; v < n; ++v) by_layer[layer[v]].push_back(v);

  GraphBuilder b(n);
  auto random_in_layer = [&](std::uint32_t l) {
    const auto& vec = by_layer[l];
    return vec[static_cast<std::size_t>(rng.uniform(vec.size()))];
  };
  for (VertexId v = 0; v < n; ++v) {
    const std::uint32_t l = layer[v];
    // One guaranteed edge to the previous and to the next layer keeps every
    // vertex within l hops of the left end and diameter-l of the right end,
    // so the graph diameter is exactly `diameter` (realised by the ends).
    if (l > 0) b.add_edge(v, random_in_layer(l - 1));
    if (l < diameter) b.add_edge(v, random_in_layer(l + 1));
    const std::uint32_t extras = static_cast<std::uint32_t>(avg_extra * rng.uniform_real() * 2.0);
    for (std::uint32_t i = 0; i < extras; ++i) {
      const std::uint32_t delta = static_cast<std::uint32_t>(rng.uniform(3));  // {-1,0,+1}
      const std::uint32_t tl = std::min<std::uint32_t>(
          diameter, std::max<int>(0, static_cast<int>(l) + static_cast<int>(delta) - 1));
      const VertexId u = random_in_layer(tl);
      if (u != v) b.add_edge(v, u);
    }
  }
  return std::move(b).build();
}

namespace {

/// Builds a hub subtree of exact depth `depth` whose leaves are the given
/// (already existing) vertices; returns the subtree root.  Group sizes are
/// chosen so that every leaf sits exactly `depth` levels below the root and
/// the first/last leaf diverge at the root whenever there are >= 2 leaves.
VertexId build_hub_subtree(GraphBuilder& b, const std::vector<VertexId>& leaves,
                           std::size_t lo, std::size_t hi, std::uint32_t depth) {
  LCS_CHECK(hi > lo, "empty leaf range");
  if (depth == 0) {
    LCS_CHECK(hi - lo == 1, "depth exhausted with multiple leaves");
    return leaves[lo];
  }
  const VertexId me = b.add_vertices(1);
  const std::size_t count = hi - lo;
  if (count == 1) {
    // Unary chain keeps the leaf at exact depth.
    const VertexId child = build_hub_subtree(b, leaves, lo, hi, depth - 1);
    b.add_edge(me, child);
    return me;
  }
  // Number of children ~ count^(1/depth), at least 2, at most count.
  const double ideal = std::pow(static_cast<double>(count), 1.0 / static_cast<double>(depth));
  std::size_t groups = std::max<std::size_t>(2, static_cast<std::size_t>(std::ceil(ideal)));
  groups = std::min(groups, count);
  const std::size_t base = count / groups;
  std::size_t rem = count % groups;
  std::size_t at = lo;
  for (std::size_t gi = 0; gi < groups; ++gi) {
    const std::size_t take = base + (gi < rem ? 1 : 0);
    const VertexId child = build_hub_subtree(b, leaves, at, at + take, depth - 1);
    b.add_edge(me, child);
    at += take;
  }
  LCS_CHECK(at == hi, "leaf ranges must tile");
  return me;
}

}  // namespace

HardInstance hard_instance(std::uint32_t n, std::uint32_t diameter) {
  LCS_REQUIRE(diameter >= 3, "hard instances need diameter >= 3");
  const bool even = diameter % 2 == 0;
  const std::uint32_t t = even ? diameter / 2 - 1 : (diameter - 3) / 2;

  // Paths of length ~sqrt(n) (the classic MST-hardness shape), at least
  // long enough that the hub route realises the diameter.
  const std::uint32_t min_len = std::max<std::uint32_t>(4, diameter + 2);
  std::uint32_t path_len =
      std::max(min_len, static_cast<std::uint32_t>(std::llround(std::sqrt(double(n)))));
  if (path_len % 2 == 1) ++path_len;  // even column count, splits cleanly in half
  LCS_REQUIRE(n >= 3 * path_len, "n too small for this diameter");
  const std::uint32_t num_paths =
      std::max<std::uint32_t>(2, (n - 2 * path_len) / path_len);

  GraphBuilder b(num_paths * path_len);
  HardInstance out;
  out.paths.parts.resize(num_paths);
  for (std::uint32_t i = 0; i < num_paths; ++i) {
    out.paths.parts[i].reserve(path_len);
    for (std::uint32_t j = 0; j < path_len; ++j) {
      const VertexId v = i * path_len + j;
      out.paths.parts[i].push_back(v);
      if (j > 0) b.add_edge(v - 1, v);
    }
  }

  const std::uint32_t before_hubs = b.num_vertices();
  if (!even && t == 0) {
    // D == 3: two directly-connected hubs, one per column half, attached to
    // every column of their half on every path.  node -> hub -> hub' ->
    // node' realises distance exactly 3 across halves.
    const VertexId r1 = b.add_vertices(1);
    const VertexId r2 = b.add_vertices(1);
    b.add_edge(r1, r2);
    const std::uint32_t half = path_len / 2;
    for (std::uint32_t i = 0; i < num_paths; ++i)
      for (std::uint32_t j = 0; j < path_len; ++j)
        b.add_edge(j < half ? r1 : r2, i * path_len + j);
  } else {
    // One hub leaf per column, attached to that column on every path, with
    // a depth-t tree (even D) or two depth-t trees joined by an edge (odd D)
    // above the leaf layer.
    std::vector<VertexId> leaves;
    leaves.reserve(path_len);
    for (std::uint32_t j = 0; j < path_len; ++j) {
      const VertexId leaf = b.add_vertices(1);
      leaves.push_back(leaf);
      for (std::uint32_t i = 0; i < num_paths; ++i) b.add_edge(leaf, i * path_len + j);
    }
    if (even) {
      build_hub_subtree(b, leaves, 0, leaves.size(), t);
    } else {
      const std::size_t half = leaves.size() / 2;
      const VertexId r1 = build_hub_subtree(b, leaves, 0, half, t);
      const VertexId r2 = build_hub_subtree(b, leaves, half, leaves.size(), t);
      b.add_edge(r1, r2);
    }
  }

  out.tree_nodes = b.num_vertices() - before_hubs;
  out.path_length = path_len;
  out.num_paths = num_paths;
  out.diameter = diameter;
  out.g = std::move(b).build();
  return out;
}

Subdivision subdivide(const Graph& g) {
  const std::uint32_t n = g.num_vertices();
  const std::uint32_t m = g.num_edges();
  GraphBuilder b(n + m);
  for (EdgeId e = 0; e < m; ++e) {
    const Edge ed = g.edge(e);
    const VertexId xe = n + e;
    b.add_edge(ed.u, xe);
    b.add_edge(xe, ed.v);
  }
  Subdivision s;
  s.g2 = std::move(b).build();
  s.half_a.assign(m, kNoEdge);
  s.half_b.assign(m, kNoEdge);
  s.original.assign(s.g2.num_edges(), kNoEdge);
  for (EdgeId e = 0; e < m; ++e) {
    const Edge ed = g.edge(e);
    const VertexId xe = n + e;
    for (const HalfEdge he : s.g2.neighbors(xe)) {
      LCS_CHECK(he.to == ed.u || he.to == ed.v, "dummy vertex with foreign neighbour");
      (he.to == ed.u ? s.half_a[e] : s.half_b[e]) = he.edge;
      s.original[he.edge] = e;
    }
    LCS_CHECK(s.half_a[e] != kNoEdge && s.half_b[e] != kNoEdge, "missing half edge");
  }
  return s;
}

}  // namespace lcs::graph
