// Vertex partitions into disjoint connected parts.
//
// Shortcut inputs (Definition 1.1 of the paper) are collections
// S = {S_1, ..., S_l} of vertex-disjoint connected subsets.  A Partition
// here is exactly that: it need not cover every vertex.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace lcs::graph {

struct Partition {
  /// parts[i] lists the vertices of S_i (each part non-empty).
  std::vector<std::vector<VertexId>> parts;

  std::size_t num_parts() const { return parts.size(); }

  /// Dense map vertex -> part index, or -1 when the vertex is in no part.
  std::vector<std::int32_t> assignment(std::uint32_t n) const;

  /// Leader of part i: the maximum-id vertex, as in the paper's distributed
  /// input convention ("each part is identified by the node of maximum ID").
  VertexId leader(std::size_t i) const;
};

/// Empty string when valid; otherwise a description of the violation
/// (out-of-range vertex, duplicate membership, or a disconnected part).
std::string validate_partition(const Graph& g, const Partition& p);

// --- partition generators --------------------------------------------------

/// BFS-Voronoi cells around `num_seeds` random seeds.  Every vertex joins
/// the cell of its multi-source-BFS parent, which keeps cells connected.
/// Covers every vertex of a connected graph.
Partition ball_partition(const Graph& g, std::uint32_t num_seeds, Rng& rng);

/// Random spanning-forest chunks of at most `max_part_size` vertices:
/// random edge order, union only when the merged part stays within bound.
Partition forest_partition(const Graph& g, std::uint32_t max_part_size, Rng& rng);

/// Every vertex its own part.
Partition singleton_partition(const Graph& g);

/// One part spanning each connected component.
Partition component_partition(const Graph& g);

}  // namespace lcs::graph
