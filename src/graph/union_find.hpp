// Disjoint-set forest with union by rank and path compression.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace lcs::graph {

class UnionFind {
 public:
  explicit UnionFind(std::uint32_t n);

  VertexId find(VertexId x);

  /// Returns true iff the two elements were in different sets.
  bool unite(VertexId a, VertexId b);

  bool same(VertexId a, VertexId b) { return find(a) == find(b); }

  std::uint32_t num_sets() const { return num_sets_; }
  std::uint32_t size() const { return static_cast<std::uint32_t>(parent_.size()); }

  /// Size of the set containing x.
  std::uint32_t set_size(VertexId x);

 private:
  std::vector<VertexId> parent_;
  std::vector<std::uint32_t> rank_;
  std::vector<std::uint32_t> size_;
  std::uint32_t num_sets_;
};

}  // namespace lcs::graph
