#include "graph/weighted.hpp"

namespace lcs::graph {

EdgeWeights random_weights(const Graph& g, Weight max_weight, Rng& rng) {
  LCS_REQUIRE(max_weight >= 1, "max_weight must be positive");
  EdgeWeights w(g.num_edges());
  for (auto& x : w)
    x = 1 + static_cast<Weight>(rng.uniform(static_cast<std::uint64_t>(max_weight)));
  return w;
}

EdgeWeights distinct_random_weights(const Graph& g, Rng& rng) {
  EdgeWeights w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) w[e] = static_cast<Weight>(e) + 1;
  rng.shuffle(w);
  return w;
}

Weight total_weight(WeightSpan w, const std::vector<EdgeId>& edges) {
  Weight total = 0;
  for (const EdgeId e : edges) {
    LCS_REQUIRE(e < w.size(), "edge id out of range");
    total += w[e];
  }
  return total;
}

}  // namespace lcs::graph
