// Graph families used by tests, examples and the experiment harnesses.
//
// The centerpiece is `hard_instance`, the Elkin/Lotker-style constant-
// diameter family: many long vertex-disjoint paths (the parts) whose only
// low-diameter interconnection is a shallow hub tree.  On this family the
// trivial and Ghaffari–Haeupler constructions pay ~sqrt(n) while the
// Kogan–Parter construction pays ~k_D = n^((D-2)/(2D-2)).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "util/rng.hpp"

namespace lcs::graph {

Graph path_graph(std::uint32_t n);
Graph cycle_graph(std::uint32_t n);
Graph complete_graph(std::uint32_t n);
Graph star_graph(std::uint32_t n);  ///< vertex 0 is the hub
Graph grid_graph(std::uint32_t rows, std::uint32_t cols);
/// Two cliques of `clique` vertices joined by a path of `path_len` edges.
Graph dumbbell_graph(std::uint32_t clique, std::uint32_t path_len);

/// G(n, p) Erdos–Renyi.
Graph erdos_renyi(std::uint32_t n, double p, Rng& rng);
/// Uniform random tree (random attachment).
Graph random_tree(std::uint32_t n, Rng& rng);
/// Connected G(n, m): random spanning tree plus (m - n + 1) random extras.
Graph connected_gnm(std::uint32_t n, std::uint32_t m, Rng& rng);

/// Preferential attachment (Barabasi–Albert style): each new vertex
/// attaches `edges_per_vertex` edges to existing vertices chosen with
/// probability proportional to degree.  These are the "six degrees of
/// separation" networks the paper's introduction motivates: diameter
/// O(log n / log log n), heavy-tailed degrees.  Requires n > seed size.
Graph preferential_attachment(std::uint32_t n, std::uint32_t edges_per_vertex, Rng& rng);

/// Road-network-like graph: a sparse near-planar grid of ~sqrt(n) rows.
/// All horizontal edges plus the column-0 verticals form a guaranteed
/// spanning spine; the remaining verticals are kept with probability 0.7
/// and diagonals appear with probability 0.1.  Connected, average degree
/// ~3 — the profile the point-to-point routing workload targets.
Graph road_network(std::uint32_t n, Rng& rng);

/// Public-transit-like graph: `lines` chained stop sequences, each attached
/// to the already-built network at a random interchange stop (and sometimes
/// looped back at its far end), plus occasional cross-line transfer edges.
/// Connected by construction.
Graph transit_network(std::uint32_t n, std::uint32_t lines, Rng& rng);

/// Random connected graph with diameter exactly `diameter`: vertices are
/// spread over `diameter + 1` layers (two singleton end layers), and each
/// vertex connects to >= 1 vertex of the previous layer plus ~avg_extra
/// random same/adjacent-layer edges.  Distance between the two singleton
/// ends is exactly `diameter`.
Graph layered_random_graph(std::uint32_t n, std::uint32_t diameter, double avg_extra,
                           Rng& rng);

/// The hard instance family.
struct HardInstance {
  Graph g;
  Partition paths;           ///< the parts: P vertex-disjoint paths
  std::uint32_t diameter = 0;    ///< exact unweighted diameter (== requested D)
  std::uint32_t path_length = 0; ///< vertices per path (L)
  std::uint32_t num_paths = 0;   ///< P
  std::uint32_t tree_nodes = 0;  ///< size of the hub structure
};

/// Build a hard instance with ~n vertices and diameter exactly D >= 3.
/// Paths have length ~sqrt(n); a hub tree of depth (D-2)/2 (even D) or a
/// two-root hub forest of depth (D-3)/2 (odd D) attaches to every column.
HardInstance hard_instance(std::uint32_t n, std::uint32_t diameter);

// --- odd-diameter support (Section 3.2 of the paper) -----------------------

/// Subdivision of every edge by a fresh dummy vertex x_e = n + e.
struct Subdivision {
  Graph g2;  ///< 2D'-diameter graph on n + m vertices
  /// For each original edge e: the two g2 edge ids (u, x_e) and (x_e, v).
  std::vector<EdgeId> half_a;
  std::vector<EdgeId> half_b;
  /// For each g2 edge: the original edge it derives from.
  std::vector<EdgeId> original;

  VertexId dummy_of(EdgeId original_edge, std::uint32_t n) const {
    return n + original_edge;
  }
};
Subdivision subdivide(const Graph& g);

}  // namespace lcs::graph
