#include "graph/union_find.hpp"

namespace lcs::graph {

UnionFind::UnionFind(std::uint32_t n)
    : parent_(n), rank_(n, 0), size_(n, 1), num_sets_(n) {
  for (std::uint32_t i = 0; i < n; ++i) parent_[i] = i;
}

VertexId UnionFind::find(VertexId x) {
  LCS_REQUIRE(x < parent_.size(), "element out of range");
  VertexId root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    const VertexId next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::unite(VertexId a, VertexId b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = a;
  size_[a] += size_[b];
  if (rank_[a] == rank_[b]) ++rank_[a];
  --num_sets_;
  return true;
}

std::uint32_t UnionFind::set_size(VertexId x) { return size_[find(x)]; }

}  // namespace lcs::graph
