// Minimum cut: exact references and the tree-packing approximation that
// backs Corollary 1.2's (1+eps) min-cut claim.
//
// The distributed (1+eps) algorithm the paper cites ([Gha17, Thm 7.6.1],
// following Karger) packs O(log n) spanning trees and finds the best cut
// that 2-respects one of them; every tree computation and aggregation is a
// shortcut-accelerated MST-like step.  We implement the packing with
// 1-respecting cuts (ratio <= 2 in theory, ~1 in practice on these
// families; see DESIGN.md §4) and account rounds as #trees x MST rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/weighted.hpp"
#include "util/rng.hpp"

namespace lcs::mincut {

using graph::EdgeId;
using graph::EdgeWeights;
using graph::WeightSpan;
using graph::Graph;
using graph::VertexId;
using graph::Weight;

struct CutResult {
  Weight value = 0;
  /// Vertices on one side of the cut (the smaller side).
  std::vector<VertexId> side;
};

/// Exact global minimum cut (Stoer–Wagner).  O(n^3); use n <= ~500.
/// Requires a connected graph with >= 2 vertices and positive weights.
/// The dense adjacency build fans out over edges; the per-phase scans stay
/// sequential — at referee sizes a scan step is less work than a pool
/// dispatch (a parallelized sweep measured ~5x slower at 8 threads).
CutResult stoer_wagner(const Graph& g, WeightSpan w);

/// Karger's randomized contraction, `trials` independent repetitions.
/// Weighted sampling via exponential clocks.  Monte Carlo: result is an
/// upper bound that equals the min cut w.h.p. for trials = Omega(n^2 log n).
/// Trials run concurrently on counter-based RNG streams (one draw of `rng`
/// seeds the family; trial t uses split(t)), so the result is independent of
/// thread count and scheduling.  Callable at top level (trials fan out on
/// the pool) or inside a parallel_tasks task (trials serialize, same bytes);
/// plain parallel_for bodies must not call it.
CutResult karger_mincut(const Graph& g, WeightSpan w, std::uint32_t trials,
                        Rng& rng);

struct TreePackingResult {
  CutResult cut;
  std::uint32_t num_trees = 0;
  /// Index of the tree (and its edge) realising the best 1-respecting cut.
  std::uint32_t best_tree = 0;
};

/// Greedy spanning-tree packing + minimum 1-respecting cut per tree.
/// `num_trees = 0` selects ceil(3 ln n) trees.
TreePackingResult tree_packing_mincut(const Graph& g, WeightSpan w,
                                      std::uint32_t num_trees = 0);

/// Karger's sampling estimator — the (1±eps) mechanism behind the
/// corollary's epsilon dependence: sample each unit of capacity with
/// probability p = min(1, c·ln n / (eps^2 · lambda_hat)) (lambda_hat from a
/// quick tree packing), find the skeleton's minimum cut, rescale by 1/p.
/// Monte Carlo: the returned *side* realises a (1+eps)-near-minimum cut of
/// G w.h.p.; `value` is that side's exact cut value in G.  The binomial
/// thinning draws one O(1) Binomial(w[e], p) per edge on a counter-based
/// per-edge stream seeded by a single `rng` draw, so the skeleton is
/// parallel and scheduling-independent (draw semantics changed from the
/// seed's one-bernoulli-per-capacity-unit sequential loop).
struct SparsifiedResult {
  CutResult cut;          ///< side + exact value in G
  double sample_prob = 1.0;
  Weight skeleton_cut = 0;  ///< the (unscaled) cut value in the skeleton
};
SparsifiedResult sparsified_mincut(const Graph& g, WeightSpan w, double eps,
                                   Rng& rng);

/// The reusable sampling phase of sparsified_mincut: per-edge thinned
/// capacities (units[e] ~ Binomial(w[e], p)).  A pure function of
/// (g, w, eps, seed) — the artifact the snapshot cache shares across
/// queries that agree on (seed, eps).
struct SparsifiedSample {
  double sample_prob = 1.0;
  std::vector<Weight> units;  ///< thinned capacity per edge of g
};
SparsifiedSample sparsify_edges(const Graph& g, WeightSpan w, double eps,
                                std::uint64_t seed);

/// The solve phase: skeleton assembly + Stoer–Wagner on the sample.
/// sparsified_mincut(g, w, eps, rng) is exactly this over the rng-seeded
/// sample, with the pre-existing draw semantics: rng advances once, only
/// when the computed sample_prob is < 1 (a p >= 1 or throwing call
/// consumes no state).
SparsifiedResult sparsified_mincut_on_sample(const Graph& g, WeightSpan w,
                                             const SparsifiedSample& sample);

/// Cut value of a vertex subset (sum of crossing edge weights).
Weight cut_value(const Graph& g, WeightSpan w, const std::vector<VertexId>& side);

}  // namespace lcs::mincut
