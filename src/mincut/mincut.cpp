#include "mincut/mincut.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/algorithms.hpp"
#include "graph/union_find.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/parallel.hpp"

namespace lcs::mincut {

Weight cut_value(const Graph& g, WeightSpan w, const std::vector<VertexId>& side) {
  LCS_REQUIRE(w.size() == g.num_edges(), "weights do not match graph");
  std::vector<bool> in_side(g.num_vertices(), false);
  for (const VertexId v : side) {
    LCS_REQUIRE(v < g.num_vertices(), "vertex out of range");
    in_side[v] = true;
  }
  Weight total = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::Edge ed = g.edge(e);
    if (in_side[ed.u] != in_side[ed.v]) total += w[e];
  }
  return total;
}

CutResult stoer_wagner(const Graph& g, WeightSpan w) {
  const std::uint32_t n = g.num_vertices();
  LCS_REQUIRE(n >= 2, "min cut needs at least two vertices");
  LCS_REQUIRE(graph::is_connected(g), "min cut of a disconnected graph is zero");
  for (const Weight x : w) LCS_REQUIRE(x > 0, "weights must be positive");

  // Dense adjacency over supernodes; merged[i] lists the original vertices.
  // Edges are unique after from_edges' dedup, so every edge owns its two
  // cells and the build fans out with one pool dispatch for all of them.
  std::vector<std::vector<Weight>> a(n, std::vector<Weight>(n, 0));
  parallel_for_or_serial(0, g.num_edges(), default_grain(g.num_edges(), 2048),
                         [&](std::size_t e) {
                           const graph::Edge ed = g.edge(static_cast<EdgeId>(e));
                           a[ed.u][ed.v] += w[e];
                           a[ed.v][ed.u] += w[e];
                         });
  std::vector<std::vector<VertexId>> merged(n);
  for (VertexId v = 0; v < n; ++v) merged[v] = {v};
  std::vector<bool> gone(n, false);

  CutResult best;
  best.value = std::numeric_limits<Weight>::max();
  for (std::uint32_t phase = 0; phase + 1 < n; ++phase) {
    // Maximum adjacency (minimum cut phase) sweep — deliberately
    // sequential.  A step scans at most n <= ~500 supernodes (the O(n^3)
    // referee caps usable n), far less work than the two pool dispatches a
    // parallelized step would pay; the parallel_reduce variant measured
    // ~5x *slower* at 8 threads on the S2 scenario (sw_n=400).  Byte flags
    // instead of vector<bool> bits keep the inner loops branch-cheap.
    std::vector<Weight> key(n, 0);
    std::vector<std::uint8_t> in_a(n, 0);
    VertexId prev = graph::kNoVertex;
    VertexId last = graph::kNoVertex;
    for (std::uint32_t step = 0; step + phase < n; ++step) {
      VertexId sel = graph::kNoVertex;
      for (VertexId v = 0; v < n; ++v) {
        if (gone[v] || in_a[v]) continue;
        if (sel == graph::kNoVertex || key[v] > key[sel]) sel = v;
      }
      LCS_CHECK(sel != graph::kNoVertex, "sweep ran out of vertices");
      in_a[sel] = 1;
      prev = last;
      last = sel;
      const std::vector<Weight>& row = a[sel];
      for (VertexId v = 0; v < n; ++v)
        if (!gone[v] && !in_a[v]) key[v] += row[v];
    }
    // Cut-of-the-phase: `last` versus the rest.
    const Weight phase_cut = key[last];
    if (phase_cut < best.value) {
      best.value = phase_cut;
      best.side = merged[last];
    }
    // Merge `last` into `prev`.
    LCS_CHECK(prev != graph::kNoVertex, "phase needs two vertices");
    gone[last] = true;
    merged[prev].insert(merged[prev].end(), merged[last].begin(), merged[last].end());
    for (VertexId v = 0; v < n; ++v) {
      if (gone[v] || v == prev) continue;
      a[prev][v] += a[last][v];
      a[v][prev] = a[prev][v];
    }
  }
  if (best.side.size() > g.num_vertices() / 2) {
    // Report the smaller side for readability.
    std::vector<bool> in_side(n, false);
    for (const VertexId v : best.side) in_side[v] = true;
    std::vector<VertexId> other;
    for (VertexId v = 0; v < n; ++v)
      if (!in_side[v]) other.push_back(v);
    best.side = std::move(other);
  }
  std::sort(best.side.begin(), best.side.end());
  return best;
}

namespace {

CutResult contract_once(const Graph& g, WeightSpan w, const Rng& rng) {
  const std::uint32_t n = g.num_vertices();
  // Exponential-clock keys give weighted sampling without replacement.  The
  // key of edge e is a pure function of (rng's construction seed, e) — a
  // counter-based per-edge stream — so the keying loop can fan out over
  // edges (it serializes when this trial already runs inside the parallel
  // trial loop of karger_mincut), and the non-zero uniform draw keeps
  // -log(u) finite without the clamping that could collide parallel trials
  // on identical keys.
  std::vector<std::pair<double, EdgeId>> order(g.num_edges());
  parallel_for_or_serial(0, g.num_edges(), default_grain(g.num_edges(), 1024),
                         [&](std::size_t e) {
                           Rng stream = rng.split(e);
                           const double u = stream.uniform_real_positive();
                           order[e] = {-std::log(u) / static_cast<double>(w[e]),
                                       static_cast<EdgeId>(e)};
                         });
  parallel_sort(order.begin(), order.end());
  graph::UnionFind uf(n);
  for (const auto& [key, e] : order) {
    (void)key;
    if (uf.num_sets() == 2) break;
    const graph::Edge ed = g.edge(e);
    uf.unite(ed.u, ed.v);
  }
  CutResult out;
  const VertexId root0 = uf.find(0);
  for (VertexId v = 0; v < n; ++v)
    if (uf.find(v) == root0) out.side.push_back(v);
  out.value = cut_value(g, w, out.side);
  return out;
}

}  // namespace

CutResult karger_mincut(const Graph& g, WeightSpan w, std::uint32_t trials,
                        Rng& rng) {
  LCS_REQUIRE(g.num_vertices() >= 2, "min cut needs at least two vertices");
  LCS_REQUIRE(trials >= 1, "need at least one trial");
  // One state-advancing draw seeds a counter-based trial family: trial t
  // contracts with base.split(t), so every trial's randomness is independent
  // of scheduling and thread count, while successive calls on the same
  // generator still see fresh randomness.
  const Rng base(rng());
  std::vector<CutResult> results(trials);
  parallel_for(0, trials, 1,
               [&](std::size_t t) { results[t] = contract_once(g, w, base.split(t)); });
  // Earliest best trial wins, matching the sequential scan's strict '<'.
  std::size_t best = 0;
  for (std::size_t t = 1; t < trials; ++t)
    if (results[t].value < results[best].value) best = t;
  CutResult out = std::move(results[best]);
  std::sort(out.side.begin(), out.side.end());
  return out;
}

namespace {

/// Minimum spanning tree keyed by per-edge load (greedy packing step).
std::vector<EdgeId> load_mst(const Graph& g, const std::vector<double>& load) {
  std::vector<EdgeId> order(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) order[e] = e;
  parallel_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return std::make_pair(load[a], a) < std::make_pair(load[b], b);
  });
  graph::UnionFind uf(g.num_vertices());
  std::vector<EdgeId> tree;
  for (const EdgeId e : order) {
    const graph::Edge ed = g.edge(e);
    if (uf.unite(ed.u, ed.v)) tree.push_back(e);
  }
  return tree;
}

struct RootedForest {
  std::vector<VertexId> parent;
  std::vector<std::uint32_t> depth;
  std::vector<VertexId> bfs_order;  // root first
};

RootedForest root_tree(const Graph& g, const std::vector<EdgeId>& tree_edges) {
  // Adjacency restricted to the tree.
  std::vector<std::vector<VertexId>> adj(g.num_vertices());
  for (const EdgeId e : tree_edges) {
    const graph::Edge ed = g.edge(e);
    adj[ed.u].push_back(ed.v);
    adj[ed.v].push_back(ed.u);
  }
  RootedForest f;
  f.parent.assign(g.num_vertices(), graph::kNoVertex);
  f.depth.assign(g.num_vertices(), 0);
  std::vector<bool> seen(g.num_vertices(), false);
  seen[0] = true;
  f.bfs_order.push_back(0);
  for (std::size_t head = 0; head < f.bfs_order.size(); ++head) {
    const VertexId u = f.bfs_order[head];
    for (const VertexId v : adj[u]) {
      if (seen[v]) continue;
      seen[v] = true;
      f.parent[v] = u;
      f.depth[v] = f.depth[u] + 1;
      f.bfs_order.push_back(v);
    }
  }
  return f;
}

VertexId lca_walk(const RootedForest& f, VertexId a, VertexId b) {
  while (a != b) {
    if (f.depth[a] < f.depth[b]) std::swap(a, b);
    a = f.parent[a];
  }
  return a;
}

}  // namespace

TreePackingResult tree_packing_mincut(const Graph& g, WeightSpan w,
                                      std::uint32_t num_trees) {
  const std::uint32_t n = g.num_vertices();
  LCS_REQUIRE(n >= 2, "min cut needs at least two vertices");
  LCS_REQUIRE(graph::is_connected(g), "tree packing requires a connected graph");
  if (num_trees == 0)
    num_trees = static_cast<std::uint32_t>(std::ceil(3.0 * ln_clamped(n)));

  TreePackingResult out;
  out.num_trees = num_trees;
  out.cut.value = std::numeric_limits<Weight>::max();

  std::vector<double> load(g.num_edges(), 0.0);
  std::vector<Weight> wdeg(n, 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::Edge ed = g.edge(e);
    wdeg[ed.u] += w[e];
    wdeg[ed.v] += w[e];
  }

  for (std::uint32_t t = 0; t < num_trees; ++t) {
    const std::vector<EdgeId> tree = load_mst(g, load);
    LCS_CHECK(tree.size() + 1 == n, "packing tree is not spanning");
    for (const EdgeId e : tree) load[e] += 1.0 / static_cast<double>(w[e]);

    const RootedForest f = root_tree(g, tree);
    // crossing(subtree(v)) = sum_{x in sub} wdeg(x) - 2 * sum_{x in sub} P(x),
    // with P(x) = total weight of edges whose tree-LCA is x.
    std::vector<Weight> val(n);
    for (VertexId v = 0; v < n; ++v) val[v] = wdeg[v];
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const graph::Edge ed = g.edge(e);
      val[lca_walk(f, ed.u, ed.v)] -= 2 * w[e];
    }
    // Accumulate bottom-up (reverse BFS order).
    std::vector<Weight> sub = val;
    for (auto it = f.bfs_order.rbegin(); it != f.bfs_order.rend(); ++it) {
      const VertexId v = *it;
      if (f.parent[v] != graph::kNoVertex) sub[f.parent[v]] += sub[v];
    }
    for (VertexId v = 1; v < n; ++v) {  // every non-root subtree = 1-respecting cut
      if (sub[v] < out.cut.value) {
        out.cut.value = sub[v];
        out.best_tree = t;
        // Collect the subtree of v.
        out.cut.side.clear();
        std::vector<VertexId> stack{v};
        std::vector<std::vector<VertexId>> kids(n);
        for (VertexId x = 0; x < n; ++x)
          if (f.parent[x] != graph::kNoVertex) kids[f.parent[x]].push_back(x);
        while (!stack.empty()) {
          const VertexId x = stack.back();
          stack.pop_back();
          out.cut.side.push_back(x);
          for (const VertexId c : kids[x]) stack.push_back(c);
        }
      }
    }
  }
  std::sort(out.cut.side.begin(), out.cut.side.end());
  if (out.cut.side.size() > n / 2) {
    std::vector<bool> in_side(n, false);
    for (const VertexId v : out.cut.side) in_side[v] = true;
    std::vector<VertexId> other;
    for (VertexId v = 0; v < n; ++v)
      if (!in_side[v]) other.push_back(v);
    out.cut.side = std::move(other);
  }
  return out;
}

namespace {

// Shared body of the two sparsify entry points.  `seed_of` is consulted
// only when sample_prob < 1 and only after the validity checks, so the
// rng-driven wrapper preserves the pre-refactor draw semantics exactly:
// no state is consumed on a throwing call or in the p >= 1 regime.
template <typename SeedFn>
SparsifiedSample sparsify_edges_impl(const Graph& g, WeightSpan w, double eps,
                                     SeedFn&& seed_of) {
  LCS_REQUIRE(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
  LCS_REQUIRE(graph::is_connected(g), "min cut of a disconnected graph is zero");
  const std::uint32_t n = g.num_vertices();

  // Cheap 2-approximate lambda from a small tree packing.
  const Weight lambda_hat = tree_packing_mincut(g, w, 3).cut.value;
  LCS_REQUIRE(lambda_hat > 0, "lambda estimate must be positive");

  SparsifiedSample out;
  const double c = 3.0;
  out.sample_prob =
      std::min(1.0, c * ln_clamped(n) / (eps * eps * static_cast<double>(lambda_hat)));

  // Skeleton sample: binomial thinning of each edge's capacity (w[e] unit
  // trials at probability p); multigraph multiplicities become skeleton
  // weights.  The seed keys a counter-based per-edge family (the same
  // keying as Karger's trials): edge e thins all its units with a single
  // O(1) binomial draw on base.split(e), so the loop fans out over edges
  // and the kept sample is a pure function of (g, w, eps, seed) —
  // independent of thread count and scheduling, shareable across callers.
  out.units.assign(g.num_edges(), 0);
  if (out.sample_prob >= 1.0) {
    out.units.assign(w.begin(), w.end());
  } else {
    const Rng base(seed_of());
    parallel_for_or_serial(0, g.num_edges(), default_grain(g.num_edges(), 2048),
                           [&](std::size_t e) {
                             Rng stream = base.split(e);
                             out.units[e] = static_cast<Weight>(stream.binomial(
                                 static_cast<std::uint64_t>(w[e]), out.sample_prob));
                           });
  }
  return out;
}

}  // namespace

SparsifiedSample sparsify_edges(const Graph& g, WeightSpan w, double eps,
                                std::uint64_t seed) {
  return sparsify_edges_impl(g, w, eps, [seed] { return seed; });
}

SparsifiedResult sparsified_mincut(const Graph& g, WeightSpan w, double eps,
                                   Rng& rng) {
  return sparsified_mincut_on_sample(g, w,
                                     sparsify_edges_impl(g, w, eps, [&] { return rng(); }));
}

SparsifiedResult sparsified_mincut_on_sample(const Graph& g, WeightSpan w,
                                             const SparsifiedSample& sample) {
  LCS_REQUIRE(sample.units.size() == g.num_edges(),
              "sample does not match the graph's edge count");
  const std::uint32_t n = g.num_vertices();
  const std::vector<Weight>& units = sample.units;
  SparsifiedResult out;
  out.sample_prob = sample.sample_prob;
  std::vector<std::pair<graph::VertexId, graph::VertexId>> kept_edges;
  std::vector<Weight> kept_weight;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (units[e] > 0) {
      kept_edges.emplace_back(g.edge(e).u, g.edge(e).v);
      kept_weight.push_back(units[e]);
    }
  }
  const Graph skeleton = Graph::from_edges(n, kept_edges);
  // from_edges may merge nothing here (inputs are already unique edges),
  // but keep the mapping robust by re-accumulating weights by endpoints.
  EdgeWeights sw(skeleton.num_edges(), 0);
  for (std::size_t i = 0; i < kept_edges.size(); ++i) {
    // Find the skeleton edge id by scanning the (sorted) edge list via
    // binary search on endpoints.
    const auto [a, b] = kept_edges[i];
    const graph::VertexId u = std::min(a, b);
    const graph::VertexId v = std::max(a, b);
    // Skeleton edges are sorted by (u, v): binary search.
    std::uint32_t lo = 0, hi = skeleton.num_edges();
    while (lo < hi) {
      const std::uint32_t mid = (lo + hi) / 2;
      const graph::Edge ed = skeleton.edge(mid);
      if (std::make_pair(ed.u, ed.v) < std::make_pair(u, v))
        lo = mid + 1;
      else
        hi = mid;
    }
    LCS_CHECK(lo < skeleton.num_edges(), "skeleton edge lookup failed");
    sw[lo] += kept_weight[i];
  }

  if (!graph::is_connected(skeleton)) {
    // Over-aggressive sampling disconnected the skeleton (possible at tiny
    // lambda); fall back to the full graph.
    out.cut = stoer_wagner(g, w);
    out.sample_prob = 1.0;
    out.skeleton_cut = out.cut.value;
    return out;
  }
  const CutResult sk_cut = stoer_wagner(skeleton, sw);
  out.skeleton_cut = sk_cut.value;
  // The *side* transfers to G; report its exact value there.
  out.cut.side = sk_cut.side;
  out.cut.value = cut_value(g, w, out.cut.side);
  return out;
}

}  // namespace lcs::mincut
