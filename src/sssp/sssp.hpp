// Single-source shortest paths: Dijkstra reference, the distributed
// Bellman–Ford (exact, hop-bounded rounds), and the shortcut-flavoured
// approximate SSSP *tree* of Corollary 4.2.
//
// Corollary 4.2 plugs the shortcut quality into Haeupler–Li; reproducing
// that machinery verbatim is out of scope (DESIGN.md §4), so the
// approximate tree here is a landmark/overlay construction whose round
// cost is dominated by shortcut-style aggregations, and whose achieved
// stretch is *measured* rather than asserted.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/weighted.hpp"
#include "util/rng.hpp"

namespace lcs::sssp {

using graph::EdgeId;
using graph::EdgeWeights;
using graph::WeightSpan;
using graph::Graph;
using graph::VertexId;
using graph::Weight;

inline constexpr std::uint64_t kInfDist = static_cast<std::uint64_t>(-1);

struct SsspResult {
  std::vector<std::uint64_t> dist;   ///< kInfDist when unreachable
  std::vector<VertexId> parent;
  std::vector<EdgeId> parent_edge;
};

/// Centralized Dijkstra (binary heap).  Non-negative weights.
SsspResult dijkstra(const Graph& g, WeightSpan w, VertexId source);

/// Distributed Bellman–Ford on the CONGEST simulator: exact distances,
/// round count = hop radius of the shortest-path tree.
struct DistributedSsspResult {
  SsspResult sssp;
  std::uint32_t rounds = 0;
  std::uint64_t messages = 0;
};
DistributedSsspResult distributed_bellman_ford(const Graph& g, WeightSpan w,
                                               VertexId source);

/// Landmark-overlay approximate SSSP tree.
struct ApproxTreeOptions {
  std::uint32_t num_landmarks = 0;  ///< 0 = ceil(sqrt(n))
  std::uint64_t seed = 1;
  /// Run the concurrent landmark Bellman–Ford on the CONGEST simulator and
  /// report its measured rounds (in addition to the analytic charge).
  bool simulate = false;
};
struct ApproxTreeResult {
  std::vector<EdgeId> tree_edges;        ///< spanning tree of G
  std::vector<std::uint64_t> tree_dist;  ///< distance from source inside the tree
  double max_stretch = 0.0;              ///< max over v of tree_dist/dist
  double avg_stretch = 0.0;
  std::uint32_t num_landmarks = 0;
  /// Charged rounds: Voronoi growth (2x max hop radius) + landmark overlay
  /// aggregation (#landmarks, pipelined on a global tree).
  std::uint64_t rounds_charged = 0;
  /// Measured rounds of the simulated concurrent landmark growth (0 unless
  /// options.simulate).
  std::uint32_t rounds_simulated = 0;
  std::uint64_t messages_simulated = 0;
};
ApproxTreeResult approx_sssp_tree(const Graph& g, WeightSpan w, VertexId source,
                                  const ApproxTreeOptions& opt = {});

}  // namespace lcs::sssp
