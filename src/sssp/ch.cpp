#include "sssp/ch.hpp"

#include <algorithm>
#include <functional>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace lcs::sssp {

namespace {

// Min-heap over (dist, vertex); pair ordering breaks distance ties by vertex
// id, which is what makes settled counts deterministic across rebuilds.
using HeapItem = std::pair<std::uint64_t, graph::VertexId>;
using MinHeap = std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>>;

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return (a == kInfDist || b == kInfDist) ? kInfDist : a + b;
}

// ---------------------------------------------------------------------------
// Bidirectional Dijkstra over G (+ optional jump overlay)
// ---------------------------------------------------------------------------

PointToPointResult bidi_search(const Graph& g, WeightSpan w, const ShortcutOverlay* ov,
                               VertexId s, VertexId t) {
  const std::uint32_t n = g.num_vertices();
  LCS_REQUIRE(s < n && t < n, "vertex out of range");
  PointToPointResult out;
  if (s == t) {
    out.distance = 0;
    return out;
  }
  std::vector<std::uint64_t> dist[2] = {std::vector<std::uint64_t>(n, kInfDist),
                                        std::vector<std::uint64_t>(n, kInfDist)};
  MinHeap pq[2];
  dist[0][s] = 0;
  pq[0].push({0, s});
  dist[1][t] = 0;
  pq[1].push({0, t});
  std::uint64_t best = kInfDist;
  while (true) {
    const std::uint64_t top0 = pq[0].empty() ? kInfDist : pq[0].top().first;
    const std::uint64_t top1 = pq[1].empty() ? kInfDist : pq[1].top().first;
    if (sat_add(top0, top1) >= best) break;
    const int side = top0 <= top1 ? 0 : 1;
    const auto [d, v] = pq[side].top();
    pq[side].pop();
    if (d != dist[side][v]) continue;  // stale entry
    ++out.settled;
    if (dist[1 - side][v] != kInfDist) best = std::min(best, sat_add(d, dist[1 - side][v]));
    const auto relax = [&](VertexId u, std::uint64_t len) {
      const std::uint64_t nd = d + len;
      if (nd < dist[side][u]) {
        dist[side][u] = nd;
        pq[side].push({nd, u});
      }
      if (dist[1 - side][u] != kInfDist) best = std::min(best, sat_add(nd, dist[1 - side][u]));
    };
    for (const graph::HalfEdge he : g.neighbors(v)) {
      relax(he.to, static_cast<std::uint64_t>(w[he.edge]));
    }
    if (ov != nullptr) {
      for (std::uint64_t i = ov->offsets[v]; i < ov->offsets[v + 1]; ++i) {
        relax(ov->arcs[i].to, ov->arcs[i].len);
      }
    }
  }
  out.distance = best;
  return out;
}

// ---------------------------------------------------------------------------
// CH preprocessing
// ---------------------------------------------------------------------------

// One arc of the mutable contraction overlay.  `orig` marks arcs still
// representing an original edge of G at its own weight; shortcut insertion
// (or a shortcut undercutting a heavy direct edge) clears it.
struct OverlayArc {
  VertexId to = 0;
  std::uint64_t len = 0;
  bool orig = false;
};

// Per-vertex arc lists kept sorted by target id; symmetric (u->v iff v->u).
class ContractionOverlay {
 public:
  explicit ContractionOverlay(std::uint32_t n) : adj_(n) {}

  const std::vector<OverlayArc>& arcs(VertexId v) const { return adj_[v]; }

  void upsert(VertexId u, VertexId v, std::uint64_t len, bool orig) {
    auto& a = adj_[u];
    const auto it = std::lower_bound(
        a.begin(), a.end(), v, [](const OverlayArc& x, VertexId y) { return x.to < y; });
    if (it != a.end() && it->to == v) {
      if (len < it->len) {
        it->len = len;
        it->orig = orig;
      }
      return;
    }
    a.insert(it, OverlayArc{v, len, orig});
  }

  void erase(VertexId u, VertexId v) {
    auto& a = adj_[u];
    const auto it = std::lower_bound(
        a.begin(), a.end(), v, [](const OverlayArc& x, VertexId y) { return x.to < y; });
    if (it != a.end() && it->to == v) a.erase(it);
  }

  void clear(VertexId v) {
    std::vector<OverlayArc>().swap(adj_[v]);
  }

 private:
  std::vector<std::vector<OverlayArc>> adj_;
};

// Stamped scratch arrays for the (settle- and hop-limited) witness Dijkstra,
// reused across all witness runs of one build.
class WitnessSearch {
 public:
  explicit WitnessSearch(std::uint32_t n)
      : dist_(n, 0), hop_(n, 0), stamp_(n, 0) {}

  void run(const ContractionOverlay& ov, VertexId source, VertexId skip,
           std::uint64_t cutoff, const ChOptions& opt) {
    ++cur_;
    MinHeap pq;
    label(source, 0, 0);
    pq.push({0, source});
    std::uint32_t settled = 0;
    while (!pq.empty()) {
      const auto [d, v] = pq.top();
      pq.pop();
      if (d > dist_at(v)) continue;  // stale entry
      if (d > cutoff) break;
      if (++settled > opt.witness_settle_limit) break;
      const std::uint32_t h = hop_[v];
      if (opt.witness_hop_limit != 0 && h >= opt.witness_hop_limit) continue;
      for (const OverlayArc& arc : ov.arcs(v)) {
        if (arc.to == skip) continue;
        const std::uint64_t nd = d + arc.len;
        if (nd > cutoff) continue;
        if (nd < dist_at(arc.to)) {
          label(arc.to, nd, h + 1);
          pq.push({nd, arc.to});
        }
      }
    }
  }

  std::uint64_t dist_at(VertexId v) const {
    return stamp_[v] == cur_ ? dist_[v] : kInfDist;
  }

 private:
  void label(VertexId v, std::uint64_t d, std::uint32_t h) {
    dist_[v] = d;
    hop_[v] = h;
    stamp_[v] = cur_;
  }

  std::vector<std::uint64_t> dist_;
  std::vector<std::uint32_t> hop_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t cur_ = 0;
};

struct CandidateShortcut {
  VertexId a = 0;
  VertexId b = 0;
  std::uint64_t len = 0;
};

class ChBuilder {
 public:
  ChBuilder(const Graph& g, WeightSpan w, const ChOptions& opt)
      : opt_(opt),
        n_(g.num_vertices()),
        overlay_(n_),
        witness_(n_),
        deleted_neighbors_(n_, 0),
        contracted_(n_, 0),
        up_(n_) {
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const graph::Edge ed = g.edge(e);
      LCS_REQUIRE(w[e] >= 0, "negative edge weight");
      const auto len = static_cast<std::uint64_t>(w[e]);
      overlay_.upsert(ed.u, ed.v, len, /*orig=*/true);
      overlay_.upsert(ed.v, ed.u, len, /*orig=*/true);
    }
  }

  ChIndex build() {
    ChIndex out;
    out.n = n_;
    out.rank.assign(n_, 0);
    // Lazy-update priority queue: recompute on pop, re-insert if the fresh
    // priority no longer beats the queue head.  Ties break by vertex id, so
    // the contraction order is a pure function of (g, w, opt).
    using PrioItem = std::pair<std::int64_t, VertexId>;
    std::priority_queue<PrioItem, std::vector<PrioItem>, std::greater<>> queue;
    for (VertexId v = 0; v < n_; ++v) queue.push({priority(v), v});
    std::uint32_t next_rank = 0;
    while (!queue.empty()) {
      const auto [p, v] = queue.top();
      queue.pop();
      if (contracted_[v] != 0) continue;
      const std::int64_t fresh = priority(v);
      if (!queue.empty() && fresh > queue.top().first) {
        queue.push({fresh, v});
        continue;
      }
      contract(v);
      out.rank[v] = next_rank++;
    }
    LCS_CHECK(next_rank == n_, "contraction did not cover every vertex");
    // Assemble the canonical CSR: arcs grouped by owner, sorted by target
    // (the overlay lists were already target-sorted).
    out.up_offsets.assign(static_cast<std::size_t>(n_) + 1, 0);
    for (VertexId v = 0; v < n_; ++v) out.up_offsets[v + 1] = out.up_offsets[v] + up_[v].size();
    out.up_arcs.reserve(out.up_offsets[n_]);
    for (VertexId v = 0; v < n_; ++v) {
      out.up_arcs.insert(out.up_arcs.end(), up_[v].begin(), up_[v].end());
    }
    out.num_shortcuts = num_shortcuts_;
    return out;
  }

 private:
  // Witness-check every pair of current neighbours of `v`; count (and, when
  // `out` is non-null, record) the pairs whose only remaining shortest route
  // would run through `v`.
  std::uint32_t plan_shortcuts(VertexId v, std::vector<CandidateShortcut>* out) {
    const std::vector<OverlayArc>& nbrs = overlay_.arcs(v);
    std::uint32_t needed = 0;
    for (std::size_t i = 0; i + 1 < nbrs.size(); ++i) {
      const OverlayArc& a = nbrs[i];
      std::uint64_t max_b = 0;
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) max_b = std::max(max_b, nbrs[j].len);
      witness_.run(overlay_, a.to, v, a.len + max_b, opt_);
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        const OverlayArc& b = nbrs[j];
        const std::uint64_t via = a.len + b.len;
        if (witness_.dist_at(b.to) > via) {
          ++needed;
          if (out != nullptr) out->push_back({a.to, b.to, via});
        }
      }
    }
    return needed;
  }

  std::int64_t priority(VertexId v) {
    const auto deg = static_cast<std::int64_t>(overlay_.arcs(v).size());
    const auto needed = static_cast<std::int64_t>(plan_shortcuts(v, nullptr));
    return 2 * (needed - deg) + static_cast<std::int64_t>(deleted_neighbors_[v]);
  }

  void contract(VertexId v) {
    const std::vector<OverlayArc> nbrs = overlay_.arcs(v);  // copy: upserts below mutate
    up_[v].reserve(nbrs.size());
    for (const OverlayArc& a : nbrs) {
      up_[v].push_back(ChArc{a.to, a.len});
      if (!a.orig) ++num_shortcuts_;
    }
    std::vector<CandidateShortcut> plan;
    plan_shortcuts(v, &plan);
    for (const CandidateShortcut& c : plan) {
      overlay_.upsert(c.a, c.b, c.len, /*orig=*/false);
      overlay_.upsert(c.b, c.a, c.len, /*orig=*/false);
    }
    for (const OverlayArc& a : nbrs) {
      overlay_.erase(a.to, v);
      ++deleted_neighbors_[a.to];
    }
    overlay_.clear(v);
    contracted_[v] = 1;
  }

  const ChOptions opt_;
  std::uint32_t n_;
  ContractionOverlay overlay_;
  WitnessSearch witness_;
  std::vector<std::uint32_t> deleted_neighbors_;
  std::vector<std::uint8_t> contracted_;
  std::vector<std::vector<ChArc>> up_;
  std::uint64_t num_shortcuts_ = 0;
};

}  // namespace

PointToPointResult bidirectional_dijkstra(const Graph& g, WeightSpan w, VertexId s,
                                          VertexId t) {
  LCS_REQUIRE(w.size() == g.num_edges(), "weight array size mismatch");
  return bidi_search(g, w, nullptr, s, t);
}

ChIndex build_ch(const Graph& g, WeightSpan w, const ChOptions& opt) {
  LCS_REQUIRE(w.size() == g.num_edges(), "weight array size mismatch");
  return ChBuilder(g, w, opt).build();
}

PointToPointResult ch_query(const ChIndex& ch, VertexId s, VertexId t) {
  LCS_REQUIRE(s < ch.n && t < ch.n, "vertex out of range");
  PointToPointResult out;
  if (s == t) {
    out.distance = 0;
    return out;
  }
  // Sparse distance labels: a CH query settles a vanishing fraction of the
  // graph, so hash maps beat O(n) array initialization at every size the
  // bench sweeps.
  std::unordered_map<VertexId, std::uint64_t> dist[2];
  MinHeap pq[2];
  dist[0][s] = 0;
  pq[0].push({0, s});
  dist[1][t] = 0;
  pq[1].push({0, t});
  std::uint64_t best = kInfDist;
  while (true) {
    const std::uint64_t top0 = pq[0].empty() ? kInfDist : pq[0].top().first;
    const std::uint64_t top1 = pq[1].empty() ? kInfDist : pq[1].top().first;
    // Upward searches cannot stop at top0+top1 >= best (the meeting vertex
    // may sit above both endpoints); each direction runs until its own
    // frontier passes the best candidate.
    if (std::min(top0, top1) >= best) break;
    const int side = top0 <= top1 ? 0 : 1;
    const auto [d, v] = pq[side].top();
    pq[side].pop();
    const auto self = dist[side].find(v);
    if (self == dist[side].end() || d != self->second) continue;  // stale entry
    if (d >= best) continue;
    ++out.settled;
    const auto other = dist[1 - side].find(v);
    if (other != dist[1 - side].end()) best = std::min(best, sat_add(d, other->second));
    for (std::uint64_t i = ch.up_offsets[v]; i < ch.up_offsets[v + 1]; ++i) {
      const ChArc& arc = ch.up_arcs[i];
      const std::uint64_t nd = d + arc.len;
      const auto [it, fresh] = dist[side].try_emplace(arc.to, nd);
      if (!fresh) {
        if (nd >= it->second) continue;
        it->second = nd;
      }
      pq[side].push({nd, arc.to});
    }
  }
  out.distance = best;
  return out;
}

ShortcutOverlay build_shortcut_overlay(const Graph& g, WeightSpan w,
                                       const graph::Partition& parts,
                                       const core::ShortcutSet& sc) {
  LCS_REQUIRE(w.size() == g.num_edges(), "weight array size mismatch");
  LCS_REQUIRE(parts.parts.size() == sc.h.size(), "partition/shortcut part count mismatch");
  const std::uint32_t n = g.num_vertices();
  ShortcutOverlay out;
  out.n = n;
  std::vector<std::vector<ChArc>> per(n);
  for (std::size_t i = 0; i < parts.parts.size(); ++i) {
    const std::vector<VertexId>& part = parts.parts[i];
    if (part.size() < 2) continue;
    const VertexId leader = parts.leader(static_cast<std::uint32_t>(i));
    std::vector<VertexId> members = part;
    std::sort(members.begin(), members.end());
    // Dijkstra from the leader restricted to the augmented subgraph
    // G[S_i] ∪ H_i; every resulting distance is a genuine path length in G.
    std::unordered_map<VertexId, std::vector<std::pair<VertexId, std::uint64_t>>> adj;
    for (const graph::EdgeId e : core::augmented_edges(g, part, sc.h[i])) {
      const graph::Edge ed = g.edge(e);
      const auto len = static_cast<std::uint64_t>(w[e]);
      adj[ed.u].emplace_back(ed.v, len);
      adj[ed.v].emplace_back(ed.u, len);
    }
    std::unordered_map<VertexId, std::uint64_t> dist;
    MinHeap pq;
    dist[leader] = 0;
    pq.push({0, leader});
    while (!pq.empty()) {
      const auto [d, v] = pq.top();
      pq.pop();
      const auto self = dist.find(v);
      if (self == dist.end() || d != self->second) continue;
      const auto arcs = adj.find(v);
      if (arcs == adj.end()) continue;
      for (const auto& [u, len] : arcs->second) {
        const std::uint64_t nd = d + len;
        const auto [it, fresh] = dist.try_emplace(u, nd);
        if (!fresh) {
          if (nd >= it->second) continue;
          it->second = nd;
        }
        pq.push({nd, u});
      }
    }
    for (const auto& [v, d] : dist) {
      if (v == leader || d == kInfDist) continue;
      if (!std::binary_search(members.begin(), members.end(), v)) continue;
      per[leader].push_back(ChArc{v, d});
      per[v].push_back(ChArc{leader, d});
    }
  }
  out.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    std::sort(per[v].begin(), per[v].end(),
              [](const ChArc& a, const ChArc& b) { return a.to < b.to; });
    out.offsets[v + 1] = out.offsets[v] + per[v].size();
  }
  out.arcs.reserve(out.offsets[n]);
  for (VertexId v = 0; v < n; ++v) {
    out.arcs.insert(out.arcs.end(), per[v].begin(), per[v].end());
  }
  out.num_jumps = out.arcs.size();
  return out;
}

PointToPointResult assisted_query(const Graph& g, WeightSpan w,
                                  const ShortcutOverlay& overlay, VertexId s,
                                  VertexId t) {
  LCS_REQUIRE(w.size() == g.num_edges(), "weight array size mismatch");
  LCS_REQUIRE(overlay.n == g.num_vertices(), "overlay built for a different graph");
  return bidi_search(g, w, &overlay, s, t);
}

}  // namespace lcs::sssp
