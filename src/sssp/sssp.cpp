#include "sssp/sssp.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "congest/multibf.hpp"
#include "congest/programs.hpp"
#include "congest/simulator.hpp"
#include "graph/algorithms.hpp"
#include "util/check.hpp"

namespace lcs::sssp {

SsspResult dijkstra(const Graph& g, WeightSpan w, VertexId source) {
  LCS_REQUIRE(w.size() == g.num_edges(), "weights do not match graph");
  LCS_REQUIRE(source < g.num_vertices(), "source out of range");
  for (const Weight x : w) LCS_REQUIRE(x >= 0, "negative weights unsupported");

  SsspResult r;
  r.dist.assign(g.num_vertices(), kInfDist);
  r.parent.assign(g.num_vertices(), graph::kNoVertex);
  r.parent_edge.assign(g.num_vertices(), graph::kNoEdge);
  using Item = std::pair<std::uint64_t, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  r.dist[source] = 0;
  pq.emplace(0, source);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != r.dist[u]) continue;
    for (const graph::HalfEdge he : g.neighbors(u)) {
      const std::uint64_t cand = d + static_cast<std::uint64_t>(w[he.edge]);
      if (cand < r.dist[he.to]) {
        r.dist[he.to] = cand;
        r.parent[he.to] = u;
        r.parent_edge[he.to] = he.edge;
        pq.emplace(cand, he.to);
      }
    }
  }
  return r;
}

DistributedSsspResult distributed_bellman_ford(const Graph& g, WeightSpan w,
                                               VertexId source) {
  congest::BellmanFordProgram prog(g, w, source);
  congest::Simulator sim(g, 1);
  const congest::RunStats st = sim.run(prog, 4 * g.num_vertices() + 16);
  LCS_CHECK(st.completed, "Bellman-Ford did not quiesce");
  DistributedSsspResult out;
  out.rounds = st.rounds;
  out.messages = st.messages;
  out.sssp.dist = prog.dist();
  out.sssp.parent = prog.parent();
  out.sssp.parent_edge = prog.parent_edge();
  for (auto& d : out.sssp.dist)
    if (d == congest::BellmanFordProgram::kInf) d = kInfDist;
  return out;
}

ApproxTreeResult approx_sssp_tree(const Graph& g, WeightSpan w, VertexId source,
                                  const ApproxTreeOptions& opt) {
  const std::uint32_t n = g.num_vertices();
  LCS_REQUIRE(n >= 1, "empty graph");
  LCS_REQUIRE(graph::is_connected(g), "approx SSSP tree requires a connected graph");
  ApproxTreeResult out;
  std::uint32_t k = opt.num_landmarks;
  if (k == 0) k = static_cast<std::uint32_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  k = std::min(k, n);

  // Landmarks: the source plus k-1 random vertices.
  Rng rng(hash64(opt.seed ^ 0x55559ULL));
  std::vector<VertexId> landmarks{source};
  {
    std::vector<bool> chosen(n, false);
    chosen[source] = true;
    while (landmarks.size() < k) {
      const VertexId v = static_cast<VertexId>(rng.uniform(n));
      if (!chosen[v]) {
        chosen[v] = true;
        landmarks.push_back(v);
      }
    }
  }
  out.num_landmarks = static_cast<std::uint32_t>(landmarks.size());

  // Weighted Voronoi diagram: multi-source Dijkstra (virtual super-source).
  std::vector<std::uint64_t> vdist(n, kInfDist);
  std::vector<VertexId> vparent(n, graph::kNoVertex);
  std::vector<EdgeId> vparent_edge(n, graph::kNoEdge);
  std::vector<std::uint32_t> cell(n, graph::kUnreached);
  using Item = std::pair<std::uint64_t, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  for (std::uint32_t i = 0; i < landmarks.size(); ++i) {
    vdist[landmarks[i]] = 0;
    cell[landmarks[i]] = i;
    pq.emplace(0, landmarks[i]);
  }
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != vdist[u]) continue;
    for (const graph::HalfEdge he : g.neighbors(u)) {
      const std::uint64_t cand = d + static_cast<std::uint64_t>(w[he.edge]);
      if (cand < vdist[he.to]) {
        vdist[he.to] = cand;
        vparent[he.to] = u;
        vparent_edge[he.to] = he.edge;
        cell[he.to] = cell[u];
        pq.emplace(cand, he.to);
      }
    }
  }

  // Landmark overlay: for every G-edge crossing two cells, an overlay edge
  // of length vdist(u) + w(e) + vdist(v); Dijkstra from the source's cell.
  const std::uint32_t L = out.num_landmarks;
  struct OverlayEdge {
    std::uint32_t to;
    std::uint64_t len;
    EdgeId via;
  };
  std::vector<std::vector<OverlayEdge>> overlay(L);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::Edge ed = g.edge(e);
    const std::uint32_t ca = cell[ed.u];
    const std::uint32_t cb = cell[ed.v];
    if (ca == cb) continue;
    const std::uint64_t len = vdist[ed.u] + static_cast<std::uint64_t>(w[e]) + vdist[ed.v];
    overlay[ca].push_back({cb, len, e});
    overlay[cb].push_back({ca, len, e});
  }
  std::vector<std::uint64_t> odist(L, kInfDist);
  std::vector<EdgeId> ovia(L, graph::kNoEdge);  // realising G-edge toward the root cell
  std::priority_queue<Item, std::vector<Item>, std::greater<>> opq;
  odist[0] = 0;  // cell 0 = source's cell
  opq.emplace(0, 0);
  while (!opq.empty()) {
    const auto [d, c] = opq.top();
    opq.pop();
    if (d != odist[c]) continue;
    for (const OverlayEdge& oe : overlay[c]) {
      const std::uint64_t cand = d + oe.len;
      if (cand < odist[oe.to]) {
        odist[oe.to] = cand;
        ovia[oe.to] = oe.via;
        opq.emplace(cand, oe.to);
      }
    }
  }

  // Spanning tree: Voronoi forest + one realising edge per non-root cell.
  std::vector<bool> in_tree_edge(g.num_edges(), false);
  for (VertexId v = 0; v < n; ++v)
    if (vparent_edge[v] != graph::kNoEdge) in_tree_edge[vparent_edge[v]] = true;
  for (std::uint32_t c = 1; c < L; ++c) {
    LCS_CHECK(ovia[c] != graph::kNoEdge, "overlay is disconnected on a connected graph");
    in_tree_edge[ovia[c]] = true;
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (in_tree_edge[e]) out.tree_edges.push_back(e);
  LCS_CHECK(out.tree_edges.size() == n - 1, "overlay construction must yield a tree");

  // Distances inside the tree from the source.
  {
    std::vector<std::vector<graph::HalfEdge>> tadj(n);
    for (const EdgeId e : out.tree_edges) {
      const graph::Edge ed = g.edge(e);
      tadj[ed.u].push_back({ed.v, e});
      tadj[ed.v].push_back({ed.u, e});
    }
    out.tree_dist.assign(n, kInfDist);
    out.tree_dist[source] = 0;
    std::vector<VertexId> stack{source};
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (const graph::HalfEdge he : tadj[u]) {
        if (out.tree_dist[he.to] != kInfDist) continue;
        out.tree_dist[he.to] = out.tree_dist[u] + static_cast<std::uint64_t>(w[he.edge]);
        stack.push_back(he.to);
      }
    }
  }

  // Measured stretch against exact distances.
  const SsspResult exact = dijkstra(g, w, source);
  double sum = 0.0;
  std::uint32_t counted = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (v == source || exact.dist[v] == 0 || exact.dist[v] == kInfDist) continue;
    const double s = static_cast<double>(out.tree_dist[v]) / static_cast<double>(exact.dist[v]);
    out.max_stretch = std::max(out.max_stretch, s);
    sum += s;
    ++counted;
  }
  out.avg_stretch = counted > 0 ? sum / counted : 1.0;

  // Round accounting: Voronoi growth = 2x max hop radius of the cells
  // (grow + confirm), overlay collection pipelined over a global BFS tree.
  std::uint32_t max_hops = 0;
  for (VertexId v = 0; v < n; ++v) {
    std::uint32_t hops = 0;
    VertexId cur = v;
    while (vparent[cur] != graph::kNoVertex) {
      cur = vparent[cur];
      ++hops;
    }
    max_hops = std::max(max_hops, hops);
  }
  out.rounds_charged = 2ULL * max_hops + L + graph::diameter_double_sweep(g);

  if (opt.simulate) {
    // The concurrent landmark growth, actually run on the simulator; its
    // per-landmark distances must reproduce the Voronoi diagram.
    congest::MultiBellmanFordProgram prog(g, w, landmarks);
    congest::Simulator sim(g, 1);
    const congest::RunStats st = sim.run(prog, 64 * n + 64);
    LCS_CHECK(st.completed, "landmark Bellman-Ford did not quiesce");
    out.rounds_simulated = st.rounds;
    out.messages_simulated = st.messages;
    for (VertexId v = 0; v < n; ++v) {
      std::uint64_t best = congest::MultiBellmanFordProgram::kInf;
      for (std::size_t i = 0; i < landmarks.size(); ++i)
        best = std::min(best, prog.dist_of(i, v));
      LCS_CHECK(best == vdist[v], "simulated Voronoi disagrees with oracle");
    }
  }
  return out;
}

}  // namespace lcs::sssp
