// Point-to-point s–t distance engines: plain bidirectional Dijkstra (the
// oracle), contraction hierarchies (preprocessing + bidirectional upward
// query), and a shortcut-assisted bidirectional search that overlays "jump"
// edges derived from the KP shortcut sets of Corollary 4.2.
//
// All three engines are exact: on every (graph, weights, s, t) they return
// byte-identical distances.  The CH witness search is settle- and
// hop-limited; hitting a limit errs toward inserting an extra shortcut,
// which can only add arcs whose length equals a true path length, so
// exactness is preserved.  Jump-overlay edges carry the shortest-path
// distance *inside* the augmented part subgraph G[S_i] ∪ H_i, which is
// always >= the true distance in G, so bidirectional Dijkstra over
// G + overlay also stays exact while meeting in the middle earlier.
//
// Everything here is deterministic in its inputs alone: ties are broken by
// vertex id, no RNG is consumed, and rebuilding an index from the same
// (graph, weights) yields identical vectors — which is what lets the CH
// index live in the snapshot artifact cache and serialize canonically.
#pragma once

#include <cstdint>
#include <vector>

#include "core/shortcut.hpp"
#include "graph/partition.hpp"
#include "sssp/sssp.hpp"

namespace lcs::sssp {

/// Result of one s–t query: exact distance (kInfDist when t is unreachable
/// from s) plus the number of settled heap pops, the work/latency telemetry
/// the bench scenarios compare across engines.
struct PointToPointResult {
  std::uint64_t distance = kInfDist;
  std::uint64_t settled = 0;
};

/// Plain bidirectional Dijkstra over G — the oracle engine.
PointToPointResult bidirectional_dijkstra(const Graph& g, WeightSpan w, VertexId s,
                                          VertexId t);

/// One upward arc of the hierarchy: `to` has strictly higher rank than the
/// arc's owner; `len` is a true shortest-path length in G.
struct ChArc {
  VertexId to = 0;
  std::uint64_t len = 0;

  bool operator==(const ChArc&) const = default;
};

struct ChOptions {
  /// Witness searches stop after settling this many vertices; exceeding the
  /// limit conservatively inserts the candidate shortcut.
  std::uint32_t witness_settle_limit = 64;
  /// Hop bound for witness paths (0 = unbounded).
  std::uint32_t witness_hop_limit = 16;
};

/// The preprocessed hierarchy: a contraction order (rank) and, per vertex,
/// the arcs to higher-ranked neighbours in CSR form.  Arcs are sorted by
/// (owner, to) so the structure is canonical for serialization.
struct ChIndex {
  std::uint32_t n = 0;
  std::vector<std::uint32_t> rank;        ///< rank[v] in [0, n), unique
  std::vector<std::uint64_t> up_offsets;  ///< size n+1
  std::vector<ChArc> up_arcs;             ///< grouped by owner, sorted by `to`
  std::uint64_t num_shortcuts = 0;        ///< arcs not present as edges of G

  bool operator==(const ChIndex&) const = default;
};

/// Contract all vertices in edge-difference order (lazy priority queue,
/// deleted-neighbour tiebreak, then vertex id), inserting witness-checked
/// shortcuts.  Deterministic in (g, w, opt).
ChIndex build_ch(const Graph& g, WeightSpan w, const ChOptions& opt = {});

/// Bidirectional upward search over the hierarchy.  Exact.
PointToPointResult ch_query(const ChIndex& ch, VertexId s, VertexId t);

/// Jump edges distilled from a KP shortcut assignment: for each part S_i
/// with leader u and every v in S_i reachable inside G[S_i] ∪ H_i, arcs
/// u<->v of length dist_{G[S_i] ∪ H_i}(u, v).  Stored CSR per vertex,
/// sorted by (owner, to).
struct ShortcutOverlay {
  std::uint32_t n = 0;
  std::vector<std::uint64_t> offsets;  ///< size n+1
  std::vector<ChArc> arcs;
  std::uint64_t num_jumps = 0;         ///< directed jump arc count (== arcs.size())
};

ShortcutOverlay build_shortcut_overlay(const Graph& g, WeightSpan w,
                                       const graph::Partition& parts,
                                       const core::ShortcutSet& sc);

/// Bidirectional Dijkstra over G plus the overlay's jump arcs.  Exact,
/// because every jump length is >= the true distance in G.
PointToPointResult assisted_query(const Graph& g, WeightSpan w,
                                  const ShortcutOverlay& overlay, VertexId s,
                                  VertexId t);

}  // namespace lcs::sssp
