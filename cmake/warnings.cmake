# Shared warning flags for every target in the tree (gcc and clang only;
# the project is not built with MSVC).
add_library(lcs_warnings INTERFACE)

target_compile_options(lcs_warnings INTERFACE
  -Wall
  -Wextra
  -Wpedantic
  -Wshadow
  -Wconversion
  -Wno-sign-conversion)

if(LCS_WERROR)
  target_compile_options(lcs_warnings INTERFACE -Werror)
endif()
