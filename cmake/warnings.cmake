# Shared warning flags for every target in the tree (gcc and clang only;
# the project is not built with MSVC).
add_library(lcs_warnings INTERFACE)

# -Werror=switch is unconditional (not gated on LCS_WERROR): a QueryKind
# enumerator missing from any kind switch must never compile, or a new kind
# could silently fall through dispatch/cost-class/wire code.
target_compile_options(lcs_warnings INTERFACE
  -Wall
  -Wextra
  -Wpedantic
  -Wshadow
  -Wconversion
  -Wno-sign-conversion
  -Werror=switch)

if(LCS_WERROR)
  target_compile_options(lcs_warnings INTERFACE -Werror)
endif()
