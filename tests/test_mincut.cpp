// Min-cut tests: Stoer–Wagner against brute force, Karger against
// Stoer–Wagner, tree packing ratio bounds (property sweeps), cut_value.
#include <gtest/gtest.h>

#include <limits>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "mincut/mincut.hpp"
#include "util/rng.hpp"

namespace lcs::mincut {
namespace {

Weight brute_force_mincut(const Graph& g, const EdgeWeights& w) {
  const std::uint32_t n = g.num_vertices();
  LCS_REQUIRE(n <= 16, "brute force limited");
  Weight best = std::numeric_limits<Weight>::max();
  // All proper bipartitions with vertex 0 on side A.
  for (std::uint32_t mask = 0; mask < (1u << (n - 1)); ++mask) {
    std::vector<VertexId> side{0};
    for (VertexId v = 1; v < n; ++v)
      if (mask & (1u << (v - 1))) side.push_back(v);
    if (side.size() == n) continue;
    best = std::min(best, cut_value(g, w, side));
  }
  return best;
}

TEST(CutValue, HandExample) {
  // cycle_graph(4) edges after canonical sorting:
  //   e0=(0,1), e1=(0,3), e2=(1,2), e3=(2,3).
  const Graph g = graph::cycle_graph(4);
  const EdgeWeights w{1, 2, 3, 4};
  EXPECT_EQ(cut_value(g, w, {0}), w[0] + w[1]);          // edges at vertex 0
  EXPECT_EQ(cut_value(g, w, {0, 1}), w[1] + w[2]);       // (0,3) and (1,2)
  EXPECT_EQ(cut_value(g, w, {}), 0);
}

TEST(StoerWagner, MatchesBruteForceUnweighted) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = graph::connected_gnm(10, 14 + trial % 10, rng);
    const EdgeWeights w(g.num_edges(), 1);
    EXPECT_EQ(stoer_wagner(g, w).value, brute_force_mincut(g, w)) << "trial " << trial;
  }
}

TEST(StoerWagner, MatchesBruteForceWeighted) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = graph::connected_gnm(9, 16, rng);
    const EdgeWeights w = graph::random_weights(g, 9, rng);
    EXPECT_EQ(stoer_wagner(g, w).value, brute_force_mincut(g, w)) << "trial " << trial;
  }
}

TEST(StoerWagner, SideRealizesValue) {
  Rng rng(3);
  const Graph g = graph::connected_gnm(30, 70, rng);
  const EdgeWeights w = graph::random_weights(g, 20, rng);
  const CutResult r = stoer_wagner(g, w);
  EXPECT_EQ(cut_value(g, w, r.side), r.value);
  EXPECT_GE(r.side.size(), 1u);
  EXPECT_LE(r.side.size(), g.num_vertices() / 2);
}

TEST(StoerWagner, KnownShapes) {
  // Cycle: min cut 2 (unweighted).  Path-of-cliques: the bridge.
  const Graph cyc = graph::cycle_graph(12);
  EXPECT_EQ(stoer_wagner(cyc, EdgeWeights(12, 1)).value, 2);
  const Graph bell = graph::dumbbell_graph(5, 4);
  EXPECT_EQ(stoer_wagner(bell, EdgeWeights(bell.num_edges(), 1)).value, 1);
  const Graph k6 = graph::complete_graph(6);
  EXPECT_EQ(stoer_wagner(k6, EdgeWeights(15, 1)).value, 5);
}

TEST(StoerWagner, RejectsBadInput) {
  const Graph g = graph::Graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(stoer_wagner(g, EdgeWeights(2, 1)), std::invalid_argument);
  const Graph p = graph::path_graph(3);
  EXPECT_THROW(stoer_wagner(p, EdgeWeights{1, 0}), std::invalid_argument);
}

class KargerTest : public ::testing::TestWithParam<int> {};

TEST_P(KargerTest, FindsMinCutWithEnoughTrials) {
  Rng rng(100 + GetParam());
  const Graph g = graph::connected_gnm(14, 30, rng);
  const EdgeWeights w = graph::random_weights(g, 6, rng);
  const Weight exact = stoer_wagner(g, w).value;
  Rng krng(GetParam());
  const CutResult kr = karger_mincut(g, w, 400, krng);
  EXPECT_EQ(kr.value, exact);
  EXPECT_EQ(cut_value(g, w, kr.side), kr.value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KargerTest, ::testing::Values(1, 2, 3, 4));

TEST(Karger, UpperBoundAlways) {
  Rng rng(5);
  const Graph g = graph::connected_gnm(20, 45, rng);
  const EdgeWeights w = graph::random_weights(g, 8, rng);
  const Weight exact = stoer_wagner(g, w).value;
  Rng krng(6);
  const CutResult kr = karger_mincut(g, w, 2, krng);  // too few trials
  EXPECT_GE(kr.value, exact);
}

class TreePackingTest : public ::testing::TestWithParam<int> {};

TEST_P(TreePackingTest, WithinFactorTwoOfExact) {
  Rng rng(200 + GetParam());
  const Graph g = graph::connected_gnm(40, 100 + 5 * GetParam(), rng);
  const EdgeWeights w = graph::random_weights(g, 10, rng);
  const Weight exact = stoer_wagner(g, w).value;
  const TreePackingResult tp = tree_packing_mincut(g, w);
  EXPECT_GE(tp.cut.value, exact);            // any cut is an upper bound
  EXPECT_LE(tp.cut.value, 2 * exact);        // 1-respecting guarantee
  EXPECT_EQ(cut_value(g, w, tp.cut.side), tp.cut.value);
}

INSTANTIATE_TEST_SUITE_P(Instances, TreePackingTest, ::testing::Values(0, 1, 2, 3, 4, 5));

TEST(TreePacking, ExactOnCycle) {
  const Graph g = graph::cycle_graph(16);
  const EdgeWeights w(16, 1);
  const TreePackingResult tp = tree_packing_mincut(g, w);
  EXPECT_EQ(tp.cut.value, 2);
}

TEST(TreePacking, FindsBridgeCut) {
  const Graph g = graph::dumbbell_graph(6, 3);
  const EdgeWeights w(g.num_edges(), 1);
  const TreePackingResult tp = tree_packing_mincut(g, w);
  EXPECT_EQ(tp.cut.value, 1);  // 1-respecting always nails bridges
}

TEST(TreePacking, TreeCountDefaultsToLogN) {
  Rng rng(7);
  const Graph g = graph::connected_gnm(50, 120, rng);
  const EdgeWeights w(g.num_edges(), 1);
  const TreePackingResult tp = tree_packing_mincut(g, w);
  EXPECT_GE(tp.num_trees, 10u);  // 3 ln 50 ~ 11.7
  EXPECT_LE(tp.num_trees, 14u);
  EXPECT_LT(tp.best_tree, tp.num_trees);
}

TEST(TreePacking, MoreTreesNeverWorse) {
  Rng rng(8);
  const Graph g = graph::connected_gnm(30, 80, rng);
  const EdgeWeights w = graph::random_weights(g, 5, rng);
  const Weight few = tree_packing_mincut(g, w, 1).cut.value;
  const Weight many = tree_packing_mincut(g, w, 12).cut.value;
  EXPECT_LE(many, few);
}

class SparsifiedTest : public ::testing::TestWithParam<int> {};

TEST_P(SparsifiedTest, NearMinimumWithinEpsilon) {
  Rng rng(400 + GetParam());
  const Graph g = graph::connected_gnm(48, 180, rng);
  const EdgeWeights w = graph::random_weights(g, 6, rng);
  const Weight exact = stoer_wagner(g, w).value;
  Rng srng(GetParam());
  const SparsifiedResult r = sparsified_mincut(g, w, 0.5, srng);
  EXPECT_GE(r.cut.value, exact);  // any cut upper-bounds the minimum
  // (1+eps)-near w.h.p.; allow slack 2x for the tiny-instance regime.
  EXPECT_LE(r.cut.value, 2 * exact + 2);
  EXPECT_EQ(cut_value(g, w, r.cut.side), r.cut.value);
  EXPECT_GT(r.sample_prob, 0.0);
  EXPECT_LE(r.sample_prob, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparsifiedTest, ::testing::Values(1, 2, 3, 4));

TEST(Sparsified, FullProbabilityIsExact) {
  // Small lambda + small eps forces p = 1: the skeleton is G itself.
  Rng rng(7);
  const Graph g = graph::cycle_graph(20);
  const EdgeWeights w(20, 1);
  const SparsifiedResult r = sparsified_mincut(g, w, 0.3, rng);
  EXPECT_DOUBLE_EQ(r.sample_prob, 1.0);
  EXPECT_EQ(r.cut.value, 2);
}

TEST(Sparsified, RejectsBadEps) {
  Rng rng(8);
  const Graph g = graph::cycle_graph(6);
  const EdgeWeights w(6, 1);
  EXPECT_THROW(sparsified_mincut(g, w, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(sparsified_mincut(g, w, 1.5, rng), std::invalid_argument);
}

TEST(Sparsified, HeavyGraphActuallySparsifies) {
  // Large capacities make lambda big, so p < 1 and the skeleton is thinner.
  Rng rng(9);
  const Graph g = graph::complete_graph(24);
  const EdgeWeights w(g.num_edges(), 50);
  Rng srng(10);
  const SparsifiedResult r = sparsified_mincut(g, w, 0.5, srng);
  EXPECT_LT(r.sample_prob, 1.0);
  const Weight exact = stoer_wagner(g, w).value;
  EXPECT_GE(r.cut.value, exact);
  EXPECT_LE(double(r.cut.value), 1.6 * double(exact));
}

TEST(TreePacking, WeightedBridgeDetected) {
  // Heavy cycle with one light chord structure: min cut is the two
  // lightest cycle edges.
  graph::GraphBuilder b(6);
  for (VertexId v = 0; v < 6; ++v) b.add_edge(v, (v + 1) % 6);
  const Graph g = std::move(b).build();
  EdgeWeights w{10, 10, 1, 10, 10, 1};
  const TreePackingResult tp = tree_packing_mincut(g, w);
  EXPECT_EQ(tp.cut.value, 2);
}

}  // namespace
}  // namespace lcs::mincut
