// Stress and edge-case tests for the deterministic thread-pool runtime:
// degenerate ranges, nesting rejection, exception propagation, thread-count
// resolution, and n=0 / n=1 graphs through every parallelized entry point.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "congest/programs.hpp"
#include "congest/simulator.hpp"
#include "core/kp.hpp"
#include "core/shortcut.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "graph/weighted.hpp"
#include "mincut/mincut.hpp"
#include "util/once_memo.hpp"
#include "util/parallel.hpp"

namespace lcs {
namespace {

/// Runs each test body at a fixed thread count, restoring the prior state.
class ParallelPoolTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = thread_override(); }
  void TearDown() override { set_num_threads(previous_); }

 private:
  unsigned previous_ = 0;
};

TEST_F(ParallelPoolTest, EmptyRangeRunsNothing) {
  for (const unsigned t : {1u, 4u}) {
    set_num_threads(t);
    std::atomic<int> calls{0};
    parallel_for(5, 5, 1, [&](std::size_t) { ++calls; });
    parallel_for(7, 3, 2, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
  }
}

TEST_F(ParallelPoolTest, GrainLargerThanRange) {
  for (const unsigned t : {1u, 4u}) {
    set_num_threads(t);
    std::vector<int> hits(10, 0);
    parallel_for(0, 10, 1000, [&](std::size_t i) { ++hits[i]; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
  }
}

TEST_F(ParallelPoolTest, EveryIndexExecutedExactlyOnce) {
  for (const unsigned t : {1u, 2u, 8u}) {
    set_num_threads(t);
    std::vector<int> hits(1000, 0);
    parallel_for(0, hits.size(), 7, [&](std::size_t i) { ++hits[i]; });
    for (const int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST_F(ParallelPoolTest, ZeroGrainRejected) {
  EXPECT_THROW(parallel_for(0, 4, 0, [](std::size_t) {}), std::invalid_argument);
}

TEST_F(ParallelPoolTest, NestedParallelForRejected) {
  for (const unsigned t : {1u, 4u}) {
    set_num_threads(t);
    EXPECT_THROW(parallel_for(0, 8, 1,
                              [&](std::size_t) {
                                parallel_for(0, 2, 1, [](std::size_t) {});
                              }),
                 std::invalid_argument);
    // The region flag is restored: a fresh top-level region still works.
    std::atomic<int> calls{0};
    parallel_for(0, 4, 1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 4);
  }
}

TEST_F(ParallelPoolTest, ParallelTasksComposeWithNestedEntryPoints) {
  // Inside a parallel_tasks task, the other entry points serialize inline
  // instead of throwing; results must equal plain top-level execution.
  std::vector<std::uint64_t> reference(6);
  for (std::size_t t = 0; t < reference.size(); ++t) {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < 100; ++i) sum += t * 1000 + i;
    reference[t] = sum;
  }
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_num_threads(threads);
    std::vector<std::uint64_t> got(reference.size(), 0);
    parallel_tasks(got.size(), [&](std::size_t t) {
      EXPECT_TRUE(in_parallel_task());
      EXPECT_TRUE(in_parallel_region());
      got[t] = parallel_reduce<std::uint64_t>(
          0, 100, 7, 0,
          [&](std::size_t b, std::size_t e) {
            std::uint64_t s = 0;
            for (std::size_t i = b; i < e; ++i) s += t * 1000 + i;
            return s;
          },
          [](std::uint64_t a, std::uint64_t b) { return a + b; });
      // Doubly nested regions inside the serialized one also compose.
      parallel_for(0, 4, 1, [&](std::size_t) {});
    });
    EXPECT_EQ(got, reference);
    EXPECT_FALSE(in_parallel_task());
  }
}

TEST_F(ParallelPoolTest, ParallelTasksIsTopLevelOnly) {
  for (const unsigned threads : {1u, 4u}) {
    set_num_threads(threads);
    // ...not callable from a parallel_for body...
    EXPECT_THROW(parallel_for(0, 2, 1,
                              [&](std::size_t) {
                                parallel_tasks(2, [](std::size_t) {});
                              }),
                 std::invalid_argument);
    // ...nor from another task.
    EXPECT_THROW(parallel_tasks(2,
                                [&](std::size_t) {
                                  parallel_tasks(2, [](std::size_t) {});
                                }),
                 std::invalid_argument);
    // The flags unwind: a fresh batch still works.
    std::atomic<int> calls{0};
    parallel_tasks(3, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 3);
  }
}

TEST_F(ParallelPoolTest, ParallelTasksSmallestTaskExceptionWins) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_num_threads(threads);
    std::string what;
    try {
      parallel_tasks(40, [](std::size_t t) {
        if (t == 11 || t == 29) throw std::runtime_error(std::to_string(t));
      });
      FAIL() << "expected a throw";
    } catch (const std::runtime_error& e) {
      what = e.what();
    }
    EXPECT_EQ(what, "11");
    EXPECT_FALSE(in_parallel_task());
  }
}

TEST_F(ParallelPoolTest, ExceptionPropagatesOutOfWorker) {
  for (const unsigned t : {1u, 2u, 8u}) {
    set_num_threads(t);
    EXPECT_THROW(parallel_for(0, 64, 1,
                              [](std::size_t i) {
                                if (i == 13) throw std::runtime_error("boom");
                              }),
                 std::runtime_error);
  }
}

TEST_F(ParallelPoolTest, SmallestChunkExceptionWins) {
  // Several chunks throw; the propagated exception is deterministically the
  // one a sequential run would surface first.
  for (const unsigned t : {1u, 2u, 8u}) {
    set_num_threads(t);
    std::string what;
    try {
      parallel_for(0, 100, 1, [](std::size_t i) {
        if (i == 17 || i == 55 || i == 91) throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected a throw";
    } catch (const std::runtime_error& e) {
      what = e.what();
    }
    EXPECT_EQ(what, "17");
  }
}

TEST_F(ParallelPoolTest, ReduceCombinesInIndexOrder) {
  // String concatenation does not commute: any out-of-order combine shows.
  std::string sequential;
  for (int i = 0; i < 40; ++i) sequential += std::to_string(i) + ",";
  for (const unsigned t : {1u, 2u, 8u}) {
    set_num_threads(t);
    const std::string got = parallel_reduce<std::string>(
        0, 40, 3, std::string{},
        [](std::size_t b, std::size_t e) {
          std::string s;
          for (std::size_t i = b; i < e; ++i) s += std::to_string(i) + ",";
          return s;
        },
        [](std::string a, std::string b) { return std::move(a) + b; });
    EXPECT_EQ(got, sequential);
  }
}

TEST_F(ParallelPoolTest, WorkerIdsAreDense) {
  set_num_threads(4);
  const unsigned workers = num_threads();
  EXPECT_EQ(workers, 4u);
  std::vector<std::atomic<int>> seen(workers);
  parallel_for_chunked(0, 64, 1, [&](std::size_t, std::size_t, unsigned w) {
    ASSERT_LT(w, workers);
    ++seen[w];
  });
  int total = 0;
  for (auto& s : seen) total += s.load();
  EXPECT_EQ(total, 64);
}

TEST_F(ParallelPoolTest, ThreadCountResolutionOrder) {
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3u);
  EXPECT_EQ(thread_override(), 3u);
  set_num_threads(0);  // back to LCS_THREADS / hardware
  EXPECT_GE(num_threads(), 1u);
  EXPECT_EQ(thread_override(), 0u);
}

TEST_F(ParallelPoolTest, PoolSurvivesReconfiguration) {
  for (const unsigned t : {2u, 8u, 1u, 4u}) {
    set_num_threads(t);
    std::atomic<int> calls{0};
    parallel_for(0, 32, 1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 32);
  }
}

TEST_F(ParallelPoolTest, InParallelRegionFlag) {
  EXPECT_FALSE(in_parallel_region());
  parallel_for(0, 1, 1, [](std::size_t) { EXPECT_TRUE(in_parallel_region()); });
  EXPECT_FALSE(in_parallel_region());
}

// --- degenerate graphs through every parallelized entry point ---------------

TEST_F(ParallelPoolTest, EmptyPartitionThroughQualityPaths) {
  for (const unsigned t : {1u, 8u}) {
    set_num_threads(t);
    const graph::Graph g = graph::path_graph(1);  // n=1, no edges
    graph::Partition parts;                       // no parts at all
    core::ShortcutSet sc;
    const core::QualityReport rep = core::measure_quality(g, parts, sc);
    EXPECT_TRUE(rep.all_covered);
    EXPECT_EQ(rep.congestion, 0u);
    EXPECT_TRUE(core::edge_congestion(g, parts, sc).empty());
  }
}

TEST_F(ParallelPoolTest, TinyGraphsThroughKpPaths) {
  for (const unsigned t : {1u, 8u}) {
    set_num_threads(t);
    // n=1 is rejected by the parameter contract identically at any thread
    // count (ShortcutParams needs n >= 2)...
    const graph::Graph one = graph::path_graph(1);
    core::KpOptions opt;
    opt.diameter = 1;
    EXPECT_THROW(core::build_kp_shortcuts(one, graph::singleton_partition(one), opt),
                 std::invalid_argument);
    // ...and n=2 is the smallest instance that flows through the parallel
    // sampling + streamed measurement end to end.
    const graph::Graph two = graph::path_graph(2);
    const graph::Partition parts = graph::singleton_partition(two);
    const core::KpBuildResult built = core::build_kp_shortcuts(two, parts, opt);
    EXPECT_EQ(built.shortcuts.h.size(), 2u);
    const core::KpStreamReport stream = core::measure_kp_quality(two, parts, opt);
    EXPECT_TRUE(stream.quality.all_covered);
  }
}

TEST_F(ParallelPoolTest, TwoVertexGraphThroughQuality) {
  for (const unsigned t : {1u, 8u}) {
    set_num_threads(t);
    const graph::Graph g = graph::path_graph(2);
    graph::Partition parts;
    parts.parts = {{0, 1}};
    core::ShortcutSet sc;
    sc.h.resize(1);
    const core::QualityReport rep = core::measure_quality(g, parts, sc);
    EXPECT_TRUE(rep.all_covered);
    EXPECT_EQ(rep.congestion, 1u);
    EXPECT_EQ(rep.dilation_ub, 1u);
  }
}

TEST_F(ParallelPoolTest, SingleNodeSimulatorParallelMode) {
  for (const unsigned t : {1u, 8u}) {
    set_num_threads(t);
    const graph::Graph g = graph::path_graph(1);
    congest::Simulator sim(g);
    sim.set_parallel(true);
    congest::BfsProgram bfs(1, 0, 10);
    const congest::RunStats stats = sim.run(bfs, 10);
    EXPECT_TRUE(stats.completed);
    EXPECT_EQ(stats.messages, 0u);
    EXPECT_EQ(bfs.dist()[0], 0u);
  }
}

TEST_F(ParallelPoolTest, CapacityViolationPropagatesFromParallelRound) {
  // A program that over-sends must surface the same precondition error in
  // parallel mode as in sequential mode.
  struct Flooder : congest::Program {
    void on_round(congest::NodeContext& ctx) override {
      const auto neighbors = ctx.topology().neighbors(ctx.node());
      for (const graph::HalfEdge he : neighbors) {
        for (int k = 0; k < 3; ++k) ctx.send(he.edge, congest::Message{});
      }
    }
  };
  for (const unsigned t : {1u, 8u}) {
    set_num_threads(t);
    const graph::Graph g = graph::path_graph(8);
    congest::Simulator sim(g, 1);
    sim.set_parallel(true);
    Flooder p;
    EXPECT_THROW(sim.run(p, 2), std::invalid_argument);
  }
}

// --- OnceMemo (the artifact-cache primitive, PR 5) ---------------------------

TEST_F(ParallelPoolTest, OnceMemoClaimsEachKeyOnceUnderContention) {
  for (const unsigned t : {1u, 8u}) {
    set_num_threads(t);
    OnceMemo<int, int> memo;
    std::atomic<int> computes{0};
    std::vector<int> got(64, -1);
    // 64 lookups over 4 keys from every worker at once.  Each key is
    // claimed (inserted) exactly once; racing in-region callers that find
    // it in flight compute a private bit-identical copy (bypass) instead
    // of blocking a pool worker.
    parallel_for(0, got.size(), 1, [&](std::size_t i) {
      const int key = static_cast<int>(i % 4);
      got[i] = *memo.get_or_compute(key, [&] {
        ++computes;
        return key * 10;
      });
    });
    for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], int(i % 4) * 10);
    const MemoStats s = memo.stats();
    EXPECT_EQ(s.misses, 4u);
    EXPECT_EQ(static_cast<std::uint64_t>(computes.load()), s.misses + s.bypasses);
    EXPECT_EQ(s.hits + s.misses + s.bypasses, 64u);
    EXPECT_EQ(s.lookups(), 64u);
    EXPECT_EQ(memo.size(), 4u);
  }
}

TEST_F(ParallelPoolTest, OnceMemoInRegionCallersNeverBlockOnInflightOwner) {
  // The no-deadlock rule end to end: a top-level owner claims a key and —
  // while still in flight — needs the pool; concurrently, pool tasks look
  // the same key up.  Blocking them would deadlock (the pool can never
  // drain for the owner).  With the bypass rule the tasks compute private
  // copies, the pool drains, and the owner's parallel_for proceeds.
  set_num_threads(4);
  OnceMemo<int, int> memo;
  std::atomic<bool> owner_started{false};
  std::atomic<bool> tasks_done{false};

  std::thread owner([&] {
    const auto v = memo.get_or_compute(5, [&] {
      owner_started = true;
      // Wait until the pool-side lookups went through, then use the pool
      // from inside the compute — the deadlock shape this rule prevents.
      while (!tasks_done) std::this_thread::yield();
      std::atomic<int> sum{0};
      parallel_for(0, 8, 1, [&](std::size_t i) { sum += static_cast<int>(i); });
      return 100 + sum.load();
    });
    EXPECT_EQ(*v, 128);
  });

  while (!owner_started) std::this_thread::yield();
  std::vector<int> got(6, -1);
  parallel_tasks(got.size(), [&](std::size_t i) {
    got[i] = *memo.get_or_compute(5, [] { return 128; });  // must not block
  });
  tasks_done = true;
  owner.join();

  for (const int v : got) EXPECT_EQ(v, 128);
  const MemoStats s = memo.stats();
  EXPECT_EQ(s.misses, 1u);       // the owner's claim
  EXPECT_EQ(s.bypasses, 6u);     // every task bypassed the in-flight owner
  EXPECT_EQ(*memo.get_or_compute(5, [] { return -1; }), 128);  // owner's value cached
}

TEST_F(ParallelPoolTest, OnceMemoSharesOneValueInstancePerKey) {
  OnceMemo<int, std::vector<int>> memo;
  const auto a = memo.get_or_compute(1, [] { return std::vector<int>{1, 2, 3}; });
  const auto b = memo.get_or_compute(1, [] { return std::vector<int>{9, 9, 9}; });
  EXPECT_EQ(a.get(), b.get());  // second compute never ran
  EXPECT_EQ(*b, (std::vector<int>{1, 2, 3}));
}

TEST_F(ParallelPoolTest, OnceMemoEvictsCompletedEntriesAtCapacity) {
  OnceMemo<int, int> memo(2);
  (void)*memo.get_or_compute(1, [] { return 1; });
  (void)*memo.get_or_compute(2, [] { return 2; });
  EXPECT_EQ(memo.size(), 2u);
  (void)*memo.get_or_compute(3, [] { return 3; });  // overflow: flush completed
  EXPECT_EQ(memo.size(), 1u);
  EXPECT_EQ(memo.stats().evictions, 2u);
  // Evicted keys recompute bit-identical values.
  EXPECT_EQ(*memo.get_or_compute(1, [] { return 1; }), 1);
  memo.clear();
  EXPECT_EQ(memo.size(), 0u);
}

TEST_F(ParallelPoolTest, OnceMemoDoesNotCacheFailures) {
  OnceMemo<int, int> memo;
  int attempts = 0;
  const auto failing = [&]() -> int {
    ++attempts;
    if (attempts == 1) throw std::runtime_error("first compute fails");
    return 42;
  };
  EXPECT_THROW((void)memo.get_or_compute(7, failing), std::runtime_error);
  EXPECT_EQ(memo.size(), 0u);  // the failed slot was erased...
  EXPECT_EQ(*memo.get_or_compute(7, failing), 42);  // ...so the retry computes
  EXPECT_EQ(attempts, 2);
}

// --- nested serialization under saturation (guards the PR 4 contract) --------

TEST_F(ParallelPoolTest, NestedKargerInsideSaturatedTasksIsByteIdentical) {
  // The compose-instead-of-throw contract under real contention: more tasks
  // than workers, each task running karger_mincut — itself a parallel entry
  // point (trials fan out at top level, serialize inline inside a task).
  // Every nested result must equal the top-level run of the same seed.
  Rng gen(63);
  const graph::Graph g = graph::connected_gnm(80, 240, gen);
  const graph::EdgeWeights w = graph::random_weights(g, 6, gen);
  constexpr std::size_t kTasks = 12;  // > any pool size used below
  constexpr std::uint32_t kTrials = 6;

  // Top-level reference, one seed per task index.
  std::vector<mincut::CutResult> reference;
  for (std::size_t i = 0; i < kTasks; ++i) {
    Rng r(900 + i);
    reference.push_back(mincut::karger_mincut(g, w, kTrials, r));
  }

  for (const unsigned t : {1u, 2u, 8u}) {
    set_num_threads(t);
    std::vector<mincut::CutResult> nested(kTasks);
    parallel_tasks(kTasks, [&](std::size_t i) {
      Rng r(900 + i);
      nested[i] = mincut::karger_mincut(g, w, kTrials, r);  // serializes inline
    });
    for (std::size_t i = 0; i < kTasks; ++i) {
      EXPECT_EQ(nested[i].value, reference[i].value) << "task " << i << " t" << t;
      EXPECT_EQ(nested[i].side, reference[i].side) << "task " << i << " t" << t;
    }
  }
}

}  // namespace
}  // namespace lcs
