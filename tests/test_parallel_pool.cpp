// Stress and edge-case tests for the deterministic thread-pool runtime:
// degenerate ranges, nesting rejection, exception propagation, thread-count
// resolution, and n=0 / n=1 graphs through every parallelized entry point.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "congest/programs.hpp"
#include "congest/simulator.hpp"
#include "core/kp.hpp"
#include "core/shortcut.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "util/parallel.hpp"

namespace lcs {
namespace {

/// Runs each test body at a fixed thread count, restoring the prior state.
class ParallelPoolTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = thread_override(); }
  void TearDown() override { set_num_threads(previous_); }

 private:
  unsigned previous_ = 0;
};

TEST_F(ParallelPoolTest, EmptyRangeRunsNothing) {
  for (const unsigned t : {1u, 4u}) {
    set_num_threads(t);
    std::atomic<int> calls{0};
    parallel_for(5, 5, 1, [&](std::size_t) { ++calls; });
    parallel_for(7, 3, 2, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
  }
}

TEST_F(ParallelPoolTest, GrainLargerThanRange) {
  for (const unsigned t : {1u, 4u}) {
    set_num_threads(t);
    std::vector<int> hits(10, 0);
    parallel_for(0, 10, 1000, [&](std::size_t i) { ++hits[i]; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
  }
}

TEST_F(ParallelPoolTest, EveryIndexExecutedExactlyOnce) {
  for (const unsigned t : {1u, 2u, 8u}) {
    set_num_threads(t);
    std::vector<int> hits(1000, 0);
    parallel_for(0, hits.size(), 7, [&](std::size_t i) { ++hits[i]; });
    for (const int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST_F(ParallelPoolTest, ZeroGrainRejected) {
  EXPECT_THROW(parallel_for(0, 4, 0, [](std::size_t) {}), std::invalid_argument);
}

TEST_F(ParallelPoolTest, NestedParallelForRejected) {
  for (const unsigned t : {1u, 4u}) {
    set_num_threads(t);
    EXPECT_THROW(parallel_for(0, 8, 1,
                              [&](std::size_t) {
                                parallel_for(0, 2, 1, [](std::size_t) {});
                              }),
                 std::invalid_argument);
    // The region flag is restored: a fresh top-level region still works.
    std::atomic<int> calls{0};
    parallel_for(0, 4, 1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 4);
  }
}

TEST_F(ParallelPoolTest, ParallelTasksComposeWithNestedEntryPoints) {
  // Inside a parallel_tasks task, the other entry points serialize inline
  // instead of throwing; results must equal plain top-level execution.
  std::vector<std::uint64_t> reference(6);
  for (std::size_t t = 0; t < reference.size(); ++t) {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < 100; ++i) sum += t * 1000 + i;
    reference[t] = sum;
  }
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_num_threads(threads);
    std::vector<std::uint64_t> got(reference.size(), 0);
    parallel_tasks(got.size(), [&](std::size_t t) {
      EXPECT_TRUE(in_parallel_task());
      EXPECT_TRUE(in_parallel_region());
      got[t] = parallel_reduce<std::uint64_t>(
          0, 100, 7, 0,
          [&](std::size_t b, std::size_t e) {
            std::uint64_t s = 0;
            for (std::size_t i = b; i < e; ++i) s += t * 1000 + i;
            return s;
          },
          [](std::uint64_t a, std::uint64_t b) { return a + b; });
      // Doubly nested regions inside the serialized one also compose.
      parallel_for(0, 4, 1, [&](std::size_t) {});
    });
    EXPECT_EQ(got, reference);
    EXPECT_FALSE(in_parallel_task());
  }
}

TEST_F(ParallelPoolTest, ParallelTasksIsTopLevelOnly) {
  for (const unsigned threads : {1u, 4u}) {
    set_num_threads(threads);
    // ...not callable from a parallel_for body...
    EXPECT_THROW(parallel_for(0, 2, 1,
                              [&](std::size_t) {
                                parallel_tasks(2, [](std::size_t) {});
                              }),
                 std::invalid_argument);
    // ...nor from another task.
    EXPECT_THROW(parallel_tasks(2,
                                [&](std::size_t) {
                                  parallel_tasks(2, [](std::size_t) {});
                                }),
                 std::invalid_argument);
    // The flags unwind: a fresh batch still works.
    std::atomic<int> calls{0};
    parallel_tasks(3, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 3);
  }
}

TEST_F(ParallelPoolTest, ParallelTasksSmallestTaskExceptionWins) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_num_threads(threads);
    std::string what;
    try {
      parallel_tasks(40, [](std::size_t t) {
        if (t == 11 || t == 29) throw std::runtime_error(std::to_string(t));
      });
      FAIL() << "expected a throw";
    } catch (const std::runtime_error& e) {
      what = e.what();
    }
    EXPECT_EQ(what, "11");
    EXPECT_FALSE(in_parallel_task());
  }
}

TEST_F(ParallelPoolTest, ExceptionPropagatesOutOfWorker) {
  for (const unsigned t : {1u, 2u, 8u}) {
    set_num_threads(t);
    EXPECT_THROW(parallel_for(0, 64, 1,
                              [](std::size_t i) {
                                if (i == 13) throw std::runtime_error("boom");
                              }),
                 std::runtime_error);
  }
}

TEST_F(ParallelPoolTest, SmallestChunkExceptionWins) {
  // Several chunks throw; the propagated exception is deterministically the
  // one a sequential run would surface first.
  for (const unsigned t : {1u, 2u, 8u}) {
    set_num_threads(t);
    std::string what;
    try {
      parallel_for(0, 100, 1, [](std::size_t i) {
        if (i == 17 || i == 55 || i == 91) throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected a throw";
    } catch (const std::runtime_error& e) {
      what = e.what();
    }
    EXPECT_EQ(what, "17");
  }
}

TEST_F(ParallelPoolTest, ReduceCombinesInIndexOrder) {
  // String concatenation does not commute: any out-of-order combine shows.
  std::string sequential;
  for (int i = 0; i < 40; ++i) sequential += std::to_string(i) + ",";
  for (const unsigned t : {1u, 2u, 8u}) {
    set_num_threads(t);
    const std::string got = parallel_reduce<std::string>(
        0, 40, 3, std::string{},
        [](std::size_t b, std::size_t e) {
          std::string s;
          for (std::size_t i = b; i < e; ++i) s += std::to_string(i) + ",";
          return s;
        },
        [](std::string a, std::string b) { return std::move(a) + b; });
    EXPECT_EQ(got, sequential);
  }
}

TEST_F(ParallelPoolTest, WorkerIdsAreDense) {
  set_num_threads(4);
  const unsigned workers = num_threads();
  EXPECT_EQ(workers, 4u);
  std::vector<std::atomic<int>> seen(workers);
  parallel_for_chunked(0, 64, 1, [&](std::size_t, std::size_t, unsigned w) {
    ASSERT_LT(w, workers);
    ++seen[w];
  });
  int total = 0;
  for (auto& s : seen) total += s.load();
  EXPECT_EQ(total, 64);
}

TEST_F(ParallelPoolTest, ThreadCountResolutionOrder) {
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3u);
  EXPECT_EQ(thread_override(), 3u);
  set_num_threads(0);  // back to LCS_THREADS / hardware
  EXPECT_GE(num_threads(), 1u);
  EXPECT_EQ(thread_override(), 0u);
}

TEST_F(ParallelPoolTest, PoolSurvivesReconfiguration) {
  for (const unsigned t : {2u, 8u, 1u, 4u}) {
    set_num_threads(t);
    std::atomic<int> calls{0};
    parallel_for(0, 32, 1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 32);
  }
}

TEST_F(ParallelPoolTest, InParallelRegionFlag) {
  EXPECT_FALSE(in_parallel_region());
  parallel_for(0, 1, 1, [](std::size_t) { EXPECT_TRUE(in_parallel_region()); });
  EXPECT_FALSE(in_parallel_region());
}

// --- degenerate graphs through every parallelized entry point ---------------

TEST_F(ParallelPoolTest, EmptyPartitionThroughQualityPaths) {
  for (const unsigned t : {1u, 8u}) {
    set_num_threads(t);
    const graph::Graph g = graph::path_graph(1);  // n=1, no edges
    graph::Partition parts;                       // no parts at all
    core::ShortcutSet sc;
    const core::QualityReport rep = core::measure_quality(g, parts, sc);
    EXPECT_TRUE(rep.all_covered);
    EXPECT_EQ(rep.congestion, 0u);
    EXPECT_TRUE(core::edge_congestion(g, parts, sc).empty());
  }
}

TEST_F(ParallelPoolTest, TinyGraphsThroughKpPaths) {
  for (const unsigned t : {1u, 8u}) {
    set_num_threads(t);
    // n=1 is rejected by the parameter contract identically at any thread
    // count (ShortcutParams needs n >= 2)...
    const graph::Graph one = graph::path_graph(1);
    core::KpOptions opt;
    opt.diameter = 1;
    EXPECT_THROW(core::build_kp_shortcuts(one, graph::singleton_partition(one), opt),
                 std::invalid_argument);
    // ...and n=2 is the smallest instance that flows through the parallel
    // sampling + streamed measurement end to end.
    const graph::Graph two = graph::path_graph(2);
    const graph::Partition parts = graph::singleton_partition(two);
    const core::KpBuildResult built = core::build_kp_shortcuts(two, parts, opt);
    EXPECT_EQ(built.shortcuts.h.size(), 2u);
    const core::KpStreamReport stream = core::measure_kp_quality(two, parts, opt);
    EXPECT_TRUE(stream.quality.all_covered);
  }
}

TEST_F(ParallelPoolTest, TwoVertexGraphThroughQuality) {
  for (const unsigned t : {1u, 8u}) {
    set_num_threads(t);
    const graph::Graph g = graph::path_graph(2);
    graph::Partition parts;
    parts.parts = {{0, 1}};
    core::ShortcutSet sc;
    sc.h.resize(1);
    const core::QualityReport rep = core::measure_quality(g, parts, sc);
    EXPECT_TRUE(rep.all_covered);
    EXPECT_EQ(rep.congestion, 1u);
    EXPECT_EQ(rep.dilation_ub, 1u);
  }
}

TEST_F(ParallelPoolTest, SingleNodeSimulatorParallelMode) {
  for (const unsigned t : {1u, 8u}) {
    set_num_threads(t);
    const graph::Graph g = graph::path_graph(1);
    congest::Simulator sim(g);
    sim.set_parallel(true);
    congest::BfsProgram bfs(1, 0, 10);
    const congest::RunStats stats = sim.run(bfs, 10);
    EXPECT_TRUE(stats.completed);
    EXPECT_EQ(stats.messages, 0u);
    EXPECT_EQ(bfs.dist()[0], 0u);
  }
}

TEST_F(ParallelPoolTest, CapacityViolationPropagatesFromParallelRound) {
  // A program that over-sends must surface the same precondition error in
  // parallel mode as in sequential mode.
  struct Flooder : congest::Program {
    void on_round(congest::NodeContext& ctx) override {
      const auto neighbors = ctx.topology().neighbors(ctx.node());
      for (const graph::HalfEdge he : neighbors) {
        for (int k = 0; k < 3; ++k) ctx.send(he.edge, congest::Message{});
      }
    }
  };
  for (const unsigned t : {1u, 8u}) {
    set_num_threads(t);
    const graph::Graph g = graph::path_graph(8);
    congest::Simulator sim(g, 1);
    sim.set_parallel(true);
    Flooder p;
    EXPECT_THROW(sim.run(p, 2), std::invalid_argument);
  }
}

}  // namespace
}  // namespace lcs
