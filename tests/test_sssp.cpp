// SSSP tests: Dijkstra oracle properties, distributed Bellman–Ford round
// counts, and the approximate SSSP tree (validity, stretch, edge cases).
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/union_find.hpp"
#include "sssp/sssp.hpp"
#include "util/rng.hpp"

namespace lcs::sssp {
namespace {

TEST(Dijkstra, PathDistances) {
  const Graph g = graph::path_graph(6);
  const EdgeWeights w{2, 3, 1, 5, 4};
  const SsspResult r = dijkstra(g, w, 0);
  EXPECT_EQ(r.dist[0], 0u);
  EXPECT_EQ(r.dist[1], 2u);
  EXPECT_EQ(r.dist[2], 5u);
  EXPECT_EQ(r.dist[3], 6u);
  EXPECT_EQ(r.dist[5], 15u);
}

TEST(Dijkstra, PrefersLightDetour) {
  // 0-1 heavy direct edge vs 0-2-1 light detour.
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(2, 1);
  const Graph g = std::move(b).build();
  // Edge ids sorted by endpoints: (0,1)=0, (0,2)=1, (1,2)=2.
  const EdgeWeights w{10, 2, 3};
  const SsspResult r = dijkstra(g, w, 0);
  EXPECT_EQ(r.dist[1], 5u);
  EXPECT_EQ(r.parent[1], 2u);
}

TEST(Dijkstra, UnreachableIsInf) {
  const Graph g = graph::Graph::from_edges(4, {{0, 1}});
  const SsspResult r = dijkstra(g, EdgeWeights{7}, 0);
  EXPECT_EQ(r.dist[2], kInfDist);
  EXPECT_EQ(r.dist[3], kInfDist);
}

TEST(Dijkstra, ZeroWeightsAllowed) {
  const Graph g = graph::path_graph(4);
  const SsspResult r = dijkstra(g, EdgeWeights{0, 0, 0}, 0);
  EXPECT_EQ(r.dist[3], 0u);
}

TEST(Dijkstra, NegativeRejected) {
  const Graph g = graph::path_graph(3);
  EXPECT_THROW(dijkstra(g, EdgeWeights{1, -1}, 0), std::invalid_argument);
}

TEST(Dijkstra, ParentsFormShortestPathTree) {
  Rng rng(1);
  const Graph g = graph::connected_gnm(60, 150, rng);
  const EdgeWeights w = graph::random_weights(g, 30, rng);
  const SsspResult r = dijkstra(g, w, 10);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v == 10) continue;
    ASSERT_NE(r.parent[v], graph::kNoVertex);
    EXPECT_EQ(r.dist[v],
              r.dist[r.parent[v]] + static_cast<std::uint64_t>(w[r.parent_edge[v]]));
  }
}

// --- distributed Bellman-Ford -----------------------------------------------------

TEST(DistributedBf, MatchesDijkstraAndRoundsAreHopBounded) {
  Rng rng(2);
  const Graph g = graph::connected_gnm(70, 160, rng);
  const EdgeWeights w = graph::random_weights(g, 9, rng);
  const DistributedSsspResult d = distributed_bellman_ford(g, w, 4);
  const SsspResult want = dijkstra(g, w, 4);
  EXPECT_EQ(d.sssp.dist, want.dist);
  EXPECT_LE(d.rounds, g.num_vertices() + 3);
  EXPECT_GT(d.messages, 0u);
}

TEST(DistributedBf, UnweightedRoundsNearEccentricity) {
  const Graph g = graph::path_graph(40);
  const EdgeWeights w(g.num_edges(), 1);
  const DistributedSsspResult d = distributed_bellman_ford(g, w, 0);
  EXPECT_LE(d.rounds, 42u);
  EXPECT_GE(d.rounds, 39u);
}

// --- approximate SSSP tree ---------------------------------------------------------

bool is_spanning_tree(const Graph& g, const std::vector<graph::EdgeId>& edges) {
  if (edges.size() + 1 != g.num_vertices()) return false;
  graph::UnionFind uf(g.num_vertices());
  for (const graph::EdgeId e : edges)
    if (!uf.unite(g.edge(e).u, g.edge(e).v)) return false;
  return uf.num_sets() == 1;
}

class ApproxTreeTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ApproxTreeTest, ProducesValidSpanningTree) {
  Rng rng(300 + GetParam());
  const Graph g = graph::connected_gnm(120, 300, rng);
  const EdgeWeights w = graph::random_weights(g, 20, rng);
  ApproxTreeOptions opt;
  opt.num_landmarks = GetParam();
  opt.seed = GetParam();
  const ApproxTreeResult r = approx_sssp_tree(g, w, 0, opt);
  EXPECT_TRUE(is_spanning_tree(g, r.tree_edges));
  EXPECT_GE(r.max_stretch, 1.0 - 1e-9);
  EXPECT_GE(r.avg_stretch, 1.0 - 1e-9);
  EXPECT_LE(r.avg_stretch, r.max_stretch + 1e-9);
  EXPECT_GT(r.rounds_charged, 0u);
}

INSTANTIATE_TEST_SUITE_P(LandmarkCounts, ApproxTreeTest,
                         ::testing::Values(1u, 2u, 8u, 32u, 120u));

TEST(ApproxTree, SingleLandmarkIsExactSpt) {
  Rng rng(4);
  const Graph g = graph::connected_gnm(80, 200, rng);
  const EdgeWeights w = graph::random_weights(g, 15, rng);
  ApproxTreeOptions opt;
  opt.num_landmarks = 1;
  const ApproxTreeResult r = approx_sssp_tree(g, w, 7, opt);
  EXPECT_NEAR(r.max_stretch, 1.0, 1e-12);
}

TEST(ApproxTree, AllLandmarksIsExact) {
  Rng rng(5);
  const Graph g = graph::connected_gnm(50, 120, rng);
  const EdgeWeights w = graph::random_weights(g, 10, rng);
  ApproxTreeOptions opt;
  opt.num_landmarks = 50;
  const ApproxTreeResult r = approx_sssp_tree(g, w, 3, opt);
  // Every vertex its own landmark: overlay *is* the graph; the overlay
  // Dijkstra tree realises exact distances.
  EXPECT_NEAR(r.max_stretch, 1.0, 1e-12);
}

TEST(ApproxTree, TreeDistanceConsistentWithEdges) {
  Rng rng(6);
  const Graph g = graph::connected_gnm(60, 140, rng);
  const EdgeWeights w = graph::random_weights(g, 9, rng);
  const ApproxTreeResult r = approx_sssp_tree(g, w, 11, {});
  // tree_dist must satisfy the tree's edge relaxations exactly.
  for (const graph::EdgeId e : r.tree_edges) {
    const graph::Edge ed = g.edge(e);
    const std::uint64_t a = r.tree_dist[ed.u];
    const std::uint64_t b = r.tree_dist[ed.v];
    EXPECT_EQ(std::max(a, b) - std::min(a, b), static_cast<std::uint64_t>(w[e]));
  }
}

TEST(ApproxTree, StretchShrinksWithMoreLandmarks) {
  Rng rng(7);
  const Graph g = graph::connected_gnm(150, 350, rng);
  const EdgeWeights w = graph::random_weights(g, 50, rng);
  ApproxTreeOptions few;
  few.num_landmarks = 2;
  few.seed = 9;
  ApproxTreeOptions many;
  many.num_landmarks = 150;
  many.seed = 9;
  const double s_few = approx_sssp_tree(g, w, 0, few).avg_stretch;
  const double s_many = approx_sssp_tree(g, w, 0, many).avg_stretch;
  EXPECT_LE(s_many, s_few + 1e-9);
}

TEST(ApproxTree, DisconnectedRejected) {
  const Graph g = graph::Graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(approx_sssp_tree(g, EdgeWeights{1, 1}, 0, {}), std::invalid_argument);
}

}  // namespace
}  // namespace lcs::sssp
