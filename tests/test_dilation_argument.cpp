// Tests for the executable Theorem 3.1 recursion: soundness of the
// certificate, the O(k_D log n) shape of the certified bound, event
// structure, and behaviour with degenerate shortcuts.
#include <gtest/gtest.h>

#include <cmath>

#include "core/dilation_argument.hpp"
#include "core/kp.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace lcs::core {
namespace {

struct Instance {
  graph::HardInstance hi;
  KpBuildResult kp;
  explicit Instance(std::uint32_t n, unsigned d, std::uint64_t seed = 3,
                    double beta = 1.0)
      : hi(graph::hard_instance(n, d)) {
    KpOptions opt;
    opt.diameter = d;
    opt.seed = seed;
    opt.beta = beta;
    kp = build_kp_shortcuts(hi.g, hi.paths, opt);
  }
};

TEST(Certify, SoundUpperBound) {
  const Instance in(500, 4);
  const auto& part = in.hi.paths.parts[0];
  const auto cert = certify_dilation(in.hi.g, part, in.kp.shortcuts.h[0], part.front(),
                                     part.back(), in.kp.params.k_d);
  ASSERT_TRUE(cert.success);
  EXPECT_GE(cert.certified, cert.actual);
  EXPECT_GT(cert.levels.size(), 0u);
}

TEST(Certify, BoundIsKdLogN) {
  const Instance in(900, 4);
  const double k_d = in.kp.params.k_d;
  const double log_n = std::log2(static_cast<double>(in.hi.g.num_vertices()));
  for (const std::size_t p : {0u, 1u, 2u}) {
    const auto& part = in.hi.paths.parts[p];
    const auto cert = certify_dilation(in.hi.g, part, in.kp.shortcuts.h[p],
                                       part.front(), part.back(), k_d);
    ASSERT_TRUE(cert.success) << "part " << p;
    // certified <= (depth + 1) * budget and depth <= log2 |P|.
    EXPECT_LE(cert.depth, static_cast<std::uint32_t>(std::ceil(std::log2(part.size()))) + 1);
    EXPECT_LE(cert.certified, cert.budget * (log_n + 2)) << "part " << p;
  }
}

TEST(Certify, EventsTerminateRecursion) {
  const Instance in(600, 4);
  const auto& part = in.hi.paths.parts[1];
  const auto cert = certify_dilation(in.hi.g, part, in.kp.shortcuts.h[1], part.front(),
                                     part.back(), in.kp.params.k_d);
  ASSERT_TRUE(cert.success);
  // Last level is terminal (whole-pair or base case); earlier levels are
  // half events that strictly shrink the path.
  const auto& levels = cert.levels;
  for (std::size_t i = 0; i + 1 < levels.size(); ++i) {
    EXPECT_TRUE(levels[i].event == HalfEvent::kFirstHalf ||
                levels[i].event == HalfEvent::kSecondHalf);
    EXPECT_GT(levels[i].path_length, levels[i + 1].path_length);
  }
  const HalfEvent last = levels.back().event;
  EXPECT_TRUE(last == HalfEvent::kWholePair || last == HalfEvent::kBaseCase);
}

TEST(Certify, TrivialShortcutStillCertifies) {
  // With H = induced edges only, every level falls back to walking the
  // path, so the base case / whole-pair checks must still certify
  // something >= the true distance (= the path length).
  const graph::HardInstance hi = graph::hard_instance(400, 4);
  const auto& part = hi.paths.parts[0];
  const double k_d = k_d_of(hi.g.num_vertices(), 4);
  const auto cert =
      certify_dilation(hi.g, part, {}, part.front(), part.back(), k_d);
  EXPECT_EQ(cert.actual, part.size() - 1);
  EXPECT_GE(cert.certified, cert.actual);
}

TEST(Certify, WholeGraphShortcutIsOneLevel) {
  const graph::HardInstance hi = graph::hard_instance(400, 4);
  std::vector<EdgeId> all(hi.g.num_edges());
  for (EdgeId e = 0; e < hi.g.num_edges(); ++e) all[e] = e;
  const auto& part = hi.paths.parts[0];
  const auto cert = certify_dilation(hi.g, part, all, part.front(), part.back(),
                                     k_d_of(hi.g.num_vertices(), 4));
  ASSERT_TRUE(cert.success);
  // dist_H(s, t) = graph distance <= D <= budget: one whole-pair level.
  EXPECT_EQ(cert.levels.size(), 1u);
  EXPECT_EQ(cert.levels.front().event, HalfEvent::kWholePair);
  EXPECT_LE(cert.certified, 4u);
}

TEST(Certify, SameEndpointsZero) {
  const graph::HardInstance hi = graph::hard_instance(400, 4);
  const auto& part = hi.paths.parts[0];
  const auto cert = certify_dilation(hi.g, part, {}, part[3], part[3],
                                     k_d_of(hi.g.num_vertices(), 4));
  EXPECT_EQ(cert.actual, 0u);
  EXPECT_EQ(cert.certified, 0u);
}

TEST(Certify, AdjacentEndpoints) {
  const graph::HardInstance hi = graph::hard_instance(400, 4);
  const auto& part = hi.paths.parts[0];
  const auto cert = certify_dilation(hi.g, part, {}, part[3], part[4],
                                     k_d_of(hi.g.num_vertices(), 4));
  EXPECT_EQ(cert.actual, 1u);
  EXPECT_EQ(cert.certified, 1u);
  // Within budget either as a direct pair or as the trivial base case.
  EXPECT_TRUE(cert.levels.back().event == HalfEvent::kWholePair ||
              cert.levels.back().event == HalfEvent::kBaseCase);
}

TEST(Certify, RejectsDisconnectedPair) {
  const graph::Graph g = graph::Graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(certify_dilation(g, {0, 1}, {}, 0, 3, 2.0), std::invalid_argument);
}

TEST(Certify, BudgetFactorControlsDepth) {
  const Instance in(900, 4);
  const auto& part = in.hi.paths.parts[0];
  CertifyOptions tight;
  tight.budget_factor = 1.0;
  CertifyOptions loose;
  loose.budget_factor = 16.0;
  const auto t_cert = certify_dilation(in.hi.g, part, in.kp.shortcuts.h[0],
                                       part.front(), part.back(), in.kp.params.k_d, tight);
  const auto l_cert = certify_dilation(in.hi.g, part, in.kp.shortcuts.h[0],
                                       part.front(), part.back(), in.kp.params.k_d, loose);
  EXPECT_GE(t_cert.depth, l_cert.depth);
  if (t_cert.success && l_cert.success) {
    // A looser budget can only shorten the recursion.
    EXPECT_LE(l_cert.levels.size(), t_cert.levels.size());
  }
}

class CertifySweep : public ::testing::TestWithParam<std::tuple<unsigned, int>> {};

TEST_P(CertifySweep, AllPartsCertifyAcrossSeeds) {
  const auto [d, seed] = GetParam();
  const Instance in(700, d, static_cast<std::uint64_t>(seed));
  for (std::size_t p = 0; p < std::min<std::size_t>(in.hi.paths.num_parts(), 5); ++p) {
    const auto& part = in.hi.paths.parts[p];
    const auto cert = certify_dilation(in.hi.g, part, in.kp.shortcuts.h[p],
                                       part.front(), part.back(), in.kp.params.k_d);
    EXPECT_TRUE(cert.success) << "D=" << d << " seed=" << seed << " part=" << p;
    EXPECT_GE(cert.certified, cert.actual);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, CertifySweep,
                         ::testing::Combine(::testing::Values(4u, 5u, 6u),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace lcs::core
