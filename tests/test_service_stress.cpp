// Service stress/fuzz fleet (PR 5).
//
// Seeded random mixed batches — every query kind, random parameters, error
// injections, duplicate ids — are pushed through run_batch and the
// admission-controlled run_admitted, and every outcome is checked against
// the sequential single-query oracle: ShortcutService::run at one thread.
// The contract under stress is the usual one: a QueryResult is a pure
// function of (snapshot, service seed, request), so no batch composition,
// admission schedule, saturation level or thread count may change a single
// deterministic field.  Registered at LCS_THREADS=1 and =4 under the
// `parallel` ctest label so the TSan leg covers the admission scheduler.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "service/service.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace lcs;
using service::AdmissionOptions;
using service::GraphSnapshot;
using service::QueryKind;
using service::QueryRequest;
using service::QueryResult;
using service::ShortcutService;

std::shared_ptr<const GraphSnapshot> fuzz_snapshot(std::uint64_t seed, std::uint32_t n = 200) {
  Rng gen(seed);
  GraphSnapshot::Options opt;
  opt.weight_seed = seed ^ 0xabcULL;
  opt.max_weight = 8;
  return GraphSnapshot::build(graph::connected_gnm(n, 3 * n, gen), opt);
}

/// Two disjoint paths: every mincut/MST query fails (deterministically).
std::shared_ptr<const GraphSnapshot> disconnected_snapshot() {
  graph::GraphBuilder b(16);
  for (graph::VertexId v = 0; v + 1 < 8; ++v) b.add_edge(v, v + 1);
  for (graph::VertexId v = 8; v + 1 < 16; ++v) b.add_edge(v, v + 1);
  return GraphSnapshot::build(std::move(b).build());
}

/// A seeded random batch over the full request surface: all four kinds,
/// random sizes/ids, and (when `inject_errors`) parameters chosen to throw
/// inside the query body — which must surface as deterministic ok=false
/// results, never as batch aborts.
std::vector<QueryRequest> fuzz_batch(Rng& rng, std::uint32_t count, std::uint32_t n,
                                     bool inject_errors) {
  const std::vector<std::uint64_t> ids = rng.sample_distinct(1u << 20, count);
  std::vector<QueryRequest> batch;
  batch.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    QueryRequest q;
    q.id = 7000 + ids[i];
    q.kind = static_cast<QueryKind>(rng.uniform(4));
    q.beta = 0.5 + 0.25 * static_cast<double>(rng.uniform(4));
    q.num_parts = static_cast<std::uint32_t>(rng.uniform(n / 2));  // 0 = auto
    if (rng.bernoulli(0.25))
      q.diameter = static_cast<unsigned>(1 + rng.uniform(6));
    q.karger_trials = rng.bernoulli(0.5) ? static_cast<std::uint32_t>(1 + rng.uniform(6)) : 0;
    q.eps = 0.3 + 0.2 * static_cast<double>(rng.uniform(3));
    batch.push_back(q);
  }
  if (inject_errors) {
    // Guaranteed failures alongside the random load: sparsified mincut
    // rejects eps >= 1, and the rejection must be a deterministic per-query
    // ok=false result, not a batch abort.
    for (const std::uint32_t victim : {std::uint32_t{1}, count / 2}) {
      batch[victim].kind = QueryKind::kMincut;
      batch[victim].karger_trials = 0;
      batch[victim].eps = 1.5;
    }
  }
  return batch;
}

void expect_same_result(const QueryResult& a, const QueryResult& b, const std::string& what) {
  EXPECT_EQ(a.id, b.id) << what;
  EXPECT_EQ(a.kind, b.kind) << what;
  EXPECT_EQ(a.ok, b.ok) << what;
  EXPECT_EQ(a.error, b.error) << what;
  EXPECT_EQ(a.congestion, b.congestion) << what;
  EXPECT_EQ(a.dilation, b.dilation) << what;
  EXPECT_EQ(a.value, b.value) << what;
  EXPECT_EQ(a.cardinality, b.cardinality) << what;
  EXPECT_EQ(a.rounds, b.rounds) << what;
  EXPECT_EQ(a.content_hash, b.content_hash) << what;
  EXPECT_EQ(a.digest(), b.digest()) << what;
}

/// The oracle: one query at a time through run() at one thread.
std::vector<QueryResult> oracle_results(const ShortcutService& svc,
                                        const std::vector<QueryRequest>& batch) {
  ThreadOverrideGuard guard;
  set_num_threads(1);
  std::vector<QueryResult> out;
  out.reserve(batch.size());
  for (const QueryRequest& q : batch) out.push_back(svc.run(q));
  return out;
}

TEST(ServiceStress, RandomMixedBatchesMatchSequentialOracle) {
  const auto snap = fuzz_snapshot(21);
  const ShortcutService svc(snap, 5);
  Rng rng(1234);
  for (int round = 0; round < 3; ++round) {
    const auto batch = fuzz_batch(rng, 10, snap->num_vertices(), /*inject_errors=*/false);
    const std::vector<QueryResult> oracle = oracle_results(svc, batch);
    ThreadOverrideGuard guard;
    for (const unsigned threads : {1u, 2u, 8u}) {
      set_num_threads(threads);
      const std::vector<QueryResult> got = svc.run_batch(batch);
      ASSERT_EQ(got.size(), oracle.size());
      for (std::size_t i = 0; i < got.size(); ++i)
        expect_same_result(got[i], oracle[i],
                           "round " + std::to_string(round) + " t" + std::to_string(threads) +
                               " query " + std::to_string(i));
    }
  }
}

TEST(ServiceStress, ErrorInjectionIsDeterministicAndContained) {
  // Bad eps on a connected snapshot + every kind on a disconnected one:
  // failures must be per-query, deterministic and oracle-identical.
  Rng rng(77);
  for (const bool disconnected : {false, true}) {
    const auto snap = disconnected ? disconnected_snapshot() : fuzz_snapshot(22, 150);
    const ShortcutService svc(snap, 9);
    const auto batch =
        fuzz_batch(rng, 12, snap->num_vertices(), /*inject_errors=*/!disconnected);
    const std::vector<QueryResult> oracle = oracle_results(svc, batch);
    bool saw_error = false;
    for (const QueryResult& r : oracle) saw_error = saw_error || !r.ok;
    EXPECT_TRUE(saw_error) << "fuzz case lost its error injection";

    ThreadOverrideGuard guard;
    for (const unsigned threads : {1u, 4u}) {
      set_num_threads(threads);
      const std::vector<QueryResult> got = svc.run_batch(batch);
      for (std::size_t i = 0; i < got.size(); ++i)
        expect_same_result(got[i], oracle[i], disconnected ? "disconnected" : "bad-eps");
    }
  }
}

TEST(ServiceStress, DuplicateIdsRejectedEverywhere) {
  const auto snap = fuzz_snapshot(23, 60);
  const ShortcutService svc(snap, 5);
  Rng rng(99);
  auto batch = fuzz_batch(rng, 6, snap->num_vertices(), false);
  batch.back().id = batch.front().id;
  EXPECT_THROW(svc.run_batch(batch), std::invalid_argument);
  EXPECT_THROW(svc.run_admitted(batch, AdmissionOptions{}), std::invalid_argument);
}

TEST(ServiceStress, SaturatedAdmissionQueueMatchesIdleDigests) {
  // The overload case: a heavy-skewed batch through a tiny admission
  // configuration (every wave saturated, many waves deep) must produce the
  // very digests of idle one-at-a-time execution and of an unsaturated run.
  const auto snap = fuzz_snapshot(24);
  const ShortcutService svc(snap, 5);
  Rng rng(4321);
  const auto batch = fuzz_batch(rng, 14, snap->num_vertices(), false);
  const std::vector<QueryResult> oracle = oracle_results(svc, batch);

  AdmissionOptions saturated;
  saturated.cheap_slots = 1;
  saturated.heavy_slots = 1;  // max two queries in flight: deep wave backlog
  AdmissionOptions idle;
  idle.cheap_slots = 64;
  idle.heavy_slots = 64;  // everything in wave 0

  ThreadOverrideGuard guard;
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_num_threads(threads);
    const std::vector<QueryResult> sat = svc.run_admitted(batch, saturated);
    const std::vector<QueryResult> unsat = svc.run_admitted(batch, idle);
    ASSERT_EQ(sat.size(), oracle.size());
    for (std::size_t i = 0; i < oracle.size(); ++i) {
      expect_same_result(sat[i], oracle[i], "saturated t" + std::to_string(threads));
      expect_same_result(unsat[i], oracle[i], "idle t" + std::to_string(threads));
      EXPECT_GE(sat[i].wave, unsat[i].wave);  // saturation = later waves, same bytes
    }
    // Saturation is visible in telemetry only.
    bool deep = false;
    for (const QueryResult& r : sat) deep = deep || r.wave > 0;
    EXPECT_TRUE(deep);
    for (const QueryResult& r : unsat) EXPECT_EQ(r.wave, 0u);
  }
}

TEST(ServiceStress, AdmissionBoundRejectsDeterministicallyByPosition) {
  const auto snap = fuzz_snapshot(25, 120);
  const ShortcutService svc(snap, 5);
  Rng rng(555);
  const auto batch = fuzz_batch(rng, 10, snap->num_vertices(), false);
  const std::vector<QueryResult> oracle = oracle_results(svc, batch);

  AdmissionOptions adm;
  adm.max_queue = 6;
  ThreadOverrideGuard guard;
  std::vector<std::uint64_t> reference;
  for (const unsigned threads : {1u, 4u}) {
    set_num_threads(threads);
    const std::vector<QueryResult> got = svc.run_admitted(batch, adm);
    ASSERT_EQ(got.size(), batch.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (i < adm.max_queue) {
        expect_same_result(got[i], oracle[i], "admitted");
      } else {
        EXPECT_FALSE(got[i].ok);
        EXPECT_NE(got[i].error.find("admission queue full"), std::string::npos);
        EXPECT_EQ(got[i].id, batch[i].id);
      }
    }
    std::vector<std::uint64_t> ds;
    for (const QueryResult& r : got) ds.push_back(r.digest());
    if (reference.empty())
      reference = ds;
    else
      EXPECT_EQ(ds, reference);  // rejection digests are thread-independent too
  }
}

TEST(ServiceStress, CheapClassNeverWaitsOnHeavyBacklog) {
  // Structural starvation check: with strict per-class slots, cheap query k
  // runs in wave k / cheap_slots regardless of how much heavy work queues.
  const auto snap = fuzz_snapshot(26, 120);
  const ShortcutService svc(snap, 5);
  std::vector<QueryRequest> batch;
  for (std::uint32_t i = 0; i < 18; ++i) {
    QueryRequest q;
    q.id = 100 + i;
    // 15 heavy mincuts in front, 3 cheap quality queries at the back.
    q.kind = i < 15 ? QueryKind::kMincut : QueryKind::kShortcutQuality;
    q.karger_trials = i < 15 ? 4 : 0;
    batch.push_back(q);
  }
  AdmissionOptions adm;
  adm.cheap_slots = 2;
  adm.heavy_slots = 2;
  const std::vector<QueryResult> got = svc.run_admitted(batch, adm);
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (batch[i].kind == QueryKind::kShortcutQuality)
      EXPECT_LE(got[i].wave, 1u) << "cheap query starved behind heavy backlog";
  }
  // The heavy backlog itself drains at heavy_slots per wave.
  std::uint32_t max_wave = 0;
  for (const QueryResult& r : got) max_wave = std::max(max_wave, r.wave);
  EXPECT_EQ(max_wave, 7u);  // 15 heavy / 2 slots => waves 0..7
}

}  // namespace
