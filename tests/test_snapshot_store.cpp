// Snapshot format + store round-trip coverage (PR 6).
//
// The contract under test: save → mmap-load is invisible to queries.  A
// loaded snapshot must carry the same fingerprint, facts and weights as
// the built one it came from, and must produce bit-identical query digests
// for every kind at every thread count, with saved artifacts arriving
// pre-warmed (zero misses on replay).  Malformed files — truncated,
// bit-flipped anywhere, or from a future format version — must be rejected
// with deterministic "snapshot: ..." errors, never interpreted.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "service/service.hpp"
#include "service/snapshot_format.hpp"
#include "service/snapshot_store.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace lcs;
using service::GraphSnapshot;
using service::QueryKind;
using service::QueryRequest;
using service::QueryResult;
using service::ShortcutService;
using service::SnapshotStore;

/// Unique per-process scratch directory, removed on destruction.  The same
/// test binary runs concurrently under ctest (the .t1/.t4 registrations),
/// so the pid must be part of the name.
struct TempDir {
  explicit TempDir(const std::string& tag)
      : path(std::filesystem::temp_directory_path() /
             ("lcs-snapstore-" + std::to_string(::getpid()) + "-" + tag)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::filesystem::path path;
};

graph::Graph grid_case(int generator, std::uint64_t seed, std::uint32_t n) {
  Rng rng(seed);
  switch (generator) {
    case 0: return graph::connected_gnm(n, 3 * n, rng);
    case 1: return graph::random_tree(n, rng);
    default: return graph::hard_instance(n, 4).g;
  }
}

/// A deterministic mixed batch: every kind, auto and explicit partition
/// sizes, Karger and sparsified mincuts.
std::vector<QueryRequest> mixed_batch(std::uint32_t n) {
  std::vector<QueryRequest> batch;
  const auto add = [&](QueryKind kind, std::uint32_t num_parts, std::uint32_t karger,
                       double eps) {
    QueryRequest q;
    q.id = 9100 + batch.size();
    q.kind = kind;
    q.num_parts = num_parts;
    q.karger_trials = karger;
    q.eps = eps;
    batch.push_back(q);
  };
  add(QueryKind::kShortcutQuality, 0, 0, 0.5);
  add(QueryKind::kShortcutQuality, n / 8, 0, 0.5);
  add(QueryKind::kShortcutBuild, 0, 0, 0.5);
  add(QueryKind::kShortcutBuild, n / 4, 0, 0.5);
  add(QueryKind::kMst, 0, 0, 0.5);
  add(QueryKind::kMincut, 0, 2, 0.5);
  add(QueryKind::kMincut, 0, 0, 0.7);
  // Two s–t queries so the round-trip grid gates the CH artifact too.
  for (const std::uint32_t salt : {3u, 11u}) {
    QueryRequest q;
    q.id = 9100 + batch.size();
    q.kind = QueryKind::kPointToPoint;
    q.s = salt % n;
    q.t = (salt * 7 + 1) % n;
    batch.push_back(q);
  }
  return batch;
}

std::vector<std::uint64_t> digests_of(const std::vector<QueryResult>& results) {
  std::vector<std::uint64_t> out;
  out.reserve(results.size());
  for (const QueryResult& r : results) out.push_back(r.digest());
  return out;
}

std::vector<std::byte> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::vector<char> bytes{std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  const auto* data = reinterpret_cast<const std::byte*>(bytes.data());
  return {data, data + bytes.size()};
}

void write_file(const std::filesystem::path& path, const std::vector<std::byte>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Expect load_snapshot(path) to fail with a message containing `expect`.
void expect_rejected(const std::filesystem::path& path, const std::string& expect,
                     const std::string& what) {
  try {
    (void)service::load_snapshot(path);
    FAIL() << what << ": malformed file was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(expect), std::string::npos)
        << what << ": got '" << e.what() << "', wanted '" << expect << "'";
  }
}

TEST(SnapshotStore, RoundTripDigestIdentityAcrossGrid) {
  TempDir dir("grid");
  SnapshotStore store(dir.path);
  for (const int generator : {0, 1, 2}) {
    for (const std::uint64_t seed : {11ull, 12ull}) {
      for (const std::uint32_t n : {60u, 200u}) {
        const std::string what = "gen " + std::to_string(generator) + " seed " +
                                 std::to_string(seed) + " n " + std::to_string(n);
        GraphSnapshot::Options opt;
        opt.weight_seed = seed ^ 0xfeedULL;
        const auto built = GraphSnapshot::build(grid_case(generator, seed, n), opt);
        const auto batch = mixed_batch(built->num_vertices());
        const ShortcutService built_svc(built, 5);
        const std::vector<std::uint64_t> want = digests_of(built_svc.run_batch(batch));

        store.save(*built);
        const auto loaded = store.open(built->fingerprint());

        EXPECT_EQ(loaded->fingerprint(), built->fingerprint()) << what;
        EXPECT_EQ(loaded->num_vertices(), built->num_vertices()) << what;
        EXPECT_EQ(loaded->num_edges(), built->num_edges()) << what;
        EXPECT_EQ(loaded->connected(), built->connected()) << what;
        EXPECT_EQ(loaded->max_degree(), built->max_degree()) << what;
        EXPECT_EQ(loaded->diameter_lb(), built->diameter_lb()) << what;
        EXPECT_EQ(loaded->diameter_ub(), built->diameter_ub()) << what;
        EXPECT_EQ(loaded->diameter_is_exact(), built->diameter_is_exact()) << what;
        ASSERT_EQ(loaded->weights().size(), built->weights().size()) << what;
        EXPECT_TRUE(std::equal(loaded->weights().begin(), loaded->weights().end(),
                               built->weights().begin()))
            << what;

        const ShortcutService loaded_svc(loaded, 5);
        ThreadOverrideGuard guard;
        for (const unsigned threads : {1u, 2u, 8u}) {
          set_num_threads(threads);
          EXPECT_EQ(digests_of(loaded_svc.run_batch(batch)), want)
              << what << " t" << threads;
        }
      }
    }
  }
}

TEST(SnapshotStore, SavedArtifactsArrivePrewarmed) {
  TempDir dir("prewarm");
  Rng rng(31);
  const auto built = GraphSnapshot::build(graph::connected_gnm(150, 450, rng));
  const auto batch = mixed_batch(built->num_vertices());
  const ShortcutService built_svc(built, 5);
  const std::vector<std::uint64_t> want = digests_of(built_svc.run_batch(batch));

  SnapshotStore store(dir.path);
  const std::filesystem::path path = store.save(*built);

  // The file records exactly the artifacts the batch materialized.
  const service::SnapshotFileInfo info = service::read_snapshot_info(path);
  EXPECT_EQ(info.fingerprint, built->fingerprint());
  EXPECT_GT(info.saved_partitions, 0u);
  EXPECT_GT(info.saved_samples, 0u);
  EXPECT_EQ(info.saved_ch_indexes, 1u);

  // Replaying the batch on the loaded snapshot is all cache hits: the
  // artifact-stats equivalent of "pre-warmed instead of lazily memoized".
  const auto loaded = store.open(built->fingerprint());
  const service::ArtifactStats before = loaded->artifact_stats();
  EXPECT_EQ(before.total().lookups(), 0u);
  const ShortcutService loaded_svc(loaded, 5);
  EXPECT_EQ(digests_of(loaded_svc.run_batch(batch)), want);
  const service::ArtifactStats after = loaded->artifact_stats();
  EXPECT_EQ(after.partition.misses, 0u);
  EXPECT_EQ(after.sparsified.misses, 0u);
  EXPECT_EQ(after.ch.misses, 0u);
  EXPECT_GT(after.partition.hits, 0u);
  EXPECT_GT(after.sparsified.hits, 0u);
  EXPECT_GT(after.ch.hits, 0u);
}

TEST(SnapshotStore, ChIndexRoundTripsStructurallyIntact) {
  // The CH artifact is the one whose rebuild is most expensive relative to
  // its serialized size, so the save/load path must hand back the exact
  // structure, not an equivalent one: ranks, offsets, and every arc.
  TempDir dir("ch-roundtrip");
  Rng rng(67);
  const auto built = GraphSnapshot::build(graph::road_network(220, rng));
  const auto direct = built->ch_index();  // materialize before save

  SnapshotStore store(dir.path);
  const std::filesystem::path path = store.save(*built);
  EXPECT_EQ(service::read_snapshot_info(path).saved_ch_indexes, 1u);

  const auto loaded = store.open(built->fingerprint());
  EXPECT_EQ(loaded->artifact_stats().ch.lookups(), 0u);
  const auto seeded = loaded->ch_index();
  EXPECT_EQ(*seeded, *direct);  // structural identity, via ChIndex::operator==
  EXPECT_EQ(loaded->artifact_stats().ch.misses, 0u);
  EXPECT_EQ(loaded->artifact_stats().ch.hits, 1u);
}

TEST(SnapshotStore, LoadPrewarmsPartitionPoolMissingFromFile) {
  TempDir dir("poolwarm");
  Rng rng(37);
  const auto built = GraphSnapshot::build(graph::connected_gnm(140, 420, rng));
  const std::uint32_t pool = built->options().partition_pool_size;
  ASSERT_GT(pool, 0u);
  // Drop every cached artifact before saving: the file then carries no
  // partitions, so the load-time proactive prewarm must rebuild the pool
  // (the seeded-artifact path is covered by SavedArtifactsArrivePrewarmed,
  // whose zero-lookup gate also proves the prewarm skips seeded slots).
  built->clear_artifacts();
  SnapshotStore store(dir.path);
  const std::filesystem::path path = store.save(*built);
  EXPECT_EQ(service::read_snapshot_info(path).saved_partitions, 0u);

  const auto loaded = store.open(built->fingerprint());
  EXPECT_EQ(loaded->options().partition_pool_size, pool);  // header round-trip
  EXPECT_TRUE(loaded->options().prewarm_partition_pool);
  const service::ArtifactStats at_load = loaded->artifact_stats();
  EXPECT_EQ(at_load.partition.misses, pool);  // the load-time prewarm itself
  EXPECT_EQ(at_load.partition.hits, 0u);

  // Default-shaped queries land entirely inside the prewarmed pool.
  const ShortcutService svc(loaded, 5);
  std::vector<QueryRequest> batch;
  for (std::uint32_t i = 0; i < 10; ++i) {
    QueryRequest q;
    q.id = 500 + i;
    q.kind = (i % 2 == 0) ? QueryKind::kShortcutQuality : QueryKind::kShortcutBuild;
    batch.push_back(q);
  }
  (void)svc.run_batch(batch);
  const service::ArtifactStats after = loaded->artifact_stats();
  EXPECT_EQ(after.partition.misses, pool);  // zero misses beyond the prewarm
  EXPECT_GT(after.partition.hits, 0u);
}

TEST(SnapshotStore, SaveIsCanonicalAndRoundTripStable) {
  TempDir dir("canon");
  Rng rng(41);
  const auto built = GraphSnapshot::build(graph::connected_gnm(120, 360, rng));
  const ShortcutService svc(built, 5);
  (void)svc.run_batch(mixed_batch(built->num_vertices()));  // populate artifacts

  const std::filesystem::path a = dir.path / "a.lcss";
  const std::filesystem::path b = dir.path / "b.lcss";
  service::save_snapshot(*built, a);
  service::save_snapshot(*built, b);
  EXPECT_EQ(read_file(a), read_file(b)) << "same state must serialize to identical bytes";

  // load → save reproduces the file: seeded artifacts re-serialize to the
  // same canonical section bytes.
  const auto loaded = GraphSnapshot::load(a);
  const std::filesystem::path c = dir.path / "c.lcss";
  service::save_snapshot(*loaded, c);
  EXPECT_EQ(read_file(a), read_file(c));
}

TEST(SnapshotStore, MalformedFilesRejectedDeterministically) {
  TempDir dir("corrupt");
  Rng rng(51);
  const auto built = GraphSnapshot::build(graph::connected_gnm(80, 240, rng));
  const ShortcutService svc(built, 5);
  (void)svc.run_batch(mixed_batch(built->num_vertices()));
  const std::filesystem::path good = dir.path / "good.lcss";
  service::save_snapshot(*built, good);
  const std::vector<std::byte> bytes = read_file(good);
  ASSERT_GT(bytes.size(), 384u);
  const std::filesystem::path tampered = dir.path / "bad.lcss";

  const auto with_flipped_byte = [&](std::size_t at) {
    std::vector<std::byte> copy = bytes;
    copy[at] ^= std::byte{0x01};
    return copy;
  };

  write_file(tampered, with_flipped_byte(0));  // magic
  expect_rejected(tampered, "bad magic", "flipped magic");

  write_file(tampered, with_flipped_byte(8));  // version word
  expect_rejected(tampered, "unsupported format version", "future version");

  write_file(tampered, with_flipped_byte(12));  // endian tag
  expect_rejected(tampered, "endianness mismatch", "foreign byte order");

  write_file(tampered, with_flipped_byte(16));  // fingerprint field
  expect_rejected(tampered, "header checksum mismatch", "flipped header field");

  write_file(tampered, with_flipped_byte(130));  // inside the section table
  expect_rejected(tampered, "section table checksum mismatch", "flipped table byte");

  write_file(tampered, with_flipped_byte(400));        // first payload section
  expect_rejected(tampered, "section checksum mismatch", "flipped payload byte (head)");
  write_file(tampered, with_flipped_byte(bytes.size() / 2));
  expect_rejected(tampered, "section checksum mismatch", "flipped payload byte (middle)");

  for (const std::size_t cut : {std::size_t{10}, std::size_t{127}, std::size_t{300}}) {
    write_file(tampered, {bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut)});
    expect_rejected(tampered, "file truncated", "truncated to " + std::to_string(cut));
  }
  write_file(tampered, {bytes.begin(), bytes.end() - 1});
  expect_rejected(tampered, "file size mismatch", "truncated by one byte");
  {
    std::vector<std::byte> grown = bytes;
    grown.push_back(std::byte{0});
    write_file(tampered, grown);
    expect_rejected(tampered, "file size mismatch", "trailing garbage");
  }
}

TEST(SnapshotStore, StoreAddressesByFingerprintAndSharesHandles) {
  TempDir dir("store");
  SnapshotStore store(dir.path);
  EXPECT_TRUE(store.list().empty());

  Rng rng(61);
  const auto snap_a = GraphSnapshot::build(graph::connected_gnm(60, 180, rng));
  const auto snap_b = GraphSnapshot::build(graph::connected_gnm(90, 270, rng));
  ASSERT_NE(snap_a->fingerprint(), snap_b->fingerprint());

  const std::filesystem::path path_a = store.save(*snap_a);
  store.save(*snap_b);
  EXPECT_EQ(path_a, store.path_of(snap_a->fingerprint()));
  EXPECT_TRUE(store.contains(snap_a->fingerprint()));
  std::vector<std::uint64_t> want{snap_a->fingerprint(), snap_b->fingerprint()};
  std::sort(want.begin(), want.end());
  EXPECT_EQ(store.list(), want);

  // Repeated opens share one live handle — the cross-tenant artifact
  // sharing the query-server example depends on.
  const auto first = store.open(snap_a->fingerprint());
  const auto second = store.open(snap_a->fingerprint());
  EXPECT_EQ(first.get(), second.get());
  EXPECT_NE(first.get(), snap_a.get());  // loaded, not the built instance

  EXPECT_TRUE(store.evict(snap_a->fingerprint()));
  EXPECT_FALSE(store.evict(snap_a->fingerprint()));
  EXPECT_FALSE(store.contains(snap_a->fingerprint()));
  EXPECT_THROW((void)store.open(snap_a->fingerprint()), std::runtime_error);
  EXPECT_EQ(first->num_vertices(), 60u);  // evicted-but-open stays valid

  // A file that does not round-trip to its address is rejected.
  const std::uint64_t bogus = snap_b->fingerprint() ^ 1;
  std::filesystem::copy_file(store.path_of(snap_b->fingerprint()), store.path_of(bogus));
  try {
    (void)store.open(bogus);
    FAIL() << "fingerprint-mismatched file was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("does not match"), std::string::npos) << e.what();
  }
}

}  // namespace
