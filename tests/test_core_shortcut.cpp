// Tests for the shortcut data type and the quality verifier, against
// hand-computed instances and brute-force recomputation.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/shortcut.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace lcs::core {
namespace {

TEST(InducedEdges, PathPart) {
  const Graph g = graph::path_graph(8);
  // Part {2,3,4}: edges 2-3 (id 2) and 3-4 (id 3).
  const auto edges = induced_part_edges(g, {2, 3, 4});
  EXPECT_EQ(edges, (std::vector<EdgeId>{2, 3}));
}

TEST(InducedEdges, DisconnectedVerticesNoEdges) {
  const Graph g = graph::path_graph(8);
  EXPECT_TRUE(induced_part_edges(g, {0, 4}).empty());
}

TEST(InducedEdges, CliquePart) {
  const Graph g = graph::complete_graph(6);
  const auto edges = induced_part_edges(g, {0, 1, 2});
  EXPECT_EQ(edges.size(), 3u);
}

TEST(AugmentedEdges, UnionWithoutDuplicates) {
  const Graph g = graph::path_graph(6);
  // Part {1,2} induces edge 1; H adds edges {1, 3}.
  const auto edges = augmented_edges(g, {1, 2}, {1, 3});
  EXPECT_EQ(edges, (std::vector<EdgeId>{1, 3}));
}

TEST(PartDilation, PathWithoutShortcut) {
  const Graph g = graph::path_graph(10);
  std::vector<VertexId> part(10);
  for (VertexId v = 0; v < 10; ++v) part[v] = v;
  const PartDilation pd = measure_part_dilation(g, part, 9, {});
  EXPECT_TRUE(pd.covered);
  EXPECT_TRUE(pd.exact);
  EXPECT_EQ(pd.diameter_ub, 9u);
  EXPECT_EQ(pd.cover_radius, 9u);  // leader 9 reaches vertex 0 in 9 hops
}

TEST(PartDilation, ShortcutShrinksDiameter) {
  // Path 0..9 plus a detour vertex 10 joined to both ends.  The part is the
  // path only; the detour edges are *outside* G[S] and act as the shortcut.
  graph::GraphBuilder b(11);
  for (VertexId v = 0; v + 1 < 10; ++v) b.add_edge(v, v + 1);
  b.add_edge(0, 10);
  b.add_edge(9, 10);
  const Graph g = std::move(b).build();
  std::vector<VertexId> part(10);
  for (VertexId v = 0; v < 10; ++v) part[v] = v;
  std::vector<EdgeId> detour;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (g.edge(e).v == 10) detour.push_back(e);
  ASSERT_EQ(detour.size(), 2u);

  const PartDilation without = measure_part_dilation(g, part, 9, {});
  const PartDilation with_detour = measure_part_dilation(g, part, 9, detour);
  EXPECT_EQ(without.diameter_ub, 9u);
  EXPECT_EQ(with_detour.diameter_ub, 5u);  // cycle of 11 -> diameter 5
}

TEST(PartDilation, SingletonPart) {
  const Graph g = graph::path_graph(4);
  const PartDilation pd = measure_part_dilation(g, {2}, 2, {});
  EXPECT_TRUE(pd.covered);
  EXPECT_LE(pd.diameter_ub, 2u);
  EXPECT_EQ(pd.cover_radius, 0u);
}

TEST(PartDilation, SingletonNoEdges) {
  const Graph g = graph::Graph::from_edges(3, {{0, 1}});
  const PartDilation pd = measure_part_dilation(g, {2}, 2, {});
  EXPECT_TRUE(pd.covered);
  EXPECT_EQ(pd.diameter_ub, 0u);
}

TEST(PartDilation, UncoveredWhenNoConnection) {
  const Graph g = graph::Graph::from_edges(4, {{0, 1}, {2, 3}});
  // "Part" {0, 3} has no connecting structure at all in the augmented
  // subgraph (H empty, no induced edges between them).
  const PartDilation pd = measure_part_dilation(g, {0, 3}, 3, {});
  EXPECT_FALSE(pd.covered);
  EXPECT_FALSE(pd.exact);  // an uncovered part never claims an exact diameter
}

TEST(PartDilation, UncoveredEdgelessPartNotExact) {
  // A multi-vertex part with an empty augmented subgraph is uncovered; it
  // must not report exact=true (regression: the early branch used to).
  const Graph g = graph::Graph::from_edges(5, {{0, 1}, {2, 3}});
  const PartDilation pd = measure_part_dilation(g, {0, 4}, 4, {});
  EXPECT_FALSE(pd.covered);
  EXPECT_FALSE(pd.exact);
}

TEST(PartDilation, DisconnectedAugmentedSubgraphNotSilentlyApproximated) {
  // Regression: part {2,3,4,5} is a path segment, and H adds a stray
  // component {8,9}.  The subgraph is small enough for the exact-diameter
  // budget, which used to be silently ignored because the whole augmented
  // subgraph is disconnected.  Now the budget is honoured on the leader's
  // component (exact diameter, lb == ub) while exact=false records that no
  // finite diameter of the full augmented subgraph exists.
  graph::GraphBuilder b(10);
  for (VertexId v = 0; v + 1 < 8; ++v) b.add_edge(v, v + 1);
  b.add_edge(8, 9);
  const Graph g = std::move(b).build();
  const std::vector<EdgeId> stray = {g.num_edges() - 1};  // edge 8-9

  QualityOptions within_budget;  // default threshold far above 6 vertices
  const PartDilation pd = measure_part_dilation(g, {2, 3, 4, 5}, 5, stray, within_budget);
  EXPECT_TRUE(pd.covered);  // S is connected through its leader
  EXPECT_FALSE(pd.exact);   // the full augmented subgraph is not
  // Leader component is exactly the induced path 2-3-4-5: exact diameter 3,
  // reported as a tight bracket.  (The old sweep bracket reported ub = 6.)
  EXPECT_EQ(pd.diameter_lb, 3u);
  EXPECT_EQ(pd.diameter_ub, 3u);
  EXPECT_EQ(pd.cover_radius, 3u);

  // Beyond the exact budget the optimistic sweep bracket is kept
  // (documented behaviour for subgraphs too large to check exactly).
  QualityOptions beyond_budget;
  beyond_budget.exact_diameter_max_vertices = 1;
  const PartDilation approx = measure_part_dilation(g, {2, 3, 4, 5}, 5, stray, beyond_budget);
  EXPECT_TRUE(approx.covered);
  EXPECT_FALSE(approx.exact);
  EXPECT_LE(approx.diameter_lb, approx.diameter_ub);
}

// --- congestion ---------------------------------------------------------------

TEST(Congestion, DefinitionOnHandExample) {
  // Path of 6: parts {0,1} and {4,5}; H_0 = {e2}, H_1 = {e2}.
  const Graph g = graph::path_graph(6);
  Partition parts;
  parts.parts = {{0, 1}, {4, 5}};
  ShortcutSet sc;
  sc.h = {{2}, {2}};
  const auto load = edge_congestion(g, parts, sc);
  EXPECT_EQ(load[0], 1u);  // induced in part 0 only
  EXPECT_EQ(load[2], 2u);  // in both H_0 and H_1
  EXPECT_EQ(load[4], 1u);  // induced in part 1 only
  EXPECT_EQ(load[1], 0u);
  EXPECT_EQ(load[3], 0u);
}

TEST(Congestion, InducedAndShortcutNotDoubleCounted) {
  const Graph g = graph::path_graph(4);
  Partition parts;
  parts.parts = {{0, 1, 2}};
  ShortcutSet sc;
  sc.h = {{0, 1}};  // already induced edges of the part
  const auto load = edge_congestion(g, parts, sc);
  EXPECT_EQ(load[0], 1u);
  EXPECT_EQ(load[1], 1u);
}

TEST(Quality, ReportMatchesDefinitionSmall) {
  const Graph g = graph::cycle_graph(8);
  Partition parts;
  parts.parts = {{0, 1, 2}, {4, 5, 6}};
  ShortcutSet sc;
  sc.h.resize(2);
  const QualityReport rep = measure_quality(g, parts, sc);
  EXPECT_TRUE(rep.all_covered);
  EXPECT_EQ(rep.congestion, 1u);
  EXPECT_EQ(rep.dilation_ub, 2u);
  EXPECT_EQ(rep.parts.size(), 2u);
}

TEST(Quality, MismatchedSizesRejected) {
  const Graph g = graph::path_graph(4);
  Partition parts;
  parts.parts = {{0, 1}};
  ShortcutSet sc;  // empty
  EXPECT_THROW(measure_quality(g, parts, sc), std::invalid_argument);
}

TEST(Quality, WholeGraphShortcutGivesGraphDiameter) {
  Rng rng(50);
  const Graph g = graph::connected_gnm(40, 90, rng);
  const Partition parts = graph::ball_partition(g, 3, rng);
  ShortcutSet sc;
  sc.h.resize(parts.num_parts());
  std::vector<EdgeId> all(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) all[e] = e;
  for (auto& h : sc.h) h = all;
  const QualityReport rep = measure_quality(g, parts, sc);
  EXPECT_TRUE(rep.all_covered);
  EXPECT_EQ(rep.congestion, parts.num_parts());
  EXPECT_EQ(rep.dilation_ub, graph::diameter_exact(g));
}

TEST(Quality, QualityIsCongestionPlusDilation) {
  QualityReport rep;
  rep.congestion = 7;
  rep.dilation_ub = 5;
  EXPECT_EQ(rep.quality(), 12u);
}

TEST(Quality, LargeSubgraphUsesBracket) {
  // Force the non-exact path by setting the exact threshold to 1.
  Rng rng(51);
  const Graph g = graph::connected_gnm(60, 130, rng);
  const Partition parts = graph::ball_partition(g, 2, rng);
  ShortcutSet sc;
  sc.h.resize(parts.num_parts());
  QualityOptions opt;
  opt.exact_diameter_max_vertices = 1;
  const QualityReport rep = measure_quality(g, parts, sc, opt);
  EXPECT_TRUE(rep.all_covered);
  EXPECT_LE(rep.dilation_lb, rep.dilation_ub);
  for (const auto& pd : rep.parts) {
    EXPECT_FALSE(pd.exact);
    EXPECT_LE(pd.diameter_lb, pd.diameter_ub);
    EXPECT_LE(pd.cover_radius, pd.diameter_ub);
  }
}

TEST(Quality, BracketContainsExact) {
  Rng rng(52);
  const Graph g = graph::connected_gnm(50, 110, rng);
  const Partition parts = graph::ball_partition(g, 3, rng);
  ShortcutSet sc;
  sc.h.resize(parts.num_parts());
  QualityOptions approx;
  approx.exact_diameter_max_vertices = 1;
  QualityOptions exact;
  exact.exact_diameter_max_vertices = 100000;
  const QualityReport a = measure_quality(g, parts, sc, approx);
  const QualityReport b = measure_quality(g, parts, sc, exact);
  EXPECT_LE(a.dilation_lb, b.dilation_ub);
  EXPECT_GE(a.dilation_ub, b.dilation_ub);
  EXPECT_EQ(a.congestion, b.congestion);
}

}  // namespace
}  // namespace lcs::core
