// Unit tests for the utility layer: RNG, math, stats, table, contracts.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/check.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace lcs {
namespace {

// --- check macros ------------------------------------------------------------

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(LCS_REQUIRE(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(LCS_REQUIRE(true, "fine"));
}

TEST(Check, CheckThrowsLogicError) {
  EXPECT_THROW(LCS_CHECK(false, "bug"), std::logic_error);
  EXPECT_NO_THROW(LCS_CHECK(true, "fine"));
}

TEST(Check, MessageContainsContext) {
  try {
    LCS_REQUIRE(1 == 2, "custom context");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("custom context"), std::string::npos);
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
  }
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(r.uniform(17), 17u);
}

TEST(Rng, UniformRejectsZeroBound) {
  Rng r(7);
  EXPECT_THROW(r.uniform(0), std::invalid_argument);
}

TEST(Rng, UniformCoversAllResidues) {
  Rng r(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInRange) {
  Rng r(11);
  for (int i = 0; i < 500; ++i) {
    const auto v = r.uniform_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform_real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng r(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliApproximatesBias) {
  Rng r(19);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleDistinctProducesDistinct) {
  Rng r(29);
  for (const std::size_t count : {1u, 5u, 50u}) {
    const auto s = r.sample_distinct(100, count);
    EXPECT_EQ(s.size(), count);
    std::set<std::uint64_t> set(s.begin(), s.end());
    EXPECT_EQ(set.size(), count);
    for (const auto x : s) EXPECT_LT(x, 100u);
  }
}

TEST(Rng, SampleDistinctFullRange) {
  Rng r(31);
  const auto s = r.sample_distinct(10, 10);
  std::set<std::uint64_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 10u);
}

TEST(Rng, SampleDistinctRejectsOverdraw) {
  Rng r(37);
  EXPECT_THROW(r.sample_distinct(5, 6), std::invalid_argument);
}

TEST(Rng, ForkIsIndependentOfParentUse) {
  Rng a(99);
  const Rng f1 = a.fork(1);
  // Forking must not consume parent state.
  Rng b(99);
  const Rng f2 = b.fork(1);
  Rng c1 = f1, c2 = f2;
  for (int i = 0; i < 20; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Rng, HashIsStable) {
  EXPECT_EQ(hash64(12345), hash64(12345));
  EXPECT_NE(hash64(12345), hash64(12346));
}

TEST(Rng, BinomialExtremes) {
  Rng r(41);
  EXPECT_EQ(r.binomial(0, 0.5), 0u);
  EXPECT_EQ(r.binomial(100, 0.0), 0u);
  EXPECT_EQ(r.binomial(100, 1.0), 100u);
  EXPECT_EQ(r.binomial(100, -0.3), 0u);
  EXPECT_EQ(r.binomial(100, 1.7), 100u);
  for (int i = 0; i < 200; ++i) EXPECT_LE(r.binomial(7, 0.9), 7u);
}

TEST(Rng, BinomialDeterministicForSameSeed) {
  Rng a(43), b(43);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.binomial(1000, 0.37), b.binomial(1000, 0.37));
}

TEST(Rng, BinomialMatchesMomentsInBothRegimes) {
  // Small n*p exercises the geometric-skip inversion, large n*p the BTRS
  // rejection; both must track mean n*p and variance n*p*(1-p).  p > 0.5
  // additionally exercises the complement reflection.
  struct Case {
    std::uint64_t n;
    double p;
  };
  Rng r(47);
  const int draws = 20000;
  for (const Case c : {Case{40, 0.05}, Case{12, 0.5}, Case{400, 0.2}, Case{1000, 0.85}}) {
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < draws; ++i) {
      const double k = static_cast<double>(r.binomial(c.n, c.p));
      ASSERT_LE(k, static_cast<double>(c.n));
      sum += k;
      sum_sq += k * k;
    }
    const double mean = sum / draws;
    const double var = sum_sq / draws - mean * mean;
    const double want_mean = static_cast<double>(c.n) * c.p;
    const double want_var = want_mean * (1.0 - c.p);
    EXPECT_NEAR(mean, want_mean, 5.0 * std::sqrt(want_var / draws) + 0.05)
        << "n=" << c.n << " p=" << c.p;
    EXPECT_NEAR(var, want_var, 0.12 * want_var + 0.1) << "n=" << c.n << " p=" << c.p;
  }
}

namespace {

/// Exact Binomial(n, p) log-pmf via log-gamma (stable for the small n used
/// in the chi-square checks).
double binomial_log_pmf(std::uint64_t n, std::uint64_t k, double p) {
  const double dn = static_cast<double>(n), dk = static_cast<double>(k);
  return std::lgamma(dn + 1) - std::lgamma(dk + 1) - std::lgamma(dn - dk + 1) +
         dk * std::log(p) + (dn - dk) * std::log1p(-p);
}

}  // namespace

TEST(Rng, BinomialChiSquareAgainstExactPmfBothRegimes) {
  // Goodness of fit against the exact distribution, one case per sampler
  // regime: n*p < 10 exercises the geometric-skip inversion, n*p >= 10 the
  // BTRS rejection.  Outcomes with tiny expectation pool into tail bins so
  // every cell has expectation >= ~5; the thresholds sit far above the
  // 99.99th chi-square percentile for the respective degrees of freedom,
  // and the draws are a fixed deterministic stream (no flakes).
  struct Case {
    std::uint64_t n;
    double p;
    double threshold;
  };
  const int draws = 20000;
  for (const Case c : {Case{8, 0.3, 45.0},       // inversion, 9 outcomes
                       Case{60, 0.5, 80.0}}) {   // BTRS, binned center + tails
    Rng r(53);
    std::vector<std::uint64_t> counts(c.n + 1, 0);
    for (int i = 0; i < draws; ++i) {
      const std::uint64_t k = r.binomial(c.n, c.p);
      ASSERT_LE(k, c.n);
      ++counts[k];
    }
    std::vector<double> expected(c.n + 1, 0.0);
    for (std::uint64_t k = 0; k <= c.n; ++k)
      expected[k] = draws * std::exp(binomial_log_pmf(c.n, k, c.p));
    // Pool cells with expectation < 5 into their neighbour toward the mode.
    double chi2 = 0.0, pooled_obs = 0.0, pooled_exp = 0.0;
    for (std::uint64_t k = 0; k <= c.n; ++k) {
      pooled_obs += static_cast<double>(counts[k]);
      pooled_exp += expected[k];
      if (pooled_exp >= 5.0) {
        chi2 += (pooled_obs - pooled_exp) * (pooled_obs - pooled_exp) / pooled_exp;
        pooled_obs = pooled_exp = 0.0;
      }
    }
    if (pooled_exp > 0.0)
      chi2 += (pooled_obs - pooled_exp) * (pooled_obs - pooled_exp) / pooled_exp;
    EXPECT_LT(chi2, c.threshold) << "n=" << c.n << " p=" << c.p;
  }
}

TEST(Rng, BinomialCrossoverRegimeKeepsMoments) {
  // n*min(p,1-p) straddling the inversion/BTRS switch at 10: both sides of
  // the crossover (and the reflected p > 0.5 variants) must track mean and
  // variance — a regression in either sampler's acceptance logic shows up
  // here first.
  struct Case {
    std::uint64_t n;
    double p;
  };
  const int draws = 20000;
  for (const Case c : {Case{100, 0.095}, Case{100, 0.105}, Case{20, 0.5}, Case{21, 0.5},
                       Case{100, 0.905}, Case{100, 0.895}}) {
    Rng r(59);
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < draws; ++i) {
      const double k = static_cast<double>(r.binomial(c.n, c.p));
      ASSERT_LE(k, static_cast<double>(c.n));
      sum += k;
      sum_sq += k * k;
    }
    const double mean = sum / draws;
    const double var = sum_sq / draws - mean * mean;
    const double want_mean = static_cast<double>(c.n) * c.p;
    const double want_var = want_mean * (1.0 - c.p);
    EXPECT_NEAR(mean, want_mean, 5.0 * std::sqrt(want_var / draws) + 0.05)
        << "n=" << c.n << " p=" << c.p;
    EXPECT_NEAR(var, want_var, 0.15 * want_var + 0.1) << "n=" << c.n << " p=" << c.p;
  }
}

TEST(Rng, BinomialLargeNStaysExpectedScale) {
  // Huge n with small p: the samplers must stay O(1)-ish (inversion is
  // O(n*p), BTRS O(1)) and keep the first two moments — a naive n-trial
  // loop would time out here long before the assertions could fail.
  struct Case {
    std::uint64_t n;
    double p;
  };
  const int draws = 4000;
  for (const Case c : {Case{1'000'000, 2e-5},        // np = 20: BTRS
                       Case{1'000'000'000, 5e-9},    // np = 5: inversion skips
                       Case{100'000'000, 2e-7}}) {   // np = 20 at large n
    Rng r(61);
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < draws; ++i) {
      const double k = static_cast<double>(r.binomial(c.n, c.p));
      ASSERT_LE(k, static_cast<double>(c.n));
      sum += k;
      sum_sq += k * k;
    }
    const double mean = sum / draws;
    const double var = sum_sq / draws - mean * mean;
    const double want_mean = static_cast<double>(c.n) * c.p;
    EXPECT_NEAR(mean, want_mean, 6.0 * std::sqrt(want_mean / draws) + 0.05)
        << "n=" << c.n << " p=" << c.p;
    EXPECT_NEAR(var, want_mean, 0.2 * want_mean + 0.1) << "n=" << c.n << " p=" << c.p;
  }
}

TEST(Rng, BinomialExtremeProbabilityTails) {
  // p so close to 0 or 1 that successes (or failures) are rare events: the
  // draw must stay in range, hit the all-or-nothing values almost always,
  // and keep the rare-event rate near n*min(p, 1-p).
  Rng r(67);
  const int draws = 5000;
  std::uint64_t nonzero = 0;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t k = r.binomial(1000, 1e-7);  // np = 1e-4
    ASSERT_LE(k, 1000u);
    nonzero += k > 0 ? 1 : 0;
  }
  EXPECT_LE(nonzero, 5u);  // P(any success) ~ 1e-4 per draw

  std::uint64_t not_full = 0;
  double shortfall = 0.0;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t k = r.binomial(1000, 1.0 - 1e-5);  // n*(1-p) = 0.01
    ASSERT_LE(k, 1000u);
    not_full += k < 1000 ? 1 : 0;
    shortfall += static_cast<double>(1000 - k);
  }
  // ~draws * 0.01 = 50 expected misses; allow a wide deterministic margin.
  EXPECT_LT(not_full, 120u);
  EXPECT_GT(not_full, 10u);
  EXPECT_NEAR(shortfall / draws, 0.01, 0.008);
}

// --- math --------------------------------------------------------------------

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(1, 100), 1u);
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_THROW(ceil_div(1, 0), std::invalid_argument);
}

TEST(Math, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(floor_log2(1025), 10u);
  EXPECT_THROW(floor_log2(0), std::invalid_argument);
}

TEST(Math, KdMatchesPaperExponent) {
  // k_D = n^((D-2)/(2D-2)): spot checks from the paper's table of regimes.
  EXPECT_NEAR(k_d_of(10000, 3), std::pow(10000.0, 0.25), 1e-9);   // n^(1/4)
  EXPECT_NEAR(k_d_of(10000, 4), std::pow(10000.0, 1.0 / 3.0), 1e-9);  // n^(1/3)
  EXPECT_NEAR(k_d_of(10000, 6), std::pow(10000.0, 0.4), 1e-9);    // n^(2/5)
}

TEST(Math, KdTrivialForSmallDiameter) {
  EXPECT_DOUBLE_EQ(k_d_of(10000, 1), 1.0);
  EXPECT_DOUBLE_EQ(k_d_of(10000, 2), 1.0);
}

TEST(Math, KdApproachesSqrtNForLargeD) {
  // (D-2)/(2D-2) -> 1/2: k_D approaches sqrt(n) from below.
  const double kd = k_d_of(1 << 20, 50);
  EXPECT_LT(kd, std::sqrt(double(1 << 20)));
  EXPECT_GT(kd, 0.8 * std::sqrt(double(1 << 20)));
}

TEST(Math, KdIsMonotoneInDiameter) {
  double prev = 0;
  for (unsigned d = 3; d <= 12; ++d) {
    const double cur = k_d_of(4096, d);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(Math, ShortcutParamsBasic) {
  const auto p = ShortcutParams::make(4096, 4);
  EXPECT_EQ(p.n, 4096u);
  EXPECT_EQ(p.diameter, 4u);
  EXPECT_NEAR(p.k_d, std::pow(4096.0, 1.0 / 3.0), 1e-9);
  EXPECT_EQ(p.large_threshold, 16u);
  EXPECT_EQ(p.max_large_parts, 256u);
  EXPECT_EQ(p.repetitions, 4u);
  // p = k_D ln n / N = 16 * ln(4096) / 256.
  EXPECT_NEAR(p.sample_prob, 16.0 * std::log(4096.0) / 256.0, 1e-9);
}

TEST(Math, ShortcutParamsBetaScalesProbability) {
  const auto p1 = ShortcutParams::make(4096, 4, 1.0);
  const auto p2 = ShortcutParams::make(4096, 4, 0.5);
  EXPECT_NEAR(p2.sample_prob, p1.sample_prob / 2.0, 1e-12);
}

TEST(Math, ShortcutParamsProbabilityClamped) {
  // Tiny n with big D: raw p > 1 must clamp.
  const auto p = ShortcutParams::make(64, 8, 10.0);
  EXPECT_LE(p.sample_prob, 1.0);
  EXPECT_GE(p.sample_prob, 0.0);
}

TEST(Math, ShortcutParamsValidation) {
  EXPECT_THROW(ShortcutParams::make(1, 4), std::invalid_argument);
  EXPECT_THROW(ShortcutParams::make(100, 0), std::invalid_argument);
  EXPECT_THROW(ShortcutParams::make(100, 4, 0.0), std::invalid_argument);
}

TEST(Math, LogLogSlopeRecoversExponent) {
  // y = 3 x^0.4
  std::vector<double> xs, ys;
  for (double x : {10.0, 100.0, 1000.0, 10000.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 0.4));
  }
  EXPECT_NEAR(log_log_slope(xs.data(), ys.data(), 4), 0.4, 1e-9);
}

TEST(Math, LogLogSlopeIgnoresNonPositive) {
  std::vector<double> xs{0.0, 10.0, 100.0};
  std::vector<double> ys{5.0, 10.0, 100.0};
  EXPECT_NEAR(log_log_slope(xs.data(), ys.data(), 3), 1.0, 1e-9);
}

TEST(Math, LogLogSlopeNeedsTwoPoints) {
  std::vector<double> xs{10.0};
  std::vector<double> ys{1.0};
  EXPECT_THROW(log_log_slope(xs.data(), ys.data(), 1), std::invalid_argument);
}

// --- stats -------------------------------------------------------------------

TEST(Stats, BasicMoments) {
  Stats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(1.25), 1e-12);
}

TEST(Stats, Percentiles) {
  Stats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 0.2);
}

TEST(Stats, SingleSample) {
  Stats s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, EmptyThrows) {
  Stats s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), std::invalid_argument);
  EXPECT_THROW(s.percentile(50), std::invalid_argument);
}

TEST(Stats, AddAfterQueryKeepsOrdering) {
  Stats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  s.add(10.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

// --- table -------------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::uint64_t{42});
  t.row().cell("b").cell(3.14159, 2);
  std::ostringstream os;
  t.print(os, "demo");
  const std::string out = os.str();
  EXPECT_NE(out.find("=== demo ==="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsOverfilledRow) {
  Table t({"only"});
  t.row().cell("x");
  EXPECT_THROW(t.cell("y"), std::invalid_argument);
}

TEST(Table, RejectsCellWithoutRow) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

}  // namespace
}  // namespace lcs
