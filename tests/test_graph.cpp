// Unit tests for the graph substrate: CSR graph, BFS family, connectivity,
// diameter, subgraphs, bridges and union-find — cross-checked against
// brute-force oracles on small instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/union_find.hpp"
#include "graph/weighted.hpp"
#include "util/rng.hpp"

namespace lcs::graph {
namespace {

Graph triangle_plus_tail() {
  // 0-1-2 triangle, 2-3-4 tail.
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  return std::move(b).build();
}

// --- Graph / GraphBuilder --------------------------------------------------

TEST(Graph, BasicCounts) {
  const Graph g = triangle_plus_tail();
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(4), 1u);
}

TEST(Graph, EdgesStoredWithSmallerEndpointFirst) {
  const Graph g = triangle_plus_tail();
  for (EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_LT(g.edge(e).u, g.edge(e).v);
}

TEST(Graph, NeighborsCarryEdgeIds) {
  const Graph g = triangle_plus_tail();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const HalfEdge he : g.neighbors(v)) {
      const Edge ed = g.edge(he.edge);
      EXPECT_TRUE((ed.u == v && ed.v == he.to) || (ed.v == v && ed.u == he.to));
    }
  }
}

TEST(Graph, OtherEndpoint) {
  const Graph g = triangle_plus_tail();
  const Edge ed = g.edge(0);
  EXPECT_EQ(g.other_endpoint(0, ed.u), ed.v);
  EXPECT_EQ(g.other_endpoint(0, ed.v), ed.u);
  EXPECT_THROW(g.other_endpoint(0, 4), std::invalid_argument);
}

TEST(Graph, DuplicateEdgesMerged) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(0, 1);
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, SelfLoopRejected) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(1, 1), std::invalid_argument);
  EXPECT_THROW(Graph::from_edges(3, {{2, 2}}), std::invalid_argument);
}

TEST(Graph, OutOfRangeRejected) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), std::invalid_argument);
}

TEST(Graph, AddVerticesExtends) {
  GraphBuilder b(2);
  const VertexId first = b.add_vertices(3);
  EXPECT_EQ(first, 2u);
  EXPECT_EQ(b.num_vertices(), 5u);
  b.add_edge(0, 4);
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.num_vertices(), 5u);
}

TEST(Graph, EmptyGraph) {
  const Graph g = Graph::from_edges(0, {});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, IsolatedVerticesExist) {
  const Graph g = Graph::from_edges(4, {{0, 1}});
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.degree(3), 0u);
}

// --- BFS ----------------------------------------------------------------------

TEST(Bfs, DistancesOnPath) {
  const Graph g = path_graph(6);
  const BfsResult r = bfs(g, 0);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(r.dist[v], v);
  EXPECT_EQ(r.max_dist, 5u);
  EXPECT_EQ(r.reached, 6u);
}

TEST(Bfs, ParentsFormTree) {
  Rng rng(5);
  const Graph g = connected_gnm(50, 120, rng);
  const BfsResult r = bfs(g, 3);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v == 3) {
      EXPECT_EQ(r.parent[v], kNoVertex);
      continue;
    }
    ASSERT_NE(r.parent[v], kNoVertex);
    EXPECT_EQ(r.dist[v], r.dist[r.parent[v]] + 1);
    const Edge ed = g.edge(r.parent_edge[v]);
    EXPECT_TRUE((ed.u == v && ed.v == r.parent[v]) || (ed.v == v && ed.u == r.parent[v]));
  }
}

TEST(Bfs, TruncationStopsAtCap) {
  const Graph g = path_graph(10);
  const BfsResult r = bfs_truncated(g, 0, 4);
  EXPECT_EQ(r.dist[4], 4u);
  EXPECT_EQ(r.dist[5], kUnreached);
  EXPECT_EQ(r.max_dist, 4u);
  EXPECT_EQ(r.reached, 5u);
}

TEST(Bfs, TruncationZeroReachesOnlySource) {
  const Graph g = path_graph(5);
  const BfsResult r = bfs_truncated(g, 2, 0);
  EXPECT_EQ(r.reached, 1u);
  EXPECT_EQ(r.dist[2], 0u);
  EXPECT_EQ(r.dist[1], kUnreached);
}

TEST(Bfs, MultiSourceNearest) {
  const Graph g = path_graph(9);
  const BfsResult r = bfs_multi(g, {0, 8});
  EXPECT_EQ(r.dist[4], 4u);
  EXPECT_EQ(r.dist[1], 1u);
  EXPECT_EQ(r.dist[7], 1u);
}

TEST(Bfs, DisconnectedUnreached) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  const BfsResult r = bfs(g, 0);
  EXPECT_EQ(r.dist[2], kUnreached);
  EXPECT_FALSE(r.reached_vertex(3));
  EXPECT_EQ(r.reached, 2u);
}

TEST(Bfs, ExtractPathEndpoints) {
  const Graph g = path_graph(7);
  const BfsResult r = bfs(g, 1);
  const auto p = extract_path(r, 6);
  ASSERT_EQ(p.size(), 6u);
  EXPECT_EQ(p.front(), 1u);
  EXPECT_EQ(p.back(), 6u);
  for (std::size_t i = 0; i + 1 < p.size(); ++i)
    EXPECT_EQ(r.dist[p[i + 1]], r.dist[p[i]] + 1);
}

TEST(Bfs, ExtractPathUnreachedEmpty) {
  const Graph g = Graph::from_edges(3, {{0, 1}});
  const BfsResult r = bfs(g, 0);
  EXPECT_TRUE(extract_path(r, 2).empty());
}

// --- components / connectivity -------------------------------------------------

TEST(Components, CountsAndLabels) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}});
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 3u);
  EXPECT_EQ(c.id[0], c.id[2]);
  EXPECT_EQ(c.id[3], c.id[4]);
  EXPECT_NE(c.id[0], c.id[3]);
  EXPECT_NE(c.id[5], c.id[0]);
}

TEST(Components, ConnectedGraphSingleComponent) {
  Rng rng(9);
  const Graph g = connected_gnm(64, 100, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(connected_components(g).count, 1u);
}

// --- diameter -------------------------------------------------------------------

TEST(Diameter, ExactOnKnownShapes) {
  EXPECT_EQ(diameter_exact(path_graph(10)), 9u);
  EXPECT_EQ(diameter_exact(cycle_graph(10)), 5u);
  EXPECT_EQ(diameter_exact(complete_graph(8)), 1u);
  EXPECT_EQ(diameter_exact(star_graph(9)), 2u);
  EXPECT_EQ(diameter_exact(grid_graph(4, 6)), 8u);
}

TEST(Diameter, DoubleSweepNeverExceedsExact) {
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = connected_gnm(40, 60 + trial, rng);
    const std::uint32_t exact = diameter_exact(g);
    const std::uint32_t sweep = diameter_double_sweep(g);
    EXPECT_LE(sweep, exact);
    EXPECT_GE(2 * sweep, exact);  // sweep is a 2-approximation at worst
  }
}

TEST(Diameter, DoubleSweepExactOnTrees) {
  Rng rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = random_tree(60, rng);
    EXPECT_EQ(diameter_double_sweep(g), diameter_exact(g));
  }
}

TEST(Diameter, EccentricityBounds) {
  const Graph g = path_graph(11);
  EXPECT_EQ(eccentricity(g, 5), 5u);
  EXPECT_EQ(eccentricity(g, 0), 10u);
}

TEST(Diameter, DisconnectedThrows) {
  const Graph g = Graph::from_edges(4, {{0, 1}});
  EXPECT_THROW(diameter_exact(g), std::invalid_argument);
}

// --- EdgeInducedSubgraph ---------------------------------------------------------

TEST(Subgraph, LocalTopologyMatches) {
  const Graph g = triangle_plus_tail();
  // Induce on the tail edges {2-3, 3-4}.
  std::vector<EdgeId> ids;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge ed = g.edge(e);
    if (ed.u >= 2) ids.push_back(e);
  }
  const EdgeInducedSubgraph sub(g, ids);
  EXPECT_EQ(sub.num_vertices(), 3u);
  EXPECT_EQ(sub.num_edges(), 2u);
  EXPECT_TRUE(sub.to_local(3).has_value());
  EXPECT_FALSE(sub.to_local(0).has_value());
  EXPECT_TRUE(sub.contains_all({2, 3, 4}));
  EXPECT_FALSE(sub.contains_all({1, 2}));
}

TEST(Subgraph, RoundTripVertexMapping) {
  const Graph g = triangle_plus_tail();
  std::vector<EdgeId> all(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) all[e] = e;
  const EdgeInducedSubgraph sub(g, all);
  for (VertexId l = 0; l < sub.num_vertices(); ++l) {
    const VertexId p = sub.to_parent(l);
    ASSERT_TRUE(sub.to_local(p).has_value());
    EXPECT_EQ(*sub.to_local(p), l);
  }
}

TEST(Subgraph, DuplicateEdgeIdsTolerated) {
  const Graph g = triangle_plus_tail();
  const EdgeInducedSubgraph sub(g, {0, 0, 1, 1});
  EXPECT_EQ(sub.num_edges(), 2u);
}

TEST(Subgraph, CoverRadius) {
  const Graph g = path_graph(8);
  std::vector<EdgeId> all(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) all[e] = e;
  const EdgeInducedSubgraph sub(g, all);
  EXPECT_EQ(cover_radius(sub, 0, {0, 1, 2, 3, 4, 5, 6, 7}), 7u);
  EXPECT_EQ(cover_radius(sub, 3, {0, 7}), 4u);
}

TEST(Subgraph, CoverRadiusUnreachable) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  const EdgeInducedSubgraph sub(g, {0});  // only edge 0-1
  EXPECT_FALSE(cover_radius(sub, 0, {0, 2}).has_value());
}

// --- bridges ---------------------------------------------------------------------

std::vector<EdgeId> bridges_brute_force(const Graph& g) {
  // An edge is a bridge iff removing it increases the component count.
  const std::uint32_t base = connected_components(g).count;
  std::vector<EdgeId> out;
  for (EdgeId skip = 0; skip < g.num_edges(); ++skip) {
    std::vector<std::pair<VertexId, VertexId>> edges;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (e == skip) continue;
      edges.emplace_back(g.edge(e).u, g.edge(e).v);
    }
    const Graph h = Graph::from_edges(g.num_vertices(), std::move(edges));
    if (connected_components(h).count > base) out.push_back(skip);
  }
  return out;
}

TEST(Bridges, KnownShapes) {
  EXPECT_EQ(bridges(cycle_graph(6)).size(), 0u);
  EXPECT_EQ(bridges(path_graph(6)).size(), 5u);
  EXPECT_EQ(bridges(complete_graph(5)).size(), 0u);
  const Graph g = triangle_plus_tail();
  const auto b = bridges(g);
  EXPECT_EQ(b.size(), 2u);  // the two tail edges
}

TEST(Bridges, MatchesBruteForceOnRandomGraphs) {
  Rng rng(77);
  for (int trial = 0; trial < 25; ++trial) {
    const Graph g = connected_gnm(16, 18 + (trial % 8), rng);
    EXPECT_EQ(bridges(g), bridges_brute_force(g)) << "trial " << trial;
  }
}

TEST(Bridges, DisconnectedGraphsHandled) {
  const Graph g = Graph::from_edges(5, {{0, 1}, {2, 3}, {3, 4}, {2, 4}});
  const auto b = bridges(g);
  EXPECT_EQ(b.size(), 1u);  // only 0-1
}

// --- union-find --------------------------------------------------------------------

TEST(UnionFind, BasicMergeSemantics) {
  UnionFind uf(6);
  EXPECT_EQ(uf.num_sets(), 6u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_EQ(uf.set_size(1), 2u);
}

TEST(UnionFind, TransitiveClosure) {
  UnionFind uf(10);
  uf.unite(0, 1);
  uf.unite(1, 2);
  uf.unite(5, 6);
  uf.unite(2, 5);
  EXPECT_TRUE(uf.same(0, 6));
  EXPECT_EQ(uf.set_size(0), 5u);
  EXPECT_EQ(uf.num_sets(), 6u);
}

TEST(UnionFind, OutOfRangeThrows) {
  UnionFind uf(3);
  EXPECT_THROW(uf.find(3), std::invalid_argument);
}

// --- weights ------------------------------------------------------------------------

TEST(Weights, RandomWeightsInRange) {
  Rng rng(1);
  const Graph g = complete_graph(10);
  const EdgeWeights w = random_weights(g, 50, rng);
  ASSERT_EQ(w.size(), g.num_edges());
  for (const Weight x : w) {
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 50);
  }
}

TEST(Weights, DistinctWeightsArePermutation) {
  Rng rng(2);
  const Graph g = complete_graph(9);
  const EdgeWeights w = distinct_random_weights(g, rng);
  std::set<Weight> set(w.begin(), w.end());
  EXPECT_EQ(set.size(), w.size());
  EXPECT_EQ(*set.begin(), 1);
  EXPECT_EQ(*set.rbegin(), static_cast<Weight>(w.size()));
}

TEST(Weights, TotalWeight) {
  Rng rng(3);
  const Graph g = path_graph(5);
  const EdgeWeights w{2, 3, 4, 5};
  EXPECT_EQ(total_weight(w, {0, 2}), 6);
  EXPECT_EQ(total_weight(w, {}), 0);
  EXPECT_THROW(total_weight(w, {9}), std::invalid_argument);
}

}  // namespace
}  // namespace lcs::graph
