// Tests for the scheduled multi-instance tree convergecast / broadcast —
// equivalence against the single-instance tree programs and against
// centralized aggregation, bandwidth sharing, and spec validation.
#include <gtest/gtest.h>

#include <algorithm>

#include "congest/multibfs.hpp"
#include "congest/multitree.hpp"
#include "congest/programs.hpp"
#include "congest/simulator.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace lcs::congest {
namespace {

using graph::Graph;

TreeInstanceSpec spec_from_bfs(const Graph& g, graph::VertexId root) {
  const graph::BfsResult r = graph::bfs(g, root);
  TreeInstanceSpec s;
  s.root = root;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!r.reached_vertex(v)) continue;
    s.members.push_back(v);
    s.parent.push_back(r.parent[v]);
    s.parent_edge.push_back(r.parent_edge[v]);
  }
  s.value.assign(s.members.size(), 0);
  return s;
}

TEST(MultiConvergecast, SumMatchesCentralized) {
  Rng rng(1);
  const Graph g = graph::connected_gnm(60, 130, rng);
  TreeInstanceSpec s = spec_from_bfs(g, 0);
  std::uint64_t want = 0;
  for (std::size_t k = 0; k < s.members.size(); ++k) {
    s.value[k] = s.members[k] * 3 + 1;
    want += s.value[k];
  }
  MultiConvergecastProgram prog(g, {s},
                                [](std::uint64_t a, std::uint64_t b) { return a + b; });
  Simulator sim(g, 1);
  const RunStats st = sim.run(prog, 1000);
  ASSERT_TRUE(st.completed);
  EXPECT_TRUE(prog.complete(0));
  EXPECT_EQ(prog.result(0), want);
}

TEST(MultiConvergecast, MatchesSingleInstanceProgram) {
  Rng rng(2);
  const Graph g = graph::connected_gnm(50, 110, rng);
  const graph::BfsResult r = graph::bfs(g, 7);
  const RootedTree t = RootedTree::from_bfs(g, r, 7);
  std::vector<std::uint64_t> values(g.num_vertices());
  for (std::size_t v = 0; v < values.size(); ++v) values[v] = hash64(v) % 997;

  ConvergecastProgram single(t, values, [](std::uint64_t a, std::uint64_t b) {
    return std::max(a, b);
  });
  Simulator sim1(g, 1);
  sim1.run(single, 1000);

  TreeInstanceSpec s = spec_from_bfs(g, 7);
  for (std::size_t k = 0; k < s.members.size(); ++k) s.value[k] = values[s.members[k]];
  MultiConvergecastProgram multi(
      g, {s}, [](std::uint64_t a, std::uint64_t b) { return std::max(a, b); });
  Simulator sim2(g, 1);
  sim2.run(multi, 1000);
  EXPECT_EQ(multi.result(0), single.result());
}

TEST(MultiConvergecast, ManyDisjointInstances) {
  // Two disjoint stars inside one graph aggregate independently.
  graph::GraphBuilder b(12);
  for (graph::VertexId v = 1; v < 6; ++v) b.add_edge(0, v);
  for (graph::VertexId v = 7; v < 12; ++v) b.add_edge(6, v);
  const Graph g = std::move(b).build();
  TreeInstanceSpec s0 = spec_from_bfs(g, 0);
  TreeInstanceSpec s1 = spec_from_bfs(g, 6);
  // BFS from 0 reaches only its star (graph is disconnected): members = 6.
  ASSERT_EQ(s0.members.size(), 6u);
  for (auto& x : s0.value) x = 1;
  for (auto& x : s1.value) x = 2;
  MultiConvergecastProgram prog(g, {s0, s1},
                                [](std::uint64_t a, std::uint64_t b) { return a + b; });
  Simulator sim(g, 1);
  const RunStats st = sim.run(prog, 100);
  ASSERT_TRUE(st.completed);
  EXPECT_EQ(prog.result(0), 6u);
  EXPECT_EQ(prog.result(1), 12u);
  EXPECT_LE(st.rounds, 5u);  // both stars finish in ~2 rounds, in parallel
}

TEST(MultiConvergecast, SharedTreeSerializes) {
  // K identical path trees rooted at one end: the last edge into the root
  // carries K reports; rounds >= K.
  const Graph g = graph::path_graph(6);
  const std::size_t K = 6;
  std::vector<TreeInstanceSpec> specs;
  for (std::size_t i = 0; i < K; ++i) {
    TreeInstanceSpec s = spec_from_bfs(g, 0);
    for (auto& x : s.value) x = 1;
    specs.push_back(std::move(s));
  }
  MultiConvergecastProgram prog(g, specs,
                                [](std::uint64_t a, std::uint64_t b) { return a + b; });
  Simulator sim(g, 1);
  const RunStats st = sim.run(prog, 1000);
  ASSERT_TRUE(st.completed);
  for (std::size_t i = 0; i < K; ++i) EXPECT_EQ(prog.result(i), 6u);
  EXPECT_GE(st.max_edge_load, K);
}

TEST(MultiConvergecast, SingletonTreeIsImmediate) {
  const Graph g = graph::path_graph(4);
  TreeInstanceSpec s;
  s.root = 2;
  s.members = {2};
  s.parent = {graph::kNoVertex};
  s.parent_edge = {graph::kNoEdge};
  s.value = {41};
  MultiConvergecastProgram prog(g, {s},
                                [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_TRUE(prog.idle());
  EXPECT_TRUE(prog.complete(0));
  EXPECT_EQ(prog.result(0), 41u);
}

TEST(MultiConvergecast, RejectsBadSpecs) {
  const Graph g = graph::path_graph(4);
  TreeInstanceSpec no_root;
  no_root.root = 1;
  no_root.members = {0};
  no_root.parent = {graph::kNoVertex};
  no_root.parent_edge = {graph::kNoEdge};
  no_root.value = {0};
  const auto sum = [](std::uint64_t a, std::uint64_t b) { return a + b; };
  EXPECT_THROW(MultiConvergecastProgram(g, {no_root}, sum), std::invalid_argument);

  TreeInstanceSpec bad_len = no_root;
  bad_len.members = {1, 0};
  EXPECT_THROW(MultiConvergecastProgram(g, {bad_len}, sum), std::invalid_argument);
}

TEST(MultiBroadcast, DeliversToAllMembers) {
  Rng rng(3);
  const Graph g = graph::connected_gnm(40, 90, rng);
  const TreeInstanceSpec s = spec_from_bfs(g, 5);
  MultiBroadcastProgram prog(g, {s}, {0xfeedULL});
  Simulator sim(g, 1);
  const RunStats st = sim.run(prog, 1000);
  ASSERT_TRUE(st.completed);
  EXPECT_TRUE(prog.complete(0));
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(prog.value_at(0, v), 0xfeedULL);
}

TEST(MultiBroadcast, NonMemberReportsMissing) {
  const Graph g = graph::Graph::from_edges(4, {{0, 1}, {2, 3}});
  const TreeInstanceSpec s = spec_from_bfs(g, 0);  // members {0,1}
  MultiBroadcastProgram prog(g, {s}, {7});
  Simulator sim(g, 1);
  sim.run(prog, 100);
  EXPECT_EQ(prog.value_at(0, 2), MultiBroadcastProgram::kMissing);
  EXPECT_EQ(prog.value_at(0, 1), 7u);
}

TEST(MultiBroadcast, PerInstanceValues) {
  const Graph g = graph::path_graph(5);
  const TreeInstanceSpec a = spec_from_bfs(g, 0);
  const TreeInstanceSpec b = spec_from_bfs(g, 4);
  MultiBroadcastProgram prog(g, {a, b}, {100, 200});
  Simulator sim(g, 1);
  const RunStats st = sim.run(prog, 100);
  ASSERT_TRUE(st.completed);
  EXPECT_EQ(prog.value_at(0, 2), 100u);
  EXPECT_EQ(prog.value_at(1, 2), 200u);
}

TEST(TreeSpecFromMultiBfs, RoundTrips) {
  Rng rng(4);
  const Graph g = graph::connected_gnm(40, 100, rng);
  std::vector<graph::EdgeId> all(g.num_edges());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) all[e] = e;
  std::vector<BfsInstanceSpec> specs(1);
  specs[0].root = 3;
  specs[0].edges = all;
  MultiBfsProgram prog(g, std::move(specs));
  Simulator sim(g, 1);
  sim.run(prog, 1000);

  const TreeInstanceSpec ts = tree_spec_from_multibfs(prog, 0);
  EXPECT_EQ(ts.root, 3u);
  EXPECT_EQ(ts.members.size(), g.num_vertices());
  // Convergecast a count over the derived tree: must equal n.
  TreeInstanceSpec counted = ts;
  counted.value.assign(counted.members.size(), 1);
  MultiConvergecastProgram agg(g, {counted},
                               [](std::uint64_t a, std::uint64_t b) { return a + b; });
  Simulator sim2(g, 1);
  sim2.run(agg, 1000);
  EXPECT_EQ(agg.result(0), g.num_vertices());
}

TEST(MultiConvergecast, RoundsTrackTreeDepth) {
  const Graph g = graph::path_graph(40);
  TreeInstanceSpec s = spec_from_bfs(g, 0);
  for (auto& x : s.value) x = 1;
  MultiConvergecastProgram prog(g, {s},
                                [](std::uint64_t a, std::uint64_t b) { return a + b; });
  Simulator sim(g, 1);
  const RunStats st = sim.run(prog, 1000);
  ASSERT_TRUE(st.completed);
  EXPECT_EQ(prog.result(0), 40u);
  EXPECT_LE(st.rounds, 42u);
  EXPECT_GE(st.rounds, 39u);
}

}  // namespace
}  // namespace lcs::congest
