// Tests for the Kogan–Parter sampling construction and the baselines:
// Step-1 inclusion, seed determinism, classification, coverage, congestion
// against the Chernoff-style bound, and baseline semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/coin.hpp"
#include "core/kp.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace lcs::core {
namespace {

graph::HardInstance small_hard() { return graph::hard_instance(400, 4); }

KpOptions options_for(unsigned diameter, std::uint64_t seed = 1, double beta = 1.0) {
  KpOptions o;
  o.diameter = diameter;
  o.seed = seed;
  o.beta = beta;
  return o;
}

// --- CoinFlipper ---------------------------------------------------------------

TEST(Coin, DeterministicAndSeeded) {
  const CoinFlipper a(7, 0.5), b(7, 0.5), c(8, 0.5);
  int agree_ab = 0, agree_ac = 0;
  for (std::uint32_t e = 0; e < 256; ++e) {
    agree_ab += a.flip(e, 0, 3, 1) == b.flip(e, 0, 3, 1);
    agree_ac += a.flip(e, 0, 3, 1) == c.flip(e, 0, 3, 1);
  }
  EXPECT_EQ(agree_ab, 256);
  EXPECT_LT(agree_ac, 256);
}

TEST(Coin, ProbabilityZeroAndOne) {
  const CoinFlipper never(1, 0.0), always(1, 1.0);
  for (std::uint32_t e = 0; e < 64; ++e) {
    EXPECT_FALSE(never.flip(e, 0, 0, 0));
    EXPECT_TRUE(always.flip(e, 1, 5, 3));
  }
}

TEST(Coin, EmpiricalBias) {
  const CoinFlipper c(123, 0.25);
  int hits = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i)
    hits += c.flip(static_cast<graph::EdgeId>(i), i % 2, (i / 2) % 7, i % 5);
  EXPECT_NEAR(hits / double(trials), 0.25, 0.01);
}

TEST(Coin, IndependentAcrossRepetitions) {
  const CoinFlipper c(9, 0.5);
  int differing = 0;
  for (std::uint32_t e = 0; e < 512; ++e)
    differing += c.flip(e, 0, 0, 0) != c.flip(e, 0, 0, 1);
  // ~50% should differ for independent fair coins.
  EXPECT_GT(differing, 180);
  EXPECT_LT(differing, 330);
}

// --- classification -------------------------------------------------------------

TEST(Kp, ClassifiesLargeParts) {
  const auto hi = small_hard();
  const auto res = build_kp_shortcuts(hi.g, hi.paths, options_for(4));
  // Path length ~ sqrt(n) = 20 > k_4 = n^(1/3): every path is large.
  EXPECT_GT(hi.path_length, res.params.large_threshold);
  for (std::size_t i = 0; i < hi.paths.num_parts(); ++i) {
    EXPECT_TRUE(res.is_large[i]);
    EXPECT_NE(res.large_index[i], graph::kUnreached);
  }
  EXPECT_EQ(res.num_large, hi.paths.num_parts());
}

TEST(Kp, SmallPartsGetNoShortcut) {
  Rng rng(1);
  const Graph g = graph::connected_gnm(300, 700, rng);
  const Partition parts = graph::forest_partition(g, 3, rng);  // tiny parts
  const auto res = build_kp_shortcuts(g, parts, options_for(4));
  EXPECT_EQ(res.num_large, 0u);
  for (const auto& h : res.shortcuts.h) EXPECT_TRUE(h.empty());
}

TEST(Kp, LargeIndexIsDense) {
  const auto hi = small_hard();
  const auto res = build_kp_shortcuts(hi.g, hi.paths, options_for(4));
  std::vector<bool> seen(res.num_large, false);
  for (std::size_t i = 0; i < hi.paths.num_parts(); ++i) {
    if (!res.is_large[i]) continue;
    ASSERT_LT(res.large_index[i], res.num_large);
    EXPECT_FALSE(seen[res.large_index[i]]);
    seen[res.large_index[i]] = true;
  }
}

// --- step 1 ----------------------------------------------------------------------

TEST(Kp, Step1IncludesAllIncidentEdges) {
  const auto hi = small_hard();
  const auto res = build_kp_shortcuts(hi.g, hi.paths, options_for(4, 3, 0.2));
  for (std::size_t i = 0; i < hi.paths.num_parts(); ++i) {
    if (!res.is_large[i]) continue;
    std::vector<bool> in_part(hi.g.num_vertices(), false);
    for (const VertexId v : hi.paths.parts[i]) in_part[v] = true;
    std::vector<bool> in_h(hi.g.num_edges(), false);
    for (const EdgeId e : res.shortcuts.h[i]) in_h[e] = true;
    for (EdgeId e = 0; e < hi.g.num_edges(); ++e) {
      const graph::Edge ed = hi.g.edge(e);
      if (in_part[ed.u] || in_part[ed.v]) {
        EXPECT_TRUE(in_h[e]) << "edge " << e;
      }
    }
  }
}

TEST(Kp, DeterministicForSeed) {
  // beta well below 1 so the sampling probability stays in (0,1) and seeds
  // actually matter at this instance size.
  const auto hi = small_hard();
  const auto a = build_kp_shortcuts(hi.g, hi.paths, options_for(4, 11, 0.2));
  const auto b = build_kp_shortcuts(hi.g, hi.paths, options_for(4, 11, 0.2));
  const auto c = build_kp_shortcuts(hi.g, hi.paths, options_for(4, 12, 0.2));
  EXPECT_EQ(a.shortcuts.h, b.shortcuts.h);
  EXPECT_NE(a.shortcuts.h, c.shortcuts.h);
}

TEST(Kp, PerPartSamplerMatchesFullBuild) {
  const auto hi = small_hard();
  const KpOptions opt = options_for(4, 5, 0.3);
  const auto res = build_kp_shortcuts(hi.g, hi.paths, opt);
  for (std::size_t i = 0; i < hi.paths.num_parts(); ++i) {
    if (!res.is_large[i]) continue;
    const auto h = kp_edges_for_part(hi.g, hi.paths, i, res.params, res.large_index[i],
                                     opt.seed, res.params.repetitions);
    EXPECT_EQ(h, res.shortcuts.h[i]);
  }
}

// --- quality on families ------------------------------------------------------------

class KpFamilyTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(KpFamilyTest, CoversAllPartsOnHardInstance) {
  const std::uint32_t d = GetParam();
  const auto hi = graph::hard_instance(500, d);
  const auto rep = measure_kp_quality(hi.g, hi.paths, options_for(d));
  EXPECT_TRUE(rep.quality.all_covered);
  EXPECT_GT(rep.quality.congestion, 0u);
}

TEST_P(KpFamilyTest, CongestionWithinChernoffBound) {
  const std::uint32_t d = GetParam();
  const auto hi = graph::hard_instance(500, d);
  const auto rep = measure_kp_quality(hi.g, hi.paths, options_for(d));
  // Expected per-edge load <= 2 (step 1) + 2 D N p = 2 + 2 D k_D ln n beta.
  const double bound =
      2.0 + 2.0 * rep.params.repetitions *
                std::max(1.0, rep.params.sample_prob *
                                  static_cast<double>(rep.params.max_large_parts));
  // Chernoff slack factor 3 for the small scale.
  EXPECT_LE(rep.quality.congestion, 3.0 * bound + 8.0);
}

INSTANTIATE_TEST_SUITE_P(Diameters, KpFamilyTest, ::testing::Values(3u, 4u, 5u, 6u));

TEST(Kp, StreamedEqualsMaterialized) {
  const auto hi = small_hard();
  const KpOptions opt = options_for(4, 9, 0.5);
  const auto full = build_kp_shortcuts(hi.g, hi.paths, opt);
  const QualityReport want = measure_quality(hi.g, hi.paths, full.shortcuts);
  const auto streamed = measure_kp_quality(hi.g, hi.paths, opt);
  EXPECT_EQ(streamed.quality.congestion, want.congestion);
  EXPECT_EQ(streamed.quality.dilation_ub, want.dilation_ub);
  EXPECT_EQ(streamed.quality.all_covered, want.all_covered);
  EXPECT_EQ(streamed.num_large, full.num_large);
}

TEST(Kp, HigherBetaSamplesMore) {
  const auto hi = small_hard();
  const auto lo = measure_kp_quality(hi.g, hi.paths, options_for(4, 7, 0.2));
  const auto hi_rep = measure_kp_quality(hi.g, hi.paths, options_for(4, 7, 0.8));
  EXPECT_LT(lo.total_shortcut_edges, hi_rep.total_shortcut_edges);
}

TEST(Kp, RepetitionOverrideReducesSampling) {
  const auto hi = small_hard();
  KpOptions one = options_for(4, 7, 0.5);
  one.repetitions = 1;
  KpOptions many = options_for(4, 7, 0.5);
  many.repetitions = 8;
  const auto a = measure_kp_quality(hi.g, hi.paths, one);
  const auto b = measure_kp_quality(hi.g, hi.paths, many);
  EXPECT_LT(a.total_shortcut_edges, b.total_shortcut_edges);
  EXPECT_EQ(a.params.repetitions, 1u);
  EXPECT_EQ(b.params.repetitions, 8u);
}

TEST(Kp, ProbabilityOverride) {
  const auto hi = small_hard();
  KpOptions opt = options_for(4);
  opt.probability_override = 0.0;
  const auto res = build_kp_shortcuts(hi.g, hi.paths, opt);
  // p = 0: H_i contains exactly the step-1 edges.
  for (std::size_t i = 0; i < hi.paths.num_parts(); ++i) {
    if (!res.is_large[i]) continue;
    std::vector<bool> in_part(hi.g.num_vertices(), false);
    for (const VertexId v : hi.paths.parts[i]) in_part[v] = true;
    for (const EdgeId e : res.shortcuts.h[i]) {
      const graph::Edge ed = hi.g.edge(e);
      EXPECT_TRUE(in_part[ed.u] || in_part[ed.v]);
    }
  }
}

TEST(Kp, DiameterEstimatedWhenAbsent) {
  const auto hi = small_hard();
  KpOptions opt;  // no diameter
  opt.seed = 2;
  const auto params = kp_params(hi.g, hi.paths, opt);
  EXPECT_EQ(params.diameter, 4u);  // double sweep is exact on this family
}

// --- baselines -----------------------------------------------------------------------

TEST(Baselines, GhLargePartsTakeWholeGraph) {
  const auto hi = small_hard();  // paths have ~sqrt(n) vertices: exactly at threshold
  const ShortcutSet sc = build_gh_shortcuts(hi.g, hi.paths);
  for (std::size_t i = 0; i < hi.paths.num_parts(); ++i) {
    if (hi.paths.parts[i].size() >= std::sqrt(double(hi.g.num_vertices())))
      EXPECT_EQ(sc.h[i].size(), hi.g.num_edges());
    else
      EXPECT_TRUE(sc.h[i].empty());
  }
}

TEST(Baselines, GhQualityBound) {
  const auto hi = graph::hard_instance(600, 4);
  const ShortcutSet sc = build_gh_shortcuts(hi.g, hi.paths);
  const QualityReport rep = measure_quality(hi.g, hi.paths, sc);
  EXPECT_TRUE(rep.all_covered);
  const double sqrt_n = std::sqrt(double(hi.g.num_vertices()));
  // congestion <= #large parts + 2 <= sqrt(n) + 2; dilation <= max(D, part size).
  EXPECT_LE(rep.congestion, sqrt_n + 2.0);
  EXPECT_LE(rep.dilation_ub,
            std::max<std::uint32_t>(hi.diameter, hi.path_length) + 2);
}

TEST(Baselines, TrivialHasUnitCongestion) {
  const auto hi = small_hard();
  const ShortcutSet sc = build_trivial_shortcuts(hi.paths);
  const QualityReport rep = measure_quality(hi.g, hi.paths, sc);
  EXPECT_TRUE(rep.all_covered);  // parts are connected paths
  EXPECT_EQ(rep.congestion, 1u);
  EXPECT_EQ(rep.dilation_ub, hi.path_length - 1);  // the bare path diameter
}

TEST(Baselines, KkoiD3IsSingleRepetition) {
  const auto hi = graph::hard_instance(500, 3);
  const auto res = build_kkoi_d3(hi.g, hi.paths, 4);
  EXPECT_EQ(res.params.repetitions, 1u);
  EXPECT_EQ(res.params.diameter, 3u);
}

// --- odd-diameter construction ----------------------------------------------------------

TEST(OddD, RequiresOddDiameter) {
  const auto hi = graph::hard_instance(500, 4);
  EXPECT_THROW(build_kp_shortcuts_odd(hi.g, hi.paths, options_for(4)),
               std::invalid_argument);
}

TEST(OddD, Step1AndSubsetOfEdges) {
  const auto hi = graph::hard_instance(500, 5);
  const auto res = build_kp_shortcuts_odd(hi.g, hi.paths, options_for(5, 3));
  for (std::size_t i = 0; i < hi.paths.num_parts(); ++i) {
    if (!res.is_large[i]) continue;
    std::vector<bool> in_part(hi.g.num_vertices(), false);
    for (const VertexId v : hi.paths.parts[i]) in_part[v] = true;
    std::vector<bool> in_h(hi.g.num_edges(), false);
    for (const EdgeId e : res.shortcuts.h[i]) {
      EXPECT_FALSE(in_h[e]);  // no duplicates
      in_h[e] = true;
    }
    for (EdgeId e = 0; e < hi.g.num_edges(); ++e) {
      const graph::Edge ed = hi.g.edge(e);
      if (in_part[ed.u] || in_part[ed.v]) {
        EXPECT_TRUE(in_h[e]);
      }
    }
  }
}

TEST(OddD, CoversParts) {
  const auto hi = graph::hard_instance(500, 5);
  const auto res = build_kp_shortcuts_odd(hi.g, hi.paths, options_for(5));
  const QualityReport rep = measure_quality(hi.g, hi.paths, res.shortcuts);
  EXPECT_TRUE(rep.all_covered);
}

TEST(OddD, SamplesFewerThanDirectAtSameProb) {
  // Both-halves-must-land thins the per-repetition rate relative to the
  // one-coin-per-endpoint direct sampler at identical p.
  const auto hi = graph::hard_instance(700, 5);
  const KpOptions opt = options_for(5, 21, 0.6);
  const auto direct = build_kp_shortcuts(hi.g, hi.paths, opt);
  const auto odd = build_kp_shortcuts_odd(hi.g, hi.paths, opt);
  std::uint64_t direct_total = 0, odd_total = 0;
  for (const auto& h : direct.shortcuts.h) direct_total += h.size();
  for (const auto& h : odd.shortcuts.h) odd_total += h.size();
  EXPECT_LE(odd_total, direct_total);
}

}  // namespace
}  // namespace lcs::core
