// Cross-module integration tests: the end-to-end claims of the paper at
// test scale — KP quality vs baselines on hard instances, distributed vs
// centralized consistency, MST round separation, application plumbing.
#include <gtest/gtest.h>

#include <cmath>

#include "core/distributed.hpp"
#include "core/kp.hpp"
#include "core/shortcut.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "mincut/mincut.hpp"
#include "mst/mst.hpp"
#include "sssp/sssp.hpp"
#include "tecss/tecss.hpp"
#include "util/rng.hpp"

namespace lcs {
namespace {

using core::KpOptions;
using core::QualityReport;
using graph::HardInstance;

TEST(Integration, KpBeatsTrivialDilationOnHardInstance) {
  // The headline separation at test scale: KP shortcuts reduce the per-part
  // dilation far below the bare path length.
  const HardInstance hi = graph::hard_instance(900, 4);
  KpOptions opt;
  opt.diameter = 4;
  opt.seed = 3;
  const auto kp = core::measure_kp_quality(hi.g, hi.paths, opt);
  ASSERT_TRUE(kp.quality.all_covered);

  const core::ShortcutSet trivial = core::build_trivial_shortcuts(hi.paths);
  const QualityReport triv = core::measure_quality(hi.g, hi.paths, trivial);

  EXPECT_LT(kp.quality.dilation_ub, triv.dilation_ub / 2)
      << "KP dilation " << kp.quality.dilation_ub << " vs bare path "
      << triv.dilation_ub;
}

TEST(Integration, KpDilationTracksKd) {
  // Dilation should be O(k_D log n) — allow a generous constant at this scale.
  for (const std::uint32_t d : {4u, 6u}) {
    const HardInstance hi = graph::hard_instance(800, d);
    KpOptions opt;
    opt.diameter = d;
    const auto kp = core::measure_kp_quality(hi.g, hi.paths, opt);
    ASSERT_TRUE(kp.quality.all_covered);
    const double bound = kp.params.k_d * ln_clamped(hi.g.num_vertices());
    EXPECT_LE(kp.quality.dilation_ub, 6.0 * bound + 10.0) << "D=" << d;
  }
}

TEST(Integration, DistributedConstructionMatchesCentralizedQualityClass) {
  const HardInstance hi = graph::hard_instance(500, 4);
  core::DistributedOptions dopt;
  dopt.diameter = 4;
  dopt.seed = 5;
  const auto dist = core::build_distributed(hi.g, hi.paths, dopt);
  ASSERT_TRUE(dist.success);
  KpOptions copt;
  copt.diameter = 4;
  copt.seed = 5;
  const auto cent = core::measure_kp_quality(hi.g, hi.paths, copt);

  const QualityReport dq = core::measure_quality(hi.g, hi.paths, dist.shortcuts);
  // Same sampling law (possibly different part numbering): same coverage
  // and same order of magnitude in congestion/dilation.
  EXPECT_TRUE(dq.all_covered);
  EXPECT_LE(dq.dilation_ub, 2 * cent.quality.dilation_ub + 4);
  EXPECT_GE(2 * dq.congestion + 4, cent.quality.congestion);
}

TEST(Integration, DistributedRoundsWithinPolylogOfKd) {
  const HardInstance hi = graph::hard_instance(500, 4);
  core::DistributedOptions dopt;
  dopt.diameter = 4;
  const auto out = core::build_distributed(hi.g, hi.paths, dopt);
  ASSERT_TRUE(out.success);
  const double kd = out.params.k_d;
  const double ln_n = ln_clamped(hi.g.num_vertices());
  // Theorem 1.1: Õ(k_D) rounds; allow (ln n)^2 and constant 30 at this scale.
  EXPECT_LE(out.rounds.total(), 30.0 * kd * ln_n * ln_n);
}

TEST(Integration, MstOverKpShortcutsIsCorrectOnHardInstance) {
  const HardInstance hi = graph::hard_instance(400, 4);
  Rng rng(6);
  const graph::EdgeWeights w = graph::distinct_random_weights(hi.g, rng);
  mst::BoruvkaOptions opt;
  opt.scheme = mst::ShortcutScheme::kKoganParter;
  opt.diameter = 4;
  const auto res = mst::boruvka_mst(hi.g, w, opt);
  EXPECT_EQ(res.mst.weight, mst::kruskal(hi.g, w).weight);
}

TEST(Integration, ShortcutMstAggregationSane) {
  // Identical MSTs across schemes; the rounds separation at asymptotic
  // scale is the E5 benchmark's job, here we only assert KP is not
  // pathologically worse (constants dominate at n=900 where p ~ 1).
  const HardInstance hi = graph::hard_instance(900, 4);
  Rng rng(7);
  const graph::EdgeWeights w = graph::distinct_random_weights(hi.g, rng);

  mst::BoruvkaOptions kp;
  kp.scheme = mst::ShortcutScheme::kKoganParter;
  kp.diameter = 4;
  kp.beta = 0.3;
  mst::BoruvkaOptions none;
  none.scheme = mst::ShortcutScheme::kNone;

  const auto r_kp = mst::boruvka_mst(hi.g, w, kp);
  const auto r_none = mst::boruvka_mst(hi.g, w, none);
  EXPECT_EQ(r_kp.mst.weight, r_none.mst.weight);
  EXPECT_LT(r_kp.aggregation_rounds, 5 * r_none.aggregation_rounds + 500);
}

TEST(Integration, MincutPipelineOnHardInstance) {
  const HardInstance hi = graph::hard_instance(300, 4);
  const graph::EdgeWeights w(hi.g.num_edges(), 1);
  const auto tp = mincut::tree_packing_mincut(hi.g, w);
  const auto exact = mincut::stoer_wagner(hi.g, w);
  EXPECT_GE(tp.cut.value, exact.value);
  EXPECT_LE(tp.cut.value, 2 * exact.value);
}

TEST(Integration, SsspStretchOnHardInstance) {
  const HardInstance hi = graph::hard_instance(400, 4);
  Rng rng(8);
  const graph::EdgeWeights w = graph::random_weights(hi.g, 8, rng);
  sssp::ApproxTreeOptions opt;
  opt.num_landmarks = 24;
  const auto r = sssp::approx_sssp_tree(hi.g, w, hi.paths.parts[0][0], opt);
  EXPECT_GE(r.max_stretch, 1.0 - 1e-9);
  EXPECT_LE(r.max_stretch, 12.0);  // sanity ceiling, measured is usually < 3
}

TEST(Integration, TwoEcssOnAugmentedHardInstance) {
  // Hard instances have bridges (the hub tree), so build a 2-edge-connected
  // variant by doubling the tree structure with a cycle over the leaves.
  Rng rng(9);
  const graph::Graph g = [] {
    graph::GraphBuilder b(60);
    for (graph::VertexId v = 0; v < 60; ++v) b.add_edge(v, (v + 1) % 60);
    for (graph::VertexId v = 0; v < 60; v += 3) b.add_edge(v, (v + 7) % 60);
    return std::move(b).build();
  }();
  const graph::EdgeWeights w = graph::random_weights(g, 12, rng);
  const auto r = tecss::two_ecss_approx(g, w);
  EXPECT_TRUE(r.valid);
  EXPECT_GE(r.ratio, 1.0);
}

TEST(Integration, QualityScalesBelowSqrtN) {
  // The point of the paper: for D >= 5 the quality is o(sqrt n).  At test
  // scale, verify KP dilation+congestion stays below the GH baseline's
  // sqrt(n)-scale quality on the hard family for D = 4 where p < 1.
  const HardInstance hi = graph::hard_instance(1600, 4);
  KpOptions opt;
  opt.diameter = 4;
  const auto kp = core::measure_kp_quality(hi.g, hi.paths, opt);
  ASSERT_TRUE(kp.quality.all_covered);
  const auto gh = core::measure_quality(hi.g, hi.paths,
                                        core::build_gh_shortcuts(hi.g, hi.paths));
  EXPECT_LT(kp.quality.dilation_ub, gh.quality() + 1)
      << "KP should not be worse than the GH baseline's total quality";
}

TEST(Integration, GuessingVariantEndsWithUsableShortcuts) {
  const HardInstance hi = graph::hard_instance(400, 5);
  core::DistributedOptions o;
  o.seed = 10;
  const auto out = core::build_distributed_guessing(hi.g, hi.paths, o);
  ASSERT_TRUE(out.success);
  const auto rep = core::measure_quality(hi.g, hi.paths, out.shortcuts);
  EXPECT_TRUE(rep.all_covered);
}

}  // namespace
}  // namespace lcs
