// Cross-cutting randomized property sweeps: invariants that must hold over
// a grid of families × sizes × seeds.  Each suite checks one invariant;
// the grid gives it breadth (TEST_P per DESIGN.md §7).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "congest/programs.hpp"
#include "congest/simulator.hpp"
#include "core/kp.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "graph/union_find.hpp"
#include "mst/mst.hpp"
#include "util/rng.hpp"

namespace lcs {
namespace {

using graph::Graph;
using graph::Partition;
using graph::VertexId;

// --- family fixtures -----------------------------------------------------------

enum class Family { kHard, kLayered, kGnm, kPrefAttach };

Graph make_family(Family f, std::uint32_t n, Rng& rng, Partition* parts_out) {
  switch (f) {
    case Family::kHard: {
      graph::HardInstance hi = graph::hard_instance(n, 4);
      if (parts_out) *parts_out = hi.paths;
      return std::move(hi.g);
    }
    case Family::kLayered: {
      Graph g = graph::layered_random_graph(n, 5, 1.2, rng);
      if (parts_out) *parts_out = graph::ball_partition(g, std::max(2u, n / 40), rng);
      return g;
    }
    case Family::kGnm: {
      Graph g = graph::connected_gnm(n, 2 * n, rng);
      if (parts_out) *parts_out = graph::forest_partition(g, n / 8, rng);
      return g;
    }
    case Family::kPrefAttach: {
      Graph g = graph::preferential_attachment(n, 3, rng);
      if (parts_out) *parts_out = graph::ball_partition(g, std::max(2u, n / 40), rng);
      return g;
    }
  }
  LCS_CHECK(false, "unknown family");
}

class FamilyGrid
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t, int>> {
 protected:
  Family family() const { return static_cast<Family>(std::get<0>(GetParam())); }
  std::uint32_t n() const { return std::get<1>(GetParam()); }
  std::uint64_t seed() const { return static_cast<std::uint64_t>(std::get<2>(GetParam())); }
};

// --- invariant: generated partitions are always valid -----------------------------

class PartitionInvariant : public FamilyGrid {};

TEST_P(PartitionInvariant, GeneratedPartitionsValidate) {
  Rng rng(seed());
  Partition parts;
  const Graph g = make_family(family(), n(), rng, &parts);
  EXPECT_EQ(validate_partition(g, parts), "");
  EXPECT_GT(parts.num_parts(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PartitionInvariant,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(200u, 500u),
                       ::testing::Values(1, 2)));

// --- invariant: KP shortcut coverage + step-1 inclusion across families ------------

class KpInvariant : public FamilyGrid {};

TEST_P(KpInvariant, CoverageAndStep1) {
  Rng rng(seed());
  Partition parts;
  const Graph g = make_family(family(), n(), rng, &parts);
  core::KpOptions opt;
  opt.seed = seed() * 7 + 1;
  const auto res = core::build_kp_shortcuts(g, parts, opt);
  const auto q = core::measure_quality(g, parts, res.shortcuts);
  EXPECT_TRUE(q.all_covered);
  // Step-1 inclusion for each large part.
  for (std::size_t i = 0; i < parts.parts.size(); ++i) {
    if (!res.is_large[i]) continue;
    std::vector<bool> in_part(g.num_vertices(), false);
    for (const VertexId v : parts.parts[i]) in_part[v] = true;
    std::set<graph::EdgeId> h(res.shortcuts.h[i].begin(), res.shortcuts.h[i].end());
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const graph::Edge ed = g.edge(e);
      if (in_part[ed.u] || in_part[ed.v]) {
        EXPECT_TRUE(h.count(e)) << "edge " << e;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KpInvariant,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(300u),
                       ::testing::Values(1, 2, 3)));

// --- invariant: congestion is monotone in beta (same seed) -------------------------

class BetaMonotone : public ::testing::TestWithParam<int> {};

TEST_P(BetaMonotone, ShortcutSizeGrowsWithBeta) {
  const graph::HardInstance hi = graph::hard_instance(400, 4);
  std::uint64_t prev = 0;
  for (const double beta : {0.05, 0.2, 0.6, 1.5}) {
    core::KpOptions opt;
    opt.diameter = 4;
    opt.seed = static_cast<std::uint64_t>(GetParam());
    opt.beta = beta;
    const auto rep = core::measure_kp_quality(hi.g, hi.paths, opt);
    EXPECT_GE(rep.total_shortcut_edges, prev) << "beta=" << beta;
    prev = rep.total_shortcut_edges;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BetaMonotone, ::testing::Values(1, 2, 3, 4, 5));

// --- invariant: distributed BFS == centralized BFS across the grid ------------------

class BfsEquivalence : public FamilyGrid {};

TEST_P(BfsEquivalence, SimulatedBfsMatchesOracle) {
  Rng rng(seed() + 100);
  const Graph g = make_family(family(), n(), rng, nullptr);
  const VertexId src = static_cast<VertexId>(rng.uniform(g.num_vertices()));
  congest::BfsProgram prog(g.num_vertices(), src);
  congest::Simulator sim(g, 1);
  const congest::RunStats st = sim.run(prog, 8 * g.num_vertices());
  ASSERT_TRUE(st.completed);
  EXPECT_EQ(prog.dist(), graph::bfs(g, src).dist);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BfsEquivalence,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(250u),
                       ::testing::Values(1, 2)));

// --- invariant: Boruvka == Kruskal across the grid ----------------------------------

class MstEquivalence : public FamilyGrid {};

TEST_P(MstEquivalence, BoruvkaMatchesKruskal) {
  Rng rng(seed() + 500);
  const Graph g = make_family(family(), n(), rng, nullptr);
  const graph::EdgeWeights w = graph::distinct_random_weights(g, rng);
  mst::BoruvkaOptions opt;
  opt.scheme = mst::ShortcutScheme::kKoganParter;
  opt.seed = seed();
  const auto res = mst::boruvka_mst(g, w, opt);
  const auto want = mst::kruskal(g, w);
  EXPECT_EQ(res.mst.weight, want.weight);
  EXPECT_EQ(res.mst.edges, want.edges);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MstEquivalence,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(220u),
                       ::testing::Values(1, 2)));

// --- invariant: preferential attachment shape ---------------------------------------

class PrefAttach : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PrefAttach, ConnectedLowDiameterHeavyTail) {
  Rng rng(GetParam());
  const Graph g = graph::preferential_attachment(600, 3, rng);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_LE(graph::diameter_double_sweep(g), 10u);  // "six degrees" shape
  // Heavy tail: max degree far above the mean.
  std::uint32_t max_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    max_deg = std::max(max_deg, g.degree(v));
  const double mean = 2.0 * g.num_edges() / g.num_vertices();
  EXPECT_GT(max_deg, 4 * mean);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefAttach, ::testing::Values(1u, 2u, 3u));

TEST(PrefAttach, EdgeCountFormula) {
  Rng rng(9);
  const Graph g = graph::preferential_attachment(100, 2, rng);
  // Seed clique C(3,2)=3 edges + 2 per added vertex (97 vertices), minus
  // possible duplicate merges (rare).
  EXPECT_LE(g.num_edges(), 3u + 2u * 97u);
  EXPECT_GE(g.num_edges(), 3u + 2u * 97u - 8u);
}

TEST(PrefAttach, RejectsTinyN) {
  Rng rng(1);
  EXPECT_THROW(graph::preferential_attachment(3, 3, rng), std::invalid_argument);
}

// --- invariant: simulator determinism across runs ------------------------------------

TEST(SimulatorDeterminism, IdenticalRunsByteForByte) {
  Rng rng(12);
  const Graph g = graph::connected_gnm(120, 300, rng);
  auto run_once = [&]() {
    congest::BfsProgram prog(g.num_vertices(), 17);
    congest::Simulator sim(g, 1);
    const congest::RunStats st = sim.run(prog, 10000);
    return std::make_tuple(st.rounds, st.messages, prog.dist());
  };
  EXPECT_EQ(run_once(), run_once());
}

// --- invariant: quality monotone under shortcut enlargement --------------------------

TEST(QualityMonotonicity, MoreEdgesNeverWorsenDilation) {
  const graph::HardInstance hi = graph::hard_instance(350, 4);
  core::KpOptions small_opt;
  small_opt.diameter = 4;
  small_opt.seed = 5;
  small_opt.beta = 0.1;
  const auto small_sc = core::build_kp_shortcuts(hi.g, hi.paths, small_opt);
  // Enlarge: union with the whole-graph shortcut.
  core::ShortcutSet big = small_sc.shortcuts;
  std::vector<graph::EdgeId> all(hi.g.num_edges());
  for (graph::EdgeId e = 0; e < hi.g.num_edges(); ++e) all[e] = e;
  for (auto& h : big.h) h = all;
  const auto q_small = core::measure_quality(hi.g, hi.paths, small_sc.shortcuts);
  const auto q_big = core::measure_quality(hi.g, hi.paths, big);
  EXPECT_LE(q_big.dilation_ub, q_small.dilation_ub);
  EXPECT_GE(q_big.congestion, q_small.congestion);
}

}  // namespace
}  // namespace lcs
