// Tests for the lcsbench harness machinery: the JSON writer, scenario
// context parameter resolution/recording, the repetition runner, and the
// machine-info stamp.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <stdexcept>

#include "bench/machine.hpp"
#include "bench/registry.hpp"
#include "bench/runner.hpp"
#include "bench/timer.hpp"
#include "util/json.hpp"

namespace lcs {
namespace {

TEST(Json, ScalarsAndCompactDump) {
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(std::int64_t{-3}).dump(), "-3");
  EXPECT_EQ(Json(std::uint64_t{7}).dump(), "7");
  // Full uint64 range round-trips (seeds above INT64_MAX stay unsigned).
  EXPECT_EQ(Json(std::numeric_limits<std::uint64_t>::max()).dump(), "18446744073709551615");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j["z"] = 1;
  j["a"] = 2;
  j["z"] = 3;  // overwrite keeps position
  EXPECT_EQ(j.dump(), "{\"z\":3,\"a\":2}");
  EXPECT_EQ(j.size(), 2u);
}

TEST(Json, NestedArraysAndPrettyPrint) {
  Json j = Json::object();
  j["xs"].push_back(1);
  j["xs"].push_back(2);
  EXPECT_EQ(j.dump(), "{\"xs\":[1,2]}");
  EXPECT_EQ(j.dump(2), "{\n  \"xs\": [\n    1,\n    2\n  ]\n}\n");
}

TEST(Json, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::object().dump(2), "{}\n");
  EXPECT_EQ(Json::array().dump(), "[]");
}

TEST(Json, ContainsLooksUpObjectKeys) {
  Json j = Json::object();
  j["present"] = 1;
  EXPECT_TRUE(j.contains("present"));
  EXPECT_FALSE(j.contains("absent"));
  EXPECT_FALSE(Json(42).contains("anything"));
  EXPECT_FALSE(Json::array().contains("anything"));
}

TEST(ScenarioContext, DefaultsAndSmokeShrink) {
  bench::RunConfig full;
  std::ostringstream os;
  bench::ScenarioContext ctx(full, os);
  EXPECT_EQ(ctx.n_sweep(), (std::vector<std::uint32_t>{512, 1024, 2048, 4096}));
  EXPECT_EQ(ctx.trials(), 3u);
  EXPECT_EQ(ctx.pick_n(100, 200), 200u);

  bench::RunConfig smoke;
  smoke.smoke = true;
  bench::ScenarioContext sctx(smoke, os);
  EXPECT_EQ(sctx.n_sweep(), (std::vector<std::uint32_t>{512, 1024}));
  EXPECT_EQ(sctx.trials(), 1u);
  EXPECT_EQ(sctx.pick_n(100, 200), 100u);
}

TEST(ScenarioContext, OverridesWinAndAreRecorded) {
  bench::RunConfig config;
  config.n_override = std::vector<std::uint32_t>{64, 128};
  config.beta_override = 0.5;
  config.seed_override = 99;
  std::ostringstream os;
  bench::ScenarioContext ctx(config, os);
  EXPECT_EQ(ctx.n_sweep({1, 2, 3}), (std::vector<std::uint32_t>{64, 128}));
  EXPECT_EQ(ctx.pick_n(100, 200), 64u);
  EXPECT_DOUBLE_EQ(ctx.beta(1.0), 0.5);
  EXPECT_EQ(ctx.seed(17), 99u);
  const std::string params = ctx.params().dump();
  EXPECT_NE(params.find("\"beta\":0.5"), std::string::npos) << params;
  EXPECT_NE(params.find("\"seed\":99"), std::string::npos) << params;
  EXPECT_NE(params.find("\"n_sweep\":[64,128]"), std::string::npos) << params;
}

bench::Scenario counting_scenario(int* runs) {
  static int* counter = nullptr;
  counter = runs;
  return bench::Scenario{"counting", "counts executions", "none", [](bench::ScenarioContext& ctx) {
                           ++*counter;
                           ctx.metric("answer", std::uint64_t{42});
                           ctx.out() << "body ran\n";
                         }};
}

TEST(Runner, RunsWarmupPlusRepetitionsAndRecordsTimings) {
  int runs = 0;
  const bench::Scenario s = counting_scenario(&runs);
  bench::RunConfig config;
  config.warmup = 2;
  config.repetitions = 3;
  std::ostringstream os;
  const bench::ScenarioResult result = bench::run_scenario(s, config, os);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(runs, 5);  // 2 warmup + 3 timed
  EXPECT_EQ(result.timings.size(), 3u);
  for (const auto& t : result.timings) {
    EXPECT_GE(t.wall_ms, 0.0);
    EXPECT_GE(t.cpu_ms, 0.0);
  }
  EXPECT_NE(result.metrics.dump().find("\"answer\":42"), std::string::npos);
  // Table output is shown once (first timed repetition), not 5 times.
  EXPECT_EQ(os.str(), "body ran\n");
}

TEST(Runner, ExceptionFailsScenarioNotProcess) {
  const bench::Scenario s{"throwing", "always throws", "none",
                          [](bench::ScenarioContext&) -> void {
                            throw std::runtime_error("boom");
                          }};
  bench::RunConfig config;
  std::ostringstream os;
  const bench::ScenarioResult result = bench::run_scenario(s, config, os);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "boom");
  EXPECT_TRUE(result.timings.empty());
}

TEST(Runner, JsonRecordHasSchemaFields) {
  int runs = 0;
  const bench::Scenario s = counting_scenario(&runs);
  bench::RunConfig config;
  config.smoke = true;
  config.beta_override = 0.25;
  std::ostringstream os;
  const bench::ScenarioResult result = bench::run_scenario(s, config, os);
  const Json record = bench::result_to_json(s, result, config);
  const std::string dump = record.dump();
  for (const char* key : {"\"schema_version\":1", "\"scenario\":\"counting\"", "\"ok\":true",
                          "\"config\":", "\"smoke\":true", "\"beta_override\":0.25",
                          "\"params\":", "\"repetitions\":", "\"wall_ms\":", "\"cpu_ms\":",
                          "\"metrics\":", "\"machine\":"}) {
    EXPECT_NE(dump.find(key), std::string::npos) << key << " missing from " << dump;
  }
}

TEST(Machine, InfoHasStableSchema) {
  const Json info = bench::machine_info();
  const std::string dump = info.dump();
  for (const char* key : {"hostname", "os", "kernel", "arch", "cpu_model",
                          "hardware_threads", "compiler", "build_type", "timestamp_utc"}) {
    EXPECT_NE(dump.find("\"" + std::string(key) + "\":"), std::string::npos) << key;
  }
}

TEST(Timers, MeasureElapsedTime) {
  bench::MonotonicTimer wall;
  bench::CpuTimer cpu;
  volatile double sink = 0;
  for (int i = 0; i < 2'000'000; ++i) sink = sink + 1.0;
  EXPECT_GT(wall.elapsed_ms(), 0.0);
  EXPECT_GE(cpu.elapsed_ms(), 0.0);
  EXPECT_GT(bench::time_ns_per_op(1000, [&] { bench::do_not_optimize(sink); }), 0.0);
}

// Registry::add aborts on duplicate names (fail-fast at static-init time);
// that path is exercised by construction: every binary linking two scenarios
// with one name dies at startup, so no death test is needed here.
TEST(Registry, FindAndSortedListing) {
  auto& reg = bench::Registry::instance();
  // The registry is process-global and duplicate names abort, so stay
  // idempotent under --gtest_repeat: only add on the first execution.
  if (reg.find("zz_test_only") == nullptr) {
    const std::size_t before = reg.scenarios().size();
    reg.add(bench::Scenario{"zz_test_only", "test scenario", "none",
                            [](bench::ScenarioContext&) {}});
    EXPECT_EQ(reg.scenarios().size(), before + 1);
  }
  EXPECT_NE(reg.find("zz_test_only"), nullptr);
  EXPECT_EQ(reg.find("does_not_exist"), nullptr);
  const auto all = reg.scenarios();
  for (std::size_t i = 1; i < all.size(); ++i) EXPECT_LE(all[i - 1].name, all[i].name);
}

}  // namespace
}  // namespace lcs
