// Query-service determinism and snapshot-sharing tests.
//
// The contract under test: a QueryResult is a pure function of (snapshot,
// service seed, request) — independent of thread count, batch order, batch
// composition, which service instance ran it, and whether it ran alone via
// run() or inside a concurrent batch via run_batch().
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "service/service.hpp"
#include "sssp/sssp.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace lcs;
using service::GraphSnapshot;
using service::QueryKind;
using service::QueryRequest;
using service::QueryResult;
using service::ShortcutService;

std::shared_ptr<const GraphSnapshot> small_snapshot(std::uint64_t seed = 11,
                                                    std::uint32_t n = 300) {
  Rng gen(seed);
  GraphSnapshot::Options opt;
  opt.weight_seed = seed ^ 0x55ULL;
  opt.max_weight = 9;
  return GraphSnapshot::build(graph::connected_gnm(n, 3 * n, gen), opt);
}

std::vector<QueryRequest> mixed_batch(std::uint32_t count) {
  std::vector<QueryRequest> batch;
  for (std::uint32_t i = 0; i < count; ++i) {
    QueryRequest q;
    q.id = 100 + i;
    q.kind = static_cast<QueryKind>(i % 5);
    q.beta = (i % 3 == 0) ? 0.5 : 1.0;
    q.karger_trials = (i % 8 == 3) ? 8 : 0;
    // Endpoints stay below the smallest fixture (n = 300) so every batch
    // member is well-formed against every snapshot in this file.
    q.s = (i * 37 + 1) % 100;
    q.t = (i * 61 + 13) % 100;
    batch.push_back(q);
  }
  return batch;
}

void expect_same_result(const QueryResult& a, const QueryResult& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.congestion, b.congestion);
  EXPECT_EQ(a.dilation, b.dilation);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.cardinality, b.cardinality);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.content_hash, b.content_hash);
  EXPECT_EQ(a.s, b.s);
  EXPECT_EQ(a.t, b.t);
  EXPECT_EQ(a.distance, b.distance);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(GraphSnapshot, PrecomputedFactsMatchDirectComputation) {
  Rng gen(5);
  graph::Graph g = graph::connected_gnm(120, 400, gen);
  const graph::Graph reference = g;  // Graph is a value type; keep a copy
  const auto snap = GraphSnapshot::build(std::move(g));

  EXPECT_EQ(snap->num_vertices(), reference.num_vertices());
  EXPECT_EQ(snap->num_edges(), reference.num_edges());
  EXPECT_TRUE(snap->connected());
  EXPECT_TRUE(snap->diameter_is_exact());
  EXPECT_EQ(snap->diameter_lb(), snap->diameter_ub());
  EXPECT_EQ(snap->diameter_ub(), graph::diameter_exact(reference));
  EXPECT_EQ(snap->diameter_estimate(), snap->diameter_ub());
  std::uint32_t max_deg = 0;
  for (graph::VertexId v = 0; v < reference.num_vertices(); ++v)
    max_deg = std::max(max_deg, reference.degree(v));
  EXPECT_EQ(snap->max_degree(), max_deg);
  EXPECT_EQ(snap->weights().size(), reference.num_edges());
  EXPECT_NE(snap->fingerprint(), 0u);
}

TEST(GraphSnapshot, LargeSnapshotGetsDiameterBracket) {
  Rng gen(6);
  GraphSnapshot::Options opt;
  opt.exact_diameter_max_vertices = 50;  // force the bracket path
  const auto snap = GraphSnapshot::build(graph::connected_gnm(200, 600, gen), opt);
  EXPECT_FALSE(snap->diameter_is_exact());
  EXPECT_GE(snap->diameter_ub(), snap->diameter_lb());
  EXPECT_GT(snap->diameter_lb(), 0u);
  EXPECT_EQ(snap->diameter_estimate(), snap->diameter_lb());
}

TEST(ShortcutService, BatchMatchesSequentialSingleQueryExecution) {
  const auto snap = small_snapshot();
  const ShortcutService svc(snap, 3);
  const auto batch = mixed_batch(12);

  const std::vector<QueryResult> batched = svc.run_batch(batch);
  ASSERT_EQ(batched.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const QueryResult alone = svc.run(batch[i]);
    expect_same_result(batched[i], alone);
    EXPECT_TRUE(batched[i].ok) << batched[i].error;
  }
}

TEST(ShortcutService, BitIdenticalAcrossThreadCounts) {
  const auto snap = small_snapshot();
  const ShortcutService svc(snap, 3);
  const auto batch = mixed_batch(12);

  ThreadOverrideGuard guard;
  set_num_threads(1);
  const std::vector<QueryResult> ref = svc.run_batch(batch);
  for (const unsigned threads : {2u, 8u}) {
    set_num_threads(threads);
    const std::vector<QueryResult> got = svc.run_batch(batch);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) expect_same_result(got[i], ref[i]);
  }
}

TEST(ShortcutService, BatchOrderAndCompositionInvariance) {
  const auto snap = small_snapshot();
  const ShortcutService svc(snap, 3);
  const auto batch = mixed_batch(10);
  const std::vector<QueryResult> ref = svc.run_batch(batch);

  // Reversed order: same per-id results.
  std::vector<QueryRequest> reversed(batch.rbegin(), batch.rend());
  const std::vector<QueryResult> rev_results = svc.run_batch(reversed);
  for (std::size_t i = 0; i < batch.size(); ++i)
    expect_same_result(rev_results[batch.size() - 1 - i], ref[i]);

  // A sub-batch: results do not depend on what else was in the batch.
  const std::vector<QueryRequest> sub(batch.begin() + 2, batch.begin() + 5);
  const std::vector<QueryResult> sub_results = svc.run_batch(sub);
  for (std::size_t i = 0; i < sub.size(); ++i) expect_same_result(sub_results[i], ref[i + 2]);
}

TEST(ShortcutService, TwoServicesShareOneSnapshot) {
  const auto snap = small_snapshot();
  const long base_use_count = snap.use_count();
  const ShortcutService a(snap, 9);
  const ShortcutService b(snap, 9);
  EXPECT_EQ(snap.use_count(), base_use_count + 2);  // shared, never copied
  EXPECT_EQ(&a.snapshot(), &b.snapshot());

  const auto batch = mixed_batch(8);
  const std::vector<QueryResult> ra = a.run_batch(batch);
  const std::vector<QueryResult> rb = b.run_batch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) expect_same_result(ra[i], rb[i]);
}

TEST(ShortcutService, ConcurrentBatchesFromTwoCallerThreads) {
  const auto snap = small_snapshot();
  const ShortcutService a(snap, 9);
  const ShortcutService b(snap, 9);
  const auto batch_a = mixed_batch(8);
  auto batch_b = mixed_batch(8);
  std::reverse(batch_b.begin(), batch_b.end());

  // Sequential references first.
  const std::vector<QueryResult> ref_a = a.run_batch(batch_a);
  const std::vector<QueryResult> ref_b = b.run_batch(batch_b);

  // Then both batches at once from two caller threads: the pool serializes
  // the batches, the snapshot is shared read-only, and the interleaving
  // must not leak into any result.
  std::vector<QueryResult> got_a, got_b;
  std::thread ta([&] { got_a = a.run_batch(batch_a); });
  std::thread tb([&] { got_b = b.run_batch(batch_b); });
  ta.join();
  tb.join();
  ASSERT_EQ(got_a.size(), ref_a.size());
  ASSERT_EQ(got_b.size(), ref_b.size());
  for (std::size_t i = 0; i < ref_a.size(); ++i) expect_same_result(got_a[i], ref_a[i]);
  for (std::size_t i = 0; i < ref_b.size(); ++i) expect_same_result(got_b[i], ref_b[i]);
}

TEST(ShortcutService, DifferentIdsGiveIndependentStreams) {
  const auto snap = small_snapshot();
  const ShortcutService svc(snap, 3);
  QueryRequest q1;
  q1.id = 1;
  q1.kind = QueryKind::kShortcutQuality;
  QueryRequest q2 = q1;
  q2.id = 2;
  const QueryResult r1 = svc.run(q1);
  const QueryResult r2 = svc.run(q2);
  // Same parameters, different streams: the sampled partitions/coins differ
  // (content hashes collide with probability ~2^-64).
  EXPECT_NE(r1.content_hash, r2.content_hash);
  // And the same id twice is bitwise-reproducible.
  expect_same_result(r1, svc.run(q1));
}

TEST(ShortcutService, RunInsideParallelRegionIsRejected) {
  // Misuse surfaces as a throw, not as a deterministic ok=false result:
  // queries run at top level or as parallel_tasks tasks only.
  const auto snap = small_snapshot();
  const ShortcutService svc(snap, 3);
  QueryRequest q;
  q.id = 1;
  EXPECT_THROW(parallel_for(0, 1, 1, [&](std::size_t) { svc.run(q); }),
               std::invalid_argument);
}

TEST(ShortcutService, DuplicateIdsInBatchAreRejected) {
  const auto snap = small_snapshot();
  const ShortcutService svc(snap, 3);
  auto batch = mixed_batch(4);
  batch[3].id = batch[0].id;
  EXPECT_THROW(svc.run_batch(batch), std::invalid_argument);
}

// --- artifact cache (PR 5) ---------------------------------------------------

TEST(GraphSnapshot, LazyDiameterBracketMatchesPrewarmed) {
  Rng gen(7);
  const graph::Graph g = graph::connected_gnm(150, 450, gen);
  GraphSnapshot::Options eager;
  GraphSnapshot::Options lazy;
  lazy.prewarm_diameter = false;
  const auto a = GraphSnapshot::build(g, eager);
  const auto b = GraphSnapshot::build(g, lazy);
  EXPECT_EQ(a->diameter_lb(), b->diameter_lb());
  EXPECT_EQ(a->diameter_ub(), b->diameter_ub());
  EXPECT_EQ(a->diameter_is_exact(), b->diameter_is_exact());
  EXPECT_EQ(a->diameter_estimate(), b->diameter_estimate());
}

TEST(GraphSnapshot, ArtifactAccessorsMemoizeOncePerKey) {
  // Pool prewarm off: this test asserts exact lifetime hit/miss counts, so
  // the snapshot must start with an empty partition memo.
  Rng gen(31);
  GraphSnapshot::Options opt;
  opt.weight_seed = 31 ^ 0x55ULL;
  opt.max_weight = 9;
  opt.prewarm_partition_pool = false;
  const auto snap = GraphSnapshot::build(graph::connected_gnm(120, 360, gen), opt);
  const auto t1 = snap->bfs_tree(5);
  const auto t2 = snap->bfs_tree(5);
  EXPECT_EQ(t1.get(), t2.get());  // shared bytes, not equal copies
  EXPECT_NE(t1.get(), snap->bfs_tree(6).get());

  const auto p1 = snap->partition(42, 8);
  EXPECT_EQ(p1.get(), snap->partition(42, 8).get());
  EXPECT_NE(p1.get(), snap->partition(43, 8).get());
  EXPECT_NE(p1.get(), snap->partition(42, 9).get());

  const auto s1 = snap->sparsified_sample(42, 0.5);
  EXPECT_EQ(s1.get(), snap->sparsified_sample(42, 0.5).get());
  EXPECT_NE(s1.get(), snap->sparsified_sample(42, 0.4).get());

  const service::ArtifactStats stats = snap->artifact_stats();
  EXPECT_EQ(stats.bfs_tree.misses, 2u);
  EXPECT_EQ(stats.bfs_tree.hits, 1u);
  EXPECT_EQ(stats.partition.misses, 3u);
  EXPECT_EQ(stats.partition.hits, 1u);
  EXPECT_EQ(stats.sparsified.misses, 2u);
  EXPECT_EQ(stats.sparsified.hits, 1u);
}

TEST(GraphSnapshot, CachedArtifactsEqualUncachedPureFunctions) {
  const auto snap = small_snapshot(32, 120);
  const auto cached = snap->partition(77, 6);
  const graph::Partition direct = GraphSnapshot::compute_partition(snap->graph(), 77, 6);
  EXPECT_EQ(cached->parts, direct.parts);

  const auto sample = snap->sparsified_sample(91, 0.5);
  const mincut::SparsifiedSample direct_sample =
      mincut::sparsify_edges(snap->graph(), snap->weights(), 0.5, 91);
  EXPECT_EQ(sample->units, direct_sample.units);
  EXPECT_DOUBLE_EQ(sample->sample_prob, direct_sample.sample_prob);
}

// --- default partition pool + proactive prewarm (PR 9) -----------------------

TEST(GraphSnapshot, PartitionPoolPrewarmOnVsOffIsBitIdentical) {
  Rng gen(13);
  const graph::Graph g = graph::connected_gnm(200, 600, gen);
  GraphSnapshot::Options warm_opt;
  warm_opt.weight_seed = 99;
  GraphSnapshot::Options cold_opt = warm_opt;
  cold_opt.prewarm_partition_pool = false;
  const auto warm = GraphSnapshot::build(g, warm_opt);
  const auto cold = GraphSnapshot::build(g, cold_opt);

  const ShortcutService warm_svc(warm, 5);
  const ShortcutService cold_svc(cold, 5);
  std::vector<QueryRequest> batch;
  for (std::uint32_t i = 0; i < 12; ++i) {
    QueryRequest q;
    q.id = 900 + i;
    q.kind = (i % 2 == 0) ? QueryKind::kShortcutQuality : QueryKind::kShortcutBuild;
    batch.push_back(q);  // num_parts = 0: the default-pool path
  }

  // Warm path: the build()-time prewarm covered the whole default pool, so
  // default-shaped queries never miss the partition memo.
  const service::ArtifactStats before = warm->artifact_stats();
  const auto warm_results = warm_svc.run_batch(batch);
  const service::ArtifactStats after = warm->artifact_stats();
  EXPECT_EQ(after.partition.misses, before.partition.misses);
  EXPECT_GT(after.partition.hits, before.partition.hits);

  // Cold path pays first-touch misses but must produce bit-identical
  // results: prewarming is a latency feature, never a content change.
  const auto cold_results = cold_svc.run_batch(batch);
  EXPECT_GT(cold->artifact_stats().partition.misses, 0u);
  ASSERT_EQ(warm_results.size(), cold_results.size());
  for (std::size_t i = 0; i < warm_results.size(); ++i)
    expect_same_result(warm_results[i], cold_results[i]);
}

TEST(GraphSnapshot, WarmPartitionPoolIsIdempotentAndBounded) {
  const auto snap = small_snapshot(33, 150);
  const auto& opt = snap->options();
  ASSERT_GT(opt.partition_pool_size, 0u);
  const service::ArtifactStats built = snap->artifact_stats();
  EXPECT_EQ(built.partition.misses, opt.partition_pool_size);
  snap->warm_partition_pool();  // every slot is ready: a stats-free no-op
  const service::ArtifactStats again = snap->artifact_stats();
  EXPECT_EQ(again.partition.misses, built.partition.misses);
  EXPECT_EQ(again.partition.hits, built.partition.hits);
  // The pool key family is a pure function of the slot: any snapshot, any
  // process, any service agrees on it.
  EXPECT_NE(GraphSnapshot::pool_seed(0), GraphSnapshot::pool_seed(1));
  EXPECT_EQ(GraphSnapshot::pool_seed(3), GraphSnapshot::pool_seed(3));
  const std::uint32_t parts = snap->default_part_count();
  EXPECT_GE(parts, 1u);
  EXPECT_LE(parts, snap->num_vertices());
}

TEST(ShortcutService, CachedVsUncachedBitIdentityAcrossThreadCounts) {
  const auto snap = small_snapshot();
  const ShortcutService cached(snap, 3);
  const ShortcutService uncached(snap, 3,
                                 ShortcutService::Options{/*use_artifact_cache=*/false});
  const auto batch = mixed_batch(12);

  ThreadOverrideGuard guard;
  set_num_threads(1);
  const std::vector<QueryResult> ref = uncached.run_batch(batch);
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_num_threads(threads);
    const std::vector<QueryResult> hot = cached.run_batch(batch);    // may hit
    const std::vector<QueryResult> cold = uncached.run_batch(batch);  // never hits
    for (std::size_t i = 0; i < ref.size(); ++i) {
      expect_same_result(hot[i], ref[i]);
      expect_same_result(cold[i], ref[i]);
    }
  }
  // The cached service really did use the shared pool.
  EXPECT_GT(snap->artifact_stats().total().hits, 0u);
}

TEST(ShortcutService, EvictionAndRebuildAreDeterministic) {
  // A capacity-1 artifact cache thrashes (every new key evicts the last);
  // an unbounded one never evicts; explicit clear_artifacts() rebuilds from
  // nothing.  All three must produce bit-identical query results.
  Rng gen(11);
  const graph::Graph g = graph::connected_gnm(300, 900, gen);
  GraphSnapshot::Options tiny;
  tiny.weight_seed = 11 ^ 0x55ULL;
  tiny.max_weight = 9;
  tiny.max_cached_partitions = 1;
  tiny.max_cached_bfs_trees = 1;
  tiny.max_cached_samples = 1;
  const auto thrashing = GraphSnapshot::build(g, tiny);
  const auto roomy = small_snapshot();  // same seed/options as the default fixture

  const ShortcutService svc_thrash(thrashing, 3);
  const ShortcutService svc_roomy(roomy, 3);
  const auto batch = mixed_batch(12);

  const std::vector<QueryResult> a = svc_thrash.run_batch(batch);
  const std::vector<QueryResult> b = svc_roomy.run_batch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) expect_same_result(a[i], b[i]);
  EXPECT_GT(thrashing->artifact_stats().total().evictions, 0u);
  EXPECT_EQ(roomy->artifact_stats().total().evictions, 0u);

  // Rebuild from an explicitly cleared cache: same bytes again.
  thrashing->clear_artifacts();
  const std::vector<QueryResult> c = svc_thrash.run_batch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) expect_same_result(c[i], a[i]);
}

TEST(ShortcutService, TwoServicesShareOneArtifactPoolConcurrently) {
  // Two services over one snapshot, queried from two caller threads at
  // once: the artifact pool is hit from both sides (same seed => same
  // partition/sample keys) and every result stays oracle-identical.
  const auto snap = small_snapshot(41);
  const ShortcutService a(snap, 9);
  const ShortcutService b(snap, 9);
  const auto batch = mixed_batch(10);
  const std::vector<QueryResult> ref = a.run_batch(batch);

  std::vector<QueryResult> got_a, got_b;
  std::thread ta([&] { got_a = a.run_batch(batch); });
  std::thread tb([&] { got_b = b.run_batch(batch); });
  ta.join();
  tb.join();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expect_same_result(got_a[i], ref[i]);
    expect_same_result(got_b[i], ref[i]);
  }
  // Reference run materialized every artifact; the two concurrent replays
  // hit the shared pool instead of re-deriving.
  EXPECT_GT(snap->artifact_stats().total().hits,
            snap->artifact_stats().total().misses);
}

TEST(ShortcutService, QueryErrorsAreCapturedAndDeterministic) {
  // A disconnected snapshot: mincut queries must fail identically at every
  // thread count, not crash the batch.
  graph::GraphBuilder b(10);
  for (graph::VertexId v = 0; v + 1 < 5; ++v) b.add_edge(v, v + 1);
  for (graph::VertexId v = 5; v + 1 < 10; ++v) b.add_edge(v, v + 1);
  const auto snap = GraphSnapshot::build(std::move(b).build());
  EXPECT_FALSE(snap->connected());

  const ShortcutService svc(snap, 3);
  QueryRequest q;
  q.id = 7;
  q.kind = QueryKind::kMincut;
  q.karger_trials = 0;  // sparsified requires connectivity

  ThreadOverrideGuard guard;
  set_num_threads(1);
  const QueryResult ref = svc.run_batch({q})[0];
  EXPECT_FALSE(ref.ok);
  EXPECT_FALSE(ref.error.empty());
  set_num_threads(4);
  expect_same_result(svc.run_batch({q})[0], ref);
}

TEST(ShortcutService, PointToPointMatchesSingleSourceOracle) {
  const auto snap = small_snapshot();
  const ShortcutService svc(snap, 3);
  Rng pick(77);
  std::vector<QueryRequest> batch;
  for (std::uint32_t i = 0; i < 24; ++i) {
    QueryRequest q;
    q.id = 500 + i;
    q.kind = QueryKind::kPointToPoint;
    q.s = pick.uniform(snap->num_vertices());
    q.t = pick.uniform(snap->num_vertices());
    batch.push_back(q);
  }
  const std::vector<QueryResult> got = svc.run_batch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(got[i].ok) << got[i].error;
    const sssp::SsspResult ref =
        sssp::dijkstra(snap->graph(), snap->weights(), batch[i].s);
    EXPECT_EQ(got[i].distance, ref.dist[batch[i].t]);
    EXPECT_EQ(got[i].s, batch[i].s);
    EXPECT_EQ(got[i].t, batch[i].t);
    EXPECT_EQ(got[i].value, got[i].distance);
    EXPECT_EQ(got[i].cardinality, 1u);  // connected fixture: always reachable
    EXPECT_GT(got[i].settled_nodes, 0u);
  }
}

TEST(ShortcutService, PointToPointOutOfRangeEndpointsFailDeterministically) {
  const auto snap = small_snapshot();
  const ShortcutService svc(snap, 3);
  QueryRequest q;
  q.id = 9001;
  q.kind = QueryKind::kPointToPoint;
  q.s = snap->num_vertices();  // one past the end
  q.t = 0;

  ThreadOverrideGuard guard;
  set_num_threads(1);
  const QueryResult ref = svc.run_batch({q})[0];
  EXPECT_FALSE(ref.ok);
  EXPECT_FALSE(ref.error.empty());
  set_num_threads(4);
  expect_same_result(svc.run_batch({q})[0], ref);
}

TEST(QueryResultDigest, PinsTheTelemetryExclusionSet) {
  // The determinism contract compares digests across threads, shards, and
  // processes, so the digest must cover every deterministic field and no
  // telemetry field.  This test pins both sets: loosening the exclusion set
  // (digesting telemetry) breaks cross-replica gates; widening it (dropping
  // a content field) lets corruption slip past them.
  QueryResult r;
  r.id = 42;
  r.kind = QueryKind::kPointToPoint;
  r.ok = true;
  r.error = "";
  r.congestion = 3;
  r.dilation = 4;
  r.value = 700;
  r.cardinality = 1;
  r.rounds = 9;
  r.content_hash = 0xabcdefULL;
  r.s = 11;
  r.t = 29;
  r.distance = 700;
  const std::uint64_t base = r.digest();

  // Telemetry: excluded — mutating it must not move the digest.
  {
    QueryResult m = r;
    m.latency_ms = 123.5;
    m.queue_ms = 9.25;
    m.wave = 7;
    m.attempts = 3;
    m.served_by_replica = 1;
    m.settled_nodes = 5555;
    EXPECT_EQ(m.digest(), base);
  }
  // Content: included — each field alone must move the digest.
  const auto differs = [&](auto mutate) {
    QueryResult m = r;
    mutate(m);
    return m.digest() != base;
  };
  EXPECT_TRUE(differs([](QueryResult& m) { m.id ^= 1; }));
  EXPECT_TRUE(differs([](QueryResult& m) { m.kind = QueryKind::kMincut; }));
  EXPECT_TRUE(differs([](QueryResult& m) { m.ok = false; }));
  EXPECT_TRUE(differs([](QueryResult& m) { m.error = "boom"; }));
  EXPECT_TRUE(differs([](QueryResult& m) { m.congestion ^= 1; }));
  EXPECT_TRUE(differs([](QueryResult& m) { m.dilation ^= 1; }));
  EXPECT_TRUE(differs([](QueryResult& m) { m.value ^= 1; }));
  EXPECT_TRUE(differs([](QueryResult& m) { m.cardinality ^= 1; }));
  EXPECT_TRUE(differs([](QueryResult& m) { m.rounds ^= 1; }));
  EXPECT_TRUE(differs([](QueryResult& m) { m.content_hash ^= 1; }));
  EXPECT_TRUE(differs([](QueryResult& m) { m.s ^= 1; }));
  EXPECT_TRUE(differs([](QueryResult& m) { m.t ^= 1; }));
  EXPECT_TRUE(differs([](QueryResult& m) { m.distance ^= 1; }));
}

}  // namespace
